#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::sim;

TEST(Stats, MeanAndMedian)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, SlowdownSummary)
{
    const auto summary = summarize_slowdowns({1.0, 1.0, 1.2, 1.4});
    EXPECT_DOUBLE_EQ(summary.pct_optimal, 0.5);
    EXPECT_DOUBLE_EQ(summary.average, 1.15);
    EXPECT_DOUBLE_EQ(summary.median, 1.1);
    EXPECT_DOUBLE_EQ(summary.maximum, 1.4);
}

TEST(Stats, SlowdownSummaryToleratesFpNoise)
{
    const auto summary = summarize_slowdowns({1.0 + 1e-9, 1.5});
    EXPECT_DOUBLE_EQ(summary.pct_optimal, 0.5);
}

TEST(Stats, EmpiricalCdf)
{
    const auto cdf = empirical_cdf({1.0, 1.1, 1.2, 1.3}, {0.9, 1.0, 1.15, 2.0});
    ASSERT_EQ(cdf.size(), 4u);
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.25);
    EXPECT_DOUBLE_EQ(cdf[2], 0.5);
    EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(Stats, Linspace)
{
    const auto points = linspace(1.0, 1.5, 6);
    ASSERT_EQ(points.size(), 6u);
    EXPECT_DOUBLE_EQ(points.front(), 1.0);
    EXPECT_DOUBLE_EQ(points.back(), 1.5);
    EXPECT_DOUBLE_EQ(points[1], 1.1);
    EXPECT_THROW((void)linspace(0, 1, 1), std::invalid_argument);
}

TEST(Stats, UsageHeatmap)
{
    UsageHeatmap map;
    map.add({3, 2}, {2, 2}); // +1 big
    map.add({3, 3}, {2, 2}); // +1 big +1 little
    map.add({2, 2}, {2, 2}); // same
    map.add({2, 1}, {2, 2}); // -1 little
    EXPECT_EQ(map.total(), 4);
    EXPECT_DOUBLE_EQ(map.fraction(1, 0), 0.25);
    EXPECT_DOUBLE_EQ(map.fraction(1, 1), 0.25);
    EXPECT_DOUBLE_EQ(map.fraction(0, 0), 0.25);
    EXPECT_DOUBLE_EQ(map.fraction(0, -1), 0.25);
    EXPECT_DOUBLE_EQ(map.fraction(5, 5), 0.0);
    EXPECT_DOUBLE_EQ(map.fraction_at_most_total(0), 0.5);
    EXPECT_DOUBLE_EQ(map.fraction_at_most_total(1), 0.75);
    EXPECT_DOUBLE_EQ(map.fraction_at_most_total(2), 1.0);
}

} // namespace
