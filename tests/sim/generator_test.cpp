#include "sim/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace {

using namespace amp::sim;
using amp::core::CoreType;

TEST(Generator, ProducesRequestedSize)
{
    amp::Rng rng{1};
    const auto chain = generate_chain({.num_tasks = 20}, rng);
    EXPECT_EQ(chain.size(), 20);
}

TEST(Generator, WeightsWithinBounds)
{
    amp::Rng rng{2};
    GeneratorConfig config;
    config.num_tasks = 200;
    const auto chain = generate_chain(config, rng);
    for (int i = 1; i <= chain.size(); ++i) {
        const double wb = chain.weight(i, CoreType::big);
        const double wl = chain.weight(i, CoreType::little);
        EXPECT_GE(wb, 1.0);
        EXPECT_LE(wb, 100.0);
        EXPECT_DOUBLE_EQ(wb, std::floor(wb)) << "big weights are integers";
        EXPECT_DOUBLE_EQ(wl, std::floor(wl)) << "little weights use ceiling rounding";
        EXPECT_GE(wl, wb) << "slowdown >= 1 means little is never faster";
        EXPECT_LE(wl, std::ceil(wb * 5.0));
    }
}

TEST(Generator, ExactStatelessRatio)
{
    amp::Rng rng{3};
    for (const double sr : {0.2, 0.5, 0.8}) {
        const auto chain = generate_chain({.num_tasks = 20, .stateless_ratio = sr}, rng);
        EXPECT_EQ(chain.replicable_count(), static_cast<int>(std::lround(sr * 20)));
    }
}

TEST(Generator, DeterministicForSeed)
{
    amp::Rng rng_a{7};
    amp::Rng rng_b{7};
    const auto a = generate_chain({}, rng_a);
    const auto b = generate_chain({}, rng_b);
    ASSERT_EQ(a.size(), b.size());
    for (int i = 1; i <= a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.weight(i, CoreType::big), b.weight(i, CoreType::big));
        EXPECT_DOUBLE_EQ(a.weight(i, CoreType::little), b.weight(i, CoreType::little));
        EXPECT_EQ(a.replicable(i), b.replicable(i));
    }
}

TEST(Generator, ReplicablePositionsVary)
{
    // The replicable subset must not always be a prefix: check that over
    // many chains every position is sometimes replicable.
    amp::Rng rng{11};
    std::vector<int> hits(20, 0);
    for (int c = 0; c < 200; ++c) {
        const auto chain = generate_chain({.num_tasks = 20, .stateless_ratio = 0.5}, rng);
        for (int i = 1; i <= 20; ++i)
            hits[static_cast<std::size_t>(i - 1)] += chain.replicable(i) ? 1 : 0;
    }
    for (const int h : hits) {
        EXPECT_GT(h, 50);
        EXPECT_LT(h, 150);
    }
}

TEST(Generator, RejectsBadConfig)
{
    amp::Rng rng{1};
    EXPECT_THROW((void)generate_chain({.num_tasks = 0}, rng), std::invalid_argument);
    EXPECT_THROW((void)generate_chain({.weight_min = 5, .weight_max = 4}, rng),
                 std::invalid_argument);
    EXPECT_THROW((void)generate_chain({.slowdown_min = 0.5}, rng), std::invalid_argument);
    EXPECT_THROW((void)generate_chain({.stateless_ratio = 1.5}, rng), std::invalid_argument);
}

} // namespace

namespace {

using namespace amp::sim;

TEST(Generator, BimodalProducesHeavyTail)
{
    amp::Rng rng{21};
    GeneratorConfig config;
    config.num_tasks = 400;
    config.distribution = WeightDistribution::bimodal;
    const auto chain = generate_chain(config, rng);
    int heavy = 0;
    for (int i = 1; i <= chain.size(); ++i)
        heavy += chain.weight(i, amp::core::CoreType::big) > 100.0 ? 1 : 0;
    EXPECT_GT(heavy, 20) << "roughly 15% of tasks should be 10x heavy";
    EXPECT_LT(heavy, 100);
}

TEST(Generator, LognormalStaysPositiveAndSkewed)
{
    amp::Rng rng{22};
    GeneratorConfig config;
    config.num_tasks = 400;
    config.distribution = WeightDistribution::lognormal;
    const auto chain = generate_chain(config, rng);
    double mean = 0.0;
    std::vector<double> weights;
    for (int i = 1; i <= chain.size(); ++i) {
        const double w = chain.weight(i, amp::core::CoreType::big);
        EXPECT_GE(w, 1.0);
        weights.push_back(w);
        mean += w;
    }
    mean /= chain.size();
    std::sort(weights.begin(), weights.end());
    const double median = weights[weights.size() / 2];
    EXPECT_GT(mean, median) << "right-skewed: mean above median";
}

TEST(Generator, DistributionsKeepSlowdownContract)
{
    amp::Rng rng{23};
    for (const auto distribution :
         {WeightDistribution::bimodal, WeightDistribution::lognormal}) {
        GeneratorConfig config;
        config.num_tasks = 100;
        config.distribution = distribution;
        const auto chain = generate_chain(config, rng);
        for (int i = 1; i <= chain.size(); ++i) {
            EXPECT_GE(chain.weight(i, amp::core::CoreType::little),
                      chain.weight(i, amp::core::CoreType::big));
        }
    }
}

} // namespace
