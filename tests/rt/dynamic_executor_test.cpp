#include "rt/dynamic_executor.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace amp::rt;

struct Frame {
    std::uint64_t seq = 0;
    std::vector<int> trace;
    int value = 0;
};

TaskSequence<Frame> make_sequence(const std::vector<bool>& stateful)
{
    TaskSequence<Frame> seq;
    for (std::size_t i = 0; i < stateful.size(); ++i) {
        const int id = static_cast<int>(i) + 1;
        seq.push_back(make_task<Frame>("t" + std::to_string(id), stateful[i], [id](Frame& f) {
            f.trace.push_back(id);
            f.value += id;
        }));
    }
    return seq;
}

void expect_correct(const std::vector<Frame>& outputs, int num_tasks)
{
    std::vector<int> expected(static_cast<std::size_t>(num_tasks));
    std::iota(expected.begin(), expected.end(), 1);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        EXPECT_EQ(outputs[i].seq, i) << "stream order restored";
        EXPECT_EQ(outputs[i].trace, expected) << "tasks in per-frame order";
    }
}

TEST(DynamicExecutor, SingleWorkerMatchesSequential)
{
    auto seq = make_sequence({true, false, true, false});
    DynamicExecutor<Frame> executor{seq, 1};
    std::vector<Frame> outputs;
    const auto result = executor.run(50, [&](Frame& f) { outputs.push_back(f); });
    EXPECT_EQ(result.frames, 50u);
    ASSERT_EQ(outputs.size(), 50u);
    expect_correct(outputs, 4);
}

TEST(DynamicExecutor, ManyWorkersPreserveOrderAndContent)
{
    auto seq = make_sequence({true, false, false, false, true});
    DynamicExecutor<Frame> executor{seq, 6, 12};
    std::vector<Frame> outputs;
    const auto result = executor.run(400, [&](Frame& f) { outputs.push_back(f); });
    EXPECT_EQ(result.frames, 400u);
    ASSERT_EQ(outputs.size(), 400u);
    expect_correct(outputs, 5);
}

TEST(DynamicExecutor, StatefulTasksSeeFramesInOrder)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("gen", false, [](Frame&) {}));
    auto observed = std::make_shared<std::vector<std::uint64_t>>();
    seq.push_back(
        make_task<Frame>("stateful", true, [observed](Frame& f) { observed->push_back(f.seq); }));
    seq.push_back(make_task<Frame>("post", false, [](Frame&) {}));
    DynamicExecutor<Frame> executor{seq, 4, 8};
    (void)executor.run(200);
    ASSERT_EQ(observed->size(), 200u);
    for (std::uint64_t i = 0; i < observed->size(); ++i)
        EXPECT_EQ((*observed)[i], i);
}

TEST(DynamicExecutor, CountsSchedulingEvents)
{
    auto seq = make_sequence({false, false});
    DynamicExecutor<Frame> executor{seq, 2};
    const auto result = executor.run(50);
    // At least one push + one pop per (frame, task) pair.
    EXPECT_GE(result.scheduling_events, 2u * 50u * 2u);
}

TEST(DynamicExecutor, ExceptionPropagates)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("boom", false, [](Frame& f) {
        if (f.seq == 17)
            throw std::runtime_error{"dynamic failure"};
    }));
    DynamicExecutor<Frame> executor{seq, 3};
    EXPECT_THROW((void)executor.run(60), std::runtime_error);
}

TEST(DynamicExecutor, ZeroFrames)
{
    auto seq = make_sequence({false});
    DynamicExecutor<Frame> executor{seq, 2};
    EXPECT_EQ(executor.run(0).frames, 0u);
}

TEST(DynamicExecutor, WindowSmallerThanWorkers)
{
    auto seq = make_sequence({false, true, false});
    DynamicExecutor<Frame> executor{seq, 8, 2};
    std::vector<Frame> outputs;
    EXPECT_EQ(executor.run(100, [&](Frame& f) { outputs.push_back(f); }).frames, 100u);
    expect_correct(outputs, 3);
}

TEST(DynamicExecutor, RejectsBadConfig)
{
    auto seq = make_sequence({false});
    EXPECT_THROW((DynamicExecutor<Frame>{seq, 0}), std::invalid_argument);
    TaskSequence<Frame> empty;
    EXPECT_THROW((DynamicExecutor<Frame>{empty, 1}), std::invalid_argument);
}

} // namespace
