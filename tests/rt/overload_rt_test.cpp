// Runtime-side overload protection: OrderedQueue watermarks and shedding,
// the closed-vs-stale push outcome split, the BrownoutController state
// machine, and the pipeline's end-to-end frame shedder
// (docs/FAULT_MODEL.md, "Overload model").

#include "rt/brownout.hpp"
#include "rt/ordered_queue.hpp"
#include "rt/pipeline.hpp"
#include "rt/rescheduler.hpp"

#include "obs/schema.hpp"
#include "obs/sink.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace {

using namespace amp::rt;
using amp::core::CoreType;
using amp::core::Solution;
using amp::core::Stage;

TEST(OrderedQueueOverload, ClosedAndStaleAreDistinguishable)
{
    OrderedQueue<int> queue{4};
    queue.push(Envelope<int>::data(0, 0));
    ASSERT_TRUE(queue.pop().has_value());

    // Same producer mistake, two different answers: a stale frame means
    // "drop this one, keep producing", an aborted queue means "park".
    auto stale = Envelope<int>::data(0, 1);
    EXPECT_EQ(queue.try_push_for(stale, std::chrono::milliseconds{1}),
              OrderedQueue<int>::PushOutcome::stale);

    queue.abort();
    auto next = Envelope<int>::data(1, 2);
    EXPECT_EQ(queue.try_push_for(next, std::chrono::milliseconds{1}),
              OrderedQueue<int>::PushOutcome::closed);
}

TEST(OrderedQueueOverload, CongestedLatchesWithHysteresis)
{
    OrderedQueue<int> queue{8};
    queue.set_watermarks(4, 2);
    for (std::uint64_t seq = 0; seq < 4; ++seq)
        queue.push(Envelope<int>::data(seq, 0));
    EXPECT_TRUE(queue.congested()) << "reached the high watermark";
    ASSERT_TRUE(queue.pop().has_value());
    EXPECT_TRUE(queue.congested()) << "still latched between the watermarks";
    ASSERT_TRUE(queue.pop().has_value());
    EXPECT_FALSE(queue.congested()) << "released at the low watermark";
    queue.push(Envelope<int>::data(4, 0));
    EXPECT_FALSE(queue.congested()) << "stays released until high is reached again";
}

TEST(OrderedQueueOverload, WatermarksDisabledMeansNeverCongested)
{
    OrderedQueue<int> queue{2};
    queue.push(Envelope<int>::data(0, 0));
    queue.push(Envelope<int>::data(1, 0));
    EXPECT_FALSE(queue.congested());
}

TEST(OrderedQueueOverload, ShedOldestTombstonesOldestDataFirst)
{
    OrderedQueue<int> queue{8};
    for (std::uint64_t seq = 0; seq < 4; ++seq)
        queue.push(Envelope<int>::data(seq, static_cast<int>(seq) + 10));
    EXPECT_EQ(queue.shed_oldest(2), 2u);
    EXPECT_EQ(queue.buffered(), 4u) << "shedding keeps the stream contiguous";

    // The two oldest frames come out as tombstones, the rest intact.
    for (std::uint64_t seq = 0; seq < 4; ++seq) {
        const auto envelope = queue.pop();
        ASSERT_TRUE(envelope.has_value());
        EXPECT_EQ(envelope->seq, seq);
        EXPECT_EQ(envelope->dropped, seq < 2) << "seq " << seq;
        if (seq >= 2)
            EXPECT_EQ(envelope->payload, static_cast<int>(seq) + 10);
    }
}

TEST(OrderedQueueOverload, ShedOldestSkipsTombstonesAndEndOfStream)
{
    OrderedQueue<int> queue{8};
    queue.push(Envelope<int>::tombstone(0));
    queue.push(Envelope<int>::data(1, 11));
    queue.push(Envelope<int>::end_of_stream(2));
    EXPECT_EQ(queue.shed_oldest(10), 1u) << "only the data frame is sheddable";
    EXPECT_EQ(queue.shed_oldest(10), 0u) << "idempotent until new data arrives";
    const auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->dropped);
    const auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->dropped);
    EXPECT_FALSE(second->end);
}

// -- brownout controller --------------------------------------------------

TEST(Brownout, PatienceGatesEntryAndExit)
{
    BrownoutController controller{BrownoutPolicy{0.75, 0.50, 3, 2}};
    EXPECT_FALSE(controller.feed(0.9));
    EXPECT_FALSE(controller.feed(0.9));
    EXPECT_FALSE(controller.feed(0.6)) << "a dip resets the entry streak";
    EXPECT_FALSE(controller.feed(0.9));
    EXPECT_FALSE(controller.feed(0.9));
    EXPECT_TRUE(controller.feed(0.9)) << "third consecutive high sample enters";
    EXPECT_EQ(controller.entries(), 1u);

    EXPECT_TRUE(controller.feed(0.4));
    EXPECT_TRUE(controller.feed(0.7)) << "a spike resets the exit streak";
    EXPECT_TRUE(controller.feed(0.4));
    EXPECT_FALSE(controller.feed(0.4)) << "second consecutive low sample exits";
    EXPECT_EQ(controller.entries(), 1u);
}

TEST(Brownout, MidBandSamplesResetBothStreaks)
{
    // 0.6 is neither >= enter (0.75) nor <= exit (0.5): it must not count
    // toward either transition.
    BrownoutController controller{BrownoutPolicy{0.75, 0.50, 2, 2}};
    EXPECT_FALSE(controller.feed(0.8));
    EXPECT_FALSE(controller.feed(0.6));
    EXPECT_FALSE(controller.feed(0.8));
    EXPECT_TRUE(controller.feed(0.8));
    EXPECT_TRUE(controller.feed(0.4));
    EXPECT_TRUE(controller.feed(0.6));
    EXPECT_TRUE(controller.feed(0.4));
    EXPECT_FALSE(controller.feed(0.4));
}

TEST(Brownout, IsAPureFunctionOfTheSampleSequence)
{
    const std::vector<double> samples = {0.1, 0.9, 0.8, 0.95, 0.7, 0.3, 0.2,
                                         0.1, 0.85, 0.9, 0.9, 0.4, 0.4, 0.4};
    std::vector<bool> first;
    std::vector<bool> second;
    BrownoutController a{BrownoutPolicy{0.8, 0.5, 2, 3}};
    BrownoutController b{BrownoutPolicy{0.8, 0.5, 2, 3}};
    for (const double sample : samples)
        first.push_back(a.feed(sample));
    for (const double sample : samples)
        second.push_back(b.feed(sample));
    EXPECT_EQ(first, second);
    EXPECT_EQ(a.entries(), b.entries());
}

TEST(Brownout, DegenerateConfigIsClampedNotUB)
{
    // exit above enter would oscillate; non-positive patience would enter
    // on the first sample of noise.
    BrownoutController controller{BrownoutPolicy{0.5, 0.9, 0, -3}};
    EXPECT_EQ(controller.policy().exit_pressure, controller.policy().enter_pressure);
    EXPECT_TRUE(controller.feed(0.6)) << "patience clamps to 1";
    EXPECT_FALSE(controller.feed(0.2));
}

// -- pipeline integration -------------------------------------------------

struct Frame {
    std::uint64_t seq = 0;
    int value = 0;
};

// A fast producer feeding a deliberately slow consumer: the inter-stage
// queue saturates, the monitor browns out and sheds. Assertions are
// timing-tolerant (shedding must happen and must be fully accounted for;
// the exact count is machine-dependent).
TEST(PipelineOverload, ShedsFramesUnderSustainedBackpressureAndCountsEveryOne)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("produce", false, [](Frame& f) { f.value = 1; }));
    seq.push_back(make_task<Frame>("consume", true, [](Frame&) {
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }));
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};

    amp::obs::Sink sink{amp::obs::SinkConfig{true, false, 1, 8}};
    PipelineConfig config;
    config.queue_capacity = 4;
    config.sink = &sink;
    config.overload.enabled = true;
    config.overload.brownout = BrownoutPolicy{0.5, 0.25, 1, 1};
    config.overload.shed_batch = 2;
    config.overload.poll = std::chrono::milliseconds{1};

    constexpr std::uint64_t kFrames = 120;
    Pipeline<Frame> pipeline{seq, solution, config};
    std::uint64_t delivered = 0;
    const RunResult result = pipeline.run(kFrames, [&](Frame&) { ++delivered; });

    EXPECT_EQ(result.frames, delivered);
    EXPECT_EQ(result.frames + result.frames_dropped, kFrames)
        << "every stream position is delivered or tombstoned, never lost";
    EXPECT_GT(result.frames_shed, 0u) << "sustained 2ms/frame backpressure must shed";
    EXPECT_LE(result.frames_shed, result.frames_dropped)
        << "shed frames are a subset of dropped frames";
    EXPECT_GE(result.brownout_entries, 1u);

    // Zero silent drops: the obs counters agree exactly with the result.
    EXPECT_EQ(sink.metrics().counter(amp::obs::schema::kFramesShed).value(),
              result.frames_shed);
    EXPECT_EQ(sink.metrics().counter(amp::obs::schema::kBrownoutEntries).value(),
              result.brownout_entries);
    EXPECT_EQ(sink.metrics().counter(amp::obs::schema::kFramesDropped).value(),
              result.frames_dropped);
}

// run_with_recovery merges per-run RunResults into RecoveryReport::total;
// the shed/brownout tallies must survive that merge, or sheds that the obs
// counters record would vanish from the report (a silent-drop in the
// accounting itself).
TEST(PipelineOverload, RecoveryReportMergesShedAccounting)
{
    using amp::core::Resources;
    using amp::core::TaskChain;
    using amp::core::TaskDesc;

    // Two stateful tasks force a two-stage cut, so there is an inter-stage
    // queue to congest; the slow consumer stage sheds under backpressure.
    std::vector<TaskDesc> descs;
    descs.push_back(TaskDesc{"produce", 100.0, 120.0, false});
    descs.push_back(TaskDesc{"consume", 100.0, 120.0, false});
    const TaskChain chain{std::move(descs)};
    Rescheduler rescheduler{chain, Resources{2, 0}};

    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("produce", true, [](Frame& f) { f.value = 1; }));
    seq.push_back(make_task<Frame>("consume", true, [](Frame&) {
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }));

    amp::obs::Sink sink{amp::obs::SinkConfig{true, false, 1, 8}};
    PipelineConfig config;
    config.queue_capacity = 4;
    config.sink = &sink;
    config.overload.enabled = true;
    config.overload.brownout = BrownoutPolicy{0.5, 0.25, 1, 1};
    config.overload.poll = std::chrono::milliseconds{1};

    constexpr std::uint64_t kFrames = 120;
    const RecoveryReport report =
        run_with_recovery<Frame>(seq, rescheduler, kFrames, config, {});

    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.total.frames + report.total.frames_dropped, kFrames);
    EXPECT_GT(report.total.frames_shed, 0u);
    EXPECT_EQ(report.total.frames_shed,
              sink.metrics().counter(amp::obs::schema::kFramesShed).value());
    EXPECT_EQ(report.total.brownout_entries,
              sink.metrics().counter(amp::obs::schema::kBrownoutEntries).value());
}

TEST(PipelineOverload, DisabledPolicyNeverSheds)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("produce", false, [](Frame& f) { f.value = 1; }));
    seq.push_back(make_task<Frame>("consume", true, [](Frame&) {
        std::this_thread::sleep_for(std::chrono::microseconds{200});
    }));
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    PipelineConfig config;
    config.queue_capacity = 4;

    Pipeline<Frame> pipeline{seq, solution, config};
    const RunResult result = pipeline.run(60, [](Frame&) {});
    EXPECT_EQ(result.frames, 60u);
    EXPECT_EQ(result.frames_shed, 0u);
    EXPECT_EQ(result.frames_dropped, 0u);
    EXPECT_EQ(result.brownout_entries, 0u);
}

} // namespace
