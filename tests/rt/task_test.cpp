#include "rt/task.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::rt;

struct Frame {
    std::uint64_t seq = 0;
    int value = 0;
};

TEST(LambdaTask, ProcessesFrames)
{
    auto task = make_task<Frame>("inc", false, [](Frame& f) { f.value += 1; });
    Frame frame;
    task->process(frame);
    task->process(frame);
    EXPECT_EQ(frame.value, 2);
    EXPECT_EQ(task->name(), "inc");
    EXPECT_TRUE(task->replicable());
}

TEST(LambdaTask, StatelessCloneIsIndependent)
{
    int captured = 3;
    auto task = make_task<Frame>("addk", false, [captured](Frame& f) { f.value += captured; });
    auto clone = task->clone();
    Frame frame;
    clone->process(frame);
    EXPECT_EQ(frame.value, 3);
    EXPECT_EQ(clone->name(), "addk");
}

TEST(LambdaTask, StatefulCloneThrows)
{
    auto task = make_task<Frame>("counter", true, [count = 0](Frame& f) mutable {
        f.value = ++count;
    });
    EXPECT_TRUE(task->stateful());
    EXPECT_THROW((void)task->clone(), std::logic_error);
}

TEST(TaskSequence, OneBasedAccess)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("a", false, [](Frame&) {}));
    seq.push_back(make_task<Frame>("b", true, [](Frame&) {}));
    EXPECT_EQ(seq.size(), 2);
    EXPECT_EQ(seq.task(1).name(), "a");
    EXPECT_EQ(seq.task(2).name(), "b");
}

TEST(TaskSequence, StageViewAndClones)
{
    TaskSequence<Frame> seq;
    for (int i = 0; i < 4; ++i)
        seq.push_back(make_task<Frame>("t" + std::to_string(i + 1), false,
                                       [i](Frame& f) { f.value += i; }));
    const auto view = seq.stage_view(2, 3);
    ASSERT_EQ(view.size(), 2u);
    EXPECT_EQ(view[0]->name(), "t2");
    const auto clones = seq.stage_clones(2, 3);
    ASSERT_EQ(clones.size(), 2u);
    EXPECT_EQ(clones[1]->name(), "t3");
    EXPECT_NE(clones[0].get(), view[0]);
}

TEST(TaskSequence, ToCoreChain)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("a", false, [](Frame&) {}));
    seq.push_back(make_task<Frame>("b", true, [](Frame&) {}));
    const auto chain = seq.to_core_chain({10.0, 20.0}, {30.0, 40.0});
    EXPECT_EQ(chain.size(), 2);
    EXPECT_DOUBLE_EQ(chain.weight(1, amp::core::CoreType::big), 10.0);
    EXPECT_DOUBLE_EQ(chain.weight(2, amp::core::CoreType::little), 40.0);
    EXPECT_TRUE(chain.replicable(1));
    EXPECT_FALSE(chain.replicable(2));
    EXPECT_THROW((void)seq.to_core_chain({1.0}, {1.0, 2.0}), std::invalid_argument);
}

} // namespace
