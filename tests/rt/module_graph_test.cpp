#include "rt/module_graph.hpp"

#include "rt/pipeline.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::rt;

struct Frame {
    std::uint64_t seq = 0;
    int a = 0;
    int b = 0;
    int out = 0;
};

TEST(ModuleGraph, LinearizesSimpleChain)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("source", true, [](Frame& f) { f.a = 1; }, {}, {"a"});
    const auto work = graph.add("work", false, [](Frame& f) { f.b = f.a * 2; }, {"a"}, {"b"});
    const auto sink = graph.add("sink", true, [](Frame& f) { f.out = f.b; }, {"b"}, {});
    graph.bind(source, "a", work, "a");
    graph.bind(work, "b", sink, "b");
    const auto names = graph.linearized_names();
    EXPECT_EQ(names, (std::vector<std::string>{"source", "work", "sink"}));
}

TEST(ModuleGraph, DeclarationOrderDoesNotDictateExecutionOrder)
{
    // Declare out of order; bindings define the true order.
    ModuleGraph<Frame> graph;
    const auto sink = graph.add("sink", true, [](Frame&) {}, {"x"}, {});
    const auto source = graph.add("source", true, [](Frame&) {}, {}, {"x"});
    graph.bind(source, "x", sink, "x");
    EXPECT_EQ(graph.linearized_names(), (std::vector<std::string>{"source", "sink"}));
}

TEST(ModuleGraph, AutoBindMatchesPortNames)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("src", true, [](Frame&) {}, {}, {"a", "b"});
    const auto sink = graph.add("dst", false, [](Frame&) {}, {"a", "b"}, {});
    graph.auto_bind(source, sink);
    EXPECT_EQ(graph.linearized_names(), (std::vector<std::string>{"src", "dst"}));
}

TEST(ModuleGraph, RejectsUnboundInput)
{
    ModuleGraph<Frame> graph;
    graph.add("src", true, [](Frame&) {}, {}, {"a"});
    graph.add("dst", false, [](Frame&) {}, {"a"}, {});
    EXPECT_THROW((void)graph.linearize(), std::invalid_argument);
}

TEST(ModuleGraph, RejectsDoubleBinding)
{
    ModuleGraph<Frame> graph;
    const auto s1 = graph.add("s1", true, [](Frame&) {}, {}, {"a"});
    const auto s2 = graph.add("s2", true, [](Frame&) {}, {}, {"a"});
    const auto dst = graph.add("dst", false, [](Frame&) {}, {"a"}, {});
    graph.bind(s1, "a", dst, "a");
    EXPECT_THROW(graph.bind(s2, "a", dst, "a"), std::invalid_argument);
}

TEST(ModuleGraph, RejectsUnknownPortsAndHandles)
{
    ModuleGraph<Frame> graph;
    const auto src = graph.add("src", true, [](Frame&) {}, {}, {"a"});
    const auto dst = graph.add("dst", false, [](Frame&) {}, {"a"}, {});
    EXPECT_THROW(graph.bind(src, "nope", dst, "a"), std::invalid_argument);
    EXPECT_THROW(graph.bind(src, "a", dst, "nope"), std::invalid_argument);
    EXPECT_THROW(graph.bind(ModuleHandle{}, "a", dst, "a"), std::invalid_argument);
}

TEST(ModuleGraph, RejectsDuplicateNamesAndCycles)
{
    ModuleGraph<Frame> graph;
    const auto a = graph.add("a", false, [](Frame&) {}, {"y"}, {"x"});
    EXPECT_THROW(graph.add("a", false, [](Frame&) {}), std::invalid_argument);
    const auto b = graph.add("b", false, [](Frame&) {}, {"x"}, {"y"});
    graph.bind(a, "x", b, "x");
    graph.bind(b, "y", a, "y");
    EXPECT_THROW((void)graph.linearize(), std::invalid_argument);
}

TEST(ModuleGraph, EmptyGraphRejected)
{
    ModuleGraph<Frame> graph;
    EXPECT_THROW((void)graph.linearize(), std::invalid_argument);
}

TEST(ModuleGraph, LinearizedSequenceRunsInPipeline)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("source", true, [](Frame& f) { f.a = 3; }, {}, {"a"});
    const auto left = graph.add("dbl", false, [](Frame& f) { f.b = f.a * 2; }, {"a"}, {"b"});
    const auto sink =
        graph.add("sum", true, [](Frame& f) { f.out = f.a + f.b; }, {"a", "b"}, {});
    graph.bind(source, "a", left, "a");
    graph.bind(source, "a", sink, "a");
    graph.bind(left, "b", sink, "b");

    auto sequence = graph.linearize();
    ASSERT_EQ(sequence.size(), 3);
    amp::rt::Pipeline<Frame> pipeline{
        sequence, amp::core::Solution{{amp::core::Stage{1, 3, 1, amp::core::CoreType::big}}}};
    std::vector<int> outputs;
    (void)pipeline.run(10, [&](Frame& f) { outputs.push_back(f.out); });
    ASSERT_EQ(outputs.size(), 10u);
    for (const int value : outputs)
        EXPECT_EQ(value, 9); // 3 + 6
}

TEST(ModuleGraph, FanOutProducerFeedsTwoConsumers)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("src", true, [](Frame& f) { f.a = 1; }, {}, {"a"});
    const auto left = graph.add("left", false, [](Frame& f) { f.b += f.a; }, {"a"}, {"b"});
    const auto right = graph.add("right", false, [](Frame& f) { f.out += f.a; }, {"a"}, {"c"});
    graph.bind(source, "a", left, "a");
    graph.bind(source, "a", right, "a");
    const auto names = graph.linearized_names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "src");
    (void)left;
    (void)right;
}

} // namespace
