#include "rt/module_graph.hpp"

#include "rt/pipeline.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::rt;

struct Frame {
    std::uint64_t seq = 0;
    int a = 0;
    int b = 0;
    int out = 0;
};

TEST(ModuleGraph, LinearizesSimpleChain)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("source", true, [](Frame& f) { f.a = 1; }, {}, {"a"});
    const auto work = graph.add("work", false, [](Frame& f) { f.b = f.a * 2; }, {"a"}, {"b"});
    const auto sink = graph.add("sink", true, [](Frame& f) { f.out = f.b; }, {"b"}, {});
    graph.bind(source, "a", work, "a");
    graph.bind(work, "b", sink, "b");
    const auto names = graph.linearized_names();
    EXPECT_EQ(names, (std::vector<std::string>{"source", "work", "sink"}));
}

TEST(ModuleGraph, DeclarationOrderDoesNotDictateExecutionOrder)
{
    // Declare out of order; bindings define the true order.
    ModuleGraph<Frame> graph;
    const auto sink = graph.add("sink", true, [](Frame&) {}, {"x"}, {});
    const auto source = graph.add("source", true, [](Frame&) {}, {}, {"x"});
    graph.bind(source, "x", sink, "x");
    EXPECT_EQ(graph.linearized_names(), (std::vector<std::string>{"source", "sink"}));
}

TEST(ModuleGraph, AutoBindMatchesPortNames)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("src", true, [](Frame&) {}, {}, {"a", "b"});
    const auto sink = graph.add("dst", false, [](Frame&) {}, {"a", "b"}, {});
    graph.auto_bind(source, sink);
    EXPECT_EQ(graph.linearized_names(), (std::vector<std::string>{"src", "dst"}));
}

TEST(ModuleGraph, RejectsUnboundInput)
{
    ModuleGraph<Frame> graph;
    graph.add("src", true, [](Frame&) {}, {}, {"a"});
    graph.add("dst", false, [](Frame&) {}, {"a"}, {});
    EXPECT_THROW((void)graph.linearize(), std::invalid_argument);
}

TEST(ModuleGraph, RejectsDoubleBinding)
{
    ModuleGraph<Frame> graph;
    const auto s1 = graph.add("s1", true, [](Frame&) {}, {}, {"a"});
    const auto s2 = graph.add("s2", true, [](Frame&) {}, {}, {"a"});
    const auto dst = graph.add("dst", false, [](Frame&) {}, {"a"}, {});
    graph.bind(s1, "a", dst, "a");
    EXPECT_THROW(graph.bind(s2, "a", dst, "a"), std::invalid_argument);
}

TEST(ModuleGraph, RejectsUnknownPortsAndHandles)
{
    ModuleGraph<Frame> graph;
    const auto src = graph.add("src", true, [](Frame&) {}, {}, {"a"});
    const auto dst = graph.add("dst", false, [](Frame&) {}, {"a"}, {});
    EXPECT_THROW(graph.bind(src, "nope", dst, "a"), std::invalid_argument);
    EXPECT_THROW(graph.bind(src, "a", dst, "nope"), std::invalid_argument);
    EXPECT_THROW(graph.bind(ModuleHandle{}, "a", dst, "a"), std::invalid_argument);
}

TEST(ModuleGraph, RejectsDuplicateNamesAndCycles)
{
    ModuleGraph<Frame> graph;
    const auto a = graph.add("a", false, [](Frame&) {}, {"y"}, {"x"});
    EXPECT_THROW(graph.add("a", false, [](Frame&) {}), std::invalid_argument);
    const auto b = graph.add("b", false, [](Frame&) {}, {"x"}, {"y"});
    graph.bind(a, "x", b, "x");
    graph.bind(b, "y", a, "y");
    EXPECT_THROW((void)graph.linearize(), std::invalid_argument);
}

TEST(ModuleGraph, EmptyGraphRejected)
{
    ModuleGraph<Frame> graph;
    EXPECT_THROW((void)graph.linearize(), std::invalid_argument);
}

TEST(ModuleGraph, LinearizedSequenceRunsInPipeline)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("source", true, [](Frame& f) { f.a = 3; }, {}, {"a"});
    const auto left = graph.add("dbl", false, [](Frame& f) { f.b = f.a * 2; }, {"a"}, {"b"});
    const auto sink =
        graph.add("sum", true, [](Frame& f) { f.out = f.a + f.b; }, {"a", "b"}, {});
    graph.bind(source, "a", left, "a");
    graph.bind(source, "a", sink, "a");
    graph.bind(left, "b", sink, "b");

    auto sequence = graph.linearize();
    ASSERT_EQ(sequence.size(), 3);
    amp::rt::Pipeline<Frame> pipeline{
        sequence, amp::core::Solution{{amp::core::Stage{1, 3, 1, amp::core::CoreType::big}}}};
    std::vector<int> outputs;
    (void)pipeline.run(10, [&](Frame& f) { outputs.push_back(f.out); });
    ASSERT_EQ(outputs.size(), 10u);
    for (const int value : outputs)
        EXPECT_EQ(value, 9); // 3 + 6
}

TEST(ModuleGraph, RejectsDuplicatePortNames)
{
    ModuleGraph<Frame> graph;
    EXPECT_THROW(graph.add("dup-in", false, [](Frame&) {}, {"a", "a"}, {}),
                 std::invalid_argument);
    EXPECT_THROW(graph.add("dup-out", false, [](Frame&) {}, {}, {"x", "x"}),
                 std::invalid_argument);
    // The same name on an input AND an output is fine (in-place update).
    EXPECT_NO_THROW(graph.add("inout", false, [](Frame&) {}, {"a"}, {"a"}));
}

TEST(ModuleGraph, SingleModuleGraphLinearizesAndDecomposes)
{
    ModuleGraph<Frame> graph;
    (void)graph.add("solo", true, [](Frame& f) { f.a = 1; });
    EXPECT_EQ(graph.linearized_names(), (std::vector<std::string>{"solo"}));

    const auto spec = graph.decompose();
    EXPECT_EQ(spec.sequence.size(), 1);
    EXPECT_TRUE(spec.shape.is_linear());
    ASSERT_EQ(spec.shape.branch_count(), 1);
    EXPECT_EQ(spec.shape.branches[0].first, 1);
    EXPECT_EQ(spec.shape.branches[0].last, 1);
    EXPECT_EQ(spec.names, (std::vector<std::string>{"solo"}));
}

TEST(ModuleGraph, BindingCycleIsRejectedByDecomposeToo)
{
    ModuleGraph<Frame> graph;
    const auto a = graph.add("a", false, [](Frame&) {}, {"in"}, {"out"});
    const auto b = graph.add("b", false, [](Frame&) {}, {"in"}, {"out"});
    graph.bind(a, "out", b, "in");
    graph.bind(b, "out", a, "in");
    EXPECT_THROW((void)graph.linearize(), std::invalid_argument);
    EXPECT_THROW((void)graph.decompose(), std::invalid_argument);
}

TEST(ModuleGraph, DecomposeRequiresUniqueSourceAndSink)
{
    // Two sources feeding one sink.
    {
        ModuleGraph<Frame> graph;
        const auto s1 = graph.add("s1", true, [](Frame&) {}, {}, {"a"});
        const auto s2 = graph.add("s2", true, [](Frame&) {}, {}, {"b"});
        const auto sink = graph.add("sink", true, [](Frame&) {}, {"a", "b"}, {});
        graph.bind(s1, "a", sink, "a");
        graph.bind(s2, "b", sink, "b");
        EXPECT_THROW((void)graph.decompose(), std::invalid_argument);
    }
    // One source feeding two sinks.
    {
        ModuleGraph<Frame> graph;
        const auto src = graph.add("src", true, [](Frame&) {}, {}, {"a"});
        const auto d1 = graph.add("d1", true, [](Frame&) {}, {"a"}, {});
        const auto d2 = graph.add("d2", true, [](Frame&) {}, {"a"}, {});
        graph.bind(src, "a", d1, "a");
        graph.bind(src, "a", d2, "a");
        EXPECT_THROW((void)graph.decompose(), std::invalid_argument);
    }
}

TEST(ModuleGraph, DecomposesDiamondIntoFourBranches)
{
    // src -> {left1 -> left2, right} -> join: the classic fan-out/fan-in
    // diamond. decompose() must group left1+left2 into one branch and give
    // the join both branch predecessors.
    ModuleGraph<Frame> graph;
    const auto src = graph.add("src", true, [](Frame& f) { f.a = 1; }, {}, {"a"});
    const auto left1 = graph.add("left1", false, [](Frame&) {}, {"a"}, {"b"});
    const auto left2 = graph.add("left2", false, [](Frame&) {}, {"b"}, {"c"});
    const auto right = graph.add("right", false, [](Frame&) {}, {"a"}, {"d"});
    const auto join = graph.add("join", true, [](Frame&) {}, {"c", "d"}, {});
    graph.bind(src, "a", left1, "a");
    graph.bind(left1, "b", left2, "b");
    graph.bind(src, "a", right, "a");
    graph.bind(left2, "c", join, "c");
    graph.bind(right, "d", join, "d");

    const auto spec = graph.decompose();
    EXPECT_FALSE(spec.shape.is_linear());
    ASSERT_EQ(spec.shape.branch_count(), 4);
    EXPECT_EQ(spec.names,
              (std::vector<std::string>{"src", "left1", "left2", "right", "join"}));
    EXPECT_EQ(spec.shape.source_branch(), 0);
    EXPECT_EQ(spec.shape.sink_branch(), 3);
    EXPECT_EQ(spec.shape.branches[0].succs, (std::vector<int>{1, 2}));
    EXPECT_EQ(spec.shape.branches[1].first, 2);
    EXPECT_EQ(spec.shape.branches[1].last, 3);
    EXPECT_EQ(spec.shape.branches[3].preds, (std::vector<int>{1, 2}));
    // Replicability mirrors statefulness.
    EXPECT_EQ(spec.shape.chain.replicable,
              (std::vector<bool>{false, true, true, true, false}));
}

TEST(ModuleGraph, FanOutProducerFeedsTwoConsumers)
{
    ModuleGraph<Frame> graph;
    const auto source = graph.add("src", true, [](Frame& f) { f.a = 1; }, {}, {"a"});
    const auto left = graph.add("left", false, [](Frame& f) { f.b += f.a; }, {"a"}, {"b"});
    const auto right = graph.add("right", false, [](Frame& f) { f.out += f.a; }, {"a"}, {"c"});
    graph.bind(source, "a", left, "a");
    graph.bind(source, "a", right, "a");
    const auto names = graph.linearized_names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "src");
    (void)left;
    (void)right;
}

} // namespace
