// Stress and throughput-behaviour tests of the pipeline runtime.

#include "rt/pipeline.hpp"

#include "rt/core_emulator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

using namespace amp::rt;
using amp::core::CoreType;
using amp::core::Solution;
using amp::core::Stage;

struct Frame {
    std::uint64_t seq = 0;
    std::uint64_t checksum = 0;
};

TEST(PipelineStress, ManyFramesManyStages)
{
    TaskSequence<Frame> seq;
    for (int t = 1; t <= 8; ++t)
        seq.push_back(make_task<Frame>("t" + std::to_string(t), t % 3 == 0,
                                       [t](Frame& f) { f.checksum = f.checksum * 31 + t; }));
    const Solution solution{{
        Stage{1, 2, 2, CoreType::big},
        Stage{3, 3, 1, CoreType::big},
        Stage{4, 5, 3, CoreType::little},
        Stage{6, 6, 1, CoreType::big},
        Stage{7, 8, 2, CoreType::big},
    }};
    Pipeline<Frame> pipeline{seq, solution};
    std::uint64_t expected_checksum = 0;
    {
        Frame probe;
        for (int t = 1; t <= 8; ++t)
            probe.checksum = probe.checksum * 31 + t;
        expected_checksum = probe.checksum;
    }
    std::atomic<std::uint64_t> bad{0};
    const auto result = pipeline.run(5000, [&](Frame& f) {
        if (f.checksum != expected_checksum)
            bad.fetch_add(1);
    });
    EXPECT_EQ(result.frames, 5000u);
    EXPECT_EQ(bad.load(), 0u);
}

TEST(PipelineStress, ThroughputScalesWithReplication)
{
    // One heavy replicable task: 4 workers should be meaningfully faster
    // than 1 even on a single-core host? No -- on a single-core host they
    // cannot run in parallel. Instead verify via sleeping tasks, where
    // replication overlaps the waits regardless of core count.
    auto build = [] {
        TaskSequence<Frame> seq;
        seq.push_back(make_task<Frame>("sleepy", false, [](Frame&) {
            std::this_thread::sleep_for(std::chrono::milliseconds{2});
        }));
        return seq;
    };
    auto seq_solo = build();
    Pipeline<Frame> solo{seq_solo, Solution{{Stage{1, 1, 1, CoreType::big}}}};
    const auto solo_result = solo.run(60);

    auto seq_replicated = build();
    Pipeline<Frame> replicated{seq_replicated, Solution{{Stage{1, 1, 4, CoreType::big}}}};
    const auto replicated_result = replicated.run(60);

    EXPECT_GT(replicated_result.fps(), solo_result.fps() * 2.0)
        << "4 replicas should overlap the per-frame waits";
}

TEST(PipelineStress, EmulatorSlowsLittleStages)
{
    auto build = [] {
        TaskSequence<Frame> seq;
        seq.push_back(make_task<Frame>("spin", false, [](Frame&) {
            const auto deadline =
                std::chrono::steady_clock::now() + std::chrono::microseconds{300};
            while (std::chrono::steady_clock::now() < deadline) {
            }
        }));
        return seq;
    };
    SlowdownEmulator emulator{4.0};
    PipelineConfig config;
    config.emulator = &emulator;

    auto seq_big = build();
    Pipeline<Frame> on_big{seq_big, Solution{{Stage{1, 1, 1, CoreType::big}}}, config};
    const auto big_result = on_big.run(100);

    auto seq_little = build();
    Pipeline<Frame> on_little{seq_little, Solution{{Stage{1, 1, 1, CoreType::little}}},
                              config};
    const auto little_result = on_little.run(100);

    EXPECT_GT(big_result.fps(), little_result.fps() * 2.0)
        << "factor-4 emulation must show up in throughput";
}

TEST(PipelineStress, BackToBackRunsAccumulateState)
{
    TaskSequence<Frame> seq;
    auto counter = std::make_shared<std::uint64_t>(0);
    seq.push_back(make_task<Frame>("count", true, [counter](Frame&) { ++*counter; }));
    Pipeline<Frame> pipeline{seq, Solution{{Stage{1, 1, 1, CoreType::big}}}};
    (void)pipeline.run(10);
    (void)pipeline.run(15);
    EXPECT_EQ(*counter, 25u) << "stateful tasks persist across runs";
}

TEST(PipelineStress, ZeroFramesCompletesImmediately)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("noop", false, [](Frame&) {}));
    Pipeline<Frame> pipeline{seq, Solution{{Stage{1, 1, 2, CoreType::big}}}};
    const auto result = pipeline.run(0);
    EXPECT_EQ(result.frames, 0u);
}

} // namespace
