#include "rt/fault.hpp"

#include "rt/pipeline.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

namespace {

using namespace amp::rt;
using amp::core::CoreType;
using amp::core::Solution;
using amp::core::Stage;

using std::chrono::milliseconds;

struct Frame {
    std::uint64_t seq = 0;
    int value = 0;
};

/// n stateless tasks; task i adds i to the value.
TaskSequence<Frame> make_sequence(int n)
{
    TaskSequence<Frame> seq;
    for (int i = 1; i <= n; ++i)
        seq.push_back(make_task<Frame>("t" + std::to_string(i), false,
                                       [i](Frame& f) { f.value += i; }));
    return seq;
}

// -- injector semantics ----------------------------------------------------

TEST(FaultInjector, SameSeedSamePlan)
{
    RandomFaultConfig config;
    config.frames = 500;
    config.tasks = 6;
    config.workers = 4;
    config.transients = 3;
    config.stalls = 2;
    config.kills = 1;
    const auto a = FaultInjector::random_plan(42, config).plan();
    const auto b = FaultInjector::random_plan(42, config).plan();
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), 6u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].frame, b[i].frame);
        EXPECT_EQ(a[i].task, b[i].task);
        EXPECT_EQ(a[i].worker, b[i].worker);
        EXPECT_EQ(a[i].count, b[i].count);
        EXPECT_LT(a[i].frame, config.frames);
        if (a[i].kind == FaultKind::transient) {
            EXPECT_GE(a[i].task, 1);
            EXPECT_LE(a[i].task, config.tasks);
        } else {
            EXPECT_GE(a[i].worker, 0);
            EXPECT_LT(a[i].worker, config.workers);
        }
    }
}

TEST(FaultInjector, TransientMatchesExactFrameAndConsumesCount)
{
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::transient, 7, 2, -1, 2, milliseconds{0}});
    EXPECT_EQ(injector.pending(), 2u);
    EXPECT_FALSE(injector.should_throw(1, 7)) << "other task";
    EXPECT_FALSE(injector.should_throw(2, 6)) << "other frame";
    EXPECT_TRUE(injector.should_throw(2, 7));
    EXPECT_TRUE(injector.should_throw(2, 7)) << "count = 2: second attempt also throws";
    EXPECT_FALSE(injector.should_throw(2, 7)) << "budget consumed";
    EXPECT_EQ(injector.pending(), 0u);
    EXPECT_FALSE(injector.has_liveness_faults());
}

TEST(FaultInjector, LivenessFaultsFireOnFirstFrameAtOrAfterTrigger)
{
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::stall, 10, 0, 1, 1, milliseconds{30}});
    injector.add(FaultSpec{FaultKind::kill, 20, 0, 2, 1, milliseconds{0}});
    EXPECT_TRUE(injector.has_liveness_faults());

    EXPECT_EQ(injector.stall_before(1, 9).count(), 0) << "before the trigger frame";
    EXPECT_EQ(injector.stall_before(0, 10).count(), 0) << "other worker";
    EXPECT_EQ(injector.stall_before(1, 12).count(), 30)
        << "a replica may skip the exact trigger frame";
    EXPECT_EQ(injector.stall_before(1, 13).count(), 0) << "one-shot";

    EXPECT_FALSE(injector.should_kill(2, 19));
    EXPECT_TRUE(injector.should_kill(2, 25));
    EXPECT_FALSE(injector.should_kill(2, 26)) << "one-shot";
    EXPECT_FALSE(injector.has_liveness_faults());
}

// -- pipeline under injection ---------------------------------------------

// Acceptance (a): a transient task fault is retried and the run completes
// with zero frame loss.
TEST(FaultPipeline, TransientFaultRetriedWithZeroFrameLoss)
{
    auto seq = make_sequence(3);
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 2, CoreType::big},
                             Stage{3, 3, 1, CoreType::big}}};
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::transient, 7, 2, -1, 2, milliseconds{0}});

    PipelineConfig config;
    config.faults = &injector;
    config.max_task_retries = 3;
    config.retry_backoff = std::chrono::microseconds{50};

    Pipeline<Frame> pipeline{seq, solution, config};
    std::vector<Frame> outputs;
    const auto result = pipeline.run(50, [&](Frame& f) { outputs.push_back(f); });

    EXPECT_EQ(result.frames, 50u);
    EXPECT_EQ(result.frames_dropped, 0u) << "retry must absorb the fault without frame loss";
    EXPECT_EQ(result.retries, 2u) << "the fault threw on two consecutive attempts";
    EXPECT_EQ(result.stream_end, 50u);
    EXPECT_FALSE(result.degraded());
    EXPECT_EQ(injector.pending(), 0u);
    ASSERT_EQ(outputs.size(), 50u);
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        EXPECT_EQ(outputs[i].seq, i);
        EXPECT_EQ(outputs[i].value, 1 + 2 + 3)
            << "payload restored before each retry: no double-processing";
    }
}

TEST(FaultPipeline, ExhaustedRetryBudgetPropagatesTheFault)
{
    auto seq = make_sequence(2);
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::transient, 3, 1, -1, 5, milliseconds{0}});
    PipelineConfig config;
    config.faults = &injector;
    config.max_task_retries = 1;
    config.retry_backoff = std::chrono::microseconds{50};
    Pipeline<Frame> pipeline{seq, Solution{{Stage{1, 2, 1, CoreType::big}}}, config};
    EXPECT_THROW((void)pipeline.run(20), TransientTaskFault);
}

TEST(FaultPipeline, StalledReplicaIsFencedAndStreamContinues)
{
    auto seq = make_sequence(2);
    // Workers in stage-major order: 0 = source, 1 and 2 = stage-1 replicas.
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 2, CoreType::little}}};
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::stall, 5, 0, 1, 1, milliseconds{800}});

    PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{150};

    Pipeline<Frame> pipeline{seq, solution, config};
    const auto result = pipeline.run(60);

    ASSERT_TRUE(result.degraded());
    ASSERT_EQ(result.losses.size(), 1u);
    EXPECT_EQ(result.losses[0].worker, 1);
    EXPECT_EQ(result.losses[0].stage, 1);
    EXPECT_EQ(result.losses[0].type, CoreType::little);
    EXPECT_GE(result.failure_seconds, 0.0);
    EXPECT_EQ(result.frames_dropped, 1u) << "only the frame the stalled worker held is lost";
    EXPECT_EQ(result.frames + result.frames_dropped, 60u)
        << "the surviving replica carries the stream to the end";
    EXPECT_EQ(result.stream_end, 60u);
}

TEST(FaultPipeline, KilledSoleWorkerTriggersGracefulDrain)
{
    auto seq = make_sequence(2);
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::kill, 10, 0, 1, 1, milliseconds{0}});

    PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{100};

    Pipeline<Frame> pipeline{seq, solution, config};
    std::vector<std::uint64_t> delivered;
    const auto result = pipeline.run(200, [&](Frame& f) { delivered.push_back(f.seq); });

    ASSERT_TRUE(result.degraded());
    ASSERT_EQ(result.losses.size(), 1u);
    EXPECT_EQ(result.losses[0].stage, 1);
    EXPECT_LT(result.stream_end, 200u) << "the stream was cut short, not completed";
    EXPECT_EQ(result.frames + result.frames_dropped, result.stream_end)
        << "every position before stream_end was delivered or tombstoned";
    EXPECT_GE(result.frames_dropped, 1u) << "at least the held frame is lost";
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i) << "delivered frames stay contiguous and ordered";
}

TEST(FaultPipeline, LivenessFaultsRequireTheWatchdog)
{
    auto seq = make_sequence(2);
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::kill, 0, 0, 0, 1, milliseconds{0}});
    PipelineConfig config;
    config.faults = &injector; // heartbeat_timeout left at zero
    EXPECT_THROW((Pipeline<Frame>{seq, Solution{{Stage{1, 2, 1, CoreType::big}}}, config}),
                 std::invalid_argument);
}

} // namespace
