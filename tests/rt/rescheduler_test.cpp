#include "rt/rescheduler.hpp"

#include "rt/fault.hpp"
#include "svc/solver_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace amp::rt;
using amp::core::CoreType;
using amp::core::Resources;
using amp::core::Solution;
using amp::core::Stage;
using amp::core::TaskChain;
using amp::core::TaskDesc;

using std::chrono::milliseconds;

/// Chain matching the runtime sequences below: task 1 sequential, the rest
/// replicable; little cores run every task 2x slower.
TaskChain make_chain(int n, bool first_sequential = true)
{
    std::vector<TaskDesc> tasks;
    for (int i = 1; i <= n; ++i) {
        const double w = 10.0 + static_cast<double>(i);
        tasks.push_back(TaskDesc{"t" + std::to_string(i), w, 2.0 * w,
                                 !(first_sequential && i == 1)});
    }
    return TaskChain{std::move(tasks)};
}


/// Wraps per-task mean latencies into the TelemetrySnapshot observe()
/// consumes (each latency becomes a single-sample histogram snapshot).
TelemetrySnapshot profile_window(const std::vector<double>& big_us,
                                 const std::vector<double>& little_us)
{
    TelemetrySnapshot telemetry;
    for (const double w : big_us) {
        amp::obs::Histogram h;
        h.record_us(w);
        telemetry.big_us.push_back(h.snapshot());
    }
    for (const double w : little_us) {
        amp::obs::Histogram h;
        h.record_us(w);
        telemetry.little_us.push_back(h.snapshot());
    }
    return telemetry;
}

void expect_feasible(const Solution& solution, const TaskChain& chain,
                     const Resources& budget)
{
    ASSERT_FALSE(solution.empty());
    EXPECT_TRUE(solution.is_well_formed(chain));
    EXPECT_LE(solution.used(CoreType::big), budget.big);
    EXPECT_LE(solution.used(CoreType::little), budget.little);
    const double period = solution.period(chain);
    EXPECT_TRUE(std::isfinite(period));
    EXPECT_TRUE(solution.is_valid(chain, budget, period))
        << "the solution must be period-feasible on its own budget";
}

TEST(Rescheduler, InitialSolutionIsFeasible)
{
    const TaskChain chain = make_chain(5);
    Rescheduler rescheduler{chain, Resources{3, 2}};
    expect_feasible(rescheduler.solution(), chain, Resources{3, 2});
}

TEST(Rescheduler, ThrowsWhenNoResourceAdmitsASchedule)
{
    EXPECT_THROW((Rescheduler{make_chain(4), Resources{0, 0}}), NoScheduleError);
}

TEST(Rescheduler, CoreLossShrinksBudgetDownToOneCoreThenFails)
{
    const TaskChain chain = make_chain(5);
    Rescheduler rescheduler{chain, Resources{2, 2}};
    // Peel cores off one by one; every intermediate schedule must stay
    // feasible on the reduced vector.
    const CoreType losses[] = {CoreType::big, CoreType::little, CoreType::big};
    Resources expected{2, 2};
    for (const CoreType lost : losses) {
        expected.count(lost) -= 1;
        const Solution next = rescheduler.on_core_loss(lost);
        EXPECT_EQ(rescheduler.resources(), expected);
        expect_feasible(next, chain, expected);
    }
    EXPECT_EQ(rescheduler.resources().total(), 1);
    expect_feasible(rescheduler.solution(), chain, Resources{0, 1});
    EXPECT_THROW((void)rescheduler.on_core_loss(CoreType::little), NoScheduleError);
}

TEST(Rescheduler, DegradedPeriodNeverImproves)
{
    const TaskChain chain = make_chain(6, /*first_sequential=*/false);
    Rescheduler rescheduler{chain, Resources{4, 2}};
    double previous = rescheduler.solution().period(chain);
    for (int i = 0; i < 3; ++i) {
        const double period = rescheduler.on_core_loss(CoreType::big).period(chain);
        EXPECT_GE(period, previous - 1e-9) << "fewer cores cannot beat the old period";
        previous = period;
    }
}

TEST(Rescheduler, SmallDriftIsIgnored)
{
    const TaskChain chain = make_chain(4);
    Rescheduler rescheduler{chain, Resources{2, 2}};
    std::vector<double> big, little;
    for (int i = 1; i <= chain.size(); ++i) {
        big.push_back(chain.weight(i, CoreType::big) * 1.05); // 5% < threshold
        little.push_back(chain.weight(i, CoreType::little) * 1.05);
    }
    for (int r = 0; r < 10; ++r) {
        EXPECT_FALSE(rescheduler.observe(profile_window(big, little)).has_value());
        EXPECT_EQ(rescheduler.drift_streak(), 0);
    }
}

TEST(Rescheduler, SustainedDriftRecomputesAfterPatience)
{
    const TaskChain chain = make_chain(4);
    ReschedulePolicy policy;
    policy.drift_threshold = 0.25;
    policy.drift_patience = 3;
    Rescheduler rescheduler{chain, Resources{2, 2}, policy};

    std::vector<double> big, little;
    for (int i = 1; i <= chain.size(); ++i) {
        // Task 2 drifted far beyond the threshold; the rest are stable.
        const double factor = i == 2 ? 2.0 : 1.0;
        big.push_back(chain.weight(i, CoreType::big) * factor);
        little.push_back(chain.weight(i, CoreType::little) * factor);
    }

    EXPECT_FALSE(rescheduler.observe(profile_window(big, little)).has_value());
    EXPECT_EQ(rescheduler.drift_streak(), 1);
    EXPECT_FALSE(rescheduler.observe(profile_window(big, little)).has_value());
    EXPECT_EQ(rescheduler.drift_streak(), 2);
    const auto recomputed = rescheduler.observe(profile_window(big, little));
    ASSERT_TRUE(recomputed.has_value()) << "third consecutive drifted report";
    EXPECT_EQ(rescheduler.drift_streak(), 0) << "streak resets after the recompute";
    EXPECT_DOUBLE_EQ(rescheduler.chain().weight(2, CoreType::big), big[1])
        << "the chain now carries the observed weights";
    expect_feasible(*recomputed, rescheduler.chain(), rescheduler.resources());
}

// Regression: observe() used to OVERWRITE the remembered
// means with the latest window's, so a rebuild after N drifted windows
// reflected only whichever window arrived last. The rebuilt chain must
// carry the average across the whole streak.
TEST(Rescheduler, DriftRebuildAveragesTheWholeStreak)
{
    const TaskChain chain = make_chain(4);
    ReschedulePolicy policy;
    policy.drift_threshold = 0.25;
    policy.drift_patience = 2;
    Rescheduler rescheduler{chain, Resources{2, 2}, policy};

    const auto window = [&](double factor) {
        std::vector<double> big, little;
        for (int i = 1; i <= chain.size(); ++i) {
            big.push_back(chain.weight(i, CoreType::big) * factor);
            little.push_back(chain.weight(i, CoreType::little) * factor);
        }
        return rescheduler.observe(profile_window(big, little));
    };

    EXPECT_FALSE(window(2.0).has_value());
    const auto recomputed = window(3.0);
    ASSERT_TRUE(recomputed.has_value()) << "patience=2 windows reached";

    // Streak average (2.0 + 3.0) / 2 = 2.5x -- not the last window's 3.0x.
    for (int i = 1; i <= chain.size(); ++i) {
        EXPECT_NEAR(rescheduler.chain().weight(i, CoreType::big),
                    chain.weight(i, CoreType::big) * 2.5, 1e-9)
            << "task " << i;
        EXPECT_NEAR(rescheduler.chain().weight(i, CoreType::little),
                    chain.weight(i, CoreType::little) * 2.5, 1e-9)
            << "task " << i;
    }
    expect_feasible(*recomputed, rescheduler.chain(), rescheduler.resources());
}

// Regression companion: a stable window resets the streak AND discards the
// accumulated means, so a later rebuild only averages its own streak.
TEST(Rescheduler, StreakResetDiscardsStaleDriftMeans)
{
    const TaskChain chain = make_chain(4);
    ReschedulePolicy policy;
    policy.drift_threshold = 0.25;
    policy.drift_patience = 2;
    Rescheduler rescheduler{chain, Resources{2, 2}, policy};

    const auto window = [&](double factor) {
        std::vector<double> big, little;
        for (int i = 1; i <= chain.size(); ++i) {
            big.push_back(chain.weight(i, CoreType::big) * factor);
            little.push_back(chain.weight(i, CoreType::little) * factor);
        }
        return rescheduler.observe(profile_window(big, little));
    };

    EXPECT_FALSE(window(5.0).has_value()); // drifted: streak 1
    EXPECT_FALSE(window(1.0).has_value()); // stable: streak (and sums) reset
    EXPECT_EQ(rescheduler.drift_streak(), 0);
    EXPECT_FALSE(window(4.0).has_value()); // new streak
    const auto recomputed = window(4.0);
    ASSERT_TRUE(recomputed.has_value());

    // Exactly 4.0x: the abandoned 5.0x window must not leak into the
    // average (stale sums would give (5 + 4 + 4) / 2 = 6.5x).
    for (int i = 1; i <= chain.size(); ++i)
        EXPECT_NEAR(rescheduler.chain().weight(i, CoreType::big),
                    chain.weight(i, CoreType::big) * 4.0, 1e-9)
            << "task " << i;
}

// Live-telemetry path: the same detector fed real histogram snapshots (as
// the pipeline's obs sink produces them) instead of profiler averages.
// Drift triggers on p95, so a latency TAIL alone -- stable mean -- must
// trip it, and the rebuilt chain must carry the observed means.
TEST(Rescheduler, HistogramSnapshotsDriveDriftDetection)
{
    const TaskChain chain = make_chain(3);
    ReschedulePolicy policy;
    policy.drift_threshold = 0.25;
    policy.drift_patience = 2;
    Rescheduler rescheduler{chain, Resources{2, 2}, policy};

    const auto window = [&](double tail_factor) {
        std::vector<amp::obs::HistogramSnapshot> big, little;
        for (int i = 1; i <= chain.size(); ++i) {
            amp::obs::Histogram h_big, h_little;
            for (int sample = 0; sample < 100; ++sample) {
                // Task 2's tail: every 10th sample blows past the weight;
                // the other tasks (and all means) stay near schedule.
                const double factor =
                    (i == 2 && sample % 10 == 0) ? tail_factor : 1.0;
                h_big.record_us(chain.weight(i, CoreType::big) * factor);
                h_little.record_us(chain.weight(i, CoreType::little) * factor);
            }
            big.push_back(h_big.snapshot());
            little.push_back(h_little.snapshot());
        }
        return rescheduler.observe(TelemetrySnapshot{.big_us = big, .little_us = little});
    };

    // Tail below threshold: p95 ~ scheduled weight, no drift accumulates.
    EXPECT_FALSE(window(1.05).has_value());
    EXPECT_EQ(rescheduler.drift_streak(), 0);

    // 10% of samples at 3x puts p95 at ~3x the weight: drifted.
    EXPECT_FALSE(window(3.0).has_value());
    EXPECT_EQ(rescheduler.drift_streak(), 1);
    const auto recomputed = window(3.0);
    ASSERT_TRUE(recomputed.has_value()) << "patience=2 windows reached";
    EXPECT_EQ(rescheduler.drift_streak(), 0);

    // The rebuilt chain carries the window's MEAN (90 x 1.0 + 10 x 3.0
    // samples = 1.2x the old weight), not the tail value.
    const double expected = chain.weight(2, CoreType::big) * 1.2;
    EXPECT_NEAR(rescheduler.chain().weight(2, CoreType::big), expected, 1e-6);
    expect_feasible(*recomputed, rescheduler.chain(), rescheduler.resources());
}

TEST(Rescheduler, EmptySnapshotsKeepScheduledWeights)
{
    const TaskChain chain = make_chain(3);
    ReschedulePolicy policy;
    policy.drift_patience = 1;
    Rescheduler rescheduler{chain, Resources{2, 2}, policy};

    // Only task 2 reports (2x drifted); the rest ran on no core this
    // window. Silence is not drift, and silent tasks keep their weights.
    std::vector<amp::obs::HistogramSnapshot> big(3), little(3);
    amp::obs::Histogram h;
    h.record_us(chain.weight(2, CoreType::big) * 2.0);
    big[1] = h.snapshot();

    const auto recomputed = rescheduler.observe(TelemetrySnapshot{.big_us = big, .little_us = little});
    ASSERT_TRUE(recomputed.has_value());
    EXPECT_DOUBLE_EQ(rescheduler.chain().weight(2, CoreType::big),
                     chain.weight(2, CoreType::big) * 2.0);
    EXPECT_DOUBLE_EQ(rescheduler.chain().weight(1, CoreType::big),
                     chain.weight(1, CoreType::big));
    EXPECT_DOUBLE_EQ(rescheduler.chain().weight(3, CoreType::little),
                     chain.weight(3, CoreType::little));
}


// -- fault-tolerant end-to-end runs ---------------------------------------

struct Frame {
    std::uint64_t seq = 0;
    int value = 0;
};

/// Runtime twin of make_chain: task 1 stateful, the rest stateless.
TaskSequence<Frame> make_runtime_sequence(int n)
{
    TaskSequence<Frame> seq;
    for (int i = 1; i <= n; ++i)
        seq.push_back(
            make_task<Frame>("t" + std::to_string(i), i == 1, [i](Frame& f) { f.value += i; }));
    return seq;
}

TEST(RunWithRecovery, HealthyRunCompletesWithoutRecoveries)
{
    constexpr int kTasks = 4;
    const TaskChain chain = make_chain(kTasks);
    auto seq = make_runtime_sequence(kTasks);
    Rescheduler rescheduler{chain, Resources{3, 1}};
    const RecoveryReport report = run_with_recovery<Frame>(seq, rescheduler, 50);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.recoveries, 0);
    EXPECT_EQ(report.total.frames, 50u);
    EXPECT_EQ(report.total.frames_dropped, 0u);
    EXPECT_EQ(report.solutions.size(), 1u);
}

// Acceptance (b): a permanent worker kill triggers rescheduling onto the
// remaining cores and the pipeline resumes with a valid (period-feasible)
// solution, completing the stream.
TEST(RunWithRecovery, WorkerKillReschedulesAndCompletesTheStream)
{
    constexpr int kTasks = 4;
    constexpr std::uint64_t kFrames = 100;
    const TaskChain chain = make_chain(kTasks); // task 1 sequential
    auto seq = make_runtime_sequence(kTasks);

    Rescheduler rescheduler{chain, Resources{3, 1}};
    const Resources initial_budget = rescheduler.resources();

    // Task 1 is sequential, so stage 0 runs it alone on one worker: killing
    // worker 0 leaves the stage dead and forces a graceful drain + recovery.
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::kill, 20, 0, 0, 1, milliseconds{0}});

    PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{100};

    std::vector<std::uint64_t> delivered;
    const RecoveryReport report = run_with_recovery<Frame>(
        seq, rescheduler, kFrames, config, [&](Frame& f) { delivered.push_back(f.seq); });

    EXPECT_TRUE(report.completed) << "the stream must resume and reach the end";
    EXPECT_EQ(report.recoveries, 1);
    ASSERT_EQ(report.total.losses.size(), 1u);
    EXPECT_EQ(report.total.losses[0].worker, 0);
    EXPECT_GE(report.total.failure_seconds, 0.0);
    EXPECT_GT(report.recovery_latency_seconds, 0.0);

    // The budget shrank by exactly the lost core's type.
    Resources expected = initial_budget;
    expected.count(report.total.losses[0].type) -= 1;
    EXPECT_EQ(rescheduler.resources(), expected);

    // The resumed schedule is valid and period-feasible on what remains.
    ASSERT_EQ(report.solutions.size(), 2u);
    expect_feasible(report.solutions[1], chain, expected);

    // Stream accounting: every position delivered or tombstoned, in order.
    EXPECT_EQ(report.total.frames + report.total.frames_dropped, kFrames);
    EXPECT_GE(report.total.frames_dropped, 1u);
    EXPECT_EQ(report.total.stream_end, kFrames);
    ASSERT_EQ(delivered.size(), report.total.frames);
    for (std::size_t i = 1; i < delivered.size(); ++i)
        EXPECT_LT(delivered[i - 1], delivered[i]) << "stream order across the hot-swap";
}

// Regression: losing several cores in one run used to trigger one full
// recompute (one solver batch) PER fenced core, transiently adopting
// intermediate solutions. The degraded path must shrink for every loss
// first and then solve exactly once -- pinned through the solver-service
// counters of an injected private service.
TEST(RunWithRecovery, MultiCoreLossSolvesExactlyOneBatch)
{
    constexpr std::uint64_t kFrames = 120;
    // t1 stateful and big-bound, t2..t5 replicable littles: on R = (1, 3)
    // the optimum is [t1]x1B | [t2-t5]x3L, so stage 1 holds worker ids
    // 1..3 and survives two of them dying (no drain, one single run).
    std::vector<TaskDesc> tasks;
    tasks.push_back(TaskDesc{"t1", 100.0, 120.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    const TaskChain chain{std::move(tasks)};

    amp::svc::SolverService service{amp::svc::ServiceConfig{}}; // private metrics
    ReschedulePolicy policy;
    policy.service = &service;
    Rescheduler rescheduler{chain, Resources{1, 3}, policy};

    auto seq = make_runtime_sequence(5);
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::kill, 20, 0, 1, 1, milliseconds{0}});
    injector.add(FaultSpec{FaultKind::kill, 24, 0, 2, 1, milliseconds{0}});

    PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{50};

    RecoveryOptions options;
    options.swap = SwapPolicy::delta; // pin the post-run (drain-path) accounting

    const RecoveryReport report =
        run_with_recovery<Frame>(seq, rescheduler, kFrames, config, {}, -1, options);

    EXPECT_TRUE(report.completed);
    ASSERT_EQ(report.total.losses.size(), 2u);
    EXPECT_EQ(rescheduler.resources(), (Resources{1, 1}))
        << "both lost littles accounted before the solve";
    expect_feasible(rescheduler.solution(), chain, Resources{1, 1});

    const auto snapshot = service.metrics().snapshot();
    const auto count = [&](const std::string& name) -> std::uint64_t {
        const auto it = snapshot.counters.find(name);
        return it == snapshot.counters.end() ? 0u : it->second;
    };
    EXPECT_EQ(count("amp_svc_cache_misses{strategy=\"herad\"}")
                  + count("amp_svc_cache_hits{strategy=\"herad\"}"),
              2u)
        << "one solver batch for the initial solution and ONE for the "
           "double loss -- not one per fenced core";
}

// Overload model (docs/FAULT_MODEL.md): a watchdog core loss while the
// service's admission queue is saturated with bulk traffic must still
// re-solve exactly once and recover -- recovery re-solves carry
// svc::kRecoveryPriority, so the priority_aware shedder displaces junk for
// them instead of shedding them behind it.
TEST(RunWithRecovery, CoreLossUnderAdmissionSaturationStillSolvesExactlyOnce)
{
    constexpr std::uint64_t kFrames = 120;
    std::vector<TaskDesc> tasks;
    tasks.push_back(TaskDesc{"t1", 100.0, 120.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    const TaskChain chain{std::move(tasks)};

    amp::svc::ServiceConfig service_config;
    service_config.admission =
        amp::svc::AdmissionConfig{4, amp::svc::ShedPolicy::priority_aware};
    amp::svc::SolverService service{service_config};
    ReschedulePolicy policy;
    policy.service = &service;
    Rescheduler rescheduler{chain, Resources{1, 3}, policy};

    // Junk tenant: floods the shared service with low-priority batches of a
    // strategy outside the rescheduler's candidate set (twocatac), so the
    // herad counters below stay attributable to recovery alone. Distinct
    // chains defeat the cache -- every junk request is real solver work.
    std::atomic<bool> quit{false};
    std::thread junk{[&] {
        std::uint64_t round = 0;
        while (!quit.load(std::memory_order_acquire)) {
            std::vector<amp::core::ScheduleRequest> requests;
            for (int i = 0; i < 8; ++i) {
                const double jitter = static_cast<double>(round * 8 + i % 8) * 0.125;
                std::vector<TaskDesc> junk_tasks;
                for (int t = 1; t <= 6; ++t)
                    junk_tasks.push_back(TaskDesc{"j" + std::to_string(t),
                                                  10.0 + jitter + t, 20.0 + jitter + t,
                                                  t != 1});
                requests.push_back(amp::core::ScheduleRequest{
                    TaskChain{std::move(junk_tasks)}, Resources{2, 2},
                    amp::core::Strategy::twocatac});
            }
            (void)service.solve_batch(requests);
            ++round;
        }
    }};

    auto seq = make_runtime_sequence(5);
    FaultInjector injector;
    injector.add(FaultSpec{FaultKind::kill, 20, 0, 1, 1, milliseconds{0}});

    PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{50};

    const RecoveryReport report =
        run_with_recovery<Frame>(seq, rescheduler, kFrames, config, {});
    quit.store(true, std::memory_order_release);
    junk.join();

    EXPECT_TRUE(report.completed);
    ASSERT_EQ(report.total.losses.size(), 1u);
    EXPECT_EQ(rescheduler.resources(), (Resources{1, 2}));
    expect_feasible(rescheduler.solution(), chain, Resources{1, 2});
    EXPECT_EQ(report.total.stream_end, kFrames) << "every frame delivered or tombstoned";

    const auto snapshot = service.metrics().snapshot();
    const auto count = [&](const std::string& name) -> std::uint64_t {
        const auto it = snapshot.counters.find(name);
        return it == snapshot.counters.end() ? 0u : it->second;
    };
    EXPECT_EQ(count("amp_svc_cache_misses{strategy=\"herad\"}")
                  + count("amp_svc_cache_hits{strategy=\"herad\"}"),
              2u)
        << "initial solve + exactly one recovery re-solve, with the queue "
           "saturated by the junk tenant";
    const amp::svc::AdmissionStats stats = service.admission_stats();
    EXPECT_GT(stats.rejected + stats.displaced, 0u)
        << "the admission queue must actually have been saturated, or this "
           "test proves nothing";
}

} // namespace
