#include "rt/ordered_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace {

using amp::rt::Envelope;
using amp::rt::OrderedQueue;

TEST(OrderedQueue, DeliversInSequenceOrder)
{
    OrderedQueue<int> queue{8};
    queue.push(Envelope<int>::data(2, 20));
    queue.push(Envelope<int>::data(0, 0));
    queue.push(Envelope<int>::data(1, 10));
    for (std::uint64_t expected = 0; expected < 3; ++expected) {
        const auto env = queue.pop();
        ASSERT_TRUE(env.has_value());
        EXPECT_EQ(env->seq, expected);
        EXPECT_EQ(env->payload, static_cast<int>(expected * 10));
    }
}

TEST(OrderedQueue, EndOfStreamClosesQueue)
{
    OrderedQueue<int> queue{8};
    queue.push(Envelope<int>::data(0, 1));
    queue.push(Envelope<int>::end_of_stream(1));
    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(first->end);
    auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->end);
    EXPECT_FALSE(queue.pop().has_value()) << "closed after end delivery";
}

TEST(OrderedQueue, AbortUnblocksConsumers)
{
    OrderedQueue<int> queue{2};
    std::thread consumer{[&] { EXPECT_FALSE(queue.pop().has_value()); }};
    queue.abort();
    consumer.join();
}

TEST(OrderedQueue, NextSeqBypassesFullBuffer)
{
    // Buffer of capacity 1 already holds seq 1; pushing seq 0 (the frame the
    // consumer needs) must not deadlock.
    OrderedQueue<int> queue{1};
    queue.push(Envelope<int>::data(1, 11));
    std::thread producer{[&] { queue.push(Envelope<int>::data(0, 1)); }};
    const auto env = queue.pop();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->seq, 0u);
    producer.join();
    EXPECT_EQ(queue.pop()->seq, 1u);
}

TEST(OrderedQueue, BackpressureBlocksUntilDrained)
{
    OrderedQueue<int> queue{2};
    queue.push(Envelope<int>::data(0, 0));
    queue.push(Envelope<int>::data(1, 1));
    std::atomic<bool> pushed{false};
    std::thread producer{[&] {
        queue.push(Envelope<int>::data(2, 2)); // over capacity, not next seq
        pushed = true;
    }};
    // Give the producer a chance to (wrongly) slip through.
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    EXPECT_FALSE(pushed.load());
    (void)queue.pop();
    producer.join();
    EXPECT_TRUE(pushed.load());
}

TEST(OrderedQueue, ManyProducersManyConsumers)
{
    constexpr std::uint64_t kFrames = 500;
    OrderedQueue<std::uint64_t> queue{8};
    std::atomic<std::uint64_t> next{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&] {
            for (;;) {
                const std::uint64_t seq = next.fetch_add(1);
                if (seq >= kFrames) {
                    if (seq == kFrames)
                        queue.push(Envelope<std::uint64_t>::end_of_stream(kFrames));
                    return;
                }
                queue.push(Envelope<std::uint64_t>::data(seq, seq * 3));
            }
        });
    }
    std::mutex sink_mutex;
    std::vector<std::uint64_t> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&] {
            while (auto env = queue.pop()) {
                if (env->end)
                    return;
                std::lock_guard lock{sink_mutex};
                seen.push_back(env->seq);
            }
        });
    }
    for (auto& t : producers)
        t.join();
    for (auto& t : consumers)
        t.join();
    ASSERT_EQ(seen.size(), kFrames);
    std::sort(seen.begin(), seen.end());
    for (std::uint64_t i = 0; i < kFrames; ++i)
        EXPECT_EQ(seen[i], i) << "each frame delivered exactly once";
}

TEST(OrderedQueue, ZeroCapacityClampsToOne)
{
    OrderedQueue<int> queue{0};
    EXPECT_EQ(queue.capacity(), 1u);
}

} // namespace
