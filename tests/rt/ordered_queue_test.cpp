#include "rt/ordered_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace {

using amp::rt::Envelope;
using amp::rt::OrderedQueue;

TEST(OrderedQueue, DeliversInSequenceOrder)
{
    OrderedQueue<int> queue{8};
    queue.push(Envelope<int>::data(2, 20));
    queue.push(Envelope<int>::data(0, 0));
    queue.push(Envelope<int>::data(1, 10));
    for (std::uint64_t expected = 0; expected < 3; ++expected) {
        const auto env = queue.pop();
        ASSERT_TRUE(env.has_value());
        EXPECT_EQ(env->seq, expected);
        EXPECT_EQ(env->payload, static_cast<int>(expected * 10));
    }
}

TEST(OrderedQueue, EndOfStreamClosesQueue)
{
    OrderedQueue<int> queue{8};
    queue.push(Envelope<int>::data(0, 1));
    queue.push(Envelope<int>::end_of_stream(1));
    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(first->end);
    auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->end);
    EXPECT_FALSE(queue.pop().has_value()) << "closed after end delivery";
}

TEST(OrderedQueue, AbortUnblocksConsumers)
{
    OrderedQueue<int> queue{2};
    std::thread consumer{[&] { EXPECT_FALSE(queue.pop().has_value()); }};
    queue.abort();
    consumer.join();
}

TEST(OrderedQueue, NextSeqBypassesFullBuffer)
{
    // Buffer of capacity 1 already holds seq 1; pushing seq 0 (the frame the
    // consumer needs) must not deadlock.
    OrderedQueue<int> queue{1};
    queue.push(Envelope<int>::data(1, 11));
    std::thread producer{[&] { queue.push(Envelope<int>::data(0, 1)); }};
    const auto env = queue.pop();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->seq, 0u);
    producer.join();
    EXPECT_EQ(queue.pop()->seq, 1u);
}

TEST(OrderedQueue, BackpressureBlocksUntilDrained)
{
    OrderedQueue<int> queue{2};
    queue.push(Envelope<int>::data(0, 0));
    queue.push(Envelope<int>::data(1, 1));
    std::atomic<bool> pushed{false};
    std::thread producer{[&] {
        queue.push(Envelope<int>::data(2, 2)); // over capacity, not next seq
        pushed = true;
    }};
    // Give the producer a chance to (wrongly) slip through.
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    EXPECT_FALSE(pushed.load());
    (void)queue.pop();
    producer.join();
    EXPECT_TRUE(pushed.load());
}

TEST(OrderedQueue, ManyProducersManyConsumers)
{
    constexpr std::uint64_t kFrames = 500;
    OrderedQueue<std::uint64_t> queue{8};
    std::atomic<std::uint64_t> next{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&] {
            for (;;) {
                const std::uint64_t seq = next.fetch_add(1);
                if (seq >= kFrames) {
                    if (seq == kFrames)
                        queue.push(Envelope<std::uint64_t>::end_of_stream(kFrames));
                    return;
                }
                queue.push(Envelope<std::uint64_t>::data(seq, seq * 3));
            }
        });
    }
    std::mutex sink_mutex;
    std::vector<std::uint64_t> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
        consumers.emplace_back([&] {
            while (auto env = queue.pop()) {
                if (env->end)
                    return;
                std::lock_guard lock{sink_mutex};
                seen.push_back(env->seq);
            }
        });
    }
    for (auto& t : producers)
        t.join();
    for (auto& t : consumers)
        t.join();
    ASSERT_EQ(seen.size(), kFrames);
    std::sort(seen.begin(), seen.end());
    for (std::uint64_t i = 0; i < kFrames; ++i)
        EXPECT_EQ(seen[i], i) << "each frame delivered exactly once";
}

TEST(OrderedQueue, ZeroCapacityClampsToOne)
{
    OrderedQueue<int> queue{0};
    EXPECT_EQ(queue.capacity(), 1u);
}

TEST(OrderedQueue, TryPopForTimesOutOnEmptyQueue)
{
    OrderedQueue<int> queue{4};
    const auto begin = std::chrono::steady_clock::now();
    const auto result = queue.try_pop_for(std::chrono::milliseconds{20});
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    EXPECT_TRUE(result.timed_out());
    EXPECT_FALSE(result.envelope.has_value());
    EXPECT_FALSE(result.done);
    EXPECT_GE(elapsed, std::chrono::milliseconds{15})
        << "a timed-out pop must actually have waited";
}

TEST(OrderedQueue, TryPopForReturnsAvailableEnvelope)
{
    OrderedQueue<int> queue{4};
    queue.push(Envelope<int>::data(0, 42));
    const auto result = queue.try_pop_for(std::chrono::milliseconds{50});
    ASSERT_TRUE(result.envelope.has_value());
    EXPECT_EQ(result.envelope->payload, 42);
    EXPECT_FALSE(result.done);
}

TEST(OrderedQueue, TryPopForWakesUpWithoutAbort)
{
    // The pre-fault-tolerance behaviour: a consumer blocked on a stalled
    // upstream could only be released by abort(), which tears the whole
    // stream down. try_pop_for lets it wake up, notice the world is still
    // alive, and wait again -- then receive the frame when it arrives.
    OrderedQueue<int> queue{4};
    std::atomic<int> wakeups{0};
    std::atomic<bool> got_frame{false};
    std::thread consumer{[&] {
        for (;;) {
            const auto result = queue.try_pop_for(std::chrono::milliseconds{5});
            if (result.timed_out()) {
                ++wakeups;
                continue;
            }
            ASSERT_TRUE(result.envelope.has_value());
            got_frame = true;
            return;
        }
    }};
    std::this_thread::sleep_for(std::chrono::milliseconds{30}); // stalled upstream
    queue.push(Envelope<int>::data(0, 7));
    consumer.join();
    EXPECT_TRUE(got_frame);
    EXPECT_GE(wakeups.load(), 1) << "consumer woke up during the stall without abort()";
}

TEST(OrderedQueue, TryPopForReportsClosedQueue)
{
    OrderedQueue<int> queue{4};
    queue.push(Envelope<int>::end_of_stream(0));
    ASSERT_TRUE(queue.pop().has_value()); // consume the end marker
    const auto result = queue.try_pop_for(std::chrono::milliseconds{5});
    EXPECT_TRUE(result.done);
    EXPECT_FALSE(result.envelope.has_value());
}

TEST(OrderedQueue, TryPushForTimesOutOnFullBufferAndKeepsEnvelope)
{
    OrderedQueue<int> queue{1};
    queue.push(Envelope<int>::data(1, 10)); // out-of-order frame fills capacity
    auto blocked = Envelope<int>::data(2, 20);
    EXPECT_EQ(queue.try_push_for(blocked, std::chrono::milliseconds{10}),
              OrderedQueue<int>::PushOutcome::timed_out);
    EXPECT_EQ(blocked.payload, 20) << "timed-out push must leave the envelope intact";
    // The consumer's next frame always bypasses the capacity check.
    auto awaited = Envelope<int>::data(0, 0);
    EXPECT_EQ(queue.try_push_for(awaited, std::chrono::milliseconds{10}),
              OrderedQueue<int>::PushOutcome::pushed);
}

TEST(OrderedQueue, StalePushIsDroppedAsStale)
{
    // A fenced worker waking up after the watchdog already tombstoned (and
    // the consumer already skipped) its frame must not wedge the buffer --
    // and must be told the frame (not the stream) is dead, so it moves on
    // to its next frame instead of parking.
    OrderedQueue<int> queue{4};
    queue.push(Envelope<int>::data(0, 0));
    ASSERT_TRUE(queue.pop().has_value());
    auto stale = Envelope<int>::data(0, 99);
    EXPECT_EQ(queue.try_push_for(stale, std::chrono::milliseconds{5}),
              OrderedQueue<int>::PushOutcome::stale);
    EXPECT_EQ(queue.buffered(), 0u);
}

TEST(OrderedQueue, ForcePushBypassesCapacityToFillHoles)
{
    // Regression: the watchdog's tombstone for a fenced worker must land
    // even when the surviving workers keep the buffer at capacity with
    // frames *past* the hole. A capacity-bounded push there deadlocks the
    // watchdog: while it retries one tombstone (seq != next_seq), it never
    // fences the other dead worker whose tombstone would fill the hole the
    // consumer is stuck on.
    OrderedQueue<int> queue{4};
    for (std::uint64_t seq = 2; seq < 6; ++seq)
        queue.push(Envelope<int>::data(seq, static_cast<int>(seq))); // full; holes at 0, 1
    auto blocked = Envelope<int>::data(6, 6);
    ASSERT_EQ(queue.try_push_for(blocked, std::chrono::milliseconds{5}),
              OrderedQueue<int>::PushOutcome::timed_out);

    queue.force_push(Envelope<int>::tombstone(1)); // the "first fence", not the hole
    EXPECT_EQ(queue.buffered(), 5u) << "control envelopes overfill instead of blocking";
    queue.force_push(Envelope<int>::tombstone(0)); // the hole-filling fence
    for (std::uint64_t expected = 0; expected < 6; ++expected) {
        const auto env = queue.pop();
        ASSERT_TRUE(env.has_value());
        EXPECT_EQ(env->seq, expected);
        EXPECT_EQ(env->dropped, expected < 2);
    }
    EXPECT_EQ(queue.buffered(), 0u);
}

TEST(OrderedQueue, ForcePushDropsStaleAndAbortedEnvelopes)
{
    OrderedQueue<int> queue{4};
    queue.push(Envelope<int>::data(0, 0));
    ASSERT_TRUE(queue.pop().has_value());
    queue.force_push(Envelope<int>::tombstone(0)); // stale: already delivered
    EXPECT_EQ(queue.buffered(), 0u);
    queue.abort();
    queue.force_push(Envelope<int>::tombstone(5));
    EXPECT_EQ(queue.buffered(), 0u);
}

TEST(OrderedQueue, FirstSeqOffsetSupportsResumedStreams)
{
    OrderedQueue<int> queue{4, 100};
    EXPECT_EQ(queue.next_seq(), 100u);
    queue.push(Envelope<int>::data(100, 1));
    const auto env = queue.pop();
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->seq, 100u);
    EXPECT_EQ(queue.next_seq(), 101u);
}

TEST(OrderedQueue, TombstoneFlowsLikeData)
{
    OrderedQueue<int> queue{4};
    queue.push(Envelope<int>::data(0, 5));
    queue.push(Envelope<int>::tombstone(1));
    queue.push(Envelope<int>::data(2, 7));
    EXPECT_FALSE(queue.pop()->dropped);
    const auto tomb = queue.pop();
    ASSERT_TRUE(tomb.has_value());
    EXPECT_TRUE(tomb->dropped);
    EXPECT_EQ(tomb->seq, 1u);
    EXPECT_EQ(queue.pop()->seq, 2u) << "the stream continues past the tombstone";
}

} // namespace
