#include "rt/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using namespace amp::rt;
using amp::core::CoreType;
using amp::core::Solution;
using amp::core::Stage;

struct Frame {
    std::uint64_t seq = 0;
    std::vector<int> trace; ///< task ids appended in execution order
    int value = 0;
};

/// Builds a chain of n tasks; task i appends its id to the trace and adds
/// i to the value. `stateful` marks which tasks are sequential.
TaskSequence<Frame> make_sequence(const std::vector<bool>& stateful)
{
    TaskSequence<Frame> seq;
    for (std::size_t i = 0; i < stateful.size(); ++i) {
        const int id = static_cast<int>(i) + 1;
        seq.push_back(make_task<Frame>("t" + std::to_string(id), stateful[i], [id](Frame& f) {
            f.trace.push_back(id);
            f.value += id;
        }));
    }
    return seq;
}

std::vector<Frame> run_pipeline(TaskSequence<Frame>& seq, Solution solution,
                                std::uint64_t frames, PipelineConfig config = {})
{
    Pipeline<Frame> pipeline{seq, std::move(solution), config};
    std::vector<Frame> outputs;
    const auto result = pipeline.run(frames, [&](Frame& f) { outputs.push_back(f); });
    EXPECT_EQ(result.frames, frames);
    return outputs;
}

void expect_correct_outputs(const std::vector<Frame>& outputs, int num_tasks)
{
    std::vector<int> expected_trace(static_cast<std::size_t>(num_tasks));
    std::iota(expected_trace.begin(), expected_trace.end(), 1);
    const int expected_value = num_tasks * (num_tasks + 1) / 2;
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        EXPECT_EQ(outputs[i].seq, i) << "outputs must arrive in stream order";
        EXPECT_EQ(outputs[i].trace, expected_trace);
        EXPECT_EQ(outputs[i].value, expected_value);
    }
}

TEST(Pipeline, SingleStageSingleWorker)
{
    auto seq = make_sequence({true, true, true});
    const auto outputs =
        run_pipeline(seq, Solution{{Stage{1, 3, 1, CoreType::big}}}, 50);
    ASSERT_EQ(outputs.size(), 50u);
    expect_correct_outputs(outputs, 3);
}

TEST(Pipeline, MultiStagePipeline)
{
    auto seq = make_sequence({true, false, true, false});
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 3, 1, CoreType::little},
                             Stage{4, 4, 1, CoreType::big}}};
    const auto outputs = run_pipeline(seq, solution, 100);
    ASSERT_EQ(outputs.size(), 100u);
    expect_correct_outputs(outputs, 4);
}

TEST(Pipeline, ReplicatedStagePreservesOrderAndContent)
{
    auto seq = make_sequence({true, false, false, true});
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 3, 4, CoreType::big},
                             Stage{4, 4, 1, CoreType::big}}};
    const auto outputs = run_pipeline(seq, solution, 200);
    ASSERT_EQ(outputs.size(), 200u);
    expect_correct_outputs(outputs, 4);
}

TEST(Pipeline, ConsecutiveReplicatedStagesDifferentTypes)
{
    // The StreamPU v1.6.0 extension scenario: two adjacent replicated
    // stages using different core types.
    auto seq = make_sequence({true, false, false, false, false});
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 3, 3, CoreType::big},
                             Stage{4, 5, 2, CoreType::little}}};
    const auto outputs = run_pipeline(seq, solution, 150);
    ASSERT_EQ(outputs.size(), 150u);
    expect_correct_outputs(outputs, 5);
}

TEST(Pipeline, ReplicatedSourceStage)
{
    auto seq = make_sequence({false, false});
    const Solution solution{{Stage{1, 2, 3, CoreType::big}}};
    const auto outputs = run_pipeline(seq, solution, 120);
    ASSERT_EQ(outputs.size(), 120u);
    expect_correct_outputs(outputs, 2);
}

TEST(Pipeline, StatefulTaskSeesFramesInOrder)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("gen", false, [](Frame&) {}));
    // The stateful task records the sequence numbers it observes.
    auto observed = std::make_shared<std::vector<std::uint64_t>>();
    seq.push_back(make_task<Frame>("stateful", true,
                                   [observed](Frame& f) { observed->push_back(f.seq); }));
    const Solution solution{{Stage{1, 1, 2, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    Pipeline<Frame> pipeline{seq, solution};
    (void)pipeline.run(100);
    ASSERT_EQ(observed->size(), 100u);
    for (std::uint64_t i = 0; i < observed->size(); ++i)
        EXPECT_EQ((*observed)[i], i) << "stateful stage must process frames in stream order";
}

TEST(Pipeline, MatchesSequentialExecution)
{
    // Property: any well-formed solution produces bit-identical output to
    // plain sequential execution.
    const std::vector<bool> stateful{true, false, false, true, false, false};
    const Solution solutions[] = {
        Solution{{Stage{1, 6, 1, CoreType::big}}},
        Solution{{Stage{1, 3, 1, CoreType::big}, Stage{4, 6, 1, CoreType::little}}},
        Solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 3, 2, CoreType::little},
                  Stage{4, 4, 1, CoreType::big}, Stage{5, 6, 3, CoreType::big}}},
    };
    // Reference: run tasks directly.
    std::vector<Frame> reference(40);
    {
        auto seq = make_sequence(stateful);
        for (std::uint64_t f = 0; f < reference.size(); ++f) {
            reference[f].seq = f;
            for (int i = 1; i <= seq.size(); ++i)
                seq.task(i).process(reference[f]);
        }
    }
    for (const auto& solution : solutions) {
        auto seq = make_sequence(stateful);
        const auto outputs = run_pipeline(seq, solution, reference.size());
        ASSERT_EQ(outputs.size(), reference.size());
        for (std::size_t f = 0; f < reference.size(); ++f) {
            EXPECT_EQ(outputs[f].trace, reference[f].trace);
            EXPECT_EQ(outputs[f].value, reference[f].value);
        }
    }
}

TEST(Pipeline, TaskExceptionPropagates)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("boom", false, [](Frame& f) {
        if (f.seq == 7)
            throw std::runtime_error{"injected failure"};
    }));
    Pipeline<Frame> pipeline{seq, Solution{{Stage{1, 1, 1, CoreType::big}}}};
    EXPECT_THROW((void)pipeline.run(20), std::runtime_error);
}

TEST(Pipeline, ExceptionInReplicatedStagePropagates)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("gen", false, [](Frame&) {}));
    seq.push_back(make_task<Frame>("boom", false, [](Frame& f) {
        if (f.seq == 13)
            throw std::runtime_error{"replica failure"};
    }));
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 3, CoreType::big}}};
    Pipeline<Frame> pipeline{seq, solution};
    EXPECT_THROW((void)pipeline.run(50), std::runtime_error);
}

TEST(Pipeline, RejectsIllFormedSolutions)
{
    auto seq = make_sequence({true, false, true});
    EXPECT_THROW((Pipeline<Frame>{seq, Solution{}}), std::invalid_argument);
    EXPECT_THROW((Pipeline<Frame>{seq, Solution{{Stage{1, 2, 1, CoreType::big}}}}),
                 std::invalid_argument)
        << "must cover the whole chain";
    EXPECT_THROW((Pipeline<Frame>{seq, Solution{{Stage{1, 3, 2, CoreType::big}}}}),
                 std::invalid_argument)
        << "replicating a stateful task is forbidden";
    EXPECT_THROW((Pipeline<Frame>{seq, Solution{{Stage{1, 3, 0, CoreType::big}}}}),
                 std::invalid_argument)
        << "zero cores";
}

TEST(Pipeline, MidStreamThrowPropagatesAndJoinsAllWorkers)
{
    // Regression: a task throwing mid-stream must surface the first
    // exception from run() with every worker thread joined -- no deadlock
    // on the adaptors, no stray thread still touching the sequence.
    std::atomic<int> in_flight{0};
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("gen", false, [](Frame&) {}));
    seq.push_back(make_task<Frame>("work", false, [&in_flight](Frame& f) {
        ++in_flight;
        std::this_thread::sleep_for(std::chrono::microseconds{100});
        --in_flight;
        if (f.seq == 11)
            throw std::runtime_error{"frame 11 failed"};
    }));
    seq.push_back(make_task<Frame>("sink", true, [](Frame&) {}));
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 3, CoreType::big},
                             Stage{3, 3, 1, CoreType::big}}};
    Pipeline<Frame> pipeline{seq, solution};
    try {
        (void)pipeline.run(5000);
        FAIL() << "the mid-stream failure must propagate to the caller";
    } catch (const std::runtime_error& error) {
        EXPECT_STREQ(error.what(), "frame 11 failed");
    }
    EXPECT_EQ(in_flight.load(), 0) << "run() returned while a worker still ran a task";
    // Every thread joined and queues are per-run: the same pipeline object
    // is immediately reusable (frames restart at 0, below the fault).
    EXPECT_EQ(pipeline.run(10).frames, 10u);
}

TEST(Pipeline, RunTwiceOnSameSequence)
{
    auto seq = make_sequence({true, false});
    Pipeline<Frame> pipeline{seq, Solution{{Stage{1, 2, 1, CoreType::big}}}};
    EXPECT_EQ(pipeline.run(10).frames, 10u);
    EXPECT_EQ(pipeline.run(10).frames, 10u);
}

TEST(Pipeline, SmallQueueCapacityStillCompletes)
{
    auto seq = make_sequence({true, false, false, true});
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 3, 4, CoreType::big},
                             Stage{4, 4, 1, CoreType::big}}};
    PipelineConfig config;
    config.queue_capacity = 1;
    const auto outputs = run_pipeline(seq, solution, 100, config);
    ASSERT_EQ(outputs.size(), 100u);
    expect_correct_outputs(outputs, 4);
}

} // namespace
