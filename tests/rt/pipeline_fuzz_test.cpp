// Randomized end-to-end property test of the runtime: for random chains and
// the schedules every strategy produces for them, pipelined execution must
// deliver exactly the sequential results, in order.

#include "core/scheduler.hpp"
#include "rt/pipeline.hpp"
#include "sim/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp;

struct Frame {
    std::uint64_t seq = 0;
    std::uint64_t digest = 0;
};

/// Builds a runtime chain matching the scheduling chain's replicability:
/// each task folds its index and the frame seq into a digest.
rt::TaskSequence<Frame> runtime_twin(const core::TaskChain& chain)
{
    rt::TaskSequence<Frame> seq;
    for (int t = 1; t <= chain.size(); ++t) {
        seq.push_back(rt::make_task<Frame>(
            "t" + std::to_string(t), !chain.replicable(t),
            [t](Frame& f) { f.digest = f.digest * 1099511628211ULL + (f.seq ^ (t * 2654435761ULL)); }));
    }
    return seq;
}

std::vector<std::uint64_t> sequential_digests(const core::TaskChain& chain,
                                              std::uint64_t frames)
{
    auto twin = runtime_twin(chain);
    std::vector<std::uint64_t> digests(frames);
    for (std::uint64_t f = 0; f < frames; ++f) {
        Frame frame;
        frame.seq = f;
        for (int t = 1; t <= twin.size(); ++t)
            twin.task(t).process(frame);
        digests[f] = frame.digest;
    }
    return digests;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, EveryStrategyScheduleExecutesFaithfully)
{
    Rng rng{GetParam()};
    sim::GeneratorConfig config;
    config.num_tasks = 10 + static_cast<int>(rng.uniform_int(0, 8));
    config.stateless_ratio = 0.2 + 0.6 * rng.uniform_real(0.0, 1.0);
    const auto chain = sim::generate_chain(config, rng);
    const core::Resources machine{2 + static_cast<int>(rng.uniform_int(0, 3)),
                                  2 + static_cast<int>(rng.uniform_int(0, 3))};

    constexpr std::uint64_t kFrames = 64;
    const auto expected = sequential_digests(chain, kFrames);

    for (const core::Strategy strategy : core::kAllStrategies) {
        const auto solution =
            core::schedule(core::ScheduleRequest{chain, machine, strategy}).solution;
        ASSERT_FALSE(solution.empty()) << core::to_string(strategy);
        auto twin = runtime_twin(chain);
        rt::PipelineConfig pipeline_config;
        pipeline_config.queue_capacity = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
        rt::Pipeline<Frame> pipeline{twin, solution, pipeline_config};
        std::vector<std::uint64_t> actual;
        const auto result = pipeline.run(kFrames, [&](Frame& f) {
            actual.push_back(f.digest);
        });
        ASSERT_EQ(result.frames, kFrames) << core::to_string(strategy);
        ASSERT_EQ(actual, expected)
            << core::to_string(strategy) << " with " << solution.decomposition();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(0x1111, 0x2222, 0x3333, 0x4444, 0x5555, 0x6666),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                             return "seed_" + std::to_string(info.param);
                         });

TEST(PipelinePinning, CoreMapIsAcceptedOnThisHost)
{
    // Compact placement pinned to CPU 0 (always present) must not break
    // execution; on platforms without affinity it is silently ignored.
    rt::TaskSequence<Frame> seq;
    seq.push_back(rt::make_task<Frame>("a", false, [](Frame& f) { f.digest = f.seq; }));
    seq.push_back(rt::make_task<Frame>("b", false, [](Frame& f) { f.digest += 7; }));
    rt::PipelineConfig config;
    config.core_map = {0, 0, 0};
    rt::Pipeline<Frame> pipeline{
        seq,
        core::Solution{{core::Stage{1, 1, 2, core::CoreType::big},
                        core::Stage{2, 2, 1, core::CoreType::little}}},
        config};
    std::vector<std::uint64_t> digests;
    const auto result = pipeline.run(30, [&](Frame& f) { digests.push_back(f.digest); });
    EXPECT_EQ(result.frames, 30u);
    for (std::uint64_t i = 0; i < digests.size(); ++i)
        EXPECT_EQ(digests[i], i + 7);
}

TEST(PipelinePinning, PinHelperReportsStatus)
{
#if defined(__linux__)
    // CPU 0 always exists; pinning to it must succeed.
    EXPECT_TRUE(rt::pin_current_thread_to_cpu(0));
#else
    EXPECT_FALSE(rt::pin_current_thread_to_cpu(0));
#endif
}

} // namespace
