#include "rt/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace {

using namespace amp::rt;

struct Frame {
    std::uint64_t seq = 0;
};

TEST(Profiler, MeasuresPerTaskLatency)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("fast", false, [](Frame&) {}));
    seq.push_back(make_task<Frame>("slow", false, [](Frame&) {
        std::this_thread::sleep_for(std::chrono::microseconds{500});
    }));
    const auto profile = profile_sequence(seq, 5);
    ASSERT_EQ(profile.latency_us.size(), 2u);
    EXPECT_LT(profile.latency_us[0], 200.0);
    EXPECT_GT(profile.latency_us[1], 400.0);
}

TEST(Profiler, ToSchedulerChainAppliesFactors)
{
    TaskSequence<Frame> seq;
    seq.push_back(make_task<Frame>("a", false, [](Frame&) {}));
    seq.push_back(make_task<Frame>("b", true, [](Frame&) {}));
    TaskProfile profile;
    profile.latency_us = {10.0, 20.0};
    const auto chain = to_scheduler_chain(seq, profile, {2.0, 3.0});
    EXPECT_DOUBLE_EQ(chain.weight(1, amp::core::CoreType::big), 10.0);
    EXPECT_DOUBLE_EQ(chain.weight(1, amp::core::CoreType::little), 20.0);
    EXPECT_DOUBLE_EQ(chain.weight(2, amp::core::CoreType::little), 60.0);
    EXPECT_TRUE(chain.replicable(1));
    EXPECT_FALSE(chain.replicable(2));
}

TEST(Profiler, SequenceStatePersistsAcrossFrames)
{
    TaskSequence<Frame> seq;
    auto count = std::make_shared<int>(0);
    seq.push_back(make_task<Frame>("counter", true, [count](Frame&) { ++*count; }));
    (void)profile_sequence(seq, 4, 1);
    EXPECT_EQ(*count, 5) << "warmup + measured frames all flow through the same instance";
}

} // namespace
