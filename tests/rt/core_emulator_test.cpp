#include "rt/core_emulator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::rt;
using amp::core::CoreType;
using namespace std::chrono;

nanoseconds measure(CoreEmulator& emulator, int task, CoreType type, nanoseconds elapsed)
{
    const auto begin = steady_clock::now();
    emulator.after_task(task, type, elapsed);
    return duration_cast<nanoseconds>(steady_clock::now() - begin);
}

TEST(NullEmulator, AddsNoDelay)
{
    NullEmulator emulator;
    EXPECT_LT(measure(emulator, 1, CoreType::little, milliseconds{5}), milliseconds{2});
}

TEST(SlowdownEmulator, BigCoreRunsNative)
{
    SlowdownEmulator emulator{3.0};
    EXPECT_LT(measure(emulator, 1, CoreType::big, milliseconds{5}), milliseconds{2});
}

TEST(SlowdownEmulator, LittleCoreSpinsProportionally)
{
    SlowdownEmulator emulator{3.0};
    // factor 3 => extra spin of ~2x the elapsed time.
    const auto delay = measure(emulator, 1, CoreType::little, milliseconds{5});
    EXPECT_GE(delay, milliseconds{9});
    EXPECT_LT(delay, milliseconds{60});
}

TEST(SlowdownEmulator, PerTaskFactors)
{
    SlowdownEmulator emulator{std::vector<double>{1.0, 4.0}};
    EXPECT_LT(measure(emulator, 1, CoreType::little, milliseconds{4}), milliseconds{2})
        << "task 1 has factor 1: no spin";
    EXPECT_GE(measure(emulator, 2, CoreType::little, milliseconds{4}), milliseconds{10})
        << "task 2 has factor 4: ~12ms spin";
    EXPECT_LT(measure(emulator, 3, CoreType::little, milliseconds{4}), milliseconds{2})
        << "unknown task index defaults to factor 1";
}

TEST(SlowdownEmulator, FactorBelowOneIsIgnored)
{
    SlowdownEmulator emulator{0.5};
    EXPECT_LT(measure(emulator, 1, CoreType::little, milliseconds{5}), milliseconds{2});
}

} // namespace
