#pragma once
// Minimal recursive-descent JSON well-formedness checker for the obs tests.
// The repo only ever EMITS JSON (obs/json.hpp), so the tests need an
// independent reader to prove the emitted documents parse: this one accepts
// exactly RFC 8259 structure (objects, arrays, strings with escapes,
// numbers, true/false/null) and nothing else.

#include <cctype>
#include <string_view>

namespace amp::test {

class JsonChecker {
public:
    explicit JsonChecker(std::string_view text)
        : text_(text)
    {
    }

    /// True when the whole input is exactly one valid JSON value.
    [[nodiscard]] bool valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skip_ws();
        return pos_ == text_.size();
    }

private:
    [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    void skip_ws()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (eof() || peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool value()
    {
        skip_ws();
        if (eof())
            return false;
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool object()
    {
        if (!consume('{'))
            return false;
        skip_ws();
        if (consume('}'))
            return true;
        for (;;) {
            skip_ws();
            if (!string())
                return false;
            skip_ws();
            if (!consume(':') || !value())
                return false;
            skip_ws();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool array()
    {
        if (!consume('['))
            return false;
        skip_ws();
        if (consume(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            skip_ws();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool string()
    {
        if (!consume('"'))
            return false;
        while (!eof()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // control characters must be escaped
            if (c == '\\') {
                if (eof())
                    return false;
                const char esc = text_[pos_++];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i)
                        if (eof() || std::isxdigit(static_cast<unsigned char>(text_[pos_++])) == 0)
                            return false;
                } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f'
                           && esc != 'n' && esc != 'r' && esc != 't') {
                    return false;
                }
            }
        }
        return false; // unterminated
    }

    bool digits()
    {
        if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0)
            return false;
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0)
            ++pos_;
        return true;
    }

    bool number()
    {
        consume('-');
        if (eof())
            return false;
        if (peek() == '0')
            ++pos_; // no leading zeros
        else if (!digits())
            return false;
        if (!eof() && peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (!digits())
                return false;
        }
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

[[nodiscard]] inline bool json_valid(std::string_view text)
{
    return JsonChecker{text}.valid();
}

} // namespace amp::test
