#include "obs/trace.hpp"

#include "json_check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace {

using namespace amp::obs;

TEST(TraceRing, KeepsNewestEventsOnWraparound)
{
    TraceRing ring{8};
    for (std::uint64_t i = 0; i < 20; ++i) {
        TraceEvent event;
        event.frame = i;
        ring.push(event);
    }
    EXPECT_EQ(ring.capacity(), 8u);
    EXPECT_EQ(ring.pushed(), 20u);
    EXPECT_EQ(ring.size(), 8u);
    EXPECT_EQ(ring.dropped(), 12u);
    const std::vector<TraceEvent> events = ring.events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].frame, 12u + i) << "oldest-first, newest retained";
}

TEST(TraceRing, ZeroCapacityClampsToOne)
{
    TraceRing ring{0};
    EXPECT_EQ(ring.capacity(), 1u);
    TraceEvent event;
    event.frame = 7;
    ring.push(event);
    ring.push(event);
    EXPECT_EQ(ring.size(), 1u);
}

TEST(TraceRecorder, InternDeduplicatesNames)
{
    TraceRecorder recorder;
    const std::uint32_t a = recorder.intern("stage0[t1-t2]");
    const std::uint32_t b = recorder.intern("stage1[t3-t3]");
    EXPECT_NE(a, b);
    EXPECT_EQ(recorder.intern("stage0[t1-t2]"), a);
    EXPECT_EQ(recorder.name(a), "stage0[t1-t2]");
}

TEST(TraceRecorder, TracksAreDenseAndNamed)
{
    TraceRecorder recorder;
    EXPECT_EQ(recorder.track_count(), 0u);
    const std::size_t t0 = recorder.add_track("worker 0 (stage 0)");
    const std::size_t t1 = recorder.add_track("watchdog");
    EXPECT_EQ(t0, 0u);
    EXPECT_EQ(t1, 1u);
    EXPECT_EQ(recorder.track_count(), 2u);
    EXPECT_EQ(recorder.track_name(t1), "watchdog");
}

TEST(TraceRecorder, ChromeJsonIsWellFormedAndComplete)
{
    TraceRecorder recorder{16};
    const std::uint32_t span = recorder.intern("stage0[t1-t1]");
    const std::uint32_t mark = recorder.intern("tombstone");
    const std::size_t worker = recorder.add_track("worker 0 (stage 0)");
    const std::size_t watchdog = recorder.add_track("watchdog");
    recorder.emit_complete(worker, span, 10.0, 25.5, 0, 0);
    recorder.emit_complete(worker, span, 40.0, 24.0, 1, 0);
    recorder.emit_instant(watchdog, mark, 70.0, 1, 0);

    const std::string json = recorder.chrome_trace_json();
    EXPECT_TRUE(amp::test::json_valid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Metadata: a process_name plus one thread_name per track.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("worker 0 (stage 0)"), std::string::npos);
    EXPECT_NE(json.find("\"watchdog\""), std::string::npos);
    // Complete spans carry ph:X and a duration; instants carry ph:i.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":25.5"), std::string::npos);
    EXPECT_NE(json.find("\"tombstone\""), std::string::npos);
}

// Distinct tracks may be written from distinct threads with no
// synchronization (the pipeline's worker model); TSan in CI verifies the
// absence of races, this test the absence of lost events.
TEST(TraceRecorder, UnsynchronizedDistinctTracks)
{
    TraceRecorder recorder{1u << 12};
    const std::uint32_t name = recorder.intern("span");
    constexpr int kTracks = 4;
    std::vector<std::size_t> tracks;
    tracks.reserve(kTracks);
    for (int t = 0; t < kTracks; ++t)
        tracks.push_back(recorder.add_track("worker " + std::to_string(t)));

    constexpr std::uint64_t kEvents = 2000;
    std::vector<std::thread> threads;
    threads.reserve(kTracks);
    for (int t = 0; t < kTracks; ++t)
        threads.emplace_back([&recorder, &tracks, name, t] {
            for (std::uint64_t i = 0; i < kEvents; ++i)
                recorder.emit_complete(tracks[static_cast<std::size_t>(t)], name,
                                       static_cast<double>(i), 1.0, i, t);
        });
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(recorder.total_events(), kTracks * kEvents);
    EXPECT_EQ(recorder.total_dropped(), 0u);
    for (const std::size_t track : tracks)
        EXPECT_EQ(recorder.events(track).size(), kEvents);
}

TEST(TraceRecorder, WriteChromeTraceRoundTrips)
{
    TraceRecorder recorder;
    recorder.emit_instant(recorder.add_track("w"), recorder.intern("e"), 1.0, 0, 0);
    const std::string path = testing::TempDir() + "amp_trace_test.json";
    ASSERT_TRUE(recorder.write_chrome_trace(path));
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    std::string contents;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        contents.append(buffer, n);
    std::fclose(file);
    std::remove(path.c_str());
    EXPECT_EQ(contents, recorder.chrome_trace_json());
}

} // namespace
