#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace {

using namespace amp::obs;

TEST(HdrBuckets, IndexIsMonotoneAndBounded)
{
    std::size_t previous = 0;
    for (std::uint64_t v = 0; v < 4096; ++v) {
        const std::size_t index = hdr::bucket_index(v);
        ASSERT_LT(index, hdr::kBucketCount);
        ASSERT_GE(index, previous) << "bucket index must not decrease at v=" << v;
        previous = index;
    }
    // Spot-check across the full 64-bit range, doubling each step.
    std::uint64_t v = 1;
    previous = hdr::bucket_index(0);
    while (v < (std::uint64_t{1} << 62)) {
        const std::size_t index = hdr::bucket_index(v);
        ASSERT_LT(index, hdr::kBucketCount);
        ASSERT_GT(index, previous);
        previous = index;
        v *= 2;
    }
    EXPECT_LT(hdr::bucket_index(~std::uint64_t{0}), hdr::kBucketCount);
}

TEST(HdrBuckets, BoundsBracketEveryValue)
{
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
                            std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{1000},
                            std::uint64_t{123456789}, std::uint64_t{1} << 40,
                            (std::uint64_t{1} << 40) + 12345}) {
        const std::size_t index = hdr::bucket_index(v);
        EXPECT_LE(hdr::bucket_lower(index), v);
        EXPECT_GE(hdr::bucket_upper(index), v);
        EXPECT_EQ(hdr::bucket_index(hdr::bucket_lower(index)), index);
        EXPECT_EQ(hdr::bucket_index(hdr::bucket_upper(index)), index);
    }
}

TEST(HdrBuckets, SmallValuesAreExact)
{
    for (std::uint64_t v = 0; v < hdr::kSubBuckets; ++v) {
        const std::size_t index = hdr::bucket_index(v);
        EXPECT_EQ(hdr::bucket_lower(index), v);
        EXPECT_EQ(hdr::bucket_upper(index), v);
    }
}

TEST(Histogram, EmptySnapshot)
{
    Histogram h;
    const HistogramSnapshot s = h.snapshot();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.percentile_ns(0.5), 0u);
    EXPECT_EQ(s.max_ns(), 0u);
    EXPECT_DOUBLE_EQ(s.mean_us(), 0.0);
}

TEST(Histogram, ExactForSmallCounts)
{
    Histogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.sum_ns(), 60u);
    EXPECT_EQ(s.max_ns(), 30u);
    EXPECT_DOUBLE_EQ(s.mean_us(), 0.02);
    // Small values land in exact buckets, so percentiles are exact too.
    EXPECT_EQ(s.percentile_ns(0.0), 10u);
    EXPECT_EQ(s.percentile_ns(0.5), 20u);
    EXPECT_EQ(s.percentile_ns(1.0), 30u);
}

TEST(Histogram, PercentileWithinRelativeErrorBound)
{
    // 10k distinct values spread over three decades; the log-bucketed p95
    // must sit within the documented 2^-5 ~ 3.2% of the exact p95 (the
    // bucket upper bound always rounds up, so only overestimation occurs).
    Histogram h;
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 1; i <= 10000; ++i) {
        const std::uint64_t v = i * 97 + (i * i) % 1009;
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    const HistogramSnapshot s = h.snapshot();
    for (const double q : {0.50, 0.95, 0.99}) {
        const auto rank = static_cast<std::size_t>(q * 10000.0) - 1;
        const auto exact = static_cast<double>(values[rank]);
        const auto approx = static_cast<double>(s.percentile_ns(q));
        EXPECT_GE(approx, exact * (1.0 - 1e-9)) << "q=" << q;
        EXPECT_LE(approx, exact * 1.033) << "q=" << q;
    }
    EXPECT_EQ(s.percentile_ns(1.0), values.back()) << "p100 is clamped to the true max";
}

TEST(Histogram, MergeEqualsCombinedRecording)
{
    Histogram a;
    Histogram b;
    Histogram combined;
    for (std::uint64_t v = 1; v <= 1000; ++v) {
        (v % 2 == 0 ? a : b).record(v * 13);
        combined.record(v * 13);
    }
    HistogramSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    const HistogramSnapshot expected = combined.snapshot();
    EXPECT_EQ(merged.count(), expected.count());
    EXPECT_EQ(merged.sum_ns(), expected.sum_ns());
    EXPECT_EQ(merged.max_ns(), expected.max_ns());
    for (const double q : {0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(merged.percentile_ns(q), expected.percentile_ns(q)) << "q=" << q;
}

TEST(Histogram, RecordUsRoundsToNanoseconds)
{
    Histogram h;
    h.record_us(1.5);  // 1500 ns
    h.record_us(0.0);  // clamps at 0
    h.record_us(-3.0); // negative clamps at 0
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.max_ns(), 1500u);
}

// The registry hands the same Histogram to many workers; recording must be
// safe from any number of threads and lose no events. (The obs suite also
// runs under TSan in CI, which would flag a data race here.)
TEST(Histogram, ConcurrentRecordingLosesNothing)
{
    Histogram h;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<std::uint64_t>(t * 1000 + i % 997));
        });
    for (auto& thread : threads)
        thread.join();
    const HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : s.buckets())
        bucket_total += c;
    EXPECT_EQ(bucket_total, s.count());
}

} // namespace
