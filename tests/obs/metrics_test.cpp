#include "obs/metrics.hpp"

#include "obs/json.hpp"
#include "obs/sink.hpp"
#include "json_check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace {

using namespace amp::obs;

TEST(Counter, ShardedSlotsAreCacheLinePadded)
{
    // One slot per cache line so concurrent workers never false-share.
    Counter counter{4};
    EXPECT_EQ(counter.shards(), 4u);
    counter.add(0, 5);
    counter.add(1, 7);
    counter.add(4, 1); // wraps onto shard 0
    EXPECT_EQ(counter.value(), 13u);
}

TEST(Counter, ConcurrentIncrementsLoseNothing)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 100000;
    Counter counter{kThreads};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter, t] {
            for (int i = 0; i < kPerThread; ++i)
                counter.inc(static_cast<std::size_t>(t));
        });
    for (auto& thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, LastWriteWins)
{
    Gauge gauge;
    gauge.set(1.5);
    gauge.set(-2.25);
    EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
}

TEST(MetricsRegistry, ReturnsStableReferences)
{
    MetricsRegistry registry{8};
    Counter& a = registry.counter("a_total");
    Gauge& g = registry.gauge("g");
    Histogram& h = registry.histogram("h_us");
    // Registering more instruments must not move the earlier ones.
    for (int i = 0; i < 100; ++i)
        (void)registry.counter("c" + std::to_string(i));
    EXPECT_EQ(&registry.counter("a_total"), &a);
    EXPECT_EQ(&registry.gauge("g"), &g);
    EXPECT_EQ(&registry.histogram("h_us"), &h);
    EXPECT_EQ(a.shards(), 8u);
}

TEST(MetricsRegistry, SnapshotAggregates)
{
    MetricsRegistry registry;
    registry.counter("frames_total").add(0, 42);
    registry.gauge("fps").set(120.5);
    registry.histogram("lat_us").record(1500);
    const MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_EQ(snapshot.counters.at("frames_total"), 42u);
    EXPECT_DOUBLE_EQ(snapshot.gauges.at("fps"), 120.5);
    EXPECT_EQ(snapshot.histograms.at("lat_us").count(), 1u);
}

TEST(Exposition, PrometheusContainsEverySeries)
{
    MetricsRegistry registry;
    registry.counter("amp_frames_delivered_total").add(0, 7);
    registry.gauge("amp_run_fps").set(100.0);
    registry.histogram("amp_stage_latency_us{stage=\"0\"}").record_us(25.0);
    registry.histogram("amp_stage_latency_us{stage=\"1\"}").record_us(50.0);
    const std::string text = render_prometheus(registry.snapshot());

    EXPECT_NE(text.find("# TYPE amp_frames_delivered_total counter"), std::string::npos);
    EXPECT_NE(text.find("amp_frames_delivered_total 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE amp_run_fps gauge"), std::string::npos);
    EXPECT_NE(text.find("amp_stage_latency_us{stage=\"0\",quantile=\"0.95\"}"),
              std::string::npos);
    EXPECT_NE(text.find("amp_stage_latency_us_count{stage=\"1\"} 1"), std::string::npos);
    // The two labelled histograms share one family: a single TYPE line.
    const auto first = text.find("# TYPE amp_stage_latency_us summary");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(text.find("# TYPE amp_stage_latency_us summary", first + 1), std::string::npos);
}

TEST(Exposition, JsonIsWellFormed)
{
    MetricsRegistry registry;
    registry.counter("a_total").add(0, 1);
    registry.gauge("weird \"name\"\n").set(3.5);
    registry.histogram("h_us{stage=\"2\"}").record(12345);
    const std::string json = render_json(registry.snapshot());
    EXPECT_TRUE(amp::test::json_valid(json)) << json;
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Sink, NullConfigDisablesEverything)
{
    Sink sink{SinkConfig::null()};
    EXPECT_FALSE(sink.enabled());
    EXPECT_FALSE(sink.metrics_enabled());
    EXPECT_FALSE(sink.trace_enabled());
    Sink recording;
    EXPECT_TRUE(recording.enabled());
}

} // namespace
