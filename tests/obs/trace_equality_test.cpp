// The acceptance contract of obs/schema.hpp: a real rt::Pipeline run and a
// dsim::simulate run of the SAME chain and schedule produce traces that are
// identical event-by-event in names, frame ids, stage ids and phases --
// only timestamps (wall-clock vs. virtual) and track assignment (the
// runtime's replicated-stage workers race for frames; the simulator uses
// frame % r) may differ.

#include "dsim/simulator.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "rt/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

namespace {

using namespace amp;

struct Frame {
    std::uint64_t seq = 0;
};

/// (event name, frame, stage, phase) -- everything but time and track.
using EventKey = std::tuple<std::string, std::uint64_t, std::int32_t, char>;

std::vector<EventKey> collect_events(const obs::TraceRecorder& recorder)
{
    std::vector<EventKey> keys;
    for (std::size_t track = 0; track < recorder.track_count(); ++track)
        for (const obs::TraceEvent& event : recorder.events(track))
            keys.emplace_back(recorder.name(event.name_id), event.frame, event.stage,
                              static_cast<char>(event.phase));
    std::sort(keys.begin(), keys.end());
    return keys;
}

TEST(TraceEquality, RealAndSimulatedRunsEmitTheSameSchema)
{
    // Three tasks, the first stateful; on R = (2, 1) HeRAD pipelines and
    // replicates, so the trace covers sequential AND replicated stages.
    std::vector<core::TaskDesc> descs;
    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= 3; ++i) {
        const double w = 10.0 + i;
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), w, 2.0 * w, i != 1});
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1, [](Frame&) {}));
    }
    const core::TaskChain chain{std::move(descs)};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, {2, 1}, core::Strategy::herad}).solution;

    constexpr std::uint64_t kFrames = 8;

    obs::Sink real_sink;
    rt::PipelineConfig config;
    config.sink = &real_sink;
    rt::Pipeline<Frame> pipeline{sequence, solution, config};
    const rt::RunResult result = pipeline.run(kFrames, {});
    ASSERT_EQ(result.frames, kFrames);

    obs::Sink sim_sink;
    dsim::SimulationConfig sim_config;
    sim_config.frames = kFrames;
    sim_config.warmup_frames = 1;
    sim_config.sink = &sim_sink;
    (void)dsim::simulate(chain, solution, sim_config);

    const std::vector<EventKey> real_events = collect_events(real_sink.trace());
    const std::vector<EventKey> sim_events = collect_events(sim_sink.trace());
    ASSERT_FALSE(real_events.empty());
    EXPECT_EQ(real_events, sim_events);
    // One span per (frame, stage), every event a complete span.
    EXPECT_EQ(real_events.size(), kFrames * solution.stage_count());

    // Track layout: both sides name one track per worker plus a watchdog.
    const obs::TraceRecorder& real = real_sink.trace();
    const obs::TraceRecorder& sim = sim_sink.trace();
    ASSERT_EQ(real.track_count(), sim.track_count());
    std::vector<std::string> real_tracks, sim_tracks;
    for (std::size_t t = 0; t < real.track_count(); ++t) {
        real_tracks.push_back(real.track_name(t));
        sim_tracks.push_back(sim.track_name(t));
    }
    EXPECT_EQ(real_tracks, sim_tracks);

    // Metric families: everything the simulator emits, the runtime also
    // emits (the runtime adds liveness-only series like heartbeats).
    const obs::MetricsSnapshot real_metrics = real_sink.metrics().snapshot();
    const obs::MetricsSnapshot sim_metrics = sim_sink.metrics().snapshot();
    for (const auto& [name, value] : sim_metrics.counters)
        EXPECT_TRUE(real_metrics.counters.count(name) == 1) << "missing counter " << name;
    for (const auto& [name, value] : sim_metrics.gauges)
        EXPECT_TRUE(real_metrics.gauges.count(name) == 1) << "missing gauge " << name;
    for (const auto& [name, value] : sim_metrics.histograms)
        EXPECT_TRUE(real_metrics.histograms.count(name) == 1) << "missing histogram " << name;
    EXPECT_EQ(real_metrics.counters.at(obs::schema::kFramesDelivered), kFrames);
    EXPECT_EQ(sim_metrics.counters.at(obs::schema::kFramesDelivered), kFrames);
}

TEST(TraceEquality, SimulatedFailureEmitsFenceAndTombstone)
{
    // The failure simulator mirrors the watchdog's fence/tombstone instants
    // on its own watchdog track, exactly like rt::Pipeline::fence.
    std::vector<core::TaskDesc> descs;
    for (int i = 1; i <= 3; ++i)
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), 10.0, 20.0, i != 1});
    const core::TaskChain chain{std::move(descs)};
    const core::Resources budget{2, 1};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::herad}).solution;

    obs::Sink sink;
    dsim::SimulationConfig config;
    config.frames = 50;
    config.warmup_frames = 5;
    config.sink = &sink;
    dsim::FailureModel faults;
    faults.failures.push_back(dsim::SimFailure{20, 0});
    const auto result = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    ASSERT_TRUE(result.schedulable);
    ASSERT_EQ(result.recoveries.size(), 1u);

    const std::vector<EventKey> events = collect_events(sink.trace());
    const auto count_named = [&events](const char* name) {
        return std::count_if(events.begin(), events.end(), [name](const EventKey& key) {
            return std::get<0>(key) == name;
        });
    };
    EXPECT_EQ(count_named(obs::schema::kFence), 1);
    EXPECT_EQ(count_named(obs::schema::kTombstone), 1);
    EXPECT_EQ(sink.metrics().snapshot().counters.at(obs::schema::kWorkersFenced), 1u);
    // The hot-swap opened a second track group: old epoch + new epoch.
    EXPECT_GT(sink.trace().track_count(), solution.used().total() + 1u);
}

} // namespace
