// Satellite coverage: the plan::diff deltas the arbiter produces for
// budget-change pairs -- grow and shrink on both core types, the
// rebuild-required recut path, and quota_min clamping edge cases.

#include "arb/arbiter.hpp"
#include "svc/solver_service.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace amp::arb {
namespace {

core::TaskChain replicable_chain(double w_big, double w_little)
{
    return amp::testing::make_chain({{w_big, w_little, true},
                                     {w_big, w_little, true},
                                     {w_big, w_little, true},
                                     {w_big, w_little, true}});
}

TenantSpec tenant(const char* name, core::TaskChain chain)
{
    TenantSpec spec;
    spec.name = name;
    spec.chain = std::move(chain);
    return spec;
}

class CapturingEndpoint final : public TenantEndpoint {
public:
    explicit CapturingEndpoint(plan::ExecutionPlan plan)
        : plan_(std::move(plan))
    {
    }

    [[nodiscard]] const plan::ExecutionPlan& current_plan() const override { return plan_; }

    [[nodiscard]] SwapKind apply(const plan::ExecutionPlan& next,
                                 const plan::PlanDelta& delta) override
    {
        deltas.push_back(delta);
        if (delta.empty())
            return SwapKind::none;
        if (!delta.compatible)
            return SwapKind::rebuild_required;
        plan_ = next;
        return delta.resize_only() ? SwapKind::frame : SwapKind::delta;
    }

    std::vector<plan::PlanDelta> deltas;

private:
    plan::ExecutionPlan plan_;
};

class ArbiterDeltaTest : public ::testing::Test {
protected:
    /// Arbitrates a single tenant at `from`, binds a capturing endpoint,
    /// resizes the pool to `to` and returns the delta of the second pass.
    plan::PlanDelta resize_delta(core::TaskChain chain, core::Resources from,
                                 core::Resources to, SwapKind expected)
    {
        ArbiterConfig config;
        config.pool = from;
        config.service = &service_;
        Arbiter arbiter{config};
        const TenantId id = arbiter.add_tenant(tenant("t", std::move(chain)));
        arbiter.rearbitrate();

        const TenantStatus status = arbiter.status(id);
        if (!status.planned.ok())
            throw std::logic_error{"resize_delta: first pass produced no plan"};
        CapturingEndpoint endpoint{*status.planned.plan};
        arbiter.bind_endpoint(id, &endpoint);
        arbiter.set_pool(to);
        const ArbitrationReport report = arbiter.rearbitrate();
        EXPECT_EQ(report.changes.size(), 1u);
        EXPECT_EQ(report.changes[0].after, arbiter.status(id).budget);
        EXPECT_EQ(report.changes[0].swap, expected);
        EXPECT_EQ(endpoint.deltas.size(), 1u);
        return report.changes[0].delta;
    }

    svc::SolverService service_{svc::ServiceConfig{.workers = 2}};
};

TEST_F(ArbiterDeltaTest, GrowOnBigCoresIsAResizeOnlySpawn)
{
    // Big-biased replicable chain: one big-core stage under every budget.
    const plan::PlanDelta delta = resize_delta(replicable_chain(10.0, 10000.0),
                                               core::Resources{2, 0},
                                               core::Resources{4, 0}, SwapKind::frame);
    EXPECT_TRUE(delta.compatible);
    EXPECT_TRUE(delta.resize_only());
    EXPECT_EQ(delta.spawned, 2);
    EXPECT_EQ(delta.retired, 0);
}

TEST_F(ArbiterDeltaTest, ShrinkOnBigCoresIsAResizeOnlyRetire)
{
    const plan::PlanDelta delta = resize_delta(replicable_chain(10.0, 10000.0),
                                               core::Resources{4, 0},
                                               core::Resources{2, 0}, SwapKind::frame);
    EXPECT_TRUE(delta.resize_only());
    EXPECT_EQ(delta.retired, 2);
    EXPECT_EQ(delta.spawned, 0);
}

TEST_F(ArbiterDeltaTest, GrowOnLittleCoresIsAResizeOnlySpawn)
{
    // Little-biased chain: the same shape on the other core type.
    const plan::PlanDelta delta = resize_delta(replicable_chain(10000.0, 10.0),
                                               core::Resources{0, 2},
                                               core::Resources{0, 4}, SwapKind::frame);
    EXPECT_TRUE(delta.resize_only());
    EXPECT_EQ(delta.spawned, 2);
}

TEST_F(ArbiterDeltaTest, ShrinkOnLittleCoresIsAResizeOnlyRetire)
{
    const plan::PlanDelta delta = resize_delta(replicable_chain(10000.0, 10.0),
                                               core::Resources{0, 4},
                                               core::Resources{0, 2}, SwapKind::frame);
    EXPECT_TRUE(delta.resize_only());
    EXPECT_EQ(delta.retired, 2);
}

TEST_F(ArbiterDeltaTest, RecutBudgetChangeDemandsARebuild)
{
    // Three sequential tasks: one core runs them as a single stage, two
    // cores split the chain -- a different stage cut, which no delta can
    // express. The endpoint refuses and the arbiter reports it.
    const core::TaskChain sequential = amp::testing::make_chain(
        {{10.0, 10.0, false}, {10.0, 10.0, false}, {10.0, 10.0, false}});
    const plan::PlanDelta delta =
        resize_delta(sequential, core::Resources{1, 0}, core::Resources{2, 0},
                     SwapKind::rebuild_required);
    EXPECT_FALSE(delta.compatible);
    EXPECT_FALSE(delta.reason.empty());
}

TEST_F(ArbiterDeltaTest, WithoutAnEndpointTheDeltaIsStillReported)
{
    ArbiterConfig config;
    config.pool = core::Resources{2, 0};
    config.service = &service_;
    Arbiter arbiter{config};
    const TenantId id =
        arbiter.add_tenant(tenant("t", replicable_chain(10.0, 10000.0)));
    arbiter.rearbitrate();

    arbiter.set_pool(core::Resources{4, 0});
    const ArbitrationReport report = arbiter.rearbitrate();
    ASSERT_EQ(report.changes.size(), 1u);
    EXPECT_EQ(report.changes[0].swap, SwapKind::planned);
    // The delta is diffed against the previously stored plan, so an owner
    // polling status() can still hot-swap by hand.
    EXPECT_TRUE(report.changes[0].delta.resize_only());
    EXPECT_EQ(report.changes[0].delta.spawned, 2);
    EXPECT_EQ(arbiter.status(id).generation, report.generation);
}

TEST_F(ArbiterDeltaTest, QuotaMinClampsToThePoolAndStarves)
{
    ArbiterConfig config;
    config.pool = core::Resources{3, 0};
    config.service = &service_;
    Arbiter arbiter{config};

    TenantSpec greedy = tenant("greedy", replicable_chain(10.0, 10000.0));
    greedy.quota.min = core::Resources{5, 0}; // more than the machine has
    const TenantId id = arbiter.add_tenant(greedy);
    arbiter.rearbitrate();

    const TenantStatus status = arbiter.status(id);
    EXPECT_EQ(status.budget, (core::Resources{3, 0})) << "floor clamps to the pool";
    EXPECT_TRUE(status.starved);
    EXPECT_TRUE(status.planned.ok()) << "a clamped tenant still gets a plan";
}

TEST_F(ArbiterDeltaTest, QuotaMinExactlyThePoolIsNotStarved)
{
    ArbiterConfig config;
    config.pool = core::Resources{3, 0};
    config.service = &service_;
    Arbiter arbiter{config};

    TenantSpec exact = tenant("exact", replicable_chain(10.0, 10000.0));
    exact.quota.min = core::Resources{3, 0};
    const TenantId id = arbiter.add_tenant(exact);
    arbiter.rearbitrate();
    EXPECT_EQ(arbiter.status(id).budget, (core::Resources{3, 0}));
    EXPECT_FALSE(arbiter.status(id).starved);
}

TEST_F(ArbiterDeltaTest, QuotaMinOfAHighPriorityTenantDisplacesFairShare)
{
    ArbiterConfig config;
    config.pool = core::Resources{4, 0};
    config.service = &service_;
    Arbiter arbiter{config};

    TenantSpec reserved = tenant("reserved", replicable_chain(10.0, 10000.0));
    reserved.weight = 1.0;
    reserved.quota.min = core::Resources{3, 0};
    reserved.priority = 10;
    const TenantId vip = arbiter.add_tenant(reserved);
    const TenantId other =
        arbiter.add_tenant(tenant("other", replicable_chain(10.0, 10000.0)));
    arbiter.rearbitrate();

    EXPECT_GE(arbiter.status(vip).budget.big, 3) << "floor granted before fair share";
    EXPECT_EQ(arbiter.status(vip).budget.big + arbiter.status(other).budget.big, 4);
    EXPECT_FALSE(arbiter.status(vip).starved);
}

} // namespace
} // namespace amp::arb
