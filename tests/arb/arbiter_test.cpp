// Integration tests for arb::Arbiter: solver-backed water-filling over real
// period curves, cached re-probes, endpoint hot-swap plumbing and the
// shared-service test override.

#include "arb/arbiter.hpp"
#include "svc/solver_service.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amp::arb {
namespace {

/// Four replicable tasks that only make sense on big cores: the period
/// scales as (sum of weights) / b, giving a clean linear speedup curve.
core::TaskChain big_parallel_chain()
{
    return amp::testing::make_chain({{10.0, 10000.0, true},
                                     {10.0, 10000.0, true},
                                     {10.0, 10000.0, true},
                                     {10.0, 10000.0, true}});
}

TenantSpec tenant(const char* name, double weight, core::TaskChain chain)
{
    TenantSpec spec;
    spec.name = name;
    spec.chain = std::move(chain);
    spec.weight = weight;
    return spec;
}

/// Restores the real shared service even when a test fails mid-way.
struct SharedServiceOverride {
    explicit SharedServiceOverride(svc::SolverService* service)
        : previous(svc::set_shared_service_for_test(service))
    {
    }
    ~SharedServiceOverride() { svc::set_shared_service_for_test(previous); }
    svc::SolverService* previous;
};

/// Endpoint double mirroring rt::PipelineTenantEndpoint's decision table.
class FakeEndpoint final : public TenantEndpoint {
public:
    explicit FakeEndpoint(plan::ExecutionPlan plan)
        : plan_(std::move(plan))
    {
    }

    [[nodiscard]] const plan::ExecutionPlan& current_plan() const override { return plan_; }

    [[nodiscard]] SwapKind apply(const plan::ExecutionPlan& next,
                                 const plan::PlanDelta& delta) override
    {
        deltas.push_back(delta);
        if (delta.empty())
            return SwapKind::none;
        if (!delta.compatible)
            return SwapKind::rebuild_required;
        plan_ = next;
        return delta.resize_only() ? SwapKind::frame : SwapKind::delta;
    }

    std::vector<plan::PlanDelta> deltas;

private:
    plan::ExecutionPlan plan_;
};

class ArbiterTest : public ::testing::Test {
protected:
    svc::SolverService service_{svc::ServiceConfig{.workers = 2}};
};

TEST_F(ArbiterTest, WaterFillingSplitsThePoolProportionallyToWeight)
{
    ArbiterConfig config;
    config.pool = core::Resources{8, 0};
    config.service = &service_;
    Arbiter arbiter{config};

    const TenantId light = arbiter.add_tenant(tenant("light", 1.0, big_parallel_chain()));
    const TenantId heavy = arbiter.add_tenant(tenant("heavy", 3.0, big_parallel_chain()));
    const ArbitrationReport report = arbiter.rearbitrate();

    EXPECT_EQ(report.generation, 1u);
    EXPECT_EQ(arbiter.status(light).budget, (core::Resources{2, 0}));
    EXPECT_EQ(arbiter.status(heavy).budget, (core::Resources{6, 0}));
    // Identical chains at the fair point: period inversely proportional to
    // the grant, so rate/weight matches across tenants.
    EXPECT_NEAR(arbiter.status(light).weighted_rate, arbiter.status(heavy).weighted_rate,
                1e-9);
    // Both tenants got a solved, compiled plan on their granted budget.
    for (const TenantId id : {light, heavy}) {
        const TenantStatus status = arbiter.status(id);
        ASSERT_TRUE(status.planned.ok());
        int replicas = 0;
        for (const plan::PlanStage& stage : status.planned.plan->stages())
            replicas += stage.replicas;
        EXPECT_EQ(replicas, status.budget.total());
    }
}

TEST_F(ArbiterTest, RearbitrateIfDirtyIsANoOpWhenNothingChanged)
{
    ArbiterConfig config;
    config.pool = core::Resources{4, 0};
    config.service = &service_;
    Arbiter arbiter{config};
    const TenantId id = arbiter.add_tenant(tenant("only", 1.0, big_parallel_chain()));

    EXPECT_TRUE(arbiter.dirty());
    ASSERT_TRUE(arbiter.rearbitrate_if_dirty().has_value());
    EXPECT_FALSE(arbiter.dirty());
    EXPECT_FALSE(arbiter.rearbitrate_if_dirty().has_value());

    arbiter.set_weight(id, 2.0);
    EXPECT_TRUE(arbiter.dirty());
    const auto report = arbiter.rearbitrate_if_dirty();
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->generation, 2u);
}

TEST_F(ArbiterTest, UnchangedRearbitrationProbesOnlyTheCache)
{
    // Satellite: the injectable shared service lets this test count the
    // solves an arbiter with no explicit service wiring actually triggers.
    svc::SolverService counting{svc::ServiceConfig{.workers = 1}};
    SharedServiceOverride guard{&counting};

    ArbiterConfig config;
    config.pool = core::Resources{6, 0};
    Arbiter arbiter{config}; // config.service == nullptr -> shared override

    arbiter.add_tenant(tenant("a", 1.0, big_parallel_chain()));
    arbiter.add_tenant(tenant("b", 2.0, big_parallel_chain()));
    const ArbitrationReport first = arbiter.rearbitrate();
    const std::uint64_t misses_after_first = counting.cache_stats().misses;
    EXPECT_GT(misses_after_first, 0u);

    // Same registry state, forced re-run: every probe and re-solve must be
    // answered by the solution cache -- no new solver work.
    const ArbitrationReport second = arbiter.rearbitrate();
    EXPECT_EQ(counting.cache_stats().misses, misses_after_first);
    EXPECT_GT(second.allocation.probes, 0u);
    ASSERT_EQ(first.allocation.tenants.size(), second.allocation.tenants.size());
    for (std::size_t t = 0; t < first.allocation.tenants.size(); ++t) {
        EXPECT_EQ(first.allocation.tenants[t].budget, second.allocation.tenants[t].budget);
        EXPECT_EQ(first.allocation.tenants[t].period_us,
                  second.allocation.tenants[t].period_us);
    }
    EXPECT_EQ(first.allocation.steps, second.allocation.steps);
}

TEST_F(ArbiterTest, BudgetChangePushesAFrameSwapThroughTheEndpoint)
{
    ArbiterConfig config;
    config.pool = core::Resources{2, 0};
    config.service = &service_;
    Arbiter arbiter{config};
    const TenantId id = arbiter.add_tenant(tenant("live", 1.0, big_parallel_chain()));
    arbiter.rearbitrate();

    const TenantStatus before = arbiter.status(id);
    ASSERT_TRUE(before.planned.ok());
    FakeEndpoint endpoint{*before.planned.plan};
    arbiter.bind_endpoint(id, &endpoint);

    // Grow the machine: the all-replicable single-stage plan absorbs the
    // extra cores as a resize-only delta -> frame swap, no drain.
    arbiter.set_pool(core::Resources{4, 0});
    const ArbitrationReport report = arbiter.rearbitrate();
    ASSERT_EQ(report.changes.size(), 1u);
    EXPECT_EQ(report.changes[0].before, (core::Resources{2, 0}));
    EXPECT_EQ(report.changes[0].after, (core::Resources{4, 0}));
    EXPECT_EQ(report.changes[0].swap, SwapKind::frame);
    EXPECT_EQ(report.frame_swaps(), 1);
    EXPECT_EQ(report.rebuilds_required(), 0);
    ASSERT_EQ(endpoint.deltas.size(), 1u);
    EXPECT_TRUE(endpoint.deltas[0].resize_only());
    EXPECT_EQ(endpoint.current_plan().worker_count(), 4);
}

TEST_F(ArbiterTest, RemovingATenantReturnsItsCoresAtTheNextPass)
{
    ArbiterConfig config;
    config.pool = core::Resources{4, 0};
    config.service = &service_;
    Arbiter arbiter{config};
    const TenantId keep = arbiter.add_tenant(tenant("keep", 1.0, big_parallel_chain()));
    const TenantId gone = arbiter.add_tenant(tenant("gone", 1.0, big_parallel_chain()));
    arbiter.rearbitrate();
    EXPECT_EQ(arbiter.status(keep).budget, (core::Resources{2, 0}));

    EXPECT_TRUE(arbiter.remove_tenant(gone));
    EXPECT_FALSE(arbiter.remove_tenant(gone)) << "second remove of the same id";
    arbiter.rearbitrate();
    EXPECT_EQ(arbiter.tenant_count(), 1u);
    EXPECT_EQ(arbiter.status(keep).budget, (core::Resources{4, 0}));
}

TEST_F(ArbiterTest, EmptyPoolStarvesTenantsWithoutPlans)
{
    ArbiterConfig config;
    config.pool = core::Resources{0, 0};
    config.service = &service_;
    Arbiter arbiter{config};
    const TenantId id = arbiter.add_tenant(tenant("dry", 1.0, big_parallel_chain()));
    arbiter.rearbitrate();

    const TenantStatus status = arbiter.status(id);
    EXPECT_EQ(status.budget, (core::Resources{0, 0}));
    EXPECT_TRUE(std::isinf(status.period_us));
    EXPECT_EQ(status.weighted_rate, 0.0);
    EXPECT_EQ(status.planned.plan, nullptr);
}

TEST_F(ArbiterTest, ValidatesArguments)
{
    ArbiterConfig config;
    config.pool = core::Resources{2, 0};
    config.service = &service_;
    Arbiter arbiter{config};

    TenantSpec zero_weight = tenant("bad", 1.0, big_parallel_chain());
    zero_weight.weight = 0.0;
    EXPECT_THROW(arbiter.add_tenant(zero_weight), std::invalid_argument);
    EXPECT_THROW(arbiter.add_tenant(TenantSpec{}), std::invalid_argument);

    const TenantId id = arbiter.add_tenant(tenant("ok", 1.0, big_parallel_chain()));
    EXPECT_THROW(arbiter.set_weight(id, -1.0), std::invalid_argument);
    EXPECT_THROW(arbiter.set_pool(core::Resources{-1, 0}), std::invalid_argument);
    EXPECT_THROW(arbiter.status(id + 999), std::out_of_range);

    ArbiterConfig negative;
    negative.pool = core::Resources{0, -1};
    negative.service = &service_;
    EXPECT_THROW(Arbiter{negative}, std::invalid_argument);
}

TEST(SharedServiceOverrideTest, RedirectsAndRestoresTheProcessService)
{
    svc::SolverService mine{svc::ServiceConfig{.workers = 1}};
    svc::SolverService* previous = svc::set_shared_service_for_test(&mine);
    EXPECT_EQ(&svc::shared_service(), &mine);

    svc::SolverService other{svc::ServiceConfig{.workers = 1}};
    EXPECT_EQ(svc::set_shared_service_for_test(&other), &mine)
        << "exchange must return the previous override";
    EXPECT_EQ(&svc::shared_service(), &other);

    svc::set_shared_service_for_test(previous);
    EXPECT_NE(&svc::shared_service(), &mine);
    EXPECT_NE(&svc::shared_service(), &other);
}

} // namespace
} // namespace amp::arb
