// Unit tests for the pure allocation policy (arb::allocate): weighted
// max-min water-filling, quota floors/caps, baseline policies and the
// deterministic grant trace. The oracle is synthetic here -- solver-backed
// behaviour is covered by arbiter_test.cpp.

#include "arb/allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amp::arb {
namespace {

/// Linear-speedup oracle: tenant t achieves period base[t] / (big + little
/// * little_value) microseconds; infeasible on an empty budget.
BatchPeriodOracle linear_oracle(std::vector<double> base, double little_value = 0.5)
{
    return [base = std::move(base), little_value](const std::vector<PeriodProbe>& probes) {
        std::vector<double> periods;
        periods.reserve(probes.size());
        for (const PeriodProbe& probe : probes) {
            const double power = static_cast<double>(probe.budget.big)
                + little_value * static_cast<double>(probe.budget.little);
            periods.push_back(power > 0.0 ? base[probe.tenant] / power : kInfinitePeriod);
        }
        return periods;
    };
}

TEST(Allocation, WeightedMaxMinSplitsCoresProportionallyToWeight)
{
    // Equal chains, weights 1:3, 8 big cores: the fair point is 2 vs 6.
    const std::vector<TenantDemand> demands{{1.0, {}, 0}, {3.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{8, 0};
    const AllocationResult result =
        allocate(demands, config, linear_oracle({100.0, 100.0}));

    EXPECT_EQ(result.tenants[0].budget, (core::Resources{2, 0}));
    EXPECT_EQ(result.tenants[1].budget, (core::Resources{6, 0}));
    EXPECT_EQ(result.pool_left, (core::Resources{0, 0}));
    // At the fair point the weighted rates are equal (up to rounding).
    EXPECT_NEAR(result.tenants[0].weighted_rate, result.tenants[1].weighted_rate, 1e-12);
    EXPECT_GT(result.min_weighted_rate(), 0.0);
}

TEST(Allocation, TraceIsDeterministic)
{
    const std::vector<TenantDemand> demands{{1.0, {}, 0}, {2.0, {}, 0}, {4.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{6, 5};
    const BatchPeriodOracle oracle = linear_oracle({80.0, 120.0, 50.0});

    const AllocationResult a = allocate(demands, config, oracle);
    const AllocationResult b = allocate(demands, config, oracle);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.probes, b.probes);
    for (std::size_t t = 0; t < demands.size(); ++t) {
        EXPECT_EQ(a.tenants[t].budget, b.tenants[t].budget);
        EXPECT_EQ(a.tenants[t].period_us, b.tenants[t].period_us);
    }
}

TEST(Allocation, StepsRecordEveryGrantInDecisionOrder)
{
    const std::vector<TenantDemand> demands{{1.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{3, 0};
    const AllocationResult result = allocate(demands, config, linear_oracle({60.0}));

    ASSERT_EQ(result.steps.size(), 3u);
    for (std::size_t s = 0; s < result.steps.size(); ++s) {
        EXPECT_EQ(result.steps[s].tenant, 0u);
        EXPECT_EQ(result.steps[s].granted, core::CoreType::big);
        EXPECT_EQ(result.steps[s].budget_after.big, static_cast<int>(s) + 1);
        // Each grant improves the period.
        EXPECT_LT(result.steps[s].period_after_us, result.steps[s].period_before_us);
    }
}

TEST(Allocation, QuotaFloorIsGrantedBeforeFairShareFilling)
{
    TenantQuota reserved;
    reserved.min = core::Resources{3, 0};
    // Without the floor, weight 1 vs 9 would give tenant 0 almost nothing.
    const std::vector<TenantDemand> demands{{1.0, reserved, 0}, {9.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{4, 0};
    const AllocationResult result =
        allocate(demands, config, linear_oracle({100.0, 100.0}));

    EXPECT_GE(result.tenants[0].budget.big, 3);
    EXPECT_FALSE(result.tenants[0].starved);
}

TEST(Allocation, OversubscribedFloorsClampToPoolAndMarkStarved)
{
    TenantQuota big_floor;
    big_floor.min = core::Resources{4, 0};
    const std::vector<TenantDemand> demands{{1.0, big_floor, 0}, {1.0, big_floor, 5}};
    AllocationConfig config;
    config.pool = core::Resources{6, 0};
    const AllocationResult result =
        allocate(demands, config, linear_oracle({100.0, 100.0}));

    // Higher priority floor is served first; the leftover 2 go to tenant 0.
    EXPECT_EQ(result.tenants[1].budget, (core::Resources{4, 0}));
    EXPECT_FALSE(result.tenants[1].starved);
    EXPECT_EQ(result.tenants[0].budget, (core::Resources{2, 0}));
    EXPECT_TRUE(result.tenants[0].starved);
}

TEST(Allocation, QuotaCapStopsTheFillAndReleasesCoresToOthers)
{
    TenantQuota capped;
    capped.max = core::Resources{1, 0};
    const std::vector<TenantDemand> demands{{10.0, capped, 0}, {1.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{5, 0};
    const AllocationResult result =
        allocate(demands, config, linear_oracle({100.0, 100.0}));

    EXPECT_EQ(result.tenants[0].budget, (core::Resources{1, 0}));
    EXPECT_FALSE(result.tenants[0].saturated) << "cap-limited, not period-limited";
    EXPECT_EQ(result.tenants[1].budget, (core::Resources{4, 0}));
}

TEST(Allocation, SaturatedTenantLeavesCoresUnallocated)
{
    // Period never improves past 2 cores: the third grant is refused and the
    // pool keeps the remainder.
    const BatchPeriodOracle plateau = [](const std::vector<PeriodProbe>& probes) {
        std::vector<double> periods;
        for (const PeriodProbe& probe : probes)
            periods.push_back(probe.budget.total() == 0
                                  ? kInfinitePeriod
                                  : 100.0 / std::min(probe.budget.total(), 2));
        return periods;
    };
    const std::vector<TenantDemand> demands{{1.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{6, 0};
    const AllocationResult result = allocate(demands, config, plateau);

    EXPECT_EQ(result.tenants[0].budget.total(), 2);
    EXPECT_TRUE(result.tenants[0].saturated);
    EXPECT_EQ(result.pool_left, (core::Resources{4, 0}));
}

TEST(Allocation, InfeasibleTenantGetsZeroRateAndZeroObjective)
{
    const BatchPeriodOracle never = [](const std::vector<PeriodProbe>& probes) {
        return std::vector<double>(probes.size(), kInfinitePeriod);
    };
    const std::vector<TenantDemand> demands{{1.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{4, 4};
    const AllocationResult result = allocate(demands, config, never);

    EXPECT_TRUE(std::isinf(result.tenants[0].period_us));
    EXPECT_EQ(result.tenants[0].weighted_rate, 0.0);
    EXPECT_EQ(result.min_weighted_rate(), 0.0);
}

TEST(Allocation, EvenSplitIgnoresWeights)
{
    const std::vector<TenantDemand> demands{{1.0, {}, 0}, {100.0, {}, 0}};
    AllocationConfig config;
    config.pool = core::Resources{4, 2};
    config.policy = AllocPolicy::even_split;
    const AllocationResult result =
        allocate(demands, config, linear_oracle({100.0, 100.0}));

    EXPECT_EQ(result.tenants[0].budget, (core::Resources{2, 1}));
    EXPECT_EQ(result.tenants[1].budget, (core::Resources{2, 1}));
}

TEST(Allocation, PriorityOnlyServesHigherPriorityFirst)
{
    // The plateau oracle saturates each tenant at 2 cores, so strict
    // priority gives the high tenant its fill and the rest trickles down.
    const BatchPeriodOracle plateau = [](const std::vector<PeriodProbe>& probes) {
        std::vector<double> periods;
        for (const PeriodProbe& probe : probes)
            periods.push_back(probe.budget.total() == 0
                                  ? kInfinitePeriod
                                  : 100.0 / std::min(probe.budget.total(), 2));
        return periods;
    };
    const std::vector<TenantDemand> demands{{1.0, {}, -1}, {1.0, {}, 7}};
    AllocationConfig config;
    config.pool = core::Resources{3, 0};
    config.policy = AllocPolicy::priority_only;
    const AllocationResult result = allocate(demands, config, plateau);

    EXPECT_EQ(result.tenants[1].budget.total(), 2) << "high priority fills first";
    EXPECT_EQ(result.tenants[0].budget.total(), 1);
}

TEST(Allocation, ValidatesInputs)
{
    const BatchPeriodOracle oracle = linear_oracle({100.0});
    AllocationConfig config;
    config.pool = core::Resources{-1, 0};
    EXPECT_THROW(allocate({TenantDemand{}}, config, oracle), std::invalid_argument);

    config.pool = core::Resources{2, 0};
    EXPECT_THROW(allocate({TenantDemand{0.0, {}, 0}}, config, oracle),
                 std::invalid_argument);

    const BatchPeriodOracle wrong_size = [](const std::vector<PeriodProbe>&) {
        return std::vector<double>{};
    };
    EXPECT_THROW(allocate({TenantDemand{}}, config, wrong_size), std::invalid_argument);
}

TEST(Allocation, EmptyDemandsYieldEmptyResultWithoutProbing)
{
    std::size_t calls = 0;
    const BatchPeriodOracle counting = [&](const std::vector<PeriodProbe>& probes) {
        ++calls;
        return std::vector<double>(probes.size(), 1.0);
    };
    AllocationConfig config;
    config.pool = core::Resources{4, 4};
    const AllocationResult result = allocate({}, config, counting);
    EXPECT_TRUE(result.tenants.empty());
    EXPECT_EQ(result.pool_left, config.pool);
    EXPECT_EQ(calls, 0u);
    EXPECT_EQ(result.min_weighted_rate(), 0.0);
}

TEST(Allocation, JainIndexBounds)
{
    EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0}), 0.5);
    EXPECT_DOUBLE_EQ(jain_index({}), 0.0);
    EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 0.0);
    const double skewed = jain_index({4.0, 1.0, 1.0});
    EXPECT_GT(skewed, 0.0);
    EXPECT_LT(skewed, 1.0);
}

} // namespace
} // namespace amp::arb
