// Frame-granular in-flight hot-swap: resize-only plan deltas are applied
// mid-segment by Pipeline::try_apply_delta_in_flight (no drain -- spawned
// workers join the live stream, retired workers finish their in-flight
// frame and park), and run_with_recovery takes that path on a worker kill
// whose degraded optimum keeps the healthy cut on the same core types.

#include "plan/execution_plan.hpp"
#include "rt/fault.hpp"
#include "rt/pipeline.hpp"
#include "rt/rescheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Resources;
using core::Stage;
using core::TaskChain;
using core::TaskDesc;
using std::chrono::microseconds;
using std::chrono::milliseconds;

struct Frame {
    std::uint64_t seq = 0;
    int value = 0;
};

rt::TaskSequence<Frame> make_sequence(int n, int sleep_us = 0)
{
    rt::TaskSequence<Frame> seq;
    for (int i = 1; i <= n; ++i)
        seq.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1,
                                           [i, sleep_us](Frame& f) {
                                               if (sleep_us > 0 && i == 1)
                                                   std::this_thread::sleep_for(
                                                       microseconds{sleep_us});
                                               f.value += i;
                                           }));
    return seq;
}

/// All-little chain whose degraded optimum keeps the healthy cut on the
/// SAME core types: on R = (0, 4) the optimum is [t1]x1L | [t2-t5]x3L
/// (period 301/3) and after losing one little it stays
/// [t1]x1L | [t2-t5]x2L (period 301/2) -- stage 1 merely resized, nothing
/// rebound, so the loss delta is resize-only by construction.
TaskChain resize_only_chain()
{
    std::vector<TaskDesc> tasks;
    tasks.push_back(TaskDesc{"t1", 100.0, 90.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    return TaskChain{std::move(tasks)};
}

/// Mixed-type sibling (the PR-4 hot-swap chain): its kill recovery keeps
/// the cut but rebinds stage 0 big -> little, which is delta-compatible yet
/// NOT resize-only.
TaskChain rebind_chain()
{
    std::vector<TaskDesc> tasks;
    tasks.push_back(TaskDesc{"t1", 100.0, 120.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    return TaskChain{std::move(tasks)};
}

plan::ExecutionPlan compile_two_stage(const TaskChain& chain, CoreType first_type,
                                      int replicas)
{
    return plan::ExecutionPlan::compile(
        chain, core::Solution{std::vector<Stage>{{1, 1, 1, first_type},
                                                 {2, 5, replicas, CoreType::little}}});
}

TEST(PlanDeltaResizeOnly, ClassifiesResizeRebindAndRecut)
{
    const TaskChain chain = rebind_chain();
    const plan::ExecutionPlan base = compile_two_stage(chain, CoreType::big, 2);

    // Pure resize: one stage grows, nothing rebound.
    const plan::PlanDelta resize =
        plan::diff(base, compile_two_stage(chain, CoreType::big, 3));
    ASSERT_TRUE(resize.compatible) << resize.reason;
    EXPECT_EQ(resize.rebound, 0);
    EXPECT_EQ(resize.spawned, 1);
    EXPECT_TRUE(resize.resize_only());

    // Same cut but stage 0 rebound big -> little: compatible, not resize-only.
    const plan::PlanDelta rebind =
        plan::diff(base, compile_two_stage(chain, CoreType::little, 2));
    ASSERT_TRUE(rebind.compatible) << rebind.reason;
    EXPECT_EQ(rebind.rebound, 1);
    EXPECT_FALSE(rebind.resize_only());

    // A recut is incompatible, so never resize-only either.
    const plan::ExecutionPlan recut = plan::ExecutionPlan::compile(
        chain, core::Solution{std::vector<Stage>{{1, 2, 1, CoreType::big},
                                                 {3, 5, 2, CoreType::little}}});
    const plan::PlanDelta incompatible = plan::diff(base, recut);
    EXPECT_FALSE(incompatible.compatible);
    EXPECT_FALSE(incompatible.resize_only());

    // The no-op delta is trivially resize-only.
    EXPECT_TRUE(plan::diff(base, base).resize_only());
}

TEST(PipelineFrameSwap, RefusesNonResizeOnlyDeltas)
{
    const TaskChain chain = rebind_chain();
    auto seq = make_sequence(5);
    rt::Pipeline<Frame> pipeline{seq, compile_two_stage(chain, CoreType::big, 2),
                                 rt::PipelineConfig{}};
    const plan::PlanDelta rebind =
        plan::diff(pipeline.execution_plan(), compile_two_stage(chain, CoreType::little, 2));
    ASSERT_TRUE(rebind.compatible);
    EXPECT_FALSE(pipeline.try_apply_delta_in_flight(rebind))
        << "a rebound delta must be declined, not applied";
    EXPECT_TRUE(plan::same_topology(pipeline.execution_plan(),
                                    compile_two_stage(chain, CoreType::big, 2)))
        << "a declined swap must not mutate the plan";
}

// The tentpole path: grow and then shrink the replicated stage while a
// segment is in flight. Queues and untouched workers survive, every frame
// is delivered exactly once and in order, and the worker census ends where
// the final plan says it should.
TEST(PipelineFrameSwap, GrowsAndShrinksMidSegment)
{
    constexpr std::uint64_t kFrames = 400;
    const TaskChain chain = resize_only_chain();
    auto seq = make_sequence(5, /*sleep_us=*/150); // ~60 ms of stream to swap inside

    rt::PipelineConfig config;
    std::vector<std::uint64_t> delivered;
    const auto collect = [&](Frame& f) {
        EXPECT_EQ(f.value, 1 + 2 + 3 + 4 + 5) << "every task ran exactly once";
        delivered.push_back(f.seq);
    };

    rt::Pipeline<Frame> pipeline{seq, compile_two_stage(chain, CoreType::little, 2), config};

    rt::RunResult result;
    std::thread runner{[&] { result = pipeline.run(kFrames, collect); }};

    std::this_thread::sleep_for(milliseconds{10});
    const plan::PlanDelta grow =
        plan::diff(pipeline.execution_plan(), compile_two_stage(chain, CoreType::little, 3));
    ASSERT_TRUE(grow.resize_only());
    EXPECT_TRUE(pipeline.try_apply_delta_in_flight(grow));
    EXPECT_EQ(pipeline.live_workers(), 4) << "the spawned replica joins the live segment";

    std::this_thread::sleep_for(milliseconds{10});
    const plan::PlanDelta shrink =
        plan::diff(pipeline.execution_plan(), compile_two_stage(chain, CoreType::little, 2));
    ASSERT_TRUE(shrink.resize_only());
    EXPECT_TRUE(pipeline.try_apply_delta_in_flight(shrink));

    runner.join();

    EXPECT_EQ(result.frames, kFrames);
    EXPECT_EQ(result.frames_dropped, 0u) << "an in-flight swap never drops frames";
    ASSERT_EQ(delivered.size(), kFrames);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i);
    EXPECT_EQ(pipeline.live_workers(), 3) << "back to 1 + 2 workers after the shrink";
    EXPECT_EQ(pipeline.spawned_workers(), 4) << "exactly one replica was ever spawned";
}

// TSan stress target: hammer the in-flight path with alternating grow and
// shrink swaps while the stream runs, racing the swapper against workers,
// the watchdog and segment teardown.
TEST(PipelineFrameSwap, SurvivesRepeatedMidSegmentResizes)
{
    constexpr std::uint64_t kFrames = 1200;
    const TaskChain chain = resize_only_chain();
    auto seq = make_sequence(5, /*sleep_us=*/50);

    rt::PipelineConfig config;
    std::vector<std::uint64_t> delivered;
    const auto collect = [&](Frame& f) { delivered.push_back(f.seq); };

    rt::Pipeline<Frame> pipeline{seq, compile_two_stage(chain, CoreType::little, 2), config};

    std::atomic<bool> done{false};
    int applied = 0;
    std::thread swapper{[&] {
        int replicas = 2;
        while (!done.load()) {
            replicas = replicas == 2 ? 3 : 2;
            const plan::PlanDelta delta = plan::diff(
                pipeline.execution_plan(),
                compile_two_stage(chain, CoreType::little, replicas));
            if (pipeline.try_apply_delta_in_flight(delta))
                ++applied;
            std::this_thread::sleep_for(milliseconds{2});
        }
    }};

    const rt::RunResult result = pipeline.run(kFrames, collect);
    done.store(true);
    swapper.join();

    EXPECT_EQ(result.frames, kFrames);
    EXPECT_EQ(result.frames_dropped, 0u);
    ASSERT_EQ(delivered.size(), kFrames);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i);
    EXPECT_GT(applied, 0) << "the stress run must actually exercise the swap path";
}

/// Kill stage 0's only worker mid-stream and recover with the given options.
rt::RecoveryReport run_kill(const TaskChain& chain, Resources budget,
                            rt::RecoveryOptions options,
                            std::vector<std::uint64_t>* delivered = nullptr)
{
    constexpr std::uint64_t kFrames = 100;
    auto seq = make_sequence(5);
    rt::Rescheduler rescheduler{chain, budget};

    rt::FaultInjector injector;
    injector.add(rt::FaultSpec{rt::FaultKind::kill, 20, 0, 0, 1, milliseconds{0}});

    rt::PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{50};

    const rt::RecoveryReport report = rt::run_with_recovery<Frame>(
        seq, rescheduler, kFrames, config,
        [&](Frame& f) {
            if (delivered)
                delivered->push_back(f.seq);
        },
        -1, options);

    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.recoveries, 1);
    EXPECT_EQ(report.total.frames + report.total.frames_dropped, kFrames);
    EXPECT_EQ(report.total.stream_end, kFrames);
    EXPECT_GT(report.recovery_latency_seconds, 0.0);
    return report;
}

TEST(RunWithRecoveryFrameSwap, ResizeOnlyKillSwapsWithoutDraining)
{
    std::vector<std::uint64_t> delivered;
    const rt::RecoveryReport report =
        run_kill(resize_only_chain(), Resources{0, 4}, rt::RecoveryOptions{}, &delivered);
    EXPECT_EQ(report.frame_swaps, 1) << "a resize-only loss must take the in-flight path";
    EXPECT_EQ(report.delta_swaps, 0);
    EXPECT_EQ(report.rebuild_swaps, 0);
    ASSERT_EQ(report.solutions.size(), 2u);
    for (std::size_t i = 1; i < delivered.size(); ++i)
        EXPECT_LT(delivered[i - 1], delivered[i]) << "stream order across the frame swap";
}

TEST(RunWithRecoveryFrameSwap, ReboundLossFallsBackToTheDrainPath)
{
    // The PR-4 scenario: the degraded optimum rebinds stage 0 big -> little,
    // so the in-flight handler declines and the drain-based delta swap runs
    // -- with the solution already computed by the handler (no second batch).
    std::vector<std::uint64_t> delivered;
    const rt::RecoveryReport report =
        run_kill(rebind_chain(), Resources{1, 3}, rt::RecoveryOptions{}, &delivered);
    EXPECT_EQ(report.frame_swaps, 0) << "a rebound delta never frame-swaps";
    EXPECT_EQ(report.delta_swaps, 1);
    EXPECT_EQ(report.rebuild_swaps, 0);
    for (std::size_t i = 1; i < delivered.size(); ++i)
        EXPECT_LT(delivered[i - 1], delivered[i]);
}

TEST(RunWithRecoveryFrameSwap, DisablingFrameSwapForcesTheDrainPath)
{
    rt::RecoveryOptions options;
    options.swap = rt::SwapPolicy::delta;
    const rt::RecoveryReport report =
        run_kill(resize_only_chain(), Resources{0, 4}, options);
    EXPECT_EQ(report.frame_swaps, 0);
    EXPECT_EQ(report.delta_swaps, 1) << "the resize-only delta is still drain-compatible";
}

} // namespace
