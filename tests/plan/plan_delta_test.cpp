// plan::diff / plan::apply algebra: self-diff is empty, apply(a, diff(a,b))
// reproduces b's topology while preserving kept worker ids, spawns get fresh
// ids, and every structural incompatibility is reported instead of patched.

#include "plan/execution_plan.hpp"
#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Stage;

core::TaskChain five_task_chain()
{
    // t1 stateful, t2..t5 replicable.
    return amp::testing::make_chain({{100, 120, false},
                                {60, 75, true},
                                {60, 75, true},
                                {60, 75, true},
                                {60, 76, true}});
}

plan::ExecutionPlan compile(const core::TaskChain& chain, std::vector<Stage> stages,
                            plan::PlanOptions options = {})
{
    return plan::ExecutionPlan::compile(chain, core::Solution{std::move(stages)}, options);
}

TEST(PlanDiff, SelfDiffIsEmpty)
{
    const core::TaskChain chain = five_task_chain();
    const plan::ExecutionPlan a =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 3, CoreType::little}});

    const plan::PlanDelta delta = plan::diff(a, a);
    EXPECT_TRUE(delta.compatible);
    EXPECT_TRUE(delta.empty());
    ASSERT_EQ(delta.stages.size(), 2u);
    for (const plan::StageDelta& sd : delta.stages)
        EXPECT_EQ(sd.action, plan::StageAction::kept);

    const plan::ExecutionPlan again = plan::apply(a, delta);
    EXPECT_TRUE(plan::same_topology(a, again));
    EXPECT_EQ(again.next_worker_id(), a.next_worker_id());
}

TEST(PlanDiff, ResizeAndRebindProduceCompatibleDelta)
{
    const core::TaskChain chain = five_task_chain();
    // Same cut, stage 0 rebound big->little, stage 1 shrunk 3 -> 2.
    const plan::ExecutionPlan a =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 3, CoreType::little}});
    const plan::ExecutionPlan b =
        compile(chain, {{1, 1, 1, CoreType::little}, {2, 5, 2, CoreType::little}});

    const plan::PlanDelta delta = plan::diff(a, b);
    ASSERT_TRUE(delta.compatible) << delta.reason;
    EXPECT_FALSE(delta.empty());
    ASSERT_EQ(delta.stages.size(), 2u);

    EXPECT_EQ(delta.stages[0].action, plan::StageAction::rebound);
    EXPECT_EQ(delta.stages[0].type_before, CoreType::big);
    EXPECT_EQ(delta.stages[0].type_after, CoreType::little);

    EXPECT_EQ(delta.stages[1].action, plan::StageAction::resized);
    EXPECT_EQ(delta.stages[1].replicas_before, 3);
    EXPECT_EQ(delta.stages[1].replicas_after, 2);
    // The highest slot is retired; a's stage-1 workers are ids {1, 2, 3}.
    ASSERT_EQ(delta.stages[1].retire_worker_ids.size(), 1u);
    EXPECT_EQ(delta.stages[1].retire_worker_ids[0], 3);

    EXPECT_EQ(delta.spawned, 0);
    EXPECT_EQ(delta.retired, 1);
    EXPECT_EQ(delta.rebound, 1);

    const plan::ExecutionPlan swapped = plan::apply(a, delta);
    EXPECT_TRUE(plan::same_topology(swapped, b));
    // Kept workers keep their ids across the swap.
    EXPECT_EQ(swapped.stage(0).worker_ids, (std::vector<int>{0}));
    EXPECT_EQ(swapped.stage(1).worker_ids, (std::vector<int>{1, 2}));
}

TEST(PlanDiff, SpawnsGetFreshIds)
{
    const core::TaskChain chain = five_task_chain();
    const plan::ExecutionPlan a =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 2, CoreType::little}});
    const plan::ExecutionPlan b =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 3, CoreType::little}});

    const plan::PlanDelta delta = plan::diff(a, b);
    ASSERT_TRUE(delta.compatible) << delta.reason;
    EXPECT_EQ(delta.spawned, 1);
    EXPECT_EQ(delta.retired, 0);

    const plan::ExecutionPlan grown = plan::apply(a, delta);
    EXPECT_TRUE(plan::same_topology(grown, b));
    // a's ids were {0} / {1, 2}; the new replica must not reuse any of them.
    EXPECT_EQ(grown.stage(1).worker_ids, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(grown.next_worker_id(), 4);
}

TEST(PlanDiff, RecutIsIncompatible)
{
    const core::TaskChain chain = five_task_chain();
    const plan::ExecutionPlan a =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 3, CoreType::little}});
    const plan::ExecutionPlan three_stages = compile(
        chain,
        {{1, 1, 1, CoreType::big}, {2, 3, 1, CoreType::little}, {4, 5, 1, CoreType::little}});
    const plan::ExecutionPlan moved_boundary =
        compile(chain, {{1, 2, 1, CoreType::big}, {3, 5, 3, CoreType::little}});

    const plan::PlanDelta recount = plan::diff(a, three_stages);
    EXPECT_FALSE(recount.compatible);
    EXPECT_NE(recount.reason.find("stage count"), std::string::npos) << recount.reason;
    EXPECT_TRUE(recount.stages.empty());

    const plan::PlanDelta recut = plan::diff(a, moved_boundary);
    EXPECT_FALSE(recut.compatible);
    EXPECT_NE(recut.reason.find("recut"), std::string::npos) << recut.reason;

    EXPECT_THROW((void)plan::apply(a, recount), plan::PlanError);
}

TEST(PlanDiff, ChainAndQueueChangesAreIncompatible)
{
    const core::TaskChain chain = five_task_chain();
    const core::TaskChain shorter =
        amp::testing::make_chain({{100, 120, false}, {60, 75, true}, {60, 75, true}});

    const plan::ExecutionPlan a =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 3, CoreType::little}});
    const plan::ExecutionPlan other_chain =
        compile(shorter, {{1, 1, 1, CoreType::big}, {2, 3, 2, CoreType::little}});
    const plan::ExecutionPlan deeper_queues =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 3, CoreType::little}},
                plan::PlanOptions{16});

    const plan::PlanDelta chains = plan::diff(a, other_chain);
    EXPECT_FALSE(chains.compatible);
    EXPECT_NE(chains.reason.find("task count"), std::string::npos) << chains.reason;

    const plan::PlanDelta queues = plan::diff(a, deeper_queues);
    EXPECT_FALSE(queues.compatible);
    EXPECT_NE(queues.reason.find("queue capacity"), std::string::npos) << queues.reason;
}

TEST(PlanApply, RejectsDeltaFromADifferentBase)
{
    const core::TaskChain chain = five_task_chain();
    const plan::ExecutionPlan a =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 3, CoreType::little}});
    const plan::ExecutionPlan b =
        compile(chain, {{1, 1, 1, CoreType::big}, {2, 5, 2, CoreType::little}});

    const plan::PlanDelta delta = plan::diff(a, b);
    ASSERT_TRUE(delta.compatible);
    // The delta says "shrink stage 1 from 3 replicas", but b only has 2.
    EXPECT_THROW((void)plan::apply(b, delta), plan::PlanError);
}

TEST(PlanApply, DiffApplyRoundTripsOnRandomChains)
{
    for (const std::uint64_t seed : {3ULL, 11ULL, 77ULL}) {
        Rng rng{seed};
        sim::GeneratorConfig gen;
        gen.num_tasks = 10;
        const core::TaskChain chain = sim::generate_chain(gen, rng);

        const core::Solution healthy =
            amp::testing::solve(core::Strategy::herad, chain, {2, 4});
        const core::Solution degraded =
            amp::testing::solve(core::Strategy::herad, chain, {1, 3});
        if (healthy.empty() || degraded.empty())
            continue;

        const plan::ExecutionPlan before = plan::ExecutionPlan::compile(chain, healthy);
        const plan::ExecutionPlan after = plan::ExecutionPlan::compile(chain, degraded);

        const plan::PlanDelta delta = plan::diff(before, after);
        if (!delta.compatible)
            continue; // recut schedules legitimately force a rebuild
        const plan::ExecutionPlan swapped = plan::apply(before, delta);
        EXPECT_TRUE(plan::same_topology(swapped, after)) << "seed " << seed;
        EXPECT_GE(swapped.next_worker_id(), before.next_worker_id());
    }
}

} // namespace
