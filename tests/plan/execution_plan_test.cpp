// ExecutionPlan::compile round-trips and validation: every strategy's
// solution on random chains compiles into a plan whose structure matches the
// solution exactly, and malformed solutions fail loudly with PlanError.

#include "plan/execution_plan.hpp"
#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Stage;

TEST(ExecutionPlanCompile, RoundTripsEveryStrategyOnRandomChains)
{
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
        Rng rng{seed};
        sim::GeneratorConfig gen;
        gen.num_tasks = 12;
        const core::TaskChain chain = sim::generate_chain(gen, rng);
        const core::Resources budget{3, 4};

        for (const core::Strategy strategy : core::kAllStrategies) {
            const core::Solution solution = amp::testing::solve(strategy, chain, budget);
            if (solution.empty())
                continue; // infeasible for this strategy/budget: nothing to compile

            const plan::ExecutionPlan p = plan::ExecutionPlan::compile(chain, solution);

            ASSERT_EQ(p.stage_count(), solution.stage_count());
            EXPECT_EQ(p.task_count(), chain.size());
            EXPECT_TRUE(p.has_profile());
            EXPECT_EQ(p.solution(), solution);

            int expected_first = 1;
            int next_id = 0;
            for (const plan::PlanStage& st : p.stages()) {
                EXPECT_EQ(st.first, expected_first) << "stages must tile the chain";
                expected_first = st.last + 1;
                ASSERT_EQ(static_cast<std::size_t>(st.replicas), st.worker_ids.size());
                for (const int id : st.worker_ids)
                    EXPECT_EQ(id, next_id++) << "worker ids are dense and stage-major";
                EXPECT_EQ(st.replicated, st.replicas > 1);
                if (st.replicated)
                    EXPECT_FALSE(st.sequential) << "replicated stages must be replicable";
                EXPECT_EQ(st.sequential, !chain.interval_replicable(st.first, st.last));
                EXPECT_DOUBLE_EQ(st.service_us,
                                 chain.interval_sum(st.first, st.last, st.type));
            }
            EXPECT_EQ(expected_first, chain.size() + 1) << "plan covers the whole chain";
            EXPECT_EQ(p.worker_count(), next_id);
            EXPECT_EQ(p.next_worker_id(), next_id);

            ASSERT_EQ(p.queues().size(), p.stage_count());
            for (std::size_t q = 0; q + 1 < p.queues().size(); ++q) {
                EXPECT_EQ(p.queues()[q].producer_stage, static_cast<int>(q));
                EXPECT_EQ(p.queues()[q].consumer_stage, static_cast<int>(q) + 1);
            }
            EXPECT_EQ(p.queues().back().consumer_stage, plan::QueueSpec::kDrain);

            EXPECT_NEAR(p.period_us(), solution.period(chain), 1e-6)
                << "plan period must match the scheduler's model";
            EXPECT_FALSE(p.summary().empty());
        }
    }
}

TEST(ExecutionPlanCompile, ShapeCompileHasNoProfile)
{
    const core::TaskChain chain =
        amp::testing::make_chain({{10, 20, false}, {10, 20, true}, {10, 20, true}});
    const core::Solution solution{
        std::vector<Stage>{{1, 1, 1, CoreType::big}, {2, 3, 2, CoreType::little}}};

    const plan::ExecutionPlan p =
        plan::ExecutionPlan::compile(plan::ChainShape::of(chain), solution);
    EXPECT_FALSE(p.has_profile());
    EXPECT_EQ(p.stage_count(), 2u);
    for (const plan::PlanStage& st : p.stages())
        EXPECT_DOUBLE_EQ(st.service_us, 0.0);
    EXPECT_DOUBLE_EQ(p.period_us(), 0.0);
}

TEST(ExecutionPlanCompile, RejectsMalformedSolutions)
{
    const core::TaskChain chain =
        amp::testing::make_chain({{10, 20, false}, {10, 20, true}, {10, 20, true}});

    // Empty solution.
    EXPECT_THROW((void)plan::ExecutionPlan::compile(chain, core::Solution{}), plan::PlanError);

    // Gap between stages.
    EXPECT_THROW((void)plan::ExecutionPlan::compile(
                     chain, core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big},
                                                              {3, 3, 1, CoreType::big}}}),
                 plan::PlanError);

    // Stage interval past the end of the chain.
    EXPECT_THROW((void)plan::ExecutionPlan::compile(
                     chain, core::Solution{std::vector<Stage>{{1, 4, 1, CoreType::big}}}),
                 plan::PlanError);

    // A stage with no cores.
    EXPECT_THROW((void)plan::ExecutionPlan::compile(
                     chain, core::Solution{std::vector<Stage>{{1, 3, 0, CoreType::big}}}),
                 plan::PlanError);

    // Replicating an interval that contains the sequential task 1.
    EXPECT_THROW((void)plan::ExecutionPlan::compile(
                     chain, core::Solution{std::vector<Stage>{{1, 2, 2, CoreType::big},
                                                              {3, 3, 1, CoreType::big}}}),
                 plan::PlanError);

    // Solution that stops before the last task.
    EXPECT_THROW((void)plan::ExecutionPlan::compile(
                     chain, core::Solution{std::vector<Stage>{{1, 2, 1, CoreType::big}}}),
                 plan::PlanError);

    // PlanError derives from std::invalid_argument, the executors' historic
    // validation error type.
    EXPECT_THROW((void)plan::ExecutionPlan::compile(chain, core::Solution{}),
                 std::invalid_argument);
}

TEST(ExecutionPlanCompile, ClampsZeroQueueCapacityLikeTheQueues)
{
    const core::TaskChain chain = amp::testing::uniform_chain(2, 10.0, true);
    const core::Solution solution{
        std::vector<Stage>{{1, 2, 1, CoreType::big}}};
    const plan::ExecutionPlan p =
        plan::ExecutionPlan::compile(chain, solution, plan::PlanOptions{0});
    EXPECT_EQ(p.options().queue_capacity, 1u);
    EXPECT_EQ(p.queues().front().capacity, 1u);
}

} // namespace
