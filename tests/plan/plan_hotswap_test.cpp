// Runtime hot-swap through plan deltas: Pipeline::apply_delta resizes and
// rebinds stages between stream segments without dropping or reordering
// frames, and run_with_recovery uses the delta path (or the rebuild
// fallback when disabled) to survive a worker kill.

#include "plan/execution_plan.hpp"
#include "rt/fault.hpp"
#include "rt/pipeline.hpp"
#include "rt/rescheduler.hpp"
#include "svc/solver_service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Resources;
using core::Stage;
using core::TaskChain;
using core::TaskDesc;
using std::chrono::milliseconds;

struct Frame {
    std::uint64_t seq = 0;
    int value = 0;
};

rt::TaskSequence<Frame> make_sequence(int n)
{
    rt::TaskSequence<Frame> seq;
    for (int i = 1; i <= n; ++i)
        seq.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1,
                                           [i](Frame& f) { f.value += i; }));
    return seq;
}

/// Chain whose degraded optimum keeps the healthy stage cut: t1 stateful,
/// t2..t5 replicable with a slightly lopsided interval sum so the two-stage
/// replicated cut strictly beats any three-stage split (301/2 = 150.5 beats
/// the best sequential split's 151).
TaskChain delta_friendly_chain()
{
    std::vector<TaskDesc> tasks;
    tasks.push_back(TaskDesc{"t1", 100.0, 120.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    return TaskChain{std::move(tasks)};
}

TEST(PipelineApplyDelta, ResizesAndShrinksBetweenSegments)
{
    const TaskChain chain = delta_friendly_chain();
    auto seq = make_sequence(5);

    const plan::ExecutionPlan initial = plan::ExecutionPlan::compile(
        chain, core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big},
                                                 {2, 5, 2, CoreType::little}}});

    rt::PipelineConfig config;
    std::vector<std::uint64_t> delivered;
    const auto collect = [&](Frame& f) {
        EXPECT_EQ(f.value, 1 + 2 + 3 + 4 + 5) << "every task ran exactly once";
        delivered.push_back(f.seq);
    };

    rt::Pipeline<Frame> pipeline{seq, initial, config};
    rt::RunResult first = pipeline.run(15, collect);
    EXPECT_EQ(first.frames, 15u);
    EXPECT_EQ(pipeline.live_workers(), 3);

    // Grow stage 1 to three replicas: one spawned worker, kept ids intact.
    const plan::ExecutionPlan grown = plan::ExecutionPlan::compile(
        chain, core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big},
                                                 {2, 5, 3, CoreType::little}}});
    const plan::PlanDelta grow = plan::diff(pipeline.execution_plan(), grown);
    ASSERT_TRUE(grow.compatible) << grow.reason;
    pipeline.apply_delta(grow);
    EXPECT_EQ(pipeline.live_workers(), 4);
    EXPECT_EQ(pipeline.spawned_workers(), 4);

    rt::RunResult second = pipeline.run_from(15, 40, collect);
    EXPECT_EQ(second.frames, 25u);

    // Shrink back to two replicas and rebind stage 0 big -> little.
    const plan::ExecutionPlan shrunk = plan::ExecutionPlan::compile(
        chain, core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::little},
                                                 {2, 5, 2, CoreType::little}}});
    const plan::PlanDelta shrink = plan::diff(pipeline.execution_plan(), shrunk);
    ASSERT_TRUE(shrink.compatible) << shrink.reason;
    EXPECT_EQ(shrink.retired, 1);
    EXPECT_EQ(shrink.rebound, 1);
    pipeline.apply_delta(shrink);
    EXPECT_EQ(pipeline.live_workers(), 3);
    EXPECT_EQ(pipeline.spawned_workers(), 4) << "shrinking spawns nothing";

    rt::RunResult third = pipeline.run_from(40, 50, collect);
    EXPECT_EQ(third.frames, 10u);

    // The three segments together delivered every frame exactly once, in order.
    ASSERT_EQ(delivered.size(), 50u);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i);

    EXPECT_TRUE(plan::same_topology(pipeline.execution_plan(), shrunk));
}

TEST(PipelineApplyDelta, RejectsIncompatibleDelta)
{
    const TaskChain chain = delta_friendly_chain();
    auto seq = make_sequence(5);
    const plan::ExecutionPlan initial = plan::ExecutionPlan::compile(
        chain, core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big},
                                                 {2, 5, 2, CoreType::little}}});
    const plan::ExecutionPlan recut = plan::ExecutionPlan::compile(
        chain, core::Solution{std::vector<Stage>{{1, 2, 1, CoreType::big},
                                                 {3, 5, 2, CoreType::little}}});

    rt::Pipeline<Frame> pipeline{seq, initial, rt::PipelineConfig{}};
    const plan::PlanDelta delta = plan::diff(pipeline.execution_plan(), recut);
    ASSERT_FALSE(delta.compatible);
    EXPECT_THROW(pipeline.apply_delta(delta), std::invalid_argument);
}

/// Shared scenario: killing stage 0's only worker (a big core) re-solves to
/// the same two-stage cut on (0, 3) -- stage 0 rebound big -> little, stage 1
/// resized 3 -> 2 -- so the recovery is delta-compatible by construction.
rt::RecoveryReport run_kill_scenario(rt::SwapPolicy swap,
                                     std::vector<std::uint64_t>* delivered = nullptr)
{
    constexpr std::uint64_t kFrames = 100;
    const TaskChain chain = delta_friendly_chain();
    auto seq = make_sequence(5);
    rt::Rescheduler rescheduler{chain, Resources{1, 3}};

    rt::FaultInjector injector;
    injector.add(rt::FaultSpec{rt::FaultKind::kill, 20, 0, 0, 1, milliseconds{0}});

    rt::PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{100};

    rt::RecoveryOptions options;
    options.swap = swap;

    const rt::RecoveryReport report = rt::run_with_recovery<Frame>(
        seq, rescheduler, kFrames, config,
        [&](Frame& f) {
            if (delivered)
                delivered->push_back(f.seq);
        },
        -1, options);

    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.recoveries, 1);
    EXPECT_EQ(report.total.frames + report.total.frames_dropped, kFrames);
    EXPECT_EQ(report.total.stream_end, kFrames);
    EXPECT_GT(report.recovery_latency_seconds, 0.0);
    EXPECT_GE(report.swap_seconds, 0.0);
    return report;
}

TEST(RunWithRecoveryDelta, CompatibleKillHotSwapsInPlace)
{
    std::vector<std::uint64_t> delivered;
    const rt::RecoveryReport report = run_kill_scenario(rt::SwapPolicy::frame_first, &delivered);
    EXPECT_EQ(report.delta_swaps, 1) << "same-cut recovery must take the delta path";
    EXPECT_EQ(report.rebuild_swaps, 0);
    for (std::size_t i = 1; i < delivered.size(); ++i)
        EXPECT_LT(delivered[i - 1], delivered[i]) << "stream order across the hot-swap";
}

TEST(RunWithRecoveryDelta, DisablingDeltaForcesRebuild)
{
    std::vector<std::uint64_t> delivered;
    const rt::RecoveryReport report = run_kill_scenario(rt::SwapPolicy::rebuild_only, &delivered);
    EXPECT_EQ(report.delta_swaps, 0);
    EXPECT_EQ(report.rebuild_swaps, 1);
    for (std::size_t i = 1; i < delivered.size(); ++i)
        EXPECT_LT(delivered[i - 1], delivered[i]);
}

TEST(SolverServicePlans, SolvePlannedReturnsACompiledPlan)
{
    // svc::SolverService::solve_planned hands back the plan both executors
    // consume, compiled from the solved schedule.
    const TaskChain chain = delta_friendly_chain();
    svc::SolverService service{svc::ServiceConfig{}};
    const core::ScheduleRequest request{chain, Resources{1, 3}, core::Strategy::herad, {}};

    const svc::PlannedSchedule planned = service.solve_planned(request);
    ASSERT_TRUE(planned.ok());
    ASSERT_NE(planned.plan, nullptr);
    EXPECT_EQ(planned.plan->solution(), planned.result.solution);
    EXPECT_TRUE(planned.plan->has_profile());
    EXPECT_EQ(planned.plan->task_count(), chain.size());

    // Infeasible requests come back plan-less, not thrown.
    const svc::PlannedSchedule infeasible = service.solve_planned(
        core::ScheduleRequest{chain, Resources{0, 0}, core::Strategy::herad, {}});
    EXPECT_FALSE(infeasible.ok());
    EXPECT_EQ(infeasible.plan, nullptr);
}

} // namespace
