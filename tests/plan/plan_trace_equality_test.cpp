// The plan-layer half of the trace-equality contract: rt::Pipeline and
// dsim::simulate driven by the SAME plan::ExecutionPlan object produce
// traces that agree event-by-event and track-by-track. This is the property
// the legacy (chain, solution) entry points inherit by compiling through
// the plan internally.

#include "dsim/simulator.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "plan/execution_plan.hpp"
#include "rt/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

namespace {

using namespace amp;

struct Frame {
    std::uint64_t seq = 0;
};

/// (event name, frame, stage, phase) -- everything but time and track.
using EventKey = std::tuple<std::string, std::uint64_t, std::int32_t, char>;

std::vector<EventKey> collect_events(const obs::TraceRecorder& recorder)
{
    std::vector<EventKey> keys;
    for (std::size_t track = 0; track < recorder.track_count(); ++track)
        for (const obs::TraceEvent& event : recorder.events(track))
            keys.emplace_back(recorder.name(event.name_id), event.frame, event.stage,
                              static_cast<char>(event.phase));
    std::sort(keys.begin(), keys.end());
    return keys;
}

TEST(PlanTraceEquality, PipelineAndSimulatorExecuteTheSamePlan)
{
    // Three tasks, the first stateful; on R = (2, 1) HeRAD pipelines and
    // replicates, so the plan covers sequential AND replicated stages.
    std::vector<core::TaskDesc> descs;
    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= 3; ++i) {
        const double w = 10.0 + i;
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), w, 2.0 * w, i != 1});
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1, [](Frame&) {}));
    }
    const core::TaskChain chain{std::move(descs)};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, {2, 1}, core::Strategy::herad}).solution;
    ASSERT_FALSE(solution.empty());

    // ONE compiled plan drives both executors.
    const plan::ExecutionPlan shared = plan::ExecutionPlan::compile(chain, solution);

    constexpr std::uint64_t kFrames = 8;

    obs::Sink real_sink;
    rt::PipelineConfig config;
    config.sink = &real_sink;
    rt::Pipeline<Frame> pipeline{sequence, shared, config};
    const rt::RunResult result = pipeline.run(kFrames, {});
    ASSERT_EQ(result.frames, kFrames);

    obs::Sink sim_sink;
    dsim::SimulationConfig sim_config;
    sim_config.frames = kFrames;
    sim_config.warmup_frames = 1;
    sim_config.sink = &sim_sink;
    (void)dsim::simulate(shared, sim_config);

    const std::vector<EventKey> real_events = collect_events(real_sink.trace());
    const std::vector<EventKey> sim_events = collect_events(sim_sink.trace());
    ASSERT_FALSE(real_events.empty());
    EXPECT_EQ(real_events, sim_events);
    EXPECT_EQ(real_events.size(), kFrames * shared.stage_count());

    // Track layout: identical names in identical order, one per plan worker
    // id plus the watchdog.
    const obs::TraceRecorder& real = real_sink.trace();
    const obs::TraceRecorder& sim = sim_sink.trace();
    ASSERT_EQ(real.track_count(), sim.track_count());
    EXPECT_EQ(real.track_count(), static_cast<std::size_t>(shared.worker_count()) + 1);
    std::vector<std::string> real_tracks, sim_tracks;
    for (std::size_t t = 0; t < real.track_count(); ++t) {
        real_tracks.push_back(real.track_name(t));
        sim_tracks.push_back(sim.track_name(t));
    }
    EXPECT_EQ(real_tracks, sim_tracks);

    EXPECT_EQ(real_sink.metrics().snapshot().counters.at(obs::schema::kFramesDelivered), kFrames);
    EXPECT_EQ(sim_sink.metrics().snapshot().counters.at(obs::schema::kFramesDelivered), kFrames);
}

TEST(PlanTraceEquality, SimulatingAProfilelessPlanFailsLoudly)
{
    // A plan compiled from a bare shape has no task weights; the simulator
    // must refuse it rather than simulate a zero-cost pipeline.
    plan::ChainShape shape;
    shape.tasks = 2;
    shape.replicable = {false, true};
    const core::Solution solution{
        std::vector<core::Stage>{{1, 2, 1, core::CoreType::big}}};
    const plan::ExecutionPlan bare = plan::ExecutionPlan::compile(shape, solution);

    dsim::SimulationConfig config;
    config.frames = 10;
    EXPECT_THROW((void)dsim::simulate(bare, config), std::invalid_argument);
}

} // namespace
