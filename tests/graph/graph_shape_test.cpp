// plan::GraphShape structural validation: the branch-interval tiling, the
// forward/sorted/mirrored edge rules, and the unique-source/unique-sink
// requirement that makes a validated shape a series-parallel diamond.

#include "plan/graph_shape.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace amp;
using plan::ChainShape;
using plan::GraphBranch;
using plan::GraphShape;
using plan::PlanError;

ChainShape chain_of(int tasks)
{
    ChainShape shape;
    shape.tasks = tasks;
    shape.replicable.assign(static_cast<std::size_t>(tasks), true);
    return shape;
}

/// src(1) -> {mid-a(2..3), mid-b(4)} -> sink(5): the canonical diamond.
GraphShape diamond()
{
    GraphShape graph;
    graph.chain = chain_of(5);
    graph.branches = {
        GraphBranch{0, 1, 1, {}, {1, 2}},
        GraphBranch{1, 2, 3, {0}, {3}},
        GraphBranch{2, 4, 4, {0}, {3}},
        GraphBranch{3, 5, 5, {1, 2}, {}},
    };
    return graph;
}

std::string validate_error(const GraphShape& graph)
{
    try {
        graph.validate();
    } catch (const PlanError& error) {
        return error.what();
    }
    return {};
}

TEST(GraphShape, ValidDiamondPasses)
{
    const GraphShape graph = diamond();
    EXPECT_NO_THROW(graph.validate());
    EXPECT_FALSE(graph.is_linear());
    EXPECT_EQ(graph.branch_count(), 4);
    EXPECT_EQ(graph.tasks(), 5);
    EXPECT_EQ(graph.source_branch(), 0);
    EXPECT_EQ(graph.sink_branch(), 3);
}

TEST(GraphShape, LinearFactoryIsTheDegenerateOneBranchGraph)
{
    const GraphShape graph = GraphShape::linear(chain_of(4));
    EXPECT_NO_THROW(graph.validate());
    EXPECT_TRUE(graph.is_linear());
    ASSERT_EQ(graph.branch_count(), 1);
    EXPECT_EQ(graph.branches[0].first, 1);
    EXPECT_EQ(graph.branches[0].last, 4);
    EXPECT_EQ(graph.source_branch(), 0);
    EXPECT_EQ(graph.sink_branch(), 0);

    const core::TaskChain chain{std::vector<core::TaskDesc>{
        {"a", 1.0, 2.0, false}, {"b", 3.0, 4.0, true}}};
    const GraphShape from_chain = GraphShape::of(chain);
    EXPECT_TRUE(from_chain.is_linear());
    EXPECT_EQ(from_chain.chain.replicable, (std::vector<bool>{false, true}));
}

TEST(GraphShape, RejectsEmptyShapes)
{
    GraphShape graph;
    EXPECT_EQ(validate_error(graph), "plan: chain shape is empty or inconsistent");

    graph.chain = chain_of(3);
    EXPECT_EQ(validate_error(graph), "plan: graph has no branches");

    graph.chain.replicable.pop_back(); // tasks and flags disagree
    graph.branches = {GraphBranch{0, 1, 3, {}, {}}};
    EXPECT_EQ(validate_error(graph), "plan: chain shape is empty or inconsistent");
}

TEST(GraphShape, RejectsBadBranchIndexing)
{
    GraphShape graph = diamond();
    std::swap(graph.branches[1].index, graph.branches[2].index);
    EXPECT_EQ(validate_error(graph), "plan: graph branches must be indexed in order");
}

TEST(GraphShape, RejectsNonContiguousTiling)
{
    GraphShape graph = diamond();
    graph.branches[1].first = 3; // leaves task 2 uncovered
    EXPECT_EQ(validate_error(graph), "plan: graph branches must tile the chain contiguously");

    GraphShape inverted = diamond();
    inverted.branches[1].last = 1; // last < first
    EXPECT_EQ(validate_error(inverted),
              "plan: graph branches must tile the chain contiguously");

    GraphShape overrun = diamond();
    overrun.branches[3].last = 6; // beyond the chain
    EXPECT_EQ(validate_error(overrun), "plan: graph branch interval exceeds the chain");

    GraphShape uncovered = diamond();
    uncovered.chain = chain_of(6); // branches stop at task 5
    EXPECT_EQ(validate_error(uncovered), "plan: graph branches do not cover the whole chain");
}

TEST(GraphShape, RejectsMalformedEdges)
{
    GraphShape backward = diamond();
    backward.branches[3].succs = {0}; // edge pointing backwards
    EXPECT_EQ(validate_error(backward),
              "plan: graph edges must be forward, sorted and duplicate-free");

    GraphShape unsorted = diamond();
    unsorted.branches[0].succs = {2, 1};
    EXPECT_EQ(validate_error(unsorted),
              "plan: graph edges must be forward, sorted and duplicate-free");

    GraphShape duplicate = diamond();
    duplicate.branches[0].succs = {1, 1, 2};
    EXPECT_EQ(validate_error(duplicate),
              "plan: graph edges must be forward, sorted and duplicate-free");

    GraphShape self = diamond();
    self.branches[1].succs = {1, 3};
    EXPECT_EQ(validate_error(self),
              "plan: graph edges must be forward, sorted and duplicate-free");

    GraphShape out_of_range = diamond();
    out_of_range.branches[0].succs = {1, 2, 7};
    EXPECT_EQ(validate_error(out_of_range),
              "plan: graph edges must be forward, sorted and duplicate-free");
}

TEST(GraphShape, RejectsUnmirroredEdges)
{
    GraphShape missing_pred = diamond();
    missing_pred.branches[1].preds.clear(); // 0->1 no longer mirrored
    EXPECT_EQ(validate_error(missing_pred), "plan: graph edge 0->1 is not mirrored in preds");

    GraphShape missing_succ = diamond();
    missing_succ.branches[1].succs.clear(); // 1->3 gone, but 3 still lists pred 1
    EXPECT_EQ(validate_error(missing_succ), "plan: graph edge 1->3 is not mirrored in succs");
}

TEST(GraphShape, RequiresExactlyOneSourceAndSink)
{
    // Cutting edge 0->2 / pred 0 off branch 2 makes it a second source.
    GraphShape two_sources = diamond();
    two_sources.branches[0].succs = {1};
    two_sources.branches[2].preds = {};
    EXPECT_EQ(validate_error(two_sources), "plan: graph needs exactly one source branch");

    // Cutting edge 2->3 off makes branch 2 a second sink.
    GraphShape two_sinks = diamond();
    two_sinks.branches[2].succs = {};
    two_sinks.branches[3].preds = {1};
    EXPECT_EQ(validate_error(two_sinks), "plan: graph needs exactly one sink branch");
}

TEST(GraphShape, SourceAndSinkLookupsThrowOnMalformedShapes)
{
    // A 2-branch cycle-free shape where every branch has an edge: not
    // reachable through validate(), but the accessors must still fail loudly.
    GraphShape graph;
    graph.chain = chain_of(2);
    graph.branches = {GraphBranch{0, 1, 1, {1}, {1}}, GraphBranch{1, 2, 2, {0}, {0}}};
    EXPECT_THROW((void)graph.source_branch(), PlanError);
    EXPECT_THROW((void)graph.sink_branch(), PlanError);
}

} // namespace
