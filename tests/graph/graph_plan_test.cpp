// plan::ExecutionPlan on graphs: the degenerate one-branch compile is
// bit-identical to the historical linear layout (pinned over random chains
// across all five strategies), DAG plans get the stitched stage/queue
// topology the executors rely on, and diff/apply keep working on them.

#include "core/scheduler.hpp"
#include "plan/execution_plan.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Stage;
using core::TaskChain;
using core::TaskDesc;
using plan::ExecutionPlan;
using plan::GraphBranch;
using plan::GraphShape;
using plan::QueueSpec;

/// Field-by-field equality of two compiled plans -- stronger than
/// same_topology (worker ids, edges and queue wiring included).
void expect_identical(const ExecutionPlan& a, const ExecutionPlan& b)
{
    ASSERT_EQ(a.stage_count(), b.stage_count());
    for (std::size_t s = 0; s < a.stage_count(); ++s) {
        const plan::PlanStage& sa = a.stage(s);
        const plan::PlanStage& sb = b.stage(s);
        EXPECT_EQ(sa.index, sb.index);
        EXPECT_EQ(sa.first, sb.first);
        EXPECT_EQ(sa.last, sb.last);
        EXPECT_EQ(sa.replicas, sb.replicas);
        EXPECT_EQ(sa.type, sb.type);
        EXPECT_EQ(sa.replicated, sb.replicated);
        EXPECT_EQ(sa.sequential, sb.sequential);
        EXPECT_DOUBLE_EQ(sa.service_us, sb.service_us);
        EXPECT_EQ(sa.worker_ids, sb.worker_ids);
        EXPECT_EQ(sa.branch, sb.branch);
        EXPECT_EQ(sa.preds, sb.preds);
        EXPECT_EQ(sa.succs, sb.succs);
        EXPECT_EQ(sa.in_queues, sb.in_queues);
        EXPECT_EQ(sa.out_queues, sb.out_queues);
    }
    ASSERT_EQ(a.queues().size(), b.queues().size());
    for (std::size_t q = 0; q < a.queues().size(); ++q) {
        EXPECT_EQ(a.queues()[q].index, b.queues()[q].index);
        EXPECT_EQ(a.queues()[q].producer_stage, b.queues()[q].producer_stage);
        EXPECT_EQ(a.queues()[q].consumer_stage, b.queues()[q].consumer_stage);
        EXPECT_EQ(a.queues()[q].capacity, b.queues()[q].capacity);
    }
    ASSERT_EQ(a.workers().size(), b.workers().size());
    for (std::size_t w = 0; w < a.workers().size(); ++w) {
        EXPECT_EQ(a.workers()[w].id, b.workers()[w].id);
        EXPECT_EQ(a.workers()[w].stage, b.workers()[w].stage);
        EXPECT_EQ(a.workers()[w].slot, b.workers()[w].slot);
        EXPECT_EQ(a.workers()[w].type, b.workers()[w].type);
    }
    EXPECT_EQ(a.solution(), b.solution());
    EXPECT_EQ(a.next_worker_id(), b.next_worker_id());
    EXPECT_EQ(a.source_stage(), b.source_stage());
    EXPECT_EQ(a.sink_stage(), b.sink_stage());
    EXPECT_DOUBLE_EQ(a.period_us(), b.period_us());
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_TRUE(plan::same_topology(a, b));
}

TaskChain random_chain(std::mt19937& rng, int tasks)
{
    std::uniform_real_distribution<double> weight{5.0, 120.0};
    std::bernoulli_distribution replicable{0.7};
    std::vector<TaskDesc> descs;
    for (int i = 1; i <= tasks; ++i) {
        const double big = weight(rng);
        descs.push_back(TaskDesc{"t" + std::to_string(i), big, big * 1.9,
                                 i == 1 ? false : replicable(rng)});
    }
    return TaskChain{std::move(descs)};
}

// The acceptance pin: for every strategy and a spread of random chains, the
// pre-DAG linear compile and the one-branch graph compile produce the same
// plan, field for field.
TEST(GraphPlanBitIdentity, LinearChainsCompileIdenticallyThroughTheGraphPath)
{
    std::mt19937 rng{20260808};
    std::uniform_int_distribution<int> tasks{3, 12};
    std::uniform_int_distribution<int> bigs{1, 4};
    std::uniform_int_distribution<int> littles{0, 4};

    int compiled = 0;
    for (int round = 0; round < 20; ++round) {
        const TaskChain chain = random_chain(rng, tasks(rng));
        const core::Resources budget{bigs(rng), littles(rng)};
        for (const core::Strategy strategy : core::kAllStrategies) {
            const core::ScheduleResult result =
                core::schedule(core::ScheduleRequest{chain, budget, strategy});
            if (!result.ok() || result.solution.empty())
                continue; // infeasible under this budget -- nothing to compile
            const ExecutionPlan linear = ExecutionPlan::compile(chain, result.solution);
            const ExecutionPlan graph = ExecutionPlan::compile(
                chain, GraphShape::of(chain), {result.solution});
            EXPECT_TRUE(linear.linear());
            EXPECT_TRUE(graph.linear());
            expect_identical(linear, graph);
            ++compiled;
        }
    }
    EXPECT_GT(compiled, 40) << "the sweep must exercise a real spread of solutions";
}

TEST(GraphPlanBitIdentity, ShapeOnlyCompileMatchesToo)
{
    plan::ChainShape shape;
    shape.tasks = 4;
    shape.replicable = {false, true, true, true};
    const core::Solution solution{std::vector<Stage>{{1, 1, 1, CoreType::big},
                                                     {2, 4, 3, CoreType::little}}};
    expect_identical(ExecutionPlan::compile(shape, solution),
                     ExecutionPlan::compile(GraphShape::linear(shape), {solution}));
}

/// Profiled diamond: src(1) -> {mid-a(2..3) replicable, mid-b(4)} -> sink(5).
struct Diamond {
    TaskChain chain;
    GraphShape shape;
    std::vector<core::Solution> solutions;
};

Diamond make_diamond(int mid_a_replicas = 2)
{
    Diamond d;
    std::vector<TaskDesc> descs;
    descs.push_back(TaskDesc{"src", 10.0, 20.0, false});
    descs.push_back(TaskDesc{"mid-a1", 40.0, 80.0, true});
    descs.push_back(TaskDesc{"mid-a2", 40.0, 80.0, true});
    descs.push_back(TaskDesc{"mid-b", 30.0, 60.0, false});
    descs.push_back(TaskDesc{"sink", 10.0, 20.0, false});
    d.chain = TaskChain{std::move(descs)};
    d.shape.chain = plan::ChainShape::of(d.chain);
    d.shape.branches = {
        GraphBranch{0, 1, 1, {}, {1, 2}},
        GraphBranch{1, 2, 3, {0}, {3}},
        GraphBranch{2, 4, 4, {0}, {3}},
        GraphBranch{3, 5, 5, {1, 2}, {}},
    };
    d.shape.validate();
    d.solutions = {
        core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big}}},
        core::Solution{std::vector<Stage>{{1, 2, mid_a_replicas, CoreType::big}}},
        core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::little}}},
        core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big}}},
    };
    return d;
}

TEST(GraphPlanCompile, StitchesTheDiamondTopology)
{
    const Diamond d = make_diamond();
    const ExecutionPlan plan = ExecutionPlan::compile(d.chain, d.shape, d.solutions);

    EXPECT_FALSE(plan.linear());
    EXPECT_TRUE(plan.has_profile());
    ASSERT_EQ(plan.stage_count(), 4u);
    EXPECT_EQ(plan.source_stage(), 0);
    EXPECT_EQ(plan.sink_stage(), 3);

    // Stage intervals are the branch solutions offset into global task ids.
    EXPECT_EQ(plan.stage(1).first, 2);
    EXPECT_EQ(plan.stage(1).last, 3);
    EXPECT_EQ(plan.stage(1).replicas, 2);
    EXPECT_EQ(plan.stage(2).first, 4);
    EXPECT_EQ(plan.stage(2).type, CoreType::little);
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_EQ(plan.stage(s).branch, static_cast<int>(s));

    // Fan-out / fan-in stage edges.
    EXPECT_EQ(plan.stage(0).succs, (std::vector<int>{1, 2}));
    EXPECT_EQ(plan.stage(3).preds, (std::vector<int>{1, 2}));
    EXPECT_TRUE(plan.stage(0).preds.empty());
    EXPECT_TRUE(plan.stage(3).succs.empty());

    // Queues: one per edge in producer order, then the sink's drain queue.
    ASSERT_EQ(plan.queues().size(), 5u);
    const auto expect_queue = [&](int q, int producer, int consumer) {
        EXPECT_EQ(plan.queues()[static_cast<std::size_t>(q)].producer_stage, producer);
        EXPECT_EQ(plan.queues()[static_cast<std::size_t>(q)].consumer_stage, consumer);
    };
    expect_queue(0, 0, 1);
    expect_queue(1, 0, 2);
    expect_queue(2, 1, 3);
    expect_queue(3, 2, 3);
    expect_queue(4, 3, QueueSpec::kDrain);
    EXPECT_EQ(plan.stage(0).out_queues, (std::vector<int>{0, 1}));
    EXPECT_EQ(plan.stage(3).in_queues, (std::vector<int>{2, 3}));
    EXPECT_EQ(plan.stage(3).out_queues, (std::vector<int>{4}));

    // Worker ids are dense and stage-major; period is the max stage load.
    EXPECT_EQ(plan.stage(1).worker_ids, (std::vector<int>{1, 2}));
    EXPECT_EQ(plan.worker_count(), 5);
    EXPECT_DOUBLE_EQ(plan.period_us(), 60.0); // little mid-b: 60 > 80/2 > ...
}

TEST(GraphPlanCompile, RejectsMalformedBranchSolutions)
{
    Diamond d = make_diamond();
    // Wrong solution count.
    EXPECT_THROW((void)ExecutionPlan::compile(d.chain, d.shape,
                                              {d.solutions[0], d.solutions[1]}),
                 plan::PlanError);
    // A branch solution that does not cover its branch.
    d.solutions[1] = core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big}}};
    EXPECT_THROW((void)ExecutionPlan::compile(d.chain, d.shape, d.solutions),
                 plan::PlanError);
    // Replicating a branch with a sequential task.
    Diamond seq = make_diamond();
    seq.solutions[2] = core::Solution{std::vector<Stage>{{1, 1, 2, CoreType::little}}};
    EXPECT_THROW((void)ExecutionPlan::compile(seq.chain, seq.shape, seq.solutions),
                 plan::PlanError);
}

TEST(GraphPlanDelta, DagVsLinearIsIncompatibleDagResizeIsNot)
{
    const Diamond d = make_diamond();
    const ExecutionPlan dag = ExecutionPlan::compile(d.chain, d.shape, d.solutions);

    // Same task count, linear cut: the rewired queue topology must refuse.
    const core::ScheduleResult linear_result = core::schedule(
        core::ScheduleRequest{d.chain, {4, 1}, core::Strategy::herad});
    ASSERT_TRUE(linear_result.ok());
    const ExecutionPlan linear = ExecutionPlan::compile(d.chain, linear_result.solution);
    const plan::PlanDelta incompatible = plan::diff(dag, linear);
    EXPECT_FALSE(incompatible.compatible);

    // Resizing one branch stage of the SAME dag is a plain resize delta.
    const Diamond grown = make_diamond(3);
    const ExecutionPlan resized = ExecutionPlan::compile(grown.chain, grown.shape,
                                                         grown.solutions);
    const plan::PlanDelta resize = plan::diff(dag, resized);
    ASSERT_TRUE(resize.compatible) << resize.reason;
    EXPECT_TRUE(resize.resize_only());
    EXPECT_EQ(resize.spawned, 1);

    // apply() lands it and the graph survives on the successor plan.
    const ExecutionPlan next = plan::apply(dag, resize);
    EXPECT_FALSE(next.linear());
    EXPECT_EQ(next.graph().branch_count(), 4);
    EXPECT_EQ(next.stage(1).replicas, 3);
    EXPECT_EQ(next.stage(1).worker_ids.size(), 3u);
    EXPECT_EQ(next.stage(1).worker_ids[2], dag.next_worker_id())
        << "the spawned replica takes a fresh id";
    EXPECT_TRUE(plan::same_topology(next, resized));
}

} // namespace
