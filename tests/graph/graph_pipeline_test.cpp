// DAG plans end to end on the real runtime: fan-out copies every envelope
// to all successor queues, the fan-in gate merges by sequence number with
// zero reordering, rt and dsim produce trace-equal executions of one DAG
// plan, and a resize-only delta lands on a branch stage mid-flight without
// draining the stream.

#include "dsim/simulator.hpp"
#include "dvbs2/graph_workloads.hpp"
#include "dvbs2/profiles.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "plan/execution_plan.hpp"
#include "rt/pipeline.hpp"
#include "svc/graph_schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Stage;
using core::TaskChain;
using core::TaskDesc;
using plan::ExecutionPlan;
using plan::GraphBranch;
using plan::GraphShape;
using std::chrono::microseconds;
using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// Fan-out / fan-in execution on the DVB-S2 A/B decode diamond.

TEST(GraphPipeline, AbDecodeDiamondMergesEveryFrameInOrder)
{
    constexpr std::uint64_t kFrames = 300;
    const dvbs2::PlatformProfile profile = dvbs2::mac_studio_profile();
    const dvbs2::GraphWorkload workload = dvbs2::ab_decode_workload(profile);

    svc::GraphScheduleRequest request;
    request.chain = workload.chain;
    request.shape = workload.shape;
    request.resources = {4, 2};
    svc::SolverService service{{.workers = 1}};
    const svc::GraphSchedule schedule = svc::schedule_graph(request, service);
    ASSERT_TRUE(schedule.ok) << schedule.error;

    auto sequence = dvbs2::graph_sequence(workload);
    rt::Pipeline<dvbs2::GraphFrame> pipeline{sequence, schedule.plan, rt::PipelineConfig{}};

    // Every task stamps its global-id bit; the merge unions them, so a
    // delivered frame proves both decode paths ran. `accum` additionally
    // counts the front branch twice -- once per copy.
    const int n = workload.chain.size();
    const std::uint64_t all_tasks =
        n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
    double expected_accum = 0.0;
    for (const GraphBranch& branch : workload.shape.branches) {
        const double weight = branch.index == 0 ? 2.0 : 1.0; // front is copied to A and B
        for (int i = branch.first; i <= branch.last; ++i)
            expected_accum += weight * static_cast<double>(i);
    }

    std::vector<std::uint64_t> delivered;
    const rt::RunResult result =
        pipeline.run(kFrames, [&](dvbs2::GraphFrame& frame) {
            EXPECT_EQ(frame.visited, all_tasks) << "every task ran on frame " << frame.seq;
            EXPECT_DOUBLE_EQ(frame.accum, expected_accum);
            delivered.push_back(frame.seq);
        });

    EXPECT_EQ(result.frames, kFrames);
    EXPECT_EQ(result.frames_dropped, 0u);
    ASSERT_EQ(delivered.size(), kFrames);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i) << "zero reordered frames at the fan-in merge";
}

// ---------------------------------------------------------------------------
// rt-vs-dsim trace equality on one shared DAG plan.

struct Frame {
    std::uint64_t seq = 0;
};

/// (event name, frame, stage, phase) -- everything but time and track.
using EventKey = std::tuple<std::string, std::uint64_t, std::int32_t, char>;

std::vector<EventKey> collect_events(const obs::TraceRecorder& recorder)
{
    std::vector<EventKey> keys;
    for (std::size_t track = 0; track < recorder.track_count(); ++track)
        for (const obs::TraceEvent& event : recorder.events(track))
            keys.emplace_back(recorder.name(event.name_id), event.frame, event.stage,
                              static_cast<char>(event.phase));
    std::sort(keys.begin(), keys.end());
    return keys;
}

/// Profiled diamond: src(1) -> {mid-a(2..3) replicable, mid-b(4)} -> sink(5).
struct Diamond {
    TaskChain chain;
    GraphShape shape;
    std::vector<core::Solution> solutions;
};

Diamond make_diamond(int mid_a_replicas = 2)
{
    Diamond d;
    std::vector<TaskDesc> descs;
    descs.push_back(TaskDesc{"src", 10.0, 20.0, false});
    descs.push_back(TaskDesc{"mid-a1", 40.0, 80.0, true});
    descs.push_back(TaskDesc{"mid-a2", 40.0, 80.0, true});
    descs.push_back(TaskDesc{"mid-b", 30.0, 60.0, false});
    descs.push_back(TaskDesc{"sink", 10.0, 20.0, false});
    d.chain = TaskChain{std::move(descs)};
    d.shape.chain = plan::ChainShape::of(d.chain);
    d.shape.branches = {
        GraphBranch{0, 1, 1, {}, {1, 2}},
        GraphBranch{1, 2, 3, {0}, {3}},
        GraphBranch{2, 4, 4, {0}, {3}},
        GraphBranch{3, 5, 5, {1, 2}, {}},
    };
    d.shape.validate();
    d.solutions = {
        core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big}}},
        core::Solution{std::vector<Stage>{{1, 2, mid_a_replicas, CoreType::big}}},
        core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::little}}},
        core::Solution{std::vector<Stage>{{1, 1, 1, CoreType::big}}},
    };
    return d;
}

rt::TaskSequence<Frame> diamond_sequence(const Diamond& d, int source_sleep_us = 0)
{
    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= d.chain.size(); ++i)
        sequence.push_back(rt::make_task<Frame>(
            d.chain.task(i).name, !d.chain.task(i).replicable,
            [i, source_sleep_us](Frame&) {
                if (source_sleep_us > 0 && i == 1)
                    std::this_thread::sleep_for(microseconds{source_sleep_us});
            }));
    return sequence;
}

TEST(GraphPipeline, PipelineAndSimulatorExecuteTheSameDagPlan)
{
    constexpr std::uint64_t kFrames = 8;
    const Diamond d = make_diamond();
    const ExecutionPlan shared = ExecutionPlan::compile(d.chain, d.shape, d.solutions);
    ASSERT_FALSE(shared.linear());

    obs::Sink real_sink;
    rt::PipelineConfig config;
    config.sink = &real_sink;
    auto sequence = diamond_sequence(d);
    rt::Pipeline<Frame> pipeline{sequence, shared, config};
    const rt::RunResult result = pipeline.run(kFrames, {});
    ASSERT_EQ(result.frames, kFrames);

    obs::Sink sim_sink;
    dsim::SimulationConfig sim_config;
    sim_config.frames = kFrames;
    sim_config.warmup_frames = 1;
    sim_config.sink = &sim_sink;
    (void)dsim::simulate(shared, sim_config);

    const std::vector<EventKey> real_events = collect_events(real_sink.trace());
    const std::vector<EventKey> sim_events = collect_events(sim_sink.trace());
    ASSERT_FALSE(real_events.empty());
    EXPECT_EQ(real_events, sim_events);
    EXPECT_EQ(real_events.size(), kFrames * shared.stage_count())
        << "one stage-crossing event per frame per stage, fan-in merged";

    const obs::TraceRecorder& real = real_sink.trace();
    const obs::TraceRecorder& sim = sim_sink.trace();
    ASSERT_EQ(real.track_count(), sim.track_count());
    EXPECT_EQ(real.track_count(), static_cast<std::size_t>(shared.worker_count()) + 1);
    for (std::size_t t = 0; t < real.track_count(); ++t)
        EXPECT_EQ(real.track_name(t), sim.track_name(t));

    EXPECT_EQ(real_sink.metrics().snapshot().counters.at(obs::schema::kFramesDelivered),
              kFrames);
    EXPECT_EQ(sim_sink.metrics().snapshot().counters.at(obs::schema::kFramesDelivered),
              kFrames);
}

TEST(GraphPipeline, SimulatedDagThroughputTracksTheBottleneckStage)
{
    const Diamond d = make_diamond();
    const ExecutionPlan plan = ExecutionPlan::compile(d.chain, d.shape, d.solutions);

    dsim::SimulationConfig config;
    config.frames = 4000;
    config.warmup_frames = 400;
    config.overhead.adaptor_crossing_us = 0.0;
    config.overhead.service_inflation = 0.0;
    config.overhead.jitter_cv = 0.0;
    config.overhead.replication_penalty = 0.0;
    config.overhead.little_replication_penalty = 0.0;
    const dsim::SimulationResult result = dsim::simulate(plan, config);

    // Bottleneck: mid-b on a little core, 60 us -- the parallel mid-a pair
    // at 80/2 = 40 us must not gate the stream.
    EXPECT_NEAR(result.period_us, 60.0, 1e-6);
    EXPECT_NEAR(result.fps, 1e6 / 60.0, 1.0);
}

// ---------------------------------------------------------------------------
// Resize-only in-flight swap landing on a branch stage, no drain.

TEST(GraphPipeline, ResizeOnlySwapLandsOnABranchStageWithoutDraining)
{
    constexpr std::uint64_t kFrames = 400;
    const Diamond base = make_diamond(2);
    auto sequence = diamond_sequence(base, /*source_sleep_us=*/150);

    rt::Pipeline<Frame> pipeline{
        sequence, ExecutionPlan::compile(base.chain, base.shape, base.solutions),
        rt::PipelineConfig{}};

    std::vector<std::uint64_t> delivered;
    rt::RunResult result;
    std::thread runner{[&] {
        result = pipeline.run(kFrames, [&](Frame& f) { delivered.push_back(f.seq); });
    }};

    std::this_thread::sleep_for(milliseconds{10});
    const Diamond grown = make_diamond(3);
    const plan::PlanDelta grow = plan::diff(
        pipeline.execution_plan(),
        ExecutionPlan::compile(grown.chain, grown.shape, grown.solutions));
    ASSERT_TRUE(grow.resize_only()) << grow.reason;
    EXPECT_TRUE(pipeline.try_apply_delta_in_flight(grow));
    EXPECT_EQ(pipeline.live_workers(), 6) << "the spawned branch replica joins live";

    std::this_thread::sleep_for(milliseconds{10});
    const plan::PlanDelta shrink = plan::diff(
        pipeline.execution_plan(),
        ExecutionPlan::compile(base.chain, base.shape, base.solutions));
    ASSERT_TRUE(shrink.resize_only());
    EXPECT_TRUE(pipeline.try_apply_delta_in_flight(shrink));

    runner.join();

    EXPECT_EQ(result.frames, kFrames);
    EXPECT_EQ(result.frames_dropped, 0u) << "an in-flight swap never drops frames";
    ASSERT_EQ(delivered.size(), kFrames);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i);
    EXPECT_EQ(pipeline.live_workers(), 5) << "back to the base census after the shrink";
    EXPECT_FALSE(pipeline.execution_plan().linear())
        << "the swapped plan is still the DAG";
}

} // namespace
