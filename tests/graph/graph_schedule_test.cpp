// svc::schedule_graph: branch splitting, greedy water-filling over the
// shared core budget, determinism, the cache-domain separation that keeps a
// branch sub-chain from colliding with an identical standalone chain, and
// the infeasibility error paths.

#include "svc/graph_schedule.hpp"

#include "dvbs2/graph_workloads.hpp"
#include "dvbs2/profiles.hpp"
#include "svc/solution_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Resources;
using core::Strategy;
using core::TaskChain;
using core::TaskDesc;
using plan::GraphBranch;
using plan::GraphShape;

/// src(1) -> {mid-a(2..3) replicable, mid-b(4)} -> sink(5), deliberately
/// unbalanced: mid-a carries most of the weight so water-filling must grant
/// it the extra cores.
svc::GraphScheduleRequest diamond_request(Resources budget,
                                          Strategy strategy = Strategy::herad)
{
    svc::GraphScheduleRequest request;
    std::vector<TaskDesc> descs;
    descs.push_back(TaskDesc{"src", 10.0, 20.0, false});
    descs.push_back(TaskDesc{"mid-a1", 60.0, 120.0, true});
    descs.push_back(TaskDesc{"mid-a2", 60.0, 120.0, true});
    descs.push_back(TaskDesc{"mid-b", 25.0, 50.0, false});
    descs.push_back(TaskDesc{"sink", 10.0, 20.0, false});
    request.chain = TaskChain{std::move(descs)};
    request.shape.chain = plan::ChainShape::of(request.chain);
    request.shape.branches = {
        GraphBranch{0, 1, 1, {}, {1, 2}},
        GraphBranch{1, 2, 3, {0}, {3}},
        GraphBranch{2, 4, 4, {0}, {3}},
        GraphBranch{3, 5, 5, {1, 2}, {}},
    };
    request.resources = budget;
    request.strategy = strategy;
    return request;
}

TEST(BranchChains, SplitsTheGlobalChainByBranchIntervals)
{
    const svc::GraphScheduleRequest request = diamond_request({4, 0});
    const std::vector<TaskChain> chains = svc::branch_chains(request.chain, request.shape);
    ASSERT_EQ(chains.size(), 4u);
    EXPECT_EQ(chains[0].size(), 1);
    EXPECT_EQ(chains[1].size(), 2);
    EXPECT_EQ(chains[1].task(1).name, "mid-a1");
    EXPECT_EQ(chains[1].task(2).name, "mid-a2");
    EXPECT_EQ(chains[3].task(1).name, "sink");

    // Local task ids restart at 1 per branch and weights survive the split.
    EXPECT_DOUBLE_EQ(chains[2].task(1).w_big, 25.0);

    TaskChain short_chain{std::vector<TaskDesc>{{"only", 1.0, 2.0, true}}};
    EXPECT_THROW((void)svc::branch_chains(short_chain, request.shape), plan::PlanError);
}

TEST(ScheduleGraph, WaterFillingGrantsTheBottleneckBranch)
{
    svc::SolverService service{{.workers = 1}};
    const svc::GraphScheduleRequest request = diamond_request({6, 0});
    const svc::GraphSchedule schedule = svc::schedule_graph(request, service);
    ASSERT_TRUE(schedule.ok) << schedule.error;
    ASSERT_EQ(schedule.branches.size(), 4u);
    EXPECT_GT(schedule.solves, 4);

    // The replicable heavy branch must have received more than its seed core.
    const svc::BranchSchedule& heavy = schedule.branches[1];
    EXPECT_GT(heavy.budget.big + heavy.budget.little, 1);

    // The stitched plan reports the combined bound: max branch period.
    double worst = 0.0;
    for (const svc::BranchSchedule& branch : schedule.branches)
        worst = std::max(worst, branch.period_us);
    EXPECT_DOUBLE_EQ(schedule.period_us, worst);
    EXPECT_DOUBLE_EQ(schedule.plan.period_us(), worst);
    EXPECT_FALSE(schedule.plan.linear());
    EXPECT_TRUE(schedule.plan.has_profile());
    EXPECT_EQ(schedule.plan.graph().branch_count(), 4);

    // With mid-a split over >= 2 big cores its period is at most 60, so the
    // bottleneck cannot be the un-replicable 120 us branch load.
    EXPECT_LE(schedule.period_us, 60.0 + 1e-9);
}

TEST(ScheduleGraph, IsDeterministicAcrossRunsAndServices)
{
    const svc::GraphScheduleRequest request = diamond_request({5, 2});
    svc::SolverService first{{.workers = 1}};
    svc::SolverService second{{.workers = 2}};
    const svc::GraphSchedule a = svc::schedule_graph(request, first);
    const svc::GraphSchedule b = svc::schedule_graph(request, second);
    const svc::GraphSchedule c = svc::schedule_graph(request, first); // cache-warm rerun
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_TRUE(c.ok);
    EXPECT_DOUBLE_EQ(a.period_us, b.period_us);
    EXPECT_DOUBLE_EQ(a.period_us, c.period_us);
    EXPECT_EQ(a.plan.summary(), b.plan.summary());
    EXPECT_EQ(a.plan.summary(), c.plan.summary());
    for (std::size_t i = 0; i < a.branches.size(); ++i) {
        EXPECT_EQ(a.branches[i].budget.big, b.branches[i].budget.big);
        EXPECT_EQ(a.branches[i].budget.little, b.branches[i].budget.little);
        EXPECT_EQ(a.branches[i].result.solution, c.branches[i].result.solution);
    }
}

TEST(ScheduleGraph, BranchCacheDomainNeverCollidesWithStandaloneChains)
{
    // Identical (chain, resources, strategy) in the default domain and the
    // graph-branch domain must key differently...
    const svc::GraphScheduleRequest request = diamond_request({4, 0});
    const std::vector<TaskChain> chains = svc::branch_chains(request.chain, request.shape);
    core::ScheduleRequest standalone;
    standalone.chain = chains[1];
    standalone.resources = {1, 0};
    standalone.strategy = Strategy::herad;
    core::ScheduleRequest branch = standalone;
    branch.cache_domain = svc::kGraphBranchDomain;
    EXPECT_FALSE(svc::key_of(standalone) == svc::key_of(branch));
    EXPECT_NE(svc::hash_key(svc::key_of(standalone)), svc::hash_key(svc::key_of(branch)));

    // ...and behaviorally: after a graph solve warmed the branch domain, an
    // identical standalone solve still misses (no cross-domain hits).
    svc::SolverService service{{.workers = 1}};
    const svc::GraphSchedule schedule = svc::schedule_graph(request, service);
    ASSERT_TRUE(schedule.ok) << schedule.error;
    const svc::CacheStats warmed = service.cache_stats();
    (void)service.solve(standalone);
    const svc::CacheStats after = service.cache_stats();
    EXPECT_EQ(after.misses, warmed.misses + 1)
        << "a standalone chain identical to a branch sub-chain must not hit "
           "the branch-domain entry";
    // The reverse direction stays cached: re-probing the branch domain hits.
    (void)service.solve(branch);
    EXPECT_EQ(service.cache_stats().hits, after.hits + 1);
}

TEST(ScheduleGraph, ReportsInfeasibilityInsteadOfThrowing)
{
    svc::SolverService service{{.workers = 1}};

    // Fewer cores than branches.
    const svc::GraphSchedule starved =
        svc::schedule_graph(diamond_request({2, 1}), service);
    EXPECT_FALSE(starved.ok);
    EXPECT_EQ(starved.error, "graph: fewer usable cores than branches");

    // OTAC variants can only spend one pool; a big budget of littles does
    // not help OTAC (B).
    const svc::GraphSchedule otac =
        svc::schedule_graph(diamond_request({2, 8}, Strategy::otac_big), service);
    EXPECT_FALSE(otac.ok);
    EXPECT_EQ(otac.error, "graph: fewer usable cores than branches");

    // A malformed shape still throws (programming error, not infeasibility).
    svc::GraphScheduleRequest malformed = diamond_request({4, 0});
    malformed.shape.branches[1].preds.clear();
    EXPECT_THROW((void)svc::schedule_graph(malformed, service), plan::PlanError);
}

TEST(ScheduleGraph, SolvesTheDvbs2Workloads)
{
    svc::SolverService service{{.workers = 2}};
    const dvbs2::PlatformProfile profile = dvbs2::mac_studio_profile();

    for (const auto& workload :
         {dvbs2::tx_rx_split_workload(profile), dvbs2::ab_decode_workload(profile)}) {
        svc::GraphScheduleRequest request;
        request.chain = workload.chain;
        request.shape = workload.shape;
        request.resources = {8, 4};
        const svc::GraphSchedule schedule = svc::schedule_graph(request, service);
        ASSERT_TRUE(schedule.ok) << schedule.error;
        EXPECT_FALSE(schedule.plan.linear());
        EXPECT_EQ(schedule.plan.task_count(), workload.chain.size());
        EXPECT_GT(schedule.period_us, 0.0);
        EXPECT_EQ(static_cast<int>(workload.names.size()), workload.chain.size());
    }
}

} // namespace
