#include "svc/solver_service.hpp"

#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using namespace amp;
using amp::testing::make_chain;

std::vector<core::TaskChain> random_chains(int count, std::uint64_t seed)
{
    Rng rng{seed};
    sim::GeneratorConfig config;
    std::vector<core::TaskChain> chains;
    chains.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        config.num_tasks = 5 + i % 23;
        config.stateless_ratio = (i % 5) * 0.25;
        chains.push_back(sim::generate_chain(config, rng));
    }
    return chains;
}

TEST(SolverService, SolveMatchesCoreScheduleForEveryStrategy)
{
    svc::SolverService service{{.workers = 1}};
    for (const auto& chain : random_chains(8, 42)) {
        for (const core::Strategy strategy : core::kAllStrategies) {
            const core::ScheduleRequest request{chain, {3, 3}, strategy};
            const core::ScheduleResult via_service = service.solve(request);
            const core::ScheduleResult via_core = core::schedule(request);
            EXPECT_EQ(via_service.error, via_core.error) << core::to_key(strategy);
            EXPECT_EQ(via_service.solution, via_core.solution) << core::to_key(strategy);
        }
    }
}

// The cache must be invisible except for speed: a hit returns a solution
// bit-identical to a fresh solve, for every strategy over random chains.
TEST(SolverService, CacheHitsAreBitIdenticalToFreshSolves)
{
    svc::SolverService service{{.workers = 1}};
    for (const auto& chain : random_chains(12, 7)) {
        for (const core::Strategy strategy : core::kAllStrategies) {
            const core::ScheduleRequest request{chain, {4, 2}, strategy};
            const core::ScheduleResult cold = service.solve(request);
            EXPECT_FALSE(cold.cache_hit);
            const core::ScheduleResult warm = service.solve(request);
            EXPECT_TRUE(warm.cache_hit) << core::to_key(strategy);
            EXPECT_EQ(warm.solution, cold.solution) << core::to_key(strategy);
            EXPECT_EQ(warm.error, cold.error);
            EXPECT_EQ(warm.solution, core::schedule(request).solution);
        }
    }
    EXPECT_GT(service.cache_stats().hits, 0u);
}

TEST(SolverService, DistinctOptionsDoNotShareCacheEntries)
{
    svc::SolverService service{{.workers = 1}};
    const auto chain = make_chain({{10, 20, true}, {30, 60, true}, {5, 9, false}});
    core::ScheduleRequest fast{chain, {3, 3}, core::Strategy::herad};
    fast.options.fast_u_search = true;
    (void)service.solve(core::ScheduleRequest{chain, {3, 3}, core::Strategy::herad});
    const core::ScheduleResult result = service.solve(fast);
    EXPECT_FALSE(result.cache_hit) << "options must be part of the cache key";
}

TEST(SolverService, BatchResultsAlignWithRequests)
{
    svc::SolverService service{{.workers = 2, .cache_capacity = 0}};
    const auto chains = random_chains(10, 99);
    std::vector<core::ScheduleRequest> requests;
    for (const auto& chain : chains)
        for (const core::Strategy strategy : core::kAllStrategies)
            requests.push_back(core::ScheduleRequest{chain, {3, 3}, strategy});

    const auto results = service.solve_batch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const core::ScheduleResult expected = core::schedule(requests[i]);
        EXPECT_EQ(results[i].error, expected.error) << i;
        EXPECT_EQ(results[i].solution, expected.solution) << i;
    }
}

TEST(SolverService, BatchSecondPassIsFullyCached)
{
    svc::SolverService service{{.workers = 2}};
    std::vector<core::ScheduleRequest> requests;
    for (const auto& chain : random_chains(6, 3))
        for (const core::Strategy strategy : core::kAllStrategies)
            requests.push_back(core::ScheduleRequest{chain, {2, 2}, strategy});

    const auto cold = service.solve_batch(requests);
    const auto warm = service.solve_batch(requests);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < warm.size(); ++i) {
        EXPECT_TRUE(warm[i].cache_hit) << i;
        EXPECT_EQ(warm[i].solution, cold[i].solution) << i;
    }
}

TEST(SolverService, ErrorsPropagateThroughTheService)
{
    svc::SolverService service{{.workers = 1}};
    const auto chain = make_chain({{10, 20, true}});
    const auto bad = service.solve(core::ScheduleRequest{chain, {0, 0}, core::Strategy::herad});
    EXPECT_EQ(bad.error, core::ScheduleError::invalid_request);
    EXPECT_TRUE(bad.solution.empty());

    const auto snapshot = service.metrics().snapshot();
    const auto it = snapshot.counters.find("amp_svc_solve_errors{strategy=\"herad\"}");
    ASSERT_NE(it, snapshot.counters.end());
    EXPECT_EQ(it->second, 1u);
}

TEST(SolverService, MetricsCountHitsMissesAndLatency)
{
    svc::SolverService service{{.workers = 1}};
    const auto chain = make_chain({{10, 20, true}, {5, 9, false}});
    const core::ScheduleRequest request{chain, {2, 2}, core::Strategy::fertac};
    (void)service.solve(request);
    (void)service.solve(request);
    (void)service.solve(request);

    const auto snapshot = service.metrics().snapshot();
    EXPECT_EQ(snapshot.counters.at("amp_svc_cache_misses{strategy=\"fertac\"}"), 1u);
    EXPECT_EQ(snapshot.counters.at("amp_svc_cache_hits{strategy=\"fertac\"}"), 2u);
    const auto hist = snapshot.histograms.find("amp_svc_solve_latency_us{strategy=\"fertac\"}");
    ASSERT_NE(hist, snapshot.histograms.end());
}

TEST(SolverService, ClearCacheForcesResolve)
{
    svc::SolverService service{{.workers = 1}};
    const auto chain = make_chain({{10, 20, true}, {5, 9, false}});
    const core::ScheduleRequest request{chain, {2, 2}, core::Strategy::herad};
    (void)service.solve(request);
    EXPECT_TRUE(service.solve(request).cache_hit);
    service.clear_cache();
    EXPECT_FALSE(service.solve(request).cache_hit);
}

TEST(SolverService, ZeroWorkerConfigFallsBackToHardware)
{
    svc::SolverService service{{.workers = 0}};
    EXPECT_GE(service.workers(), 1);
}

// Exercised under TSan in CI: several threads submit overlapping batches
// concurrently; every result must still match a fresh sequential solve.
TEST(SolverService, ConcurrentBatchesFromManyThreads)
{
    svc::SolverService service{{.workers = 2, .queue_capacity = 8}};
    const auto chains = random_chains(8, 1234);
    std::vector<core::ScheduleRequest> requests;
    for (const auto& chain : chains)
        for (const core::Strategy strategy : core::kAllStrategies)
            requests.push_back(core::ScheduleRequest{chain, {3, 2}, strategy});
    std::vector<core::ScheduleResult> expected;
    expected.reserve(requests.size());
    for (const auto& request : requests)
        expected.push_back(core::schedule(request));

    constexpr int kSubmitters = 4;
    std::vector<std::thread> submitters;
    std::vector<int> failures(kSubmitters, 0);
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            for (int round = 0; round < 3; ++round) {
                const auto results = service.solve_batch(requests);
                for (std::size_t i = 0; i < requests.size(); ++i)
                    if (results[i].solution != expected[i].solution ||
                        results[i].error != expected[i].error)
                        ++failures[static_cast<std::size_t>(t)];
            }
        });
    }
    for (auto& thread : submitters)
        thread.join();
    for (int t = 0; t < kSubmitters; ++t)
        EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0) << "submitter " << t;
}

// Regression stress for the Batch lifetime protocol (use-after-free on
// completion): a tiny batch is destroyed by the submitter the instant its
// last job finishes, so a worker that still touched the Batch after its
// decrement would race with the destruction. Caching is off so every
// request actually flows through the worker pool. Caught under TSan.
TEST(SolverService, TinyBatchChurnStressesBatchLifetime)
{
    svc::SolverService service{{.workers = 4, .cache_capacity = 0, .queue_capacity = 2}};
    const auto chains = random_chains(2, 99);
    constexpr int kSubmitters = 4;
    std::vector<std::thread> submitters;
    std::vector<int> failures(kSubmitters, 0);
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            for (int round = 0; round < 200; ++round) {
                const std::vector<core::ScheduleRequest> batch{core::ScheduleRequest{
                    chains[static_cast<std::size_t>(round) % chains.size()],
                    {2, 1},
                    core::Strategy::fertac}};
                const auto results = service.solve_batch(batch);
                if (results.size() != 1 || !results[0].ok())
                    ++failures[static_cast<std::size_t>(t)];
            }
        });
    }
    for (auto& thread : submitters)
        thread.join();
    for (int t = 0; t < kSubmitters; ++t)
        EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0) << "submitter " << t;
}

// The plan-aware cache: a solve_planned hit returns the SAME immutable
// compiled plan object as the miss that populated it -- zero recompiles,
// pinned by pointer identity.
TEST(SolverService, SolvePlannedHitsSharePointerIdenticalPlans)
{
    svc::SolverService service{{.workers = 1}};
    const auto chain = make_chain({{10, 20, true}, {30, 60, true}, {5, 9, false}});
    const core::ScheduleRequest request{chain, {2, 2}, core::Strategy::herad};

    const svc::PlannedSchedule cold = service.solve_planned(request);
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold.result.cache_hit);

    const svc::PlannedSchedule warm = service.solve_planned(request);
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm.result.cache_hit);
    EXPECT_EQ(warm.plan.get(), cold.plan.get())
        << "a cache hit must reuse the stored plan, not recompile";
    EXPECT_EQ(warm.result.solution, cold.result.solution);
}

// An entry admitted by plain solve() carries no plan; the first
// solve_planned hit compiles once and attaches it, and every later hit
// shares that attached plan.
TEST(SolverService, SolvePlannedAttachesAPlanToAPlainEntry)
{
    svc::SolverService service{{.workers = 1}};
    const auto chain = make_chain({{10, 20, true}, {30, 60, true}, {5, 9, false}});
    const core::ScheduleRequest request{chain, {2, 2}, core::Strategy::herad};

    (void)service.solve(request); // plan-less cache entry

    const svc::PlannedSchedule first = service.solve_planned(request);
    EXPECT_TRUE(first.result.cache_hit);
    ASSERT_NE(first.plan, nullptr) << "the hit path compiles and attaches once";

    const svc::PlannedSchedule second = service.solve_planned(request);
    EXPECT_TRUE(second.result.cache_hit);
    EXPECT_EQ(second.plan.get(), first.plan.get());
}

// Plans are only shared across hits with equal PlanOptions; a mismatched
// hit recompiles with the requested options instead of handing back a plan
// whose queues are sized differently.
TEST(SolverService, SolvePlannedRecompilesOnDifferentPlanOptions)
{
    svc::SolverService service{{.workers = 1}};
    const auto chain = make_chain({{10, 20, true}, {30, 60, true}, {5, 9, false}});
    const core::ScheduleRequest request{chain, {2, 2}, core::Strategy::herad};

    const svc::PlannedSchedule narrow = service.solve_planned(request);
    ASSERT_TRUE(narrow.ok());

    plan::PlanOptions wide;
    wide.queue_capacity = 64;
    const svc::PlannedSchedule other = service.solve_planned(request, wide);
    ASSERT_TRUE(other.ok());
    EXPECT_TRUE(other.result.cache_hit) << "the schedule itself is still cached";
    EXPECT_NE(other.plan.get(), narrow.plan.get());
    EXPECT_EQ(other.plan->options(), wide);
}

TEST(SharedService, IsASingleProcessWideInstance)
{
    svc::SolverService& first = svc::shared_service();
    svc::SolverService& second = svc::shared_service();
    EXPECT_EQ(&first, &second);
    EXPECT_GE(first.workers(), 1);
}

} // namespace
