// Unit tests for the overload-protection building blocks: AdmissionQueue
// shedding policies, AdmissionTicket claim/shed races and the CircuitBreaker
// state machine (docs/FAULT_MODEL.md, "Overload model").

#include "svc/admission.hpp"
#include "svc/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace amp::svc {
namespace {

std::shared_ptr<AdmissionTicket> make_ticket(std::uint64_t id, std::int8_t priority = 0)
{
    auto ticket = std::make_shared<AdmissionTicket>();
    ticket->id = id;
    ticket->priority = priority;
    return ticket;
}

TEST(AdmissionQueue, DisabledAdmitsEverythingAndTracksNothing)
{
    AdmissionQueue queue{AdmissionConfig{}};
    EXPECT_FALSE(queue.enabled());
    for (std::uint64_t i = 0; i < 100; ++i) {
        const auto offer = queue.offer(make_ticket(i));
        EXPECT_EQ(offer.verdict, AdmissionQueue::Verdict::admitted);
    }
    EXPECT_EQ(queue.depth(), 0u);
    EXPECT_EQ(queue.pressure(), 0.0);
    EXPECT_EQ(queue.stats().admitted, 0u) << "disabled admission tracks nothing";
    EXPECT_EQ(queue.stats().rejected, 0u);
}

TEST(AdmissionQueue, RejectNewestShedsTheNewcomerAtCapacity)
{
    AdmissionQueue queue{AdmissionConfig{2, ShedPolicy::reject_newest}};
    auto a = make_ticket(1);
    auto b = make_ticket(2);
    auto c = make_ticket(3);
    EXPECT_EQ(queue.offer(a).verdict, AdmissionQueue::Verdict::admitted);
    EXPECT_EQ(queue.offer(b).verdict, AdmissionQueue::Verdict::admitted);
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_EQ(queue.pressure(), 1.0);

    const auto offer = queue.offer(c);
    EXPECT_EQ(offer.verdict, AdmissionQueue::Verdict::rejected);
    EXPECT_EQ(c->state.load(), AdmissionTicket::State::shed)
        << "a rejected ticket's state must already be flipped";
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_EQ(queue.stats().rejected, 1u);

    // Claiming a queued ticket and releasing it frees a slot.
    ASSERT_TRUE(a->claim());
    queue.release(*a);
    EXPECT_EQ(queue.depth(), 1u);
    EXPECT_EQ(queue.offer(make_ticket(4)).verdict, AdmissionQueue::Verdict::admitted);
}

TEST(AdmissionQueue, DropOldestDisplacesTheFrontOfTheQueue)
{
    AdmissionQueue queue{AdmissionConfig{2, ShedPolicy::drop_oldest}};
    auto a = make_ticket(1);
    auto b = make_ticket(2);
    auto c = make_ticket(3);
    ASSERT_EQ(queue.offer(a).verdict, AdmissionQueue::Verdict::admitted);
    ASSERT_EQ(queue.offer(b).verdict, AdmissionQueue::Verdict::admitted);

    const auto offer = queue.offer(c);
    EXPECT_EQ(offer.verdict, AdmissionQueue::Verdict::displaced);
    ASSERT_NE(offer.victim, nullptr);
    EXPECT_EQ(offer.victim->id, 1u) << "drop_oldest must shed the oldest queued ticket";
    EXPECT_EQ(offer.victim->state.load(), AdmissionTicket::State::shed);
    EXPECT_EQ(c->state.load(), AdmissionTicket::State::queued);
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_EQ(queue.stats().displaced, 1u);
}

TEST(AdmissionQueue, DropOldestSkipsAlreadyClaimedTickets)
{
    AdmissionQueue queue{AdmissionConfig{2, ShedPolicy::drop_oldest}};
    auto a = make_ticket(1);
    auto b = make_ticket(2);
    ASSERT_EQ(queue.offer(a).verdict, AdmissionQueue::Verdict::admitted);
    ASSERT_EQ(queue.offer(b).verdict, AdmissionQueue::Verdict::admitted);
    // A worker grabs the oldest ticket but has not released it yet.
    ASSERT_TRUE(a->claim());

    const auto offer = queue.offer(make_ticket(3));
    // Claiming `a` implicitly freed a pending slot, so the newcomer is
    // admitted without displacing anyone.
    EXPECT_EQ(offer.verdict, AdmissionQueue::Verdict::admitted);
    EXPECT_EQ(b->state.load(), AdmissionTicket::State::queued);
}

TEST(AdmissionQueue, PriorityAwareShedsTheLowestPriorityVictim)
{
    AdmissionQueue queue{AdmissionConfig{3, ShedPolicy::priority_aware}};
    auto low_a = make_ticket(1, 0);
    auto high = make_ticket(2, 5);
    auto low_b = make_ticket(3, 0);
    ASSERT_EQ(queue.offer(low_a).verdict, AdmissionQueue::Verdict::admitted);
    ASSERT_EQ(queue.offer(high).verdict, AdmissionQueue::Verdict::admitted);
    ASSERT_EQ(queue.offer(low_b).verdict, AdmissionQueue::Verdict::admitted);

    // Newcomer priority 3 beats the minimum (0); the *last* minimum-priority
    // ticket loses, so the older low-priority request keeps its place.
    const auto offer = queue.offer(make_ticket(4, 3));
    EXPECT_EQ(offer.verdict, AdmissionQueue::Verdict::displaced);
    ASSERT_NE(offer.victim, nullptr);
    EXPECT_EQ(offer.victim->id, 3u);
    EXPECT_EQ(low_a->state.load(), AdmissionTicket::State::queued);
    EXPECT_EQ(high->state.load(), AdmissionTicket::State::queued);
}

TEST(AdmissionQueue, PriorityAwareRejectsNewcomerOnTie)
{
    AdmissionQueue queue{AdmissionConfig{2, ShedPolicy::priority_aware}};
    ASSERT_EQ(queue.offer(make_ticket(1, 2)).verdict, AdmissionQueue::Verdict::admitted);
    ASSERT_EQ(queue.offer(make_ticket(2, 2)).verdict, AdmissionQueue::Verdict::admitted);

    // Equal priority is not enough: the newcomer must be strictly higher.
    auto tie = make_ticket(3, 2);
    EXPECT_EQ(queue.offer(tie).verdict, AdmissionQueue::Verdict::rejected);
    EXPECT_EQ(tie->state.load(), AdmissionTicket::State::shed);

    auto winner = make_ticket(4, 3);
    EXPECT_EQ(queue.offer(winner).verdict, AdmissionQueue::Verdict::displaced);
}

TEST(AdmissionQueue, PriorityAwareKeepsFifoOrderAmongEqualPriorities)
{
    // Pin the tie rule the arbiter's probe traffic relies on: when several
    // queued tickets share the minimum priority, the victim is always the
    // NEWEST of them, so the survivors are served in arrival (FIFO) order
    // and a displacement flood can never starve the oldest equal-priority
    // request.
    AdmissionQueue queue{AdmissionConfig{3, ShedPolicy::priority_aware}};
    ASSERT_EQ(queue.offer(make_ticket(1, 0)).verdict, AdmissionQueue::Verdict::admitted);
    ASSERT_EQ(queue.offer(make_ticket(2, 0)).verdict, AdmissionQueue::Verdict::admitted);
    ASSERT_EQ(queue.offer(make_ticket(3, 0)).verdict, AdmissionQueue::Verdict::admitted);

    // First displacement: ids {1, 2, 3} all at priority 0 -> id 3 loses.
    const auto first = queue.offer(make_ticket(4, 5));
    ASSERT_EQ(first.verdict, AdmissionQueue::Verdict::displaced);
    ASSERT_NE(first.victim, nullptr);
    EXPECT_EQ(first.victim->id, 3u) << "newest equal-priority ticket must lose first";

    // Second: {1, 2, high} -> id 2 loses; id 1 (the oldest) still survives.
    const auto second = queue.offer(make_ticket(5, 5));
    ASSERT_EQ(second.verdict, AdmissionQueue::Verdict::displaced);
    ASSERT_NE(second.victim, nullptr);
    EXPECT_EQ(second.victim->id, 2u);

    // Third: {1, high, high} -> id 1 is finally the only minimum left.
    const auto third = queue.offer(make_ticket(6, 5));
    ASSERT_EQ(third.verdict, AdmissionQueue::Verdict::displaced);
    ASSERT_NE(third.victim, nullptr);
    EXPECT_EQ(third.victim->id, 1u);

    // Among the equal-priority survivors the queue itself stays in arrival
    // order: a fourth equal-priority newcomer displaces the newest of the
    // high tickets, never an older one.
    const auto fourth = queue.offer(make_ticket(7, 6));
    ASSERT_EQ(fourth.verdict, AdmissionQueue::Verdict::displaced);
    ASSERT_NE(fourth.victim, nullptr);
    EXPECT_EQ(fourth.victim->id, 6u)
        << "FIFO among equals: the most recent admission is the tie victim";
    EXPECT_EQ(queue.stats().displaced, 4u);
}

TEST(AdmissionQueue, RecoveryPriorityAlwaysDisplacesBulkTraffic)
{
    AdmissionQueue queue{AdmissionConfig{1, ShedPolicy::priority_aware}};
    ASSERT_EQ(queue.offer(make_ticket(1, 0)).verdict, AdmissionQueue::Verdict::admitted);
    auto recovery = make_ticket(2, kRecoveryPriority);
    const auto offer = queue.offer(recovery);
    EXPECT_EQ(offer.verdict, AdmissionQueue::Verdict::displaced);
    EXPECT_EQ(recovery->state.load(), AdmissionTicket::State::queued);
}

TEST(AdmissionTicket, ClaimAndShedRaceHasExactlyOneWinner)
{
    // The single CAS is the whole synchronization story between a worker
    // popping the job and the shedding policy dropping it -- exactly one
    // side may win, every time.
    for (int round = 0; round < 200; ++round) {
        AdmissionTicket ticket;
        std::atomic<int> claims{0};
        std::atomic<int> sheds{0};
        std::atomic<bool> go{false};
        std::thread worker{[&] {
            while (!go.load()) {}
            if (ticket.claim())
                claims.fetch_add(1);
        }};
        std::thread policy{[&] {
            while (!go.load()) {}
            if (ticket.shed())
                sheds.fetch_add(1);
        }};
        go.store(true);
        worker.join();
        policy.join();
        EXPECT_EQ(claims.load() + sheds.load(), 1) << "round " << round;
    }
}

// -- circuit breaker ------------------------------------------------------

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresOnly)
{
    CircuitBreaker breaker{BreakerConfig{3, 1000, 1, 1}};
    std::int64_t now = 0;
    EXPECT_TRUE(breaker.allow(now));
    breaker.on_failure(++now);
    breaker.on_failure(++now);
    breaker.on_success(++now); // streak broken
    breaker.on_failure(++now);
    breaker.on_failure(++now);
    EXPECT_EQ(breaker.state(), BreakerState::closed);
    breaker.on_failure(++now);
    EXPECT_EQ(breaker.state(), BreakerState::open);
    EXPECT_EQ(breaker.trips(), 1u);
    EXPECT_FALSE(breaker.allow(now)) << "open breaker fails fast";
}

TEST(CircuitBreaker, HalfOpensAfterCooldownAndClosesOnProbeSuccess)
{
    CircuitBreaker breaker{BreakerConfig{1, 1000, 1, 2}};
    breaker.on_failure(0);
    ASSERT_EQ(breaker.state(), BreakerState::open);
    EXPECT_FALSE(breaker.allow(999)) << "cooldown not elapsed";
    EXPECT_TRUE(breaker.allow(1000)) << "caller becomes the first probe";
    EXPECT_EQ(breaker.state(), BreakerState::half_open);
    EXPECT_FALSE(breaker.allow(1001)) << "probe budget (1) exhausted";
    breaker.on_success(1002);
    EXPECT_EQ(breaker.state(), BreakerState::half_open) << "close_threshold = 2";
    EXPECT_TRUE(breaker.allow(1003));
    breaker.on_success(1004);
    EXPECT_EQ(breaker.state(), BreakerState::closed);
}

TEST(CircuitBreaker, ProbeFailureReopensAndRestartsCooldown)
{
    CircuitBreaker breaker{BreakerConfig{1, 1000, 1, 1}};
    breaker.on_failure(0);
    ASSERT_TRUE(breaker.allow(1000));
    breaker.on_failure(1100);
    EXPECT_EQ(breaker.state(), BreakerState::open);
    EXPECT_EQ(breaker.trips(), 2u);
    EXPECT_FALSE(breaker.allow(1500)) << "cooldown restarted at the re-open";
    EXPECT_TRUE(breaker.allow(2100));
}

TEST(CircuitBreaker, StragglerOutcomesWhileOpenAreIgnored)
{
    CircuitBreaker breaker{BreakerConfig{2, 1000, 1, 1}};
    breaker.on_failure(0);
    breaker.on_failure(1);
    ASSERT_EQ(breaker.state(), BreakerState::open);
    // A solve admitted before the trip finishing late must not mutate the
    // open breaker (success must not close it, failure must not re-trip).
    breaker.on_success(2);
    breaker.on_failure(3);
    EXPECT_EQ(breaker.state(), BreakerState::open);
    EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, DisabledBreakerAlwaysAllows)
{
    CircuitBreaker breaker{BreakerConfig{0, 1000, 1, 1}};
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(breaker.allow(i));
        breaker.on_failure(i);
    }
    EXPECT_EQ(breaker.state(), BreakerState::closed);
    EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, TransitionLogRecordsTheFullStateHistory)
{
    CircuitBreaker breaker{BreakerConfig{1, 100, 1, 1}};
    breaker.on_failure(10);       // closed -> open
    ASSERT_TRUE(breaker.allow(110)); // open -> half_open
    breaker.on_success(120);      // half_open -> closed
    breaker.on_failure(130);      // closed -> open
    const auto log = breaker.transitions();
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0], (BreakerTransition{BreakerState::closed, BreakerState::open, 10}));
    EXPECT_EQ(log[1], (BreakerTransition{BreakerState::open, BreakerState::half_open, 110}));
    EXPECT_EQ(log[2], (BreakerTransition{BreakerState::half_open, BreakerState::closed, 120}));
    EXPECT_EQ(log[3], (BreakerTransition{BreakerState::closed, BreakerState::open, 130}));
}

} // namespace
} // namespace amp::svc
