// Service-level overload protection: deadlines, circuit breaking, brownout
// stale serving with background refinement, admission shedding under load,
// and shutdown hardening (docs/FAULT_MODEL.md, "Overload model").
//
// Everything here is either fully deterministic (breaker paths, deadlines)
// or asserts timing-independent invariants (shedding accounting, shutdown
// liveness) -- no test depends on how fast the machine solves.

#include "svc/solver_service.hpp"

#include "obs/schema.hpp"
#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace amp;
using amp::testing::make_chain;

core::TaskChain small_chain()
{
    return make_chain({{10, 20, true}, {30, 60, true}, {5, 9, false}});
}

std::vector<core::TaskChain> random_chains(int count, std::uint64_t seed)
{
    Rng rng{seed};
    sim::GeneratorConfig config;
    config.num_tasks = 60; // big enough that a solve is not instantaneous
    std::vector<core::TaskChain> chains;
    chains.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        chains.push_back(sim::generate_chain(config, rng));
    return chains;
}

TEST(OverloadService, ExpiredDeadlineIsAnsweredNotSolved)
{
    svc::SolverService service{{.workers = 1}};
    core::ScheduleRequest request{small_chain(), {2, 2}, core::Strategy::herad};
    request.deadline_ns = 1; // steady-clock epoch + 1ns: long gone
    const core::ScheduleResult result = service.solve(request);
    EXPECT_EQ(result.error, core::ScheduleError::deadline_exceeded);
    EXPECT_TRUE(result.solution.empty());
    EXPECT_EQ(service.metrics().counter(obs::schema::kSvcDeadlineExceeded).value(), 1u)
        << "a deadline miss is never silent";
    EXPECT_EQ(service.cache_stats().misses, 0u) << "the solver must not have run";
}

TEST(OverloadService, FutureDeadlineSolvesNormally)
{
    svc::SolverService service{{.workers = 1}};
    core::ScheduleRequest request{small_chain(), {2, 2}, core::Strategy::herad};
    request.deadline_ns = std::numeric_limits<std::int64_t>::max();
    const core::ScheduleResult result = service.solve(request);
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(result.degraded);
}

// With slow_solve_ns = 1 every real solve counts as a breaker failure, so
// the breaker dynamics are deterministic regardless of machine speed.
TEST(OverloadService, BreakerTripsOnSlowSolvesAndFailsFast)
{
    svc::SolverService service{{
        .workers = 1,
        .breaker = svc::BreakerConfig{1, std::numeric_limits<std::int64_t>::max() / 2, 1, 1},
        .slow_solve_ns = 1,
    }};
    const auto chain = small_chain();
    const core::ScheduleRequest first{chain, {1, 1}, core::Strategy::herad};
    EXPECT_TRUE(service.solve(first).ok()) << "a slow solve still returns its result";
    EXPECT_EQ(service.breaker().state(), svc::BreakerState::open);
    EXPECT_EQ(service.breaker().trips(), 1u);
    EXPECT_TRUE(service.under_pressure());

    // Open breaker, no brownout: fail fast with rejected.
    const core::ScheduleRequest second{chain, {4, 4}, core::Strategy::herad};
    const core::ScheduleResult rejected = service.solve(second);
    EXPECT_EQ(rejected.error, core::ScheduleError::rejected);
    EXPECT_GE(service.metrics().counter(obs::schema::kSvcBreakerRejected).value(), 1u);
    EXPECT_EQ(service.metrics().counter(obs::schema::kSvcBreakerTrips).value(), 1u);

    // An exact cache hit bypasses the breaker entirely: hits are free.
    const core::ScheduleResult hit = service.solve(first);
    EXPECT_TRUE(hit.ok());
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_FALSE(hit.degraded);
}

TEST(OverloadService, CacheHitsNeverTripTheBreaker)
{
    svc::SolverService service{{
        .workers = 1,
        .breaker = svc::BreakerConfig{2, 1'000'000, 1, 1},
        .slow_solve_ns = 1,
    }};
    const core::ScheduleRequest request{small_chain(), {2, 2}, core::Strategy::herad};
    ASSERT_TRUE(service.solve(request).ok()); // 1 slow solve: one failure
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(service.solve(request).cache_hit);
    EXPECT_EQ(service.breaker().state(), svc::BreakerState::closed)
        << "hits must not count as slow solves";
}

TEST(OverloadService, BrownoutServesStaleCompatiblePlanWhenBreakerOpen)
{
    std::mutex mutex;
    std::condition_variable refined_cv;
    std::vector<svc::RefineOutcome> refined;
    svc::SolverService service{{
        .workers = 1,
        // Effectively-infinite cooldown: the breaker stays open for the
        // whole test. Refinements deliberately bypass it (they are the
        // probe traffic), so the stale entry still gets refreshed.
        .breaker = svc::BreakerConfig{1, std::numeric_limits<std::int64_t>::max() / 2, 1, 1},
        .slow_solve_ns = 1,
        .brownout = true,
        .on_refined =
            [&](const svc::RefineOutcome& outcome) {
                std::lock_guard lock{mutex};
                refined.push_back(outcome);
                refined_cv.notify_all();
            },
    }};
    const auto chain = small_chain();

    // Warm the cache with a *planned* solve on a small resource vector;
    // this slow solve also trips the breaker.
    const core::ScheduleRequest small{chain, {1, 1}, core::Strategy::herad};
    const svc::PlannedSchedule warm = service.solve_planned(small);
    ASSERT_TRUE(warm.ok());
    ASSERT_EQ(service.breaker().state(), svc::BreakerState::open);

    // Same chain, bigger budget: the cached (1,1) schedule fits inside
    // (4,4), so brownout serves it degraded instead of rejecting.
    const core::ScheduleRequest big{chain, {4, 4}, core::Strategy::herad};
    const svc::PlannedSchedule stale = service.solve_planned(big);
    ASSERT_TRUE(stale.ok());
    EXPECT_TRUE(stale.result.degraded);
    EXPECT_EQ(stale.result.solution, warm.result.solution)
        << "the degraded answer is the stale cached schedule";
    EXPECT_EQ(stale.plan, warm.plan) << "and the very plan object that was cached";
    EXPECT_GE(service.metrics().counter(obs::schema::kSvcDegradedServes).value(), 1u);

    // The background refinement re-solves the exact request and reports a
    // delta against the plan that was served.
    {
        std::unique_lock lock{mutex};
        ASSERT_TRUE(refined_cv.wait_for(lock, std::chrono::seconds{30},
                                        [&] { return !refined.empty(); }))
            << "refinement never completed";
        const svc::RefineOutcome& outcome = refined.front();
        EXPECT_EQ(outcome.request.resources.big, 4);
        EXPECT_EQ(outcome.stale, warm.plan);
        ASSERT_TRUE(outcome.fresh.ok());
        EXPECT_FALSE(outcome.fresh.result.degraded);
        EXPECT_EQ(outcome.fresh.result.solution,
                  core::schedule(core::ScheduleRequest{chain, {4, 4}, core::Strategy::herad})
                      .solution);
    }
    EXPECT_GE(service.metrics().counter(obs::schema::kSvcRefinements).value(), 1u);

    // The refinement memoized the fresh solve: the same request is now an
    // exact cache hit, not a degraded serve, even though the breaker is
    // still open.
    const svc::PlannedSchedule after = service.solve_planned(big);
    EXPECT_TRUE(after.result.cache_hit);
    EXPECT_FALSE(after.result.degraded);
}

TEST(OverloadService, BrownoutNeverServesAnIncompatibleBudget)
{
    svc::SolverService service{{
        .workers = 1,
        .breaker = svc::BreakerConfig{1, std::numeric_limits<std::int64_t>::max() / 2, 1, 1},
        .slow_solve_ns = 1,
        .brownout = true,
    }};
    const auto chain = small_chain();
    // Cached entry needs (3, 3); a (1, 1) request cannot run it.
    ASSERT_TRUE(service.solve(core::ScheduleRequest{chain, {3, 3}, core::Strategy::herad}).ok());
    ASSERT_EQ(service.breaker().state(), svc::BreakerState::open);
    const core::ScheduleResult result =
        service.solve(core::ScheduleRequest{chain, {1, 1}, core::Strategy::herad});
    EXPECT_EQ(result.error, core::ScheduleError::rejected)
        << "a stale schedule that oversubscribes the budget must not be served";
    EXPECT_FALSE(result.degraded);
}

// Timing-independent shedding accounting: whatever the interleaving, every
// shed is answered with `rejected` and counted -- results, admission stats
// and obs counters must agree exactly (zero silent drops).
TEST(OverloadService, SheddingIsNeverSilentUnderBatchOverload)
{
    svc::SolverService service{{
        .workers = 1,
        .cache_capacity = 0, // every job is a real solve
        .admission = svc::AdmissionConfig{2, svc::ShedPolicy::drop_oldest},
    }};
    const auto chains = random_chains(24, 0xfeed);
    std::vector<core::ScheduleRequest> requests;
    requests.reserve(chains.size());
    for (const auto& chain : chains)
        requests.push_back(core::ScheduleRequest{chain, {3, 3}, core::Strategy::herad});

    const std::vector<core::ScheduleResult> results = service.solve_batch(requests);
    ASSERT_EQ(results.size(), requests.size());

    std::uint64_t rejected_results = 0;
    for (const core::ScheduleResult& result : results) {
        EXPECT_TRUE(result.ok() || result.error == core::ScheduleError::rejected)
            << core::to_string(result.error);
        rejected_results += result.error == core::ScheduleError::rejected ? 1u : 0u;
    }
    const svc::AdmissionStats stats = service.admission_stats();
    EXPECT_EQ(stats.admitted + stats.rejected, requests.size())
        << "every request passes the admission door exactly once";
    EXPECT_EQ(rejected_results, stats.rejected + stats.displaced)
        << "every shed ticket must surface as a rejected result";
    EXPECT_EQ(service.metrics().counter(obs::schema::kSvcAdmissionRejected).value(),
              stats.rejected);
    EXPECT_EQ(service.metrics().counter(obs::schema::kSvcAdmissionDisplaced).value(),
              stats.displaced);
    EXPECT_EQ(service.admission_depth(), 0u) << "the batch drained completely";
}

TEST(OverloadService, StoppedServiceRejectsInsteadOfHanging)
{
    svc::SolverService service{{.workers = 2}};
    service.stop();
    EXPECT_TRUE(service.stopped());
    const core::ScheduleRequest request{small_chain(), {2, 2}, core::Strategy::herad};
    EXPECT_EQ(service.solve(request).error, core::ScheduleError::rejected);
    EXPECT_EQ(service.solve_planned(request).result.error, core::ScheduleError::rejected);
    const auto batch = service.solve_batch({request, request});
    ASSERT_EQ(batch.size(), 2u);
    for (const auto& result : batch)
        EXPECT_EQ(result.error, core::ScheduleError::rejected);
    service.stop(); // idempotent
}

// Satellite pin: submits racing stop() must resolve cleanly -- every result
// is ok or rejected and no solve_batch caller is left on its condvar. Run
// under TSan in CI (tsan-rt builds this target) to pin the data-race
// freedom of the shutdown path, not just its liveness.
TEST(OverloadService, ShutdownChurnNeverHangsOrDropsResults)
{
    const auto chains = random_chains(4, 0xdead);
    for (int round = 0; round < 12; ++round) {
        svc::SolverService service{{
            .workers = 2,
            .cache_capacity = 0,
            .queue_capacity = 4,
            .admission = svc::AdmissionConfig{8, svc::ShedPolicy::priority_aware},
        }};
        std::atomic<bool> quit{false};
        std::atomic<std::uint64_t> bad{0};
        std::vector<std::thread> submitters;
        for (int t = 0; t < 4; ++t) {
            submitters.emplace_back([&, t] {
                std::vector<core::ScheduleRequest> requests;
                for (const auto& chain : chains)
                    requests.push_back(core::ScheduleRequest{
                        chain, {2 + t % 2, 2}, core::Strategy::herad});
                while (!quit.load(std::memory_order_acquire)) {
                    const auto results = service.solve_batch(requests);
                    if (results.size() != requests.size()) {
                        bad.fetch_add(1);
                        continue;
                    }
                    for (const auto& result : results)
                        if (!result.ok() && result.error != core::ScheduleError::rejected)
                            bad.fetch_add(1);
                }
            });
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{2 + round % 3});
        service.stop(); // races in-flight submits by design
        quit.store(true, std::memory_order_release);
        for (auto& thread : submitters)
            thread.join();
        EXPECT_EQ(bad.load(), 0u) << "round " << round;
    }
}

} // namespace
