// Cache identity of energy-objective solves (docs/ENERGY.md): the widened
// 16-bit option encoding, the energy fingerprint field, key distinctness
// over the full option space, and bit-identical cached vs cold answers.

#include "svc/pareto.hpp"
#include "svc/solution_cache.hpp"
#include "svc/solver_service.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

#include <set>
#include <type_traits>
#include <vector>

namespace {

using namespace amp;
using amp::testing::make_chain;

core::ScheduleOptions options_from_bits(unsigned bits)
{
    core::ScheduleOptions options;
    options.merge_stages = (bits & 1u) != 0;
    options.prune = (bits & 2u) != 0;
    options.fast_u_search = (bits & 4u) != 0;
    options.preference = (bits & 8u) != 0 ? core::FertacPreference::big_first
                                          : core::FertacPreference::little_first;
    if ((bits & 16u) != 0) {
        options.objective = core::Objective::min_energy_under_period;
        options.target_period = 25.0;
    }
    return options;
}

TEST(EnergyCacheKey, DistinctAcrossEveryOptionCombination)
{
    // All 32 combinations of the five encoded options must produce 32
    // distinct cache keys -- the regression that motivated widening
    // key_bits() from uint8_t before the 5th bit landed.
    const auto chain = make_chain({{10, 20, true}, {5, 9, false}});
    std::vector<svc::CacheKey> keys;
    std::set<std::uint16_t> bit_patterns;
    for (unsigned bits = 0; bits < 32; ++bits) {
        core::ScheduleRequest request{chain, {2, 2}, core::Strategy::herad,
                                      options_from_bits(bits)};
        keys.push_back(svc::key_of(request));
        bit_patterns.insert(request.options.key_bits());
    }
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << "combinations " << i << " and " << j;
    EXPECT_EQ(bit_patterns.size(), 32u);
}

TEST(EnergyCacheKey, OptionEncodingIsSixteenBitsWide)
{
    // The encoding (and the CacheKey field carrying it) must be uint16_t:
    // assigning the full pattern through the key round-trips unclipped.
    static_assert(std::is_same_v<decltype(core::ScheduleOptions{}.key_bits()), std::uint16_t>);
    static_assert(std::is_same_v<decltype(svc::CacheKey{}.options), std::uint16_t>);
    svc::CacheKey key;
    key.options = 0x1ff; // would truncate to 0xff under the old uint8_t field
    EXPECT_EQ(key.options, 0x1ffu);
}

TEST(EnergyCacheKey, ContinuousObjectiveParametersSeparateEntries)
{
    const auto chain = make_chain({{10, 20, true}, {5, 9, false}});
    core::ScheduleRequest request{chain, {2, 2}, core::Strategy::herad};
    request.options.objective = core::Objective::min_energy_under_period;
    request.options.target_period = 25.0;
    const svc::CacheKey base = svc::key_of(request);
    EXPECT_NE(base.energy, 0u);

    core::ScheduleRequest other_target = request;
    other_target.options.target_period = 30.0;
    EXPECT_NE(base, svc::key_of(other_target));

    core::ScheduleRequest other_watts = request;
    other_watts.options.power.big_watts = 5.0;
    EXPECT_NE(base, svc::key_of(other_watts));

    core::ScheduleRequest other_idle = request;
    other_idle.options.power.idle_watts = 0.7;
    EXPECT_NE(base, svc::key_of(other_idle));

    // min_period requests ignore the continuous parameters entirely: the
    // energy field stays 0 no matter what they hold, so sweep callers that
    // leave stale values in options never fragment the cache.
    core::ScheduleRequest min_period = request;
    min_period.options.objective = core::Objective::min_period;
    EXPECT_EQ(svc::key_of(min_period).energy, 0u);
    core::ScheduleRequest min_period_other = min_period;
    min_period_other.options.target_period = 99.0;
    min_period_other.options.power.big_watts = 9.0;
    EXPECT_EQ(svc::key_of(min_period), svc::key_of(min_period_other));
}

TEST(EnergyCacheKey, EnergyWeightsChangeChainIdentity)
{
    core::TaskChain plain{{core::TaskDesc{"a", 10, 20, true},
                           core::TaskDesc{"b", 5, 9, false}}};
    core::TaskChain weighted{{core::TaskDesc{"a", 10, 20, true, 2.5},
                              core::TaskDesc{"b", 5, 9, false}}};
    const svc::CacheKey a =
        svc::key_of(core::ScheduleRequest{plain, {2, 2}, core::Strategy::herad});
    const svc::CacheKey b =
        svc::key_of(core::ScheduleRequest{weighted, {2, 2}, core::Strategy::herad});
    EXPECT_NE(a, b) << "energy weights change what an energy solve returns";
}

TEST(EnergyCache, CachedEnergySolveIsBitIdenticalToCold)
{
    svc::ServiceConfig config;
    config.workers = 2;
    svc::SolverService service{config};

    const auto chain = make_chain({{10, 20, false}, {8, 16, true}, {5, 9, false}});
    core::ScheduleRequest request{chain, {2, 2}, core::Strategy::herad};
    request.options.objective = core::Objective::min_energy_under_period;
    request.options.target_period = 30.0;

    const core::ScheduleResult cold = service.solve(request);
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold.cache_hit);

    const core::ScheduleResult cached = service.solve(request);
    ASSERT_TRUE(cached.ok());
    EXPECT_TRUE(cached.cache_hit);
    EXPECT_EQ(cached.solution, cold.solution);

    // A re-solve after clearing the cache reproduces the same bits.
    service.clear_cache();
    const core::ScheduleResult recold = service.solve(request);
    ASSERT_TRUE(recold.ok());
    EXPECT_FALSE(recold.cache_hit);
    EXPECT_EQ(recold.solution, cold.solution);

    // The energy solve and the min-period solve of the same chain live in
    // different entries: neither lookup is answered with the other's result.
    core::ScheduleRequest min_period = request;
    min_period.options.objective = core::Objective::min_period;
    const core::ScheduleResult fastest = service.solve(min_period);
    ASSERT_TRUE(fastest.ok());
    EXPECT_FALSE(fastest.cache_hit);
}

TEST(EnergyPareto, SweepReturnsOnePointPerTargetAndCaches)
{
    svc::ServiceConfig config;
    config.workers = 2;
    svc::SolverService service{config};
    const auto chain = make_chain({{10, 20, false}, {8, 16, true}, {5, 9, false}});
    const core::PowerModel power{4.0, 1.0, 0.1};

    const core::Solution fastest =
        amp::testing::solve(core::Strategy::herad, chain, {2, 2});
    ASSERT_FALSE(fastest.empty());
    const double p_star = fastest.period(chain);
    const std::vector<double> targets{p_star * 0.5, p_star, p_star * 1.5, p_star * 2.0};

    const auto points =
        svc::energy_pareto_sweep(service, chain, {2, 2}, power, targets);
    ASSERT_EQ(points.size(), targets.size());
    EXPECT_FALSE(points[0].ok) << "half the optimal period is unreachable";
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_TRUE(points[i].ok);
        EXPECT_LE(points[i].period, targets[i] * (1.0 + 1e-9));
        EXPECT_GT(points[i].energy_per_item, 0.0);
    }
    // Looser targets never cost more energy (the curve is monotone).
    for (std::size_t i = 2; i < points.size(); ++i)
        EXPECT_LE(points[i].energy_per_item, points[i - 1].energy_per_item + 1e-9);

    // A repeated sweep is answered from the cache, point for point.
    const auto again =
        svc::energy_pareto_sweep(service, chain, {2, 2}, power, targets);
    ASSERT_EQ(again.size(), points.size());
    for (std::size_t i = 0; i < again.size(); ++i) {
        EXPECT_TRUE(again[i].cache_hit) << "target " << targets[i];
        EXPECT_EQ(again[i].solution, points[i].solution);
    }
}

} // namespace
