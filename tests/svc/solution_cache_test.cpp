#include "svc/solution_cache.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp;
using amp::testing::make_chain;

core::ScheduleRequest request_for(const core::TaskChain& chain, core::Resources resources,
                                  core::Strategy strategy)
{
    return core::ScheduleRequest{chain, resources, strategy};
}

TEST(CacheKey, DistinguishesEveryRequestField)
{
    const auto chain_a = make_chain({{10, 20, true}, {5, 9, false}});
    const auto chain_b = make_chain({{10, 21, true}, {5, 9, false}});

    const svc::CacheKey base = svc::key_of(request_for(chain_a, {2, 2}, core::Strategy::herad));
    EXPECT_EQ(base, svc::key_of(request_for(chain_a, {2, 2}, core::Strategy::herad)));
    EXPECT_NE(base, svc::key_of(request_for(chain_b, {2, 2}, core::Strategy::herad)));
    EXPECT_NE(base, svc::key_of(request_for(chain_a, {2, 3}, core::Strategy::herad)));
    EXPECT_NE(base, svc::key_of(request_for(chain_a, {3, 2}, core::Strategy::herad)));
    EXPECT_NE(base, svc::key_of(request_for(chain_a, {2, 2}, core::Strategy::fertac)));

    core::ScheduleRequest no_merge = request_for(chain_a, {2, 2}, core::Strategy::herad);
    no_merge.options.merge_stages = false;
    EXPECT_NE(base, svc::key_of(no_merge));

    core::ScheduleRequest energy = request_for(chain_a, {2, 2}, core::Strategy::herad);
    energy.options.objective = core::Objective::min_energy_under_period;
    energy.options.target_period = 25.0;
    EXPECT_NE(base, svc::key_of(energy));
    core::ScheduleRequest other_target = energy;
    other_target.options.target_period = 26.0;
    EXPECT_NE(svc::key_of(energy), svc::key_of(other_target));
    core::ScheduleRequest other_power = energy;
    other_power.options.power.little_watts = 0.5;
    EXPECT_NE(svc::key_of(energy), svc::key_of(other_power));
}

TEST(CacheKey, ChainIdentityIsBothDigestsPlusTaskCount)
{
    // A primary-fingerprint collision alone must not make two keys equal:
    // the key also carries the independent second digest and the task
    // count, so a silent wrong-chain hit needs all three to coincide.
    const auto chain = make_chain({{10, 20, true}, {5, 9, false}});
    const svc::CacheKey base = svc::key_of(request_for(chain, {2, 2}, core::Strategy::herad));
    EXPECT_EQ(base.chain_fingerprint, chain.fingerprint());
    EXPECT_EQ(base.chain_fingerprint2, chain.fingerprint2());
    EXPECT_EQ(base.chain_tasks, chain.size());

    svc::CacheKey fp2_collision = base;
    fp2_collision.chain_fingerprint2 ^= 1;
    EXPECT_NE(base, fp2_collision);

    svc::CacheKey count_collision = base;
    count_collision.chain_tasks += 1;
    EXPECT_NE(base, count_collision);
}

TEST(CacheKey, OptionBitsCoverEveryOption)
{
    core::ScheduleOptions options;
    const auto bits = [](core::ScheduleOptions o) { return o.key_bits(); };
    const std::uint16_t base = bits(options);
    options.merge_stages = false;
    EXPECT_NE(bits(options), base);
    options = {};
    options.prune = false;
    EXPECT_NE(bits(options), base);
    options = {};
    options.fast_u_search = true;
    EXPECT_NE(bits(options), base);
    options = {};
    options.preference = core::FertacPreference::big_first;
    EXPECT_NE(bits(options), base);
    options = {};
    options.objective = core::Objective::min_energy_under_period;
    EXPECT_NE(bits(options), base);
}

TEST(SolutionCache, GetReturnsPutResultWithHitFlag)
{
    svc::SolutionCache cache{8, 2};
    const auto chain = make_chain({{10, 20, true}, {5, 9, false}});
    const auto request = request_for(chain, {2, 2}, core::Strategy::herad);
    const svc::CacheKey key = svc::key_of(request);

    EXPECT_FALSE(cache.get(key).has_value());
    const core::ScheduleResult solved = core::schedule(request);
    cache.put(key, solved);

    const auto cached = cache.get(key);
    ASSERT_TRUE(cached.has_value());
    EXPECT_TRUE(cached->cache_hit);
    EXPECT_EQ(cached->solution, solved.solution);
    EXPECT_EQ(cached->error, solved.error);

    const svc::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(SolutionCache, EvictsLeastRecentlyUsedWithinShard)
{
    // One shard so the LRU order is global and observable.
    svc::SolutionCache cache{2, 1};
    const auto chain = make_chain({{10, 20, true}});
    const auto key_for = [&](int big) {
        return svc::key_of(request_for(chain, {big, 1}, core::Strategy::fertac));
    };
    const core::ScheduleResult result =
        core::schedule(request_for(chain, {1, 1}, core::Strategy::fertac));

    cache.put(key_for(1), result);
    cache.put(key_for(2), result);
    ASSERT_TRUE(cache.get(key_for(1)).has_value()); // 1 becomes most recent
    cache.put(key_for(3), result);                  // evicts 2

    EXPECT_TRUE(cache.get(key_for(1)).has_value());
    EXPECT_FALSE(cache.get(key_for(2)).has_value());
    EXPECT_TRUE(cache.get(key_for(3)).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SolutionCache, ShardCountClampedToCapacity)
{
    // capacity < shards: without clamping, 16 one-entry shards could hold
    // 16 entries, four times the configured budget.
    svc::SolutionCache cache{4, 16};
    const auto chain = make_chain({{10, 20, true}});
    const core::ScheduleResult result =
        core::schedule(request_for(chain, {1, 1}, core::Strategy::fertac));
    for (int big = 1; big <= 32; ++big)
        cache.put(svc::key_of(request_for(chain, {big, 1}, core::Strategy::fertac)), result);
    EXPECT_LE(cache.stats().entries, 4u);
    EXPECT_GT(cache.stats().entries, 0u);
}

TEST(SolutionCache, ZeroCapacityDisablesCaching)
{
    svc::SolutionCache cache{0, 4};
    EXPECT_FALSE(cache.enabled());
    const auto chain = make_chain({{10, 20, true}});
    const auto request = request_for(chain, {1, 1}, core::Strategy::herad);
    cache.put(svc::key_of(request), core::schedule(request));
    EXPECT_FALSE(cache.get(svc::key_of(request)).has_value());
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SolutionCache, ClearEmptiesEveryShard)
{
    svc::SolutionCache cache{16, 4};
    const auto chain = make_chain({{10, 20, true}});
    const core::ScheduleResult result =
        core::schedule(request_for(chain, {1, 1}, core::Strategy::fertac));
    for (int big = 1; big <= 8; ++big)
        cache.put(svc::key_of(request_for(chain, {big, 1}, core::Strategy::fertac)), result);
    EXPECT_GT(cache.stats().entries, 0u);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(
        cache.get(svc::key_of(request_for(chain, {1, 1}, core::Strategy::fertac))).has_value());
}

} // namespace
