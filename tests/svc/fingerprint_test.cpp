#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace amp;
using amp::testing::make_chain;

TEST(ChainFingerprint, IdenticalChainsShareAFingerprint)
{
    const auto a = make_chain({{10, 20, true}, {5, 9, false}});
    const auto b = make_chain({{10, 20, true}, {5, 9, false}});
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), 0u);
    EXPECT_EQ(a.fingerprint2(), b.fingerprint2());
    EXPECT_NE(a.fingerprint2(), 0u);
    // The two digests use unrelated constructions; equal values would mean
    // one of them degenerated.
    EXPECT_NE(a.fingerprint(), a.fingerprint2());
}

TEST(ChainFingerprint, SensitiveToEveryTaskField)
{
    const auto base = make_chain({{10, 20, true}, {5, 9, false}});
    EXPECT_NE(base.fingerprint(), make_chain({{11, 20, true}, {5, 9, false}}).fingerprint());
    EXPECT_NE(base.fingerprint(), make_chain({{10, 21, true}, {5, 9, false}}).fingerprint());
    EXPECT_NE(base.fingerprint(), make_chain({{10, 20, false}, {5, 9, false}}).fingerprint());
    EXPECT_NE(base.fingerprint(), make_chain({{10, 20, true}, {5, 9, true}}).fingerprint());
    EXPECT_NE(base.fingerprint2(), make_chain({{11, 20, true}, {5, 9, false}}).fingerprint2());
    EXPECT_NE(base.fingerprint2(), make_chain({{10, 21, true}, {5, 9, false}}).fingerprint2());
    EXPECT_NE(base.fingerprint2(), make_chain({{10, 20, false}, {5, 9, false}}).fingerprint2());
    EXPECT_NE(base.fingerprint2(), make_chain({{10, 20, true}, {5, 9, true}}).fingerprint2());
}

TEST(ChainFingerprint, SensitiveToEnergyWeights)
{
    // Energy weights change what an energy-objective solve returns, so two
    // chains differing only in them must not share cache identity -- for
    // BOTH digests, like every other task field.
    const core::TaskChain base{{core::TaskDesc{"a", 10, 20, true},
                                core::TaskDesc{"b", 5, 9, false}}};
    const core::TaskChain reweighted{{core::TaskDesc{"a", 10, 20, true, 2.0},
                                      core::TaskDesc{"b", 5, 9, false}}};
    const core::TaskChain reweighted_other{{core::TaskDesc{"a", 10, 20, true},
                                            core::TaskDesc{"b", 5, 9, false, 0.5}}};
    EXPECT_NE(base.fingerprint(), reweighted.fingerprint());
    EXPECT_NE(base.fingerprint2(), reweighted.fingerprint2());
    EXPECT_NE(base.fingerprint(), reweighted_other.fingerprint());
    EXPECT_NE(base.fingerprint2(), reweighted_other.fingerprint2());
    // The default weight (1.0) hashes identically whether spelled or not.
    const core::TaskChain spelled{{core::TaskDesc{"a", 10, 20, true, 1.0},
                                   core::TaskDesc{"b", 5, 9, false, 1.0}}};
    EXPECT_EQ(base.fingerprint(), spelled.fingerprint());
    EXPECT_EQ(base.fingerprint2(), spelled.fingerprint2());
}

TEST(ChainFingerprint, SensitiveToTaskOrderAndCount)
{
    const auto ab = make_chain({{10, 20, true}, {5, 9, false}});
    const auto ba = make_chain({{5, 9, false}, {10, 20, true}});
    EXPECT_NE(ab.fingerprint(), ba.fingerprint());
    const auto abc = make_chain({{10, 20, true}, {5, 9, false}, {1, 2, true}});
    EXPECT_NE(ab.fingerprint(), abc.fingerprint());
}

TEST(ChainFingerprint, IgnoresTaskNames)
{
    // Names are labels, not workload: two chains that differ only in task
    // names describe the same scheduling problem and must share cache
    // entries.
    core::TaskChain named{{core::TaskDesc{"decode", 10, 20, true},
                           core::TaskDesc{"filter", 5, 9, false}}};
    core::TaskChain anonymous{{core::TaskDesc{"", 10, 20, true},
                               core::TaskDesc{"", 5, 9, false}}};
    EXPECT_EQ(named.fingerprint(), anonymous.fingerprint());
}

TEST(ChainFingerprint, NoCollisionsAcrossAGeneratedPopulation)
{
    Rng rng{2025};
    sim::GeneratorConfig config;
    std::set<std::uint64_t> seen;
    std::set<std::uint64_t> seen2;
    constexpr int kChains = 2000;
    for (int i = 0; i < kChains; ++i) {
        config.num_tasks = 2 + i % 40;
        config.stateless_ratio = (i % 5) * 0.25;
        const auto chain = sim::generate_chain(config, rng);
        seen.insert(chain.fingerprint());
        seen2.insert(chain.fingerprint2());
    }
    // 64-bit digests: any collision within a few thousand random chains
    // would signal a broken mixing step, not bad luck.
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kChains));
    EXPECT_EQ(seen2.size(), static_cast<std::size_t>(kChains));
}

} // namespace
