// rt::Autoscaler on a live pipeline: deterministic feed() landing grow and
// shrink as frame-granular in-flight swaps (zero dropped frames), the
// monitor-hook sampler, the arbiter quota opt-in wiring, and a TSan stress
// run racing the autoscaler against an independent swapper, the watchdog
// and segment teardown.

#include "rt/autoscaler.hpp"

#include "plan/execution_plan.hpp"
#include "rt/pipeline.hpp"
#include "svc/solver_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace amp;
using core::CoreType;
using core::Resources;
using core::Stage;
using core::TaskChain;
using core::TaskDesc;
using std::chrono::microseconds;
using std::chrono::milliseconds;

struct Frame {
    std::uint64_t seq = 0;
    int value = 0;
};

rt::TaskSequence<Frame> make_sequence(int n, int sleep_us = 0)
{
    rt::TaskSequence<Frame> seq;
    for (int i = 1; i <= n; ++i)
        seq.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1,
                                           [i, sleep_us](Frame& f) {
                                               if (sleep_us > 0 && i == 1)
                                                   std::this_thread::sleep_for(
                                                       microseconds{sleep_us});
                                               f.value += i;
                                           }));
    return seq;
}

/// All-little chain whose HeRAD optimum keeps one cut across every pool in
/// [(0,2), (0,4)]: [t1]x1L | [t2-t5]x(littles-1)L. Every autoscale delta is
/// therefore resize-only by construction (tests/plan/frame_swap_test.cpp
/// pins the same structure).
TaskChain resize_only_chain()
{
    std::vector<TaskDesc> tasks;
    tasks.push_back(TaskDesc{"t1", 100.0, 90.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    return TaskChain{std::move(tasks)};
}

rt::AutoscalePolicy live_policy()
{
    rt::AutoscalePolicy policy;
    policy.grow_above = 0.85;
    policy.shrink_below = 0.40;
    policy.patience = 2;
    policy.cooldown_ns = 0; // tests drive virtual timestamps explicitly
    policy.min_pool = {0, 2};
    policy.max_pool = {0, 4};
    policy.grow_first = CoreType::little;
    return policy;
}

svc::PlannedSchedule plan_for(svc::SolverService& service, const TaskChain& chain,
                              Resources pool)
{
    const svc::PlannedSchedule planned =
        service.solve_planned(core::ScheduleRequest{chain, pool, core::Strategy::herad});
    EXPECT_TRUE(planned.ok());
    return planned;
}

TEST(Autoscaler, FeedLandsGrowAndShrinkAsInFlightFrameSwaps)
{
    constexpr std::uint64_t kFrames = 400;
    const TaskChain chain = resize_only_chain();
    auto seq = make_sequence(5, /*sleep_us=*/150); // ~60 ms of stream to swap inside
    svc::SolverService service{svc::ServiceConfig{}};

    rt::Pipeline<Frame> pipeline{seq, *plan_for(service, chain, {0, 3}).plan,
                                 rt::PipelineConfig{}};

    rt::AutoscalerConfig config;
    config.policy = live_policy();
    config.service = &service;
    std::vector<Resources> resizes;
    config.on_resize = [&](Resources pool) { resizes.push_back(pool); };
    rt::Autoscaler<Frame> autoscaler{pipeline, chain, {0, 3}, config};

    std::vector<std::uint64_t> delivered;
    rt::RunResult result;
    std::thread runner{[&] {
        result = pipeline.run(kFrames, [&](Frame& f) {
            EXPECT_EQ(f.value, 1 + 2 + 3 + 4 + 5);
            delivered.push_back(f.seq);
        });
    }};

    std::this_thread::sleep_for(milliseconds{10});
    // Two hot windows: patience reached, grow (0,3) -> (0,4) lands live.
    EXPECT_EQ(autoscaler.feed(1.5, 1), rt::ScaleDecision::hold);
    EXPECT_EQ(autoscaler.feed(1.5, 2), rt::ScaleDecision::grow);
    EXPECT_EQ(autoscaler.current(), (Resources{0, 4}));
    EXPECT_EQ(pipeline.live_workers(), 4);

    std::this_thread::sleep_for(milliseconds{10});
    // Two idle windows: shrink back to (0,3).
    EXPECT_EQ(autoscaler.feed(0.1, 3), rt::ScaleDecision::hold);
    EXPECT_EQ(autoscaler.feed(0.1, 4), rt::ScaleDecision::shrink);
    EXPECT_EQ(autoscaler.current(), (Resources{0, 3}));

    runner.join();

    EXPECT_EQ(result.frames, kFrames);
    EXPECT_EQ(result.frames_dropped, 0u) << "autoscale swaps must never drop frames";
    ASSERT_EQ(delivered.size(), kFrames);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i);

    const rt::AutoscalerStats stats = autoscaler.stats();
    EXPECT_EQ(stats.samples, 4u);
    EXPECT_EQ(stats.grows, 1u);
    EXPECT_EQ(stats.shrinks, 1u);
    EXPECT_EQ(stats.frame_swaps, 2u);
    EXPECT_EQ(stats.noop_resizes, 0u) << "both plans differ, so neither resize was a noop";
    EXPECT_GE(stats.warm_solves, 1u) << "re-solves ride the retained frontier";
    ASSERT_EQ(resizes.size(), 2u);
    EXPECT_EQ(resizes[0], (Resources{0, 4}));
    EXPECT_EQ(resizes[1], (Resources{0, 3}));
}

TEST(Autoscaler, ClampsAndStricterSwapPoliciesHoldThePool)
{
    const TaskChain chain = resize_only_chain();
    auto seq = make_sequence(5);
    svc::SolverService service{svc::ServiceConfig{}};
    rt::Pipeline<Frame> pipeline{seq, *plan_for(service, chain, {0, 4}).plan,
                                 rt::PipelineConfig{}};

    rt::AutoscalerConfig config;
    config.policy = live_policy();
    config.service = &service;
    rt::Autoscaler<Frame> autoscaler{pipeline, chain, {0, 4}, config};

    // Already at max_pool: the grow decision is absorbed by the clamp.
    EXPECT_EQ(autoscaler.feed(2.0, 1), rt::ScaleDecision::hold);
    EXPECT_EQ(autoscaler.feed(2.0, 2), rt::ScaleDecision::hold);
    EXPECT_EQ(autoscaler.current(), (Resources{0, 4}));
    EXPECT_EQ(autoscaler.stats().clamped, 1u);

    // A non-frame_first policy declines live landings (counted, no mutation).
    rt::AutoscalerConfig strict = config;
    strict.swap = rt::SwapPolicy::delta;
    rt::Autoscaler<Frame> declined{pipeline, chain, {0, 4}, strict};
    EXPECT_EQ(declined.feed(0.1, 1), rt::ScaleDecision::hold);
    EXPECT_EQ(declined.feed(0.1, 2), rt::ScaleDecision::hold);
    EXPECT_EQ(declined.current(), (Resources{0, 4}));
    EXPECT_EQ(declined.stats().declined, 1u);
}

TEST(Autoscaler, MonitorHookSamplesUtilizationFromTheWatchdog)
{
    constexpr std::uint64_t kFrames = 200;
    const TaskChain chain = resize_only_chain();
    auto seq = make_sequence(5, /*sleep_us=*/100);
    svc::SolverService service{svc::ServiceConfig{}};

    rt::PipelineConfig pipeline_config;
    pipeline_config.overload.enabled = true;
    pipeline_config.overload.poll = milliseconds{2};
    rt::Pipeline<Frame> pipeline{seq, *plan_for(service, chain, {0, 3}).plan, pipeline_config};

    rt::AutoscalerConfig config;
    config.policy = live_policy();
    // A generous patience keeps the wall-clock-driven sampler from actually
    // resizing: this test pins only the sampling wire-up.
    config.policy.patience = 1'000'000;
    config.service = &service;
    rt::Autoscaler<Frame> autoscaler{pipeline, chain, {0, 3}, config};
    autoscaler.attach();

    const rt::RunResult result = pipeline.run(kFrames, [](Frame&) {});
    autoscaler.detach();

    EXPECT_EQ(result.frames, kFrames);
    EXPECT_GT(autoscaler.stats().samples, 0u)
        << "the overload monitor must feed utilization windows";
    EXPECT_EQ(autoscaler.current(), (Resources{0, 3}));
}

// TSan stress: the autoscaler's watchdog-thread feed path racing an
// independent in-flight swapper (the shape of a concurrent recovery swap),
// the stream's workers and segment teardown. Ordered delivery and a zero
// drop count prove the swap serialization holds under contention.
TEST(Autoscaler, StressSurvivesRacingSwapsAndTeardown)
{
    constexpr std::uint64_t kFrames = 1200;
    const TaskChain chain = resize_only_chain();
    auto seq = make_sequence(5, /*sleep_us=*/50);
    svc::SolverService service{svc::ServiceConfig{}};

    rt::Pipeline<Frame> pipeline{seq, *plan_for(service, chain, {0, 3}).plan,
                                 rt::PipelineConfig{}};

    rt::AutoscalerConfig config;
    config.policy = live_policy();
    config.policy.patience = 1;
    config.service = &service;
    rt::Autoscaler<Frame> autoscaler{pipeline, chain, {0, 3}, config};

    std::atomic<bool> done{false};
    std::thread feeder{[&] {
        std::int64_t tick = 1;
        bool hot = true;
        while (!done.load()) {
            // Alternate saturated and idle windows: every feed decides.
            (void)autoscaler.feed(hot ? 2.0 : 0.05, tick++);
            hot = !hot;
            std::this_thread::sleep_for(milliseconds{2});
        }
    }};
    std::thread swapper{[&] {
        // A second actor (recovery-shaped) swapping the SAME pipeline:
        // resize stage 1 between 2 and 3 replicas underneath the autoscaler.
        const svc::PlannedSchedule small = plan_for(service, chain, {0, 3});
        const svc::PlannedSchedule big = plan_for(service, chain, {0, 4});
        bool use_big = true;
        while (!done.load()) {
            const plan::ExecutionPlan& next = use_big ? *big.plan : *small.plan;
            (void)pipeline.try_apply_delta_in_flight(
                plan::diff(pipeline.execution_plan(), next));
            use_big = !use_big;
            std::this_thread::sleep_for(milliseconds{3});
        }
    }};

    std::vector<std::uint64_t> delivered;
    const rt::RunResult result = pipeline.run(kFrames, [&](Frame& f) {
        delivered.push_back(f.seq);
    });
    done.store(true);
    feeder.join();
    swapper.join();

    EXPECT_EQ(result.frames, kFrames);
    EXPECT_EQ(result.frames_dropped, 0u);
    ASSERT_EQ(delivered.size(), kFrames);
    for (std::size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], i);
    EXPECT_GT(autoscaler.stats().samples, 0u);
}

} // namespace
