// Warm-start equivalence sweep (ISSUE 8, satellite 4): the incremental
// HeRAD fast path must be BIT-identical to a cold solve -- same period, same
// stage list, same tie-breaks -- for random chains under every resize delta,
// and the WarmStart hint must be a pure accelerator for every strategy (it
// never changes what any of the five computes, only how fast HeRAD does).

#include "core/herad.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "svc/solver_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

namespace {

using namespace amp::core;
namespace sim = amp::sim;
namespace svc = amp::svc;

constexpr Strategy kAllStrategies[] = {Strategy::herad, Strategy::twocatac, Strategy::fertac,
                                       Strategy::otac_big, Strategy::otac_little};

TaskChain random_chain(int n, std::uint64_t seed)
{
    sim::GeneratorConfig config;
    config.num_tasks = n;
    amp::Rng rng{seed};
    return sim::generate_chain(config, rng);
}

/// Cold reference at `target` vs warm re-solve from a frontier computed at
/// `base`, for one chain and option set. Returns the warm result for
/// further chaining.
ScheduleResult expect_warm_equals_cold(const TaskChain& chain, Resources base, Resources target,
                                       ScheduleOptions options = {})
{
    ScheduleRequest seed_request{chain, base, Strategy::herad, options};
    seed_request.warm.keep_frontier = true;
    const ScheduleResult seeded = schedule(seed_request);
    EXPECT_TRUE(seeded.ok());
    EXPECT_NE(seeded.frontier, nullptr) << "keep_frontier must retain a frontier";
    EXPECT_FALSE(seeded.warm_start) << "nothing to reuse on the first solve";

    ScheduleRequest warm_request{chain, target, Strategy::herad, options};
    warm_request.warm.frontier = seeded.frontier;
    const ScheduleResult warm = schedule(warm_request);

    const ScheduleResult cold = schedule(ScheduleRequest{chain, target, Strategy::herad, options});
    EXPECT_EQ(warm.error, cold.error);
    EXPECT_EQ(warm.solution, cold.solution)
        << "warm re-solve " << base.big << "/" << base.little << " -> " << target.big << "/"
        << target.little << " diverged from the cold solve";
    if (warm.ok()) {
        EXPECT_TRUE(warm.warm_start) << "a matching frontier must take the incremental path";
        EXPECT_NE(warm.frontier, nullptr);
    }
    return warm;
}

TEST(WarmStart, ResizeSweepIsBitIdenticalToCold)
{
    // Random chains x both axes x grow and shrink deltas, including the
    // corners (to/from one core) and diagonal moves.
    const int sizes[] = {4, 9, 16, 24};
    const Resources bases[] = {{2, 2}, {3, 1}, {1, 4}, {4, 4}};
    std::uint64_t seed = 1;
    for (const int n : sizes) {
        const TaskChain chain = random_chain(n, 0xA5CA1E + seed++);
        for (const Resources base : bases) {
            for (const int db : {-2, -1, 0, 1, 2}) {
                for (const int dl : {-2, -1, 0, 1, 2}) {
                    const Resources target{base.big + db, base.little + dl};
                    if (target.big < 0 || target.little < 0 || target.total() < 1)
                        continue;
                    expect_warm_equals_cold(chain, base, target);
                }
            }
        }
    }
}

TEST(WarmStart, SweepHoldsUnderEveryHeradOptionSet)
{
    const TaskChain chain = random_chain(12, 0xBEE);
    for (const bool prune : {false, true}) {
        for (const bool fast_u : {false, true}) {
            for (const bool merge : {false, true}) {
                ScheduleOptions options;
                options.prune = prune;
                options.fast_u_search = fast_u;
                options.merge_stages = merge;
                expect_warm_equals_cold(chain, {2, 3}, {3, 4}, options);
                expect_warm_equals_cold(chain, {3, 4}, {1, 2}, options);
            }
        }
    }
}

TEST(WarmStart, FrontierChainsAcrossManyResizeSteps)
{
    // A control loop holds ONE frontier and threads it through every
    // re-solve; each step must stay cold-identical and keep upgrading the
    // frontier (growing it on extension, never invalidating it on shrink).
    const TaskChain chain = random_chain(10, 0xC0FFEE);
    const Resources walk[] = {{2, 2}, {2, 3}, {3, 3}, {2, 2}, {1, 1}, {4, 5}, {4, 4}};

    ScheduleRequest request{chain, walk[0], Strategy::herad};
    request.warm.keep_frontier = true;
    ScheduleResult held = schedule(request);
    ASSERT_TRUE(held.ok());
    ASSERT_NE(held.frontier, nullptr);

    for (std::size_t i = 1; i < std::size(walk); ++i) {
        ScheduleRequest step{chain, walk[i], Strategy::herad};
        step.warm.frontier = held.frontier;
        const ScheduleResult warm = schedule(step);
        const Solution cold = schedule(Strategy::herad, chain, walk[i]);
        ASSERT_TRUE(warm.ok());
        EXPECT_TRUE(warm.warm_start) << "step " << i;
        EXPECT_EQ(warm.solution, cold) << "step " << i;
        ASSERT_NE(warm.frontier, nullptr) << "step " << i;
        held = warm;
    }
}

TEST(WarmStart, HintIsIgnoredTransparentlyByEveryStrategy)
{
    // The hint is an accelerator, never an input: with or without it, every
    // strategy returns the same solution. Non-HeRAD strategies carry no
    // frontier and never report warm_start.
    const TaskChain chain = random_chain(8, 0xD1CE);
    const Resources base{2, 2};
    const Resources target{2, 3};

    ScheduleRequest seed_request{chain, base, Strategy::herad};
    seed_request.warm.keep_frontier = true;
    const auto frontier = schedule(seed_request).frontier;
    ASSERT_NE(frontier, nullptr);

    for (const Strategy strategy : kAllStrategies) {
        ScheduleRequest hinted{chain, target, strategy};
        hinted.warm.frontier = frontier;
        const ScheduleResult with_hint = schedule(hinted);
        const ScheduleResult without = schedule(ScheduleRequest{chain, target, strategy});
        EXPECT_EQ(with_hint.solution, without.solution) << to_key(strategy);
        if (strategy != Strategy::herad) {
            EXPECT_EQ(with_hint.frontier, nullptr) << to_key(strategy);
            EXPECT_FALSE(with_hint.warm_start) << to_key(strategy);
        }
    }
}

TEST(WarmStart, MismatchedFrontierFallsBackToColdWithFreshFrontier)
{
    const TaskChain chain_a = random_chain(8, 1);
    const TaskChain chain_b = random_chain(8, 2);

    ScheduleRequest seed_request{chain_a, {2, 2}, Strategy::herad};
    seed_request.warm.keep_frontier = true;
    const auto stale = schedule(seed_request).frontier;
    ASSERT_NE(stale, nullptr);
    EXPECT_TRUE(stale->matches(chain_a, {}));
    EXPECT_FALSE(stale->matches(chain_b, {}));

    // Different chain: cold fallback, same answer as an unhinted solve,
    // and a FRESH frontier so the loop re-arms for the new chain.
    ScheduleRequest hinted{chain_b, {2, 3}, Strategy::herad};
    hinted.warm.frontier = stale;
    const ScheduleResult fallback = schedule(hinted);
    ASSERT_TRUE(fallback.ok());
    EXPECT_FALSE(fallback.warm_start);
    EXPECT_EQ(fallback.solution, schedule(Strategy::herad, chain_b, {2, 3}));
    ASSERT_NE(fallback.frontier, nullptr);
    EXPECT_TRUE(fallback.frontier->matches(chain_b, {}));

    // Different HeRAD options (fast_u_search changes tie-breaking, so the
    // matrices are not interchangeable): also a cold fallback.
    ScheduleOptions fast;
    fast.fast_u_search = true;
    ScheduleRequest options_mismatch{chain_a, {2, 3}, Strategy::herad, fast};
    options_mismatch.warm.frontier = stale;
    const ScheduleResult refit = schedule(options_mismatch);
    ASSERT_TRUE(refit.ok());
    EXPECT_FALSE(refit.warm_start);
    EXPECT_EQ(refit.solution, schedule(ScheduleRequest{chain_a, {2, 3}, Strategy::herad, fast})
                                  .solution);
}

TEST(WarmStart, DetailWarmSolveRejectsAMismatchedBaseLoudly)
{
    // schedule() falls back silently; the detail API (which skips the
    // applicability check by contract) must refuse instead of extending a
    // foreign matrix.
    const TaskChain chain_a = random_chain(6, 3);
    const TaskChain chain_b = random_chain(6, 4);
    const WarmSolveResult seeded = detail::herad_with_frontier(chain_a, {2, 2});
    ASSERT_NE(seeded.frontier, nullptr);
    EXPECT_THROW((void)detail::herad_warm(chain_b, {2, 3}, seeded.frontier),
                 std::invalid_argument);
}

TEST(WarmStart, FrontierReportsItsComputedBox)
{
    const TaskChain chain = random_chain(6, 5);
    const WarmSolveResult seeded = detail::herad_with_frontier(chain, {2, 3});
    ASSERT_NE(seeded.frontier, nullptr);
    EXPECT_EQ(seeded.frontier->tasks(), chain.size());
    EXPECT_EQ(seeded.frontier->computed(), (Resources{2, 3}));
    EXPECT_GT(seeded.frontier->bytes(), 0u);

    // A grow extends the computed box; a shrink keeps the wider one.
    const WarmSolveResult grown = detail::herad_warm(chain, {4, 3}, seeded.frontier);
    EXPECT_TRUE(grown.incremental);
    ASSERT_NE(grown.frontier, nullptr);
    EXPECT_EQ(grown.frontier->computed(), (Resources{4, 3}));
    const WarmSolveResult shrunk = detail::herad_warm(chain, {1, 1}, grown.frontier);
    EXPECT_TRUE(shrunk.incremental);
    ASSERT_NE(shrunk.frontier, nullptr);
    EXPECT_EQ(shrunk.frontier->computed(), (Resources{4, 3}))
        << "backwalk extraction reuses the wider matrix as-is";
}

TEST(WarmStart, ServiceStripsFrontiersFromCachedCopies)
{
    // The svc cache stores solutions, never DP matrices: the first solve
    // (with an engaged hint) returns a frontier, the cache hit for the same
    // key returns none -- callers keep the frontier they already hold.
    svc::SolverService service{svc::ServiceConfig{}}; // workers = 0: inline solves
    const TaskChain chain = random_chain(8, 6);

    ScheduleRequest request{chain, {2, 2}, Strategy::herad};
    request.warm.keep_frontier = true;
    const ScheduleResult first = service.solve(request);
    ASSERT_TRUE(first.ok());
    EXPECT_FALSE(first.cache_hit);
    ASSERT_NE(first.frontier, nullptr);

    const ScheduleResult hit = service.solve(request);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.frontier, nullptr) << "cached copies are frontier-stripped";
    EXPECT_EQ(hit.solution, first.solution);

    // The hint is not part of the cache identity: an unhinted request for
    // the same chain/pool/options hits the same entry.
    const ScheduleResult unhinted = service.solve(ScheduleRequest{chain, {2, 2}, Strategy::herad});
    EXPECT_TRUE(unhinted.cache_hit);
    EXPECT_EQ(unhinted.solution, first.solution);

    // And the held frontier still warm-starts a resize through the service.
    ScheduleRequest resize{chain, {3, 2}, Strategy::herad};
    resize.warm.frontier = first.frontier;
    const ScheduleResult warm = service.solve(resize);
    ASSERT_TRUE(warm.ok());
    EXPECT_FALSE(warm.cache_hit);
    EXPECT_TRUE(warm.warm_start);
    EXPECT_EQ(warm.solution, schedule(Strategy::herad, chain, {3, 2}));
}

TEST(WarmStart, ErrorResultsCarryNoFrontier)
{
    const TaskChain chain = random_chain(6, 7);
    ScheduleRequest seed_request{chain, {2, 2}, Strategy::herad};
    seed_request.warm.keep_frontier = true;
    const auto frontier = schedule(seed_request).frontier;
    ASSERT_NE(frontier, nullptr);

    ScheduleRequest bad{chain, {0, 0}, Strategy::herad};
    bad.warm.frontier = frontier;
    const ScheduleResult failed = schedule(bad);
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.frontier, nullptr);
    EXPECT_FALSE(failed.warm_start);
}

} // namespace
