// rt::AutoscaleController unit coverage (pure decision logic) plus the
// dsim::simulate_autoscale replay: determinism, step/sine load tracking,
// no flapping within the cooldown, and the arbiter quota opt-in.

#include "arb/arbiter.hpp"
#include "dsim/simulator.hpp"
#include "rt/autoscaler.hpp"
#include "sim/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace amp::rt;
using amp::core::CoreType;
using amp::core::Resources;
using amp::core::TaskChain;
using amp::core::TaskDesc;
namespace arb = amp::arb;
namespace dsim = amp::dsim;
namespace sim = amp::sim;

AutoscalePolicy test_policy()
{
    AutoscalePolicy policy;
    policy.grow_above = 0.85;
    policy.shrink_below = 0.40;
    policy.patience = 3;
    policy.cooldown_ns = 1'000;
    policy.min_pool = {0, 1};
    policy.max_pool = {4, 4};
    return policy;
}

TEST(AutoscaleController, InBandUtilizationNeverActs)
{
    AutoscaleController controller{test_policy()};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(controller.observe(0.65, i * 10'000), ScaleDecision::hold);
}

TEST(AutoscaleController, PatienceDebouncesTransientSpikes)
{
    AutoscaleController controller{test_policy()};
    // Two hot windows, then one in-band: the streak resets, so a third hot
    // window later starts over instead of firing.
    EXPECT_EQ(controller.observe(0.95, 0), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 1), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.60, 2), ScaleDecision::hold);
    EXPECT_EQ(controller.grow_streak(), 0);
    EXPECT_EQ(controller.observe(0.95, 3), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 4), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 5), ScaleDecision::grow)
        << "the third consecutive hot window fires";
    EXPECT_EQ(controller.grow_streak(), 0) << "firing consumes the streak";
}

TEST(AutoscaleController, OppositeSignalResetsTheOtherStreak)
{
    AutoscaleController controller{test_policy()};
    EXPECT_EQ(controller.observe(0.95, 0), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 1), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.10, 2), ScaleDecision::hold);
    EXPECT_EQ(controller.grow_streak(), 0);
    EXPECT_EQ(controller.shrink_streak(), 1);
}

TEST(AutoscaleController, CooldownGatesButStreaksKeepAccumulating)
{
    AutoscalePolicy policy = test_policy();
    policy.cooldown_ns = 100;
    AutoscaleController controller{policy};
    EXPECT_EQ(controller.observe(0.95, 0), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 10), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 20), ScaleDecision::grow);
    // Still hot inside the cooldown: gated, but the streak accumulates...
    EXPECT_EQ(controller.observe(0.95, 40), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 60), ScaleDecision::hold);
    EXPECT_EQ(controller.observe(0.95, 80), ScaleDecision::hold);
    // ...so the FIRST window past the cooldown acts (no re-debounce).
    EXPECT_EQ(controller.observe(0.95, 121), ScaleDecision::grow);
}

TEST(AutoscaleController, SteppedGrowsPreferredTypeFirstThenSpills)
{
    AutoscalePolicy policy = test_policy();
    policy.grow_first = CoreType::little;
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 2}, ScaleDecision::grow),
              (Resources{2, 3}));
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 4}, ScaleDecision::grow),
              (Resources{3, 4}))
        << "littles at max: spill to big";
    EXPECT_EQ(AutoscaleController::stepped(policy, {4, 4}, ScaleDecision::grow), std::nullopt)
        << "both at max: clamped";
}

TEST(AutoscaleController, SteppedShrinksInReverseOrderAndRespectsFloors)
{
    AutoscalePolicy policy = test_policy();
    policy.grow_first = CoreType::little; // shrink frees big first
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 2}, ScaleDecision::shrink),
              (Resources{1, 2}));
    EXPECT_EQ(AutoscaleController::stepped(policy, {0, 2}, ScaleDecision::shrink),
              (Resources{0, 1}));
    EXPECT_EQ(AutoscaleController::stepped(policy, {0, 1}, ScaleDecision::shrink), std::nullopt)
        << "at the floor: clamped";
    // The floor can never strand an empty machine even when min_pool is 0/0.
    policy.min_pool = {0, 0};
    EXPECT_EQ(AutoscaleController::stepped(policy, {1, 0}, ScaleDecision::shrink), std::nullopt)
        << "the last core never shrinks away";
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 2}, ScaleDecision::hold), std::nullopt);
}

TEST(AutoscaleController, ShrinkCandidatesKeepLegacyOrderByDefault)
{
    AutoscalePolicy policy = test_policy();
    policy.grow_first = CoreType::little; // legacy shrink frees big first
    const auto candidates = AutoscaleController::shrink_candidates(policy, {2, 2});
    ASSERT_EQ(candidates.count, 2);
    EXPECT_EQ(candidates.target[0], (Resources{1, 2}));
    EXPECT_EQ(candidates.target[1], (Resources{2, 1}));
    // stepped() is the first candidate, so the legacy behavior is unchanged.
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 2}, ScaleDecision::shrink),
              (Resources{1, 2}));
    // One-axis slack: a single candidate; at the floor: none.
    const auto only_little = AutoscaleController::shrink_candidates(policy, {0, 2});
    ASSERT_EQ(only_little.count, 1);
    EXPECT_EQ(only_little.target[0], (Resources{0, 1}));
    EXPECT_EQ(AutoscaleController::shrink_candidates(policy, {0, 1}).count, 0);
}

TEST(AutoscaleController, ShrinkCheapestFirstOrdersByResultingPower)
{
    AutoscalePolicy policy = test_policy();
    policy.shrink_cheapest_first = true;
    policy.power = amp::core::PowerModel{4.0, 1.0, 0.1};
    // grow_first = big makes the legacy order free LITTLE first; the energy
    // ordering must override it and free the expensive big core first
    // ({1, 2} costs 6W, {2, 1} costs 9W).
    policy.grow_first = CoreType::big;
    const auto candidates = AutoscaleController::shrink_candidates(policy, {2, 2});
    ASSERT_EQ(candidates.count, 2);
    EXPECT_EQ(candidates.target[0], (Resources{1, 2}));
    EXPECT_EQ(candidates.target[1], (Resources{2, 1}));
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 2}, ScaleDecision::shrink),
              (Resources{1, 2}));
    // A uniform power model ties both candidates: legacy order is kept, so
    // enabling the flag alone is behavior-neutral.
    policy.power = amp::core::PowerModel{1.0, 1.0, 0.1};
    const auto tied = AutoscaleController::shrink_candidates(policy, {2, 2});
    ASSERT_EQ(tied.count, 2);
    EXPECT_EQ(tied.target[0], (Resources{2, 1})) << "legacy order: free little first";
}

TEST(AutoscaleController, StepLargerThanOneMovesMultipleCores)
{
    AutoscalePolicy policy = test_policy();
    policy.step = 2;
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 2}, ScaleDecision::grow),
              (Resources{2, 4}));
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 3}, ScaleDecision::grow),
              (Resources{2, 4}))
        << "a partial step up to the clamp still counts";
    EXPECT_EQ(AutoscaleController::stepped(policy, {2, 2}, ScaleDecision::shrink),
              (Resources{0, 2}));
}

// ---------------------------------------------------------------------------
// dsim replay

dsim::AutoscaleScenario step_scenario()
{
    dsim::AutoscaleScenario scenario;
    sim::GeneratorConfig config;
    config.num_tasks = 12;
    amp::Rng rng{0x5CA1E};
    scenario.chain = sim::generate_chain(config, rng);
    scenario.initial = {1, 2};
    scenario.policy = test_policy();
    scenario.policy.cooldown_ns = 50'000'000; // 50 ms virtual
    // Step profile: idle, a hard step to ~3x the initial capacity, idle.
    const double base_fps = 1e6 / amp::core::schedule(amp::core::Strategy::herad, scenario.chain,
                                                      scenario.initial)
                                      .period(scenario.chain);
    scenario.load = {{0, 0.3 * base_fps}, {300'000, 3.0 * base_fps}, {700'000, 0.2 * base_fps}};
    scenario.horizon_us = 1'000'000;
    scenario.sample_period_us = 5'000;
    return scenario;
}

TEST(AutoscaleSim, StepLoadGrowsThenShrinksWithoutFlapping)
{
    const dsim::AutoscaleSimResult result = dsim::simulate_autoscale(step_scenario());
    EXPECT_GT(result.grows, 0u) << "the 3x step must trigger growth";
    EXPECT_GT(result.shrinks, 0u) << "the trailing idle must hand cores back";
    EXPECT_GE(result.min_action_gap_us, 50'000)
        << "two actions within the cooldown = flapping";
    EXPECT_GT(result.samples, 0u);
    // Every re-solve after the first rides the retained frontier.
    EXPECT_GT(result.warm_fraction, 0.9);
    for (const auto& event : result.events)
        EXPECT_EQ(event.after.total() >= 1, true);
}

TEST(AutoscaleSim, CheapestFirstShrinkFreesBigCores)
{
    // Same idle tail, two replays: legacy shrink order vs energy-aware.
    // With grow_first = big the legacy policy frees littles first on the
    // trailing idle; the energy-aware one must free bigs first and end the
    // run on a cheaper allocation (never a more expensive one).
    dsim::AutoscaleScenario legacy = step_scenario();
    legacy.initial = {2, 2};
    legacy.policy.grow_first = CoreType::big;
    dsim::AutoscaleScenario cheapest = legacy;
    cheapest.policy.shrink_cheapest_first = true;
    cheapest.policy.power = amp::core::PowerModel{4.0, 1.0, 0.1};
    cheapest.power = cheapest.policy.power;

    const dsim::AutoscaleSimResult a = dsim::simulate_autoscale(legacy);
    const dsim::AutoscaleSimResult b = dsim::simulate_autoscale(cheapest);
    ASSERT_GT(b.shrinks, 0u);
    const auto watts = [](Resources r) { return 4.0 * r.big + 1.0 * r.little; };
    EXPECT_LE(watts(b.final_pool), watts(a.final_pool))
        << "energy-aware shrink must not end on a costlier pool";
    // The replay records the energy of every adopted schedule.
    bool saw_energy = false;
    for (const auto& event : b.events)
        if (event.energy_per_item > 0.0)
            saw_energy = true;
    EXPECT_TRUE(saw_energy);
}

TEST(AutoscaleSim, SineLoadTracksWithBoundedError)
{
    dsim::AutoscaleScenario scenario = step_scenario();
    scenario.load.clear();
    const double base_fps = 1e6 / amp::core::schedule(amp::core::Strategy::herad, scenario.chain,
                                                      scenario.initial)
                                      .period(scenario.chain);
    for (int i = 0; i < 100; ++i) {
        const double phase = 2.0 * 3.14159265358979 * static_cast<double>(i) / 100.0;
        scenario.load.push_back(
            {i * 10'000, base_fps * (1.2 + 1.0 * std::sin(phase))});
    }
    const dsim::AutoscaleSimResult result = dsim::simulate_autoscale(scenario);
    EXPECT_GT(result.grows + result.shrinks, 0u);
    EXPECT_GE(result.min_action_gap_us, 50'000);
    EXPECT_LT(result.mean_tracking_error, 1.0)
        << "tracking error must stay bounded while the pool follows the sine";
}

TEST(AutoscaleSim, ReplaysAreDeterministic)
{
    const dsim::AutoscaleSimResult a = dsim::simulate_autoscale(step_scenario());
    const dsim::AutoscaleSimResult b = dsim::simulate_autoscale(step_scenario());
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i)
        EXPECT_EQ(a.events[i], b.events[i]) << "event " << i;
    EXPECT_EQ(a.final_pool, b.final_pool);
    EXPECT_EQ(a.grows, b.grows);
    EXPECT_EQ(a.shrinks, b.shrinks);
}

TEST(AutoscaleSim, RejectsMalformedScenarios)
{
    dsim::AutoscaleScenario scenario = step_scenario();
    scenario.load.clear();
    EXPECT_THROW((void)dsim::simulate_autoscale(scenario), std::invalid_argument);
    scenario = step_scenario();
    std::swap(scenario.load.front(), scenario.load.back());
    EXPECT_THROW((void)dsim::simulate_autoscale(scenario), std::invalid_argument);
    scenario = step_scenario();
    scenario.sample_period_us = 0;
    EXPECT_THROW((void)dsim::simulate_autoscale(scenario), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Arbiter quota opt-in

TEST(ArbiterQuota, SetQuotaMarksDirtyAndRedistributes)
{
    std::vector<TaskDesc> tasks;
    for (int i = 1; i <= 4; ++i)
        tasks.push_back(TaskDesc{"t" + std::to_string(i), 10.0, 20.0, i != 1});
    const TaskChain chain{std::move(tasks)};

    arb::ArbiterConfig config;
    config.pool = {2, 4};
    arb::Arbiter arbiter{config};
    arb::TenantSpec spec_a;
    spec_a.name = "a";
    spec_a.chain = chain;
    arb::TenantSpec spec_b = spec_a;
    spec_b.name = "b";
    const arb::TenantId a = arbiter.add_tenant(spec_a);
    const arb::TenantId b = arbiter.add_tenant(spec_b);
    (void)arbiter.rearbitrate();
    const auto budget_of = [&](arb::TenantId id) {
        for (const auto& status : arbiter.tenants())
            if (status.id == id)
                return status.budget;
        return Resources{};
    };
    const Resources b_before = budget_of(b);

    // Capping tenant A at one little (the autoscaler's shrink opt-in path)
    // must pull A inside the cap at the next rearbitration, and the freed
    // cores can only help B.
    arbiter.set_quota(a, arb::TenantQuota{{0, 0}, {0, 1}});
    const arb::ArbitrationReport report = arbiter.rearbitrate();
    EXPECT_FALSE(report.changes.empty()) << "the quota change must re-allocate";
    const Resources budget_a = budget_of(a);
    const Resources budget_b = budget_of(b);
    EXPECT_LE(budget_a.big, 0);
    EXPECT_LE(budget_a.little, 1);
    // The freed cores are B's to claim; how many it takes is the water
    // filler's improvement call, so only assert B was re-evaluated.
    EXPECT_GE(budget_b.total() + b_before.total(), 1);

    // An idempotent set_quota keeps the allocation quiescent.
    arbiter.set_quota(a, arb::TenantQuota{{0, 0}, {0, 1}});

    EXPECT_THROW(arbiter.set_quota(9999, arb::TenantQuota{}), std::out_of_range);
    EXPECT_THROW(arbiter.set_quota(a, arb::TenantQuota{{-1, 0}, {1, 1}}),
                 std::invalid_argument);
}

} // namespace
