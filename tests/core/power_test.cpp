#include "core/power.hpp"

#include "core/herad.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::solve;
using amp::testing::solve_result;
using amp::testing::uniform_chain;

TEST(Power, SolutionPowerCountsUsedCores)
{
    const Solution sol{{Stage{1, 2, 2, CoreType::big}, Stage{3, 4, 3, CoreType::little}}};
    const PowerModel model{4.0, 1.0, 0.1};
    EXPECT_DOUBLE_EQ(solution_power(sol, model), 2 * 4.0 + 3 * 1.0);
}

TEST(Power, PlatformPowerAddsIdleCores)
{
    const Solution sol{{Stage{1, 2, 1, CoreType::big}}};
    const PowerModel model{4.0, 1.0, 0.5};
    EXPECT_DOUBLE_EQ(platform_power(sol, {4, 4}, model), 4.0 + 7 * 0.5);
}

TEST(Power, EnergyPerItemCombinesPowerAndPeriod)
{
    const auto chain = uniform_chain(2, 10.0, false);
    const Solution sol{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    const PowerModel model{2.0, 1.0, 0.0};
    // period 10, power 4 -> 40 watt-us per item.
    EXPECT_DOUBLE_EQ(energy_per_item(chain, sol, model), 40.0);
}

TEST(Power, LittleCoresReduceEnergyOnTies)
{
    // Two schedules with equal period: all-big vs all-little. The power
    // model must rank the little one cheaper -- the paper's motivation for
    // the secondary objective.
    const auto chain = make_chain({{10, 10, false}, {10, 10, false}});
    const Solution big{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    const Solution little{{Stage{1, 1, 1, CoreType::little}, Stage{2, 2, 1, CoreType::little}}};
    const PowerModel model{};
    EXPECT_EQ(big.period(chain), little.period(chain));
    EXPECT_LT(energy_per_item(chain, little, model), energy_per_item(chain, big, model));
    // And HeRAD indeed picks the little-core schedule.
    const Solution herad_sol = solve(Strategy::herad, chain, {2, 2});
    EXPECT_DOUBLE_EQ(energy_per_item(chain, herad_sol, model),
                     energy_per_item(chain, little, model));
}

TEST(Power, EnergyPerItemOfEmptySolutionIsZero)
{
    const auto chain = uniform_chain(2, 10.0, false);
    EXPECT_DOUBLE_EQ(energy_per_item(chain, Solution{}, PowerModel{}), 0.0);
}

TEST(Power, EnergyPerItemIsReplicationInvariant)
{
    // Each stream item is processed exactly once regardless of the replica
    // count, so replicating an all-replicable chain changes throughput but
    // not active energy per item.
    const auto chain = uniform_chain(3, 12.0, true);
    const PowerModel model{4.0, 1.0, 0.1};
    const Solution narrow{{Stage{1, 3, 1, CoreType::big}}};
    const Solution wide{{Stage{1, 3, 3, CoreType::big}}};
    EXPECT_LT(wide.period(chain), narrow.period(chain));
    EXPECT_DOUBLE_EQ(energy_per_item(chain, narrow, model),
                     energy_per_item(chain, wide, model));
}

TEST(Power, EnergyPerItemOnSingleStage)
{
    const auto chain = make_chain({{10, 30, true}});
    const PowerModel model{4.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(energy_per_item(chain, Solution{{Stage{1, 1, 1, CoreType::big}}}, model),
                     4.0 * 10.0);
    EXPECT_DOUBLE_EQ(
        energy_per_item(chain, Solution{{Stage{1, 1, 1, CoreType::little}}}, model),
        1.0 * 30.0);
}

TEST(Power, EnergyPerItemScalesWithTaskEnergyWeights)
{
    // A task with energy weight 3 charges 3x the energy of its unit-weight
    // twin, while periods (and hence schedules) are untouched.
    const TaskChain plain{{TaskDesc{"a", 10, 20, false}, TaskDesc{"b", 5, 9, false}}};
    const TaskChain weighted{{TaskDesc{"a", 10, 20, false, 3.0}, TaskDesc{"b", 5, 9, false}}};
    const Solution sol{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::little}}};
    const PowerModel model{2.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(sol.period(plain), sol.period(weighted));
    EXPECT_DOUBLE_EQ(energy_per_item(plain, sol, model), 2.0 * 10.0 + 1.0 * 9.0);
    EXPECT_DOUBLE_EQ(energy_per_item(weighted, sol, model), 2.0 * 3.0 * 10.0 + 1.0 * 9.0);
}

TEST(Power, TaskEnergyWeightsMustBeStrictlyPositive)
{
    EXPECT_THROW((TaskChain{{TaskDesc{"a", 10, 20, false, 0.0}}}), std::invalid_argument);
    EXPECT_THROW((TaskChain{{TaskDesc{"a", 10, 20, false, -1.0}}}), std::invalid_argument);
}

TEST(Power, PlatformPowerRejectsBudgetOveruse)
{
    // Using more cores than the machine has used to clamp idle draw to zero
    // silently; it is now an explicit error.
    const Solution sol{{Stage{1, 2, 3, CoreType::big}}};
    EXPECT_THROW((void)platform_power(sol, {2, 4}, PowerModel{}), std::invalid_argument);
    const Solution littles{{Stage{1, 2, 2, CoreType::little}}};
    EXPECT_THROW((void)platform_power(littles, {4, 1}, PowerModel{}), std::invalid_argument);
}

TEST(Power, PlatformEnergyAddsIdleDraw)
{
    // One big core busy 20us per item on a 3-core machine with period 20:
    // active 2*20, idle (3*20 - 20) * 0.5.
    const auto chain = uniform_chain(2, 10.0, false);
    const Solution sol{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    const PowerModel model{2.0, 1.0, 0.5};
    const double active = energy_per_item(chain, sol, model);
    EXPECT_DOUBLE_EQ(active, 40.0);
    // period 10, machine total 3 -> 3*10 core-us per item, 20 busy, 10 idle.
    EXPECT_DOUBLE_EQ(platform_energy_per_item(chain, sol, {2, 1}, model),
                     active + 0.5 * (3 * 10.0 - 20.0));
    // With zero idle draw the two metrics coincide.
    const PowerModel no_idle{2.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(platform_energy_per_item(chain, sol, {2, 1}, no_idle),
                     energy_per_item(chain, sol, no_idle));
    // Empty solution: nothing runs, nothing idles per item.
    EXPECT_DOUBLE_EQ(platform_energy_per_item(chain, Solution{}, {2, 1}, model), 0.0);
    // Budget overuse is an error here too.
    EXPECT_THROW((void)platform_energy_per_item(chain, sol, {1, 0}, model),
                 std::invalid_argument);
}

TEST(Power, PipelineLatencySumsStageTraversal)
{
    const auto chain = make_chain({{10, 20, true}, {30, 60, true}, {5, 9, false}});
    // Stage 1 replicated on 2 big cores: latency is still 10 + 30 = 40 (a
    // single item is not accelerated by replication), stage 2 is 9 on L.
    const Solution sol{{Stage{1, 2, 2, CoreType::big}, Stage{3, 3, 1, CoreType::little}}};
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, sol), 40.0 + 9.0);
    // A single merged stage has lower latency than a longer pipeline.
    const Solution longer{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big},
                           Stage{3, 3, 1, CoreType::little}}};
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, longer), pipeline_latency(chain, sol));
}

TEST(Power, LatencyCountsCoreTypeWeights)
{
    const auto chain = make_chain({{10, 25, true}});
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, Solution{{Stage{1, 1, 1, CoreType::big}}}), 10.0);
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, Solution{{Stage{1, 1, 1, CoreType::little}}}),
                     25.0);
}

} // namespace
