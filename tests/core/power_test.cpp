#include "core/power.hpp"

#include "core/herad.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::solve;
using amp::testing::solve_result;
using amp::testing::uniform_chain;

TEST(Power, SolutionPowerCountsUsedCores)
{
    const Solution sol{{Stage{1, 2, 2, CoreType::big}, Stage{3, 4, 3, CoreType::little}}};
    const PowerModel model{4.0, 1.0, 0.1};
    EXPECT_DOUBLE_EQ(solution_power(sol, model), 2 * 4.0 + 3 * 1.0);
}

TEST(Power, PlatformPowerAddsIdleCores)
{
    const Solution sol{{Stage{1, 2, 1, CoreType::big}}};
    const PowerModel model{4.0, 1.0, 0.5};
    EXPECT_DOUBLE_EQ(platform_power(sol, {4, 4}, model), 4.0 + 7 * 0.5);
}

TEST(Power, EnergyPerItemCombinesPowerAndPeriod)
{
    const auto chain = uniform_chain(2, 10.0, false);
    const Solution sol{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    const PowerModel model{2.0, 1.0, 0.0};
    // period 10, power 4 -> 40 watt-us per item.
    EXPECT_DOUBLE_EQ(energy_per_item(chain, sol, model), 40.0);
}

TEST(Power, LittleCoresReduceEnergyOnTies)
{
    // Two schedules with equal period: all-big vs all-little. The power
    // model must rank the little one cheaper -- the paper's motivation for
    // the secondary objective.
    const auto chain = make_chain({{10, 10, false}, {10, 10, false}});
    const Solution big{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    const Solution little{{Stage{1, 1, 1, CoreType::little}, Stage{2, 2, 1, CoreType::little}}};
    const PowerModel model{};
    EXPECT_EQ(big.period(chain), little.period(chain));
    EXPECT_LT(energy_per_item(chain, little, model), energy_per_item(chain, big, model));
    // And HeRAD indeed picks the little-core schedule.
    const Solution herad_sol = solve(Strategy::herad, chain, {2, 2});
    EXPECT_DOUBLE_EQ(energy_per_item(chain, herad_sol, model),
                     energy_per_item(chain, little, model));
}

TEST(Power, PipelineLatencySumsStageTraversal)
{
    const auto chain = make_chain({{10, 20, true}, {30, 60, true}, {5, 9, false}});
    // Stage 1 replicated on 2 big cores: latency is still 10 + 30 = 40 (a
    // single item is not accelerated by replication), stage 2 is 9 on L.
    const Solution sol{{Stage{1, 2, 2, CoreType::big}, Stage{3, 3, 1, CoreType::little}}};
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, sol), 40.0 + 9.0);
    // A single merged stage has lower latency than a longer pipeline.
    const Solution longer{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big},
                           Stage{3, 3, 1, CoreType::little}}};
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, longer), pipeline_latency(chain, sol));
}

TEST(Power, LatencyCountsCoreTypeWeights)
{
    const auto chain = make_chain({{10, 25, true}});
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, Solution{{Stage{1, 1, 1, CoreType::big}}}), 10.0);
    EXPECT_DOUBLE_EQ(pipeline_latency(chain, Solution{{Stage{1, 1, 1, CoreType::little}}}),
                     25.0);
}

} // namespace
