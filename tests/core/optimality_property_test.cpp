// Property tests of the paper's central claims, on randomized small
// instances against the exhaustive reference:
//   * Theorem 1: HeRAD is optimal in period, and its core usage is
//     Pareto-minimal among optimal-period solutions;
//   * FERTAC/2CATAC/OTAC always produce valid schedules and never beat the
//     optimal period;
//   * OTAC is optimal on homogeneous resources.

#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace {

using namespace amp::core;
using amp::testing::solve;

struct PropertyCase {
    int num_tasks;
    int big;
    int little;
    double stateless_ratio;
};

class OptimalityProperty : public ::testing::TestWithParam<PropertyCase> {};

constexpr int kTrialsPerCase = 40;

TaskChain random_chain(const PropertyCase& param, amp::Rng& rng)
{
    amp::sim::GeneratorConfig config;
    config.num_tasks = param.num_tasks;
    config.weight_min = 1;
    config.weight_max = 30;
    config.stateless_ratio = param.stateless_ratio;
    return amp::sim::generate_chain(config, rng);
}

TEST_P(OptimalityProperty, HeradMatchesBruteForcePeriod)
{
    const auto param = GetParam();
    amp::Rng rng{0xabc0 + static_cast<std::uint64_t>(param.num_tasks * 1000 + param.big * 10
                                                     + param.little)};
    for (int trial = 0; trial < kTrialsPerCase; ++trial) {
        const TaskChain chain = random_chain(param, rng);
        const Resources budget{param.big, param.little};
        const Solution sol = solve(Strategy::herad, chain, budget);
        ASSERT_FALSE(sol.empty());
        ASSERT_TRUE(sol.is_well_formed(chain));
        const auto reference = brute_force(chain, budget);
        ASSERT_NEAR(sol.period(chain), reference.optimal_period, 1e-9)
            << "trial " << trial << " decomposition " << sol.decomposition();
    }
}

TEST_P(OptimalityProperty, HeradUsageIsParetoMinimal)
{
    const auto param = GetParam();
    amp::Rng rng{0xdef0 + static_cast<std::uint64_t>(param.num_tasks * 1000 + param.big * 10
                                                     + param.little)};
    for (int trial = 0; trial < kTrialsPerCase; ++trial) {
        const TaskChain chain = random_chain(param, rng);
        const Resources budget{param.big, param.little};
        const Solution sol = solve(Strategy::herad, chain, budget);
        const Resources usage = sol.used();
        const auto reference = brute_force(chain, budget);
        // No optimal-period solution may strictly dominate HeRAD's usage.
        for (const auto& other : reference.pareto_usages) {
            const bool dominates = other.big <= usage.big && other.little <= usage.little
                && (other.big < usage.big || other.little < usage.little);
            ASSERT_FALSE(dominates)
                << "trial " << trial << ": HeRAD used (" << usage.big << "," << usage.little
                << ") but (" << other.big << "," << other.little << ") is feasible; "
                << sol.decomposition();
        }
    }
}

TEST_P(OptimalityProperty, GreedyHeuristicsAreValidAndNotSuperOptimal)
{
    const auto param = GetParam();
    amp::Rng rng{0x1230 + static_cast<std::uint64_t>(param.num_tasks * 1000 + param.big * 10
                                                     + param.little)};
    for (int trial = 0; trial < kTrialsPerCase; ++trial) {
        const TaskChain chain = random_chain(param, rng);
        const Resources budget{param.big, param.little};
        const double optimal = herad_optimal_period(chain, budget);
        for (const Strategy strategy : {Strategy::fertac, Strategy::twocatac}) {
            const Solution sol = schedule(strategy, chain, budget);
            ASSERT_FALSE(sol.empty()) << to_string(strategy);
            ASSERT_TRUE(sol.is_well_formed(chain)) << to_string(strategy);
            ASSERT_LE(sol.used(CoreType::big), budget.big) << to_string(strategy);
            ASSERT_LE(sol.used(CoreType::little), budget.little) << to_string(strategy);
            ASSERT_GE(sol.period(chain), optimal - 1e-9)
                << to_string(strategy) << " beat the optimal period?!";
        }
    }
}

TEST_P(OptimalityProperty, OtacOptimalOnHomogeneousPools)
{
    const auto param = GetParam();
    amp::Rng rng{0x4560 + static_cast<std::uint64_t>(param.num_tasks * 1000 + param.big * 10
                                                     + param.little)};
    for (int trial = 0; trial < kTrialsPerCase / 2; ++trial) {
        const TaskChain chain = random_chain(param, rng);
        if (param.big >= 1) {
            const Solution sol = solve(Strategy::otac_big, chain, {param.big, 0});
            ASSERT_FALSE(sol.empty());
            ASSERT_NEAR(sol.period(chain), brute_force_optimal_period(chain, {param.big, 0}),
                        1e-9)
                << "big pool, trial " << trial;
        }
        if (param.little >= 1) {
            const Solution sol = solve(Strategy::otac_little, chain, {0, param.little});
            ASSERT_FALSE(sol.empty());
            ASSERT_NEAR(sol.period(chain), brute_force_optimal_period(chain, {0, param.little}),
                        1e-9)
                << "little pool, trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, OptimalityProperty,
    ::testing::Values(PropertyCase{4, 2, 2, 0.5}, PropertyCase{5, 1, 3, 0.2},
                      PropertyCase{5, 3, 1, 0.8}, PropertyCase{6, 2, 2, 0.5},
                      PropertyCase{6, 2, 3, 0.8}, PropertyCase{7, 2, 2, 0.2},
                      PropertyCase{7, 3, 2, 0.5}, PropertyCase{8, 2, 2, 0.8}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
        return "n" + std::to_string(info.param.num_tasks) + "_b"
            + std::to_string(info.param.big) + "_l" + std::to_string(info.param.little) + "_sr"
            + std::to_string(static_cast<int>(info.param.stateless_ratio * 10));
    });

} // namespace
