#include "core/greedy_common.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::uniform_chain;

TEST(MaxPacking, PacksAsManyTasksAsFit)
{
    const auto chain = uniform_chain(5, 10.0, false);
    EXPECT_EQ(max_packing(chain, 1, 1, CoreType::big, 25.0), 2);
    EXPECT_EQ(max_packing(chain, 1, 1, CoreType::big, 30.0), 3);
    EXPECT_EQ(max_packing(chain, 2, 1, CoreType::big, 100.0), 5);
}

TEST(MaxPacking, AlwaysTakesAtLeastOneTask)
{
    const auto chain = uniform_chain(3, 10.0, false);
    EXPECT_EQ(max_packing(chain, 2, 1, CoreType::big, 1.0), 2)
        << "oversized task still starts the stage (paper's max(s, ...))";
}

TEST(MaxPacking, ReplicationExtendsPacking)
{
    const auto chain = uniform_chain(6, 10.0, true);
    EXPECT_EQ(max_packing(chain, 1, 1, CoreType::big, 20.0), 2);
    EXPECT_EQ(max_packing(chain, 1, 3, CoreType::big, 20.0), 6);
}

TEST(MaxPacking, SequentialTaskStopsDivision)
{
    // 2 replicable then 1 sequential task: including the sequential task
    // makes the interval weight the plain sum.
    const auto chain = make_chain({{10, 10, true}, {10, 10, true}, {10, 10, false}});
    EXPECT_EQ(max_packing(chain, 1, 2, CoreType::big, 10.0), 2);
    EXPECT_EQ(max_packing(chain, 1, 2, CoreType::big, 30.0), 3);
}

TEST(RequiredCores, CeilOfWeightOverPeriod)
{
    const auto chain = uniform_chain(4, 10.0, true);
    EXPECT_EQ(required_cores(chain, 1, 4, CoreType::big, 40.0), 1);
    EXPECT_EQ(required_cores(chain, 1, 4, CoreType::big, 20.0), 2);
    EXPECT_EQ(required_cores(chain, 1, 4, CoreType::big, 13.0), 4);
    EXPECT_EQ(required_cores(chain, 1, 4, CoreType::big, 10.0), 4);
}

TEST(RequiredCores, ExactDivisionDoesNotRoundUp)
{
    const auto chain = uniform_chain(3, 7.0, true);
    // 21 / 7 == 3 exactly: must be 3, not 4 (FP tolerance).
    EXPECT_EQ(required_cores(chain, 1, 3, CoreType::big, 7.0), 3);
}

TEST(ComputeStage, SingleCorePacking)
{
    const auto chain = uniform_chain(5, 10.0, false);
    const auto cut = compute_stage(chain, 1, 3, CoreType::big, 20.0);
    EXPECT_EQ(cut.end, 2);
    EXPECT_EQ(cut.used, 1);
}

TEST(ComputeStage, ExtendsReplicableRun)
{
    // 4 replicable tasks then a sequential one. Target 10 with plenty of
    // cores: the whole replicable run becomes one stage on 4 cores.
    const auto chain = make_chain(
        {{10, 10, true}, {10, 10, true}, {10, 10, true}, {10, 10, true}, {10, 10, false}});
    const auto cut = compute_stage(chain, 1, 8, CoreType::big, 10.0);
    EXPECT_EQ(cut.end, 4);
    EXPECT_EQ(cut.used, 4);
}

TEST(ComputeStage, ReducesWhenCoresShort)
{
    const auto chain = make_chain(
        {{10, 10, true}, {10, 10, true}, {10, 10, true}, {10, 10, true}, {10, 10, false}});
    const auto cut = compute_stage(chain, 1, 2, CoreType::big, 10.0);
    EXPECT_EQ(cut.end, 2);
    EXPECT_EQ(cut.used, 2);
}

TEST(ComputeStage, LeavesOneCoreForNextStageWhenProfitable)
{
    // Replicable run of 3 tasks (10 each) then a sequential task of 10.
    // Target 20: full run needs ceil(30/20)=2 cores; shrinking to 2 tasks
    // (1 core) leaves task3+task4=20 for a single next core -> better.
    const auto chain =
        make_chain({{10, 10, true}, {10, 10, true}, {10, 10, true}, {10, 10, false}});
    const auto cut = compute_stage(chain, 1, 4, CoreType::big, 20.0);
    EXPECT_EQ(cut.end, 2);
    EXPECT_EQ(cut.used, 1);
}

TEST(ComputeStage, KeepsStageWhenShrinkDoesNotHelp)
{
    // Same shape but the next task is too heavy to share a core.
    const auto chain =
        make_chain({{10, 10, true}, {10, 10, true}, {10, 10, true}, {15, 15, false}});
    const auto cut = compute_stage(chain, 1, 4, CoreType::big, 20.0);
    EXPECT_EQ(cut.end, 3);
    EXPECT_EQ(cut.used, 2);
}

TEST(ComputeStage, FinalStageTakesWholeTail)
{
    const auto chain = uniform_chain(4, 10.0, true);
    const auto cut = compute_stage(chain, 1, 4, CoreType::big, 10.0);
    EXPECT_EQ(cut.end, 4);
    EXPECT_EQ(cut.used, 4);
}

TEST(StageFits, RespectsBudgetAndPeriod)
{
    const auto chain = uniform_chain(2, 10.0, true);
    EXPECT_TRUE(stage_fits(chain, Stage{1, 2, 2, CoreType::big}, {2, 0}, 10.0));
    EXPECT_FALSE(stage_fits(chain, Stage{1, 2, 3, CoreType::big}, {2, 0}, 10.0));
    EXPECT_FALSE(stage_fits(chain, Stage{1, 2, 1, CoreType::big}, {2, 0}, 10.0));
    EXPECT_FALSE(stage_fits(chain, Stage{1, 2, 0, CoreType::big}, {2, 0}, 100.0));
}

TEST(ScheduleBinarySearch, ReportsStats)
{
    const auto chain = uniform_chain(6, 10.0, true);
    ScheduleStats stats;
    const Solution sol = schedule_with_binary_search(
        chain, {2, 2},
        [](const TaskChain& c, int s, Resources avail, double period) {
            // Trivial ComputeSolution: one stage with everything on big.
            (void)s;
            const Stage stage{1, c.size(), avail.big, CoreType::big};
            if (!stage_fits(c, stage, avail, period))
                return Solution{};
            return Solution{{stage}};
        },
        &stats);
    EXPECT_FALSE(sol.empty());
    EXPECT_GT(stats.iterations, 0);
    EXPECT_DOUBLE_EQ(sol.period(chain), 30.0); // 60 total / 2 big cores
}

TEST(ScheduleBinarySearch, ThrowsWithoutCores)
{
    const auto chain = uniform_chain(2, 1.0, true);
    EXPECT_THROW(
        (void)schedule_with_binary_search(
            chain, {0, 0}, [](const TaskChain&, int, Resources, double) { return Solution{}; }),
        std::invalid_argument);
}

TEST(ScheduleBinarySearch, EmptyChainYieldsEmptySolution)
{
    const TaskChain chain;
    const Solution sol = schedule_with_binary_search(
        chain, {1, 1}, [](const TaskChain&, int, Resources, double) { return Solution{}; });
    EXPECT_TRUE(sol.empty());
}

} // namespace
