// Energy-aware scheduling (docs/ENERGY.md): EnergyHeRAD's exactness against
// the exhaustive reference, validity of the greedy variants, plumbing of the
// min_energy_under_period objective through core::schedule, determinism, and
// the dsim energy accounting.

#include "core/brute_force.hpp"
#include "core/energy.hpp"
#include "core/power.hpp"
#include "core/scheduler.hpp"
#include "common/rng.hpp"
#include "dsim/simulator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace amp::core;
using amp::Rng;
using amp::testing::make_chain;
using amp::testing::solve_result;
using amp::testing::uniform_chain;

constexpr double kTol = 1e-9;

TaskChain random_chain(Rng& rng, int n)
{
    std::vector<TaskDesc> tasks;
    tasks.reserve(static_cast<std::size_t>(n));
    for (int i = 1; i <= n; ++i) {
        TaskDesc t;
        t.name = "t" + std::to_string(i);
        t.w_big = static_cast<double>(rng.uniform_int(1, 20));
        t.w_little = t.w_big * rng.uniform_real(1.2, 3.0);
        t.replicable = rng.bernoulli(0.6);
        t.energy = rng.uniform_real(0.5, 3.0);
        tasks.push_back(std::move(t));
    }
    return TaskChain{std::move(tasks)};
}

TEST(EnergyHerad, MatchesBruteForceOnRandomChains)
{
    // The optimality pin: on every (chain, budget, target) instance small
    // enough to enumerate, the DP's active energy equals the exhaustive
    // minimum, and the DP finds a schedule iff one exists.
    Rng rng{0xE4E61};
    const PowerModel model{4.0, 1.0, 0.1};
    int feasible_instances = 0;
    for (int trial = 0; trial < 60; ++trial) {
        const int n = static_cast<int>(rng.uniform_int(1, 6));
        const TaskChain chain = random_chain(rng, n);
        const Resources budget{static_cast<int>(rng.uniform_int(1, 3)),
                               static_cast<int>(rng.uniform_int(0, 3))};
        if (budget.total() < 1)
            continue;
        const double p_star = brute_force_optimal_period(chain, budget);
        for (const double factor : {1.0, 1.3, 2.0}) {
            const double target = p_star * factor;
            const EnergyBruteForceResult reference =
                brute_force_min_energy(chain, budget, target, model);
            const Solution dp = detail::energy_herad(chain, budget, target, model);
            ASSERT_FALSE(dp.empty()) << "brute force found a schedule the DP missed";
            EXPECT_TRUE(dp.is_valid(chain, budget, target * (1.0 + 1e-9)));
            EXPECT_NEAR(energy_per_item(chain, dp, model), reference.best_energy, kTol)
                << "trial " << trial << " n=" << n << " target=" << target;
            ++feasible_instances;
        }
    }
    EXPECT_GT(feasible_instances, 100) << "the sweep must exercise real instances";
}

TEST(EnergyHerad, PrefersCheapCoresWhenSlackAllows)
{
    // Two tasks, 10us big / 20us little. At a tight target only big cores
    // work; with 2x slack the littles (1W vs 4W) win on energy.
    const TaskChain slow_little{
        {TaskDesc{"a", 10, 20, false}, TaskDesc{"b", 10, 20, false}}};
    const PowerModel model{4.0, 1.0, 0.1};
    const Solution tight = detail::energy_herad(slow_little, {2, 2}, 10.0, model);
    ASSERT_FALSE(tight.empty());
    EXPECT_DOUBLE_EQ(energy_per_item(slow_little, tight, model), 4.0 * 20.0);
    const Solution slack = detail::energy_herad(slow_little, {2, 2}, 20.0, model);
    ASSERT_FALSE(slack.empty());
    EXPECT_DOUBLE_EQ(energy_per_item(slow_little, slack, model), 1.0 * 40.0);
}

TEST(EnergyHerad, InfeasibleTargetReturnsEmpty)
{
    const auto chain = make_chain({{10, 20, false}, {10, 20, false}});
    const PowerModel model{};
    EXPECT_TRUE(detail::energy_herad(chain, {2, 2}, 5.0, model).empty())
        << "no stage split gets a 10us sequential task under 5us";
    EXPECT_TRUE(detail::energy_herad(chain, {0, 0}, 100.0, model).empty());
    EXPECT_TRUE(detail::energy_herad(TaskChain{}, {2, 2}, 100.0, model).empty());
}

TEST(EnergyHerad, EnergyWeightsSteerTheSchedule)
{
    // Same weights, but task b burns 10x energy per unit work. With the
    // energy weight the DP routes b to the little core (cheaper watts)
    // whenever the target permits, even though b alone would fit on big.
    const TaskChain hot_b{{TaskDesc{"a", 10, 20, false, 1.0},
                           TaskDesc{"b", 10, 20, false, 10.0}}};
    const PowerModel model{4.0, 1.0, 0.0};
    const Solution sol = detail::energy_herad(hot_b, {2, 2}, 20.0, model);
    ASSERT_FALSE(sol.empty());
    // Exhaustive check agrees -- the weighting is not a tiebreak artifact.
    const EnergyBruteForceResult reference = brute_force_min_energy(hot_b, {2, 2}, 20.0, model);
    EXPECT_NEAR(energy_per_item(hot_b, sol, model), reference.best_energy, kTol);
    // b on little costs 1W * 10 * 20 = 200; on big 4W * 10 * 10 = 400.
    EXPECT_LE(energy_per_item(hot_b, sol, model), 1.0 * 20.0 + 1.0 * 200.0 + kTol);
}

TEST(EnergyGreedy, VariantsAreValidAndNeverBeatTheDp)
{
    Rng rng{0xFE47AC};
    const PowerModel model{4.0, 1.0, 0.1};
    for (int trial = 0; trial < 40; ++trial) {
        const TaskChain chain = random_chain(rng, static_cast<int>(rng.uniform_int(2, 7)));
        const Resources budget{2, 3};
        const double target = brute_force_optimal_period(chain, budget) * 1.5;
        const Solution dp = detail::energy_herad(chain, budget, target, model);
        ASSERT_FALSE(dp.empty());
        const double optimal = energy_per_item(chain, dp, model);
        const Solution fertac = detail::energy_fertac(chain, budget, target, model);
        if (!fertac.empty()) {
            EXPECT_TRUE(fertac.is_valid(chain, budget, target * (1.0 + 1e-9)));
            EXPECT_GE(energy_per_item(chain, fertac, model), optimal - kTol);
        }
        const Solution twocatac = detail::energy_twocatac(chain, budget, target, model);
        if (!twocatac.empty()) {
            EXPECT_TRUE(twocatac.is_valid(chain, budget, target * (1.0 + 1e-9)));
            EXPECT_GE(energy_per_item(chain, twocatac, model), optimal - kTol);
        }
        for (const CoreType v : {CoreType::big, CoreType::little}) {
            const Solution otac = detail::energy_otac(chain, budget.count(v), v, target);
            if (!otac.empty()) {
                Resources single;
                single.count(v) = budget.count(v);
                EXPECT_TRUE(otac.is_valid(chain, single, target * (1.0 + 1e-9)));
            }
        }
    }
}

TEST(EnergyObjective, PlumbsThroughTheUnifiedEntryPoint)
{
    const auto chain = make_chain({{10, 20, false}, {10, 20, false}});
    const PowerModel model{4.0, 1.0, 0.1};

    ScheduleOptions options;
    options.objective = Objective::min_energy_under_period;
    options.target_period = 20.0;
    options.power = model;

    // Every strategy answers the energy objective through core::schedule,
    // and HeRAD's answer is exactly the detail DP's.
    const ScheduleResult herad = solve_result(Strategy::herad, chain, {2, 2}, options);
    ASSERT_TRUE(herad.ok());
    EXPECT_EQ(herad.solution, detail::energy_herad(chain, {2, 2}, 20.0, model));
    for (const Strategy strategy : kAllStrategies) {
        const ScheduleResult result = solve_result(strategy, chain, {2, 2}, options);
        if (result.ok()) {
            EXPECT_TRUE(result.solution.is_valid(chain, {2, 2}, 20.0 * (1.0 + 1e-9)))
                << to_string(strategy);
        }
    }

    // A missing (or non-positive) target is a malformed request, not a
    // silent fall-back to min_period.
    ScheduleOptions no_target = options;
    no_target.target_period = 0.0;
    EXPECT_EQ(solve_result(Strategy::herad, chain, {2, 2}, no_target).error,
              ScheduleError::invalid_request);
    no_target.target_period = -1.0;
    EXPECT_EQ(solve_result(Strategy::herad, chain, {2, 2}, no_target).error,
              ScheduleError::invalid_request);

    // An unreachable target is infeasible, same signal as min_period.
    ScheduleOptions tight = options;
    tight.target_period = 5.0;
    EXPECT_EQ(solve_result(Strategy::herad, chain, {2, 2}, tight).error,
              ScheduleError::infeasible);
}

TEST(EnergyObjective, NeverCostsMoreThanMinPeriodAtItsOwnPeriod)
{
    // At target = the min-period optimum, the energy objective returns a
    // schedule at most as expensive as the min-period one -- the Pareto
    // dominance the bench gates on.
    Rng rng{0xD071};
    const PowerModel model{4.0, 1.0, 0.1};
    for (int trial = 0; trial < 30; ++trial) {
        const TaskChain chain = random_chain(rng, static_cast<int>(rng.uniform_int(2, 6)));
        const Resources budget{2, 2};
        const Solution fastest = amp::testing::solve(Strategy::herad, chain, budget);
        ASSERT_FALSE(fastest.empty());
        const double p_star = fastest.period(chain);
        const Solution cheap =
            detail::energy_herad(chain, budget, p_star * (1.0 + 1e-12), model);
        ASSERT_FALSE(cheap.empty());
        EXPECT_LE(energy_per_item(chain, cheap, model),
                  energy_per_item(chain, fastest, model) + kTol);
    }
}

TEST(EnergyObjective, SolvesAreDeterministic)
{
    Rng rng{0x5EED5};
    const PowerModel model{3.5, 0.9, 0.2};
    for (int trial = 0; trial < 20; ++trial) {
        const TaskChain chain = random_chain(rng, 6);
        ScheduleOptions options;
        options.objective = Objective::min_energy_under_period;
        options.target_period = brute_force_optimal_period(chain, {2, 2}) * 1.4;
        options.power = model;
        const ScheduleResult a = solve_result(Strategy::herad, chain, {2, 2}, options);
        const ScheduleResult b = solve_result(Strategy::herad, chain, {2, 2}, options);
        ASSERT_TRUE(a.ok());
        EXPECT_EQ(a.solution, b.solution);
    }
}

TEST(EnergyDsim, SimulatedEnergyTracksTheModel)
{
    // The simulator's measured active energy per frame approximates the
    // model's energy_per_item (unit energy weights, overheads inflate the
    // measured value by a few percent).
    const auto chain = make_chain({{10, 20, true}, {15, 30, false}, {5, 9, true}});
    const Solution sol = amp::testing::solve(Strategy::herad, chain, {2, 2});
    ASSERT_FALSE(sol.empty());
    amp::dsim::SimulationConfig config;
    config.frames = 4000;
    config.warmup_frames = 400;
    config.power = PowerModel{4.0, 1.0, 0.1};
    config.overhead.jitter_cv = 0.0;
    const amp::dsim::SimulationResult result = amp::dsim::simulate(chain, sol, config);
    const double model_energy = energy_per_item(chain, sol, config.power);
    EXPECT_GT(result.energy_per_frame, model_energy * 0.95);
    EXPECT_LT(result.energy_per_frame, model_energy * 1.35)
        << "measured energy should stay within the overhead envelope";
}

} // namespace
