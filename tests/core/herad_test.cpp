#include "core/herad.hpp"

#include "core/brute_force.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::solve;
using amp::testing::solve_result;
using amp::testing::uniform_chain;

TEST(Herad, SingleTaskPicksFasterCore)
{
    const auto chain = make_chain({{10, 40, false}});
    const Solution sol = solve(Strategy::herad, chain, {1, 1});
    ASSERT_EQ(sol.stage_count(), 1u);
    EXPECT_EQ(sol.stage(0).type, CoreType::big);
    EXPECT_DOUBLE_EQ(sol.period(chain), 10.0);
}

TEST(Herad, SingleTaskTieGoesToLittle)
{
    // Lemma 1: ties are solved in favour of little cores.
    const auto chain = make_chain({{10, 10, false}});
    const Solution sol = solve(Strategy::herad, chain, {1, 1});
    ASSERT_EQ(sol.stage_count(), 1u);
    EXPECT_EQ(sol.stage(0).type, CoreType::little);
}

TEST(Herad, ReplicableTaskUsesAllUsefulCores)
{
    const auto chain = make_chain({{12, 12, true}});
    const Solution sol = solve(Strategy::herad, chain, {2, 2});
    ASSERT_FALSE(sol.empty());
    // 12/4 with 2B+2L is impossible (single stage, one type); best single
    // type gives 12/2 = 6 using either pair. Little wins the tie.
    EXPECT_DOUBLE_EQ(sol.period(chain), 6.0);
    EXPECT_EQ(sol.used(CoreType::big), 0);
    EXPECT_EQ(sol.used(CoreType::little), 2);
}

TEST(Herad, SplitsReplicableWorkAcrossTypes)
{
    // Two replicable tasks: one stage per type beats any single-type plan.
    const auto chain = make_chain({{12, 12, true}, {12, 12, true}});
    const Solution sol = solve(Strategy::herad, chain, {2, 2});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 6.0);
    EXPECT_EQ(sol.used(CoreType::big), 2);
    EXPECT_EQ(sol.used(CoreType::little), 2);
}

TEST(Herad, SequentialBottleneckSetsPeriod)
{
    const auto chain = make_chain({{5, 10, true}, {42, 99, false}, {5, 10, true}});
    const Solution sol = solve(Strategy::herad, chain, {2, 2});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 42.0);
}

TEST(Herad, UsesAsFewCoresAsNecessary)
{
    // Period is bound by the sequential task (20); the replicable tasks
    // (sum 20 on little) fit on one little core within that period, so the
    // optimal uses exactly 1 big + 1 little.
    const auto chain = make_chain({{20, 45, false}, {5, 10, true}, {5, 10, true}});
    const Solution sol = solve(Strategy::herad, chain, {4, 4});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 20.0);
    EXPECT_LE(sol.used().total(), 2) << sol.decomposition();
}

TEST(Herad, PrefersLittleOnPeriodTies)
{
    // Both types achieve period 10 for this chain; the secondary objective
    // must favour little cores.
    const auto chain = make_chain({{10, 10, false}, {10, 10, false}});
    const Solution sol = solve(Strategy::herad, chain, {2, 2});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 10.0);
    EXPECT_EQ(sol.used(CoreType::big), 0) << sol.decomposition();
    EXPECT_EQ(sol.used(CoreType::little), 2);
}

TEST(Herad, MergePassReducesStageCount)
{
    const auto chain = uniform_chain(6, 10.0, true);
    const Solution merged = solve(Strategy::herad, chain, {0, 3}, {.merge_stages = true});
    const Solution raw = solve(Strategy::herad, chain, {0, 3}, {.merge_stages = false});
    ASSERT_FALSE(merged.empty());
    ASSERT_FALSE(raw.empty());
    EXPECT_DOUBLE_EQ(merged.period(chain), raw.period(chain));
    EXPECT_LE(merged.stage_count(), raw.stage_count());
    EXPECT_EQ(merged.stage_count(), 1u) << "fully replicable chain collapses to one stage";
}

TEST(Herad, PruneDoesNotChangeResult)
{
    const auto chain = make_chain({{10, 20, true}, {40, 90, false}, {10, 15, true},
                                   {25, 70, true}, {5, 6, true}, {18, 60, false}});
    for (const Resources budget : {Resources{2, 2}, Resources{3, 1}, Resources{1, 4}}) {
        const Solution pruned = solve(Strategy::herad, chain, budget, {.prune = true});
        const Solution exact = solve(Strategy::herad, chain, budget, {.prune = false});
        EXPECT_DOUBLE_EQ(pruned.period(chain), exact.period(chain));
        EXPECT_EQ(pruned.used(), exact.used());
    }
}

TEST(Herad, MatchesBruteForceOnFixedInstances)
{
    const TaskChain chains[] = {
        make_chain({{10, 20, true}, {40, 90, false}, {10, 15, true}, {25, 70, true}}),
        make_chain({{7, 14, false}, {3, 4, true}, {9, 29, true}, {4, 17, false}, {11, 11, true}}),
        make_chain({{60, 70, true}, {10, 11, true}, {10, 55, false}}),
    };
    for (const auto& chain : chains) {
        for (const Resources budget : {Resources{2, 2}, Resources{1, 3}, Resources{3, 1}}) {
            const Solution sol = solve(Strategy::herad, chain, budget);
            ASSERT_FALSE(sol.empty());
            EXPECT_TRUE(sol.is_well_formed(chain));
            const auto reference = brute_force(chain, budget);
            EXPECT_NEAR(sol.period(chain), reference.optimal_period, 1e-9)
                << sol.decomposition();
        }
    }
}

TEST(Herad, OptimalPeriodHelperAgrees)
{
    const auto chain = make_chain({{10, 20, true}, {40, 90, false}, {10, 15, true}});
    const Resources budget{2, 2};
    EXPECT_DOUBLE_EQ(herad_optimal_period(chain, budget),
                     solve(Strategy::herad, chain, budget).period(chain));
}

TEST(Herad, EmptyChainAndErrors)
{
    EXPECT_TRUE(solve(Strategy::herad, TaskChain{}, {1, 1}).empty());
    const auto chain = uniform_chain(2, 1.0, true);
    EXPECT_EQ(solve_result(Strategy::herad, chain, {0, 0}).error,
              ScheduleError::invalid_request);
}

TEST(Herad, BigOnlyAndLittleOnlyBudgets)
{
    const auto chain = make_chain({{10, 30, true}, {20, 25, false}, {10, 30, true}});
    const Solution big_only = solve(Strategy::herad, chain, {3, 0});
    ASSERT_FALSE(big_only.empty());
    EXPECT_EQ(big_only.used(CoreType::little), 0);
    const Solution little_only = solve(Strategy::herad, chain, {0, 3});
    ASSERT_FALSE(little_only.empty());
    EXPECT_EQ(little_only.used(CoreType::big), 0);
    EXPECT_TRUE(big_only.is_well_formed(chain));
    EXPECT_TRUE(little_only.is_well_formed(chain));
}

} // namespace
