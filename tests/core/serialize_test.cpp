#include "core/serialize.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;

TEST(ChainCsv, ParsesWellFormedInput)
{
    const auto chain = parse_chain_csv(
        "name,w_big,w_little,replicable\n"
        "radio,52.3,248.3,0\n"
        "decode,153.2,506.7,1\n");
    ASSERT_EQ(chain.size(), 2);
    EXPECT_EQ(chain.task(1).name, "radio");
    EXPECT_DOUBLE_EQ(chain.weight(1, CoreType::little), 248.3);
    EXPECT_FALSE(chain.replicable(1));
    EXPECT_TRUE(chain.replicable(2));
}

TEST(ChainCsv, HeaderIsOptional)
{
    const auto chain = parse_chain_csv("a,1,2,1\nb,3,4,0\n");
    ASSERT_EQ(chain.size(), 2);
    EXPECT_DOUBLE_EQ(chain.weight(2, CoreType::big), 3.0);
}

TEST(ChainCsv, SkipsCommentsAndBlankLines)
{
    const auto chain = parse_chain_csv("# profile v1\n\na,1,2,yes\n  \n# trailing\nb,3,4,no\n");
    EXPECT_EQ(chain.size(), 2);
}

TEST(ChainCsv, AcceptsBooleanSpellings)
{
    const auto chain = parse_chain_csv("a,1,1,true\nb,1,1,no\nc,1,1,1\n");
    EXPECT_TRUE(chain.replicable(1));
    EXPECT_FALSE(chain.replicable(2));
    EXPECT_TRUE(chain.replicable(3));
}

TEST(ChainCsv, RejectsMalformedInput)
{
    EXPECT_THROW((void)parse_chain_csv(""), std::invalid_argument);
    EXPECT_THROW((void)parse_chain_csv("a,1,2\n"), std::invalid_argument);
    EXPECT_THROW((void)parse_chain_csv("a,zero,2,1\n"), std::invalid_argument);
    EXPECT_THROW((void)parse_chain_csv("a,-1,2,1\n"), std::invalid_argument);
    EXPECT_THROW((void)parse_chain_csv("a,1,2,maybe\n"), std::invalid_argument);
}

TEST(ChainCsv, RoundTripsThroughWriter)
{
    const auto original = amp::testing::make_chain({{10, 20, true}, {5.5, 9.25, false}});
    const auto parsed = parse_chain_csv(chain_to_csv(original));
    ASSERT_EQ(parsed.size(), original.size());
    for (int i = 1; i <= original.size(); ++i) {
        EXPECT_DOUBLE_EQ(parsed.weight(i, CoreType::big), original.weight(i, CoreType::big));
        EXPECT_DOUBLE_EQ(parsed.weight(i, CoreType::little),
                         original.weight(i, CoreType::little));
        EXPECT_EQ(parsed.replicable(i), original.replicable(i));
    }
}

TEST(Decomposition, ParsesPaperNotation)
{
    const Solution sol = parse_decomposition("(5,1B),(1,2B),(4,1L)");
    ASSERT_EQ(sol.stage_count(), 3u);
    EXPECT_EQ(sol.stage(0), (Stage{1, 5, 1, CoreType::big}));
    EXPECT_EQ(sol.stage(1), (Stage{6, 6, 2, CoreType::big}));
    EXPECT_EQ(sol.stage(2), (Stage{7, 10, 1, CoreType::little}));
}

TEST(Decomposition, RoundTripsWithSolutionPrinter)
{
    const Solution original{{Stage{1, 3, 2, CoreType::little}, Stage{4, 9, 7, CoreType::big},
                             Stage{10, 10, 1, CoreType::little}}};
    EXPECT_EQ(parse_decomposition(original.decomposition()), original);
}

TEST(Decomposition, RejectsGarbage)
{
    EXPECT_THROW((void)parse_decomposition(""), std::invalid_argument);
    EXPECT_THROW((void)parse_decomposition("(0,1B)"), std::invalid_argument);
    EXPECT_THROW((void)parse_decomposition("(2,0B)"), std::invalid_argument);
    EXPECT_THROW((void)parse_decomposition("(2,1X)"), std::invalid_argument);
    EXPECT_THROW((void)parse_decomposition("(2"), std::invalid_argument);
}

} // namespace
