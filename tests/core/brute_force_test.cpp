#include "core/brute_force.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::uniform_chain;

TEST(BruteForce, TrivialSingleTask)
{
    const auto chain = make_chain({{10, 40, false}});
    const auto result = brute_force(chain, {1, 1});
    EXPECT_DOUBLE_EQ(result.optimal_period, 10.0);
    ASSERT_FALSE(result.pareto_usages.empty());
    for (const auto& usage : result.pareto_usages)
        EXPECT_EQ(usage.total(), 1);
}

TEST(BruteForce, ReplicationHalvesPeriod)
{
    const auto chain = make_chain({{10, 10, true}});
    const auto result = brute_force(chain, {2, 0});
    EXPECT_DOUBLE_EQ(result.optimal_period, 5.0);
}

TEST(BruteForce, SequentialTaskCannotReplicate)
{
    const auto chain = make_chain({{10, 10, false}});
    const auto result = brute_force(chain, {4, 4});
    EXPECT_DOUBLE_EQ(result.optimal_period, 10.0);
}

TEST(BruteForce, ParetoFrontHasNoDominatedUsage)
{
    const auto chain = make_chain({{10, 10, true}, {10, 10, false}, {10, 10, true}});
    const auto result = brute_force(chain, {2, 2});
    ASSERT_FALSE(result.pareto_usages.empty());
    for (std::size_t i = 0; i < result.pareto_usages.size(); ++i) {
        for (std::size_t k = 0; k < result.pareto_usages.size(); ++k) {
            if (i == k)
                continue;
            const auto& a = result.pareto_usages[i];
            const auto& b = result.pareto_usages[k];
            const bool dominates = a.big <= b.big && a.little <= b.little
                && (a.big < b.big || a.little < b.little);
            EXPECT_FALSE(dominates);
        }
    }
}

TEST(BruteForce, SolutionsMatchUsagesAndPeriod)
{
    const auto chain =
        make_chain({{5, 9, true}, {12, 30, false}, {4, 6, true}, {8, 21, true}});
    const auto result = brute_force(chain, {2, 2});
    ASSERT_EQ(result.pareto_usages.size(), result.pareto_solutions.size());
    for (std::size_t i = 0; i < result.pareto_solutions.size(); ++i) {
        const auto& sol = result.pareto_solutions[i];
        EXPECT_TRUE(sol.is_well_formed(chain));
        EXPECT_NEAR(sol.period(chain), result.optimal_period, 1e-9);
        EXPECT_EQ(sol.used(), result.pareto_usages[i]);
    }
}

TEST(BruteForce, EmptyInputs)
{
    EXPECT_TRUE(brute_force(TaskChain{}, {1, 1}).pareto_usages.empty());
    const auto chain = uniform_chain(2, 1.0, true);
    EXPECT_TRUE(brute_force(chain, {0, 0}).pareto_usages.empty());
}

} // namespace
