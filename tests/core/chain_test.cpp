#include "core/chain.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::uniform_chain;

TEST(TaskChain, BasicAccessors)
{
    const auto chain = make_chain({{10, 20, false}, {5, 25, true}, {8, 8, true}});
    EXPECT_EQ(chain.size(), 3);
    EXPECT_FALSE(chain.empty());
    EXPECT_DOUBLE_EQ(chain.weight(1, CoreType::big), 10);
    EXPECT_DOUBLE_EQ(chain.weight(1, CoreType::little), 20);
    EXPECT_FALSE(chain.replicable(1));
    EXPECT_TRUE(chain.replicable(2));
    EXPECT_EQ(chain.replicable_count(), 2);
}

TEST(TaskChain, RejectsNonPositiveWeights)
{
    EXPECT_THROW(make_chain({{0, 1, true}}), std::invalid_argument);
    EXPECT_THROW(make_chain({{1, 0, true}}), std::invalid_argument);
    EXPECT_THROW(make_chain({{-3, 1, true}}), std::invalid_argument);
}

TEST(TaskChain, IntervalSums)
{
    const auto chain = make_chain({{1, 10, true}, {2, 20, true}, {3, 30, true}, {4, 40, true}});
    EXPECT_DOUBLE_EQ(chain.interval_sum(1, 4, CoreType::big), 10);
    EXPECT_DOUBLE_EQ(chain.interval_sum(2, 3, CoreType::big), 5);
    EXPECT_DOUBLE_EQ(chain.interval_sum(2, 3, CoreType::little), 50);
    EXPECT_DOUBLE_EQ(chain.interval_sum(3, 3, CoreType::big), 3);
    EXPECT_DOUBLE_EQ(chain.interval_sum(3, 2, CoreType::big), 0) << "empty interval sums to 0";
}

TEST(TaskChain, IntervalReplicability)
{
    // replicable, sequential, replicable, replicable
    const auto chain =
        make_chain({{1, 1, true}, {1, 1, false}, {1, 1, true}, {1, 1, true}});
    EXPECT_TRUE(chain.interval_replicable(1, 1));
    EXPECT_FALSE(chain.interval_replicable(1, 2));
    EXPECT_FALSE(chain.interval_replicable(2, 2));
    EXPECT_TRUE(chain.interval_replicable(3, 4));
    EXPECT_FALSE(chain.interval_replicable(2, 4));
}

TEST(TaskChain, FinalReplicableTask)
{
    const auto chain =
        make_chain({{1, 1, true}, {1, 1, true}, {1, 1, false}, {1, 1, true}, {1, 1, true}});
    EXPECT_EQ(chain.final_replicable_task(1, 1), 2);
    EXPECT_EQ(chain.final_replicable_task(1, 2), 2);
    EXPECT_EQ(chain.final_replicable_task(4, 4), 5) << "trailing replicable run extends to n";
}

TEST(TaskChain, StageWeightEquation1)
{
    // Tasks 1-2 replicable, task 3 sequential.
    const auto chain = make_chain({{4, 8, true}, {6, 12, true}, {10, 30, false}});
    // Replicable stage: weight divides by the core count.
    EXPECT_DOUBLE_EQ(chain.stage_weight(1, 2, 1, CoreType::big), 10);
    EXPECT_DOUBLE_EQ(chain.stage_weight(1, 2, 2, CoreType::big), 5);
    EXPECT_DOUBLE_EQ(chain.stage_weight(1, 2, 4, CoreType::little), 5);
    // A stage containing the sequential task never divides.
    EXPECT_DOUBLE_EQ(chain.stage_weight(1, 3, 1, CoreType::big), 20);
    EXPECT_DOUBLE_EQ(chain.stage_weight(1, 3, 5, CoreType::big), 20);
    EXPECT_DOUBLE_EQ(chain.stage_weight(3, 3, 2, CoreType::little), 30);
    // Zero cores means infinite weight.
    EXPECT_EQ(chain.stage_weight(1, 2, 0, CoreType::big), kInfiniteWeight);
}

TEST(TaskChain, MaxWeights)
{
    const auto chain = make_chain({{4, 9, true}, {6, 30, false}, {10, 12, true}});
    EXPECT_DOUBLE_EQ(chain.max_weight(CoreType::big), 10);
    EXPECT_DOUBLE_EQ(chain.max_weight(CoreType::little), 30);
    EXPECT_DOUBLE_EQ(chain.max_sequential_weight(CoreType::big), 6);
    EXPECT_DOUBLE_EQ(chain.max_sequential_weight(CoreType::little), 30);
}

TEST(TaskChain, MaxSequentialWeightZeroWhenAllReplicable)
{
    const auto chain = uniform_chain(4, 5.0, true);
    EXPECT_DOUBLE_EQ(chain.max_sequential_weight(CoreType::big), 0.0);
    EXPECT_DOUBLE_EQ(chain.stateless_ratio(), 1.0);
}

TEST(TaskChain, StatelessRatio)
{
    const auto chain =
        make_chain({{1, 1, true}, {1, 1, false}, {1, 1, true}, {1, 1, false}, {1, 1, false}});
    EXPECT_DOUBLE_EQ(chain.stateless_ratio(), 0.4);
}

TEST(TaskChain, EmptyChain)
{
    const TaskChain chain;
    EXPECT_TRUE(chain.empty());
    EXPECT_EQ(chain.size(), 0);
    EXPECT_DOUBLE_EQ(chain.stateless_ratio(), 0.0);
}

TEST(Resources, CountAccessors)
{
    Resources r{3, 5};
    EXPECT_EQ(r.total(), 8);
    EXPECT_EQ(r.count(CoreType::big), 3);
    EXPECT_EQ(r.count(CoreType::little), 5);
    r.count(CoreType::big) -= 2;
    EXPECT_EQ(r.big, 1);
}

TEST(CoreType, OtherFlips)
{
    EXPECT_EQ(other(CoreType::big), CoreType::little);
    EXPECT_EQ(other(CoreType::little), CoreType::big);
    EXPECT_STREQ(to_string(CoreType::big), "B");
    EXPECT_STREQ(to_string(CoreType::little), "L");
}

} // namespace
