#include "core/scheduler.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <string_view>

namespace {

using namespace amp::core;
using amp::testing::make_chain;

TEST(Scheduler, ParseStrategyAcceptsAliases)
{
    EXPECT_EQ(parse_strategy("herad"), Strategy::herad);
    EXPECT_EQ(parse_strategy("HeRAD"), Strategy::herad);
    EXPECT_EQ(parse_strategy("2catac"), Strategy::twocatac);
    EXPECT_EQ(parse_strategy("twocatac"), Strategy::twocatac);
    EXPECT_EQ(parse_strategy("fertac"), Strategy::fertac);
    EXPECT_EQ(parse_strategy("otac-b"), Strategy::otac_big);
    EXPECT_EQ(parse_strategy("otac-l"), Strategy::otac_little);
    EXPECT_THROW((void)parse_strategy("nonsense"), std::invalid_argument);
}

TEST(Scheduler, ToStringMatchesPaperNames)
{
    EXPECT_STREQ(to_string(Strategy::herad), "HeRAD");
    EXPECT_STREQ(to_string(Strategy::twocatac), "2CATAC");
    EXPECT_STREQ(to_string(Strategy::fertac), "FERTAC");
    EXPECT_STREQ(to_string(Strategy::otac_big), "OTAC (B)");
    EXPECT_STREQ(to_string(Strategy::otac_little), "OTAC (L)");
}

TEST(Scheduler, DispatchRunsEveryStrategy)
{
    const auto chain = make_chain({{10, 20, false}, {30, 60, true}, {5, 9, true}});
    for (const Strategy strategy : kAllStrategies) {
        const Solution sol = schedule(strategy, chain, {2, 2});
        ASSERT_FALSE(sol.empty()) << to_string(strategy);
        EXPECT_TRUE(sol.is_well_formed(chain)) << to_string(strategy);
    }
}

TEST(Scheduler, OtacVariantsIgnoreOtherCoreType)
{
    const auto chain = make_chain({{10, 20, true}, {10, 20, true}});
    const Solution big = schedule(Strategy::otac_big, chain, {2, 2});
    EXPECT_EQ(big.used(CoreType::little), 0);
    const Solution little = schedule(Strategy::otac_little, chain, {2, 2});
    EXPECT_EQ(little.used(CoreType::big), 0);
}

// Degenerate chains every strategy must handle.
class DegenerateChains : public ::testing::TestWithParam<Strategy> {};

TEST_P(DegenerateChains, SingleTask)
{
    const auto chain = make_chain({{10, 20, false}});
    const Solution sol = schedule(GetParam(), chain, {2, 2});
    ASSERT_FALSE(sol.empty());
    EXPECT_EQ(sol.stage_count(), 1u);
    EXPECT_TRUE(sol.is_well_formed(chain));
}

TEST_P(DegenerateChains, AllSequential)
{
    const auto chain = amp::testing::uniform_chain(6, 10.0, false);
    const Solution sol = schedule(GetParam(), chain, {3, 3});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
    for (const auto& stage : sol.stages())
        EXPECT_EQ(stage.cores, 1) << "sequential stages never replicate";
}

TEST_P(DegenerateChains, AllReplicable)
{
    const auto chain = amp::testing::uniform_chain(6, 10.0, true);
    const Solution sol = schedule(GetParam(), chain, {3, 3});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
}

TEST_P(DegenerateChains, ExtremeWeightSkew)
{
    const auto chain = make_chain({{1, 1, true}, {10000, 50000, true}, {1, 5, true}});
    const Solution sol = schedule(GetParam(), chain, {3, 3});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
}

TEST_P(DegenerateChains, SingleCoreTotal)
{
    const auto chain = make_chain({{5, 9, true}, {7, 14, false}});
    const Strategy strategy = GetParam();
    const Resources budget =
        strategy == Strategy::otac_little ? Resources{0, 1} : Resources{1, 0};
    const Solution sol = schedule(strategy, chain, budget);
    ASSERT_FALSE(sol.empty());
    EXPECT_EQ(sol.stage_count(), 1u) << "one core forces a single stage";
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DegenerateChains,
                         ::testing::ValuesIn(kAllStrategies),
                         [](const ::testing::TestParamInfo<Strategy>& info) {
                             switch (info.param) {
                             case Strategy::herad: return "HeRAD";
                             case Strategy::twocatac: return "TwoCATAC";
                             case Strategy::fertac: return "FERTAC";
                             case Strategy::otac_big: return "OTACB";
                             case Strategy::otac_little: return "OTACL";
                             }
                             return "unknown";
                         });

TEST(Scheduler, ToKeyRoundTripsThroughParseStrategy)
{
    for (const Strategy strategy : kAllStrategies)
        EXPECT_EQ(parse_strategy(to_key(strategy)), strategy) << to_key(strategy);
}

TEST(Scheduler, ParseStrategyIsCaseAndSpaceInsensitive)
{
    // Both spelling families round-trip in any casing: to_key's machine
    // names and to_string's display names ("OTAC (B)" -- spaces ignored).
    for (const Strategy strategy : kAllStrategies) {
        std::string shouty = to_key(strategy);
        for (char& c : shouty)
            c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        EXPECT_EQ(parse_strategy(shouty), strategy) << shouty;
        EXPECT_EQ(parse_strategy(to_string(strategy)), strategy) << to_string(strategy);
    }
    EXPECT_EQ(parse_strategy("  He RAD  "), Strategy::herad);
}

TEST(Scheduler, ParseStrategyThrowsTypedErrorCarryingTheInput)
{
    try {
        (void)parse_strategy("heradx");
        FAIL() << "expected StrategyParseError";
    } catch (const StrategyParseError& error) {
        EXPECT_EQ(error.name(), "heradx");
        EXPECT_NE(std::string_view{error.what()}.find("heradx"), std::string_view::npos);
    }
    // ...and stays an invalid_argument for pre-existing catch sites.
    EXPECT_THROW((void)parse_strategy(""), std::invalid_argument);
}

TEST(Scheduler, TryParseStrategyReturnsNulloptInsteadOfThrowing)
{
    EXPECT_EQ(try_parse_strategy("OtAc-L"), Strategy::otac_little);
    EXPECT_EQ(try_parse_strategy("nonsense"), std::nullopt);
    EXPECT_EQ(try_parse_strategy(""), std::nullopt);
    EXPECT_EQ(try_parse_strategy(std::string(1000, 'h')), std::nullopt)
        << "overlong names are unknown, not an allocation hazard";
}

TEST(Scheduler, RequestApiReportsInvalidRequests)
{
    const auto chain = make_chain({{10, 20, true}});
    EXPECT_EQ(schedule(ScheduleRequest{TaskChain{}, {2, 2}, Strategy::herad}).error,
              ScheduleError::invalid_request);
    EXPECT_EQ(schedule(ScheduleRequest{chain, {0, 0}, Strategy::herad}).error,
              ScheduleError::invalid_request);
    EXPECT_EQ(schedule(ScheduleRequest{chain, {-1, 2}, Strategy::herad}).error,
              ScheduleError::invalid_request);
    EXPECT_EQ(schedule(ScheduleRequest{chain, {0, 4}, Strategy::otac_big}).error,
              ScheduleError::invalid_request);
    EXPECT_EQ(schedule(ScheduleRequest{chain, {4, 0}, Strategy::otac_little}).error,
              ScheduleError::invalid_request);
    // Failed requests carry an empty solution.
    EXPECT_TRUE(schedule(ScheduleRequest{chain, {0, 0}, Strategy::herad}).solution.empty());
}

TEST(Scheduler, RequestApiTimesAndValidatesSuccessfulSolves)
{
    const auto chain = make_chain({{10, 20, false}, {30, 60, true}, {5, 9, true}});
    for (const Strategy strategy : kAllStrategies) {
        const ScheduleResult result = schedule(ScheduleRequest{chain, {2, 2}, strategy});
        ASSERT_TRUE(result.ok()) << to_key(strategy);
        EXPECT_FALSE(result.cache_hit) << "core::schedule never touches a cache";
        EXPECT_GT(result.solve_ns, 0u) << to_key(strategy);
        EXPECT_TRUE(result.solution.is_well_formed(chain)) << to_key(strategy);
    }
}

TEST(Scheduler, ConvenienceWrapperMatchesRequestApi)
{
    const auto chain = make_chain({{10, 20, false}, {30, 60, true}, {5, 9, true},
                                   {12, 25, true}, {4, 8, false}});
    for (const Strategy strategy : kAllStrategies) {
        const Solution via_wrapper = schedule(strategy, chain, {3, 2});
        const Solution via_request =
            schedule(ScheduleRequest{chain, {3, 2}, strategy}).solution;
        EXPECT_EQ(via_wrapper, via_request) << to_key(strategy);
    }
}

TEST(Scheduler, DefaultOptionsCompareEqual)
{
    EXPECT_EQ(ScheduleOptions{}, ScheduleOptions{});
    ScheduleOptions fast;
    fast.fast_u_search = true;
    EXPECT_NE(fast, ScheduleOptions{});
    EXPECT_NE(fast.key_bits(), ScheduleOptions{}.key_bits());
}

} // namespace
