#include "core/otac.hpp"

#include "core/brute_force.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::solve;
using amp::testing::solve_result;
using amp::testing::uniform_chain;

TEST(Otac, SingleCoreSingleStage)
{
    const auto chain = uniform_chain(4, 10.0, false);
    const Solution sol = solve(Strategy::otac_big, chain, {1, 0});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
    EXPECT_EQ(sol.stage_count(), 1u);
    EXPECT_DOUBLE_EQ(sol.period(chain), 40.0);
}

TEST(Otac, AllReplicableUsesOneReplicatedStage)
{
    // With homogeneous cores and a fully replicable chain, the optimum is a
    // single stage replicated over all cores (paper §II).
    const auto chain = uniform_chain(6, 10.0, true);
    const Solution sol = solve(Strategy::otac_big, chain, {4, 0});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 15.0); // 60 / 4
    EXPECT_EQ(sol.used(CoreType::big), 4);
    EXPECT_EQ(sol.used(CoreType::little), 0);
}

TEST(Otac, SequentialChainBalancedPartition)
{
    // 4 sequential tasks of weight 10 on 2 cores: optimum is 20.
    const auto chain = uniform_chain(4, 10.0, false);
    const Solution sol = solve(Strategy::otac_big, chain, {2, 0});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 20.0);
    EXPECT_LE(sol.used(CoreType::big), 2);
}

TEST(Otac, LittleCoresUseLittleWeights)
{
    const auto chain = make_chain({{10, 30, false}, {10, 30, false}});
    const Solution sol = solve(Strategy::otac_little, chain, {0, 2});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 30.0);
    EXPECT_EQ(sol.used(CoreType::big), 0);
}

TEST(Otac, PeriodBoundedBySlowestSequentialTask)
{
    const auto chain = make_chain({{5, 5, true}, {50, 50, false}, {5, 5, true}});
    const Solution sol = solve(Strategy::otac_big, chain, {8, 0});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 50.0);
}

TEST(Otac, MatchesBruteForceOnSmallInstances)
{
    // OTAC is optimal on homogeneous resources; verify against brute force
    // over a handful of structured instances.
    const TaskChain chains[] = {
        make_chain({{7, 7, true}, {3, 3, false}, {9, 9, true}, {4, 4, true}}),
        make_chain({{12, 12, false}, {5, 5, true}, {5, 5, true}, {5, 5, true}, {8, 8, false}}),
        make_chain({{2, 2, true}, {2, 2, true}, {2, 2, true}, {2, 2, true}, {2, 2, true}}),
    };
    for (const auto& chain : chains) {
        for (int cores = 1; cores <= 4; ++cores) {
            const Solution sol = solve(Strategy::otac_big, chain, {cores, 0});
            ASSERT_FALSE(sol.empty());
            EXPECT_TRUE(sol.is_well_formed(chain));
            const double reference = brute_force_optimal_period(chain, {cores, 0});
            EXPECT_NEAR(sol.period(chain), reference, 1e-9)
                << "cores=" << cores << " decomposition=" << sol.decomposition();
        }
    }
}

TEST(Otac, ThrowsWithoutCores)
{
    const auto chain = uniform_chain(2, 1.0, true);
    EXPECT_EQ(solve_result(Strategy::otac_big, chain, {0, 0}).error,
              ScheduleError::invalid_request);
}

TEST(Otac, EmptyChain)
{
    EXPECT_TRUE(solve(Strategy::otac_big, TaskChain{}, {2, 0}).empty());
}

} // namespace
