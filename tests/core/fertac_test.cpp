#include "core/fertac.hpp"

#include "core/herad.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::solve;
using amp::testing::solve_result;
using amp::testing::uniform_chain;

TEST(Fertac, ProducesValidSolution)
{
    const auto chain = make_chain({{10, 20, false}, {30, 60, true}, {30, 60, true},
                                   {10, 25, false}, {5, 10, true}});
    const Solution sol = solve(Strategy::fertac, chain, {3, 3});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
    EXPECT_LE(sol.used(CoreType::big), 3);
    EXPECT_LE(sol.used(CoreType::little), 3);
}

TEST(Fertac, PrefersLittleCoresWhenTheySuffice)
{
    // Weights identical on both core types: little cores alone can carry
    // the whole chain at the optimal period, and FERTAC grabs them first.
    const auto chain = uniform_chain(4, 10.0, false);
    const Solution sol = solve(Strategy::fertac, chain, {4, 4});
    ASSERT_FALSE(sol.empty());
    EXPECT_EQ(sol.used(CoreType::big), 0)
        << "little-first policy should not touch big cores: " << sol.decomposition();
    EXPECT_DOUBLE_EQ(sol.period(chain), 10.0);
}

TEST(Fertac, FallsBackToBigForSlowTasks)
{
    // One heavy sequential task that only meets the period on a big core.
    const auto chain = make_chain({{10, 100, false}, {10, 100, false}});
    const Solution sol = solve(Strategy::fertac, chain, {2, 2});
    ASSERT_FALSE(sol.empty());
    EXPECT_DOUBLE_EQ(sol.period(chain), 10.0);
    EXPECT_EQ(sol.used(CoreType::big), 2);
}

TEST(Fertac, SingleTaskChain)
{
    const auto chain = make_chain({{10, 40, true}});
    const Solution sol = solve(Strategy::fertac, chain, {1, 1});
    ASSERT_FALSE(sol.empty());
    EXPECT_EQ(sol.stage_count(), 1u);
    EXPECT_DOUBLE_EQ(sol.period(chain), 10.0) << "big core is 4x faster here";
}

TEST(Fertac, NeverBeatsHeradPeriod)
{
    const TaskChain chains[] = {
        make_chain({{10, 20, true}, {40, 90, false}, {10, 15, true}, {25, 70, true}}),
        make_chain({{5, 25, false}, {5, 9, true}, {50, 90, true}, {20, 80, false},
                    {10, 30, true}, {10, 12, true}}),
    };
    for (const auto& chain : chains) {
        for (const Resources budget : {Resources{2, 2}, Resources{1, 3}, Resources{3, 1}}) {
            const Solution greedy = solve(Strategy::fertac, chain, budget);
            const Solution optimal = solve(Strategy::herad, chain, budget);
            ASSERT_FALSE(greedy.empty());
            ASSERT_FALSE(optimal.empty());
            EXPECT_GE(greedy.period(chain), optimal.period(chain) - 1e-9);
        }
    }
}

TEST(Fertac, HandlesBigOnlyBudget)
{
    const auto chain = uniform_chain(4, 10.0, true);
    const Solution sol = solve(Strategy::fertac, chain, {3, 0});
    ASSERT_FALSE(sol.empty());
    EXPECT_EQ(sol.used(CoreType::little), 0);
    EXPECT_TRUE(sol.is_well_formed(chain));
}

TEST(Fertac, HandlesLittleOnlyBudget)
{
    const auto chain = uniform_chain(4, 10.0, true);
    const Solution sol = solve(Strategy::fertac, chain, {0, 3});
    ASSERT_FALSE(sol.empty());
    EXPECT_EQ(sol.used(CoreType::big), 0);
    EXPECT_TRUE(sol.is_well_formed(chain));
}

TEST(Fertac, LittleFasterThanBigStillSchedules)
{
    // Adversarial profile: tasks run FASTER on little cores. The paper's
    // period bounds assume the opposite; the fallback search must cope.
    const auto chain = make_chain({{100, 10, false}, {100, 10, false}});
    const Solution sol = solve(Strategy::fertac, chain, {1, 1});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
}

} // namespace
