#include "core/solution.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;

TEST(Solution, PeriodIsMaxStageWeight)
{
    const auto chain = make_chain({{4, 8, true}, {6, 12, true}, {10, 30, false}});
    Solution sol{{Stage{1, 2, 2, CoreType::big}, Stage{3, 3, 1, CoreType::big}}};
    EXPECT_DOUBLE_EQ(sol.period(chain), 10.0); // max(10/2, 10)
}

TEST(Solution, EmptySolutionHasInfinitePeriod)
{
    const auto chain = make_chain({{1, 1, true}});
    EXPECT_EQ(Solution{}.period(chain), kInfiniteWeight);
}

TEST(Solution, UsedCoresPerType)
{
    Solution sol{{Stage{1, 2, 2, CoreType::big}, Stage{3, 4, 3, CoreType::little},
                  Stage{5, 5, 1, CoreType::big}}};
    EXPECT_EQ(sol.used(CoreType::big), 3);
    EXPECT_EQ(sol.used(CoreType::little), 3);
    EXPECT_EQ(sol.used(), (Resources{3, 3}));
}

TEST(Solution, IsValidChecksPeriodAndBudget)
{
    const auto chain = make_chain({{4, 8, true}, {6, 12, true}});
    const Solution sol{{Stage{1, 2, 2, CoreType::big}}}; // weight 5
    EXPECT_TRUE(sol.is_valid(chain, {2, 0}, 5.0));
    EXPECT_FALSE(sol.is_valid(chain, {2, 0}, 4.9)) << "period above target";
    EXPECT_FALSE(sol.is_valid(chain, {1, 0}, 5.0)) << "big-core budget exceeded";
    EXPECT_FALSE(Solution{}.is_valid(chain, {2, 0}, 100.0)) << "empty is invalid";
}

TEST(Solution, WellFormedRejectsGapsAndOverlaps)
{
    const auto chain = make_chain({{1, 1, true}, {1, 1, true}, {1, 1, true}});
    EXPECT_TRUE(Solution({Stage{1, 2, 1, CoreType::big}, Stage{3, 3, 1, CoreType::little}})
                    .is_well_formed(chain));
    EXPECT_FALSE(Solution({Stage{1, 1, 1, CoreType::big}, Stage{3, 3, 1, CoreType::big}})
                     .is_well_formed(chain))
        << "gap at task 2";
    EXPECT_FALSE(Solution({Stage{1, 2, 1, CoreType::big}, Stage{2, 3, 1, CoreType::big}})
                     .is_well_formed(chain))
        << "overlap at task 2";
    EXPECT_FALSE(Solution({Stage{1, 2, 1, CoreType::big}}).is_well_formed(chain))
        << "does not reach task n";
    EXPECT_FALSE(Solution({Stage{1, 3, 0, CoreType::big}}).is_well_formed(chain))
        << "zero cores";
}

TEST(Solution, WellFormedRejectsReplicatedSequentialStage)
{
    const auto chain = make_chain({{1, 1, true}, {1, 1, false}});
    EXPECT_FALSE(Solution({Stage{1, 2, 2, CoreType::big}}).is_well_formed(chain));
    EXPECT_TRUE(Solution({Stage{1, 2, 1, CoreType::big}}).is_well_formed(chain));
}

TEST(Solution, MergeReplicableStagesSameType)
{
    const auto chain = make_chain({{2, 2, true}, {2, 2, true}, {2, 2, true}, {2, 2, false}});
    Solution sol{{Stage{1, 1, 1, CoreType::big}, Stage{2, 3, 2, CoreType::big},
                  Stage{4, 4, 1, CoreType::little}}};
    const double before = sol.period(chain);
    sol.merge_replicable_stages(chain);
    ASSERT_EQ(sol.stage_count(), 2u);
    EXPECT_EQ(sol.stage(0), (Stage{1, 3, 3, CoreType::big}));
    EXPECT_LE(sol.period(chain), before) << "merge must not worsen the period";
}

TEST(Solution, MergeKeepsDifferentCoreTypesApart)
{
    // The StreamPU v1.6.0 scenario: consecutive replicated stages with
    // different core types must NOT merge.
    const auto chain = make_chain({{2, 4, true}, {2, 4, true}});
    Solution sol{{Stage{1, 1, 2, CoreType::big}, Stage{2, 2, 3, CoreType::little}}};
    sol.merge_replicable_stages(chain);
    EXPECT_EQ(sol.stage_count(), 2u);
}

TEST(Solution, MergeSkipsSequentialStages)
{
    const auto chain = make_chain({{2, 2, true}, {2, 2, false}, {2, 2, true}});
    Solution sol{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big},
                  Stage{3, 3, 1, CoreType::big}}};
    sol.merge_replicable_stages(chain);
    // Stage 2 is sequential: only fully-replicable neighbors merge; none here.
    EXPECT_EQ(sol.stage_count(), 3u);
}

TEST(Solution, DecompositionNotation)
{
    Solution sol{{Stage{1, 5, 1, CoreType::big}, Stage{6, 6, 2, CoreType::little}}};
    EXPECT_EQ(sol.decomposition(), "(5,1B),(1,2L)");
}

} // namespace
