#include "core/twocatac.hpp"

#include "core/fertac.hpp"
#include "core/herad.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::solve;
using amp::testing::solve_result;
using amp::testing::uniform_chain;

TEST(ChooseBestSolution, PicksOnlyValidCandidate)
{
    const auto chain = uniform_chain(2, 10.0, true);
    const Solution valid{{Stage{1, 2, 1, CoreType::big}}};
    const Solution invalid{};
    const Resources budget{1, 1};
    EXPECT_EQ(choose_best_solution(chain, valid, invalid, budget, 20.0), valid);
    EXPECT_EQ(choose_best_solution(chain, invalid, valid, budget, 20.0), valid);
    EXPECT_TRUE(choose_best_solution(chain, invalid, invalid, budget, 20.0).empty());
}

TEST(ChooseBestSolution, PrefersExchangeOfBigForLittle)
{
    const auto chain = uniform_chain(2, 10.0, true);
    // Same period; candidate A uses (1B), candidate B uses (1L). B exchanges
    // a big core for a little one and must win.
    const Solution a{{Stage{1, 2, 1, CoreType::big}}};
    const Solution b{{Stage{1, 2, 1, CoreType::little}}};
    const Solution chosen = choose_best_solution(chain, a, b, {1, 1}, 20.0);
    EXPECT_EQ(chosen, b);
}

TEST(ChooseBestSolution, PrefersFewerCoresOtherwise)
{
    const auto chain = uniform_chain(4, 10.0, true);
    const Solution fewer{{Stage{1, 4, 2, CoreType::little}}};
    const Solution more{{Stage{1, 2, 2, CoreType::little}, Stage{3, 4, 2, CoreType::little}}};
    EXPECT_EQ(choose_best_solution(chain, more, fewer, {0, 4}, 20.0), fewer);
    EXPECT_EQ(choose_best_solution(chain, fewer, more, {0, 4}, 20.0), fewer);
}

TEST(Twocatac, ProducesValidSolution)
{
    const auto chain = make_chain({{10, 20, false}, {30, 60, true}, {30, 60, true},
                                   {10, 25, false}, {5, 10, true}});
    const Solution sol = solve(Strategy::twocatac, chain, {3, 3});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
    EXPECT_LE(sol.used(CoreType::big), 3);
    EXPECT_LE(sol.used(CoreType::little), 3);
}

TEST(Twocatac, NeverWorseThanFertacHere)
{
    // On the paper's workloads 2CATAC dominates FERTAC on average; on these
    // fixed instances it must be at least as good in period.
    const TaskChain chains[] = {
        make_chain({{10, 20, true}, {40, 90, false}, {10, 15, true}, {25, 70, true}}),
        make_chain({{5, 25, false}, {5, 9, true}, {50, 90, true}, {20, 80, false},
                    {10, 30, true}, {10, 12, true}}),
        make_chain({{33, 50, true}, {12, 40, true}, {9, 20, false}, {28, 90, true},
                    {17, 60, false}, {21, 44, true}, {10, 11, true}}),
    };
    for (const auto& chain : chains) {
        for (const Resources budget : {Resources{2, 2}, Resources{4, 2}, Resources{2, 4}}) {
            const double p_two = solve(Strategy::twocatac, chain, budget).period(chain);
            const double p_fer = solve(Strategy::fertac, chain, budget).period(chain);
            EXPECT_LE(p_two, p_fer + 1e-9);
        }
    }
}

TEST(Twocatac, NeverBeatsHeradPeriod)
{
    const auto chain = make_chain({{10, 20, true}, {40, 90, false}, {10, 15, true},
                                   {25, 70, true}, {5, 6, true}});
    for (const Resources budget : {Resources{2, 2}, Resources{1, 3}, Resources{3, 1}}) {
        const double p_two = solve(Strategy::twocatac, chain, budget).period(chain);
        const double p_opt = solve(Strategy::herad, chain, budget).period(chain);
        EXPECT_GE(p_two, p_opt - 1e-9);
    }
}

TEST(Twocatac, UsesLittleCoresLateInPipeline)
{
    // FERTAC burns little cores on the first stage; 2CATAC can save them
    // for the tail. Both must still be valid.
    const auto chain = make_chain({{10, 12, false}, {50, 120, true}, {50, 120, true},
                                   {10, 12, false}});
    const Solution sol = solve(Strategy::twocatac, chain, {3, 1});
    ASSERT_FALSE(sol.empty());
    EXPECT_TRUE(sol.is_well_formed(chain));
}

TEST(Twocatac, SingleResourceType)
{
    const auto chain = uniform_chain(4, 10.0, true);
    const Solution big_only = solve(Strategy::twocatac, chain, {2, 0});
    ASSERT_FALSE(big_only.empty());
    EXPECT_EQ(big_only.used(CoreType::little), 0);
    const Solution little_only = solve(Strategy::twocatac, chain, {0, 2});
    ASSERT_FALSE(little_only.empty());
    EXPECT_EQ(little_only.used(CoreType::big), 0);
}

} // namespace
