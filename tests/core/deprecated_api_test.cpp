// Pins the deprecated per-strategy entry points to the unified request API:
// the forwarders must return bit-identical solutions until they are removed.
// This file is the one place allowed to call them without tripping
// -Werror=deprecated-declarations.

#include "core/fertac.hpp"
#include "core/herad.hpp"
#include "core/otac.hpp"
#include "core/scheduler.hpp"
#include "core/twocatac.hpp"

#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace {

using namespace amp;
using amp::testing::make_chain;

std::vector<core::TaskChain> random_chains(int count, std::uint64_t seed)
{
    Rng rng{seed};
    sim::GeneratorConfig config;
    std::vector<core::TaskChain> chains;
    chains.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        config.num_tasks = 4 + i % 20;
        config.stateless_ratio = (i % 5) * 0.25;
        chains.push_back(sim::generate_chain(config, rng));
    }
    return chains;
}

core::Solution via_request(core::Strategy strategy, const core::TaskChain& chain,
                           core::Resources resources, core::ScheduleOptions options = {})
{
    return core::schedule(core::ScheduleRequest{chain, resources, strategy, options}).solution;
}

TEST(DeprecatedApi, HeradForwarderMatchesRequestApi)
{
    for (const auto& chain : random_chains(10, 11))
        EXPECT_EQ(core::herad(chain, {3, 3}),
                  via_request(core::Strategy::herad, chain, {3, 3}));
}

TEST(DeprecatedApi, HeradForwarderHonoursOptions)
{
    core::HeradOptions old_options;
    old_options.fast_u_search = true;
    core::ScheduleOptions new_options;
    new_options.fast_u_search = true;
    for (const auto& chain : random_chains(6, 12))
        EXPECT_EQ(core::herad(chain, {4, 2}, old_options),
                  via_request(core::Strategy::herad, chain, {4, 2}, new_options));
}

TEST(DeprecatedApi, FertacForwarderMatchesRequestApi)
{
    for (const auto& chain : random_chains(10, 13)) {
        EXPECT_EQ(core::fertac(chain, {3, 3}),
                  via_request(core::Strategy::fertac, chain, {3, 3}));
        EXPECT_EQ(core::fertac(chain, {3, 3}, nullptr, core::FertacPreference::big_first),
                  via_request(core::Strategy::fertac, chain, {3, 3},
                              {.preference = core::FertacPreference::big_first}));
    }
}

TEST(DeprecatedApi, TwocatacForwarderMatchesRequestApi)
{
    for (const auto& chain : random_chains(10, 14))
        EXPECT_EQ(core::twocatac(chain, {3, 3}),
                  via_request(core::Strategy::twocatac, chain, {3, 3}));
}

TEST(DeprecatedApi, OtacForwardersMatchRequestApi)
{
    for (const auto& chain : random_chains(10, 15)) {
        EXPECT_EQ(core::otac(chain, 4, core::CoreType::big),
                  via_request(core::Strategy::otac_big, chain, {4, 0}));
        EXPECT_EQ(core::otac(chain, 4, core::CoreType::little),
                  via_request(core::Strategy::otac_little, chain, {0, 4}));
    }
}

TEST(DeprecatedApi, ForwardersKeepThrowingOnDegenerateInput)
{
    // The old contract threw; the request API reports invalid_request
    // instead. Both behaviours are pinned until the forwarders go away.
    const auto chain = make_chain({{10, 20, true}});
    EXPECT_THROW((void)core::herad(chain, {0, 0}), std::invalid_argument);
    EXPECT_THROW((void)core::otac(chain, 0, core::CoreType::big), std::invalid_argument);
    EXPECT_EQ(core::schedule(core::ScheduleRequest{chain, {0, 0}, core::Strategy::herad}).error,
              core::ScheduleError::invalid_request);
}

} // namespace

#pragma GCC diagnostic pop
