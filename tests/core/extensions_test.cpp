// Tests of the extension features beyond the paper's core algorithms:
// FERTAC's big-first preference and HeRAD's fast u-search.

#include "core/fertac.hpp"
#include "core/herad.hpp"
#include "sim/generator.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::testing::solve;

TEST(FertacBigFirst, PrefersBigCoresWhenTheySuffice)
{
    // Weights identical on both types: big-first grabs big cores where the
    // paper's little-first FERTAC grabs little ones.
    std::vector<TaskDesc> tasks;
    for (int i = 0; i < 4; ++i)
        tasks.push_back({"t" + std::to_string(i + 1), 10.0, 10.0, false});
    const TaskChain chain{std::move(tasks)};

    const Solution little_first = solve(Strategy::fertac, chain, {4, 4});
    const Solution big_first =
        solve(Strategy::fertac, chain, {4, 4}, {.preference = FertacPreference::big_first});
    ASSERT_FALSE(little_first.empty());
    ASSERT_FALSE(big_first.empty());
    EXPECT_EQ(little_first.used(CoreType::big), 0);
    EXPECT_EQ(big_first.used(CoreType::little), 0);
    EXPECT_DOUBLE_EQ(little_first.period(chain), big_first.period(chain));
}

TEST(FertacBigFirst, BothVariantsStayValidOnRandomChains)
{
    amp::Rng rng{0xb1f};
    amp::sim::GeneratorConfig config;
    config.num_tasks = 15;
    for (int trial = 0; trial < 30; ++trial) {
        const auto chain = amp::sim::generate_chain(config, rng);
        for (const auto preference :
             {FertacPreference::little_first, FertacPreference::big_first}) {
            const Solution sol = solve(Strategy::fertac, chain, {3, 3}, {.preference = preference});
            ASSERT_FALSE(sol.empty());
            ASSERT_TRUE(sol.is_well_formed(chain));
            ASSERT_LE(sol.used(CoreType::big), 3);
            ASSERT_LE(sol.used(CoreType::little), 3);
        }
    }
}

TEST(HeradFastUSearch, PeriodMatchesExactSearch)
{
    amp::Rng rng{0xfa57};
    amp::sim::GeneratorConfig config;
    config.num_tasks = 12;
    for (const double sr : {0.2, 0.5, 0.8}) {
        config.stateless_ratio = sr;
        for (int trial = 0; trial < 20; ++trial) {
            const auto chain = amp::sim::generate_chain(config, rng);
            for (const Resources budget : {Resources{6, 6}, Resources{10, 2}}) {
                const Solution exact = solve(Strategy::herad, chain, budget, {.fast_u_search = false});
                const Solution fast = solve(Strategy::herad, chain, budget, {.fast_u_search = true});
                ASSERT_FALSE(fast.empty());
                ASSERT_TRUE(fast.is_well_formed(chain));
                ASSERT_NEAR(fast.period(chain), exact.period(chain), 1e-9)
                    << "sr=" << sr << " trial=" << trial;
            }
        }
    }
}

TEST(HeradFastUSearch, RespectsBudgets)
{
    amp::Rng rng{0xfa58};
    amp::sim::GeneratorConfig config;
    config.num_tasks = 20;
    config.stateless_ratio = 0.8;
    const auto chain = amp::sim::generate_chain(config, rng);
    const Resources budget{12, 12};
    const Solution fast = solve(Strategy::herad, chain, budget, {.fast_u_search = true});
    EXPECT_LE(fast.used(CoreType::big), budget.big);
    EXPECT_LE(fast.used(CoreType::little), budget.little);
}

} // namespace
