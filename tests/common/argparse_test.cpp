#include "common/argparse.hpp"

#include <gtest/gtest.h>

namespace {

using amp::ArgParse;

TEST(ArgParse, ParsesKeyEqualsValue)
{
    const char* argv[] = {"prog", "--tasks=20", "--sr=0.5"};
    ArgParse args(3, argv);
    EXPECT_EQ(args.get_int("tasks", 0), 20);
    EXPECT_DOUBLE_EQ(args.get_double("sr", 0.0), 0.5);
}

TEST(ArgParse, ParsesKeySpaceValue)
{
    const char* argv[] = {"prog", "--chains", "1000"};
    ArgParse args(3, argv);
    EXPECT_EQ(args.get_int("chains", 0), 1000);
}

TEST(ArgParse, BooleanFlag)
{
    const char* argv[] = {"prog", "--full", "--quiet=false"};
    ArgParse args(3, argv);
    EXPECT_TRUE(args.get_bool("full"));
    EXPECT_FALSE(args.get_bool("quiet", true));
    EXPECT_FALSE(args.get_bool("absent"));
    EXPECT_TRUE(args.get_bool("absent", true));
}

TEST(ArgParse, Fallbacks)
{
    const char* argv[] = {"prog"};
    ArgParse args(1, argv);
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
    EXPECT_EQ(args.get_int("missing", 7), 7);
    EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParse, Positional)
{
    const char* argv[] = {"prog", "input.bin", "--n=3", "output.bin"};
    ArgParse args(4, argv);
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "input.bin");
    EXPECT_EQ(args.positional()[1], "output.bin");
}

} // namespace
