#include "common/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using amp::TextTable;

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.add_row({"alpha", "1"});
    table.add_row({"b", "22"});
    const std::string out = table.str();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
}

TEST(TextTable, CsvHasNoPadding)
{
    TextTable table({"a", "b"});
    table.add_row({"x", "y"});
    EXPECT_EQ(table.csv(), "a,b\nx,y\n");
}

TEST(TextTable, RejectsMismatchedRow)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_THROW(TextTable{{}}, std::invalid_argument);
}

TEST(Format, FixedDecimals)
{
    EXPECT_EQ(amp::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(amp::fmt(1.0, 0), "1");
    EXPECT_EQ(amp::fmt(2.5, 3), "2.500");
}

TEST(Format, Percentage)
{
    EXPECT_EQ(amp::fmt_pct(0.958, 1), "95.8%");
    EXPECT_EQ(amp::fmt_pct(1.0, 1), "100.0%");
}

} // namespace
