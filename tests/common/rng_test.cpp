#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace {

using amp::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a() == b() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntStaysInBounds)
{
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        const auto x = rng.uniform_int(1, 100);
        EXPECT_GE(x, 1);
        EXPECT_LE(x, 100);
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng{7};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng{11};
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.uniform_int(0, 9));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRoughlyUniform)
{
    Rng rng{13};
    std::array<int, 10> buckets{};
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i)
        ++buckets[static_cast<std::size_t>(rng.uniform_int(0, 9))];
    for (const int count : buckets) {
        EXPECT_GT(count, kDraws / 10 * 0.9);
        EXPECT_LT(count, kDraws / 10 * 1.1);
    }
}

TEST(Rng, UniformRealStaysInBounds)
{
    Rng rng{17};
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform_real(1.0, 5.0);
        EXPECT_GE(x, 1.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, NormalHasZeroMeanUnitVariance)
{
    Rng rng{19};
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kDraws;
    const double variance = sum_sq / kDraws - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng{23};
    int hits = 0;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

} // namespace
