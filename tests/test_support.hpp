#pragma once
// Helpers shared across the test suite.

#include "core/chain.hpp"
#include "core/scheduler.hpp"
#include "core/solution.hpp"

#include <initializer_list>
#include <string>
#include <vector>

namespace amp::testing {

/// Solves through the unified core::schedule(ScheduleRequest) API and
/// returns just the solution (empty on infeasible/invalid), which is what
/// most algorithm tests assert on.
inline core::Solution solve(core::Strategy strategy, const core::TaskChain& chain,
                            core::Resources resources, core::ScheduleOptions options = {})
{
    return core::schedule(core::ScheduleRequest{chain, resources, strategy, options}).solution;
}

/// Full-result variant for tests that inspect the error status or stats.
inline core::ScheduleResult solve_result(core::Strategy strategy, const core::TaskChain& chain,
                                         core::Resources resources,
                                         core::ScheduleOptions options = {})
{
    return core::schedule(core::ScheduleRequest{chain, resources, strategy, options});
}

/// Builds a chain from (w_big, w_little, replicable) triples.
struct TaskSpec {
    double w_big;
    double w_little;
    bool replicable;
};

inline core::TaskChain make_chain(std::initializer_list<TaskSpec> specs)
{
    std::vector<core::TaskDesc> tasks;
    tasks.reserve(specs.size());
    int index = 1;
    for (const auto& spec : specs) {
        tasks.push_back(core::TaskDesc{"t" + std::to_string(index++), spec.w_big,
                                       spec.w_little, spec.replicable});
    }
    return core::TaskChain{std::move(tasks)};
}

/// A chain where every task has the same weight on both core types.
inline core::TaskChain uniform_chain(int n, double weight, bool replicable)
{
    std::vector<core::TaskDesc> tasks;
    tasks.reserve(static_cast<std::size_t>(n));
    for (int i = 1; i <= n; ++i)
        tasks.push_back(core::TaskDesc{"t" + std::to_string(i), weight, weight, replicable});
    return core::TaskChain{std::move(tasks)};
}

} // namespace amp::testing
