#include "dsim/simulator.hpp"

#include "test_support.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::dsim;
using namespace amp::core;
using amp::testing::make_chain;
using amp::testing::uniform_chain;

SimulationConfig ideal_config()
{
    SimulationConfig config;
    config.frames = 5000;
    config.warmup_frames = 500;
    config.overhead.adaptor_crossing_us = 0.0;
    config.overhead.service_inflation = 0.0;
    config.overhead.jitter_cv = 0.0;
    config.overhead.replication_penalty = 0.0;
    config.overhead.little_replication_penalty = 0.0;
    return config;
}

TEST(Dsim, IdealPipelineMatchesExpectedPeriod)
{
    const auto chain = make_chain({{100, 200, false}, {40, 90, true}, {60, 150, false}});
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big},
                             Stage{3, 3, 1, CoreType::big}}};
    const auto result = simulate(chain, solution, ideal_config());
    EXPECT_NEAR(result.period_us, expected_period_us(chain, solution), 1e-6);
    EXPECT_NEAR(result.fps, 1e6 / 100.0, 1.0);
}

TEST(Dsim, ReplicationDividesPeriod)
{
    const auto chain = uniform_chain(1, 100.0, true);
    const Solution solo{{Stage{1, 1, 1, CoreType::big}}};
    const Solution replicated{{Stage{1, 1, 4, CoreType::big}}};
    const auto config = ideal_config();
    const auto slow = simulate(chain, solo, config);
    const auto fast = simulate(chain, replicated, config);
    EXPECT_NEAR(slow.period_us, 100.0, 1e-6);
    EXPECT_NEAR(fast.period_us, 25.0, 1e-6);
}

TEST(Dsim, BottleneckStageSetsThroughput)
{
    const auto chain = make_chain({{10, 10, false}, {80, 80, false}, {10, 10, false}});
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big},
                             Stage{3, 3, 1, CoreType::big}}};
    const auto result = simulate(chain, solution, ideal_config());
    EXPECT_NEAR(result.period_us, 80.0, 1e-6);
    // Bottleneck stage saturated, the others mostly idle.
    EXPECT_GT(result.stages[1].utilization, 0.95);
    EXPECT_LT(result.stages[0].utilization, 0.2);
}

TEST(Dsim, LittleStageUsesLittleWeights)
{
    const auto chain = make_chain({{10, 50, false}});
    const Solution solution{{Stage{1, 1, 1, CoreType::little}}};
    const auto result = simulate(chain, solution, ideal_config());
    EXPECT_NEAR(result.period_us, 50.0, 1e-6);
}

TEST(Dsim, OverheadsSlowThePipelineDown)
{
    const auto chain = make_chain({{50, 120, true}, {50, 130, true}});
    const Solution solution{{Stage{1, 1, 2, CoreType::big}, Stage{2, 2, 3, CoreType::little}}};
    auto config = ideal_config();
    const auto ideal = simulate(chain, solution, config);
    config.overhead.adaptor_crossing_us = 2.0;
    config.overhead.jitter_cv = 0.02;
    config.overhead.replication_penalty = 0.02;
    config.overhead.little_replication_penalty = 0.08;
    const auto real = simulate(chain, solution, config);
    EXPECT_GT(real.period_us, ideal.period_us);
    // The gap should stay in the "moving from theory to practice" band the
    // paper reports (single-digit to low-double-digit percent).
    EXPECT_LT(real.period_us, ideal.period_us * 1.35);
}

TEST(Dsim, LittleReplicationPenalizedMoreThanBig)
{
    const auto chain = make_chain({{100, 100, true}});
    auto config = ideal_config();
    config.overhead.replication_penalty = 0.02;
    config.overhead.little_replication_penalty = 0.08;
    const auto big = simulate(chain, Solution{{Stage{1, 1, 2, CoreType::big}}}, config);
    const auto little = simulate(chain, Solution{{Stage{1, 1, 2, CoreType::little}}}, config);
    EXPECT_GT(little.period_us, big.period_us);
}

TEST(Dsim, JitterIsDeterministicPerSeed)
{
    const auto chain = uniform_chain(3, 50.0, true);
    const Solution solution{{Stage{1, 3, 2, CoreType::big}}};
    auto config = ideal_config();
    config.overhead.jitter_cv = 0.05;
    const auto a = simulate(chain, solution, config);
    const auto b = simulate(chain, solution, config);
    EXPECT_DOUBLE_EQ(a.period_us, b.period_us);
}

TEST(Dsim, RejectsBadInputs)
{
    const auto chain = uniform_chain(2, 10.0, true);
    EXPECT_THROW((void)simulate(chain, Solution{}, {}), std::invalid_argument);
    SimulationConfig config;
    config.frames = 10;
    config.warmup_frames = 10;
    EXPECT_THROW(
        (void)simulate(chain, Solution{{Stage{1, 2, 1, CoreType::big}}}, config),
        std::invalid_argument);
    EXPECT_THROW((void)simulate(chain, Solution{{Stage{1, 1, 1, CoreType::big}}}, {}),
                 std::invalid_argument)
        << "solution must cover the chain";
}

} // namespace

namespace {

TEST(Dsim, StageStatsReportMeanService)
{
    const auto chain = amp::testing::make_chain({{40, 80, true}, {60, 130, false}});
    const Solution solution{{Stage{1, 1, 2, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    const auto result = simulate(chain, solution, ideal_config());
    ASSERT_EQ(result.stages.size(), 2u);
    EXPECT_NEAR(result.stages[0].mean_service_us, 40.0, 1e-6)
        << "per-replica service is the full interval latency";
    EXPECT_NEAR(result.stages[1].mean_service_us, 60.0, 1e-6);
    EXPECT_GT(result.stages[1].utilization, result.stages[0].utilization);
}

TEST(Dsim, ServiceInflationShiftsPeriod)
{
    const auto chain = amp::testing::uniform_chain(1, 100.0, false);
    const Solution solution{{Stage{1, 1, 1, CoreType::big}}};
    auto config = ideal_config();
    config.overhead.service_inflation = 0.10;
    const auto result = simulate(chain, solution, config);
    EXPECT_NEAR(result.period_us, 110.0, 1e-6);
}

TEST(Dsim, AdaptorCrossingDoesNotChangeSteadyStatePeriod)
{
    // Fixed per-crossing latency delays every frame equally: the
    // inter-departure time (period) is untouched (see ALGORITHMS.md).
    const auto chain = amp::testing::make_chain({{50, 50, false}, {80, 80, false}});
    const Solution solution{{Stage{1, 1, 1, CoreType::big}, Stage{2, 2, 1, CoreType::big}}};
    auto config = ideal_config();
    config.overhead.adaptor_crossing_us = 25.0;
    const auto result = simulate(chain, solution, config);
    EXPECT_NEAR(result.period_us, 80.0, 1e-6);
}

} // namespace
