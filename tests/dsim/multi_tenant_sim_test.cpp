// Virtual-time multi-tenant arbitration replay (dsim::simulate_multi_tenant):
// deterministic rearbitration traces, goodput/fairness integration and the
// join/leave/weight-change event plumbing.

#include "dsim/simulator.hpp"
#include "svc/solver_service.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

namespace amp::dsim {
namespace {

core::TaskChain big_chain()
{
    return amp::testing::make_chain({{10.0, 10000.0, true},
                                     {10.0, 10000.0, true},
                                     {10.0, 10000.0, true},
                                     {10.0, 10000.0, true}});
}

SimTenant sim_tenant(const char* name, double weight, double demand_fps = 0.0)
{
    SimTenant tenant;
    tenant.spec.name = name;
    tenant.spec.chain = big_chain();
    tenant.spec.weight = weight;
    tenant.demand_fps = demand_fps;
    return tenant;
}

MultiTenantScenario weight_change_scenario(svc::SolverService* service)
{
    MultiTenantScenario scenario;
    scenario.pool = core::Resources{8, 0};
    scenario.tenants = {sim_tenant("a", 1.0), sim_tenant("b", 1.0), sim_tenant("c", 2.0)};
    scenario.events = {
        TenantEvent{0, TenantEventKind::join, 0},
        TenantEvent{0, TenantEventKind::join, 1},
        TenantEvent{200'000, TenantEventKind::join, 2},
        TenantEvent{500'000, TenantEventKind::set_weight, 0, 3.0},
        TenantEvent{800'000, TenantEventKind::leave, 1},
    };
    scenario.horizon_us = 1'000'000;
    scenario.service = service;
    return scenario;
}

TEST(MultiTenantSim, TraceIsDeterministicAcrossReplays)
{
    // Separate services: determinism must not depend on shared cache state.
    svc::SolverService service_a{svc::ServiceConfig{.workers = 2}};
    svc::SolverService service_b{svc::ServiceConfig{.workers = 2}};

    const MultiTenantResult first =
        simulate_multi_tenant(weight_change_scenario(&service_a));
    const MultiTenantResult second =
        simulate_multi_tenant(weight_change_scenario(&service_b));

    ASSERT_EQ(first.trace.size(), 4u) << "one rearbitration per distinct event time";
    EXPECT_EQ(first.trace, second.trace);
    EXPECT_EQ(first.rearbitrations, second.rearbitrations);
    EXPECT_EQ(first.probes, second.probes);
    EXPECT_DOUBLE_EQ(first.aggregate_goodput_fps, second.aggregate_goodput_fps);
    EXPECT_DOUBLE_EQ(first.jain_weighted, second.jain_weighted);
}

TEST(MultiTenantSim, EventsReshapeTheAllocationOverTime)
{
    svc::SolverService service{svc::ServiceConfig{.workers = 2}};
    const MultiTenantResult result =
        simulate_multi_tenant(weight_change_scenario(&service));

    ASSERT_EQ(result.trace.size(), 4u);
    // t=0: two equal tenants split the 8 bigs evenly.
    EXPECT_EQ(result.trace[0].tenants, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(result.trace[0].budgets[0], (core::Resources{4, 0}));
    EXPECT_EQ(result.trace[0].budgets[1], (core::Resources{4, 0}));
    // t=200ms: a weight-2 tenant joins; 1:1:2 -> 2/2/4.
    EXPECT_EQ(result.trace[1].tenants, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(result.trace[1].budgets[2], (core::Resources{4, 0}));
    // t=500ms: tenant 0's weight rises to 3; 3:1:2 -> 4/1/3 (water-filling
    // honors exact weighted max-min on the discrete curve).
    EXPECT_EQ(result.trace[2].budgets[0].big
                  + result.trace[2].budgets[1].big + result.trace[2].budgets[2].big,
              8);
    EXPECT_GT(result.trace[2].budgets[0].big, result.trace[1].budgets[0].big)
        << "a heavier weight wins cores at the next rearbitration";
    // t=800ms: tenant 1 leaves; its cores are redistributed.
    EXPECT_EQ(result.trace[3].tenants, (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(result.trace[3].budgets[0].big + result.trace[3].budgets[1].big, 8);

    // Every rearbitration carries the deterministic grant log.
    for (const ArbEventRecord& record : result.trace)
        EXPECT_FALSE(record.steps.empty());

    // Integration: both ever-present tenants delivered frames; the machine
    // produced useful throughput; Jain over weighted rates is in (0, 1].
    EXPECT_GT(result.tenants[0].frames, 0.0);
    EXPECT_GT(result.tenants[1].present_us, 0.0);
    EXPECT_LT(result.tenants[1].present_us, 1'000'000.0);
    EXPECT_GT(result.aggregate_goodput_fps, 0.0);
    EXPECT_GT(result.jain_weighted, 0.0);
    EXPECT_LE(result.jain_weighted, 1.0);
}

TEST(MultiTenantSim, DemandCapLimitsGoodputButNotDeliveredFrames)
{
    svc::SolverService service{svc::ServiceConfig{.workers = 2}};
    MultiTenantScenario scenario;
    scenario.pool = core::Resources{4, 0};
    // Period 40us/4 cores = 10us -> 100k fps achievable; demand caps at 1000.
    scenario.tenants = {sim_tenant("capped", 1.0, 1000.0)};
    scenario.events = {TenantEvent{0, TenantEventKind::join, 0}};
    scenario.horizon_us = 1'000'000;
    scenario.service = &service;

    const MultiTenantResult result = simulate_multi_tenant(scenario);
    EXPECT_NEAR(result.tenants[0].goodput_fps, 1000.0, 1e-6);
    EXPECT_GT(result.tenants[0].frames, 1'000.0) << "delivery is not demand-capped";
    EXPECT_NEAR(result.aggregate_goodput_fps, 1000.0, 1e-6);
}

TEST(MultiTenantSim, ValidatesScenarios)
{
    svc::SolverService service{svc::ServiceConfig{.workers = 1}};
    MultiTenantScenario scenario;
    scenario.pool = core::Resources{2, 0};
    scenario.tenants = {sim_tenant("a", 1.0)};
    scenario.service = &service;

    scenario.events = {TenantEvent{-1, TenantEventKind::join, 0}};
    EXPECT_THROW(simulate_multi_tenant(scenario), std::invalid_argument);

    scenario.events = {TenantEvent{0, TenantEventKind::join, 7}};
    EXPECT_THROW(simulate_multi_tenant(scenario), std::invalid_argument);

    scenario.events = {TenantEvent{10, TenantEventKind::join, 0},
                       TenantEvent{5, TenantEventKind::join, 0}};
    EXPECT_THROW(simulate_multi_tenant(scenario), std::invalid_argument);

    scenario.events = {TenantEvent{0, TenantEventKind::leave, 0}};
    EXPECT_THROW(simulate_multi_tenant(scenario), std::invalid_argument);

    scenario.events = {TenantEvent{0, TenantEventKind::join, 0},
                       TenantEvent{1, TenantEventKind::join, 0}};
    EXPECT_THROW(simulate_multi_tenant(scenario), std::invalid_argument);
}

} // namespace
} // namespace amp::dsim
