#include "dsim/simulator.hpp"

#include "core/scheduler.hpp"
#include "rt/rescheduler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace amp;

core::TaskChain make_chain(int n)
{
    std::vector<core::TaskDesc> tasks;
    for (int i = 1; i <= n; ++i) {
        const double w = 20.0 + 3.0 * static_cast<double>(i);
        tasks.push_back(core::TaskDesc{"t" + std::to_string(i), w, 2.0 * w, true});
    }
    return core::TaskChain{std::move(tasks)};
}

dsim::SimulationConfig small_config()
{
    dsim::SimulationConfig config;
    config.frames = 3000;
    config.warmup_frames = 300;
    return config;
}

TEST(FailureSim, RandomFailurePlanIsDeterministic)
{
    const auto a = dsim::random_failures(7, 4, 100, 2000, 3);
    const auto b = dsim::random_failures(7, 4, 100, 2000, 3);
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(b.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].frame, b[i].frame);
        EXPECT_EQ(a[i].stage, b[i].stage);
        EXPECT_GE(a[i].frame, 100u);
        EXPECT_LT(a[i].frame, 2000u);
        EXPECT_LT(a[i].stage, 3u);
        if (i > 0)
            EXPECT_GE(a[i].frame, a[i - 1].frame) << "plan sorted by frame";
    }
}

TEST(FailureSim, NoFailuresMatchesPlainSimulation)
{
    const core::TaskChain chain = make_chain(5);
    const core::Resources budget{3, 2};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::herad}).solution;
    ASSERT_FALSE(solution.empty());

    const auto config = small_config();
    const auto plain = dsim::simulate(chain, solution, config);
    const auto faulty =
        dsim::simulate_with_failures(chain, solution, budget, config, dsim::FailureModel{});

    EXPECT_TRUE(faulty.schedulable);
    EXPECT_TRUE(faulty.recoveries.empty());
    EXPECT_EQ(faulty.frames_dropped, 0u);
    EXPECT_DOUBLE_EQ(faulty.overall.period_us, plain.period_us)
        << "the failure path must not perturb the healthy recurrence";
    EXPECT_EQ(faulty.final_solution, solution);
}

// Acceptance (c): dsim reproduces the same recovery decisions
// deterministically from a fixed seed.
TEST(FailureSim, RecoveryDecisionsAreDeterministicFromSeed)
{
    const core::TaskChain chain = make_chain(6);
    const core::Resources budget{3, 2};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::herad}).solution;
    ASSERT_FALSE(solution.empty());

    const auto config = small_config();
    dsim::FailureModel faults;
    faults.failures =
        dsim::random_failures(0xfa17, 2, config.warmup_frames, config.frames,
                              solution.stage_count());

    const auto first = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    const auto second = dsim::simulate_with_failures(chain, solution, budget, config, faults);

    ASSERT_EQ(first.recoveries.size(), 2u);
    ASSERT_EQ(second.recoveries.size(), first.recoveries.size());
    for (std::size_t i = 0; i < first.recoveries.size(); ++i) {
        const auto& a = first.recoveries[i];
        const auto& b = second.recoveries[i];
        EXPECT_EQ(a.frame, b.frame);
        EXPECT_EQ(a.stage, b.stage);
        EXPECT_EQ(a.lost_type, b.lost_type);
        EXPECT_EQ(a.resources_after, b.resources_after);
        EXPECT_EQ(a.new_solution, b.new_solution) << "identical reschedule decision";
        EXPECT_DOUBLE_EQ(a.downtime_us, b.downtime_us);
    }
    EXPECT_EQ(first.final_solution, second.final_solution);
    EXPECT_EQ(first.frames_dropped, second.frames_dropped);
    EXPECT_DOUBLE_EQ(first.overall.period_us, second.overall.period_us);
}

// The simulator's decisions are exactly the runtime Rescheduler's: feeding
// the same loss sequence to an rt::Rescheduler reproduces every solution.
TEST(FailureSim, MirrorsRuntimeReschedulerDecisions)
{
    const core::TaskChain chain = make_chain(6);
    const core::Resources budget{3, 2};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::herad}).solution;
    ASSERT_FALSE(solution.empty());

    const auto config = small_config();
    dsim::FailureModel faults;
    faults.failures = dsim::random_failures(99, 3, config.warmup_frames, config.frames,
                                            solution.stage_count());

    const auto result = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    ASSERT_TRUE(result.schedulable);
    ASSERT_EQ(result.recoveries.size(), 3u);

    rt::Rescheduler twin{chain, budget, faults.policy};
    for (const auto& record : result.recoveries) {
        const core::Solution expected = twin.on_core_loss(record.lost_type);
        EXPECT_EQ(twin.resources(), record.resources_after);
        EXPECT_EQ(expected, record.new_solution)
            << "dsim must take the decision the runtime would take";
    }
    EXPECT_EQ(result.final_solution, result.recoveries.back().new_solution);
}

TEST(FailureSim, ReportsUnschedulableWhenNoCoreRemains)
{
    const core::TaskChain chain = make_chain(3);
    const core::Resources budget{1, 0};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::otac_big}).solution;
    ASSERT_FALSE(solution.empty());

    auto config = small_config();
    dsim::FailureModel faults;
    faults.failures.push_back(dsim::SimFailure{500, 0});

    const auto result = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    EXPECT_FALSE(result.schedulable) << "losing the only core leaves nothing to run on";
    ASSERT_EQ(result.recoveries.size(), 1u);
    EXPECT_EQ(result.recoveries[0].resources_after, (core::Resources{0, 0}));
}

// The virtual-time mirror of the runtime's frame-granular swap: when the
// recovery delta is resize-only and FailureModel::frame_swap_us is set,
// downtime collapses to detection + frame swap instead of the drain-based
// delta-swap cost.
TEST(FailureSim, FrameSwapModelShortensDowntimeForResizeOnlyDeltas)
{
    // All-little chain: t1 stateful, the rest replicable with lopsided
    // little sums. On R = (0, 4) the optimum is [t1]x1L | [t2-t5]x3L and
    // losing a little from stage 1 keeps the cut and types (stage 1 merely
    // resized 3 -> 2): resize-only by construction.
    std::vector<core::TaskDesc> tasks;
    tasks.push_back(core::TaskDesc{"t1", 100.0, 90.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(core::TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    const core::TaskChain chain{std::move(tasks)};
    const core::Resources budget{0, 4};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::herad}).solution;
    ASSERT_FALSE(solution.empty());

    const auto config = small_config();
    dsim::FailureModel faults;
    faults.detection_us = 200.0;
    faults.delta_swap_us = 1000.0;
    faults.failures.push_back(dsim::SimFailure{500, 1}); // a little from stage 1

    // Drain-based delta swap: detection + delta swap.
    const auto drained = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    ASSERT_TRUE(drained.schedulable);
    ASSERT_EQ(drained.recoveries.size(), 1u);
    EXPECT_TRUE(drained.recoveries[0].delta_applied);
    EXPECT_FALSE(drained.recoveries[0].frame_swap_applied);
    EXPECT_DOUBLE_EQ(drained.recoveries[0].downtime_us, 200.0 + 1000.0);

    // Frame swap modelled: the resize-only delta takes the cheaper path.
    faults.frame_swap_us = 100.0;
    const auto swapped = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    ASSERT_EQ(swapped.recoveries.size(), 1u);
    EXPECT_TRUE(swapped.recoveries[0].frame_swap_applied);
    EXPECT_DOUBLE_EQ(swapped.recoveries[0].downtime_us, 200.0 + 100.0);
    EXPECT_EQ(swapped.recoveries[0].new_solution, drained.recoveries[0].new_solution)
        << "the swap mechanism must not change the scheduling decision";
}

TEST(FailureSim, FrameSwapModelIgnoresNonResizeOnlyDeltas)
{
    // Mixed-type sibling: on R = (1, 3) losing the big rebinds stage 0
    // big -> little -- delta-compatible, but NOT resize-only, so the
    // frame-swap cost must not apply even when modelled.
    std::vector<core::TaskDesc> tasks;
    tasks.push_back(core::TaskDesc{"t1", 100.0, 120.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(core::TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    const core::TaskChain chain{std::move(tasks)};
    const core::Resources budget{1, 3};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::herad}).solution;
    ASSERT_FALSE(solution.empty());

    const auto config = small_config();
    dsim::FailureModel faults;
    faults.detection_us = 200.0;
    faults.delta_swap_us = 1000.0;
    faults.frame_swap_us = 100.0;
    faults.failures.push_back(dsim::SimFailure{500, 0}); // the big from stage 0

    const auto result = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    ASSERT_TRUE(result.schedulable);
    ASSERT_EQ(result.recoveries.size(), 1u);
    EXPECT_TRUE(result.recoveries[0].delta_applied) << "same cut: still delta-compatible";
    EXPECT_FALSE(result.recoveries[0].frame_swap_applied) << "rebound: not resize-only";
    EXPECT_DOUBLE_EQ(result.recoveries[0].downtime_us, 200.0 + 1000.0);
}

TEST(FailureSim, ThroughputDegradesAfterCoreLoss)
{
    const core::TaskChain chain = make_chain(6);
    const core::Resources budget{3, 2};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, budget, core::Strategy::herad}).solution;
    ASSERT_FALSE(solution.empty());

    const auto config = small_config();
    const double healthy = dsim::simulate(chain, solution, config).period_us;

    dsim::FailureModel faults;
    faults.failures.push_back(dsim::SimFailure{config.warmup_frames + 10, 0});
    const auto result = dsim::simulate_with_failures(chain, solution, budget, config, faults);
    ASSERT_TRUE(result.schedulable);
    EXPECT_GT(result.overall.period_us, 0.0);
    EXPECT_GE(result.overall.period_us, healthy * 0.99)
        << "running most of the stream on fewer cores cannot beat the healthy period";
}

} // namespace
