// dsim::simulate_admission: scripted scenarios with hand-computed
// timelines, and the determinism pin the whole overload model rests on --
// the simulator drives the *same* svc::AdmissionQueue and
// svc::CircuitBreaker the runtime uses, so a reproducible decision trace
// here pins the shared semantics (docs/FAULT_MODEL.md, "Overload model").

#include "dsim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace amp;
using dsim::AdmissionArrival;
using dsim::AdmissionDecision;
using dsim::AdmissionOutcome;
using dsim::AdmissionSimConfig;
using dsim::simulate_admission;

TEST(AdmissionSim, UnloadedServerServesEveryArrival)
{
    std::vector<AdmissionArrival> arrivals;
    for (int i = 0; i < 5; ++i)
        arrivals.push_back(AdmissionArrival{i * 100, 10});
    const auto result = simulate_admission(arrivals, {});
    ASSERT_EQ(result.decisions.size(), arrivals.size());
    EXPECT_EQ(result.served, 5u);
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        EXPECT_EQ(result.decisions[i].request, i);
        EXPECT_EQ(result.decisions[i].outcome, AdmissionOutcome::served);
        EXPECT_EQ(result.decisions[i].at_us, static_cast<std::int64_t>(i) * 100 + 10);
    }
}

TEST(AdmissionSim, DropOldestDisplacesTheQueuedVictim)
{
    AdmissionSimConfig config;
    config.admission = svc::AdmissionConfig{1, svc::ShedPolicy::drop_oldest};
    // A occupies the server until t=10; B queues; C displaces B at t=2.
    const std::vector<AdmissionArrival> arrivals = {
        {0, 10},
        {1, 10},
        {2, 10},
    };
    const auto result = simulate_admission(arrivals, config);
    const std::vector<AdmissionDecision> expected = {
        {0, AdmissionOutcome::served, 10},
        {1, AdmissionOutcome::displaced, 2},
        {2, AdmissionOutcome::served, 20},
    };
    EXPECT_EQ(result.decisions, expected);
    EXPECT_EQ(result.admission_stats.displaced, 1u);
}

TEST(AdmissionSim, PriorityAwareKeepsHighPriorityAndRejectsTies)
{
    AdmissionSimConfig config;
    config.admission = svc::AdmissionConfig{1, svc::ShedPolicy::priority_aware};
    const std::vector<AdmissionArrival> arrivals = {
        {0, 10, 0, 0},  // A: runs immediately
        {1, 10, 0, 0},  // B: queues at priority 0
        {2, 10, 0, 5},  // C: displaces B (strictly higher)
        {3, 10, 0, 5},  // D: ties with C -> the newcomer loses
    };
    const auto result = simulate_admission(arrivals, config);
    // Decision order is call order, not time order: A's completion (t=10)
    // is discovered while processing B's arrival, so it is recorded first.
    const std::vector<AdmissionDecision> expected = {
        {0, AdmissionOutcome::served, 10},
        {1, AdmissionOutcome::displaced, 2},
        {3, AdmissionOutcome::rejected_queue, 3},
        {2, AdmissionOutcome::served, 20},
    };
    EXPECT_EQ(result.decisions, expected);
}

TEST(AdmissionSim, DeadlineIsCheckedWhenTheServerPicksTheJobUp)
{
    const std::vector<AdmissionArrival> arrivals = {
        {0, 10},            // busy until t=10
        {1, 10, 5},         // deadline t=5 passes while queued
        {2, 10, 50},        // deadline t=50 is comfortably met
    };
    const auto result = simulate_admission(arrivals, {});
    const std::vector<AdmissionDecision> expected = {
        {0, AdmissionOutcome::served, 10},
        {1, AdmissionOutcome::deadline_exceeded, 10},
        {2, AdmissionOutcome::served, 20},
    };
    EXPECT_EQ(result.decisions, expected);
    EXPECT_EQ(result.deadline_exceeded, 1u);
}

TEST(AdmissionSim, BreakerTripsCoolsDownAndRecoversThroughAProbe)
{
    AdmissionSimConfig config;
    config.breaker = svc::BreakerConfig{1, 5'000, 1, 1}; // trips on 1 failure, 5us cooldown
    const std::vector<AdmissionArrival> arrivals = {
        {0, 2, 0, 0, true},  // fails at t=2: breaker opens
        {3, 2},              // picked up at t=3, inside the cooldown
        {10, 2},             // t=10: cooldown over, runs as the half-open probe
        {13, 2},             // breaker closed again
    };
    const auto result = simulate_admission(arrivals, config);
    const std::vector<AdmissionDecision> expected = {
        {0, AdmissionOutcome::failed, 2},
        {1, AdmissionOutcome::rejected_breaker, 3},
        {2, AdmissionOutcome::served, 12},
        {3, AdmissionOutcome::served, 15},
    };
    EXPECT_EQ(result.decisions, expected);
    EXPECT_EQ(result.breaker_trips, 1u);
    ASSERT_EQ(result.breaker_transitions.size(), 3u);
    EXPECT_EQ(result.breaker_transitions[0],
              (svc::BreakerTransition{svc::BreakerState::closed, svc::BreakerState::open, 2'000}));
    EXPECT_EQ(result.breaker_transitions[1],
              (svc::BreakerTransition{svc::BreakerState::open, svc::BreakerState::half_open,
                                      10'000}));
    EXPECT_EQ(result.breaker_transitions[2],
              (svc::BreakerTransition{svc::BreakerState::half_open, svc::BreakerState::closed,
                                      12'000}));
}

TEST(AdmissionSim, MultipleServersDrainInParallel)
{
    AdmissionSimConfig config;
    config.servers = 2;
    const std::vector<AdmissionArrival> arrivals = {
        {0, 10},
        {0, 10},
        {0, 10}, // waits for the first server to free up
    };
    const auto result = simulate_admission(arrivals, config);
    ASSERT_EQ(result.decisions.size(), 3u);
    EXPECT_EQ(result.decisions[0].at_us, 10);
    EXPECT_EQ(result.decisions[1].at_us, 10);
    EXPECT_EQ(result.decisions[2].at_us, 20);
    EXPECT_EQ(result.served, 3u);
}

/// Deterministic pseudo-burst workload covering every decision path:
/// bursts saturate the queue (rejections/displacements), some requests
/// fail (breaker trips and recoveries), some carry deadlines.
std::vector<AdmissionArrival> chaos_arrivals(int count)
{
    std::vector<AdmissionArrival> arrivals;
    arrivals.reserve(static_cast<std::size_t>(count));
    std::int64_t at = 0;
    for (int i = 0; i < count; ++i) {
        // Bursty arrivals: 8-packet bursts, then a short gap. The offered
        // load clearly exceeds two servers' capacity, so the admission
        // queue saturates and sheds.
        at += (i % 8 == 0) ? 20 : 1;
        AdmissionArrival arrival;
        arrival.at_us = at;
        arrival.service_us = 10 + (i * 7) % 13;
        arrival.priority = static_cast<std::int8_t>(i % 3);
        if (i % 5 == 2)
            arrival.deadline_us = at + 12;
        // Failures come in bursts of four so consecutive executed failures
        // (what trips the breaker) actually occur.
        arrival.fails = (i % 17) >= 5 && (i % 17) < 9;
        arrivals.push_back(arrival);
    }
    return arrivals;
}

TEST(AdmissionSim, EveryArrivalGetsExactlyOneDecision)
{
    AdmissionSimConfig config;
    config.admission = svc::AdmissionConfig{3, svc::ShedPolicy::priority_aware};
    config.breaker = svc::BreakerConfig{2, 40'000, 1, 1};
    config.servers = 2;
    const auto arrivals = chaos_arrivals(300);
    const auto result = simulate_admission(arrivals, config);

    ASSERT_EQ(result.decisions.size(), arrivals.size());
    std::vector<int> seen(arrivals.size(), 0);
    for (const auto& decision : result.decisions)
        ++seen.at(decision.request);
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "arrival " << i;
    EXPECT_EQ(result.served + result.failed + result.rejected_queue + result.displaced
                  + result.rejected_breaker + result.deadline_exceeded,
              arrivals.size());
    EXPECT_EQ(result.admission_stats.admitted + result.admission_stats.rejected,
              arrivals.size())
        << "every arrival passes the admission door exactly once";
    // The scenario is built to exercise every protection mechanism; if one
    // of these is zero the scenario silently stopped covering that path.
    EXPECT_GT(result.rejected_queue + result.displaced, 0u);
    EXPECT_GT(result.breaker_trips, 0u);
    EXPECT_GT(result.deadline_exceeded, 0u);
    EXPECT_GT(result.served, 0u);
}

// The pin the tentpole acceptance asks for: identical inputs produce
// identical decision traces and breaker transition logs, run after run.
TEST(AdmissionSim, TraceEqualityAcrossRepeatedRuns)
{
    AdmissionSimConfig config;
    config.admission = svc::AdmissionConfig{3, svc::ShedPolicy::priority_aware};
    config.breaker = svc::BreakerConfig{2, 40'000, 1, 2};
    config.servers = 3;
    const auto arrivals = chaos_arrivals(500);

    const auto first = simulate_admission(arrivals, config);
    const auto second = simulate_admission(arrivals, config);
    EXPECT_EQ(first.decisions, second.decisions);
    EXPECT_EQ(first.breaker_transitions, second.breaker_transitions);
    EXPECT_EQ(first.breaker_trips, second.breaker_trips);
    EXPECT_EQ(first.admission_stats.admitted, second.admission_stats.admitted);
    EXPECT_EQ(first.admission_stats.rejected, second.admission_stats.rejected);
    EXPECT_EQ(first.admission_stats.displaced, second.admission_stats.displaced);
}

// Cross-check: replaying the sim's own breaker transition log against a
// fresh CircuitBreaker fed the same outcome sequence must reproduce the
// exact same log -- the sim adds no hidden breaker state of its own.
TEST(AdmissionSim, BreakerLogReplaysAgainstAFreshBreaker)
{
    AdmissionSimConfig config;
    config.breaker = svc::BreakerConfig{1, 5'000, 1, 1};
    const std::vector<AdmissionArrival> arrivals = {
        {0, 2, 0, 0, true}, {3, 2}, {10, 2, 0, 0, true}, {20, 2}, {23, 2},
    };
    const auto result = simulate_admission(arrivals, config);

    svc::CircuitBreaker replay{config.breaker};
    for (const auto& decision : result.decisions) {
        const std::int64_t now = decision.at_us * 1000;
        switch (decision.outcome) {
        case AdmissionOutcome::served:
            ASSERT_TRUE(replay.allow((decision.at_us - arrivals[decision.request].service_us)
                                     * 1000));
            replay.on_success(now);
            break;
        case AdmissionOutcome::failed:
            ASSERT_TRUE(replay.allow((decision.at_us - arrivals[decision.request].service_us)
                                     * 1000));
            replay.on_failure(now);
            break;
        case AdmissionOutcome::rejected_breaker:
            EXPECT_FALSE(replay.allow(now));
            break;
        default:
            break;
        }
    }
    EXPECT_EQ(replay.transitions(), result.breaker_transitions);
    EXPECT_EQ(replay.trips(), result.breaker_trips);
}

} // namespace
