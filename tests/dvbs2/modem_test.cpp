#include "dvbs2/common/qpsk.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using amp::Rng;
using amp::dvbs2::QpskModem;

TEST(Qpsk, UnitEnergySymbols)
{
    const auto symbols = QpskModem::modulate({0, 0, 0, 1, 1, 0, 1, 1});
    ASSERT_EQ(symbols.size(), 4u);
    for (const auto& s : symbols)
        EXPECT_NEAR(std::norm(s), 1.0F, 1e-6);
}

TEST(Qpsk, GrayMappingComponents)
{
    const auto symbols = QpskModem::modulate({0, 0, 1, 1});
    EXPECT_GT(symbols[0].real(), 0.0F);
    EXPECT_GT(symbols[0].imag(), 0.0F);
    EXPECT_LT(symbols[1].real(), 0.0F);
    EXPECT_LT(symbols[1].imag(), 0.0F);
}

TEST(Qpsk, HardDecisionRoundTrip)
{
    Rng rng{1};
    std::vector<std::uint8_t> bits(2000);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    const auto symbols = QpskModem::modulate(bits);
    EXPECT_EQ(QpskModem::hard_decide(symbols), bits);
}

TEST(Qpsk, LlrSignMatchesBits)
{
    const std::vector<std::uint8_t> bits{0, 1, 1, 0};
    const auto symbols = QpskModem::modulate(bits);
    const auto llr = QpskModem::demodulate(symbols, 0.5F);
    ASSERT_EQ(llr.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] == 0)
            EXPECT_GT(llr[i], 0.0F) << "positive LLR means bit 0";
        else
            EXPECT_LT(llr[i], 0.0F);
    }
}

TEST(Qpsk, LlrMagnitudeScalesWithSnr)
{
    const auto symbols = QpskModem::modulate({0, 0});
    const auto high_noise = QpskModem::demodulate(symbols, 2.0F);
    const auto low_noise = QpskModem::demodulate(symbols, 0.1F);
    EXPECT_GT(std::fabs(low_noise[0]), std::fabs(high_noise[0]));
}

TEST(Qpsk, NoisyRoundTripAtHighSnr)
{
    Rng rng{2};
    std::vector<std::uint8_t> bits(2000);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    auto symbols = QpskModem::modulate(bits);
    const float sigma = 0.1F;
    for (auto& s : symbols)
        s += std::complex<float>{sigma * static_cast<float>(rng.normal()),
                                 sigma * static_cast<float>(rng.normal())};
    EXPECT_EQ(QpskModem::hard_decide(symbols), bits) << "no errors expected at 20 dB";
}

TEST(Qpsk, RejectsBadInput)
{
    EXPECT_THROW((void)QpskModem::modulate({0, 1, 0}), std::invalid_argument);
    EXPECT_THROW((void)QpskModem::demodulate({{1.0F, 0.0F}}, 0.0F), std::invalid_argument);
}

} // namespace
