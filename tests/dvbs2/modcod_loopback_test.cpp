// Symbol-level loopback across every supported MODCOD: payload -> BCH ->
// LDPC -> interleave -> modulate -> AWGN -> max-log demod -> LDPC -> BCH ->
// payload. (No carrier/timing impairments here; the full synchronizer chain
// is exercised by transceiver_test.cpp on the paper's QPSK configuration.)

#include "dvbs2/common/interleaver.hpp"
#include "dvbs2/common/psk.hpp"
#include "dvbs2/modcod.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::dvbs2;

class ModcodLoopback : public ::testing::TestWithParam<const char*> {};

TEST_P(ModcodLoopback, ErrorFreeAtWorkingSnr)
{
    const ModCod& modcod = modcod_by_name(GetParam());
    const ConstellationModem modem{modcod.modulation};
    const BlockInterleaver interleaver{modem.bits()};
    amp::Rng rng{0x10af ^ static_cast<std::uint64_t>(modcod.id)};

    // Random payload through the FEC cascade.
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(modcod.k_bch()));
    for (auto& bit : payload)
        bit = static_cast<std::uint8_t>(rng() & 1u);
    const auto coded = modcod.ldpc->encode(modcod.bch->encode(payload));
    auto symbols = modem.modulate(interleaver.interleave(coded));

    // AWGN at a comfortably error-free Es/N0 for rate 8/9: higher-order
    // modulations need more SNR.
    const float snr_db = modcod.modulation == Modulation::qpsk ? 10.0F
        : modcod.modulation == Modulation::psk8               ? 14.0F
                                                              : 17.0F;
    const float sigma2 = std::pow(10.0F, -snr_db / 10.0F);
    const float per_component = std::sqrt(sigma2 / 2.0F);
    for (auto& s : symbols)
        s += std::complex<float>{per_component * static_cast<float>(rng.normal()),
                                 per_component * static_cast<float>(rng.normal())};

    // Receive.
    const auto llrs = interleaver.deinterleave(modem.demodulate(symbols, sigma2));
    const auto ldpc_result = modcod.ldpc->decode(llrs);
    ASSERT_TRUE(ldpc_result.success) << modcod.name;
    std::vector<std::uint8_t> inner(ldpc_result.bits.begin(),
                                    ldpc_result.bits.begin() + modcod.ldpc->k());
    const auto bch_result = modcod.bch->decode(std::move(inner));
    ASSERT_TRUE(bch_result.success) << modcod.name;
    EXPECT_EQ(bch_result.message, payload) << modcod.name;
}

TEST_P(ModcodLoopback, FailsGracefullyAtVeryLowSnr)
{
    const ModCod& modcod = modcod_by_name(GetParam());
    if (modcod.frame_size == FrameSize::normal_frame)
        GTEST_SKIP() << "normal frames covered by the working-SNR case";
    const ConstellationModem modem{modcod.modulation};
    const BlockInterleaver interleaver{modem.bits()};
    amp::Rng rng{0xbad ^ static_cast<std::uint64_t>(modcod.id)};

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(modcod.k_bch()));
    for (auto& bit : payload)
        bit = static_cast<std::uint8_t>(rng() & 1u);
    const auto coded = modcod.ldpc->encode(modcod.bch->encode(payload));
    auto symbols = modem.modulate(interleaver.interleave(coded));
    const float sigma2 = 2.0F; // -3 dB: far below threshold for rate 8/9
    const float per_component = std::sqrt(sigma2 / 2.0F);
    for (auto& s : symbols)
        s += std::complex<float>{per_component * static_cast<float>(rng.normal()),
                                 per_component * static_cast<float>(rng.normal())};

    const auto llrs = interleaver.deinterleave(modem.demodulate(symbols, sigma2));
    const auto ldpc_result = modcod.ldpc->decode(llrs);
    EXPECT_FALSE(ldpc_result.success)
        << "decoder must FLAG failure rather than pretend success";
}

INSTANTIATE_TEST_SUITE_P(AllModcods, ModcodLoopback,
                         ::testing::Values("qpsk-8/9-short", "qpsk-8/9-normal",
                                           "8psk-8/9-short", "16apsk-8/9-short"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                             std::string name = info.param;
                             for (auto& c : name)
                                 if (c == '-' || c == '/')
                                     c = '_';
                             return name;
                         });

} // namespace
