#include "dvbs2/common/rrc_filter.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace amp::dvbs2;

std::vector<std::complex<float>> random_samples(std::size_t count, amp::Rng& rng)
{
    std::vector<std::complex<float>> samples(count);
    for (auto& s : samples)
        s = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
    return samples;
}

TEST(RrcTaps, UnitEnergyAndSymmetry)
{
    const auto taps = rrc_taps(0.2F, 2, 8);
    ASSERT_EQ(taps.size(), 33u);
    float energy = 0.0F;
    for (const auto t : taps)
        energy += t * t;
    EXPECT_NEAR(energy, 1.0F, 1e-5);
    for (std::size_t i = 0; i < taps.size(); ++i)
        EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-6) << "symmetric impulse response";
    EXPECT_GT(taps[16], taps[0]) << "peak at the center";
}

TEST(RrcTaps, CascadeIsApproximatelyNyquist)
{
    // RRC * RRC = raised cosine: zero ISI at symbol-spaced offsets.
    const int sps = 2;
    const auto taps = rrc_taps(0.2F, sps, 10);
    const int n = static_cast<int>(taps.size());
    std::vector<float> cascade(static_cast<std::size_t>(2 * n - 1), 0.0F);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            cascade[static_cast<std::size_t>(i + j)] += taps[static_cast<std::size_t>(i)]
                * taps[static_cast<std::size_t>(j)];
    const int center = n - 1;
    const float peak = cascade[static_cast<std::size_t>(center)];
    for (int k = 1; k <= 6; ++k) {
        const float isi = cascade[static_cast<std::size_t>(center + k * sps)];
        EXPECT_LT(std::fabs(isi / peak), 0.01F) << "ISI at symbol offset " << k;
    }
}

TEST(StreamingFir, MatchesBatchFiltering)
{
    amp::Rng rng{1};
    const auto taps = rrc_taps(0.25F, 2, 4);
    const auto input = random_samples(256, rng);

    StreamingFir batch{taps};
    const auto expected = batch.filter(input);

    StreamingFir streaming{taps};
    std::vector<std::complex<float>> actual;
    for (std::size_t start = 0; start < input.size();) {
        const std::size_t chunk = std::min<std::size_t>(start % 37 + 1, input.size() - start);
        const std::vector<std::complex<float>> block(input.begin() + static_cast<std::ptrdiff_t>(start),
                                                     input.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        const auto out = streaming.filter(block);
        actual.insert(actual.end(), out.begin(), out.end());
        start += chunk;
    }
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-5) << i;
        EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-5) << i;
    }
}

TEST(StreamingFir, ResetClearsHistory)
{
    const std::vector<float> taps{0.5F, 0.5F};
    StreamingFir fir{taps};
    (void)fir.filter({{2.0F, 0.0F}});
    fir.reset();
    const auto out = fir.filter({{2.0F, 0.0F}});
    EXPECT_NEAR(out[0].real(), 1.0F, 1e-6) << "no leftover history after reset";
}

TEST(SplitFir, TwoPartsEqualFullFilter)
{
    amp::Rng rng{2};
    const auto taps = rrc_taps(0.2F, 2, 8);
    const auto input_a = random_samples(500, rng);
    const auto input_b = random_samples(123, rng);

    StreamingFir full{taps};
    SplitFir split{taps};

    for (const auto& block : {input_a, input_b}) {
        const auto expected = full.filter(block);
        const auto partial = split.part1(block);
        const auto actual = split.part2(block, partial);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t i = 0; i < actual.size(); ++i) {
            EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-4) << i;
            EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-4) << i;
        }
    }
}

TEST(ShapingFilter, PreservesSymbolEnergyThroughMatchedFilter)
{
    // Shape a long random QPSK stream, match-filter it, and check the
    // symbol-instant samples recover the symbols (up to the filter delay).
    amp::Rng rng{3};
    const int sps = 2;
    const int span = 8;
    std::vector<std::complex<float>> symbols(400);
    const float inv_sqrt2 = 0.70710678F;
    for (auto& s : symbols)
        s = {rng.bernoulli(0.5) ? inv_sqrt2 : -inv_sqrt2,
             rng.bernoulli(0.5) ? inv_sqrt2 : -inv_sqrt2};

    ShapingFilter shaping{0.2F, sps, span};
    const auto shaped = shaping.shape(symbols);
    ASSERT_EQ(shaped.size(), symbols.size() * 2);

    StreamingFir matched{rrc_taps(0.2F, sps, span)};
    const auto filtered = matched.filter(shaped);

    // Total delay: 2 * (span * sps) samples; sample at symbol instants. The
    // cascade gain is sqrt(sps) (shaping scales impulses by sqrt(sps) and
    // the RRC pair has unit DC-tap energy).
    const int delay = 2 * span * sps;
    const float gain = std::sqrt(static_cast<float>(sps));
    int checked = 0;
    for (std::size_t k = 40; k + 40 < symbols.size(); ++k) {
        const std::size_t idx = k * 2 + static_cast<std::size_t>(delay);
        if (idx >= filtered.size())
            break;
        EXPECT_NEAR(filtered[idx].real(), gain * symbols[k].real(), 0.07F) << k;
        EXPECT_NEAR(filtered[idx].imag(), gain * symbols[k].imag(), 0.07F) << k;
        ++checked;
    }
    EXPECT_GT(checked, 100);
}

TEST(RrcTaps, RejectsBadParameters)
{
    EXPECT_THROW((void)rrc_taps(0.0F, 2, 8), std::invalid_argument);
    EXPECT_THROW((void)rrc_taps(1.5F, 2, 8), std::invalid_argument);
    EXPECT_THROW((void)rrc_taps(0.2F, 0, 8), std::invalid_argument);
    EXPECT_THROW(StreamingFir{std::vector<float>{}}, std::invalid_argument);
}

} // namespace
