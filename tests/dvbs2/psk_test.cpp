#include "dvbs2/common/psk.hpp"

#include "common/rng.hpp"
#include "dvbs2/common/qpsk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace {

using namespace amp::dvbs2;

class ModemSweep : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModemSweep, UnitAverageEnergy)
{
    const ConstellationModem modem{GetParam()};
    double energy = 0.0;
    for (const auto& point : modem.points())
        energy += std::norm(point);
    EXPECT_NEAR(energy / static_cast<double>(modem.points().size()), 1.0, 1e-5);
}

TEST_P(ModemSweep, PointsAreDistinct)
{
    const ConstellationModem modem{GetParam()};
    for (std::size_t i = 0; i < modem.points().size(); ++i)
        for (std::size_t j = i + 1; j < modem.points().size(); ++j)
            EXPECT_GT(std::norm(modem.points()[i] - modem.points()[j]), 1e-4);
}

TEST_P(ModemSweep, HardDecisionRoundTrip)
{
    const ConstellationModem modem{GetParam()};
    amp::Rng rng{0x9d};
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(modem.bits()) * 600);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    EXPECT_EQ(modem.hard_decide(modem.modulate(bits)), bits);
}

TEST_P(ModemSweep, NoisyHardDecisionsAtHighSnr)
{
    const ConstellationModem modem{GetParam()};
    amp::Rng rng{0x9e};
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(modem.bits()) * 2000);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    auto symbols = modem.modulate(bits);
    const float sigma = 0.03F; // ~30 dB
    for (auto& s : symbols)
        s += std::complex<float>{sigma * static_cast<float>(rng.normal()),
                                 sigma * static_cast<float>(rng.normal())};
    EXPECT_EQ(modem.hard_decide(symbols), bits);
}

TEST_P(ModemSweep, LlrSignsMatchTransmittedBits)
{
    const ConstellationModem modem{GetParam()};
    amp::Rng rng{0x9f};
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(modem.bits()) * 500);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    const auto llrs = modem.demodulate(modem.modulate(bits), 0.05F);
    ASSERT_EQ(llrs.size(), bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] == 0)
            EXPECT_GT(llrs[i], 0.0F) << i;
        else
            EXPECT_LT(llrs[i], 0.0F) << i;
    }
}

TEST_P(ModemSweep, GrayishNeighbourLabels)
{
    // For every constellation point, its nearest neighbour should differ in
    // few label bits (1 for true Gray mappings; <= 2 for 16APSK ring hops).
    const ConstellationModem modem{GetParam()};
    const auto& points = modem.points();
    for (std::size_t i = 0; i < points.size(); ++i) {
        float best = 1e9F;
        std::size_t nearest = i;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (j == i)
                continue;
            const float dist = std::norm(points[i] - points[j]);
            if (dist < best) {
                best = dist;
                nearest = j;
            }
        }
        const int differing = std::popcount(static_cast<unsigned>(i ^ nearest));
        EXPECT_LE(differing, 2) << "label " << i << " vs " << nearest;
    }
}

INSTANTIATE_TEST_SUITE_P(Modulations, ModemSweep,
                         ::testing::Values(Modulation::qpsk, Modulation::psk8,
                                           Modulation::apsk16),
                         [](const ::testing::TestParamInfo<Modulation>& info) {
                             return to_string(info.param);
                         });

TEST(ConstellationModem, QpskMatchesDedicatedModem)
{
    const ConstellationModem generic{Modulation::qpsk};
    amp::Rng rng{0xa0};
    std::vector<std::uint8_t> bits(400);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    const auto generic_symbols = generic.modulate(bits);
    const auto dedicated_symbols = QpskModem::modulate(bits);
    ASSERT_EQ(generic_symbols.size(), dedicated_symbols.size());
    for (std::size_t i = 0; i < generic_symbols.size(); ++i) {
        EXPECT_NEAR(generic_symbols[i].real(), dedicated_symbols[i].real(), 1e-6);
        EXPECT_NEAR(generic_symbols[i].imag(), dedicated_symbols[i].imag(), 1e-6);
    }
}

TEST(ConstellationModem, Apsk16RingRatio)
{
    const ConstellationModem modem{Modulation::apsk16, 3.15F};
    float min_radius = 10.0F;
    float max_radius = 0.0F;
    for (const auto& point : modem.points()) {
        min_radius = std::min(min_radius, std::abs(point));
        max_radius = std::max(max_radius, std::abs(point));
    }
    EXPECT_NEAR(max_radius / min_radius, 3.15F, 1e-3);
    EXPECT_THROW((ConstellationModem{Modulation::apsk16, 0.5F}), std::invalid_argument);
}

TEST(ConstellationModem, RejectsBadInput)
{
    const ConstellationModem modem{Modulation::psk8};
    EXPECT_THROW((void)modem.modulate({0, 1}), std::invalid_argument);
    EXPECT_THROW((void)modem.demodulate({{1.0F, 0.0F}}, 0.0F), std::invalid_argument);
}

TEST(Modulation, Helpers)
{
    EXPECT_EQ(bits_per_symbol(Modulation::qpsk), 2);
    EXPECT_EQ(bits_per_symbol(Modulation::psk8), 3);
    EXPECT_EQ(bits_per_symbol(Modulation::apsk16), 4);
    EXPECT_STREQ(to_string(Modulation::psk8), "8PSK");
}

} // namespace
