#include "dvbs2/common/crc.hpp"
#include "dvbs2/modcod.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::dvbs2;

TEST(Crc8, DetectsSingleBitFlips)
{
    amp::Rng rng{1};
    const Crc8 crc;
    std::vector<std::uint8_t> bits(80);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    crc.append(bits);
    EXPECT_TRUE(crc.check(bits));
    for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] ^= 1u;
        EXPECT_FALSE(crc.check(bits)) << "flip at " << i;
        bits[i] ^= 1u;
    }
}

TEST(Crc8, DetectsBurstsUpTo8Bits)
{
    amp::Rng rng{2};
    const Crc8 crc;
    for (int burst = 2; burst <= 8; ++burst) {
        std::vector<std::uint8_t> bits(72);
        for (auto& b : bits)
            b = static_cast<std::uint8_t>(rng() & 1u);
        crc.append(bits);
        const auto start = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(bits.size()) - burst));
        for (int j = 0; j < burst; ++j)
            bits[start + static_cast<std::size_t>(j)] ^= 1u;
        EXPECT_FALSE(crc.check(bits)) << "burst length " << burst;
    }
}

TEST(Crc8, EmptyAndShortInputs)
{
    const Crc8 crc;
    EXPECT_EQ(crc.compute({}), 0);
    EXPECT_FALSE(crc.check({1, 0, 1}));
    EXPECT_THROW((void)crc.compute({1, 0}, 1, 5), std::out_of_range);
}

TEST(Crc8, AppendCheckRoundTripManyLengths)
{
    amp::Rng rng{3};
    const Crc8 crc;
    for (const int length : {1, 7, 8, 9, 63, 80, 512}) {
        std::vector<std::uint8_t> bits(static_cast<std::size_t>(length));
        for (auto& b : bits)
            b = static_cast<std::uint8_t>(rng() & 1u);
        crc.append(bits);
        EXPECT_TRUE(crc.check(bits)) << "length " << length;
    }
}

TEST(ModCod, RegistryIsConsistent)
{
    const auto& modcods = supported_modcods();
    ASSERT_GE(modcods.size(), 4u);
    for (const auto& modcod : modcods) {
        ASSERT_NE(modcod.bch, nullptr) << modcod.name;
        ASSERT_NE(modcod.ldpc, nullptr) << modcod.name;
        EXPECT_EQ(modcod.bch->n(), modcod.ldpc->k())
            << modcod.name << ": BCH codewords must fill the LDPC info part";
        EXPECT_EQ(modcod.n_ldpc() % bits_per_symbol(modcod.modulation), 0) << modcod.name;
        EXPECT_GT(modcod.efficiency(), 0.0);
    }
}

TEST(ModCod, PaperConfigurationIsFirst)
{
    const auto& paper = supported_modcods().front();
    EXPECT_EQ(paper.name, "qpsk-8/9-short");
    EXPECT_EQ(paper.k_bch(), 14232);
    EXPECT_EQ(paper.n_ldpc(), 16200);
    EXPECT_EQ(paper.symbols_per_frame(), 8100);
    EXPECT_NEAR(paper.efficiency(), 14232.0 / 8100.0, 1e-9);
}

TEST(ModCod, NormalFramesAreSupported)
{
    const auto& normal = modcod_by_name("qpsk-8/9-normal");
    EXPECT_EQ(normal.n_ldpc(), 64800);
    EXPECT_EQ(normal.k_bch(), 57472);
    EXPECT_EQ(normal.bch->t(), 8);
}

TEST(ModCod, HigherOrderModulationsPackMoreBits)
{
    const auto& qpsk = modcod_by_name("qpsk-8/9-short");
    const auto& psk8 = modcod_by_name("8psk-8/9-short");
    const auto& apsk = modcod_by_name("16apsk-8/9-short");
    EXPECT_GT(psk8.efficiency(), qpsk.efficiency());
    EXPECT_GT(apsk.efficiency(), psk8.efficiency());
    EXPECT_THROW((void)modcod_by_name("256qam"), std::invalid_argument);
}

TEST(ModCod, NormalFrameFecRoundTrip)
{
    // End-to-end through the normal-frame BCH + LDPC cascade.
    amp::Rng rng{4};
    const auto& modcod = modcod_by_name("qpsk-8/9-normal");
    std::vector<std::uint8_t> message(static_cast<std::size_t>(modcod.k_bch()));
    for (auto& b : message)
        b = static_cast<std::uint8_t>(rng() & 1u);
    const auto bch_word = modcod.bch->encode(message);
    const auto ldpc_word = modcod.ldpc->encode(bch_word);
    ASSERT_TRUE(modcod.ldpc->check(ldpc_word));

    std::vector<float> llr(ldpc_word.size());
    for (std::size_t i = 0; i < ldpc_word.size(); ++i) {
        const float symbol = ldpc_word[i] ? -1.0F : 1.0F;
        llr[i] = 2.0F * (symbol + 0.42F * static_cast<float>(rng.normal())) / 0.18F;
    }
    const auto ldpc_result = modcod.ldpc->decode(llr);
    ASSERT_TRUE(ldpc_result.success);
    std::vector<std::uint8_t> inner(ldpc_result.bits.begin(),
                                    ldpc_result.bits.begin() + modcod.ldpc->k());
    const auto bch_result = modcod.bch->decode(std::move(inner));
    ASSERT_TRUE(bch_result.success);
    EXPECT_EQ(bch_result.message, message);
}

} // namespace
