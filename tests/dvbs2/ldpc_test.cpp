#include "dvbs2/fec/ldpc.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using amp::Rng;
using amp::dvbs2::LdpcCode;

std::vector<std::uint8_t> random_bits(int count, Rng& rng)
{
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(count));
    for (auto& bit : bits)
        bit = static_cast<std::uint8_t>(rng() & 1u);
    return bits;
}

/// BPSK-over-AWGN LLRs for a codeword at the given noise sigma.
std::vector<float> noisy_llrs(const std::vector<std::uint8_t>& word, float sigma, Rng& rng)
{
    std::vector<float> llr(word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
        const float symbol = word[i] ? -1.0F : 1.0F;
        const float received = symbol + sigma * static_cast<float>(rng.normal());
        llr[i] = 2.0F * received / (sigma * sigma);
    }
    return llr;
}

const LdpcCode& small_code()
{
    static const LdpcCode code{512, 384, 3, 0x5eed};
    return code;
}

TEST(Ldpc, EncodedWordSatisfiesAllChecks)
{
    Rng rng{1};
    for (int trial = 0; trial < 5; ++trial) {
        const auto word = small_code().encode(random_bits(small_code().k(), rng));
        EXPECT_TRUE(small_code().check(word));
    }
}

TEST(Ldpc, CorruptedWordFailsCheck)
{
    Rng rng{2};
    auto word = small_code().encode(random_bits(small_code().k(), rng));
    word[100] ^= 1u;
    EXPECT_FALSE(small_code().check(word));
}

TEST(Ldpc, EncodeIsSystematic)
{
    Rng rng{3};
    const auto message = random_bits(small_code().k(), rng);
    const auto word = small_code().encode(message);
    for (int i = 0; i < small_code().k(); ++i)
        EXPECT_EQ(word[static_cast<std::size_t>(i)], message[static_cast<std::size_t>(i)]);
}

TEST(Ldpc, DecodesCleanChannel)
{
    Rng rng{4};
    const auto message = random_bits(small_code().k(), rng);
    const auto word = small_code().encode(message);
    std::vector<float> llr(word.size());
    for (std::size_t i = 0; i < word.size(); ++i)
        llr[i] = word[i] ? -10.0F : 10.0F;
    const auto result = small_code().decode(llr);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.iterations, 1) << "early stop after the first pass";
    for (int i = 0; i < small_code().n(); ++i)
        EXPECT_EQ(result.bits[static_cast<std::size_t>(i)], word[static_cast<std::size_t>(i)]);
}

TEST(Ldpc, CorrectsAwgnNoiseAtWorkingSnr)
{
    Rng rng{5};
    int successes = 0;
    constexpr int kTrials = 10;
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto message = random_bits(small_code().k(), rng);
        const auto word = small_code().encode(message);
        const auto llr = noisy_llrs(word, 0.5F, rng); // ~6 dB Eb/N0 region
        const auto result = small_code().decode(llr);
        if (!result.success)
            continue;
        bool info_ok = true;
        for (int i = 0; i < small_code().k(); ++i)
            info_ok &= result.bits[static_cast<std::size_t>(i)]
                == message[static_cast<std::size_t>(i)];
        successes += info_ok ? 1 : 0;
    }
    EXPECT_GE(successes, kTrials - 1) << "high-SNR decoding should almost always succeed";
}

TEST(Ldpc, EarlyStopSavesIterations)
{
    Rng rng{6};
    const auto word = small_code().encode(random_bits(small_code().k(), rng));
    const auto llr = noisy_llrs(word, 0.4F, rng);
    LdpcCode::DecodeConfig with_stop;
    with_stop.early_stop = true;
    LdpcCode::DecodeConfig without_stop;
    without_stop.early_stop = false;
    const auto stopped = small_code().decode(llr, with_stop);
    const auto full = small_code().decode(llr, without_stop);
    EXPECT_TRUE(stopped.success);
    EXPECT_TRUE(full.success);
    EXPECT_LT(stopped.iterations, full.iterations);
    EXPECT_EQ(full.iterations, 10);
}

TEST(Ldpc, Dvbs2ShortCodeGeometry)
{
    const auto& code = LdpcCode::dvbs2_short_8_9();
    EXPECT_EQ(code.n(), 16200);
    EXPECT_EQ(code.k(), 14400);
    EXPECT_EQ(code.m(), 1800);
    // eIRA edge count: K * 3 info edges + (2M - 1) accumulator edges.
    EXPECT_EQ(code.edge_count(), 14400 * 3 + 2 * 1800 - 1);
}

TEST(Ldpc, Dvbs2ShortCodeRoundTrip)
{
    Rng rng{7};
    const auto& code = LdpcCode::dvbs2_short_8_9();
    const auto message = random_bits(code.k(), rng);
    const auto word = code.encode(message);
    ASSERT_TRUE(code.check(word));
    const auto llr = noisy_llrs(word, 0.45F, rng);
    const auto result = code.decode(llr);
    EXPECT_TRUE(result.success);
    for (int i = 0; i < code.k(); ++i)
        ASSERT_EQ(result.bits[static_cast<std::size_t>(i)], message[static_cast<std::size_t>(i)])
            << "info bit " << i;
}

TEST(Ldpc, RejectsBadInputs)
{
    EXPECT_THROW((LdpcCode{100, 100, 3}), std::invalid_argument);
    EXPECT_THROW((LdpcCode{100, 80, 1}), std::invalid_argument);
    EXPECT_THROW((void)small_code().encode(std::vector<std::uint8_t>(3)),
                 std::invalid_argument);
    EXPECT_THROW((void)small_code().decode(std::vector<float>(3)), std::invalid_argument);
}

} // namespace
