#include "dvbs2/common/interleaver.hpp"
#include "dvbs2/common/pilots.hpp"
#include "dvbs2/common/plh_framer.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace amp::dvbs2;

TEST(PlhFramer, SofIs26UnitSymbols)
{
    const auto& sof = PlhFramer::sof_symbols();
    ASSERT_EQ(sof.size(), 26u);
    for (const auto& s : sof)
        EXPECT_NEAR(std::norm(s), 1.0F, 1e-6);
}

TEST(PlhFramer, PlsCodewordsAreDistant)
{
    // Any two distinct PLS fields must differ in at least 16 of 64 bits
    // (biorthogonal construction: minimum distance 32 for the RM part).
    const auto a = PlhFramer::encode_pls(0b0010101);
    const auto b = PlhFramer::encode_pls(0b0010100);
    const auto c = PlhFramer::encode_pls(0b1110101);
    auto distance = [](const auto& x, const auto& y) {
        int d = 0;
        for (std::size_t i = 0; i < x.size(); ++i)
            d += x[i] != y[i];
        return d;
    };
    EXPECT_GE(distance(a, b), 16);
    EXPECT_GE(distance(a, c), 16);
}

TEST(PlhFramer, PlsDecodeRecoversField)
{
    for (int pls = 0; pls < 128; pls += 11) {
        const auto header = PlhFramer::build_header(static_cast<std::uint8_t>(pls));
        const std::vector<std::complex<float>> plsc(header.begin() + PlhFramer::kSofBits,
                                                    header.end());
        EXPECT_EQ(PlhFramer::decode_pls(plsc), pls);
    }
}

TEST(PlhFramer, PlsDecodeSurvivesNoise)
{
    amp::Rng rng{3};
    const auto header = PlhFramer::build_header(0b0010110);
    std::vector<std::complex<float>> plsc(header.begin() + PlhFramer::kSofBits, header.end());
    for (auto& s : plsc)
        s += std::complex<float>{0.3F * static_cast<float>(rng.normal()),
                                 0.3F * static_cast<float>(rng.normal())};
    EXPECT_EQ(PlhFramer::decode_pls(plsc), 0b0010110);
}

TEST(PlhFramer, InsertRemoveRoundTrip)
{
    std::vector<std::complex<float>> payload(100, {0.5F, -0.5F});
    const auto frame = PlhFramer::insert(0x2a, payload);
    EXPECT_EQ(frame.size(), payload.size() + 90u);
    const auto recovered = PlhFramer::remove(frame);
    EXPECT_EQ(recovered, payload);
    EXPECT_THROW((void)PlhFramer::remove(std::vector<std::complex<float>>(50)),
                 std::invalid_argument);
}

TEST(Pilots, LayoutGeometryMatchesPaperConfiguration)
{
    const PilotLayout layout{8100, 36, 1440};
    EXPECT_EQ(layout.block_count(), 5);
    EXPECT_EQ(layout.pilot_symbols(), 180);
    EXPECT_EQ(layout.total_symbols(), 8280);
    const auto offsets = pilot_block_offsets(layout);
    ASSERT_EQ(offsets.size(), 5u);
    EXPECT_EQ(offsets[0], 1440);
    EXPECT_EQ(offsets[1], 1440 * 2 + 36);
    EXPECT_EQ(offsets[4], 1440 * 5 + 36 * 4);
}

TEST(Pilots, InsertRemoveRoundTrip)
{
    amp::Rng rng{4};
    const PilotLayout layout{8100, 36, 1440};
    std::vector<std::complex<float>> payload(8100);
    for (auto& s : payload)
        s = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
    const auto with_pilots = insert_pilots(payload, layout);
    ASSERT_EQ(static_cast<int>(with_pilots.size()), layout.total_symbols());
    // Pilot positions carry the pilot symbol.
    for (const int offset : pilot_block_offsets(layout))
        for (int j = 0; j < layout.block_symbols; ++j)
            EXPECT_EQ(with_pilots[static_cast<std::size_t>(offset + j)], pilot_symbol());
    EXPECT_EQ(remove_pilots(with_pilots, layout), payload);
}

TEST(Pilots, NoTrailingBlockWhenPayloadDividesEvenly)
{
    const PilotLayout layout{2880, 36, 1440};
    EXPECT_EQ(layout.block_count(), 1) << "no pilot block after the last section";
}

TEST(Interleaver, RoundTripBits)
{
    amp::Rng rng{5};
    std::vector<std::uint8_t> bits(16200);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    const BlockInterleaver interleaver{2};
    EXPECT_EQ(interleaver.deinterleave(interleaver.interleave(bits)), bits);
}

TEST(Interleaver, RoundTripLlrsWithThreeColumns)
{
    std::vector<float> llrs(90);
    std::iota(llrs.begin(), llrs.end(), 0.0F);
    const BlockInterleaver interleaver{3};
    EXPECT_EQ(interleaver.deinterleave(interleaver.interleave(llrs)), llrs);
}

TEST(Interleaver, ActuallyPermutes)
{
    std::vector<int> data(10);
    std::iota(data.begin(), data.end(), 0);
    const BlockInterleaver interleaver{2};
    const auto out = interleaver.interleave(data);
    EXPECT_EQ(out, (std::vector<int>{0, 2, 4, 6, 8, 1, 3, 5, 7, 9}));
}

TEST(Interleaver, RejectsBadSizes)
{
    const BlockInterleaver interleaver{3};
    EXPECT_THROW((void)interleaver.interleave(std::vector<int>(10)), std::invalid_argument);
    EXPECT_THROW(BlockInterleaver{0}, std::invalid_argument);
}

} // namespace
