#include "dvbs2/tx/transmitter.hpp"

#include "dvbs2/common/pilots.hpp"
#include "dvbs2/common/pl_scrambler.hpp"
#include "dvbs2/common/plh_framer.hpp"
#include "dvbs2/tx/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

namespace {

using namespace amp::dvbs2;

TEST(Transmitter, FrameSymbolsHaveTheRightGeometry)
{
    FrameParams params;
    const Transmitter tx{params, 0xdada};
    const auto frame = tx.frame_symbols(0);
    EXPECT_EQ(static_cast<int>(frame.size()), params.plframe_symbols()); // 8370
    // The header is unscrambled: the SOF must appear verbatim.
    const auto& sof = PlhFramer::sof_symbols();
    for (std::size_t j = 0; j < sof.size(); ++j) {
        EXPECT_NEAR(frame[j].real(), sof[j].real(), 1e-6);
        EXPECT_NEAR(frame[j].imag(), sof[j].imag(), 1e-6);
    }
}

TEST(Transmitter, PayloadIsScrambled)
{
    FrameParams params;
    const Transmitter tx{params, 0xdada};
    auto frame = tx.frame_symbols(3);
    // Descrambling the non-header part must reveal the pilot symbols at
    // their layout positions.
    std::vector<std::complex<float>> body(frame.begin() + params.header_symbols(),
                                          frame.end());
    PlScrambler::descramble(body);
    const PilotLayout layout{params.xfec_symbols(), params.pilot_block_symbols,
                             params.payload_per_pilot_block};
    for (const int offset : pilot_block_offsets(layout))
        for (int j = 0; j < 4; ++j) {
            EXPECT_NEAR(body[static_cast<std::size_t>(offset + j)].real(),
                        pilot_symbol().real(), 1e-5);
            EXPECT_NEAR(body[static_cast<std::size_t>(offset + j)].imag(),
                        pilot_symbol().imag(), 1e-5);
        }
}

TEST(Transmitter, DifferentFramesDifferentPayloads)
{
    FrameParams params;
    const Transmitter tx{params, 0xdada};
    const auto a = tx.frame_symbols(0);
    const auto b = tx.frame_symbols(1);
    int differing = 0;
    for (std::size_t i = 200; i < a.size(); ++i)
        differing += std::norm(a[i] - b[i]) > 1e-6 ? 1 : 0;
    EXPECT_GT(differing, 1000);
}

TEST(Transmitter, SampleStreamIsContinuous)
{
    FrameParams params;
    Transmitter tx{params, 0xdada};
    const auto first = tx.next_frame_samples();
    const auto second = tx.next_frame_samples();
    EXPECT_EQ(static_cast<int>(first.size()), params.plframe_samples());
    EXPECT_EQ(static_cast<int>(second.size()), params.plframe_samples());
    EXPECT_EQ(tx.frames_sent(), 2u);
}

TEST(Channel, AppliesGainAndPhase)
{
    ChannelConfig config;
    config.gain = 0.5F;
    config.cfo_cycles_per_sample = 0.0;
    config.phase_offset_rad = std::numbers::pi / 2.0;
    config.fractional_delay = 0.0;
    config.integer_delay = 0;
    config.snr_db = 200.0; // effectively noiseless
    Channel channel{config};
    const auto out = channel.apply({{1.0F, 0.0F}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].real(), 0.0F, 1e-4);
    EXPECT_NEAR(out[0].imag(), 0.5F, 1e-4);
}

TEST(Channel, IntegerDelayShiftsTheStream)
{
    ChannelConfig config;
    config.gain = 1.0F;
    config.cfo_cycles_per_sample = 0.0;
    config.phase_offset_rad = 0.0;
    config.fractional_delay = 0.0;
    config.integer_delay = 3;
    config.snr_db = 200.0;
    Channel channel{config};
    const auto out = channel.apply({{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}});
    ASSERT_EQ(out.size(), 5u);
    EXPECT_NEAR(out[0].real(), 0.0F, 1e-5) << "delay line starts empty";
    EXPECT_NEAR(out[3].real(), 1.0F, 1e-5);
    EXPECT_NEAR(out[4].real(), 2.0F, 1e-5);
}

TEST(Channel, CfoRotatesProgressively)
{
    ChannelConfig config;
    config.gain = 1.0F;
    config.cfo_cycles_per_sample = 0.25; // quarter turn per sample
    config.phase_offset_rad = 0.0;
    config.fractional_delay = 0.0;
    config.integer_delay = 0;
    config.snr_db = 200.0;
    Channel channel{config};
    const auto out = channel.apply({{1, 0}, {1, 0}, {1, 0}, {1, 0}});
    EXPECT_NEAR(out[0].real(), 1.0F, 1e-4);
    EXPECT_NEAR(out[1].imag(), 1.0F, 1e-4);
    EXPECT_NEAR(out[2].real(), -1.0F, 1e-4);
    EXPECT_NEAR(out[3].imag(), -1.0F, 1e-4);
}

TEST(Channel, NoiseLevelTracksSnr)
{
    ChannelConfig config;
    config.gain = 1.0F;
    config.cfo_cycles_per_sample = 0.0;
    config.phase_offset_rad = 0.0;
    config.fractional_delay = 0.0;
    config.integer_delay = 0;
    config.snr_db = 10.0;
    Channel channel{config};
    std::vector<std::complex<float>> input(20000, {1.0F, 0.0F});
    const auto out = channel.apply(input);
    double noise_power = 0.0;
    for (std::size_t i = 5000; i < out.size(); ++i) // after power-estimate settles
        noise_power += std::norm(out[i] - std::complex<float>{1.0F, 0.0F});
    noise_power /= static_cast<double>(out.size() - 5000);
    EXPECT_NEAR(noise_power, 0.1, 0.02) << "10 dB SNR => noise power 0.1";
}

TEST(Channel, DeterministicForSeed)
{
    ChannelConfig config;
    Channel a{config};
    Channel b{config};
    const std::vector<std::complex<float>> input(64, {1.0F, 0.5F});
    const auto out_a = a.apply(input);
    const auto out_b = b.apply(input);
    for (std::size_t i = 0; i < input.size(); ++i)
        EXPECT_EQ(out_a[i], out_b[i]);
}

TEST(ReferencePayload, RejectsTinyFrames)
{
    EXPECT_THROW((void)reference_payload(32, 1, 0), std::invalid_argument);
    EXPECT_THROW((void)extract_frame_index(std::vector<std::uint8_t>(10)),
                 std::invalid_argument);
}

} // namespace
