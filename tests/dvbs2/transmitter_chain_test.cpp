#include "dvbs2/transmitter_chain.hpp"

#include "core/scheduler.hpp"
#include "dvbs2/tx/transmitter.hpp"
#include "rt/pipeline.hpp"
#include "rt/profiler.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::dvbs2;

TEST(TransmitterChain, HasTenTasksWithDeclaredFlags)
{
    FrameParams params;
    const auto chain = build_transmitter_chain(params, 0xdada);
    ASSERT_EQ(chain.sequence.size(), 10);
    const auto& names = transmitter_task_names();
    const auto& replicable = transmitter_task_replicable();
    for (int i = 1; i <= 10; ++i) {
        EXPECT_EQ(chain.sequence.task(i).name(), names[static_cast<std::size_t>(i - 1)]);
        EXPECT_EQ(chain.sequence.task(i).replicable(),
                  replicable[static_cast<std::size_t>(i - 1)])
            << names[static_cast<std::size_t>(i - 1)];
    }
}

TEST(TransmitterChain, MatchesMonolithicTransmitter)
{
    // The chain must emit sample-for-sample the same stream as the
    // Transmitter class used by the Radio.
    FrameParams params;
    Transmitter reference{params, 0xdada};
    auto chain = build_transmitter_chain(params, 0xdada, /*collect_samples=*/true);

    for (std::uint64_t f = 0; f < 3; ++f) {
        const auto expected = reference.next_frame_samples();
        TxFrame frame;
        frame.seq = f;
        for (int t = 1; t <= chain.sequence.size(); ++t)
            chain.sequence.task(t).process(frame);
        ASSERT_EQ(frame.samples.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            ASSERT_NEAR(frame.samples[i].real(), expected[i].real(), 1e-5) << i;
            ASSERT_NEAR(frame.samples[i].imag(), expected[i].imag(), 1e-5) << i;
        }
    }
}

TEST(TransmitterChain, RunsPipelinedWithReplicatedMiddle)
{
    FrameParams params;
    auto chain = build_transmitter_chain(params, 0x77);
    // Stage split along the replicability boundaries: source | 2..8 x3 | 9..10.
    const amp::core::Solution solution{{
        amp::core::Stage{1, 1, 1, amp::core::CoreType::big},
        amp::core::Stage{2, 8, 3, amp::core::CoreType::big},
        amp::core::Stage{9, 10, 1, amp::core::CoreType::little},
    }};
    amp::rt::Pipeline<TxFrame> pipeline{chain.sequence, solution};
    const auto result = pipeline.run(6);
    EXPECT_EQ(result.frames, 6u);
    EXPECT_EQ(chain.sink->samples_sent(),
              6u * static_cast<std::uint64_t>(params.plframe_samples()));
    EXPECT_GT(chain.sink->energy(), 0.0);
}

TEST(TransmitterChain, PipelinedStreamMatchesSequentialChecksum)
{
    FrameParams params;
    auto sequential = build_transmitter_chain(params, 0x99);
    {
        TxFrame frame;
        for (std::uint64_t f = 0; f < 5; ++f) {
            frame = TxFrame{};
            frame.seq = f;
            for (int t = 1; t <= sequential.sequence.size(); ++t)
                sequential.sequence.task(t).process(frame);
        }
    }
    auto pipelined = build_transmitter_chain(params, 0x99);
    const amp::core::Solution solution{{
        amp::core::Stage{1, 1, 1, amp::core::CoreType::big},
        amp::core::Stage{2, 8, 2, amp::core::CoreType::big},
        amp::core::Stage{9, 10, 1, amp::core::CoreType::big},
    }};
    amp::rt::Pipeline<TxFrame> pipeline{pipelined.sequence, solution};
    (void)pipeline.run(5);
    EXPECT_EQ(pipelined.sink->samples_sent(), sequential.sink->samples_sent());
    EXPECT_NEAR(pipelined.sink->energy(), sequential.sink->energy(), 1e-3);
}

TEST(TransmitterChain, SchedulableFromItsOwnProfile)
{
    FrameParams params;
    auto chain = build_transmitter_chain(params, 0x42);
    const auto profile = amp::rt::profile_sequence(chain.sequence, 3, 1);
    const auto core_chain = amp::rt::to_scheduler_chain(chain.sequence, profile,
                                                        std::vector<double>(10, 2.0));
    const auto solution = amp::core::schedule(amp::core::ScheduleRequest{
                                                  core_chain, {3, 3}, amp::core::Strategy::herad})
                              .solution;
    ASSERT_FALSE(solution.empty());
    EXPECT_TRUE(solution.is_well_formed(core_chain));
    amp::rt::Pipeline<TxFrame> pipeline{chain.sequence, solution};
    EXPECT_EQ(pipeline.run(4).frames, 4u);
}

} // namespace
