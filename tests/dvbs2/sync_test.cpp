#include "dvbs2/rx/agc.hpp"
#include "dvbs2/rx/frame_sync.hpp"
#include "dvbs2/rx/freq_coarse.hpp"
#include "dvbs2/rx/freq_fine.hpp"
#include "dvbs2/rx/noise_estimator.hpp"
#include "dvbs2/rx/timing.hpp"

#include "common/rng.hpp"
#include "dvbs2/common/pilots.hpp"
#include "dvbs2/common/plh_framer.hpp"
#include "dvbs2/common/qpsk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace {

using namespace amp::dvbs2;

std::vector<std::complex<float>> random_qpsk(std::size_t count, amp::Rng& rng)
{
    std::vector<std::uint8_t> bits(count * 2);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    return QpskModem::modulate(bits);
}

TEST(Agc, NormalizesRms)
{
    Agc agc{1.0F};
    amp::Rng rng{1};
    for (int block = 0; block < 10; ++block) {
        auto samples = random_qpsk(1000, rng);
        for (auto& s : samples)
            s *= 0.25F;
        agc.apply(samples);
    }
    auto samples = random_qpsk(1000, rng);
    for (auto& s : samples)
        s *= 0.25F;
    agc.apply(samples);
    double power = 0.0;
    for (const auto& s : samples)
        power += std::norm(s);
    EXPECT_NEAR(power / 1000.0, 1.0, 0.05);
}

TEST(Agc, EmptyBlockIsNoop)
{
    Agc agc;
    std::vector<std::complex<float>> empty;
    agc.apply(empty);
    EXPECT_TRUE(empty.empty());
}

TEST(CoarseFreq, EstimatesAndRemovesOffset)
{
    amp::Rng rng{2};
    CoarseFreqSync sync;
    const double cfo = 4e-4; // cycles per sample
    double phase = 0.0;
    std::vector<std::complex<float>> clean_tail;
    std::vector<std::complex<float>> corrected_tail;
    for (int block = 0; block < 30; ++block) {
        auto symbols = random_qpsk(2000, rng);
        const auto clean = symbols;
        for (auto& s : symbols) {
            const auto rot = std::complex<float>{static_cast<float>(std::cos(phase)),
                                                 static_cast<float>(std::sin(phase))};
            s *= rot;
            phase += 2.0 * std::numbers::pi * cfo;
        }
        sync.synchronize(symbols);
        if (block == 29) {
            clean_tail = clean;
            corrected_tail = symbols;
        }
    }
    EXPECT_NEAR(sync.estimate(), cfo, 1e-4) << "estimate converges near the true CFO";
    // After convergence, the corrected block should match the clean block
    // coherently up to a fixed phase (the uncorrected drift across the
    // block would be 2*pi*cfo*2000 ~ 5 rad and would destroy coherence).
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t i = 0; i < corrected_tail.size(); ++i) {
        const std::complex<double> r{corrected_tail[i].real(), corrected_tail[i].imag()};
        const std::complex<double> c{clean_tail[i].real(), clean_tail[i].imag()};
        acc += r * std::conj(c);
    }
    EXPECT_GT(std::abs(acc) / corrected_tail.size(), 0.8)
        << "corrected block coherently matches the clean block up to a fixed phase";
}

TEST(Timing, RecoversFractionalDelay)
{
    // Build a 2-sps signal with a half-sample-ish fractional delay by
    // interpolating an oversampled reference, then check the loop locks and
    // the extracted symbols match the transmitted ones.
    amp::Rng rng{3};
    const std::size_t count = 4000;
    const auto symbols = random_qpsk(count, rng);

    // 2 sps "received" stream with fractional delay 0.35 samples: linear
    // interpolation of a rectangular-pulse stream (adequate at high SNR for
    // a timing test without shaping).
    std::vector<std::complex<float>> stream(count * 2);
    for (std::size_t i = 0; i < count; ++i) {
        stream[2 * i] = symbols[i];
        stream[2 * i + 1] = symbols[i];
    }
    const float mu = 0.35F;
    std::vector<std::complex<float>> delayed(stream.size());
    delayed[0] = stream[0];
    for (std::size_t i = 1; i < stream.size(); ++i)
        delayed[i] = (1.0F - mu) * stream[i] + mu * stream[i - 1];

    TimingSync timing;
    SymbolExtractor extractor;
    std::vector<std::complex<float>> recovered;
    for (std::size_t start = 0; start < delayed.size(); start += 1000) {
        const std::size_t end = std::min(start + 1000, delayed.size());
        const std::vector<std::complex<float>> block(delayed.begin() + static_cast<std::ptrdiff_t>(start),
                                                     delayed.begin() + static_cast<std::ptrdiff_t>(end));
        const auto out = timing.synchronize(block);
        const auto syms = extractor.extract(out);
        recovered.insert(recovered.end(), syms.begin(), syms.end());
    }
    ASSERT_GT(recovered.size(), count - 8);

    // After convergence the recovered symbols should decide cleanly: find
    // the (small) alignment lag by correlation on the tail, then compare
    // hard decisions.
    const std::size_t tail_start = recovered.size() / 2;
    int best_lag = 0;
    double best_corr = -1.0;
    for (int lag = -4; lag <= 4; ++lag) {
        double corr = 0.0;
        int n = 0;
        for (std::size_t i = tail_start; i + 8 < recovered.size(); ++i) {
            const auto k = static_cast<std::ptrdiff_t>(i) + lag;
            if (k < 0 || k >= static_cast<std::ptrdiff_t>(count))
                continue;
            const auto p = recovered[i] * std::conj(symbols[static_cast<std::size_t>(k)]);
            corr += p.real();
            ++n;
        }
        if (n > 0 && corr / n > best_corr) {
            best_corr = corr / n;
            best_lag = lag;
        }
    }
    EXPECT_GT(best_corr, 0.8) << "recovered tail correlates with transmitted symbols (lag "
                              << best_lag << ")";
}

std::vector<std::complex<float>> make_plframes(int plframe, int count, int offset,
                                               amp::Rng& rng)
{
    // A stream of `count` PLFRAMEs preceded by `offset` random symbols.
    std::vector<std::complex<float>> stream = random_qpsk(static_cast<std::size_t>(offset), rng);
    for (int f = 0; f < count; ++f) {
        const auto header = PlhFramer::build_header(0x12);
        stream.insert(stream.end(), header.begin(), header.end());
        const auto payload =
            random_qpsk(static_cast<std::size_t>(plframe - PlhFramer::kHeaderSymbols), rng);
        stream.insert(stream.end(), payload.begin(), payload.end());
    }
    return stream;
}

TEST(FrameSync, FindsSofOffset)
{
    amp::Rng rng{4};
    const int plframe = 1000;
    const int interframe = 2;
    const int offset = 337;
    const auto stream = make_plframes(plframe, 8, offset, rng);

    FrameSyncCorrelator correlator{plframe, interframe};
    FrameAligner aligner{plframe, interframe, 0};
    bool found = false;
    for (std::size_t start = 0; start < stream.size(); start += 1500) {
        const std::size_t end = std::min(start + 1500, stream.size());
        const std::vector<std::complex<float>> block(stream.begin() + static_cast<std::ptrdiff_t>(start),
                                                     stream.begin() + static_cast<std::ptrdiff_t>(end));
        const auto window = correlator.process(block);
        const auto aligned = aligner.align(window);
        if (aligned.valid) {
            found = true;
            EXPECT_EQ(aligned.offset % plframe, offset % plframe);
            ASSERT_EQ(aligned.frames.size(), static_cast<std::size_t>(interframe * plframe));
            // The extracted frames must start with the SOF.
            const auto& sof = PlhFramer::sof_symbols();
            for (std::size_t j = 0; j < sof.size(); ++j) {
                EXPECT_NEAR(aligned.frames[j].real(), sof[j].real(), 1e-4);
                EXPECT_NEAR(aligned.frames[j].imag(), sof[j].imag(), 1e-4);
            }
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(FrameSync, SurvivesConstantPhaseRotation)
{
    amp::Rng rng{5};
    const int plframe = 800;
    auto stream = make_plframes(plframe, 6, 123, rng);
    const std::complex<float> rotation{std::cos(0.9F), std::sin(0.9F)};
    for (auto& s : stream)
        s *= rotation;

    FrameSyncCorrelator correlator{plframe, 1};
    FrameAligner aligner{plframe, 1, 0};
    bool found = false;
    for (std::size_t start = 0; start < stream.size(); start += 1200) {
        const std::size_t end = std::min(start + 1200, stream.size());
        const std::vector<std::complex<float>> block(stream.begin() + static_cast<std::ptrdiff_t>(start),
                                                     stream.begin() + static_cast<std::ptrdiff_t>(end));
        const auto aligned = aligner.align(correlator.process(block));
        if (aligned.valid) {
            found = true;
            EXPECT_EQ(aligned.offset % plframe, 123 % plframe)
                << "differential correlation is rotation invariant";
            break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(FineFreqPf, CorrectsLinearPhaseDriftAndRemovesPilots)
{
    amp::Rng rng{6};
    const PilotLayout layout{8100, 36, 1440};
    const int plframe = 90 + layout.total_symbols();

    // Build one PLFRAME with pilots, apply a linear phase drift.
    const auto payload = random_qpsk(8100, rng);
    const auto with_pilots = insert_pilots(payload, layout);
    auto frame = PlhFramer::insert((2 << 3) | 2, with_pilots);
    ASSERT_EQ(static_cast<int>(frame.size()), plframe);
    const double drift = 2.0 * std::numbers::pi * 2e-5; // rad per symbol
    for (std::size_t n = 0; n < frame.size(); ++n) {
        const double phi = 0.4 + drift * static_cast<double>(n);
        frame[n] *= std::complex<float>{static_cast<float>(std::cos(phi)),
                                        static_cast<float>(std::sin(phi))};
    }

    const FineFreqPf pf{plframe, layout};
    const auto corrected = pf.synchronize(frame);
    ASSERT_EQ(static_cast<int>(corrected.size()), 90 + 8100);

    // Payload symbols must now decide to the transmitted bits.
    const std::vector<std::complex<float>> out_payload(corrected.begin() + 90, corrected.end());
    EXPECT_EQ(QpskModem::hard_decide(out_payload), QpskModem::hard_decide(payload));
}

TEST(FineFreqLr, ReducesResidualCfo)
{
    amp::Rng rng{7};
    const PilotLayout layout{8100, 36, 1440};
    const int plframe = 90 + layout.total_symbols();
    const double cfo = 3e-5; // cycles per symbol

    FineFreqLr lr{plframe};
    double phase = 0.0;
    for (int f = 0; f < 6; ++f) {
        const auto payload = random_qpsk(8100, rng);
        auto frame = PlhFramer::insert((2 << 3) | 2, insert_pilots(payload, layout));
        std::vector<std::complex<float>> frames;
        for (auto& s : frame) {
            s *= std::complex<float>{static_cast<float>(std::cos(phase)),
                                     static_cast<float>(std::sin(phase))};
            phase += 2.0 * std::numbers::pi * cfo;
        }
        frames = frame;
        lr.synchronize(frames);
    }
    EXPECT_NEAR(lr.estimate(), cfo, cfo * 0.5) << "L&R converges towards the true CFO";
}

TEST(NoiseEstimator, M2M4AccuracyOnQpsk)
{
    amp::Rng rng{8};
    for (const float sigma2 : {0.01F, 0.05F, 0.2F}) {
        auto symbols = random_qpsk(8100, rng);
        const float per_component = std::sqrt(sigma2 / 2.0F);
        for (auto& s : symbols)
            s += std::complex<float>{per_component * static_cast<float>(rng.normal()),
                                     per_component * static_cast<float>(rng.normal())};
        const auto estimate = NoiseEstimator::estimate(symbols);
        EXPECT_NEAR(estimate.sigma2, sigma2, sigma2 * 0.35F) << "sigma2=" << sigma2;
        EXPECT_NEAR(estimate.signal, 1.0F, 0.1F);
    }
}

TEST(NoiseEstimator, EmptyInputGivesDefaults)
{
    const auto estimate = NoiseEstimator::estimate({});
    EXPECT_FLOAT_EQ(estimate.sigma2, 1.0F);
}

} // namespace
