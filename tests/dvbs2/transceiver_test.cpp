// End-to-end transceiver tests: the full 23-task receiver chain of
// Table III consuming the impaired transmitter stream, run (a) sequentially
// and (b) through the threaded pipeline runtime with replicated stages.

#include "dvbs2/receiver.hpp"

#include "dvbs2/profiles.hpp"
#include "core/scheduler.hpp"
#include "rt/pipeline.hpp"
#include "rt/profiler.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::dvbs2;
using amp::core::CoreType;
using amp::core::Solution;
using amp::core::Stage;

ReceiverConfig test_config()
{
    ReceiverConfig config;
    config.params.interframe = 2; // lighter frames for tests
    return config;
}

TEST(Transceiver, ChainHasTheTableIiiShape)
{
    const auto chain = build_receiver_chain(test_config());
    ASSERT_EQ(chain.sequence.size(), 23);
    const auto& replicable = receiver_task_replicable();
    for (int i = 1; i <= 23; ++i)
        EXPECT_EQ(chain.sequence.task(i).replicable(),
                  replicable[static_cast<std::size_t>(i - 1)])
            << "task " << i << " (" << chain.sequence.task(i).name() << ")";
}

TEST(Transceiver, SequentialRunDecodesErrorFree)
{
    const auto config = test_config();
    auto chain = build_receiver_chain(config);
    constexpr int kFrames = 8;
    for (int f = 0; f < kFrames; ++f) {
        DvbFrame frame;
        frame.seq = static_cast<std::uint64_t>(f);
        for (int t = 1; t <= 23; ++t)
            chain.sequence.task(t).process(frame);
    }
    const auto& counters = *chain.counters;
    // Startup: one traversal fills the frame-sync buffer and two more are
    // acquisition warmup; everything after that must be error free.
    EXPECT_GE(counters.frames_checked.load(),
              static_cast<std::uint64_t>((kFrames - 3) * config.params.interframe));
    EXPECT_LE(counters.frames_skipped.load(), 3u);
    EXPECT_EQ(counters.frame_errors.load(), 0u) << "error-free SNR zone";
    EXPECT_EQ(counters.bit_errors.load(), 0u);
    EXPECT_GT(chain.sink->bits_received(), 0u);
}

TEST(Transceiver, PipelinedRunMatchesSequentialOutput)
{
    const auto config = test_config();
    constexpr std::uint64_t kFrames = 8;

    // Reference: sequential execution.
    std::uint64_t sequential_checksum = 0;
    {
        auto chain = build_receiver_chain(config);
        amp::rt::Pipeline<DvbFrame> pipeline{chain.sequence,
                                        Solution{{Stage{1, 23, 1, CoreType::big}}}};
        (void)pipeline.run(kFrames);
        sequential_checksum = chain.sink->checksum();
        ASSERT_EQ(chain.counters->frame_errors.load(), 0u);
    }

    // Pipelined with replicated stages (tasks 11..20 contain the replicable
    // run 13..20; stage boundaries follow the replicability flags).
    {
        auto chain = build_receiver_chain(config);
        const Solution solution{{
            Stage{1, 8, 1, CoreType::big},   // radio .. AGC2 (sequential tasks)
            Stage{9, 12, 1, CoreType::big},  // frame sync + L&R (sequential)
            Stage{13, 20, 3, CoreType::big}, // replicable run: P/F .. descramble
            Stage{21, 23, 1, CoreType::little},
        }};
        amp::rt::Pipeline<DvbFrame> pipeline{chain.sequence, solution};
        const auto result = pipeline.run(kFrames);
        EXPECT_EQ(result.frames, kFrames);
        EXPECT_EQ(chain.counters->frame_errors.load(), 0u);
        EXPECT_EQ(chain.sink->checksum(), sequential_checksum)
            << "pipelined output must be bit-identical to sequential";
    }
}

TEST(Transceiver, SchedulerSolutionsAreRunnable)
{
    // Schedules computed from the paper's profile must be executable by the
    // runtime on the real chain (stage boundaries compatible with state).
    const auto& profile = mac_studio_profile();
    const auto core_chain = profile_chain(profile);
    const auto solution = amp::core::schedule(amp::core::ScheduleRequest{
                                                  core_chain, profile.cores_half,
                                                  amp::core::Strategy::herad})
                              .solution;
    ASSERT_FALSE(solution.empty());

    auto config = test_config();
    auto chain = build_receiver_chain(config);
    amp::rt::Pipeline<DvbFrame> pipeline{chain.sequence, solution};
    const auto result = pipeline.run(6);
    EXPECT_EQ(result.frames, 6u);
    EXPECT_EQ(chain.counters->frame_errors.load(), 0u);
}

TEST(Transceiver, ProfilerProducesPositiveLatencies)
{
    auto chain = build_receiver_chain(test_config());
    const auto profile = amp::rt::profile_sequence(chain.sequence, 3, 2);
    ASSERT_EQ(profile.latency_us.size(), 23u);
    for (const double latency : profile.latency_us)
        EXPECT_GT(latency, 0.0);
    // The LDPC decoder and timing sync should be among the heavier tasks.
    EXPECT_GT(profile.latency_us[17], profile.latency_us[16]);
}

TEST(Transceiver, ReferencePayloadRoundTrip)
{
    const auto payload = reference_payload(14232, 0xdada, 42);
    EXPECT_EQ(payload.size(), 14232u);
    EXPECT_EQ(extract_frame_index(payload), 42u);
    const auto payload2 = reference_payload(14232, 0xdada, 43);
    EXPECT_EQ(extract_frame_index(payload2), 43u);
    EXPECT_NE(payload, payload2);
}

TEST(Transceiver, PaperProfilesAreConsistent)
{
    for (const auto* profile : {&mac_studio_profile(), &x7ti_profile()}) {
        const auto chain = profile_chain(*profile);
        ASSERT_EQ(chain.size(), 23);
        for (int i = 1; i <= 23; ++i) {
            EXPECT_GT(chain.weight(i, CoreType::big), 0.0);
            EXPECT_GE(chain.weight(i, CoreType::little), chain.weight(i, CoreType::big) * 0.9)
                << "little cores are not dramatically faster than big ones";
        }
    }
    // Totals reported in Table III.
    const auto mac = profile_chain(mac_studio_profile());
    EXPECT_NEAR(mac.interval_sum(1, 23, CoreType::big), 8530.8, 1.0);
    EXPECT_NEAR(mac.interval_sum(1, 23, CoreType::little), 19841.3, 1.5);
    const auto x7 = profile_chain(x7ti_profile());
    EXPECT_NEAR(x7.interval_sum(1, 23, CoreType::big), 12592.5, 1.0);
    EXPECT_NEAR(x7.interval_sum(1, 23, CoreType::little), 22530.7, 1.5);
}

} // namespace
