#include "dvbs2/fec/galois.hpp"

#include <gtest/gtest.h>

namespace {

using amp::dvbs2::GaloisField;

TEST(Galois, SmallFieldMultiplicationTable)
{
    // GF(16) with x^4 + x + 1: alpha^4 = alpha + 1 = 0b0011.
    const GaloisField gf{4, 0b10011};
    EXPECT_EQ(gf.size(), 16);
    EXPECT_EQ(gf.pow_alpha(0), 1);
    EXPECT_EQ(gf.pow_alpha(1), 2);
    EXPECT_EQ(gf.pow_alpha(4), 0b0011);
    EXPECT_EQ(gf.mul(2, 9), 1) << "alpha * alpha^14 = alpha^15 = 1";
}

TEST(Galois, AddIsXor)
{
    const auto& gf = GaloisField::standard(8);
    EXPECT_EQ(gf.add(0b1010, 0b0110), 0b1100);
    EXPECT_EQ(gf.add(7, 7), 0);
}

TEST(Galois, MultiplicationProperties)
{
    const auto& gf = GaloisField::standard(8);
    for (int a = 0; a < 256; a += 17) {
        EXPECT_EQ(gf.mul(a, 1), a);
        EXPECT_EQ(gf.mul(a, 0), 0);
        for (int b = 1; b < 256; b += 31)
            EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    }
}

TEST(Galois, InverseRoundTrip)
{
    const auto& gf = GaloisField::standard(10);
    for (int a = 1; a < gf.size(); a += 97)
        EXPECT_EQ(gf.mul(a, gf.inv(a)), 1);
    EXPECT_THROW((void)gf.inv(0), std::domain_error);
}

TEST(Galois, LogAlphaConsistency)
{
    const auto& gf = GaloisField::standard(6);
    for (int e = 0; e < gf.order(); ++e)
        EXPECT_EQ(gf.log_alpha(gf.pow_alpha(e)), e);
    EXPECT_THROW((void)gf.log_alpha(0), std::domain_error);
}

TEST(Galois, PowAlphaHandlesNegativeExponents)
{
    const auto& gf = GaloisField::standard(8);
    EXPECT_EQ(gf.mul(gf.pow_alpha(-5), gf.pow_alpha(5)), 1);
    EXPECT_EQ(gf.pow_alpha(gf.order()), 1);
}

TEST(Galois, RejectsNonPrimitivePolynomial)
{
    // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive (order 5).
    EXPECT_THROW((GaloisField{4, 0b11111}), std::invalid_argument);
    // x^4 + 1 is not even irreducible.
    EXPECT_THROW((GaloisField{4, 0b10001}), std::invalid_argument);
}

TEST(Galois, Gf14IsValid)
{
    const auto& gf = GaloisField::standard(14);
    EXPECT_EQ(gf.size(), 16384);
    EXPECT_EQ(gf.mul(gf.pow_alpha(9000), gf.pow_alpha(7383)), 1)
        << "alpha^16383 = 1 in GF(2^14)";
}

TEST(Galois, MinimalPolynomialDividesFieldPolynomial)
{
    // Every minimal polynomial m(x) of alpha^e must satisfy m(alpha^e) = 0.
    const auto& gf = GaloisField::standard(8);
    for (const int e : {1, 3, 5, 7, 11}) {
        const std::uint64_t poly = gf.minimal_polynomial(e);
        int value = 0;
        for (int i = 0; i < 64; ++i)
            if ((poly >> i) & 1u)
                value = gf.add(value, gf.pow_alpha(static_cast<long long>(e) * i));
        EXPECT_EQ(value, 0) << "e=" << e;
    }
}

TEST(Galois, MinimalPolynomialOfAlphaIsThePrimitivePoly)
{
    const GaloisField gf{4, 0b10011};
    EXPECT_EQ(gf.minimal_polynomial(1), 0b10011u);
}

} // namespace
