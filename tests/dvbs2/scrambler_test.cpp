#include "dvbs2/common/bb_scrambler.hpp"
#include "dvbs2/common/pl_scrambler.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace {

using namespace amp::dvbs2;

TEST(BbScrambler, SelfInverse)
{
    amp::Rng rng{1};
    std::vector<std::uint8_t> bits(14232);
    for (auto& b : bits)
        b = static_cast<std::uint8_t>(rng() & 1u);
    auto scrambled = bits;
    BbScrambler::scramble(scrambled);
    EXPECT_NE(scrambled, bits) << "scrambling must change the data";
    BbScrambler::scramble(scrambled);
    EXPECT_EQ(scrambled, bits);
}

TEST(BbScrambler, PrbsIsBalanced)
{
    const auto prbs = BbScrambler::prbs(10000);
    int ones = 0;
    for (const auto bit : prbs)
        ones += bit;
    EXPECT_GT(ones, 4500);
    EXPECT_LT(ones, 5500);
}

TEST(BbScrambler, PrbsIsDeterministic)
{
    EXPECT_EQ(BbScrambler::prbs(100), BbScrambler::prbs(100));
}

TEST(PlScrambler, SequenceValuesAreQuarterTurns)
{
    const auto seq = PlScrambler::sequence(1000);
    ASSERT_EQ(seq.size(), 1000u);
    bool nontrivial = false;
    for (const auto r : seq) {
        EXPECT_LE(r, 3);
        nontrivial |= r != 0;
    }
    EXPECT_TRUE(nontrivial);
}

TEST(PlScrambler, DescrambleInvertsScramble)
{
    amp::Rng rng{2};
    std::vector<std::complex<float>> symbols(8280);
    for (auto& s : symbols)
        s = {static_cast<float>(rng.normal()), static_cast<float>(rng.normal())};
    const auto original = symbols;
    PlScrambler::scramble(symbols);
    PlScrambler::descramble(symbols);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        EXPECT_NEAR(symbols[i].real(), original[i].real(), 1e-5);
        EXPECT_NEAR(symbols[i].imag(), original[i].imag(), 1e-5);
    }
}

TEST(PlScrambler, ScramblingPreservesMagnitude)
{
    std::vector<std::complex<float>> symbols{{1.0F, 0.0F}, {0.0F, 2.0F}, {-3.0F, 1.0F}};
    const auto original = symbols;
    PlScrambler::scramble(symbols);
    for (std::size_t i = 0; i < symbols.size(); ++i)
        EXPECT_NEAR(std::abs(symbols[i]), std::abs(original[i]), 1e-6);
}

} // namespace
