#include "dvbs2/fec/bch.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace {

using amp::Rng;
using amp::dvbs2::BchCode;

std::vector<std::uint8_t> random_bits(int count, Rng& rng)
{
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(count));
    for (auto& bit : bits)
        bit = static_cast<std::uint8_t>(rng() & 1u);
    return bits;
}

// A small code for exhaustive-ish testing: BCH over GF(2^6), t=3, n=63.
const BchCode& small_code()
{
    static const BchCode code{6, 3, 63};
    return code;
}

TEST(Bch, SmallCodeParameters)
{
    EXPECT_EQ(small_code().n(), 63);
    EXPECT_EQ(small_code().parity_bits(), 18); // 3 minimal polys of degree 6
    EXPECT_EQ(small_code().k(), 45);
}

TEST(Bch, EncodeIsSystematic)
{
    Rng rng{1};
    const auto message = random_bits(small_code().k(), rng);
    const auto codeword = small_code().encode(message);
    ASSERT_EQ(static_cast<int>(codeword.size()), small_code().n());
    for (int i = 0; i < small_code().k(); ++i)
        EXPECT_EQ(codeword[static_cast<std::size_t>(i)], message[static_cast<std::size_t>(i)]);
}

TEST(Bch, CleanRoundTrip)
{
    Rng rng{2};
    for (int trial = 0; trial < 10; ++trial) {
        const auto message = random_bits(small_code().k(), rng);
        const auto result = small_code().decode(small_code().encode(message));
        EXPECT_TRUE(result.success);
        EXPECT_EQ(result.corrected, 0);
        EXPECT_EQ(result.message, message);
    }
}

TEST(Bch, CorrectsUpToTErrors)
{
    Rng rng{3};
    for (int errors = 1; errors <= small_code().t(); ++errors) {
        for (int trial = 0; trial < 10; ++trial) {
            const auto message = random_bits(small_code().k(), rng);
            auto codeword = small_code().encode(message);
            // Flip `errors` distinct positions.
            std::vector<int> positions;
            while (static_cast<int>(positions.size()) < errors) {
                const int p = static_cast<int>(rng.uniform_int(0, small_code().n() - 1));
                if (std::find(positions.begin(), positions.end(), p) == positions.end()) {
                    positions.push_back(p);
                    codeword[static_cast<std::size_t>(p)] ^= 1u;
                }
            }
            const auto result = small_code().decode(codeword);
            EXPECT_TRUE(result.success) << errors << " errors, trial " << trial;
            EXPECT_EQ(result.corrected, errors);
            EXPECT_EQ(result.message, message);
        }
    }
}

TEST(Bch, DetectsTooManyErrors)
{
    Rng rng{4};
    int detected = 0;
    constexpr int kTrials = 20;
    for (int trial = 0; trial < kTrials; ++trial) {
        const auto message = random_bits(small_code().k(), rng);
        auto codeword = small_code().encode(message);
        // t+2 errors: decoding must either flag failure or (rarely)
        // miscorrect to a different codeword -- never report the original.
        for (int e = 0; e < small_code().t() + 2; ++e)
            codeword[static_cast<std::size_t>(rng.uniform_int(0, small_code().n() - 1))] ^= 1u;
        const auto result = small_code().decode(codeword);
        if (!result.success)
            ++detected;
    }
    EXPECT_GT(detected, kTrials / 2) << "most overload patterns should be flagged";
}

TEST(Bch, Dvbs2ShortFrameParameters)
{
    const auto& code = BchCode::dvbs2_short_8_9();
    EXPECT_EQ(code.n(), 14400);
    EXPECT_EQ(code.k(), 14232) << "the paper's K";
    EXPECT_EQ(code.t(), 12);
    EXPECT_EQ(code.parity_bits(), 168);
}

TEST(Bch, Dvbs2ShortFrameRoundTripWithErrors)
{
    Rng rng{5};
    const auto& code = BchCode::dvbs2_short_8_9();
    const auto message = random_bits(code.k(), rng);
    auto codeword = code.encode(message);
    for (int e = 0; e < 12; ++e)
        codeword[static_cast<std::size_t>(rng.uniform_int(0, code.n() - 1))] ^= 1u;
    const auto result = code.decode(codeword);
    EXPECT_TRUE(result.success);
    EXPECT_EQ(result.message, message);
}

TEST(Bch, RejectsWrongSizes)
{
    EXPECT_THROW((void)small_code().encode(std::vector<std::uint8_t>(10)),
                 std::invalid_argument);
    EXPECT_THROW((void)small_code().decode(std::vector<std::uint8_t>(10)),
                 std::invalid_argument);
}

} // namespace
