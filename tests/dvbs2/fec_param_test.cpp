// Parameterized property sweeps over the FEC codecs: BCH across field
// sizes and correction capacities, LDPC across geometries and decoder
// configurations.

#include "dvbs2/fec/bch.hpp"
#include "dvbs2/fec/ldpc.hpp"

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using amp::Rng;
using amp::dvbs2::BchCode;
using amp::dvbs2::LdpcCode;

std::vector<std::uint8_t> random_bits(int count, Rng& rng)
{
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(count));
    for (auto& bit : bits)
        bit = static_cast<std::uint8_t>(rng() & 1u);
    return bits;
}

// ---------------------------------------------------------------- BCH sweep
struct BchCase {
    int m;
    int t;
    int n;
};

class BchSweep : public ::testing::TestWithParam<BchCase> {};

TEST_P(BchSweep, CorrectsExactlyUpToT)
{
    const auto param = GetParam();
    const BchCode code{param.m, param.t, param.n};
    EXPECT_EQ(code.n(), param.n);
    EXPECT_GT(code.k(), 0);
    EXPECT_LE(code.parity_bits(), param.m * param.t);

    Rng rng{0xbc4 ^ static_cast<std::uint64_t>(param.m * 100 + param.t)};
    for (int trial = 0; trial < 5; ++trial) {
        const auto message = random_bits(code.k(), rng);
        auto codeword = code.encode(message);
        // flip exactly t distinct positions
        std::vector<int> positions;
        while (static_cast<int>(positions.size()) < param.t) {
            const int p = static_cast<int>(rng.uniform_int(0, code.n() - 1));
            if (std::find(positions.begin(), positions.end(), p) == positions.end()) {
                positions.push_back(p);
                codeword[static_cast<std::size_t>(p)] ^= 1u;
            }
        }
        const auto result = code.decode(codeword);
        ASSERT_TRUE(result.success);
        ASSERT_EQ(result.corrected, param.t);
        ASSERT_EQ(result.message, message);
    }
}

INSTANTIATE_TEST_SUITE_P(Codes, BchSweep,
                         ::testing::Values(BchCase{5, 1, 31}, BchCase{6, 2, 63},
                                           BchCase{6, 3, 45}, BchCase{7, 4, 127},
                                           BchCase{8, 2, 255}, BchCase{8, 5, 200},
                                           BchCase{10, 3, 1023}, BchCase{12, 8, 3000}),
                         [](const ::testing::TestParamInfo<BchCase>& info) {
                             return "m" + std::to_string(info.param.m) + "_t"
                                 + std::to_string(info.param.t) + "_n"
                                 + std::to_string(info.param.n);
                         });

// ---------------------------------------------------------------- LDPC sweep
struct LdpcCase {
    int n;
    int k;
    int degree;
};

class LdpcSweep : public ::testing::TestWithParam<LdpcCase> {};

TEST_P(LdpcSweep, EncodeCheckDecodeRoundTrip)
{
    const auto param = GetParam();
    const LdpcCode code{param.n, param.k, param.degree, 0x1d9c};
    Rng rng{0x1d ^ static_cast<std::uint64_t>(param.n)};
    const auto message = random_bits(code.k(), rng);
    const auto word = code.encode(message);
    ASSERT_TRUE(code.check(word));

    std::vector<float> llr(word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
        const float symbol = word[i] ? -1.0F : 1.0F;
        llr[i] = 2.0F * (symbol + 0.4F * static_cast<float>(rng.normal())) / 0.16F;
    }
    const auto result = code.decode(llr);
    EXPECT_TRUE(result.success);
    for (int i = 0; i < code.k(); ++i)
        ASSERT_EQ(result.bits[static_cast<std::size_t>(i)], message[static_cast<std::size_t>(i)]);
}

INSTANTIATE_TEST_SUITE_P(Codes, LdpcSweep,
                         ::testing::Values(LdpcCase{256, 128, 3}, LdpcCase{512, 384, 3},
                                           LdpcCase{1024, 768, 4}, LdpcCase{2048, 1536, 3},
                                           LdpcCase{900, 600, 5}),
                         [](const ::testing::TestParamInfo<LdpcCase>& info) {
                             return "n" + std::to_string(info.param.n) + "_k"
                                 + std::to_string(info.param.k) + "_d"
                                 + std::to_string(info.param.degree);
                         });

TEST(LdpcDecoderConfig, NormalizationSweepStillDecodes)
{
    const LdpcCode code{512, 384, 3, 0x77};
    Rng rng{0x77};
    const auto message = random_bits(code.k(), rng);
    const auto word = code.encode(message);
    std::vector<float> llr(word.size());
    for (std::size_t i = 0; i < word.size(); ++i) {
        const float symbol = word[i] ? -1.0F : 1.0F;
        llr[i] = 2.0F * (symbol + 0.45F * static_cast<float>(rng.normal())) / 0.2F;
    }
    for (const float alpha : {0.5F, 0.75F, 0.9F, 1.0F}) {
        LdpcCode::DecodeConfig config;
        config.normalization = alpha;
        config.max_iterations = 20;
        const auto result = code.decode(llr, config);
        EXPECT_TRUE(result.success) << "alpha=" << alpha;
    }
}

TEST(LdpcDecoderConfig, MoreIterationsNeverHurtSuccess)
{
    const LdpcCode code{512, 384, 3, 0x78};
    Rng rng{0x78};
    int more_iterations_wins = 0;
    for (int trial = 0; trial < 8; ++trial) {
        const auto word = code.encode(random_bits(code.k(), rng));
        std::vector<float> llr(word.size());
        for (std::size_t i = 0; i < word.size(); ++i) {
            const float symbol = word[i] ? -1.0F : 1.0F;
            llr[i] = 2.0F * (symbol + 0.65F * static_cast<float>(rng.normal())) / 0.42F;
        }
        LdpcCode::DecodeConfig few;
        few.max_iterations = 2;
        LdpcCode::DecodeConfig many;
        many.max_iterations = 30;
        const bool few_ok = code.decode(llr, few).success;
        const bool many_ok = code.decode(llr, many).success;
        EXPECT_TRUE(!few_ok || many_ok) << "success must be monotone in iterations here";
        more_iterations_wins += (many_ok && !few_ok) ? 1 : 0;
    }
    EXPECT_GT(more_iterations_wins, 0) << "the sweep should exercise the hard region";
}

} // namespace
