#include "dvbs2/io/radio.hpp"

#include "dvbs2/io/monitor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace amp::dvbs2;

TEST(Radio, EmitsRequestedFrameCounts)
{
    FrameParams params;
    Radio radio{params, {}, 0x1};
    const auto chunk2 = radio.receive(2);
    EXPECT_EQ(chunk2.size(), static_cast<std::size_t>(2 * params.plframe_samples()));
    const auto chunk1 = radio.receive(1);
    EXPECT_EQ(chunk1.size(), static_cast<std::size_t>(params.plframe_samples()));
}

TEST(Radio, StreamIsContinuousAcrossCalls)
{
    // Two radios with the same seeds: one pulled in a single chunk, the
    // other in two -- the concatenated streams must be identical.
    FrameParams params;
    Radio one{params, {}, 0x2};
    Radio two{params, {}, 0x2};
    const auto whole = one.receive(2);
    auto first = two.receive(1);
    const auto second = two.receive(1);
    first.insert(first.end(), second.begin(), second.end());
    ASSERT_EQ(whole.size(), first.size());
    for (std::size_t i = 0; i < whole.size(); ++i)
        ASSERT_EQ(whole[i], first[i]) << "sample " << i;
}

TEST(Radio, SignalHasReasonablePower)
{
    FrameParams params;
    ChannelConfig channel;
    channel.gain = 0.8F;
    Radio radio{params, channel, 0x3};
    const auto chunk = radio.receive(1);
    double power = 0.0;
    for (const auto& s : chunk)
        power += std::norm(s);
    power /= static_cast<double>(chunk.size());
    EXPECT_GT(power, 0.1);
    EXPECT_LT(power, 10.0);
}

TEST(MonitorCounters, RatesComputedCorrectly)
{
    MonitorCounters counters;
    EXPECT_DOUBLE_EQ(counters.frame_error_rate(), 0.0);
    EXPECT_DOUBLE_EQ(counters.bit_error_rate(), 0.0);
    counters.frames_checked = 10;
    counters.frame_errors = 2;
    counters.bits_checked = 1000;
    counters.bit_errors = 5;
    EXPECT_DOUBLE_EQ(counters.frame_error_rate(), 0.2);
    EXPECT_DOUBLE_EQ(counters.bit_error_rate(), 0.005);
}

TEST(Monitor, CountsMismatchedBits)
{
    auto counters = std::make_shared<MonitorCounters>();
    const Monitor monitor{counters};
    monitor.check({1, 0, 1, 1}, {1, 0, 1, 1});
    monitor.check({1, 0, 1, 1}, {1, 1, 1, 0});
    EXPECT_EQ(counters->frames_checked.load(), 2u);
    EXPECT_EQ(counters->frame_errors.load(), 1u);
    EXPECT_EQ(counters->bit_errors.load(), 2u);
    EXPECT_EQ(counters->bits_checked.load(), 8u);
    EXPECT_THROW(monitor.check({1}, {1, 0}), std::invalid_argument);
}

TEST(BinarySink, ChecksumTracksContent)
{
    BinarySink a;
    BinarySink b;
    a.send({1, 0, 1});
    b.send({1, 0, 1});
    EXPECT_EQ(a.checksum(), b.checksum());
    EXPECT_EQ(a.bits_received(), 3u);
    b.send({1});
    EXPECT_NE(a.checksum(), b.checksum());
}

} // namespace
