// Regression tests pinning the Table II reproduction against the paper's
// published schedules: with the embedded Table III profiles, our strategy
// implementations compute the same pipeline decompositions the authors
// report (exactly for most rows; period- and usage-equal for the rows where
// tie-breaking between period-equal solutions legitimately differs).

#include "core/scheduler.hpp"
#include "dvbs2/profiles.hpp"

#include <gtest/gtest.h>

namespace {

using namespace amp::core;
using amp::dvbs2::mac_studio_profile;
using amp::dvbs2::profile_chain;
using amp::dvbs2::x7ti_profile;

struct PinnedRow {
    const char* id;
    Strategy strategy;
    const amp::dvbs2::PlatformProfile& profile;
    Resources resources;
    const char* paper_decomposition; ///< nullptr = only period/usage pinned
    double paper_period_us;
    int paper_big_used;
    int paper_little_used;
};

Solution compute(const PinnedRow& row)
{
    return schedule(ScheduleRequest{profile_chain(row.profile), row.resources, row.strategy})
        .solution;
}

class Table2Regression : public ::testing::TestWithParam<PinnedRow> {};

TEST_P(Table2Regression, MatchesPaper)
{
    const PinnedRow& row = GetParam();
    const auto chain = profile_chain(row.profile);
    const Solution solution = compute(row);
    ASSERT_FALSE(solution.empty()) << row.id;
    EXPECT_TRUE(solution.is_well_formed(chain)) << row.id;
    EXPECT_NEAR(solution.period(chain), row.paper_period_us, 0.25) << row.id;
    if (row.paper_decomposition != nullptr)
        EXPECT_EQ(solution.decomposition(), row.paper_decomposition) << row.id;
    EXPECT_EQ(solution.used(CoreType::big), row.paper_big_used) << row.id;
    EXPECT_EQ(solution.used(CoreType::little), row.paper_little_used) << row.id;
}

// clang-format off
INSTANTIATE_TEST_SUITE_P(PaperRows, Table2Regression, ::testing::Values(
    // --- Mac Studio, R = (8B, 2L) -----------------------------------------
    PinnedRow{"S1", Strategy::herad, mac_studio_profile(), {8, 2},
              "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)", 1128.7, 8, 2},
    PinnedRow{"S2", Strategy::twocatac, mac_studio_profile(), {8, 2},
              "(5,1B),(3,1B),(7,1B),(4,5B),(4,1L)", 1154.3, 8, 1},
    PinnedRow{"S3", Strategy::fertac, mac_studio_profile(), {8, 2},
              "(3,1L),(1,1L),(2,1B),(9,1B),(5,5B),(3,1B)", 1265.6, 8, 2},
    PinnedRow{"S4", Strategy::otac_big, mac_studio_profile(), {8, 2},
              "(5,1B),(4,1B),(6,1B),(4,4B),(4,1B)", 1442.9, 8, 0},
    PinnedRow{"S5", Strategy::otac_little, mac_studio_profile(), {8, 2},
              "(16,1L),(7,1L)", 11440.0, 0, 2},
    // --- Mac Studio, R = (16B, 4L) ----------------------------------------
    PinnedRow{"S6", Strategy::herad, mac_studio_profile(), {16, 4},
              "(3,1L),(1,1L),(1,1L),(1,1B),(6,1B),(7,7B),(4,1L)", 950.6, 9, 4},
    // S7 (2CATAC) ties in period and usage; the interval split differs.
    PinnedRow{"S7", Strategy::twocatac, mac_studio_profile(), {16, 4},
              nullptr, 950.6, 9, 4},
    // S8 (FERTAC) ties in period and usage; the interval split differs.
    PinnedRow{"S8", Strategy::fertac, mac_studio_profile(), {16, 4},
              nullptr, 950.6, 10, 4},
    PinnedRow{"S9", Strategy::otac_big, mac_studio_profile(), {16, 4},
              "(5,1B),(1,1B),(9,1B),(5,7B),(3,1B)", 950.6, 11, 0},
    PinnedRow{"S10", Strategy::otac_little, mac_studio_profile(), {16, 4},
              "(13,1L),(6,2L),(4,1L)", 6470.9, 0, 4},
    // --- X7 Ti, R = (3B, 4L) ------------------------------------------------
    PinnedRow{"S11", Strategy::herad, x7ti_profile(), {3, 4},
              "(5,1B),(10,1B),(3,1B),(1,3L),(4,1L)", 2722.1, 3, 4},
    // S12 (2CATAC) ties in period and usage; the interval split differs.
    PinnedRow{"S12", Strategy::twocatac, x7ti_profile(), {3, 4},
              nullptr, 2722.1, 3, 4},
    PinnedRow{"S13", Strategy::fertac, x7ti_profile(), {3, 4},
              "(5,1L),(3,1L),(7,1L),(4,3B),(4,1L)", 2867.0, 3, 4},
    PinnedRow{"S14", Strategy::otac_big, x7ti_profile(), {3, 4},
              "(18,1B),(1,1B),(4,1B)", 6209.0, 3, 0},
    PinnedRow{"S15", Strategy::otac_little, x7ti_profile(), {3, 4},
              "(15,1L),(4,2L),(4,1L)", 7490.3, 0, 4},
    // --- X7 Ti, R = (6B, 8L) ------------------------------------------------
    // The paper prints (b=6, l=8) for S16 but its own decomposition sums to
    // 5 big cores; we pin our (self-consistent) counts.
    PinnedRow{"S16", Strategy::herad, x7ti_profile(), {6, 8},
              "(5,1B),(1,1B),(6,1B),(4,2B),(3,7L),(4,1L)", 1341.9, 5, 8},
    PinnedRow{"S17", Strategy::twocatac, x7ti_profile(), {6, 8},
              nullptr, 1341.9, 6, 8},
    PinnedRow{"S18", Strategy::fertac, x7ti_profile(), {6, 8},
              "(3,1L),(2,1L),(3,1B),(4,1L),(6,5L),(1,4B),(4,1B)", 1552.3, 6, 8},
    PinnedRow{"S19", Strategy::otac_big, x7ti_profile(), {6, 8},
              "(8,1B),(7,1B),(4,3B),(4,1B)", 2867.0, 6, 0},
    PinnedRow{"S20", Strategy::otac_little, x7ti_profile(), {6, 8},
              "(5,1L),(5,1L),(5,1L),(4,4L),(4,1L)", 3745.1, 0, 8}),
    [](const ::testing::TestParamInfo<PinnedRow>& info) { return info.param.id; });
// clang-format on

TEST(Table2Regression, HeradDominatesAllStrategiesInPeriod)
{
    for (const auto* profile : {&mac_studio_profile(), &x7ti_profile()}) {
        const auto chain = profile_chain(*profile);
        for (const Resources resources : {profile->cores_half, profile->cores_full}) {
            const double optimal = schedule(ScheduleRequest{chain, resources, Strategy::herad})
                                       .solution.period(chain);
            for (const Strategy strategy : kAllStrategies) {
                const ScheduleResult result =
                    schedule(ScheduleRequest{chain, resources, strategy});
                const Solution& solution = result.solution;
                if (result.ok()) {
                    EXPECT_GE(solution.period(chain), optimal - 1e-6)
                        << to_string(strategy) << " on " << profile->name;
                }
            }
        }
    }
}

} // namespace
