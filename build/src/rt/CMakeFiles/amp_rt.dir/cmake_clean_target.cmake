file(REMOVE_RECURSE
  "libamp_rt.a"
)
