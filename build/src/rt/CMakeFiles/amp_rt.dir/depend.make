# Empty dependencies file for amp_rt.
# This may be replaced when dependencies are built.
