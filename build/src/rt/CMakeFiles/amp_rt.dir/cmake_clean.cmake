file(REMOVE_RECURSE
  "CMakeFiles/amp_rt.dir/core_emulator.cpp.o"
  "CMakeFiles/amp_rt.dir/core_emulator.cpp.o.d"
  "libamp_rt.a"
  "libamp_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
