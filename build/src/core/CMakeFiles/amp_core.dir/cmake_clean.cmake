file(REMOVE_RECURSE
  "CMakeFiles/amp_core.dir/brute_force.cpp.o"
  "CMakeFiles/amp_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/amp_core.dir/chain.cpp.o"
  "CMakeFiles/amp_core.dir/chain.cpp.o.d"
  "CMakeFiles/amp_core.dir/fertac.cpp.o"
  "CMakeFiles/amp_core.dir/fertac.cpp.o.d"
  "CMakeFiles/amp_core.dir/greedy_common.cpp.o"
  "CMakeFiles/amp_core.dir/greedy_common.cpp.o.d"
  "CMakeFiles/amp_core.dir/herad.cpp.o"
  "CMakeFiles/amp_core.dir/herad.cpp.o.d"
  "CMakeFiles/amp_core.dir/otac.cpp.o"
  "CMakeFiles/amp_core.dir/otac.cpp.o.d"
  "CMakeFiles/amp_core.dir/power.cpp.o"
  "CMakeFiles/amp_core.dir/power.cpp.o.d"
  "CMakeFiles/amp_core.dir/scheduler.cpp.o"
  "CMakeFiles/amp_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/amp_core.dir/serialize.cpp.o"
  "CMakeFiles/amp_core.dir/serialize.cpp.o.d"
  "CMakeFiles/amp_core.dir/solution.cpp.o"
  "CMakeFiles/amp_core.dir/solution.cpp.o.d"
  "CMakeFiles/amp_core.dir/twocatac.cpp.o"
  "CMakeFiles/amp_core.dir/twocatac.cpp.o.d"
  "libamp_core.a"
  "libamp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
