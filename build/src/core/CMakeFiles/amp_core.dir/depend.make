# Empty dependencies file for amp_core.
# This may be replaced when dependencies are built.
