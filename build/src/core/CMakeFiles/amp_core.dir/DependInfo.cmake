
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/amp_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/core/CMakeFiles/amp_core.dir/chain.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/chain.cpp.o.d"
  "/root/repo/src/core/fertac.cpp" "src/core/CMakeFiles/amp_core.dir/fertac.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/fertac.cpp.o.d"
  "/root/repo/src/core/greedy_common.cpp" "src/core/CMakeFiles/amp_core.dir/greedy_common.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/greedy_common.cpp.o.d"
  "/root/repo/src/core/herad.cpp" "src/core/CMakeFiles/amp_core.dir/herad.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/herad.cpp.o.d"
  "/root/repo/src/core/otac.cpp" "src/core/CMakeFiles/amp_core.dir/otac.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/otac.cpp.o.d"
  "/root/repo/src/core/power.cpp" "src/core/CMakeFiles/amp_core.dir/power.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/power.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/amp_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/amp_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/core/CMakeFiles/amp_core.dir/solution.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/solution.cpp.o.d"
  "/root/repo/src/core/twocatac.cpp" "src/core/CMakeFiles/amp_core.dir/twocatac.cpp.o" "gcc" "src/core/CMakeFiles/amp_core.dir/twocatac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
