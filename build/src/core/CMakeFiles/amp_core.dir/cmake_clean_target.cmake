file(REMOVE_RECURSE
  "libamp_core.a"
)
