file(REMOVE_RECURSE
  "libamp_dsim.a"
)
