file(REMOVE_RECURSE
  "CMakeFiles/amp_dsim.dir/simulator.cpp.o"
  "CMakeFiles/amp_dsim.dir/simulator.cpp.o.d"
  "libamp_dsim.a"
  "libamp_dsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_dsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
