# Empty dependencies file for amp_dsim.
# This may be replaced when dependencies are built.
