file(REMOVE_RECURSE
  "libamp_common.a"
)
