file(REMOVE_RECURSE
  "CMakeFiles/amp_common.dir/argparse.cpp.o"
  "CMakeFiles/amp_common.dir/argparse.cpp.o.d"
  "CMakeFiles/amp_common.dir/rng.cpp.o"
  "CMakeFiles/amp_common.dir/rng.cpp.o.d"
  "CMakeFiles/amp_common.dir/table.cpp.o"
  "CMakeFiles/amp_common.dir/table.cpp.o.d"
  "libamp_common.a"
  "libamp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
