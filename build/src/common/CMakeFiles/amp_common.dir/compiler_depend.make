# Empty compiler generated dependencies file for amp_common.
# This may be replaced when dependencies are built.
