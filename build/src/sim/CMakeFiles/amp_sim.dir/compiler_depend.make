# Empty compiler generated dependencies file for amp_sim.
# This may be replaced when dependencies are built.
