file(REMOVE_RECURSE
  "CMakeFiles/amp_sim.dir/generator.cpp.o"
  "CMakeFiles/amp_sim.dir/generator.cpp.o.d"
  "CMakeFiles/amp_sim.dir/stats.cpp.o"
  "CMakeFiles/amp_sim.dir/stats.cpp.o.d"
  "libamp_sim.a"
  "libamp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
