file(REMOVE_RECURSE
  "libamp_sim.a"
)
