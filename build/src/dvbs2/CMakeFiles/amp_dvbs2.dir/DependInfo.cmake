
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvbs2/common/bb_scrambler.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/bb_scrambler.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/bb_scrambler.cpp.o.d"
  "/root/repo/src/dvbs2/common/crc.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/crc.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/crc.cpp.o.d"
  "/root/repo/src/dvbs2/common/pilots.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/pilots.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/pilots.cpp.o.d"
  "/root/repo/src/dvbs2/common/pl_scrambler.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/pl_scrambler.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/pl_scrambler.cpp.o.d"
  "/root/repo/src/dvbs2/common/plh_framer.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/plh_framer.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/plh_framer.cpp.o.d"
  "/root/repo/src/dvbs2/common/psk.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/psk.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/psk.cpp.o.d"
  "/root/repo/src/dvbs2/common/qpsk.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/qpsk.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/qpsk.cpp.o.d"
  "/root/repo/src/dvbs2/common/rrc_filter.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/rrc_filter.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/common/rrc_filter.cpp.o.d"
  "/root/repo/src/dvbs2/fec/bch.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/fec/bch.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/fec/bch.cpp.o.d"
  "/root/repo/src/dvbs2/fec/galois.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/fec/galois.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/fec/galois.cpp.o.d"
  "/root/repo/src/dvbs2/fec/ldpc.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/fec/ldpc.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/fec/ldpc.cpp.o.d"
  "/root/repo/src/dvbs2/io/monitor.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/io/monitor.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/io/monitor.cpp.o.d"
  "/root/repo/src/dvbs2/io/radio.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/io/radio.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/io/radio.cpp.o.d"
  "/root/repo/src/dvbs2/modcod.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/modcod.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/modcod.cpp.o.d"
  "/root/repo/src/dvbs2/profiles.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/profiles.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/profiles.cpp.o.d"
  "/root/repo/src/dvbs2/receiver.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/receiver.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/receiver.cpp.o.d"
  "/root/repo/src/dvbs2/rx/agc.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/agc.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/agc.cpp.o.d"
  "/root/repo/src/dvbs2/rx/frame_sync.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/frame_sync.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/frame_sync.cpp.o.d"
  "/root/repo/src/dvbs2/rx/freq_coarse.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/freq_coarse.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/freq_coarse.cpp.o.d"
  "/root/repo/src/dvbs2/rx/freq_fine.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/freq_fine.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/freq_fine.cpp.o.d"
  "/root/repo/src/dvbs2/rx/noise_estimator.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/noise_estimator.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/noise_estimator.cpp.o.d"
  "/root/repo/src/dvbs2/rx/timing.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/timing.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/rx/timing.cpp.o.d"
  "/root/repo/src/dvbs2/transmitter_chain.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/transmitter_chain.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/transmitter_chain.cpp.o.d"
  "/root/repo/src/dvbs2/tx/channel.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/tx/channel.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/tx/channel.cpp.o.d"
  "/root/repo/src/dvbs2/tx/transmitter.cpp" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/tx/transmitter.cpp.o" "gcc" "src/dvbs2/CMakeFiles/amp_dvbs2.dir/tx/transmitter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/amp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
