file(REMOVE_RECURSE
  "libamp_dvbs2.a"
)
