# Empty compiler generated dependencies file for amp_dvbs2.
# This may be replaced when dependencies are built.
