file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/brute_force_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/brute_force_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/chain_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/chain_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/extensions_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/extensions_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/fertac_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/fertac_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/greedy_common_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/greedy_common_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/herad_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/herad_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/optimality_property_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/optimality_property_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/otac_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/otac_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/power_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/power_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/scheduler_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/scheduler_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/serialize_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/serialize_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/solution_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/solution_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/twocatac_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/twocatac_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
