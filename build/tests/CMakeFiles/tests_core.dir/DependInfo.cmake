
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/brute_force_test.cpp" "tests/CMakeFiles/tests_core.dir/core/brute_force_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/brute_force_test.cpp.o.d"
  "/root/repo/tests/core/chain_test.cpp" "tests/CMakeFiles/tests_core.dir/core/chain_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/chain_test.cpp.o.d"
  "/root/repo/tests/core/extensions_test.cpp" "tests/CMakeFiles/tests_core.dir/core/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/extensions_test.cpp.o.d"
  "/root/repo/tests/core/fertac_test.cpp" "tests/CMakeFiles/tests_core.dir/core/fertac_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/fertac_test.cpp.o.d"
  "/root/repo/tests/core/greedy_common_test.cpp" "tests/CMakeFiles/tests_core.dir/core/greedy_common_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/greedy_common_test.cpp.o.d"
  "/root/repo/tests/core/herad_test.cpp" "tests/CMakeFiles/tests_core.dir/core/herad_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/herad_test.cpp.o.d"
  "/root/repo/tests/core/optimality_property_test.cpp" "tests/CMakeFiles/tests_core.dir/core/optimality_property_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/optimality_property_test.cpp.o.d"
  "/root/repo/tests/core/otac_test.cpp" "tests/CMakeFiles/tests_core.dir/core/otac_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/otac_test.cpp.o.d"
  "/root/repo/tests/core/power_test.cpp" "tests/CMakeFiles/tests_core.dir/core/power_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/power_test.cpp.o.d"
  "/root/repo/tests/core/scheduler_test.cpp" "tests/CMakeFiles/tests_core.dir/core/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/scheduler_test.cpp.o.d"
  "/root/repo/tests/core/serialize_test.cpp" "tests/CMakeFiles/tests_core.dir/core/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/serialize_test.cpp.o.d"
  "/root/repo/tests/core/solution_test.cpp" "tests/CMakeFiles/tests_core.dir/core/solution_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/solution_test.cpp.o.d"
  "/root/repo/tests/core/twocatac_test.cpp" "tests/CMakeFiles/tests_core.dir/core/twocatac_test.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/core/twocatac_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
