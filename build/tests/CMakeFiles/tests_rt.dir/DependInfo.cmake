
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rt/core_emulator_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/core_emulator_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/core_emulator_test.cpp.o.d"
  "/root/repo/tests/rt/dynamic_executor_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/dynamic_executor_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/dynamic_executor_test.cpp.o.d"
  "/root/repo/tests/rt/module_graph_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/module_graph_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/module_graph_test.cpp.o.d"
  "/root/repo/tests/rt/ordered_queue_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/ordered_queue_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/ordered_queue_test.cpp.o.d"
  "/root/repo/tests/rt/pipeline_fuzz_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/pipeline_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/pipeline_fuzz_test.cpp.o.d"
  "/root/repo/tests/rt/pipeline_stress_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/pipeline_stress_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/pipeline_stress_test.cpp.o.d"
  "/root/repo/tests/rt/pipeline_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/pipeline_test.cpp.o.d"
  "/root/repo/tests/rt/profiler_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/profiler_test.cpp.o.d"
  "/root/repo/tests/rt/task_test.cpp" "tests/CMakeFiles/tests_rt.dir/rt/task_test.cpp.o" "gcc" "tests/CMakeFiles/tests_rt.dir/rt/task_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/amp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/amp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
