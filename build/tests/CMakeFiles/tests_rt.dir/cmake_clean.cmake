file(REMOVE_RECURSE
  "CMakeFiles/tests_rt.dir/rt/core_emulator_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/core_emulator_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/dynamic_executor_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/dynamic_executor_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/module_graph_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/module_graph_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/ordered_queue_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/ordered_queue_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/pipeline_fuzz_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/pipeline_fuzz_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/pipeline_stress_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/pipeline_stress_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/pipeline_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/pipeline_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/profiler_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/profiler_test.cpp.o.d"
  "CMakeFiles/tests_rt.dir/rt/task_test.cpp.o"
  "CMakeFiles/tests_rt.dir/rt/task_test.cpp.o.d"
  "tests_rt"
  "tests_rt.pdb"
  "tests_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
