
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dvbs2/bch_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/bch_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/bch_test.cpp.o.d"
  "/root/repo/tests/dvbs2/crc_modcod_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/crc_modcod_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/crc_modcod_test.cpp.o.d"
  "/root/repo/tests/dvbs2/fec_param_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/fec_param_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/fec_param_test.cpp.o.d"
  "/root/repo/tests/dvbs2/filter_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/filter_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/filter_test.cpp.o.d"
  "/root/repo/tests/dvbs2/framer_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/framer_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/framer_test.cpp.o.d"
  "/root/repo/tests/dvbs2/galois_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/galois_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/galois_test.cpp.o.d"
  "/root/repo/tests/dvbs2/ldpc_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/ldpc_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/ldpc_test.cpp.o.d"
  "/root/repo/tests/dvbs2/modcod_loopback_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/modcod_loopback_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/modcod_loopback_test.cpp.o.d"
  "/root/repo/tests/dvbs2/modem_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/modem_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/modem_test.cpp.o.d"
  "/root/repo/tests/dvbs2/psk_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/psk_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/psk_test.cpp.o.d"
  "/root/repo/tests/dvbs2/radio_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/radio_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/radio_test.cpp.o.d"
  "/root/repo/tests/dvbs2/scrambler_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/scrambler_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/scrambler_test.cpp.o.d"
  "/root/repo/tests/dvbs2/sync_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/sync_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/sync_test.cpp.o.d"
  "/root/repo/tests/dvbs2/table2_regression_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/table2_regression_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/table2_regression_test.cpp.o.d"
  "/root/repo/tests/dvbs2/transceiver_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/transceiver_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/transceiver_test.cpp.o.d"
  "/root/repo/tests/dvbs2/transmitter_chain_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/transmitter_chain_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/transmitter_chain_test.cpp.o.d"
  "/root/repo/tests/dvbs2/transmitter_test.cpp" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/transmitter_test.cpp.o" "gcc" "tests/CMakeFiles/tests_dvbs2.dir/dvbs2/transmitter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dvbs2/CMakeFiles/amp_dvbs2.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/amp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/amp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
