# Empty dependencies file for tests_dvbs2.
# This may be replaced when dependencies are built.
