file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/common/argparse_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/argparse_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/rng_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/table_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/table_test.cpp.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
