# Empty compiler generated dependencies file for tests_dsim.
# This may be replaced when dependencies are built.
