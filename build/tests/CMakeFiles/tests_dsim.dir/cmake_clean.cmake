file(REMOVE_RECURSE
  "CMakeFiles/tests_dsim.dir/dsim/simulator_test.cpp.o"
  "CMakeFiles/tests_dsim.dir/dsim/simulator_test.cpp.o.d"
  "tests_dsim"
  "tests_dsim.pdb"
  "tests_dsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_dsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
