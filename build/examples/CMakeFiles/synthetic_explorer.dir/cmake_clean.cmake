file(REMOVE_RECURSE
  "CMakeFiles/synthetic_explorer.dir/synthetic_explorer.cpp.o"
  "CMakeFiles/synthetic_explorer.dir/synthetic_explorer.cpp.o.d"
  "synthetic_explorer"
  "synthetic_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
