# Empty dependencies file for synthetic_explorer.
# This may be replaced when dependencies are built.
