# Empty dependencies file for dvbs2_receiver.
# This may be replaced when dependencies are built.
