file(REMOVE_RECURSE
  "CMakeFiles/dvbs2_receiver.dir/dvbs2_receiver.cpp.o"
  "CMakeFiles/dvbs2_receiver.dir/dvbs2_receiver.cpp.o.d"
  "dvbs2_receiver"
  "dvbs2_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvbs2_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
