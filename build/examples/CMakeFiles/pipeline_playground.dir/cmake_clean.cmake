file(REMOVE_RECURSE
  "CMakeFiles/pipeline_playground.dir/pipeline_playground.cpp.o"
  "CMakeFiles/pipeline_playground.dir/pipeline_playground.cpp.o.d"
  "pipeline_playground"
  "pipeline_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
