# Empty compiler generated dependencies file for pipeline_playground.
# This may be replaced when dependencies are built.
