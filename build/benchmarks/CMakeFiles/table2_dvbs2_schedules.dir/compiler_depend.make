# Empty compiler generated dependencies file for table2_dvbs2_schedules.
# This may be replaced when dependencies are built.
