file(REMOVE_RECURSE
  "../bench/table2_dvbs2_schedules"
  "../bench/table2_dvbs2_schedules.pdb"
  "CMakeFiles/table2_dvbs2_schedules.dir/table2_dvbs2_schedules.cpp.o"
  "CMakeFiles/table2_dvbs2_schedules.dir/table2_dvbs2_schedules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dvbs2_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
