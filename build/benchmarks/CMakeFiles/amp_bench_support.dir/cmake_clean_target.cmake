file(REMOVE_RECURSE
  "libamp_bench_support.a"
)
