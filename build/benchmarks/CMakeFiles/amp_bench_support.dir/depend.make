# Empty dependencies file for amp_bench_support.
# This may be replaced when dependencies are built.
