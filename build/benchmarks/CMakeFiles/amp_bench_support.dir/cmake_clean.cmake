file(REMOVE_RECURSE
  "CMakeFiles/amp_bench_support.dir/support/campaign.cpp.o"
  "CMakeFiles/amp_bench_support.dir/support/campaign.cpp.o.d"
  "CMakeFiles/amp_bench_support.dir/support/dvbs2_eval.cpp.o"
  "CMakeFiles/amp_bench_support.dir/support/dvbs2_eval.cpp.o.d"
  "libamp_bench_support.a"
  "libamp_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
