
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/benchmarks/support/campaign.cpp" "benchmarks/CMakeFiles/amp_bench_support.dir/support/campaign.cpp.o" "gcc" "benchmarks/CMakeFiles/amp_bench_support.dir/support/campaign.cpp.o.d"
  "/root/repo/benchmarks/support/dvbs2_eval.cpp" "benchmarks/CMakeFiles/amp_bench_support.dir/support/dvbs2_eval.cpp.o" "gcc" "benchmarks/CMakeFiles/amp_bench_support.dir/support/dvbs2_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/amp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsim/CMakeFiles/amp_dsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dvbs2/CMakeFiles/amp_dvbs2.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/amp_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
