# Empty compiler generated dependencies file for ablation_stage_merge.
# This may be replaced when dependencies are built.
