file(REMOVE_RECURSE
  "../bench/ablation_stage_merge"
  "../bench/ablation_stage_merge.pdb"
  "CMakeFiles/ablation_stage_merge.dir/ablation_stage_merge.cpp.o"
  "CMakeFiles/ablation_stage_merge.dir/ablation_stage_merge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stage_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
