file(REMOVE_RECURSE
  "../bench/ext_fertac_preference"
  "../bench/ext_fertac_preference.pdb"
  "CMakeFiles/ext_fertac_preference.dir/ext_fertac_preference.cpp.o"
  "CMakeFiles/ext_fertac_preference.dir/ext_fertac_preference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fertac_preference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
