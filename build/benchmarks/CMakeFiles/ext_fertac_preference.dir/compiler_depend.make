# Empty compiler generated dependencies file for ext_fertac_preference.
# This may be replaced when dependencies are built.
