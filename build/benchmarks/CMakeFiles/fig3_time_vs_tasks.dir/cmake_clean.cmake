file(REMOVE_RECURSE
  "../bench/fig3_time_vs_tasks"
  "../bench/fig3_time_vs_tasks.pdb"
  "CMakeFiles/fig3_time_vs_tasks.dir/fig3_time_vs_tasks.cpp.o"
  "CMakeFiles/fig3_time_vs_tasks.dir/fig3_time_vs_tasks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_time_vs_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
