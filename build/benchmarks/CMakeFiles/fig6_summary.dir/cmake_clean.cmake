file(REMOVE_RECURSE
  "../bench/fig6_summary"
  "../bench/fig6_summary.pdb"
  "CMakeFiles/fig6_summary.dir/fig6_summary.cpp.o"
  "CMakeFiles/fig6_summary.dir/fig6_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
