file(REMOVE_RECURSE
  "../bench/fig4_time_vs_cores"
  "../bench/fig4_time_vs_cores.pdb"
  "CMakeFiles/fig4_time_vs_cores.dir/fig4_time_vs_cores.cpp.o"
  "CMakeFiles/fig4_time_vs_cores.dir/fig4_time_vs_cores.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_time_vs_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
