# Empty compiler generated dependencies file for fig4_time_vs_cores.
# This may be replaced when dependencies are built.
