file(REMOVE_RECURSE
  "../bench/table3_task_profile"
  "../bench/table3_task_profile.pdb"
  "CMakeFiles/table3_task_profile.dir/table3_task_profile.cpp.o"
  "CMakeFiles/table3_task_profile.dir/table3_task_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_task_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
