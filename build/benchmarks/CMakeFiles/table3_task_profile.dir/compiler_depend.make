# Empty compiler generated dependencies file for table3_task_profile.
# This may be replaced when dependencies are built.
