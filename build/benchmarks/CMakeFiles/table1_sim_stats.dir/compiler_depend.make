# Empty compiler generated dependencies file for table1_sim_stats.
# This may be replaced when dependencies are built.
