file(REMOVE_RECURSE
  "../bench/ext_workload_robustness"
  "../bench/ext_workload_robustness.pdb"
  "CMakeFiles/ext_workload_robustness.dir/ext_workload_robustness.cpp.o"
  "CMakeFiles/ext_workload_robustness.dir/ext_workload_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_workload_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
