# Empty dependencies file for ext_workload_robustness.
# This may be replaced when dependencies are built.
