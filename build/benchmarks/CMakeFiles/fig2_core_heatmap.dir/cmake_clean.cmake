file(REMOVE_RECURSE
  "../bench/fig2_core_heatmap"
  "../bench/fig2_core_heatmap.pdb"
  "CMakeFiles/fig2_core_heatmap.dir/fig2_core_heatmap.cpp.o"
  "CMakeFiles/fig2_core_heatmap.dir/fig2_core_heatmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_core_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
