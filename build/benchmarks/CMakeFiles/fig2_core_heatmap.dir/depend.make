# Empty dependencies file for fig2_core_heatmap.
# This may be replaced when dependencies are built.
