# Empty dependencies file for fig1_slowdown_cdf.
# This may be replaced when dependencies are built.
