file(REMOVE_RECURSE
  "../bench/fig1_slowdown_cdf"
  "../bench/fig1_slowdown_cdf.pdb"
  "CMakeFiles/fig1_slowdown_cdf.dir/fig1_slowdown_cdf.cpp.o"
  "CMakeFiles/fig1_slowdown_cdf.dir/fig1_slowdown_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_slowdown_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
