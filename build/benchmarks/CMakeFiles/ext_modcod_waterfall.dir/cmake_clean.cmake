file(REMOVE_RECURSE
  "../bench/ext_modcod_waterfall"
  "../bench/ext_modcod_waterfall.pdb"
  "CMakeFiles/ext_modcod_waterfall.dir/ext_modcod_waterfall.cpp.o"
  "CMakeFiles/ext_modcod_waterfall.dir/ext_modcod_waterfall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_modcod_waterfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
