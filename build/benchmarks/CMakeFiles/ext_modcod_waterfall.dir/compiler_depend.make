# Empty compiler generated dependencies file for ext_modcod_waterfall.
# This may be replaced when dependencies are built.
