# Empty dependencies file for ext_power_latency.
# This may be replaced when dependencies are built.
