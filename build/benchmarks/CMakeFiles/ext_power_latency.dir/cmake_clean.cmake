file(REMOVE_RECURSE
  "../bench/ext_power_latency"
  "../bench/ext_power_latency.pdb"
  "CMakeFiles/ext_power_latency.dir/ext_power_latency.cpp.o"
  "CMakeFiles/ext_power_latency.dir/ext_power_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_power_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
