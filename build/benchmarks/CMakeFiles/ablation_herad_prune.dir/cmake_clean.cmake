file(REMOVE_RECURSE
  "../bench/ablation_herad_prune"
  "../bench/ablation_herad_prune.pdb"
  "CMakeFiles/ablation_herad_prune.dir/ablation_herad_prune.cpp.o"
  "CMakeFiles/ablation_herad_prune.dir/ablation_herad_prune.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_herad_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
