# Empty compiler generated dependencies file for ablation_herad_prune.
# This may be replaced when dependencies are built.
