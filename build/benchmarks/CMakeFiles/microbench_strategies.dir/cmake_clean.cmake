file(REMOVE_RECURSE
  "../bench/microbench_strategies"
  "../bench/microbench_strategies.pdb"
  "CMakeFiles/microbench_strategies.dir/microbench_strategies.cpp.o"
  "CMakeFiles/microbench_strategies.dir/microbench_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
