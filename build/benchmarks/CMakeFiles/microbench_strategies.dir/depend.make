# Empty dependencies file for microbench_strategies.
# This may be replaced when dependencies are built.
