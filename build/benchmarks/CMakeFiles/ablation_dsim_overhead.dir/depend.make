# Empty dependencies file for ablation_dsim_overhead.
# This may be replaced when dependencies are built.
