file(REMOVE_RECURSE
  "../bench/ablation_dsim_overhead"
  "../bench/ablation_dsim_overhead.pdb"
  "CMakeFiles/ablation_dsim_overhead.dir/ablation_dsim_overhead.cpp.o"
  "CMakeFiles/ablation_dsim_overhead.dir/ablation_dsim_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dsim_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
