file(REMOVE_RECURSE
  "../bench/ablation_herad_fast_u"
  "../bench/ablation_herad_fast_u.pdb"
  "CMakeFiles/ablation_herad_fast_u.dir/ablation_herad_fast_u.cpp.o"
  "CMakeFiles/ablation_herad_fast_u.dir/ablation_herad_fast_u.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_herad_fast_u.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
