# Empty dependencies file for ablation_herad_fast_u.
# This may be replaced when dependencies are built.
