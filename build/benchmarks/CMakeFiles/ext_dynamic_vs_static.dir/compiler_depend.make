# Empty compiler generated dependencies file for ext_dynamic_vs_static.
# This may be replaced when dependencies are built.
