file(REMOVE_RECURSE
  "../bench/ext_dynamic_vs_static"
  "../bench/ext_dynamic_vs_static.pdb"
  "CMakeFiles/ext_dynamic_vs_static.dir/ext_dynamic_vs_static.cpp.o"
  "CMakeFiles/ext_dynamic_vs_static.dir/ext_dynamic_vs_static.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
