# Empty compiler generated dependencies file for ext_generalization.
# This may be replaced when dependencies are built.
