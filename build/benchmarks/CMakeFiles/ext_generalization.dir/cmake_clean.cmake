file(REMOVE_RECURSE
  "../bench/ext_generalization"
  "../bench/ext_generalization.pdb"
  "CMakeFiles/ext_generalization.dir/ext_generalization.cpp.o"
  "CMakeFiles/ext_generalization.dir/ext_generalization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
