// Ablation: sensitivity of the greedy strategies' binary search to the
// termination epsilon (the paper uses 1 / (b + l)). Smaller epsilons cost
// iterations; larger ones can miss better periods. Measured via a modified
// search over the paper's scenario grid.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/fertac.hpp"
#include "core/greedy_common.hpp"
#include "core/herad.hpp"
#include "sim/generator.hpp"
#include "sim/stats.hpp"

#include <cstdio>

namespace {

using namespace amp;

/// FERTAC with an explicit epsilon scale (1.0 = the paper's 1/(b+l)).
core::Solution fertac_with_epsilon(const core::TaskChain& chain, core::Resources resources,
                                   double epsilon_scale, core::ScheduleStats* stats)
{
    const int n = chain.size();
    const double sum_big = chain.interval_sum(1, n, core::CoreType::big);
    const double sum_little = chain.interval_sum(1, n, core::CoreType::little);
    const double period_min = std::max(sum_big / resources.total(),
                                       chain.max_sequential_weight(core::CoreType::big));
    const double period_max = period_min + chain.max_weight(core::CoreType::little);
    const double epsilon = epsilon_scale / resources.total();
    return core::binary_search_period(
        chain, resources, period_min, period_max, epsilon, std::max(sum_big, sum_little) + 1.0,
        [](const core::TaskChain& c, int s, core::Resources avail, double period) {
            return core::fertac_compute_solution(c, s, avail, period);
        },
        stats);
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 200));

    std::printf("== Ablation: binary-search epsilon (FERTAC, R=(10,10), SR=0.5) ==\n\n");
    TextTable table({"epsilon scale", "avg slowdown vs HeRAD", "% optimal", "avg iterations"});
    for (const double scale : {16.0, 4.0, 1.0, 0.25, 0.0625}) {
        Rng rng{0xe9};
        sim::GeneratorConfig generator;
        std::vector<double> slowdowns;
        double iterations = 0.0;
        for (int c = 0; c < chains; ++c) {
            const auto chain = sim::generate_chain(generator, rng);
            const double optimal = core::herad_optimal_period(chain, {10, 10});
            core::ScheduleStats stats;
            const auto solution = fertac_with_epsilon(chain, {10, 10}, scale, &stats);
            slowdowns.push_back(solution.period(chain) / optimal);
            iterations += stats.iterations;
        }
        const auto summary = sim::summarize_slowdowns(slowdowns);
        table.add_row({fmt(scale, 4), fmt(summary.average, 4), fmt_pct(summary.pct_optimal, 1),
                       fmt(iterations / chains, 1)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\n(scale 1.0 is the paper's epsilon = 1/(b+l))\n");
    return 0;
}
