// Extension bench: multi-tenant arbitration of one shared (b, l) pool
// (docs/ARBITER.md). Three scenarios:
//
//   1. Policy mix. A skewed 8-tenant fleet (weights 8:4:4:2:2:1:1:1,
//      heterogeneous chain sizes, per-tenant demand proportional to
//      weight) replayed in virtual time by dsim::simulate_multi_tenant
//      under the three allocation policies: the arbiter's weighted
//      max-min water-filling, the static even split a no-arbiter
//      deployment would use, and strict priority service. Mid-window
//      churn (a late join and an early leave) exercises re-arbitration
//      under every policy. Reported per policy: aggregate goodput
//      (sum of min(rate, demand) over tenants) and the Jain fairness
//      index of weight-normalized rates. Weighted max-min must beat the
//      even split on BOTH metrics.
//
//   2. Determinism audit. The weighted max-min scenario replayed twice
//      against fresh solver services; the two rearbitration traces
//      (grant logs, budgets, periods -- bitwise) must be identical.
//
//   3. Live reweight. A real rt::Pipeline serves one tenant while a
//      second tenant competes for the same 4 big cores. Mid-stream the
//      pipeline tenant's weight is raised 1 -> 3; the arbiter
//      re-arbitrates, the budget change compiles to a resize-only plan
//      delta and reaches the running pipeline through
//      rt::PipelineTenantEndpoint as a frame-granular in-flight swap:
//      no drain, no dropped frame, the spawned replica joins the live
//      segment.
//
// Flags: --horizon-ms=N virtual window of scenario 1 (default 1000),
// --demand-util=F demand as a fraction of each tenant's fair rate
// (default 0.8), --frames=N scenario-3 stream length (default 400),
// --task-us=U scenario-3 per-task sleep (default 150), --workers=N
// solver workers (default 2), --json=<file> amp-bench-v1 report.

#include "arb/arbiter.hpp"
#include "common/argparse.hpp"
#include "common/table.hpp"
#include "dsim/simulator.hpp"
#include "rt/pipeline.hpp"
#include "rt/task.hpp"
#include "rt/tenant_endpoint.hpp"
#include "support/bench_json.hpp"
#include "svc/solver_service.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace amp;

struct Frame {
    std::uint64_t seq = 0;
};

/// All-replicable chain of `tasks` tasks, `total_big_us` total big-core
/// weight, littles at half speed -- a clean speedup curve on both types.
core::TaskChain fleet_chain(int tasks, double total_big_us)
{
    std::vector<core::TaskDesc> descs;
    descs.reserve(static_cast<std::size_t>(tasks));
    const double w_big = total_big_us / tasks;
    for (int i = 1; i <= tasks; ++i)
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), w_big, 2.0 * w_big, true});
    return core::TaskChain{std::move(descs)};
}

/// The skewed fleet: heavy interactive tenants down to light batch ones.
struct FleetTenant {
    const char* name;
    double weight;
    int tasks;
    double total_big_us;
};

constexpr FleetTenant kFleet[] = {
    {"video", 8.0, 6, 120.0}, {"asr", 4.0, 4, 80.0},    {"ocr", 4.0, 5, 100.0},
    {"rank", 2.0, 4, 60.0},   {"embed", 2.0, 3, 45.0},  {"batch-a", 1.0, 4, 50.0},
    {"batch-b", 1.0, 3, 40.0}, {"batch-c", 1.0, 5, 70.0},
};
constexpr std::size_t kFleetSize = std::size(kFleet);

dsim::MultiTenantScenario fleet_scenario(arb::AllocPolicy policy, double demand_unit,
                                         std::int64_t horizon_us,
                                         svc::SolverService* service)
{
    dsim::MultiTenantScenario scenario;
    scenario.pool = core::Resources{12, 8};
    scenario.policy = policy;
    scenario.horizon_us = horizon_us;
    scenario.service = service;
    for (std::size_t t = 0; t < kFleetSize; ++t) {
        dsim::SimTenant tenant;
        tenant.spec.name = kFleet[t].name;
        tenant.spec.chain = fleet_chain(kFleet[t].tasks, kFleet[t].total_big_us);
        tenant.spec.weight = kFleet[t].weight;
        tenant.spec.priority = static_cast<std::int8_t>(kFleet[t].weight);
        tenant.demand_fps = demand_unit > 0.0 ? kFleet[t].weight * demand_unit : 0.0;
        scenario.tenants.push_back(std::move(tenant));
    }
    // Everyone but "ocr" joins at t=0; churn mid-window under all policies:
    // ocr joins at 25%, embed leaves at 70%.
    for (std::size_t t = 0; t < kFleetSize; ++t)
        if (std::string{kFleet[t].name} != "ocr")
            scenario.events.push_back(
                dsim::TenantEvent{0, dsim::TenantEventKind::join, t});
    scenario.events.push_back(
        dsim::TenantEvent{horizon_us / 4, dsim::TenantEventKind::join, 2});
    scenario.events.push_back(
        dsim::TenantEvent{horizon_us * 7 / 10, dsim::TenantEventKind::leave, 4});
    return scenario;
}

/// Fair per-weight rate: probe the weighted max-min allocation without
/// demand caps and take the worst weight-normalized rate across tenants --
/// the level an ideal arbiter sustains for every unit of weight.
double fair_unit_rate(std::int64_t horizon_us, int workers)
{
    svc::SolverService service{svc::ServiceConfig{.workers = workers}};
    const dsim::MultiTenantResult probe = dsim::simulate_multi_tenant(fleet_scenario(
        arb::AllocPolicy::weighted_max_min, 0.0, horizon_us, &service));
    double unit = 0.0;
    for (const dsim::TenantSimStats& tenant : probe.tenants)
        if (tenant.present_us > 0.0
            && (unit == 0.0 || tenant.mean_weighted_rate < unit))
            unit = tenant.mean_weighted_rate;
    return unit * 1e6; // per-us rate -> frames per second
}

} // namespace

int main(int argc, char** argv)
{
    ArgParse args{argc, argv};
    const std::int64_t horizon_us = args.get_int("horizon-ms", 1000) * 1000;
    const double demand_util = args.get_double("demand-util", 0.8);
    const std::uint64_t frames = static_cast<std::uint64_t>(args.get_int("frames", 400));
    const int task_us = static_cast<int>(args.get_int("task-us", 150));
    const int workers = static_cast<int>(args.get_int("workers", 2));

    bench::JsonReport report{"ext_multi_tenant"};
    report.param("horizon_ms", horizon_us / 1000)
        .param("demand_util", demand_util)
        .param("frames", static_cast<std::int64_t>(frames))
        .param("task_us", task_us)
        .param("workers", workers);

    // -- scenario 1: policy mix --------------------------------------------
    const double unit_fps = fair_unit_rate(horizon_us, workers) * demand_util;
    std::printf("fleet: %zu tenants, pool (12b, 8l), demand %.0f fps per unit weight\n\n",
                kFleetSize, unit_fps);

    struct PolicyOutcome {
        arb::AllocPolicy policy;
        dsim::MultiTenantResult result;
    };
    std::vector<PolicyOutcome> outcomes;
    TextTable table{{"policy", "goodput_fps", "jain", "rearbs", "probes"}};
    for (const arb::AllocPolicy policy :
         {arb::AllocPolicy::weighted_max_min, arb::AllocPolicy::even_split,
          arb::AllocPolicy::priority_only}) {
        svc::SolverService service{svc::ServiceConfig{.workers = workers}};
        dsim::MultiTenantResult result = dsim::simulate_multi_tenant(
            fleet_scenario(policy, unit_fps, horizon_us, &service));
        table.add_row({to_string(policy), fmt(result.aggregate_goodput_fps, 1),
                       fmt(result.jain_weighted, 4),
                       std::to_string(result.rearbitrations),
                       std::to_string(result.probes)});
        auto& record = report.add_record();
        record.set("scenario", "policy_mix")
            .set("policy", to_string(policy))
            .set("goodput_fps", result.aggregate_goodput_fps)
            .set("jain_weighted", result.jain_weighted)
            .set("rearbitrations", result.rearbitrations)
            .set("probes", result.probes);
        outcomes.push_back(PolicyOutcome{policy, std::move(result)});
    }
    std::printf("%s\n", table.str().c_str());

    const dsim::MultiTenantResult& fair = outcomes[0].result;
    const dsim::MultiTenantResult& even = outcomes[1].result;
    const bool beats_even = fair.aggregate_goodput_fps > even.aggregate_goodput_fps
        && fair.jain_weighted > even.jain_weighted;
    std::printf("weighted max-min vs even split: goodput x%.2f, jain %+0.3f -> %s\n\n",
                fair.aggregate_goodput_fps / even.aggregate_goodput_fps,
                fair.jain_weighted - even.jain_weighted,
                beats_even ? "PASS" : "FAIL");
    report.add_record()
        .set("scenario", "policy_summary")
        .set("goodput_ratio_vs_even",
             fair.aggregate_goodput_fps / even.aggregate_goodput_fps)
        .set("jain_delta_vs_even", fair.jain_weighted - even.jain_weighted)
        .set("weighted_beats_even", beats_even);

    // -- scenario 2: determinism audit -------------------------------------
    bool trace_equal = false;
    {
        svc::SolverService service_a{svc::ServiceConfig{.workers = workers}};
        svc::SolverService service_b{svc::ServiceConfig{.workers = workers}};
        const dsim::MultiTenantResult first = dsim::simulate_multi_tenant(fleet_scenario(
            arb::AllocPolicy::weighted_max_min, unit_fps, horizon_us, &service_a));
        const dsim::MultiTenantResult second = dsim::simulate_multi_tenant(fleet_scenario(
            arb::AllocPolicy::weighted_max_min, unit_fps, horizon_us, &service_b));
        trace_equal = first.trace == second.trace;
        std::printf("determinism: %zu-record trace replayed %s\n\n", first.trace.size(),
                    trace_equal ? "bit-identically" : "WITH DIVERGENCE");
        report.add_record()
            .set("scenario", "determinism")
            .set("trace_records", static_cast<std::uint64_t>(first.trace.size()))
            .set("trace_equal", trace_equal);
    }

    // -- scenario 3: live reweight through a running pipeline --------------
    obs::MetricsRegistry metrics;
    svc::SolverService service{
        svc::ServiceConfig{.workers = workers, .metrics = &metrics}};
    arb::ArbiterConfig config;
    config.pool = core::Resources{4, 0};
    config.service = &service;
    arb::Arbiter arbiter{config};

    // The pipeline tenant only runs on big cores; its plan is one
    // replicated stage, so every budget change is a resize-only delta.
    core::TaskChain live_chain = fleet_chain(4, 40.0);
    {
        std::vector<core::TaskDesc> big_only;
        for (int i = 1; i <= live_chain.size(); ++i) {
            const core::TaskDesc& task = live_chain.task(i);
            big_only.push_back(core::TaskDesc{task.name, task.w_big, 1e6, true});
        }
        live_chain = core::TaskChain{std::move(big_only)};
    }
    arb::TenantSpec live_spec;
    live_spec.name = "live";
    live_spec.chain = live_chain;
    arb::TenantSpec rival_spec;
    rival_spec.name = "rival";
    rival_spec.chain = live_chain;
    const arb::TenantId live_id = arbiter.add_tenant(live_spec);
    arbiter.add_tenant(rival_spec);
    arbiter.rearbitrate(); // 1:1 over 4 bigs -> 2 cores each

    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= 4; ++i)
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), false,
                                                [task_us](Frame&) {
                                                    std::this_thread::sleep_for(
                                                        std::chrono::microseconds{task_us});
                                                }));
    const arb::TenantStatus before = arbiter.status(live_id);
    rt::Pipeline<Frame> pipeline{sequence, *before.planned.plan, rt::PipelineConfig{}};
    rt::PipelineTenantEndpoint<Frame> endpoint{pipeline};
    arbiter.bind_endpoint(live_id, &endpoint);

    endpoint.set_live(true);
    rt::RunResult run;
    std::uint64_t delivered = 0;
    std::thread runner{[&] {
        run = pipeline.run(frames, [&](Frame&) { ++delivered; });
    }};
    std::this_thread::sleep_for(std::chrono::milliseconds{10});

    arbiter.set_weight(live_id, 3.0); // mid-stream upgrade: 3:1 -> 3 cores
    const arb::ArbitrationReport reweight = arbiter.rearbitrate();
    const int live_workers_after_swap = pipeline.live_workers();
    runner.join();
    endpoint.set_live(false);

    const arb::TenantChange* live_change = nullptr;
    for (const arb::TenantChange& change : reweight.changes)
        if (change.id == live_id)
            live_change = &change;
    const bool frame_swapped = live_change != nullptr
        && live_change->swap == arb::SwapKind::frame
        && reweight.frame_swaps() == 1;
    std::printf("live reweight: budget (%d b) -> (%d b), swap=%s, "
                "%llu/%llu frames, %llu dropped, workers after swap=%d -> %s\n",
                live_change != nullptr ? live_change->before.big : -1,
                live_change != nullptr ? live_change->after.big : -1,
                live_change != nullptr ? to_string(live_change->swap) : "?",
                static_cast<unsigned long long>(run.frames),
                static_cast<unsigned long long>(frames),
                static_cast<unsigned long long>(run.frames_dropped),
                live_workers_after_swap,
                frame_swapped && run.frames == frames && run.frames_dropped == 0
                    ? "PASS"
                    : "FAIL");
    report.add_record()
        .set("scenario", "live_reweight")
        .set("budget_before_big", live_change != nullptr ? live_change->before.big : -1)
        .set("budget_after_big", live_change != nullptr ? live_change->after.big : -1)
        .set("swap", live_change != nullptr ? to_string(live_change->swap) : "?")
        .set("frame_swaps", reweight.frame_swaps())
        .set("frames", run.frames)
        .set("frames_delivered", delivered)
        .set("frames_dropped", run.frames_dropped)
        .set("live_workers_after_swap", live_workers_after_swap)
        .set("no_drain_pass", frame_swapped && run.frames == frames
                 && run.frames_dropped == 0);
    report.metrics(metrics.snapshot());

    if (args.has("json")) {
        const std::string path = args.get("json", "");
        if (!report.write_file(path)) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            return 1;
        }
        std::printf("json report: %s\n", path.c_str());
    }
    return beats_even && trace_equal && frame_swapped ? 0 : 2;
}
