// Extension bench: static pipeline decomposition vs dynamic task-granularity
// scheduling. Reproduces the paper's §II argument (after Agullo et al. and
// Task Bench) that dynamic runtime schedulers are inefficient at SDR task
// granularities: the per-item scheduling overhead is amortized at
// millisecond tasks but dominates at tens of microseconds.
//
// Synthetic chain of 8 spin-work tasks (half stateful); the static executor
// runs the HeRAD decomposition, the dynamic one a shared work pool with the
// same number of threads.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "rt/dynamic_executor.hpp"
#include "rt/pipeline.hpp"

#include <chrono>
#include <cstdio>

namespace {

using namespace amp;

struct Frame {
    std::uint64_t seq = 0;
};

void spin_for(std::chrono::microseconds duration)
{
    const auto deadline = std::chrono::steady_clock::now() + duration;
    while (std::chrono::steady_clock::now() < deadline) {
    }
}

rt::TaskSequence<Frame> make_chain(int tasks, std::chrono::microseconds granularity)
{
    rt::TaskSequence<Frame> seq;
    for (int t = 1; t <= tasks; ++t) {
        const bool stateful = t % 2 == 1;
        seq.push_back(rt::make_task<Frame>("t" + std::to_string(t), stateful,
                                           [granularity](Frame&) { spin_for(granularity); }));
    }
    return seq;
}

core::TaskChain scheduling_view(int tasks, double weight_us)
{
    std::vector<core::TaskDesc> descs;
    for (int t = 1; t <= tasks; ++t)
        descs.push_back({"t" + std::to_string(t), weight_us, weight_us, t % 2 == 0});
    return core::TaskChain{std::move(descs)};
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const int tasks = static_cast<int>(args.get_int("tasks", 8));
    const int threads = static_cast<int>(args.get_int("threads", 4));
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 300));

    std::printf("== Extension: static pipeline vs dynamic task scheduling ==\n");
    std::printf("(%d tasks, %d threads, %llu frames per point)\n\n", tasks, threads,
                static_cast<unsigned long long>(frames));

    TextTable table({"task granularity", "static fps", "dynamic fps", "dynamic/static",
                     "sched events/frame"});
    for (const int granularity_us : {10, 50, 200, 1000}) {
        const auto view = scheduling_view(tasks, granularity_us);
        const auto solution =
            core::schedule(core::ScheduleRequest{view, {threads, 0}, core::Strategy::herad})
                .solution;

        auto static_chain = make_chain(tasks, std::chrono::microseconds{granularity_us});
        rt::Pipeline<Frame> pipeline{static_chain, solution};
        const auto static_result = pipeline.run(frames);

        auto dynamic_chain = make_chain(tasks, std::chrono::microseconds{granularity_us});
        rt::DynamicExecutor<Frame> dynamic{dynamic_chain, threads, 2 * static_cast<std::size_t>(threads)};
        const auto dynamic_result = dynamic.run(frames);

        table.add_row({std::to_string(granularity_us) + " us", fmt(static_result.fps(), 0),
                       fmt(dynamic_result.fps(), 0),
                       fmt(dynamic_result.fps() / static_result.fps(), 2),
                       fmt(static_cast<double>(dynamic_result.scheduling_events)
                               / static_cast<double>(frames),
                           1)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nExpected shape: the ratio approaches ~1 for millisecond tasks and drops\n"
                "as granularity shrinks (per-item scheduling overhead dominates).\n");
    return 0;
}
