// Extension bench: robustness of the strategies to the workload shape. The
// paper's generator draws weights uniformly; real chains (Table III) are
// closer to bimodal -- a few decoder-class tasks dominate. This bench runs
// the Table I statistics under uniform, bimodal and lognormal weights.
//
// Flags: --chains=N per scenario (default 250).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "sim/stats.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 250));

    std::printf("== Extension: strategy quality vs weight distribution ==\n");
    std::printf("(R = (10, 10), SR = 0.5, %d chains per distribution)\n\n", chains);

    TextTable table({"distribution", "2CATAC %opt / avg / max", "FERTAC %opt / avg / max",
                     "OTAC(B) avg"});
    for (const auto [distribution, label] :
         {std::pair{sim::WeightDistribution::uniform, "uniform [1,100]"},
          std::pair{sim::WeightDistribution::bimodal, "bimodal (15% x10)"},
          std::pair{sim::WeightDistribution::lognormal, "lognormal"}}) {
        Rng rng{0xd157};
        sim::GeneratorConfig config;
        config.distribution = distribution;
        std::vector<double> two;
        std::vector<double> fer;
        std::vector<double> otb;
        for (int c = 0; c < chains; ++c) {
            const auto chain = sim::generate_chain(config, rng);
            const double optimal = core::herad_optimal_period(chain, {10, 10});
            const auto period_of = [&](core::Strategy strategy) {
                return core::schedule(core::ScheduleRequest{chain, {10, 10}, strategy})
                    .solution.period(chain);
            };
            two.push_back(period_of(core::Strategy::twocatac) / optimal);
            fer.push_back(period_of(core::Strategy::fertac) / optimal);
            otb.push_back(core::schedule(core::ScheduleRequest{chain, {10, 0},
                                                               core::Strategy::otac_big})
                              .solution.period(chain)
                          / optimal);
        }
        const auto s2 = sim::summarize_slowdowns(two);
        const auto sf = sim::summarize_slowdowns(fer);
        table.add_row({label,
                       fmt_pct(s2.pct_optimal, 0) + " / " + fmt(s2.average, 3) + " / "
                           + fmt(s2.maximum, 2),
                       fmt_pct(sf.pct_optimal, 0) + " / " + fmt(sf.average, 3) + " / "
                           + fmt(sf.maximum, 2),
                       fmt(sim::mean(otb), 3)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nHeavy-tailed weights concentrate the period in few tasks, which makes\n"
                "the heuristics' packing decisions easier -- quality should not collapse.\n");
    return 0;
}
