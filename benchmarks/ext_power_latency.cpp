// Extension bench: power, energy-per-frame and pipeline latency of every
// strategy's DVB-S2 schedules (the paper's future-work directions: direct
// power models and shorter pipelines). Uses a generic big/little power model
// (4 W / 1 W active, typical P-core vs E-core ratios).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/power.hpp"
#include "support/dvbs2_eval.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    core::PowerModel model;
    model.big_watts = args.get_double("big-watts", 4.0);
    model.little_watts = args.get_double("little-watts", 1.0);

    std::printf("== Extension: power / energy / latency of the DVB-S2 schedules ==\n");
    std::printf("(power model: big %.1f W, little %.1f W active)\n\n", model.big_watts,
                model.little_watts);

    for (const auto& platform_case : bench::paper_platform_cases()) {
        const auto& profile = *platform_case.profile;
        const auto chain = dvbs2::profile_chain(profile);
        std::printf("%s, R = (%dB, %dL)\n", profile.name.c_str(), platform_case.resources.big,
                    platform_case.resources.little);
        TextTable table({"Strategy", "Period(us)", "Power(W)", "Energy/frame(mJ)",
                         "Latency(us)", "Stages"});
        for (const core::Strategy strategy : core::kAllStrategies) {
            const auto solution =
                core::schedule(
                    core::ScheduleRequest{chain, platform_case.resources, strategy})
                    .solution;
            if (solution.empty())
                continue;
            table.add_row({core::to_string(strategy), fmt(solution.period(chain), 1),
                           fmt(core::solution_power(solution, model), 1),
                           fmt(core::energy_per_item(chain, solution, model) / 1e3, 3),
                           fmt(core::pipeline_latency(chain, solution), 0),
                           std::to_string(solution.stage_count())});
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("Energy/frame = active power x period. HeRAD's little-core preference\n"
                "lowers power at equal period; OTAC (B) burns the most energy per bit.\n");
    return 0;
}
