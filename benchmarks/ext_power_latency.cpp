// Extension bench: power, energy-per-frame and pipeline latency of every
// strategy's DVB-S2 schedules (the paper's future-work directions: direct
// power models and shorter pipelines), plus the energy-vs-throughput Pareto
// sweep of the min_energy_under_period objective (docs/ENERGY.md). Uses a
// generic big/little power model (4 W / 1 W active, typical P-core vs
// E-core ratios).
//
// Flags: --big-watts / --little-watts / --idle-watts tune the model,
// --json=<file> writes the amp-bench-v1 report (one record per Pareto
// point plus a dominance-gate summary per platform).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/power.hpp"
#include "support/bench_json.hpp"
#include "support/dvbs2_eval.hpp"
#include "svc/pareto.hpp"
#include "svc/solver_service.hpp"

#include <cstdio>
#include <vector>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    core::PowerModel model;
    model.big_watts = args.get_double("big-watts", 4.0);
    model.little_watts = args.get_double("little-watts", 1.0);
    model.idle_watts = args.get_double("idle-watts", 0.1);

    bench::JsonReport report{"ext_power_latency"};
    report.param("big_watts", model.big_watts)
        .param("little_watts", model.little_watts)
        .param("idle_watts", model.idle_watts);

    std::printf("== Extension: power / energy / latency of the DVB-S2 schedules ==\n");
    std::printf("(power model: big %.1f W, little %.1f W active)\n\n", model.big_watts,
                model.little_watts);

    for (const auto& platform_case : bench::paper_platform_cases()) {
        const auto& profile = *platform_case.profile;
        const auto chain = dvbs2::profile_chain(profile);
        std::printf("%s, R = (%dB, %dL)\n", profile.name.c_str(), platform_case.resources.big,
                    platform_case.resources.little);
        TextTable table({"Strategy", "Period(us)", "Power(W)", "Energy/frame(mJ)",
                         "Latency(us)", "Stages"});
        for (const core::Strategy strategy : core::kAllStrategies) {
            const auto solution =
                core::schedule(
                    core::ScheduleRequest{chain, platform_case.resources, strategy})
                    .solution;
            if (solution.empty())
                continue;
            table.add_row({core::to_string(strategy), fmt(solution.period(chain), 1),
                           fmt(core::solution_power(solution, model), 1),
                           fmt(core::energy_per_item(chain, solution, model) / 1e3, 3),
                           fmt(core::pipeline_latency(chain, solution), 0),
                           std::to_string(solution.stage_count())});
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("Energy/frame = active power x period. HeRAD's little-core preference\n"
                "lowers power at equal period; OTAC (B) burns the most energy per bit.\n\n");

    // -- energy/throughput Pareto sweep ------------------------------------
    // For each platform: HeRAD's min-period optimum P*, then the cheapest
    // schedule under target = P* x factor for a grid of slack factors. The
    // gate: at every feasible target the energy objective never costs more
    // active energy than the min-period schedule (which also meets any
    // target >= P*) -- energy-aware solving dominates, it never regresses.
    std::printf("== Energy/throughput Pareto sweep (min_energy_under_period) ==\n");
    const std::vector<double> factors{1.0, 1.1, 1.25, 1.5, 1.75, 2.0};
    svc::SolverService service{svc::ServiceConfig{}};
    bool dominance_pass = true;
    for (const auto& platform_case : bench::paper_platform_cases()) {
        const auto& profile = *platform_case.profile;
        const auto chain = dvbs2::profile_chain(profile);
        const core::Resources resources = platform_case.resources;

        const core::Solution fastest =
            core::schedule(core::ScheduleRequest{chain, resources, core::Strategy::herad})
                .solution;
        if (fastest.empty())
            continue;
        const double p_star = fastest.period(chain);
        const double min_period_energy = core::energy_per_item(chain, fastest, model);

        std::vector<double> targets;
        targets.reserve(factors.size());
        for (const double factor : factors)
            targets.push_back(p_star * factor);
        const auto points =
            svc::energy_pareto_sweep(service, chain, resources, model, targets);

        std::printf("%s, R = (%dB, %dL): P* = %.1f us, min-period energy %.3f mJ\n",
                    profile.name.c_str(), resources.big, resources.little, p_star,
                    min_period_energy / 1e3);
        TextTable pareto_table(
            {"Target(xP*)", "Period(us)", "Energy/frame(mJ)", "Power(W)", "Saved"});
        bool platform_pass = true;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto& point = points[i];
            if (!point.ok) {
                pareto_table.add_row({fmt(factors[i], 2), "-", "-", "-", "-"});
                continue;
            }
            const double saved =
                min_period_energy > 0.0
                    ? 1.0 - point.energy_per_item / min_period_energy
                    : 0.0;
            const bool dominated = point.energy_per_item <= min_period_energy * (1.0 + 1e-9);
            platform_pass = platform_pass && dominated;
            pareto_table.add_row({fmt(factors[i], 2), fmt(point.period, 1),
                                  fmt(point.energy_per_item / 1e3, 3),
                                  fmt(point.power_watts, 1), fmt(saved * 100.0, 1) + "%"});
            report.add_record()
                .set("scenario", "pareto")
                .set("platform", profile.name)
                .set("big", resources.big)
                .set("little", resources.little)
                .set("factor", factors[i])
                .set("target_period_us", point.target_period)
                .set("period_us", point.period)
                .set("energy_per_frame_uj", point.energy_per_item)
                .set("power_watts", point.power_watts)
                .set("min_period_energy_uj", min_period_energy)
                .set("energy_saved_frac", saved)
                .set("dominates_min_period", dominated);
        }
        dominance_pass = dominance_pass && platform_pass;
        std::printf("%s\n", pareto_table.str().c_str());
        report.add_record()
            .set("scenario", "pareto_summary")
            .set("platform", profile.name)
            .set("big", resources.big)
            .set("little", resources.little)
            .set("p_star_us", p_star)
            .set("min_period_energy_uj", min_period_energy)
            .set("pass", platform_pass);
    }
    std::printf("At every slack factor the energy objective matches or undercuts the\n"
                "min-period schedule's energy (dominance gate) -- %s\n",
                dominance_pass ? "PASS" : "FAIL");

    if (args.has("json")) {
        const std::string path = args.get("json", "");
        if (!report.write_file(path)) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            return 1;
        }
        std::printf("json report: %s\n", path.c_str());
    }
    return dominance_pass ? 0 : 2;
}
