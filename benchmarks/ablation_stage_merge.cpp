// Ablation: HeRAD's post-pass that merges consecutive replicable stages of
// the same core type (paper §V: period-neutral, fewer stages). Counts the
// stage reduction and verifies period neutrality over random chains.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"

#include <cstdio>

namespace {

// Option-ablation helper over the unified scheduling entry point.
amp::core::Solution solve_herad(const amp::core::TaskChain& chain, amp::core::Resources resources,
                                amp::core::ScheduleOptions options)
{
    return amp::core::schedule(
               amp::core::ScheduleRequest{chain, resources, amp::core::Strategy::herad, options})
        .solution;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 300));

    std::printf("== Ablation: HeRAD replicable-stage merging ==\n\n");
    TextTable table({"SR", "avg stages (raw)", "avg stages (merged)", "period changed"});
    for (const double sr : {0.2, 0.5, 0.8}) {
        Rng rng{0x5312};
        sim::GeneratorConfig generator;
        generator.stateless_ratio = sr;
        double raw_stages = 0.0;
        double merged_stages = 0.0;
        int period_changes = 0;
        for (int c = 0; c < chains; ++c) {
            const auto chain = sim::generate_chain(generator, rng);
            const auto raw = solve_herad(chain, {10, 10}, {.merge_stages = false});
            const auto merged = solve_herad(chain, {10, 10}, {.merge_stages = true});
            raw_stages += static_cast<double>(raw.stage_count());
            merged_stages += static_cast<double>(merged.stage_count());
            if (merged.period(chain) > raw.period(chain) + 1e-9)
                ++period_changes;
        }
        table.add_row({fmt(sr, 1), fmt(raw_stages / chains, 2), fmt(merged_stages / chains, 2),
                       std::to_string(period_changes)});
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
