// Ablation: cost of the telemetry layer on the real pipeline's hot path.
// Runs one synthetic chain three ways -- no sink at all, a disabled sink
// (SinkConfig::null(), the "compiled in but off" configuration) and a fully
// recording sink (metrics + trace) -- and compares best-of-reps throughput.
// The acceptance bar (docs/OBSERVABILITY.md): the disabled sink costs <= 2%
// versus no sink, i.e. instrumentation off is indistinguishable from
// instrumentation absent.
//
// Flags: --frames=N (default 2000), --task-us=U busy-spin per task (default
// 20), --reps=K best-of (default 3), --json=<file> amp-bench-v1 output,
// --strict=1 to exit non-zero when the disabled sink misses the 2% bar
// (off by default: wall-clock noise on shared CI runners is not a bug).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "obs/sink.hpp"
#include "rt/pipeline.hpp"
#include "support/bench_json.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace {

struct Frame {
    std::uint64_t seq = 0;
};

/// Busy-spins (no yield) so task cost is stable at microsecond scale.
void spin_for(std::chrono::microseconds quantum)
{
    const auto until = std::chrono::steady_clock::now() + quantum;
    while (std::chrono::steady_clock::now() < until) {
    }
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;

    const ArgParse args(argc, argv);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 2000));
    const auto task_us = static_cast<int>(args.get_int("task-us", 20));
    const auto reps = static_cast<int>(args.get_int("reps", 3));
    const std::string json_path = args.get("json", "");
    const bool strict = args.get_bool("strict", false);

    // Four fast tasks; the stateful first one pins a sequential stage, the
    // rest replicate -- the same shape the runtime tests use, small enough
    // that per-frame telemetry cost is visible against the service time.
    constexpr int kTasks = 4;
    std::vector<core::TaskDesc> descs;
    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= kTasks; ++i) {
        const auto w = static_cast<double>(task_us);
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), w, 1.6 * w, i != 1});
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1, [task_us](Frame&) {
            spin_for(std::chrono::microseconds{task_us});
        }));
    }
    const core::TaskChain chain{std::move(descs)};
    const core::Resources resources{3, 2};
    const core::Solution solution =
        core::schedule(core::ScheduleRequest{chain, resources, core::Strategy::herad}).solution;

    std::printf("== Ablation: observability overhead on the pipeline hot path ==\n");
    std::printf("chain: %d tasks x %d us, schedule %s, %llu frames, best of %d reps\n\n", kTasks,
                task_us, solution.decomposition().c_str(),
                static_cast<unsigned long long>(frames), reps);

    struct Mode {
        const char* name;
        obs::Sink* sink;
    };
    obs::Sink disabled{obs::SinkConfig::null()};
    obs::Sink recording;
    const Mode modes[] = {
        {"no sink", nullptr},
        {"disabled sink", &disabled},
        {"recording sink", &recording},
    };

    double fps[3] = {0.0, 0.0, 0.0};
    for (int m = 0; m < 3; ++m) {
        for (int rep = 0; rep < reps; ++rep) {
            rt::PipelineConfig config;
            config.sink = modes[m].sink;
            rt::Pipeline<Frame> pipeline{sequence, solution, config};
            const rt::RunResult result = pipeline.run(frames, {});
            if (result.fps() > fps[m])
                fps[m] = result.fps();
        }
    }

    TextTable table({"mode", "fps (best)", "vs no sink"});
    bench::JsonReport report{"ablation_obs_overhead"};
    report.param("frames", frames)
        .param("task_us", task_us)
        .param("reps", reps)
        .param("schedule", solution.decomposition());
    for (int m = 0; m < 3; ++m) {
        const double overhead_pct = fps[0] > 0.0 ? (1.0 - fps[m] / fps[0]) * 100.0 : 0.0;
        table.add_row({modes[m].name, fmt(fps[m], 1),
                       m == 0 ? std::string{"--"} : fmt(overhead_pct, 2) + " %"});
        report.add_record()
            .set("mode", modes[m].name)
            .set("fps", fps[m])
            .set("overhead_pct", overhead_pct);
    }
    std::printf("%s\n", table.str().c_str());

    const double null_overhead = fps[0] > 0.0 ? (1.0 - fps[1] / fps[0]) * 100.0 : 0.0;
    std::printf("disabled-sink overhead: %.2f %% (target <= 2 %%)\n", null_overhead);
    std::printf("recording sink captured %llu trace events (%llu dropped)\n",
                static_cast<unsigned long long>(recording.trace().total_events()),
                static_cast<unsigned long long>(recording.trace().total_dropped()));

    if (!json_path.empty()) {
        report.metrics(recording.metrics().snapshot());
        if (!report.write_file(json_path))
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
        else
            std::printf("json report: %s\n", json_path.c_str());
    }
    return (strict && null_overhead > 2.0) ? 1 : 0;
}
