// Reproduces Table I: simulation statistics for all scheduling strategies.
// 1000 synthetic chains of 20 tasks per scenario, SR in {0.2, 0.5, 0.8},
// R in {(16,4), (10,10), (4,16)}. Per strategy: (% optimal periods, average,
// median, maximum slowdown ratio) and average (big, little) cores used.
//
// Flags: --chains=N (default 1000), --tasks=N (default 20), --seed=S.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/campaign.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 1000));
    const int tasks = static_cast<int>(args.get_int("tasks", 20));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xbe9c));

    std::printf("== Table I: simulation statistics (%d chains of %d tasks per scenario) ==\n\n",
                chains, tasks);

    for (auto scenario : bench::paper_scenarios(chains, seed)) {
        scenario.num_tasks = tasks;
        const auto result = bench::run_scenario(scenario);
        std::printf("R = (%dB, %dL), SR = %.1f\n", scenario.resources.big,
                    scenario.resources.little, scenario.stateless_ratio);
        TextTable table({"Strategy", "% opt", "avg", "med", "max", "b_used", "l_used"});
        for (const auto& [strategy, outcome] : result.outcomes) {
            table.add_row({core::to_string(strategy), fmt_pct(outcome.summary.pct_optimal, 1),
                           fmt(outcome.summary.average, 2), fmt(outcome.summary.median, 2),
                           fmt(outcome.summary.maximum, 2), fmt(outcome.avg_big_used, 2),
                           fmt(outcome.avg_little_used, 2)});
        }
        std::printf("%s\n", table.str().c_str());
    }
    return 0;
}
