// Extension bench: the svc::SolverService itself. Measures, over a grid of
// synthetic chains x strategies:
//
//   1. cold sequential  -- every request solved by a direct core::schedule
//                          loop on the calling thread (the pre-service
//                          baseline);
//   2. cold batch       -- the same grid as one solve_batch per worker
//                          count (parallel scaling; meaningful only on
//                          multi-core machines);
//   3. cached batch     -- the grid resubmitted to a warm service (cache
//                          speedup and hit rate).
//
// --json=<file> writes an amp-bench-v1 report: one record per measurement
// with wall-clock time, per-mode speedup vs the cold-sequential baseline,
// and cache statistics, plus the service's metrics snapshot (per-strategy
// amp_svc_* counters and latency histograms).
//
// Flags: --chains=N grid chains (default 40), --tasks=N per chain
// (default 30), --reps=N cached resubmissions (default 3),
// --workers=CSV worker counts for the scaling sweep (default "1,2,4").

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "sim/timing.hpp"
#include "support/bench_json.hpp"
#include "svc/solver_service.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace {

using namespace amp;

std::vector<core::ScheduleRequest> build_grid(int chains, int tasks, std::uint64_t seed)
{
    Rng rng{seed};
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    generator.stateless_ratio = 0.5;
    std::vector<core::ScheduleRequest> requests;
    requests.reserve(static_cast<std::size_t>(chains) * std::size(core::kAllStrategies));
    for (int c = 0; c < chains; ++c) {
        const core::TaskChain chain = sim::generate_chain(generator, rng);
        for (const core::Strategy strategy : core::kAllStrategies)
            requests.push_back(core::ScheduleRequest{chain, {10, 10}, strategy});
    }
    return requests;
}

std::vector<int> parse_worker_counts(const std::string& csv)
{
    std::vector<int> counts;
    std::size_t pos = 0;
    while (pos < csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string token = csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                                             : comma - pos);
        if (!token.empty())
            counts.push_back(std::stoi(token));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return counts;
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 40));
    const int tasks = static_cast<int>(args.get_int("tasks", 30));
    const int reps = static_cast<int>(args.get_int("reps", 3));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5e41));
    const std::vector<int> worker_counts = parse_worker_counts(args.get("workers", "1,2,4"));
    const std::string json_path = args.get("json", "");

    const std::vector<core::ScheduleRequest> grid = build_grid(chains, tasks, seed);
    std::printf("== Extension: solver service (%zu requests: %d chains x %zu strategies) ==\n\n",
                grid.size(), chains, std::size(core::kAllStrategies));

    bench::JsonReport report{"ext_solver_service"};
    report.param("chains", chains)
        .param("tasks", tasks)
        .param("reps", reps)
        .param("requests", static_cast<std::uint64_t>(grid.size()));

    TextTable table({"mode", "workers", "wall (us)", "speedup vs cold-seq", "cache hit rate"});

    // 1. Baseline: the grid as a plain sequential loop over core::schedule.
    double baseline_solve_us = 0.0;
    const double cold_sequential_us = sim::time_once_us([&] {
        for (const core::ScheduleRequest& request : grid) {
            const core::ScheduleResult result = core::schedule(request);
            baseline_solve_us += static_cast<double>(result.solve_ns) / 1000.0;
        }
    });
    table.add_row({"cold-sequential", "0", fmt(cold_sequential_us, 0), "1.00", "-"});
    report.add_record()
        .set("mode", "cold_sequential")
        .set("workers", 0)
        .set("wall_us", cold_sequential_us)
        .set("speedup", 1.0);

    // 2. Cold batches: a fresh service per worker count, cache off so every
    //    solve is real work. Scaling beyond 1 only shows on multi-core
    //    machines; a 1-core container reports ~1x honestly.
    for (const int workers : worker_counts) {
        svc::ServiceConfig config;
        config.workers = workers;
        config.cache_capacity = 0;
        svc::SolverService service{config};
        std::vector<core::ScheduleResult> results;
        const double wall_us =
            sim::time_once_us([&] { results = service.solve_batch(grid); });
        const double speedup = wall_us > 0.0 ? cold_sequential_us / wall_us : 0.0;
        table.add_row({"cold-batch", std::to_string(service.workers()), fmt(wall_us, 0),
                       fmt(speedup, 2), "-"});
        report.add_record()
            .set("mode", "cold_batch")
            .set("workers", service.workers())
            .set("wall_us", wall_us)
            .set("speedup", speedup);
    }

    // 3. Cached batches: warm the cache with one pass, then resubmit the
    //    identical grid. Every request is a fingerprint lookup.
    svc::ServiceConfig cached_config;
    cached_config.workers = worker_counts.empty() ? 0 : worker_counts.front();
    svc::SolverService cached_service{cached_config};
    (void)cached_service.solve_batch(grid); // warm-up: all misses
    double cached_total_us = 0.0;
    std::size_t hit_requests = 0;
    for (int r = 0; r < reps; ++r) {
        std::vector<core::ScheduleResult> results;
        cached_total_us += sim::time_once_us([&] { results = cached_service.solve_batch(grid); });
        for (const core::ScheduleResult& result : results)
            hit_requests += result.cache_hit ? 1u : 0u;
    }
    const double cached_us = cached_total_us / reps;
    const double cached_speedup = cached_us > 0.0 ? cold_sequential_us / cached_us : 0.0;
    const auto cache = cached_service.cache_stats();
    const double observed_hit_rate = reps > 0 && !grid.empty()
        ? static_cast<double>(hit_requests) / (static_cast<double>(reps) * grid.size())
        : 0.0;
    table.add_row({"cached-batch", std::to_string(cached_service.workers()), fmt(cached_us, 0),
                   fmt(cached_speedup, 2), fmt_pct(observed_hit_rate, 1)});
    report.add_record()
        .set("mode", "cached_batch")
        .set("workers", cached_service.workers())
        .set("wall_us", cached_us)
        .set("speedup", cached_speedup)
        .set("hit_rate", observed_hit_rate)
        .set("cache_hits", cache.hits)
        .set("cache_misses", cache.misses)
        .set("cache_entries", cache.entries);

    std::printf("%s\n", table.str().c_str());
    std::printf("cache after cached-batch reps: %llu hits / %llu misses (%llu entries)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.entries));

    report.metrics(cached_service.metrics().snapshot());
    if (!json_path.empty()) {
        if (!report.write_file(json_path)) {
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("json report: %s\n", json_path.c_str());
    }
    return 0;
}
