// Extension bench: load-driven autoscaling on the warm-start incremental
// solver (docs/AUTOSCALING.md). Three scenarios:
//
//   1. Warm vs cold re-solve. One n-task chain (paper generator) on a
//      (b, l) pool; a retained HeRAD frontier answers every +/-k resize
//      against a from-scratch solve of the same target. Reported per
//      delta: cold and warm medians over --reps runs, the speedup, and a
//      bitwise identity check of the two solutions (the warm path is an
//      accelerator, never an approximation). The acceptance gate is a
//      median speedup >= 10x across the sweep at n = 64.
//
//   2. Controller tracking. dsim::simulate_autoscale replays the real
//      AutoscaleController + warm solver against a step profile (idle ->
//      3x capacity -> idle) and a full sine sweep. Reported: grows,
//      shrinks, warm fraction, mean tracking error and the minimum gap
//      between actions (>= the cooldown = no flapping).
//
//   3. Live resize. A real rt::Pipeline streams frames while an
//      rt::Autoscaler lands a grow and a shrink as frame-granular
//      in-flight swaps. Reported: frames delivered/dropped (must be 0)
//      and the autoscaler's counters.
//
// Flags: --tasks=N chain size of scenario 1 (default 64), --pool=K big and
// little cores of scenario 1 (default 12), --reps=N timing repetitions
// (default 21), --frames=N scenario-3 stream length (default 400),
// --task-us=U scenario-3 per-frame sleep (default 150), --json=<file>
// amp-bench-v1 report.

#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "dsim/simulator.hpp"
#include "rt/autoscaler.hpp"
#include "rt/pipeline.hpp"
#include "sim/generator.hpp"
#include "support/bench_json.hpp"
#include "svc/solver_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace {

using namespace amp;

double median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values.empty() ? 0.0 : values[values.size() / 2];
}

std::int64_t now_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Frame {
    std::uint64_t seq = 0;
};

/// All-little chain whose optimum keeps one cut across (0,2)..(0,4):
/// every autoscale delta is resize-only (tests/plan/frame_swap_test.cpp).
core::TaskChain resize_only_chain()
{
    std::vector<core::TaskDesc> tasks;
    tasks.push_back(core::TaskDesc{"t1", 100.0, 90.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= 5; ++i)
        tasks.push_back(core::TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    return core::TaskChain{std::move(tasks)};
}

} // namespace

int main(int argc, char** argv)
{
    ArgParse args{argc, argv};
    const int tasks = static_cast<int>(args.get_int("tasks", 64));
    const int pool = static_cast<int>(args.get_int("pool", 12));
    const int reps = static_cast<int>(args.get_int("reps", 21));
    const std::uint64_t frames = static_cast<std::uint64_t>(args.get_int("frames", 400));
    const int task_us = static_cast<int>(args.get_int("task-us", 150));

    bench::JsonReport report{"ext_autoscale"};
    report.param("tasks", tasks).param("pool", pool).param("reps", reps)
        .param("frames", static_cast<std::int64_t>(frames)).param("task_us", task_us);

    // -- scenario 1: warm vs cold re-solve ---------------------------------
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    Rng rng{0xA5CA1E};
    const core::TaskChain chain = sim::generate_chain(generator, rng);
    const core::Resources base{pool, pool};

    core::ScheduleRequest seed_request{chain, base, core::Strategy::herad};
    seed_request.warm.keep_frontier = true;
    const core::ScheduleResult seeded = core::schedule(seed_request);
    if (!seeded.ok() || seeded.frontier == nullptr) {
        std::fprintf(stderr, "seed solve failed\n");
        return 1;
    }

    std::printf("== Warm vs cold re-solve: n=%d, base pool (%d, %d) ==\n", tasks, pool, pool);
    TextTable resolve_table{{"delta", "cold (us)", "warm (us)", "speedup", "identical"}};
    std::vector<double> speedups;
    bool all_identical = true;
    // One axis per delta: AutoscaleController::stepped moves one core type
    // per action (grow_first, spilling only when clamped), so these are the
    // resize requests the autoscaler actually issues.
    const std::pair<int, int> deltas[] = {{-2, 0}, {-1, 0}, {1, 0}, {2, 0},
                                          {0, -2}, {0, -1}, {0, 1}, {0, 2}};
    for (const auto [db, dl] : deltas) {
        {
            const core::Resources target{base.big + db, base.little + dl};
            std::vector<double> cold_ns, warm_ns;
            bool identical = true;
            for (int rep = 0; rep < reps; ++rep) {
                const std::int64_t t0 = now_ns();
                const core::ScheduleResult cold =
                    core::schedule(core::ScheduleRequest{chain, target, core::Strategy::herad});
                const std::int64_t t1 = now_ns();
                core::ScheduleRequest warm_request{chain, target, core::Strategy::herad};
                warm_request.warm.frontier = seeded.frontier;
                const core::ScheduleResult warm = core::schedule(warm_request);
                const std::int64_t t2 = now_ns();
                cold_ns.push_back(static_cast<double>(t1 - t0));
                warm_ns.push_back(static_cast<double>(t2 - t1));
                identical = identical && warm.ok() && warm.warm_start
                            && warm.solution == cold.solution;
            }
            const double cold_us = median(cold_ns) / 1e3;
            const double warm_us = median(warm_ns) / 1e3;
            const double speedup = warm_us > 0.0 ? cold_us / warm_us : 0.0;
            speedups.push_back(speedup);
            all_identical = all_identical && identical;
            char delta_label[32];
            std::snprintf(delta_label, sizeof delta_label, "%+d/%+d", db, dl);
            resolve_table.add_row({delta_label, fmt(cold_us, 1), fmt(warm_us, 1),
                                   fmt(speedup, 1) + "x", identical ? "yes" : "NO"});
            report.add_record()
                .set("scenario", "resolve")
                .set("delta_big", db)
                .set("delta_little", dl)
                .set("cold_us", cold_us)
                .set("warm_us", warm_us)
                .set("speedup", speedup)
                .set("identical", identical);
        }
    }
    const double median_speedup = median(speedups);
    const bool resolve_pass = median_speedup >= 10.0 && all_identical;
    std::printf("%s\n", resolve_table.str().c_str());
    std::printf("median speedup across the sweep: %.1fx (gate: >= 10x) -- %s\n\n",
                median_speedup, resolve_pass ? "PASS" : "FAIL");
    report.add_record()
        .set("scenario", "resolve_summary")
        .set("median_speedup", median_speedup)
        .set("all_identical", all_identical)
        .set("pass", resolve_pass);

    // -- scenario 2: controller tracking (virtual time) --------------------
    const auto make_scenario = [&](std::vector<dsim::LoadPoint> load) {
        dsim::AutoscaleScenario scenario;
        sim::GeneratorConfig track_gen;
        track_gen.num_tasks = 12;
        Rng track_rng{0x5CA1E};
        scenario.chain = sim::generate_chain(track_gen, track_rng);
        scenario.initial = {1, 2};
        scenario.policy.grow_above = 0.85;
        scenario.policy.shrink_below = 0.40;
        scenario.policy.patience = 3;
        scenario.policy.cooldown_ns = 50'000'000;
        scenario.policy.min_pool = {0, 1};
        scenario.policy.max_pool = {4, 4};
        scenario.load = std::move(load);
        scenario.horizon_us = 1'000'000;
        scenario.sample_period_us = 5'000;
        return scenario;
    };
    const auto base_fps = [&](const dsim::AutoscaleScenario& scenario) {
        return 1e6
               / core::schedule(core::Strategy::herad, scenario.chain, scenario.initial)
                     .period(scenario.chain);
    };

    std::printf("== Controller tracking (dsim, virtual time) ==\n");
    TextTable track_table{{"profile", "grows", "shrinks", "warm", "track_err", "min_gap_ms"}};
    bool track_pass = true;
    for (const char* profile : {"step", "sine"}) {
        dsim::AutoscaleScenario scenario = make_scenario({{0, 0.0}});
        const double fps = base_fps(scenario);
        if (std::string{profile} == "step") {
            scenario.load = {{0, 0.3 * fps}, {300'000, 3.0 * fps}, {700'000, 0.2 * fps}};
        } else {
            scenario.load.clear();
            for (int i = 0; i < 100; ++i) {
                const double phase = 2.0 * 3.14159265358979 * i / 100.0;
                scenario.load.push_back({i * 10'000, fps * (1.2 + 1.0 * std::sin(phase))});
            }
        }
        const dsim::AutoscaleSimResult result = dsim::simulate_autoscale(scenario);
        const bool no_flap =
            result.min_action_gap_us * 1000 >= scenario.policy.cooldown_ns;
        track_pass = track_pass && no_flap && result.grows + result.shrinks > 0;
        track_table.add_row({std::string{profile}, std::to_string(result.grows),
                             std::to_string(result.shrinks), fmt(result.warm_fraction, 2),
                             fmt(result.mean_tracking_error, 3),
                             fmt(result.min_action_gap_us / 1e3, 0)});
        report.add_record()
            .set("scenario", "track")
            .set("profile", profile)
            .set("grows", result.grows)
            .set("shrinks", result.shrinks)
            .set("warm_fraction", result.warm_fraction)
            .set("mean_tracking_error", result.mean_tracking_error)
            .set("min_action_gap_us", result.min_action_gap_us)
            .set("no_flapping", no_flap);
    }
    std::printf("%s\n", track_table.str().c_str());

    // -- scenario 3: live resize on a real pipeline ------------------------
    std::printf("== Live resize: rt::Autoscaler on a streaming pipeline ==\n");
    const core::TaskChain live_chain = resize_only_chain();
    svc::SolverService service{svc::ServiceConfig{}};
    const svc::PlannedSchedule initial_plan = service.solve_planned(
        core::ScheduleRequest{live_chain, {0, 3}, core::Strategy::herad});
    if (!initial_plan.ok()) {
        std::fprintf(stderr, "live plan solve failed\n");
        return 1;
    }

    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= live_chain.size(); ++i)
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1,
                                                [i, task_us](Frame&) {
                                                    if (i == 1 && task_us > 0)
                                                        std::this_thread::sleep_for(
                                                            std::chrono::microseconds{task_us});
                                                }));
    rt::Pipeline<Frame> pipeline{sequence, *initial_plan.plan, rt::PipelineConfig{}};

    rt::AutoscalerConfig autoscale_config;
    autoscale_config.policy.patience = 2;
    autoscale_config.policy.cooldown_ns = 0;
    autoscale_config.policy.min_pool = {0, 2};
    autoscale_config.policy.max_pool = {0, 4};
    autoscale_config.policy.grow_first = core::CoreType::little;
    autoscale_config.service = &service;
    rt::Autoscaler<Frame> autoscaler{pipeline, live_chain, {0, 3}, autoscale_config};

    std::uint64_t delivered = 0;
    rt::RunResult run;
    std::thread runner{[&] { run = pipeline.run(frames, [&](Frame&) { ++delivered; }); }};
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    (void)autoscaler.feed(1.5, 1);
    (void)autoscaler.feed(1.5, 2); // grow lands mid-segment
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
    (void)autoscaler.feed(0.1, 3);
    (void)autoscaler.feed(0.1, 4); // shrink lands mid-segment
    runner.join();

    const rt::AutoscalerStats live = autoscaler.stats();
    const bool live_pass = run.frames == frames && run.frames_dropped == 0
                           && live.frame_swaps >= 2 && live.grows >= 1 && live.shrinks >= 1;
    std::printf("frames %llu delivered %llu dropped %llu | grows %llu shrinks %llu "
                "frame_swaps %llu warm_solves %llu -- %s\n\n",
                static_cast<unsigned long long>(run.frames),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(run.frames_dropped),
                static_cast<unsigned long long>(live.grows),
                static_cast<unsigned long long>(live.shrinks),
                static_cast<unsigned long long>(live.frame_swaps),
                static_cast<unsigned long long>(live.warm_solves),
                live_pass ? "PASS" : "FAIL");
    report.add_record()
        .set("scenario", "live")
        .set("frames", run.frames)
        .set("frames_delivered", delivered)
        .set("frames_dropped", run.frames_dropped)
        .set("grows", live.grows)
        .set("shrinks", live.shrinks)
        .set("frame_swaps", live.frame_swaps)
        .set("warm_solves", live.warm_solves)
        .set("zero_drop_pass", run.frames_dropped == 0)
        .set("pass", live_pass);

    if (args.has("json")) {
        const std::string path = args.get("json", "");
        if (!report.write_file(path)) {
            std::fprintf(stderr, "failed to write %s\n", path.c_str());
            return 1;
        }
        std::printf("json report: %s\n", path.c_str());
    }
    return resolve_pass && track_pass && live_pass ? 0 : 2;
}
