// Ablation: HeRAD's binary-searched core-count loop (fast u-search). Exact
// in period (verified per run), approximate only in period-equal tie
// selection; the speedup grows with the resource count.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "sim/timing.hpp"

#include <cstdio>

namespace {

// Option-ablation helper over the unified scheduling entry point.
amp::core::Solution solve_herad(const amp::core::TaskChain& chain, amp::core::Resources resources,
                                amp::core::ScheduleOptions options)
{
    return amp::core::schedule(
               amp::core::ScheduleRequest{chain, resources, amp::core::Strategy::herad, options})
        .solution;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int reps = static_cast<int>(args.get_int("reps", 3));

    std::printf("== Ablation: HeRAD exact vs binary-searched u loop ==\n\n");
    TextTable table({"tasks", "R", "SR", "exact (us)", "fast (us)", "speedup",
                     "period equal"});
    for (const int cores : {20, 60, 100}) {
        for (const double sr : {0.5, 0.8}) {
            const core::Resources resources{cores, cores};
            const int tasks = 40;
            Rng rng{0xfa ^ static_cast<std::uint64_t>(cores)};
            sim::GeneratorConfig generator;
            generator.num_tasks = tasks;
            generator.stateless_ratio = sr;
            double exact_us = 0.0;
            double fast_us = 0.0;
            bool equal = true;
            for (int r = 0; r < reps; ++r) {
                const auto chain = sim::generate_chain(generator, rng);
                core::Solution exact;
                core::Solution fast;
                exact_us += sim::time_once_us(
                    [&] { exact = solve_herad(chain, resources, {.fast_u_search = false}); });
                fast_us += sim::time_once_us(
                    [&] { fast = solve_herad(chain, resources, {.fast_u_search = true}); });
                equal &= std::abs(exact.period(chain) - fast.period(chain)) < 1e-9;
            }
            table.add_row({std::to_string(tasks),
                           "(" + std::to_string(cores) + "," + std::to_string(cores) + ")",
                           fmt(sr, 1), fmt(exact_us / reps, 1), fmt(fast_us / reps, 1),
                           fmt(exact_us / fast_us, 2), equal ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
