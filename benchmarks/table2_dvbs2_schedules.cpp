// Reproduces Table II: the schedules every strategy computes for the
// DVB-S2 receiver on both platforms (from the Table III profiles), with the
// pipeline decomposition, stage/core counts, expected period, and the
// simulated ("Sim.") vs discrete-event-measured ("Real") FPS and Mb/s.
//
// Flags: --adaptor-us, --jitter, --rep-penalty, --little-penalty tune the
// DES overhead model (defaults documented in DESIGN.md).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/dvbs2_eval.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    dsim::OverheadModel overhead;
    overhead.adaptor_crossing_us = args.get_double("adaptor-us", overhead.adaptor_crossing_us);
    overhead.jitter_cv = args.get_double("jitter", overhead.jitter_cv);
    overhead.replication_penalty = args.get_double("rep-penalty", overhead.replication_penalty);
    overhead.little_replication_penalty =
        args.get_double("little-penalty", overhead.little_replication_penalty);

    std::printf("== Table II: DVB-S2 receiver schedules and throughput ==\n");
    std::printf("(Real = discrete-event pipeline simulation with the calibrated overhead "
                "model; see DESIGN.md substitution 1)\n\n");

    int id = 1;
    for (const auto& platform_case : bench::paper_platform_cases()) {
        const auto& profile = *platform_case.profile;
        std::printf("%s, R = (%dB, %dL), interframe %d\n", profile.name.c_str(),
                    platform_case.resources.big, platform_case.resources.little,
                    profile.interframe);
        TextTable table({"Id", "Strategy", "Pipeline decomposition", "s", "b", "l",
                         "Period(us)", "SimFPS", "RealFPS", "SimMb/s", "RealMb/s", "Diff",
                         "Ratio"});
        const auto evaluations =
            bench::evaluate_platform(profile, platform_case.resources, overhead);
        for (const auto& eval : evaluations) {
            if (eval.solution.empty()) {
                table.add_row({"S" + std::to_string(id++), core::to_string(eval.strategy),
                               "(no valid schedule)", "-", "-", "-", "-", "-", "-", "-", "-",
                               "-", "-"});
                continue;
            }
            table.add_row({"S" + std::to_string(id++), core::to_string(eval.strategy),
                           eval.solution.decomposition(), std::to_string(eval.stage_count),
                           std::to_string(eval.big_used), std::to_string(eval.little_used),
                           fmt(eval.expected_period_us, 1), fmt(eval.expected_fps, 0),
                           fmt(eval.real_fps, 0), fmt(eval.expected_mbps, 1),
                           fmt(eval.real_mbps, 1),
                           (eval.mbps_diff() >= 0 ? "+" : "") + fmt(eval.mbps_diff(), 1),
                           (eval.mbps_ratio() >= 0 ? "+" : "") + fmt_pct(eval.mbps_ratio(), 0)});
        }
        std::printf("%s\n", table.str().c_str());
    }
    return 0;
}
