// Reproduces Fig. 2: heatmaps of the difference in resources used between
// FERTAC and HeRAD for R = (10, 10) and SR = 0.5, over (a) all results and
// (b) only the instances where FERTAC reaches the minimal period.
//
// Flags: --chains=N (default 1000), --seed=S.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/campaign.hpp"

#include <cstdio>

namespace {

void print_heatmap(const amp::sim::UsageHeatmap& map, const char* title)
{
    using namespace amp;
    std::printf("%s (n = %d)\n", title, map.total());
    TextTable table({"d_big \\ d_little", "-2", "-1", "0", "+1", "+2", "+3"});
    for (int db = -2; db <= 3; ++db) {
        std::vector<std::string> row{std::to_string(db)};
        for (int dl = -2; dl <= 3; ++dl)
            row.push_back(fmt_pct(map.fraction(db, dl), 1));
        table.add_row(std::move(row));
    }
    std::printf("%s", table.str().c_str());
    std::printf("<= 1 extra core total: %s,  <= 2 extra cores total: %s\n\n",
                fmt_pct(map.fraction_at_most_total(1), 1).c_str(),
                fmt_pct(map.fraction_at_most_total(2), 1).c_str());
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);

    bench::ScenarioConfig scenario;
    scenario.resources = {10, 10};
    scenario.stateless_ratio = 0.5;
    scenario.chains = static_cast<int>(args.get_int("chains", 1000));
    scenario.seed = static_cast<std::uint64_t>(args.get_int("seed", 0xbe9c));

    std::printf("== Fig. 2: FERTAC - HeRAD core-usage differences, R=(10,10), SR=0.5 ==\n\n");
    const auto result = bench::run_scenario(scenario);
    const auto& fertac = result.outcomes.at(core::Strategy::fertac);

    sim::UsageHeatmap all;
    sim::UsageHeatmap optimal_only;
    for (std::size_t i = 0; i < fertac.usages.size(); ++i) {
        all.add(fertac.usages[i], result.herad_usages[i]);
        if (fertac.slowdowns[i] <= 1.0 + 1e-6)
            optimal_only.add(fertac.usages[i], result.herad_usages[i]);
    }
    print_heatmap(all, "(a) All results");
    print_heatmap(optimal_only, "(b) Only optimal periods");
    std::printf("FERTAC reached the minimal period in %s of the instances.\n",
                fmt_pct(fertac.summary.pct_optimal, 1).c_str());
    return 0;
}
