// Reproduces Fig. 3: average strategy execution times (microseconds) as a
// function of the number of tasks, for fixed resources R = (20, 20) (a) and
// R = (100, 100) (b), with SR in {0.2, 0.5, 0.8}.
//
// The paper averages 50 chains per point; on a small machine that is slow
// for HeRAD at the largest sizes, so the default is --reps=5 with HeRAD
// capped at 100 tasks for R = (100, 100). Pass --full for paper scale.
//
// The whole sweep is submitted to a svc::SolverService as one batch:
// per-request timing comes back in ScheduleResult::solve_ns, and --workers
// controls how many solver threads the grid spreads over. Every chain is
// freshly generated, so the timings below are genuine cold solves, not
// cache hits.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "svc/solver_service.hpp"

#include <cstdio>
#include <vector>

namespace {

using namespace amp;

struct GridPoint {
    core::Strategy strategy;
    std::size_t first = 0; ///< index of the point's first request in the batch
    int reps = 0;
};

/// Appends `reps` fresh (chain, strategy) requests for one table cell. The
/// RNG re-seeds per cell exactly like the pre-service code did, so every
/// strategy column sees the same chain sequence for a given (tasks, R, SR).
GridPoint add_point(std::vector<core::ScheduleRequest>& requests, core::Strategy strategy,
                    int tasks, core::Resources resources, double sr, int reps,
                    std::uint64_t seed)
{
    Rng rng{seed ^ static_cast<std::uint64_t>(tasks * 131 + resources.big)};
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    generator.stateless_ratio = sr;
    GridPoint point{strategy, requests.size(), reps};
    for (int r = 0; r < reps; ++r)
        requests.push_back(
            core::ScheduleRequest{sim::generate_chain(generator, rng), resources, strategy});
    return point;
}

double mean_time_us(const std::vector<core::ScheduleResult>& results, const GridPoint& point)
{
    double total_ns = 0.0;
    for (int r = 0; r < point.reps; ++r) {
        const core::ScheduleResult& result = results[point.first + static_cast<std::size_t>(r)];
        if (!result.ok())
            std::fprintf(stderr, "warning: %s\n", core::to_string(result.error));
        total_ns += static_cast<double>(result.solve_ns);
    }
    return total_ns / (1000.0 * point.reps);
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const bool full = args.get_bool("full");
    const int reps = static_cast<int>(args.get_int("reps", full ? 50 : 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf16));
    const int max_tasks = static_cast<int>(args.get_int("max-tasks", 160));
    const int workers = static_cast<int>(args.get_int("workers", 0));

    svc::ServiceConfig config;
    config.workers = workers;
    config.cache_capacity = 0; // timing bench: never serve a cached solution
    svc::SolverService service{config};

    // Pass 1: lay out the whole figure as one request batch.
    std::vector<core::ScheduleRequest> requests;
    std::vector<GridPoint> points;
    for (const core::Resources resources : {core::Resources{20, 20}, core::Resources{100, 100}}) {
        for (const double sr : {0.2, 0.5, 0.8}) {
            for (int tasks = 20; tasks <= max_tasks; tasks += 20) {
                points.push_back(add_point(requests, core::Strategy::otac_big, tasks, resources,
                                           sr, reps, seed));
                points.push_back(add_point(requests, core::Strategy::fertac, tasks, resources, sr,
                                           reps, seed));
                // 2CATAC is exponential: the paper stops at 60 tasks.
                if (tasks <= 60)
                    points.push_back(add_point(requests, core::Strategy::twocatac, tasks,
                                               resources, sr, reps, seed));
                const bool herad_feasible = full || resources.big <= 20 || tasks <= 100;
                if (herad_feasible)
                    points.push_back(add_point(requests, core::Strategy::herad, tasks, resources,
                                               sr, reps, seed));
            }
        }
    }
    const std::vector<core::ScheduleResult> results = service.solve_batch(requests);

    // Pass 2: walk the grid in the same order and print the tables.
    std::size_t cursor = 0;
    auto next_cell = [&](core::Strategy expected) {
        const GridPoint& point = points[cursor++];
        (void)expected;
        return fmt(mean_time_us(results, point), 1);
    };
    for (const core::Resources resources : {core::Resources{20, 20}, core::Resources{100, 100}}) {
        std::printf("== Fig. 3%s: strategy times (us) vs #tasks, R = (%d, %d), %d reps, "
                    "%d solver workers ==\n\n",
                    resources.big == 20 ? "a" : "b", resources.big, resources.little, reps,
                    service.workers());
        for (const double sr : {0.2, 0.5, 0.8}) {
            std::printf("SR = %.1f\n", sr);
            TextTable table({"tasks", "OTAC (B)", "FERTAC", "2CATAC", "HeRAD"});
            for (int tasks = 20; tasks <= max_tasks; tasks += 20) {
                std::vector<std::string> row{std::to_string(tasks)};
                row.push_back(next_cell(core::Strategy::otac_big));
                row.push_back(next_cell(core::Strategy::fertac));
                row.push_back(tasks <= 60 ? next_cell(core::Strategy::twocatac)
                                          : std::string{"-"});
                const bool herad_feasible = full || resources.big <= 20 || tasks <= 100;
                row.push_back(herad_feasible ? next_cell(core::Strategy::herad)
                                             : std::string{"(--full)"});
                table.add_row(std::move(row));
            }
            std::printf("%s\n", table.str().c_str());
        }
    }
    return 0;
}
