// Reproduces Fig. 3: average strategy execution times (microseconds) as a
// function of the number of tasks, for fixed resources R = (20, 20) (a) and
// R = (100, 100) (b), with SR in {0.2, 0.5, 0.8}.
//
// The paper averages 50 chains per point; on a small machine that is slow
// for HeRAD at the largest sizes, so the default is --reps=5 with HeRAD
// capped at 100 tasks for R = (100, 100). Pass --full for paper scale.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "sim/timing.hpp"

#include <cstdio>
#include <vector>

namespace {

using namespace amp;

double mean_time_us(core::Strategy strategy, int tasks, core::Resources resources, double sr,
                    int reps, std::uint64_t seed)
{
    Rng rng{seed ^ static_cast<std::uint64_t>(tasks * 131 + resources.big)};
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    generator.stateless_ratio = sr;
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto chain = sim::generate_chain(generator, rng);
        total += sim::time_once_us([&] {
            const auto solution = core::schedule(strategy, chain, resources);
            if (solution.empty())
                std::fprintf(stderr, "warning: empty solution\n");
        });
    }
    return total / reps;
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const bool full = args.get_bool("full");
    const int reps = static_cast<int>(args.get_int("reps", full ? 50 : 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf16));
    const int max_tasks = static_cast<int>(args.get_int("max-tasks", 160));

    for (const core::Resources resources : {core::Resources{20, 20}, core::Resources{100, 100}}) {
        std::printf("== Fig. 3%s: strategy times (us) vs #tasks, R = (%d, %d), %d reps ==\n\n",
                    resources.big == 20 ? "a" : "b", resources.big, resources.little, reps);
        for (const double sr : {0.2, 0.5, 0.8}) {
            std::printf("SR = %.1f\n", sr);
            TextTable table({"tasks", "OTAC (B)", "FERTAC", "2CATAC", "HeRAD"});
            for (int tasks = 20; tasks <= max_tasks; tasks += 20) {
                std::vector<std::string> row{std::to_string(tasks)};
                row.push_back(fmt(
                    mean_time_us(core::Strategy::otac_big, tasks, resources, sr, reps, seed), 1));
                row.push_back(fmt(
                    mean_time_us(core::Strategy::fertac, tasks, resources, sr, reps, seed), 1));
                // 2CATAC is exponential: the paper stops at 60 tasks.
                row.push_back(tasks <= 60
                                  ? fmt(mean_time_us(core::Strategy::twocatac, tasks, resources,
                                                     sr, reps, seed),
                                        1)
                                  : std::string{"-"});
                const bool herad_feasible = full || resources.big <= 20 || tasks <= 100;
                row.push_back(herad_feasible
                                  ? fmt(mean_time_us(core::Strategy::herad, tasks, resources, sr,
                                                     reps, seed),
                                        1)
                                  : std::string{"(--full)"});
                table.add_row(std::move(row));
            }
            std::printf("%s\n", table.str().c_str());
        }
    }
    return 0;
}
