// Extension bench: FERTAC's core-type preference. The paper's §VI-E notes
// that FERTAC's S13 schedule -- which replicated the slowest stage on BIG
// cores -- beat the expected optimum in practice. This bench compares the
// paper's little-first FERTAC against the big-first variant across the
// simulation grid and the DVB-S2 platforms.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "dvbs2/params.hpp"
#include "dvbs2/profiles.hpp"
#include "sim/generator.hpp"
#include "sim/stats.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 300));

    std::printf("== Extension: FERTAC little-first vs big-first ==\n\n");

    // Synthetic grid.
    TextTable table({"R", "SR", "little-first: %opt / avg", "big-first: %opt / avg",
                     "little-first l_used", "big-first l_used"});
    for (const core::Resources resources :
         {core::Resources{16, 4}, core::Resources{10, 10}, core::Resources{4, 16}}) {
        for (const double sr : {0.2, 0.5, 0.8}) {
            Rng rng{0xfe7};
            sim::GeneratorConfig generator;
            generator.stateless_ratio = sr;
            std::vector<double> slow_little;
            std::vector<double> slow_big;
            double little_l = 0.0;
            double big_l = 0.0;
            for (int c = 0; c < chains; ++c) {
                const auto chain = sim::generate_chain(generator, rng);
                const double optimal = core::herad_optimal_period(chain, resources);
                const auto lf =
                    core::schedule(core::ScheduleRequest{chain, resources,
                                                         core::Strategy::fertac})
                        .solution;
                const auto bf =
                    core::schedule(core::ScheduleRequest{
                                       chain, resources, core::Strategy::fertac,
                                       {.preference = core::FertacPreference::big_first}})
                        .solution;
                slow_little.push_back(lf.period(chain) / optimal);
                slow_big.push_back(bf.period(chain) / optimal);
                little_l += lf.used(core::CoreType::little);
                big_l += bf.used(core::CoreType::little);
            }
            const auto sl = sim::summarize_slowdowns(slow_little);
            const auto sb = sim::summarize_slowdowns(slow_big);
            table.add_row({"(" + std::to_string(resources.big) + ","
                               + std::to_string(resources.little) + ")",
                           fmt(sr, 1), fmt_pct(sl.pct_optimal, 0) + " / " + fmt(sl.average, 3),
                           fmt_pct(sb.pct_optimal, 0) + " / " + fmt(sb.average, 3),
                           fmt(little_l / chains, 2), fmt(big_l / chains, 2)});
        }
    }
    std::printf("%s\n", table.str().c_str());

    // DVB-S2 platforms.
    std::printf("DVB-S2 receiver schedules:\n");
    TextTable dvb({"Platform", "R", "little-first period", "big-first period",
                   "little-first Mb/s", "big-first Mb/s"});
    for (const auto* profile : {&dvbs2::mac_studio_profile(), &dvbs2::x7ti_profile()}) {
        const auto chain = dvbs2::profile_chain(*profile);
        for (const core::Resources resources : {profile->cores_half, profile->cores_full}) {
            const auto lf =
                core::schedule(core::ScheduleRequest{chain, resources, core::Strategy::fertac})
                    .solution;
            const auto bf =
                core::schedule(core::ScheduleRequest{
                                   chain, resources, core::Strategy::fertac,
                                   {.preference = core::FertacPreference::big_first}})
                    .solution;
            auto mbps = [&](const core::Solution& s) {
                return dvbs2::mbps_from_fps(
                    dvbs2::fps_from_period_us(s.period(chain), profile->interframe), 14232);
            };
            dvb.add_row({profile->name,
                         "(" + std::to_string(resources.big) + ","
                             + std::to_string(resources.little) + ")",
                         fmt(lf.period(chain), 1), fmt(bf.period(chain), 1),
                         fmt(mbps(lf), 1), fmt(mbps(bf), 1)});
        }
    }
    std::printf("%s", dvb.str().c_str());
    return 0;
}
