// Extension bench: online recovery from a permanent core loss. A real
// pipeline runs with the watchdog armed; mid-stream a kill fault takes out
// the sequential source stage's only worker. The watchdog fences it, the
// run drains gracefully, the Rescheduler recomputes on the reduced resource
// vector and the stream resumes where it stopped. We measure delivered
// throughput in three windows -- before the failure, during recovery
// (detection + drain + reschedule + restart) and after -- plus the model's
// predicted period for the healthy and degraded schedules.
//
// A second scenario compares the two recovery modes on the same failure
// script: a full pipeline rebuild (SwapPolicy::rebuild_only) against the
// incremental plan-delta hot-swap (plan::diff + Pipeline::apply_delta).
// The chain is built so the degraded optimum keeps the healthy stage cut,
// making the kill delta-compatible by construction; the report shows
// recovery latency, frames dropped and pure swap time for both modes.
//
// A third scenario pushes further: an all-little chain whose degraded
// optimum keeps the healthy cut on the SAME core types (stage 1 merely
// resized), so the kill is resize-only and qualifies for the mid-segment
// frame swap (Pipeline::try_apply_delta_in_flight). It compares all three
// recovery modes -- drain + rebuild, drain + delta swap, and the in-flight
// frame swap that never stops the stream.
//
// Flags: --frames=N (default 600), --task-us=U per-task service (default
// 300), --kill-at=F failing frame (default frames/3), --swap-reps=R best-of
// repetitions per recovery mode (default 3), --json=<file> amp-bench-v1
// report (one record per phase window and per recovery mode, plus gauges).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "dsim/simulator.hpp"
#include "rt/fault.hpp"
#include "rt/rescheduler.hpp"
#include "support/bench_json.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Frame {
    std::uint64_t seq = 0;
};

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    using std::chrono::milliseconds;
    using std::chrono::microseconds;

    const ArgParse args(argc, argv);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 600));
    const auto task_us = static_cast<int>(args.get_int("task-us", 300));
    const auto kill_at =
        static_cast<std::uint64_t>(args.get_int("kill-at", static_cast<std::int64_t>(frames / 3)));
    const std::string json_path = args.get("json", "");

    // Five tasks; the first is stateful (a source keeping stream state), so
    // every schedule pins it to a sequential single-worker stage -- killing
    // worker 0 always forces a full drain + reschedule.
    constexpr int kTasks = 5;
    std::vector<core::TaskDesc> descs;
    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= kTasks; ++i) {
        const auto w = static_cast<double>(task_us);
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), w, 1.6 * w, i != 1});
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1, [task_us](Frame&) {
            std::this_thread::sleep_for(microseconds{task_us});
        }));
    }
    const core::TaskChain chain{std::move(descs)};
    const core::Resources budget{3, 2};

    rt::Rescheduler rescheduler{chain, budget};
    const core::Solution healthy = rescheduler.solution();

    rt::FaultInjector injector;
    injector.add(rt::FaultSpec{rt::FaultKind::kill, kill_at, 0, 0, 1, milliseconds{0}});

    rt::PipelineConfig config;
    config.faults = &injector;
    config.max_task_retries = 2;
    config.heartbeat_timeout = milliseconds{100};
    config.watchdog_poll = milliseconds{2};

    std::printf("== Extension: throughput across a permanent core loss ==\n");
    std::printf("chain: %d tasks x %d us, R = (%d, %d), kill at frame %llu of %llu\n",
                kTasks, task_us, budget.big, budget.little,
                static_cast<unsigned long long>(kill_at),
                static_cast<unsigned long long>(frames));
    std::printf("healthy schedule: %s (model period %.0f us)\n\n",
                healthy.decomposition().c_str(), dsim::expected_period_us(chain, healthy));

    // Drain-based recovery only: the window analysis below assumes the
    // stream actually stops (before / during / after), so the in-flight
    // frame swap is measured in its own scenario instead.
    rt::RecoveryOptions window_options;
    window_options.swap = rt::SwapPolicy::delta;

    std::vector<double> stamps; // output delivery times, seconds since start
    stamps.reserve(static_cast<std::size_t>(frames));
    const auto t0 = std::chrono::steady_clock::now();
    const rt::RecoveryReport report = rt::run_with_recovery<Frame>(
        sequence, rescheduler, frames, config,
        [&](Frame&) {
            stamps.push_back(
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
        },
        -1, window_options);

    if (report.total.failure_seconds < 0.0 || report.recoveries == 0) {
        std::printf("no failure occurred (kill frame past the stream end?)\n");
        return 0;
    }

    const double fail = report.total.failure_seconds;
    const double resume = fail + report.recovery_latency_seconds;
    const double end = report.total.elapsed_seconds;

    const auto window_fps = [&](double from, double to) -> std::pair<std::uint64_t, double> {
        std::uint64_t count = 0;
        for (const double t : stamps)
            count += (t >= from && t < to) ? 1 : 0;
        const double span = to - from;
        return {count, span > 0.0 ? static_cast<double>(count) / span : 0.0};
    };
    const auto [before_n, before_fps] = window_fps(0.0, fail);
    const auto [during_n, during_fps] = window_fps(fail, resume);
    const auto [after_n, after_fps] = window_fps(resume, end + 1e-9);

    TextTable table({"phase", "window (ms)", "frames", "fps"});
    table.add_row({"before loss", fmt(fail * 1e3, 1), std::to_string(before_n),
                   fmt(before_fps, 1)});
    table.add_row({"during recovery", fmt((resume - fail) * 1e3, 1), std::to_string(during_n),
                   fmt(during_fps, 1)});
    table.add_row({"after recovery", fmt((end - resume) * 1e3, 1), std::to_string(after_n),
                   fmt(after_fps, 1)});
    std::printf("%s\n", table.str().c_str());

    const core::Solution& degraded = report.solutions.back();
    std::printf("recovery latency : %.1f ms (detection -> first resumed frame)\n",
                report.recovery_latency_seconds * 1e3);
    std::printf("frames dropped   : %llu of %llu\n",
                static_cast<unsigned long long>(report.total.frames_dropped),
                static_cast<unsigned long long>(frames));
    std::printf("degraded schedule: %s on R = (%d, %d) (model period %.0f us)\n",
                degraded.decomposition().c_str(), rescheduler.resources().big,
                rescheduler.resources().little, dsim::expected_period_us(chain, degraded));
    std::printf("\nThe after-loss fps should track the degraded model period. Windows split\n"
                "at detection: the silent dead-time before the watchdog fences the worker\n"
                "(up to the %lld ms heartbeat timeout) drags down the before-loss fps.\n",
                static_cast<long long>(config.heartbeat_timeout.count()));

    // -- rebuild vs delta hot-swap on the same failure script ---------------
    // t1 is stateful and big-favored; t2..t5 are replicable with a slightly
    // lopsided little-core interval sum, so on R = (1, 3) the optimum is
    // [t1]x1B | [t2-t5]x3L and after losing the big core it stays the SAME
    // cut: [t1]x1L | [t2-t5]x2L. The kill is therefore delta-compatible
    // (stage 0 rebound, stage 1 resized) and the two modes differ only in
    // how the swap itself is performed.
    const auto swap_reps = static_cast<int>(args.get_int("swap-reps", 3));
    std::vector<core::TaskDesc> cmp_descs;
    cmp_descs.push_back(core::TaskDesc{"t1", 1.0 * task_us, 1.2 * task_us, false});
    const double cmp_little[] = {0.75, 0.75, 0.75, 0.76};
    for (int i = 2; i <= kTasks; ++i)
        cmp_descs.push_back(core::TaskDesc{"t" + std::to_string(i), 0.6 * task_us,
                                           cmp_little[i - 2] * task_us, true});
    const core::TaskChain cmp_chain{std::move(cmp_descs)};
    const core::Resources cmp_budget{1, 3};

    struct ModeStats {
        double latency_s = 1e9;
        double swap_s = 0.0;
        std::uint64_t dropped = 0;
        int delta_swaps = 0;
        int rebuild_swaps = 0;
        int frame_swaps = 0;
        bool valid = false;
    };
    const auto run_mode = [&](const core::TaskChain& mode_chain, core::Resources mode_budget,
                              rt::RecoveryOptions options) {
        ModeStats best;
        for (int rep = 0; rep < swap_reps; ++rep) {
            rt::TaskSequence<Frame> mode_sequence;
            for (int i = 1; i <= kTasks; ++i)
                mode_sequence.push_back(
                    rt::make_task<Frame>("t" + std::to_string(i), i == 1, [task_us](Frame&) {
                        std::this_thread::sleep_for(microseconds{task_us});
                    }));
            rt::Rescheduler mode_rescheduler{mode_chain, mode_budget};
            rt::FaultInjector mode_injector;
            mode_injector.add(
                rt::FaultSpec{rt::FaultKind::kill, kill_at, 0, 0, 1, milliseconds{0}});
            rt::PipelineConfig mode_config;
            mode_config.faults = &mode_injector;
            mode_config.heartbeat_timeout = milliseconds{100};
            mode_config.watchdog_poll = milliseconds{2};
            const rt::RecoveryReport r = rt::run_with_recovery<Frame>(
                mode_sequence, mode_rescheduler, frames, mode_config, {}, -1, options);
            if (r.recoveries != 1 || !r.completed)
                continue;
            if (r.recovery_latency_seconds < best.latency_s) {
                best.latency_s = r.recovery_latency_seconds;
                best.swap_s = r.swap_seconds;
                best.dropped = r.total.frames_dropped;
                best.delta_swaps = r.delta_swaps;
                best.rebuild_swaps = r.rebuild_swaps;
                best.frame_swaps = r.frame_swaps;
                best.valid = true;
            }
        }
        return best;
    };
    rt::RecoveryOptions rebuild_options;
    rebuild_options.swap = rt::SwapPolicy::rebuild_only;
    rt::RecoveryOptions delta_options;
    delta_options.swap = rt::SwapPolicy::delta;
    const ModeStats rebuild = run_mode(cmp_chain, cmp_budget, rebuild_options);
    const ModeStats delta = run_mode(cmp_chain, cmp_budget, delta_options);

    std::printf("\n== Recovery mode: full rebuild vs incremental plan delta ==\n");
    std::printf("chain: same cut before and after the loss on R = (%d, %d); best of %d runs\n",
                cmp_budget.big, cmp_budget.little, swap_reps);
    if (rebuild.valid && delta.valid) {
        TextTable swap_table(
            {"mode", "recovery latency (ms)", "swap (ms)", "frames dropped", "swaps"});
        swap_table.add_row({"rebuild", fmt(rebuild.latency_s * 1e3, 2),
                            fmt(rebuild.swap_s * 1e3, 3), std::to_string(rebuild.dropped),
                            std::to_string(rebuild.rebuild_swaps) + " rebuild"});
        swap_table.add_row({"delta", fmt(delta.latency_s * 1e3, 2), fmt(delta.swap_s * 1e3, 3),
                            std::to_string(delta.dropped),
                            std::to_string(delta.delta_swaps) + " delta"});
        std::printf("%s\n", swap_table.str().c_str());
        std::printf("delta vs rebuild : %.2fx recovery latency, %.2fx swap time\n",
                    rebuild.latency_s / delta.latency_s, delta.swap_s > 0.0
                        ? rebuild.swap_s / delta.swap_s : 0.0);
    } else {
        std::printf("comparison skipped: a mode failed to recover exactly once\n");
    }

    // -- three-way: rebuild vs drain-delta vs in-flight frame swap ----------
    // All-little chain on R = (0, 4): t1 is stateful (sequential stage), the
    // rest replicable with the same lopsided little-core interval sums as
    // above. Healthy optimum [t1]x1L | [t2-t5]x3L; after losing one little
    // it stays [t1]x1L | [t2-t5]x2L -- the SAME cut on the SAME core type,
    // stage 1 merely resized. The kill delta is resize-only by construction,
    // so the frame-swap mode can replace the fenced source worker and shrink
    // stage 1 mid-segment, without ever draining the stream.
    std::vector<core::TaskDesc> fs_descs;
    fs_descs.push_back(core::TaskDesc{"t1", 1.0 * task_us, 0.9 * task_us, false});
    for (int i = 2; i <= kTasks; ++i)
        fs_descs.push_back(core::TaskDesc{"t" + std::to_string(i), 0.6 * task_us,
                                          cmp_little[i - 2] * task_us, true});
    const core::TaskChain fs_chain{std::move(fs_descs)};
    const core::Resources fs_budget{0, 4};
    rt::RecoveryOptions frame_options; // SwapPolicy::frame_first (the default)

    const ModeStats fs_rebuild = run_mode(fs_chain, fs_budget, rebuild_options);
    const ModeStats fs_delta = run_mode(fs_chain, fs_budget, delta_options);
    const ModeStats fs_frame = run_mode(fs_chain, fs_budget, frame_options);

    std::printf("\n== Recovery mode: drain-rebuild vs drain-delta vs frame swap ==\n");
    std::printf("resize-only loss on R = (%d, %d): same cut, same types; best of %d runs\n",
                fs_budget.big, fs_budget.little, swap_reps);
    if (fs_rebuild.valid && fs_delta.valid && fs_frame.valid) {
        TextTable fs_table(
            {"mode", "recovery latency (ms)", "swap (ms)", "frames dropped", "swaps"});
        fs_table.add_row({"rebuild", fmt(fs_rebuild.latency_s * 1e3, 2),
                          fmt(fs_rebuild.swap_s * 1e3, 3), std::to_string(fs_rebuild.dropped),
                          std::to_string(fs_rebuild.rebuild_swaps) + " rebuild"});
        fs_table.add_row({"delta", fmt(fs_delta.latency_s * 1e3, 2),
                          fmt(fs_delta.swap_s * 1e3, 3), std::to_string(fs_delta.dropped),
                          std::to_string(fs_delta.delta_swaps) + " delta"});
        fs_table.add_row({"frame", fmt(fs_frame.latency_s * 1e3, 2),
                          fmt(fs_frame.swap_s * 1e3, 3), std::to_string(fs_frame.dropped),
                          std::to_string(fs_frame.frame_swaps) + " frame"});
        std::printf("%s\n", fs_table.str().c_str());
        std::printf("frame swap vs delta   : %.2fx recovery latency\n",
                    fs_delta.latency_s / fs_frame.latency_s);
        std::printf("frame swap vs rebuild : %.2fx recovery latency\n",
                    fs_rebuild.latency_s / fs_frame.latency_s);
        std::printf("The frame swap never drains: replacement workers join the live stream\n"
                    "at the next frame boundary, so its latency is dominated by failure\n"
                    "detection and one solver call rather than drain + restart.\n");
    } else {
        std::printf("comparison skipped: a mode failed to recover exactly once\n");
    }

    if (!json_path.empty()) {
        bench::JsonReport json_report{"ext_fault_recovery"};
        json_report.param("frames", frames)
            .param("task_us", task_us)
            .param("kill_at", kill_at)
            .param("big", budget.big)
            .param("little", budget.little);
        const struct {
            const char* phase;
            double from;
            double to;
            std::uint64_t count;
            double fps;
        } phases[] = {
            {"before_loss", 0.0, fail, before_n, before_fps},
            {"during_recovery", fail, resume, during_n, during_fps},
            {"after_recovery", resume, end, after_n, after_fps},
        };
        for (const auto& phase : phases)
            json_report.add_record()
                .set("phase", phase.phase)
                .set("window_s", phase.to - phase.from)
                .set("frames", phase.count)
                .set("fps", phase.fps);
        const struct {
            const char* phase;
            const char* mode;
            const ModeStats* stats;
        } mode_records[] = {
            {"recovery_rebuild", "rebuild", &rebuild},
            {"recovery_delta", "delta", &delta},
            {"frameswap_rebuild", "rebuild", &fs_rebuild},
            {"frameswap_delta", "delta", &fs_delta},
            {"frameswap_frame", "frame", &fs_frame},
        };
        for (const auto& rec : mode_records)
            if (rec.stats->valid)
                json_report.add_record()
                    .set("phase", rec.phase)
                    .set("mode", rec.mode)
                    .set("recovery_latency_s", rec.stats->latency_s)
                    .set("swap_s", rec.stats->swap_s)
                    .set("frames_dropped", rec.stats->dropped)
                    .set("delta_swaps", rec.stats->delta_swaps)
                    .set("rebuild_swaps", rec.stats->rebuild_swaps)
                    .set("frame_swaps", rec.stats->frame_swaps);
        if (rebuild.valid && delta.valid && delta.latency_s > 0.0)
            json_report.param("delta_latency_speedup", rebuild.latency_s / delta.latency_s)
                .param("swap_reps", static_cast<std::int64_t>(swap_reps));
        if (fs_delta.valid && fs_frame.valid && fs_frame.latency_s > 0.0)
            json_report.param("frame_latency_speedup_vs_delta",
                              fs_delta.latency_s / fs_frame.latency_s);
        if (fs_rebuild.valid && fs_frame.valid && fs_frame.latency_s > 0.0)
            json_report.param("frame_latency_speedup_vs_rebuild",
                              fs_rebuild.latency_s / fs_frame.latency_s);
        json_report.param("recoveries", static_cast<std::int64_t>(report.recoveries))
            .param("recovery_latency_s", report.recovery_latency_seconds)
            .param("frames_dropped", report.total.frames_dropped)
            .param("healthy_period_us", dsim::expected_period_us(chain, healthy))
            .param("degraded_period_us", dsim::expected_period_us(chain, degraded))
            .param("healthy_schedule", healthy.decomposition())
            .param("degraded_schedule", degraded.decomposition());
        if (!json_report.write_file(json_path)) {
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("json report: %s\n", json_path.c_str());
    }
    return 0;
}
