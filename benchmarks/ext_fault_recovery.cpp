// Extension bench: online recovery from a permanent core loss. A real
// pipeline runs with the watchdog armed; mid-stream a kill fault takes out
// the sequential source stage's only worker. The watchdog fences it, the
// run drains gracefully, the Rescheduler recomputes on the reduced resource
// vector and the stream resumes where it stopped. We measure delivered
// throughput in three windows -- before the failure, during recovery
// (detection + drain + reschedule + restart) and after -- plus the model's
// predicted period for the healthy and degraded schedules.
//
// Flags: --frames=N (default 600), --task-us=U per-task service (default
// 300), --kill-at=F failing frame (default frames/3), --json=<file>
// amp-bench-v1 report (one record per phase window plus recovery gauges).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "dsim/simulator.hpp"
#include "rt/fault.hpp"
#include "rt/rescheduler.hpp"
#include "support/bench_json.hpp"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Frame {
    std::uint64_t seq = 0;
};

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    using std::chrono::milliseconds;
    using std::chrono::microseconds;

    const ArgParse args(argc, argv);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 600));
    const auto task_us = static_cast<int>(args.get_int("task-us", 300));
    const auto kill_at =
        static_cast<std::uint64_t>(args.get_int("kill-at", static_cast<std::int64_t>(frames / 3)));
    const std::string json_path = args.get("json", "");

    // Five tasks; the first is stateful (a source keeping stream state), so
    // every schedule pins it to a sequential single-worker stage -- killing
    // worker 0 always forces a full drain + reschedule.
    constexpr int kTasks = 5;
    std::vector<core::TaskDesc> descs;
    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= kTasks; ++i) {
        const auto w = static_cast<double>(task_us);
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), w, 1.6 * w, i != 1});
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1, [task_us](Frame&) {
            std::this_thread::sleep_for(microseconds{task_us});
        }));
    }
    const core::TaskChain chain{std::move(descs)};
    const core::Resources budget{3, 2};

    rt::Rescheduler rescheduler{chain, budget};
    const core::Solution healthy = rescheduler.solution();

    rt::FaultInjector injector;
    injector.add(rt::FaultSpec{rt::FaultKind::kill, kill_at, 0, 0, 1, milliseconds{0}});

    rt::PipelineConfig config;
    config.faults = &injector;
    config.max_task_retries = 2;
    config.heartbeat_timeout = milliseconds{100};
    config.watchdog_poll = milliseconds{2};

    std::printf("== Extension: throughput across a permanent core loss ==\n");
    std::printf("chain: %d tasks x %d us, R = (%d, %d), kill at frame %llu of %llu\n",
                kTasks, task_us, budget.big, budget.little,
                static_cast<unsigned long long>(kill_at),
                static_cast<unsigned long long>(frames));
    std::printf("healthy schedule: %s (model period %.0f us)\n\n",
                healthy.decomposition().c_str(), dsim::expected_period_us(chain, healthy));

    std::vector<double> stamps; // output delivery times, seconds since start
    stamps.reserve(static_cast<std::size_t>(frames));
    const auto t0 = std::chrono::steady_clock::now();
    const rt::RecoveryReport report = rt::run_with_recovery<Frame>(
        sequence, rescheduler, frames, config, [&](Frame&) {
            stamps.push_back(
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
        });

    if (report.total.failure_seconds < 0.0 || report.recoveries == 0) {
        std::printf("no failure occurred (kill frame past the stream end?)\n");
        return 0;
    }

    const double fail = report.total.failure_seconds;
    const double resume = fail + report.recovery_latency_seconds;
    const double end = report.total.elapsed_seconds;

    const auto window_fps = [&](double from, double to) -> std::pair<std::uint64_t, double> {
        std::uint64_t count = 0;
        for (const double t : stamps)
            count += (t >= from && t < to) ? 1 : 0;
        const double span = to - from;
        return {count, span > 0.0 ? static_cast<double>(count) / span : 0.0};
    };
    const auto [before_n, before_fps] = window_fps(0.0, fail);
    const auto [during_n, during_fps] = window_fps(fail, resume);
    const auto [after_n, after_fps] = window_fps(resume, end + 1e-9);

    TextTable table({"phase", "window (ms)", "frames", "fps"});
    table.add_row({"before loss", fmt(fail * 1e3, 1), std::to_string(before_n),
                   fmt(before_fps, 1)});
    table.add_row({"during recovery", fmt((resume - fail) * 1e3, 1), std::to_string(during_n),
                   fmt(during_fps, 1)});
    table.add_row({"after recovery", fmt((end - resume) * 1e3, 1), std::to_string(after_n),
                   fmt(after_fps, 1)});
    std::printf("%s\n", table.str().c_str());

    const core::Solution& degraded = report.solutions.back();
    std::printf("recovery latency : %.1f ms (detection -> first resumed frame)\n",
                report.recovery_latency_seconds * 1e3);
    std::printf("frames dropped   : %llu of %llu\n",
                static_cast<unsigned long long>(report.total.frames_dropped),
                static_cast<unsigned long long>(frames));
    std::printf("degraded schedule: %s on R = (%d, %d) (model period %.0f us)\n",
                degraded.decomposition().c_str(), rescheduler.resources().big,
                rescheduler.resources().little, dsim::expected_period_us(chain, degraded));
    std::printf("\nThe after-loss fps should track the degraded model period. Windows split\n"
                "at detection: the silent dead-time before the watchdog fences the worker\n"
                "(up to the %lld ms heartbeat timeout) drags down the before-loss fps.\n",
                static_cast<long long>(config.heartbeat_timeout.count()));

    if (!json_path.empty()) {
        bench::JsonReport json_report{"ext_fault_recovery"};
        json_report.param("frames", frames)
            .param("task_us", task_us)
            .param("kill_at", kill_at)
            .param("big", budget.big)
            .param("little", budget.little);
        const struct {
            const char* phase;
            double from;
            double to;
            std::uint64_t count;
            double fps;
        } phases[] = {
            {"before_loss", 0.0, fail, before_n, before_fps},
            {"during_recovery", fail, resume, during_n, during_fps},
            {"after_recovery", resume, end, after_n, after_fps},
        };
        for (const auto& phase : phases)
            json_report.add_record()
                .set("phase", phase.phase)
                .set("window_s", phase.to - phase.from)
                .set("frames", phase.count)
                .set("fps", phase.fps);
        json_report.param("recoveries", static_cast<std::int64_t>(report.recoveries))
            .param("recovery_latency_s", report.recovery_latency_seconds)
            .param("frames_dropped", report.total.frames_dropped)
            .param("healthy_period_us", dsim::expected_period_us(chain, healthy))
            .param("degraded_period_us", dsim::expected_period_us(chain, degraded))
            .param("healthy_schedule", healthy.decomposition())
            .param("degraded_schedule", degraded.decomposition());
        if (!json_report.write_file(json_path)) {
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("json report: %s\n", json_path.c_str());
    }
    return 0;
}
