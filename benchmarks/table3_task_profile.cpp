// Reproduces Table III: the DVB-S2 receiver's average task latencies.
// Prints (a) the paper's embedded profiles for both platforms and (b) a
// live profile of THIS repository's receiver implementation, measured on
// the local machine (big column) with the Mac Studio little/big ratios
// applied (little column), as the local substitute for e-core profiling.
//
// Flags: --frames=N profiling frames (default 6), --interframe=N.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "dvbs2/profiles.hpp"
#include "dvbs2/receiver.hpp"
#include "rt/profiler.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 6));
    const int interframe = static_cast<int>(args.get_int("interframe", 4));

    const auto& names = dvbs2::receiver_task_names();
    const auto& replicable = dvbs2::receiver_task_replicable();
    const auto& mac = dvbs2::mac_studio_profile();
    const auto& x7 = dvbs2::x7ti_profile();

    std::printf("== Table III (paper profiles): average task latency (us) ==\n\n");
    {
        TextTable table({"Id", "Name", "Rep.", "Mac B", "Mac L", "X7 B", "X7 L"});
        double totals[4] = {0, 0, 0, 0};
        for (std::size_t i = 0; i < 23; ++i) {
            table.add_row({"tau" + std::to_string(i + 1), names[i], replicable[i] ? "yes" : "no",
                           fmt(mac.big_us[i], 1), fmt(mac.little_us[i], 1),
                           fmt(x7.big_us[i], 1), fmt(x7.little_us[i], 1)});
            totals[0] += mac.big_us[i];
            totals[1] += mac.little_us[i];
            totals[2] += x7.big_us[i];
            totals[3] += x7.little_us[i];
        }
        table.add_row({"", "Total", "", fmt(totals[0], 1), fmt(totals[1], 1), fmt(totals[2], 1),
                       fmt(totals[3], 1)});
        std::printf("%s\n", table.str().c_str());
    }

    std::printf("== Live profile of this repository's receiver (interframe %d, %llu frames) "
                "==\n(little column = measured big x Mac Studio per-task ratio)\n\n",
                interframe, static_cast<unsigned long long>(frames));
    dvbs2::ReceiverConfig config;
    config.params.interframe = interframe;
    auto chain = dvbs2::build_receiver_chain(config);
    const auto profile = rt::profile_sequence(chain.sequence, frames, 2);
    const auto ratios = dvbs2::little_slowdown_factors(mac);

    TextTable table({"Id", "Name", "Rep.", "B (us)", "L (us, modeled)", "ratio"});
    double total_big = 0.0;
    for (std::size_t i = 0; i < 23; ++i) {
        const double big = profile.latency_us[i];
        total_big += big;
        table.add_row({"tau" + std::to_string(i + 1), names[i], replicable[i] ? "yes" : "no",
                       fmt(big, 1), fmt(big * ratios[i], 1), fmt(ratios[i], 2)});
    }
    table.add_row({"", "Total", "", fmt(total_big, 1), "", ""});
    std::printf("%s", table.str().c_str());
    return 0;
}
