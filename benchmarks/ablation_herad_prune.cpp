// Ablation: HeRAD's sound lower-bound prune (DESIGN.md). Measures the DP's
// execution time with and without the prune on growing instances and checks
// that the results are identical.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "sim/timing.hpp"

#include <cstdio>

namespace {

// Option-ablation helper over the unified scheduling entry point.
amp::core::Solution solve_herad(const amp::core::TaskChain& chain, amp::core::Resources resources,
                                amp::core::ScheduleOptions options)
{
    return amp::core::schedule(
               amp::core::ScheduleRequest{chain, resources, amp::core::Strategy::herad, options})
        .solution;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int reps = static_cast<int>(args.get_int("reps", 3));

    std::printf("== Ablation: HeRAD lower-bound prune ==\n\n");
    TextTable table({"tasks", "R", "SR", "pruned (us)", "exact (us)", "speedup", "identical"});
    for (const int tasks : {20, 40, 60}) {
        for (const double sr : {0.2, 0.8}) {
            const core::Resources resources{20, 20};
            Rng rng{0xab1e ^ static_cast<std::uint64_t>(tasks)};
            sim::GeneratorConfig generator;
            generator.num_tasks = tasks;
            generator.stateless_ratio = sr;
            double pruned_us = 0.0;
            double exact_us = 0.0;
            bool identical = true;
            for (int r = 0; r < reps; ++r) {
                const auto chain = sim::generate_chain(generator, rng);
                core::Solution pruned;
                core::Solution exact;
                pruned_us += sim::time_once_us(
                    [&] { pruned = solve_herad(chain, resources, {.prune = true}); });
                exact_us += sim::time_once_us(
                    [&] { exact = solve_herad(chain, resources, {.prune = false}); });
                identical &= pruned.period(chain) == exact.period(chain)
                    && pruned.used() == exact.used();
            }
            table.add_row({std::to_string(tasks), "(20,20)", fmt(sr, 1),
                           fmt(pruned_us / reps, 1), fmt(exact_us / reps, 1),
                           fmt(exact_us / pruned_us, 2), identical ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
