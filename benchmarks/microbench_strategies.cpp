// Google-benchmark microbenchmarks of the scheduling strategies (a
// statistically robust complement to the Fig. 3/4 sweeps) and of the hot
// support routines (ComputeStage, interval queries).

#include "core/scheduler.hpp"
#include "sim/generator.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace amp;

core::TaskChain chain_for(int tasks, double sr, std::uint64_t seed)
{
    Rng rng{seed};
    sim::GeneratorConfig config;
    config.num_tasks = tasks;
    config.stateless_ratio = sr;
    return sim::generate_chain(config, rng);
}

void BM_Fertac(benchmark::State& state)
{
    const auto chain = chain_for(static_cast<int>(state.range(0)), 0.5, 0xb1);
    const core::Resources resources{20, 20};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::schedule(core::ScheduleRequest{chain, resources, core::Strategy::fertac}));
}
BENCHMARK(BM_Fertac)->Arg(20)->Arg(80)->Arg(160);

void BM_Twocatac(benchmark::State& state)
{
    const auto chain = chain_for(static_cast<int>(state.range(0)), 0.5, 0xb2);
    const core::Resources resources{20, 20};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::schedule(core::ScheduleRequest{chain, resources, core::Strategy::twocatac}));
}
BENCHMARK(BM_Twocatac)->Arg(20)->Arg(40);

void BM_Herad(benchmark::State& state)
{
    const auto chain = chain_for(static_cast<int>(state.range(0)), 0.5, 0xb3);
    const core::Resources resources{20, 20};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::schedule(core::ScheduleRequest{chain, resources, core::Strategy::herad}));
}
BENCHMARK(BM_Herad)->Arg(20)->Arg(40)->Arg(80);

void BM_OtacBig(benchmark::State& state)
{
    const auto chain = chain_for(static_cast<int>(state.range(0)), 0.5, 0xb4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            core::schedule(core::ScheduleRequest{chain, {20, 0}, core::Strategy::otac_big}));
}
BENCHMARK(BM_OtacBig)->Arg(20)->Arg(80)->Arg(160);

void BM_ComputeStage(benchmark::State& state)
{
    const auto chain = chain_for(160, 0.8, 0xb5);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::compute_stage(chain, 1, 20, core::CoreType::big, 200.0));
}
BENCHMARK(BM_ComputeStage);

void BM_StageWeightQuery(benchmark::State& state)
{
    const auto chain = chain_for(160, 0.5, 0xb6);
    int i = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain.stage_weight(i, 140 + (i % 20), 3, core::CoreType::big));
        i = i % 100 + 1;
    }
}
BENCHMARK(BM_StageWeightQuery);

} // namespace

BENCHMARK_MAIN();
