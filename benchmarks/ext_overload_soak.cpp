// Extension bench: chaos soak of the overload-protection layer
// (docs/FAULT_MODEL.md, "Overload model"). Two scenarios:
//
//   1. Solver-service spike soak. A pool of submitter threads drives
//      solve_batch through three phases -- warmup at ~50% of solver
//      capacity, a 4x arrival-rate spike salted with pathologically slow
//      "heavy" chains, then recovery back to the warmup rate. Every
//      request carries a client-side deadline; goodput is the number of
//      usable answers (fresh or degraded-stale) delivered before their
//      deadline. The same workload runs twice: once against an
//      unprotected service (unbounded admission, no breaker, no
//      brownout, deadlines tracked only by the client) and once against
//      a protected one (bounded priority-aware admission, slow-solve
//      circuit breaker, deadline shedding, stale-while-revalidate
//      brownout). The report shows goodput in both modes plus a
//      zero-silent-drop audit: every client-visible shed must be
//      accounted for by an amp_svc_* counter, exactly.
//
//   2. Pipeline chaos soak. A real pipeline with overload protection
//      enabled runs a bursty-stall drain (periodic output hiccups force
//      queue congestion) while a junk tenant saturates the shared solver
//      service's admission queue AND a kill fault takes out a worker
//      mid-stream. The run must recover from the core loss (the
//      recovery re-solve's priority displaces junk traffic), shed
//      frames under congestion without ever dropping one silently, and
//      account for every stream position.
//
// Flags: --arrivals=N batches in scenario 1 (default 120), --batch=N
// requests per batch (default 4), --threads=N submitters (default 8),
// --workers=N service workers (default 2), --tasks=N per fresh chain
// (default 24), --frames=N scenario-2 stream length (default 160),
// --task-us=U scenario-2 per-task service time (default 250),
// --json=<file> amp-bench-v1 report.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "rt/fault.hpp"
#include "rt/rescheduler.hpp"
#include "sim/generator.hpp"
#include "support/bench_json.hpp"
#include "svc/solver_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace amp;
using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::steady_clock;

std::int64_t steady_now_ns()
{
    return duration_cast<nanoseconds>(steady_clock::now().time_since_epoch()).count();
}

// ---------------------------------------------------------------------------
// Scenario 1: solver-service spike soak
// ---------------------------------------------------------------------------

/// One scheduled arrival: a batch of requests plus its relative arrival
/// and deadline times. Deadlines are stamped as absolute steady-clock
/// nanoseconds at launch (protected mode only; the client always tracks
/// them for the goodput tally).
struct Arrival {
    std::vector<core::ScheduleRequest> requests;
    std::int64_t arrive_rel_us = 0;
    std::int64_t deadline_rel_us = 0;
};

struct Workload {
    std::vector<Arrival> arrivals;
    std::vector<core::ScheduleRequest> warm; ///< small-R requests pre-solved to seed brownout
    double mean_solve_us = 0.0;              ///< measured normal-chain solve cost
    double heavy_solve_us = 0.0;             ///< measured heavy-chain solve cost
    std::uint64_t slow_solve_ns = 0;         ///< breaker slow-solve threshold
    std::int64_t spike_start_us = 0;
    std::int64_t spike_end_us = 0;
};

/// Client-side tallies for one soak run. Every offered request lands in
/// exactly one bucket; `goodput` additionally counts the ok buckets that
/// met their deadline.
struct SoakTally {
    std::atomic<std::uint64_t> ok_fresh{0};
    std::atomic<std::uint64_t> ok_degraded{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> deadline_shed{0};
    std::atomic<std::uint64_t> other_error{0};
    std::atomic<std::uint64_t> goodput{0};
    std::atomic<std::uint64_t> late{0};
    std::atomic<std::int64_t> latency_sum_us{0};
    std::atomic<std::int64_t> latency_max_us{0};
    std::atomic<std::int64_t> last_done_rel_us{0};

    [[nodiscard]] std::uint64_t answered() const
    {
        return ok_fresh.load() + ok_degraded.load() + rejected.load() + deadline_shed.load()
               + other_error.load();
    }
};

struct SoakOutcome {
    std::uint64_t offered = 0;
    double wall_s = 0.0;
    svc::AdmissionStats admission;
    std::uint64_t breaker_trips = 0;
    std::size_t breaker_transitions = 0;
    std::uint64_t ctr_admission_rejected = 0;
    std::uint64_t ctr_admission_displaced = 0;
    std::uint64_t ctr_breaker_rejected = 0;
    std::uint64_t ctr_deadline = 0;
    std::uint64_t ctr_degraded = 0;
    std::uint64_t ctr_refinements = 0;
    std::uint64_t silent_drops = 0;
    bool audit_ok = false;
};

core::TaskChain make_heavy_chain(int tasks, std::uint64_t salt)
{
    // Heavy = many tasks, so the solve itself is slow (a breaker failure
    // by construction once slow_solve_ns sits between the two measured
    // means). The salt defeats the solution cache.
    Rng rng{0xbeef00 + salt};
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    generator.stateless_ratio = 0.5;
    return sim::generate_chain(generator, rng);
}

Workload build_workload(int arrivals, int batch, int tasks, int workers, std::uint64_t seed)
{
    Workload load;
    Rng rng{seed};
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    generator.stateless_ratio = 0.5;

    // Warm pool: chains cached at a small resource vector before the soak
    // starts. "Refit" arrivals re-request them at a larger budget -- never
    // an exact cache hit, but exactly what brownout can serve stale.
    constexpr int kWarmPool = 6;
    constexpr core::Resources kWarmBudget{2, 2};
    constexpr core::Resources kSoakBudget{6, 6};
    std::vector<core::TaskChain> warm_chains;
    for (int i = 0; i < kWarmPool; ++i) {
        warm_chains.push_back(sim::generate_chain(generator, rng));
        load.warm.push_back(
            core::ScheduleRequest{warm_chains.back(), kWarmBudget, core::Strategy::herad});
    }

    // Calibrate: measure the mean solve cost of normal and heavy chains so
    // arrival rates, deadlines and the breaker threshold self-scale to the
    // machine instead of hard-coding microseconds.
    const auto measure = [&](const core::TaskChain& chain) {
        const core::ScheduleResult result =
            core::schedule(core::ScheduleRequest{chain, kSoakBudget, core::Strategy::herad});
        return static_cast<double>(result.solve_ns) / 1000.0;
    };
    double normal_sum = 0.0;
    constexpr int kSamples = 8;
    for (int i = 0; i < kSamples; ++i)
        normal_sum += measure(sim::generate_chain(generator, rng));
    load.mean_solve_us = std::max(normal_sum / kSamples, 1.0);
    double heavy_sum = 0.0;
    constexpr int kHeavySamples = 3;
    const int heavy_tasks = tasks * 5;
    for (int i = 0; i < kHeavySamples; ++i)
        heavy_sum += measure(make_heavy_chain(heavy_tasks, 1000 + static_cast<std::uint64_t>(i)));
    load.heavy_solve_us = std::max(heavy_sum / kHeavySamples, load.mean_solve_us);

    // The breaker threshold sits at the geometric mean of the two costs
    // (at least 2.5x normal, so scheduler jitter on a loaded machine does
    // not trip it on healthy solves).
    load.slow_solve_ns = static_cast<std::uint64_t>(
        std::max(2.5 * load.mean_solve_us, std::sqrt(load.mean_solve_us * load.heavy_solve_us))
        * 1000.0);

    // Warmup offers ~50% of solver capacity; the spike multiplies the
    // arrival rate by 4 (~200% of capacity) and salts in heavy chains.
    const double interval_warm_us =
        std::max(2.0 * batch * load.mean_solve_us / std::max(workers, 1), 50.0);
    const double interval_spike_us = interval_warm_us / 4.0;
    const std::int64_t deadline_slack_us =
        static_cast<std::int64_t>(8.0 * batch * load.mean_solve_us);

    const int third = std::max(arrivals / 3, 1);
    double at_us = 0.0;
    std::uint64_t fresh_salt = 0;
    for (int i = 0; i < arrivals; ++i) {
        const bool spike = i >= third && i < 2 * third;
        at_us += spike ? interval_spike_us : interval_warm_us;
        if (spike && load.spike_start_us == 0)
            load.spike_start_us = static_cast<std::int64_t>(at_us);
        if (spike)
            load.spike_end_us = static_cast<std::int64_t>(at_us);

        Arrival arrival;
        arrival.arrive_rel_us = static_cast<std::int64_t>(at_us);
        arrival.deadline_rel_us = arrival.arrive_rel_us + deadline_slack_us;
        for (int j = 0; j < batch; ++j) {
            const int k = i * batch + j;
            core::ScheduleRequest request;
            if (spike && k % 7 == 3) {
                // Heavy chain: a guaranteed slow solve. Lowest priority, so
                // the priority-aware queue sheds these first.
                request = core::ScheduleRequest{make_heavy_chain(heavy_tasks, 2000 + fresh_salt++),
                                                kSoakBudget, core::Strategy::herad};
                request.priority = -1;
            } else if (k % 3 == 2) {
                // Refit: a warm-pool chain re-requested at a varying larger
                // budget -- rarely an exact cache hit, but always
                // stale-servable from the warm {2,2} entry once brownout
                // engages.
                const core::Resources budget{4 + (k / 2) % 30, 4 + (k / 3) % 30};
                request = core::ScheduleRequest{warm_chains[static_cast<std::size_t>(k)
                                                            % warm_chains.size()],
                                                budget, core::Strategy::herad};
                request.priority = 1;
            } else {
                request = core::ScheduleRequest{sim::generate_chain(generator, rng), kSoakBudget,
                                                core::Strategy::herad};
            }
            arrival.requests.push_back(std::move(request));
        }
        load.arrivals.push_back(std::move(arrival));
    }
    return load;
}

SoakOutcome run_soak(const Workload& load, bool protected_mode, int workers, int threads,
                     SoakTally& tally)
{
    svc::ServiceConfig config;
    config.workers = workers;
    if (protected_mode) {
        config.admission = svc::AdmissionConfig{16, svc::ShedPolicy::priority_aware};
        config.breaker = svc::BreakerConfig{3, 30'000'000, 1, 1}; // 30ms cooldown
        config.slow_solve_ns = load.slow_solve_ns;
        config.brownout = true;
        config.brownout_watermark = 0.5;
    }
    svc::SolverService service{config};
    for (const core::ScheduleRequest& request : load.warm)
        (void)service.solve(request);

    const std::int64_t t0_ns = steady_now_ns();
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        submitters.emplace_back([&] {
            for (;;) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= load.arrivals.size())
                    return;
                const Arrival& arrival = load.arrivals[i];
                const std::int64_t due_ns = t0_ns + arrival.arrive_rel_us * 1000;
                const std::int64_t now = steady_now_ns();
                if (now < due_ns)
                    std::this_thread::sleep_for(nanoseconds{due_ns - now});

                std::vector<core::ScheduleRequest> batch = arrival.requests;
                if (protected_mode) {
                    for (core::ScheduleRequest& request : batch)
                        request.deadline_ns = t0_ns + arrival.deadline_rel_us * 1000;
                }
                const std::vector<core::ScheduleResult> results = service.solve_batch(batch);

                const std::int64_t done_rel_us = (steady_now_ns() - t0_ns) / 1000;
                const bool in_time = done_rel_us <= arrival.deadline_rel_us;
                const std::int64_t latency_us = done_rel_us - arrival.arrive_rel_us;
                std::int64_t prev = tally.last_done_rel_us.load(std::memory_order_relaxed);
                while (prev < done_rel_us
                       && !tally.last_done_rel_us.compare_exchange_weak(prev, done_rel_us)) {
                }
                for (const core::ScheduleResult& result : results) {
                    if (result.ok()) {
                        (result.degraded ? tally.ok_degraded : tally.ok_fresh).fetch_add(1);
                        (in_time ? tally.goodput : tally.late).fetch_add(1);
                        tally.latency_sum_us.fetch_add(latency_us);
                        std::int64_t seen = tally.latency_max_us.load(std::memory_order_relaxed);
                        while (seen < latency_us
                               && !tally.latency_max_us.compare_exchange_weak(seen, latency_us)) {
                        }
                    } else if (result.error == core::ScheduleError::rejected) {
                        tally.rejected.fetch_add(1);
                    } else if (result.error == core::ScheduleError::deadline_exceeded) {
                        tally.deadline_shed.fetch_add(1);
                    } else {
                        tally.other_error.fetch_add(1);
                    }
                }
            }
        });
    }
    for (std::thread& submitter : submitters)
        submitter.join();

    SoakOutcome outcome;
    std::uint64_t batch_requests = 0;
    for (const Arrival& arrival : load.arrivals)
        batch_requests += arrival.requests.size();
    outcome.offered = batch_requests;
    outcome.wall_s = static_cast<double>(tally.last_done_rel_us.load()) / 1e6;
    outcome.admission = service.admission_stats();
    outcome.breaker_trips = service.breaker().trips();
    outcome.breaker_transitions = service.breaker().transitions().size();

    const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
    const auto counter = [&](const char* name) -> std::uint64_t {
        const auto it = snapshot.counters.find(name);
        return it == snapshot.counters.end() ? 0u : it->second;
    };
    outcome.ctr_admission_rejected = counter(obs::schema::kSvcAdmissionRejected);
    outcome.ctr_admission_displaced = counter(obs::schema::kSvcAdmissionDisplaced);
    outcome.ctr_breaker_rejected = counter(obs::schema::kSvcBreakerRejected);
    outcome.ctr_deadline = counter(obs::schema::kSvcDeadlineExceeded);
    outcome.ctr_degraded = counter(obs::schema::kSvcDegradedServes);
    outcome.ctr_refinements = counter(obs::schema::kSvcRefinements);

    // Zero-silent-drop audit. Exact invariants:
    //   * every offered request is answered (nothing hangs or vanishes);
    //   * degraded serves and deadline sheds match their counters 1:1;
    //   * every client-visible rejection was counted at the admission door
    //     or the breaker, and every counted shed surfaced to a client as a
    //     rejection or a degraded-stale answer (a shed ticket whose chain
    //     has a compatible cached plan is answered degraded, so the two
    //     tallies bracket the counter sum instead of equalling it).
    outcome.silent_drops = outcome.offered - tally.answered();
    const std::uint64_t shed_counters = outcome.ctr_admission_rejected
                                        + outcome.ctr_admission_displaced
                                        + outcome.ctr_breaker_rejected;
    outcome.audit_ok = outcome.silent_drops == 0
                       && tally.ok_degraded.load() == outcome.ctr_degraded
                       && tally.deadline_shed.load() == outcome.ctr_deadline
                       && tally.rejected.load() <= shed_counters
                       && shed_counters <= tally.rejected.load() + tally.ok_degraded.load();
    return outcome;
}

void report_soak(bench::JsonReport& report, TextTable& table, const char* mode,
                 const SoakTally& tally, const SoakOutcome& outcome)
{
    const std::uint64_t answered_ok = tally.ok_fresh.load() + tally.ok_degraded.load();
    const double goodput_per_s =
        outcome.wall_s > 0.0 ? static_cast<double>(tally.goodput.load()) / outcome.wall_s : 0.0;
    const double mean_latency_ms =
        answered_ok > 0
            ? static_cast<double>(tally.latency_sum_us.load()) / (1e3 * answered_ok)
            : 0.0;

    table.add_row({mode, std::to_string(tally.goodput.load()), fmt(goodput_per_s, 0),
                   std::to_string(tally.late.load()), std::to_string(tally.ok_degraded.load()),
                   std::to_string(tally.rejected.load()),
                   std::to_string(tally.deadline_shed.load()),
                   std::to_string(outcome.breaker_trips), fmt(mean_latency_ms, 1),
                   outcome.audit_ok ? "yes" : "NO"});

    report.add_record()
        .set("scenario", "service_spike")
        .set("mode", mode)
        .set("offered", outcome.offered)
        .set("wall_s", outcome.wall_s)
        .set("goodput", tally.goodput.load())
        .set("goodput_per_s", goodput_per_s)
        .set("ok_fresh", tally.ok_fresh.load())
        .set("ok_late", tally.late.load())
        .set("degraded_serves", tally.ok_degraded.load())
        .set("rejected", tally.rejected.load())
        .set("deadline_shed", tally.deadline_shed.load())
        .set("other_errors", tally.other_error.load())
        .set("mean_latency_ms", mean_latency_ms)
        .set("max_latency_ms", static_cast<double>(tally.latency_max_us.load()) / 1e3)
        .set("admission_rejected", outcome.admission.rejected)
        .set("admission_displaced", outcome.admission.displaced)
        .set("breaker_trips", outcome.breaker_trips)
        .set("breaker_transitions", static_cast<std::uint64_t>(outcome.breaker_transitions))
        .set("refinements", outcome.ctr_refinements)
        .set("silent_drops", outcome.silent_drops)
        .set("shed_audit_ok", outcome.audit_ok);
}

// ---------------------------------------------------------------------------
// Scenario 2: pipeline chaos soak
// ---------------------------------------------------------------------------

struct Frame {
    std::uint64_t seq = 0;
};

void run_pipeline_soak(bench::JsonReport& report, std::uint64_t frames, int task_us)
{
    // Same chain shape as the recovery tests: a stateful source plus four
    // replicable tasks whose degraded optimum keeps the healthy cut.
    constexpr int kTasks = 5;
    std::vector<core::TaskDesc> descs;
    descs.push_back(core::TaskDesc{"t1", 100.0, 120.0, false});
    const double littles[] = {75.0, 75.0, 75.0, 76.0};
    for (int i = 2; i <= kTasks; ++i)
        descs.push_back(core::TaskDesc{"t" + std::to_string(i), 60.0, littles[i - 2], true});
    const core::TaskChain chain{std::move(descs)};

    // The shared solver service is itself protected and saturated by a
    // junk tenant for the whole run: the recovery re-solve must displace
    // junk traffic through the priority-aware admission queue.
    svc::ServiceConfig service_config;
    service_config.admission = svc::AdmissionConfig{4, svc::ShedPolicy::priority_aware};
    svc::SolverService service{service_config};
    rt::ReschedulePolicy policy;
    policy.service = &service;
    rt::Rescheduler rescheduler{chain, core::Resources{1, 3}, policy};

    std::atomic<bool> quit{false};
    std::thread junk{[&] {
        std::uint64_t round = 0;
        while (!quit.load(std::memory_order_acquire)) {
            std::vector<core::ScheduleRequest> requests;
            for (int i = 0; i < 8; ++i) {
                const double jitter = static_cast<double>(round * 8 + i) * 0.125;
                std::vector<core::TaskDesc> junk_tasks;
                for (int t = 1; t <= 6; ++t)
                    junk_tasks.push_back(core::TaskDesc{"j" + std::to_string(t),
                                                        10.0 + jitter + t, 20.0 + jitter + t,
                                                        t != 1});
                requests.push_back(core::ScheduleRequest{core::TaskChain{std::move(junk_tasks)},
                                                         core::Resources{2, 2},
                                                         core::Strategy::twocatac});
            }
            (void)service.solve_batch(requests);
            ++round;
        }
    }};

    rt::TaskSequence<Frame> sequence;
    for (int i = 1; i <= kTasks; ++i)
        sequence.push_back(rt::make_task<Frame>("t" + std::to_string(i), i == 1,
                                                [task_us](Frame&) {
                                                    std::this_thread::sleep_for(
                                                        microseconds{task_us});
                                                }));

    rt::FaultInjector injector;
    injector.add(rt::FaultSpec{rt::FaultKind::kill, frames / 3, 0, 1, 1, milliseconds{0}});

    obs::Sink sink{obs::SinkConfig{true, false, 1, 16}};
    rt::PipelineConfig config;
    config.faults = &injector;
    config.heartbeat_timeout = milliseconds{100};
    config.queue_capacity = 4;
    config.sink = &sink;
    config.overload.enabled = true;
    config.overload.brownout = rt::BrownoutPolicy{0.5, 0.25, 2, 2};
    config.overload.poll = milliseconds{1};

    // Bursty-stall drain: every 16th frame the consumer hiccups for 8 task
    // periods, backing the final queue up past the high watermark.
    const auto t0 = steady_clock::now();
    const rt::RecoveryReport recovery = rt::run_with_recovery<Frame>(
        sequence, rescheduler, frames, config, [&](Frame& frame) {
            if (frame.seq % 16 == 15)
                std::this_thread::sleep_for(microseconds{8 * task_us});
        });
    const double wall_s = std::chrono::duration<double>(steady_clock::now() - t0).count();
    quit.store(true, std::memory_order_release);
    junk.join();

    const rt::RunResult& total = recovery.total;
    const std::uint64_t sink_shed =
        sink.metrics().counter(obs::schema::kFramesShed).value();
    const bool accounted = total.stream_end == frames
                           && total.frames + total.frames_dropped == total.stream_end
                           && total.frames_shed <= total.frames_dropped
                           && sink_shed == total.frames_shed;
    const svc::AdmissionStats admission = service.admission_stats();

    std::printf("pipeline soak   : %llu/%llu frames in %.2fs (%.0f fps), %zu worker "
                "loss(es), %d recover%s\n",
                static_cast<unsigned long long>(total.frames),
                static_cast<unsigned long long>(frames), wall_s,
                wall_s > 0.0 ? static_cast<double>(total.frames) / wall_s : 0.0,
                total.losses.size(), recovery.recoveries,
                recovery.recoveries == 1 ? "y" : "ies");
    std::printf("frames shed     : %llu (dropped %llu, brownout entries %llu), "
                "accounting %s\n",
                static_cast<unsigned long long>(total.frames_shed),
                static_cast<unsigned long long>(total.frames_dropped),
                static_cast<unsigned long long>(total.brownout_entries),
                accounted ? "exact" : "BROKEN");
    std::printf("junk tenant     : %llu admission sheds while saturating the service\n\n",
                static_cast<unsigned long long>(admission.rejected + admission.displaced));

    report.add_record()
        .set("scenario", "pipeline_chaos")
        .set("frames", total.frames)
        .set("frames_requested", frames)
        .set("wall_s", wall_s)
        .set("fps", wall_s > 0.0 ? static_cast<double>(total.frames) / wall_s : 0.0)
        .set("frames_dropped", total.frames_dropped)
        .set("frames_shed", total.frames_shed)
        .set("brownout_entries", total.brownout_entries)
        .set("worker_losses", static_cast<std::uint64_t>(total.losses.size()))
        .set("recoveries", recovery.recoveries)
        .set("completed", recovery.completed)
        .set("recovery_latency_ms", recovery.recovery_latency_seconds * 1e3)
        .set("junk_admission_sheds", admission.rejected + admission.displaced)
        .set("accounting_exact", accounted);
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const int arrivals = static_cast<int>(args.get_int("arrivals", 120));
    const int batch = static_cast<int>(args.get_int("batch", 4));
    const int threads = static_cast<int>(args.get_int("threads", 8));
    const int workers = static_cast<int>(args.get_int("workers", 2));
    const int tasks = static_cast<int>(args.get_int("tasks", 24));
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 160));
    const int task_us = static_cast<int>(args.get_int("task-us", 250));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x50a6));
    const std::string json_path = args.get("json", "");

    bench::JsonReport report{"ext_overload_soak"};
    report.param("arrivals", arrivals)
        .param("batch", batch)
        .param("threads", threads)
        .param("workers", workers)
        .param("tasks", tasks)
        .param("frames", frames)
        .param("task_us", task_us);

    std::printf("== Extension: overload chaos soak ==\n\n");

    const Workload load = build_workload(arrivals, batch, tasks, workers, seed);
    std::printf("calibration     : normal solve %.0f us, heavy %.0f us, "
                "breaker threshold %.0f us\n",
                load.mean_solve_us, load.heavy_solve_us,
                static_cast<double>(load.slow_solve_ns) / 1e3);
    std::printf("schedule        : %d batches x %d, spike (4x rate) from %.1f ms to %.1f ms\n\n",
                arrivals, batch, static_cast<double>(load.spike_start_us) / 1e3,
                static_cast<double>(load.spike_end_us) / 1e3);

    TextTable table({"mode", "goodput", "goodput/s", "late", "degraded", "rejected",
                     "deadline-shed", "breaker trips", "mean lat (ms)", "audit"});

    SoakTally unprotected_tally;
    const SoakOutcome unprotected =
        run_soak(load, /*protected_mode=*/false, workers, threads, unprotected_tally);
    report_soak(report, table, "unprotected", unprotected_tally, unprotected);

    SoakTally protected_tally;
    const SoakOutcome protected_run =
        run_soak(load, /*protected_mode=*/true, workers, threads, protected_tally);
    report_soak(report, table, "protected", protected_tally, protected_run);

    std::printf("%s\n", table.str().c_str());

    const double ratio = unprotected_tally.goodput.load() > 0
                             ? static_cast<double>(protected_tally.goodput.load())
                                   / static_cast<double>(unprotected_tally.goodput.load())
                             : static_cast<double>(protected_tally.goodput.load());
    std::printf("goodput ratio   : %.2fx (protected vs unprotected; > 1 expected under the "
                "spike)\n\n",
                ratio);
    report.add_record()
        .set("scenario", "service_spike_summary")
        .set("goodput_ratio", ratio)
        .set("both_audits_ok", unprotected.audit_ok && protected_run.audit_ok);

    run_pipeline_soak(report, frames, task_us);

    if (!json_path.empty()) {
        if (report.write_file(json_path))
            std::printf("wrote %s\n", json_path.c_str());
        else
            std::printf("FAILED to write %s\n", json_path.c_str());
    }
    return 0;
}
