// Reproduces Fig. 6: the qualitative strategy summary, computed from the
// actual experiments instead of transcribed by hand:
//   * schedule optimality: % of minimal periods over the simulation grid,
//   * number of cores: average extra cores vs HeRAD,
//   * execution time: measured times on a reference instance + complexity,
//   * real throughput distance to the best theoretical (from the DES runs).
//
// Flags: --chains=N per scenario (default 200).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "sim/timing.hpp"
#include "support/campaign.hpp"
#include "support/dvbs2_eval.hpp"

#include <cstdio>
#include <map>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 200));

    // Optimality + extra cores over the 9-scenario simulation grid.
    std::map<core::Strategy, double> pct_optimal;
    std::map<core::Strategy, double> extra_cores;
    int scenarios = 0;
    for (const auto& scenario : bench::paper_scenarios(chains, 0xf19)) {
        const auto result = bench::run_scenario(scenario);
        double herad_big = 0.0;
        double herad_little = 0.0;
        for (const auto& usage : result.herad_usages) {
            herad_big += usage.big;
            herad_little += usage.little;
        }
        herad_big /= static_cast<double>(result.herad_usages.size());
        herad_little /= static_cast<double>(result.herad_usages.size());
        for (const auto& [strategy, outcome] : result.outcomes) {
            pct_optimal[strategy] += outcome.summary.pct_optimal;
            extra_cores[strategy] +=
                (outcome.avg_big_used - herad_big) + (outcome.avg_little_used - herad_little);
        }
        ++scenarios;
    }

    // Execution time on the paper's base instance (20 tasks, R = (10, 10)).
    std::map<core::Strategy, double> exec_time;
    {
        Rng rng{0xf19};
        sim::GeneratorConfig generator;
        for (int r = 0; r < 20; ++r) {
            const auto chain = sim::generate_chain(generator, rng);
            for (const core::Strategy strategy : core::kAllStrategies)
                exec_time[strategy] += sim::time_once_us(
                    [&] {
                        (void)core::schedule(core::ScheduleRequest{chain, {10, 10}, strategy});
                    });
        }
    }

    // Real-vs-best-theoretical throughput over the four platform cases.
    std::map<core::Strategy, double> throughput_distance;
    int cases = 0;
    for (const auto& platform_case : bench::paper_platform_cases()) {
        const auto evaluations =
            bench::evaluate_platform(*platform_case.profile, platform_case.resources);
        double best_expected = 0.0;
        for (const auto& eval : evaluations)
            best_expected = std::max(best_expected, eval.expected_mbps);
        for (const auto& eval : evaluations)
            if (!eval.solution.empty())
                throughput_distance[eval.strategy] +=
                    (best_expected - eval.real_mbps) / best_expected;
        ++cases;
    }

    const std::map<core::Strategy, const char*> complexity = {
        {core::Strategy::herad, "O(n^2 b l (b+l))"},
        {core::Strategy::twocatac, "O(2^n log(w(b+l)))"},
        {core::Strategy::fertac, "O(n log(w(b+l)) + n)"},
        {core::Strategy::otac_big, "O(n log(w b))"},
        {core::Strategy::otac_little, "O(n log(w l))"},
    };

    std::printf("== Fig. 6: strategy summary (computed from this repository's runs) ==\n\n");
    TextTable table({"Strategy", "Optimality (avg % min periods)", "Extra cores vs HeRAD",
                     "Time on 20 tasks (us)", "Complexity", "Dist. to best real Mb/s"});
    for (const core::Strategy strategy : core::kAllStrategies) {
        table.add_row({core::to_string(strategy),
                       fmt_pct(pct_optimal[strategy] / scenarios, 1),
                       fmt(extra_cores[strategy] / scenarios, 2),
                       fmt(exec_time[strategy] / 20.0, 1), complexity.at(strategy),
                       fmt_pct(throughput_distance[strategy] / cases, 1)});
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
