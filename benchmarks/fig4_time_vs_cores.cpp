// Reproduces Fig. 4: average strategy execution times (microseconds) as a
// function of the number of resources, for fixed numbers of tasks (20 and
// 60), with R = (20i, 20i), i in [1, 8], and SR in {0.2, 0.5, 0.8}.
//
// Defaults reduced for small machines (--reps=5, HeRAD capped at 120 cores
// per type for 60 tasks); pass --full for paper scale.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "sim/timing.hpp"

#include <cstdio>
#include <vector>

namespace {

using namespace amp;

double mean_time_us(core::Strategy strategy, int tasks, core::Resources resources, double sr,
                    int reps, std::uint64_t seed)
{
    Rng rng{seed ^ static_cast<std::uint64_t>(tasks * 977 + resources.big)};
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    generator.stateless_ratio = sr;
    double total = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto chain = sim::generate_chain(generator, rng);
        total += sim::time_once_us(
            [&] { (void)core::schedule(strategy, chain, resources); });
    }
    return total / reps;
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const bool full = args.get_bool("full");
    const int reps = static_cast<int>(args.get_int("reps", full ? 50 : 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf46));
    const int max_cores = static_cast<int>(args.get_int("max-cores", 160));

    for (const int tasks : {20, 60}) {
        std::printf("== Fig. 4%s: strategy times (us) vs #cores, %d tasks, %d reps ==\n\n",
                    tasks == 20 ? "a" : "b", tasks, reps);
        for (const double sr : {0.2, 0.5, 0.8}) {
            std::printf("SR = %.1f\n", sr);
            TextTable table({"cores/type", "OTAC (B)", "FERTAC", "2CATAC", "HeRAD"});
            for (int cores = 20; cores <= max_cores; cores += 20) {
                const core::Resources resources{cores, cores};
                std::vector<std::string> row{std::to_string(cores)};
                row.push_back(fmt(
                    mean_time_us(core::Strategy::otac_big, tasks, resources, sr, reps, seed), 1));
                row.push_back(fmt(
                    mean_time_us(core::Strategy::fertac, tasks, resources, sr, reps, seed), 1));
                row.push_back(fmt(
                    mean_time_us(core::Strategy::twocatac, tasks, resources, sr, reps, seed), 1));
                const bool herad_feasible = full || tasks <= 20 || cores <= 120;
                row.push_back(herad_feasible
                                  ? fmt(mean_time_us(core::Strategy::herad, tasks, resources, sr,
                                                     reps, seed),
                                        1)
                                  : std::string{"(--full)"});
                table.add_row(std::move(row));
            }
            std::printf("%s\n", table.str().c_str());
        }
    }
    return 0;
}
