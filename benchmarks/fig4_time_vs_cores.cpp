// Reproduces Fig. 4: average strategy execution times (microseconds) as a
// function of the number of resources, for fixed numbers of tasks (20 and
// 60), with R = (20i, 20i), i in [1, 8], and SR in {0.2, 0.5, 0.8}.
//
// Defaults reduced for small machines (--reps=5, HeRAD capped at 120 cores
// per type for 60 tasks); pass --full for paper scale.
//
// Like fig3, the whole sweep goes to a svc::SolverService as one batch with
// the cache disabled: ScheduleResult::solve_ns supplies the per-solve
// timings and --workers spreads the grid over solver threads.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "svc/solver_service.hpp"

#include <cstdio>
#include <vector>

namespace {

using namespace amp;

struct GridPoint {
    std::size_t first = 0;
    int reps = 0;
};

GridPoint add_point(std::vector<core::ScheduleRequest>& requests, core::Strategy strategy,
                    int tasks, core::Resources resources, double sr, int reps,
                    std::uint64_t seed)
{
    Rng rng{seed ^ static_cast<std::uint64_t>(tasks * 977 + resources.big)};
    sim::GeneratorConfig generator;
    generator.num_tasks = tasks;
    generator.stateless_ratio = sr;
    GridPoint point{requests.size(), reps};
    for (int r = 0; r < reps; ++r)
        requests.push_back(
            core::ScheduleRequest{sim::generate_chain(generator, rng), resources, strategy});
    return point;
}

double mean_time_us(const std::vector<core::ScheduleResult>& results, const GridPoint& point)
{
    double total_ns = 0.0;
    for (int r = 0; r < point.reps; ++r)
        total_ns += static_cast<double>(results[point.first + static_cast<std::size_t>(r)].solve_ns);
    return total_ns / (1000.0 * point.reps);
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const bool full = args.get_bool("full");
    const int reps = static_cast<int>(args.get_int("reps", full ? 50 : 5));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf46));
    const int max_cores = static_cast<int>(args.get_int("max-cores", 160));
    const int workers = static_cast<int>(args.get_int("workers", 0));

    svc::ServiceConfig config;
    config.workers = workers;
    config.cache_capacity = 0; // timing bench: every solve must be cold
    svc::SolverService service{config};

    std::vector<core::ScheduleRequest> requests;
    std::vector<GridPoint> points;
    for (const int tasks : {20, 60}) {
        for (const double sr : {0.2, 0.5, 0.8}) {
            for (int cores = 20; cores <= max_cores; cores += 20) {
                const core::Resources resources{cores, cores};
                for (const core::Strategy strategy :
                     {core::Strategy::otac_big, core::Strategy::fertac, core::Strategy::twocatac})
                    points.push_back(
                        add_point(requests, strategy, tasks, resources, sr, reps, seed));
                const bool herad_feasible = full || tasks <= 20 || cores <= 120;
                if (herad_feasible)
                    points.push_back(add_point(requests, core::Strategy::herad, tasks, resources,
                                               sr, reps, seed));
            }
        }
    }
    const std::vector<core::ScheduleResult> results = service.solve_batch(requests);

    std::size_t cursor = 0;
    for (const int tasks : {20, 60}) {
        std::printf("== Fig. 4%s: strategy times (us) vs #cores, %d tasks, %d reps, "
                    "%d solver workers ==\n\n",
                    tasks == 20 ? "a" : "b", tasks, reps, service.workers());
        for (const double sr : {0.2, 0.5, 0.8}) {
            std::printf("SR = %.1f\n", sr);
            TextTable table({"cores/type", "OTAC (B)", "FERTAC", "2CATAC", "HeRAD"});
            for (int cores = 20; cores <= max_cores; cores += 20) {
                std::vector<std::string> row{std::to_string(cores)};
                row.push_back(fmt(mean_time_us(results, points[cursor++]), 1));
                row.push_back(fmt(mean_time_us(results, points[cursor++]), 1));
                row.push_back(fmt(mean_time_us(results, points[cursor++]), 1));
                const bool herad_feasible = full || tasks <= 20 || cores <= 120;
                row.push_back(herad_feasible ? fmt(mean_time_us(results, points[cursor++]), 1)
                                             : std::string{"(--full)"});
                table.add_row(std::move(row));
            }
            std::printf("%s\n", table.str().c_str());
        }
    }
    return 0;
}
