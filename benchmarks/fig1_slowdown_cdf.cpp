// Reproduces Fig. 1: cumulative distributions of slowdown ratios relative
// to HeRAD, (a) zoomed into [1, 1.5] for the 3x3 (resources x SR) grid and
// (b) over the full range for R = (10, 10).
//
// Flags: --chains=N (default 1000), --points=N (CDF grid), --seed=S.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/campaign.hpp"

#include <algorithm>
#include <cstdio>

namespace {

void print_cdf_block(const amp::bench::ScenarioResult& result,
                     const std::vector<double>& thresholds)
{
    using namespace amp;
    std::vector<std::string> header{"slowdown"};
    for (const auto& [strategy, outcome] : result.outcomes) {
        (void)outcome;
        header.push_back(core::to_string(strategy));
    }
    TextTable table{header};
    std::vector<std::vector<double>> cdfs;
    for (const auto& [strategy, outcome] : result.outcomes)
        cdfs.push_back(sim::empirical_cdf(outcome.slowdowns, thresholds));
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        std::vector<std::string> row{fmt(thresholds[i], 3)};
        for (const auto& cdf : cdfs)
            row.push_back(fmt(cdf[i], 3));
        table.add_row(std::move(row));
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 1000));
    const int points = static_cast<int>(args.get_int("points", 11));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xbe9c));

    std::printf("== Fig. 1a: CDF of slowdown ratios vs HeRAD, zoom [1, 1.5] ==\n\n");
    const auto zoom = sim::linspace(1.0, 1.5, points);
    for (const auto& scenario : bench::paper_scenarios(chains, seed)) {
        const auto result = bench::run_scenario(scenario);
        std::printf("R = (%dB, %dL), SR = %.1f\n", scenario.resources.big,
                    scenario.resources.little, scenario.stateless_ratio);
        print_cdf_block(result, zoom);
    }

    std::printf("== Fig. 1b: full slowdown range for R = (10B, 10L) ==\n\n");
    for (const double sr : {0.2, 0.5, 0.8}) {
        bench::ScenarioConfig scenario;
        scenario.resources = {10, 10};
        scenario.stateless_ratio = sr;
        scenario.chains = chains;
        scenario.seed = seed;
        const auto result = bench::run_scenario(scenario);
        double max_ratio = 1.0;
        for (const auto& [strategy, outcome] : result.outcomes)
            max_ratio = std::max(max_ratio, outcome.summary.maximum);
        std::printf("SR = %.1f (max observed slowdown %.2f)\n", sr, max_ratio);
        print_cdf_block(result, sim::linspace(1.0, max_ratio, points));
    }
    return 0;
}
