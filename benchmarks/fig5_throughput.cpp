// Reproduces Fig. 5: achieved information throughput (Mb/s) of the DVB-S2
// receiver per platform, resource configuration and strategy, rendered as a
// text bar chart from the same evaluation pipeline as Table II. Passing
// --json=<file> also writes an amp-bench-v1 report (one record per
// platform/strategy pair; see docs/OBSERVABILITY.md).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/bench_json.hpp"
#include "support/dvbs2_eval.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const std::string json_path = args.get("json", "");
    bench::JsonReport report{"fig5_throughput"};

    std::printf("== Fig. 5: achieved throughput on the DVB-S2 receiver ==\n");
    std::printf("('real' bars from the discrete-event pipeline simulation; 'exp' marks the "
                "schedule's expected value)\n\n");

    for (const auto& platform_case : bench::paper_platform_cases()) {
        const auto& profile = *platform_case.profile;
        std::printf("%s, R = (%dB, %dL)\n", profile.name.c_str(), platform_case.resources.big,
                    platform_case.resources.little);
        const auto evaluations = bench::evaluate_platform(profile, platform_case.resources);
        double max_mbps = 1.0;
        for (const auto& eval : evaluations)
            max_mbps = std::max(max_mbps, eval.expected_mbps);
        for (const auto& eval : evaluations) {
            const int width = 50;
            const int real = static_cast<int>(eval.real_mbps / max_mbps * width + 0.5);
            const int expected = static_cast<int>(eval.expected_mbps / max_mbps * width + 0.5);
            std::string bar(static_cast<std::size_t>(width + 2), ' ');
            for (int i = 0; i < real && i < width; ++i)
                bar[static_cast<std::size_t>(i)] = '#';
            if (expected >= 0 && expected <= width + 1)
                bar[static_cast<std::size_t>(expected)] = '|';
            std::printf("  %-9s [%s] real %5.1f Mb/s, exp %5.1f Mb/s\n",
                        core::to_string(eval.strategy), bar.c_str(), eval.real_mbps,
                        eval.expected_mbps);
            report.add_record()
                .set("platform", eval.platform)
                .set("big", eval.resources.big)
                .set("little", eval.resources.little)
                .set("strategy", core::to_key(eval.strategy))
                .set("stages", eval.stage_count)
                .set("big_used", eval.big_used)
                .set("little_used", eval.little_used)
                .set("expected_period_us", eval.expected_period_us)
                .set("expected_fps", eval.expected_fps)
                .set("expected_mbps", eval.expected_mbps)
                .set("real_fps", eval.real_fps)
                .set("real_mbps", eval.real_mbps);
        }
        std::printf("\n");
    }
    if (!json_path.empty()) {
        if (!report.write_file(json_path)) {
            std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("json report: %s\n", json_path.c_str());
    }
    return 0;
}
