// Reproduces Fig. 5: achieved information throughput (Mb/s) of the DVB-S2
// receiver per platform, resource configuration and strategy, rendered as a
// text bar chart from the same evaluation pipeline as Table II.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/dvbs2_eval.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    (void)args;

    std::printf("== Fig. 5: achieved throughput on the DVB-S2 receiver ==\n");
    std::printf("('real' bars from the discrete-event pipeline simulation; 'exp' marks the "
                "schedule's expected value)\n\n");

    for (const auto& platform_case : bench::paper_platform_cases()) {
        const auto& profile = *platform_case.profile;
        std::printf("%s, R = (%dB, %dL)\n", profile.name.c_str(), platform_case.resources.big,
                    platform_case.resources.little);
        const auto evaluations = bench::evaluate_platform(profile, platform_case.resources);
        double max_mbps = 1.0;
        for (const auto& eval : evaluations)
            max_mbps = std::max(max_mbps, eval.expected_mbps);
        for (const auto& eval : evaluations) {
            const int width = 50;
            const int real = static_cast<int>(eval.real_mbps / max_mbps * width + 0.5);
            const int expected = static_cast<int>(eval.expected_mbps / max_mbps * width + 0.5);
            std::string bar(static_cast<std::size_t>(width + 2), ' ');
            for (int i = 0; i < real && i < width; ++i)
                bar[static_cast<std::size_t>(i)] = '#';
            if (expected >= 0 && expected <= width + 1)
                bar[static_cast<std::size_t>(expected)] = '|';
            std::printf("  %-9s [%s] real %5.1f Mb/s, exp %5.1f Mb/s\n",
                        core::to_string(eval.strategy), bar.c_str(), eval.real_mbps,
                        eval.expected_mbps);
        }
        std::printf("\n");
    }
    return 0;
}
