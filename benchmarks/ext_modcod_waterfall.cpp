// Extension bench: mini BER/FER waterfall of the FEC + modem stack for
// every supported MODCOD -- evidence that the substrate is a functioning
// communication system, not a latency mock. For each MODCOD, sweeps Es/N0
// around its working point and reports FER and mean LDPC iterations (the
// early-stop criterion makes iterations fall as SNR rises, which is what
// shapes the LDPC task's latency in the paper's profile).
//
// Flags: --frames=N per point (default 4).

#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dvbs2/common/interleaver.hpp"
#include "dvbs2/common/psk.hpp"
#include "dvbs2/modcod.hpp"
#include "dvbs2/profiles.hpp"
#include "svc/solver_service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace {

/// One (MODCOD, SNR) waterfall point with its observed decoder effort.
struct WaterfallPoint {
    std::string modcod;
    double snr_db = 0.0;
    double avg_iterations = 0.0;
};

/// The mac-studio receiver chain with the LDPC decode task's weight scaled
/// by `multiplier` (the early-stop criterion makes decode latency track the
/// observed iteration count).
amp::core::TaskChain scaled_chain(const amp::core::TaskChain& base, double multiplier)
{
    std::vector<amp::core::TaskDesc> tasks;
    tasks.reserve(static_cast<std::size_t>(base.size()));
    for (int t = 1; t <= base.size(); ++t) {
        amp::core::TaskDesc desc = base.task(t);
        if (desc.name == "Decoder LDPC - decode SIHO") {
            desc.w_big *= multiplier;
            desc.w_little *= multiplier;
        }
        tasks.push_back(std::move(desc));
    }
    return amp::core::TaskChain{std::move(tasks)};
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int frames = static_cast<int>(args.get_int("frames", 4));
    const int workers = static_cast<int>(args.get_int("workers", 0));
    std::vector<WaterfallPoint> points;

    std::printf("== Extension: FEC/modem waterfall per MODCOD (%d frames per point) ==\n\n",
                frames);

    for (const auto& modcod : dvbs2::supported_modcods()) {
        const dvbs2::ConstellationModem modem{modcod.modulation};
        const dvbs2::BlockInterleaver interleaver{modem.bits()};
        const double anchor_db = modcod.modulation == dvbs2::Modulation::qpsk ? 6.0
            : modcod.modulation == dvbs2::Modulation::psk8                    ? 10.0
                                                                              : 13.0;
        std::printf("%s (efficiency %.2f bit/symbol)\n", modcod.name.c_str(),
                    modcod.efficiency());
        TextTable table({"Es/N0 (dB)", "FER", "BER", "avg LDPC iters"});
        for (const double delta : {-2.0, 0.0, 2.0, 4.0}) {
            const double snr_db = anchor_db + delta;
            const auto sigma2 = static_cast<float>(std::pow(10.0, -snr_db / 10.0));
            const float per_component = std::sqrt(sigma2 / 2.0F);
            Rng rng{0xfa11 ^ static_cast<std::uint64_t>(modcod.id * 1000 + snr_db * 10)};

            int frame_errors = 0;
            long long bit_errors = 0;
            long long bits = 0;
            double iterations = 0.0;
            for (int f = 0; f < frames; ++f) {
                std::vector<std::uint8_t> payload(static_cast<std::size_t>(modcod.k_bch()));
                for (auto& b : payload)
                    b = static_cast<std::uint8_t>(rng() & 1u);
                const auto coded = modcod.ldpc->encode(modcod.bch->encode(payload));
                auto symbols = modem.modulate(interleaver.interleave(coded));
                for (auto& s : symbols)
                    s += std::complex<float>{per_component * static_cast<float>(rng.normal()),
                                             per_component * static_cast<float>(rng.normal())};
                const auto llrs =
                    interleaver.deinterleave(modem.demodulate(symbols, sigma2));
                const auto decoded = modcod.ldpc->decode(llrs);
                iterations += decoded.iterations;
                long long errors = 0;
                for (int i = 0; i < modcod.k_bch(); ++i)
                    errors += decoded.bits[static_cast<std::size_t>(i)]
                        != payload[static_cast<std::size_t>(i)];
                bit_errors += errors;
                bits += modcod.k_bch();
                frame_errors += errors != 0 ? 1 : 0;
            }
            table.add_row({fmt(snr_db, 1), fmt(static_cast<double>(frame_errors) / frames, 2),
                           bit_errors == 0 ? "0"
                                           : fmt(static_cast<double>(bit_errors)
                                                     / static_cast<double>(bits),
                                                 6),
                           fmt(iterations / frames, 1)});
            points.push_back({modcod.name, snr_db, iterations / frames});
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("Expected shape: FER collapses to 0 within ~2 dB of the anchor, and the\n"
                "early-stopped LDPC iteration count falls towards 1-2 as SNR rises.\n\n");

    // Schedule the whole waterfall as one solver-service batch: each
    // (MODCOD, SNR) point becomes a receiver chain whose LDPC weight is
    // scaled by the observed iteration count (relative to the best-SNR
    // point of its MODCOD), and HeRAD/FERTAC solve all points in parallel.
    // Points with identical iteration counts dedupe through the cache.
    const auto& profile = dvbs2::mac_studio_profile();
    const core::TaskChain base = dvbs2::profile_chain(profile);
    const core::Resources machine = profile.cores_half;

    std::vector<double> multipliers;
    for (const WaterfallPoint& point : points) {
        double best_iters = point.avg_iterations;
        for (const WaterfallPoint& other : points)
            if (other.modcod == point.modcod && other.avg_iterations > 0.0)
                best_iters = std::min(best_iters, other.avg_iterations);
        multipliers.push_back(best_iters > 0.0 ? point.avg_iterations / best_iters : 1.0);
    }

    svc::ServiceConfig service_config;
    service_config.workers = workers;
    svc::SolverService service{service_config};
    std::vector<core::ScheduleRequest> requests;
    for (const double multiplier : multipliers) {
        const core::TaskChain chain = scaled_chain(base, multiplier);
        requests.push_back(core::ScheduleRequest{chain, machine, core::Strategy::herad});
        requests.push_back(core::ScheduleRequest{chain, machine, core::Strategy::fertac});
    }
    const std::vector<core::ScheduleResult> solved = service.solve_batch(requests);

    std::printf("== Schedules across the waterfall (mac-studio, R = (%d, %d), "
                "%d solver workers) ==\n\n",
                machine.big, machine.little, service.workers());
    TextTable schedule_table({"MODCOD", "Es/N0 (dB)", "LDPC scale", "HeRAD period (us)",
                              "FERTAC period (us)", "cached"});
    for (std::size_t p = 0; p < points.size(); ++p) {
        const core::ScheduleResult& herad_result = solved[2 * p];
        const core::ScheduleResult& fertac_result = solved[2 * p + 1];
        const core::TaskChain chain = scaled_chain(base, multipliers[p]);
        schedule_table.add_row(
            {points[p].modcod, fmt(points[p].snr_db, 1), fmt(multipliers[p], 2),
             herad_result.ok() ? fmt(herad_result.solution.period(chain), 1) : "-",
             fertac_result.ok() ? fmt(fertac_result.solution.period(chain), 1) : "-",
             herad_result.cache_hit || fertac_result.cache_hit ? "yes" : "no"});
    }
    std::printf("%s", schedule_table.str().c_str());
    const auto cache = service.cache_stats();
    std::printf("\nSolver cache: %llu hits / %llu misses (duplicate iteration counts\n"
                "collapse to the same chain fingerprint).\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
    return 0;
}
