// Extension bench: mini BER/FER waterfall of the FEC + modem stack for
// every supported MODCOD -- evidence that the substrate is a functioning
// communication system, not a latency mock. For each MODCOD, sweeps Es/N0
// around its working point and reports FER and mean LDPC iterations (the
// early-stop criterion makes iterations fall as SNR rises, which is what
// shapes the LDPC task's latency in the paper's profile).
//
// Flags: --frames=N per point (default 4).

#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dvbs2/common/interleaver.hpp"
#include "dvbs2/common/psk.hpp"
#include "dvbs2/modcod.hpp"

#include <cmath>
#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int frames = static_cast<int>(args.get_int("frames", 4));

    std::printf("== Extension: FEC/modem waterfall per MODCOD (%d frames per point) ==\n\n",
                frames);

    for (const auto& modcod : dvbs2::supported_modcods()) {
        const dvbs2::ConstellationModem modem{modcod.modulation};
        const dvbs2::BlockInterleaver interleaver{modem.bits()};
        const double anchor_db = modcod.modulation == dvbs2::Modulation::qpsk ? 6.0
            : modcod.modulation == dvbs2::Modulation::psk8                    ? 10.0
                                                                              : 13.0;
        std::printf("%s (efficiency %.2f bit/symbol)\n", modcod.name.c_str(),
                    modcod.efficiency());
        TextTable table({"Es/N0 (dB)", "FER", "BER", "avg LDPC iters"});
        for (const double delta : {-2.0, 0.0, 2.0, 4.0}) {
            const double snr_db = anchor_db + delta;
            const auto sigma2 = static_cast<float>(std::pow(10.0, -snr_db / 10.0));
            const float per_component = std::sqrt(sigma2 / 2.0F);
            Rng rng{0xfa11 ^ static_cast<std::uint64_t>(modcod.id * 1000 + snr_db * 10)};

            int frame_errors = 0;
            long long bit_errors = 0;
            long long bits = 0;
            double iterations = 0.0;
            for (int f = 0; f < frames; ++f) {
                std::vector<std::uint8_t> payload(static_cast<std::size_t>(modcod.k_bch()));
                for (auto& b : payload)
                    b = static_cast<std::uint8_t>(rng() & 1u);
                const auto coded = modcod.ldpc->encode(modcod.bch->encode(payload));
                auto symbols = modem.modulate(interleaver.interleave(coded));
                for (auto& s : symbols)
                    s += std::complex<float>{per_component * static_cast<float>(rng.normal()),
                                             per_component * static_cast<float>(rng.normal())};
                const auto llrs =
                    interleaver.deinterleave(modem.demodulate(symbols, sigma2));
                const auto decoded = modcod.ldpc->decode(llrs);
                iterations += decoded.iterations;
                long long errors = 0;
                for (int i = 0; i < modcod.k_bch(); ++i)
                    errors += decoded.bits[static_cast<std::size_t>(i)]
                        != payload[static_cast<std::size_t>(i)];
                bit_errors += errors;
                bits += modcod.k_bch();
                frame_errors += errors != 0 ? 1 : 0;
            }
            table.add_row({fmt(snr_db, 1), fmt(static_cast<double>(frame_errors) / frames, 2),
                           bit_errors == 0 ? "0"
                                           : fmt(static_cast<double>(bit_errors)
                                                     / static_cast<double>(bits),
                                                 6),
                           fmt(iterations / frames, 1)});
        }
        std::printf("%s\n", table.str().c_str());
    }
    std::printf("Expected shape: FER collapses to 0 within ~2 dB of the anchor, and the\n"
                "early-stopped LDPC iteration count falls towards 1-2 as SNR rises.\n");
    return 0;
}
