// Extension bench: one fused TX+RX split DAG plan vs two independent linear
// pipelines on the same core budget.
//
// The workload is dvbs2::tx_rx_split_workload -- a full-duplex modem whose
// front end (source + radio) fans out into a TX encode branch and the
// profiled RX decode branch, joining at a sink/monitor branch. The baseline
// runs the two directions as separate linear chains (each duplicating the
// front end and the sink) with the cores statically partitioned between
// them -- the strongest such baseline: every split is tried and the one
// maximizing the paired rate is kept. The DAG plan instead shares one front
// end and lets svc::schedule_graph water-fill the whole budget across the
// branches, so an imbalanced TX/RX load is rebalanced core by core instead
// of being locked behind a partition.
//
// The paired rate of the two-pipeline baseline is min(fps_tx, fps_rx): a
// full-duplex modem is gated by its slower direction. Reported per budget:
// the analytic model period (Solution::period / ExecutionPlan::period_us)
// and the dsim throughput under the default overhead model.
//
// Note the baseline is an *idealized upper bound*: it duplicates the radio
// front end and the sink (one per direction), which a single-antenna modem
// cannot actually do. The interesting readout is therefore twofold: where
// the fused plan closes the gap, and how many cores it needs to do so --
// water-filling stops granting cores once the bottleneck branch cannot
// improve, so the DAG typically matches the paired rate with cores left
// over, while on starved budgets its one-core-per-branch floor (nearly idle
// front/sink branches still own a core) lets the static split win.
//
// --json=<file> writes an amp-bench-v1 report; CI uploads it as
// BENCH_ext_dag.json (record keys: big, little, split_big_tx, split_little_tx,
// split_fps_model, fused_fps_model, model_speedup, split_fps_sim,
// fused_fps_sim, sim_speedup, fused_cores, solves).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "dsim/simulator.hpp"
#include "dvbs2/graph_workloads.hpp"
#include "dvbs2/profiles.hpp"
#include "support/bench_json.hpp"
#include "svc/graph_schedule.hpp"

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace {

using namespace amp;

/// The linear single-direction chain: the shared front and sink branches
/// plus one middle branch (TX or RX) of the split workload.
core::TaskChain direction_chain(const dvbs2::GraphWorkload& workload, int middle_branch)
{
    const plan::GraphShape& shape = workload.shape;
    std::vector<core::TaskDesc> tasks;
    for (const int b : {shape.source_branch(), middle_branch, shape.sink_branch()})
        for (int i = shape.branches[static_cast<std::size_t>(b)].first;
             i <= shape.branches[static_cast<std::size_t>(b)].last; ++i)
            tasks.push_back(workload.chain.task(i));
    return core::TaskChain{std::move(tasks)};
}

struct SplitBaseline {
    bool feasible = false;
    core::Resources tx_budget;
    double period_us = std::numeric_limits<double>::infinity(); ///< max direction period
    core::Solution tx_solution;
    core::Solution rx_solution;
};

/// Best static partition of (big, little) between the TX and RX chains:
/// both directions must admit a schedule and the paired rate (min fps ==
/// 1 / max period) is maximized.
SplitBaseline best_split(const core::TaskChain& tx, const core::TaskChain& rx,
                         core::Resources budget, svc::SolverService& service)
{
    SplitBaseline best;
    for (int big_tx = 0; big_tx <= budget.big; ++big_tx) {
        for (int little_tx = 0; little_tx <= budget.little; ++little_tx) {
            const core::Resources tx_budget{big_tx, little_tx};
            const core::Resources rx_budget{budget.big - big_tx,
                                            budget.little - little_tx};
            if (tx_budget.big + tx_budget.little == 0
                || rx_budget.big + rx_budget.little == 0)
                continue;
            const core::ScheduleResult tx_result =
                service.solve(core::ScheduleRequest{tx, tx_budget, core::Strategy::herad});
            if (!tx_result.ok() || tx_result.solution.empty())
                continue;
            const core::ScheduleResult rx_result =
                service.solve(core::ScheduleRequest{rx, rx_budget, core::Strategy::herad});
            if (!rx_result.ok() || rx_result.solution.empty())
                continue;
            const double period = std::max(tx_result.solution.period(tx),
                                           rx_result.solution.period(rx));
            if (period < best.period_us) {
                best.feasible = true;
                best.tx_budget = tx_budget;
                best.period_us = period;
                best.tx_solution = tx_result.solution;
                best.rx_solution = rx_result.solution;
            }
        }
    }
    return best;
}

} // namespace

int main(int argc, char** argv)
{
    const ArgParse args(argc, argv);
    const auto frames = static_cast<std::uint64_t>(args.get_int("frames", 20000));
    const double encode_ratio = args.get_double("encode-ratio", 0.3);
    const dvbs2::PlatformProfile profile = args.has("x7ti") ? dvbs2::x7ti_profile()
                                                            : dvbs2::mac_studio_profile();

    const dvbs2::GraphWorkload workload =
        dvbs2::tx_rx_split_workload(profile, encode_ratio);
    const core::TaskChain tx = direction_chain(workload, 1);
    const core::TaskChain rx = direction_chain(workload, 2);

    std::printf("== Extension: fused TX+RX DAG plan vs two linear pipelines ==\n");
    std::printf("(%s, encode ratio %.2f, %d DAG tasks; baseline = best static core "
                "split, paired rate = min direction fps)\n\n",
                profile.name.c_str(), encode_ratio, workload.chain.size());

    bench::JsonReport report{"ext_dag"};
    report.param("platform", profile.name)
        .param("frames", static_cast<std::int64_t>(frames))
        .param("encode_ratio", encode_ratio)
        .param("tasks", workload.chain.size());

    dsim::SimulationConfig sim_config;
    sim_config.frames = frames;
    sim_config.warmup_frames = frames / 10;

    svc::SolverService service{{.workers = 1}};
    TextTable table({"budget (B+L)", "split fps", "fused fps", "model speedup",
                     "sim speedup", "fused cores"});

    std::vector<core::Resources> budgets{{4, 0}, {6, 2}, {8, 4}};
    budgets.push_back({profile.cores_full.big, profile.cores_full.little});
    for (const core::Resources budget : budgets) {
        const SplitBaseline split = best_split(tx, rx, budget, service);

        svc::GraphScheduleRequest request;
        request.chain = workload.chain;
        request.shape = workload.shape;
        request.resources = budget;
        const svc::GraphSchedule fused = svc::schedule_graph(request, service);

        const std::string label =
            std::to_string(budget.big) + "+" + std::to_string(budget.little);
        if (!split.feasible || !fused.ok) {
            table.add_row({label, split.feasible ? "ok" : "infeasible",
                           fused.ok ? "ok" : fused.error, "-", "-", "-"});
            continue;
        }

        const double split_fps_model = 1e6 / split.period_us;
        const double fused_fps_model = 1e6 / fused.period_us;

        const double tx_fps_sim = dsim::simulate(tx, split.tx_solution, sim_config).fps;
        const double rx_fps_sim = dsim::simulate(rx, split.rx_solution, sim_config).fps;
        const double split_fps_sim = std::min(tx_fps_sim, rx_fps_sim);
        const double fused_fps_sim = dsim::simulate(fused.plan, sim_config).fps;

        int fused_cores = 0;
        for (const svc::BranchSchedule& branch : fused.branches)
            fused_cores += branch.budget.big + branch.budget.little;

        table.add_row({label, fmt(split_fps_model, 0), fmt(fused_fps_model, 0),
                       fmt(fused_fps_model / split_fps_model, 2),
                       fmt(fused_fps_sim / split_fps_sim, 2),
                       std::to_string(fused_cores)});

        report.add_record()
            .set("big", budget.big)
            .set("little", budget.little)
            .set("split_big_tx", split.tx_budget.big)
            .set("split_little_tx", split.tx_budget.little)
            .set("split_fps_model", split_fps_model)
            .set("fused_fps_model", fused_fps_model)
            .set("model_speedup", fused_fps_model / split_fps_model)
            .set("split_fps_sim", split_fps_sim)
            .set("fused_fps_sim", fused_fps_sim)
            .set("sim_speedup", fused_fps_sim / split_fps_sim)
            .set("fused_cores", fused_cores)
            .set("solves", fused.solves);
    }

    std::printf("%s", table.str().c_str());
    std::printf("\nExpected shape: the speedup climbs toward 1.0 as the budget grows and the\n"
                "fused plan reaches parity with cores to spare (water-filling stops at the\n"
                "bottleneck; the baseline burns its full partition AND duplicates the radio\n"
                "front end, which a single-antenna modem cannot do). On starved budgets the\n"
                "static split wins: the DAG's one-core-per-branch floor parks cores on the\n"
                "nearly idle front/sink branches.\n");

    if (args.has("json") && !report.write_file(args.get("json", "")))
        std::fprintf(stderr, "warning: could not write %s\n", args.get("json", "").c_str());
    return 0;
}
