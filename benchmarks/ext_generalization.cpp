// Extension bench: the paper's §VI-B generalization claim — "non-optimal
// strategies tend to perform worse when more tasks have to be scheduled
// (more decisions to make), but better when more resources are available
// (easier to have enough resources for the slowest stage)". Sweeps chain
// length and machine size beyond the Table I grid and reports %optimal and
// average slowdowns for the heuristics.
//
// Flags: --chains=N per point (default 150).

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/campaign.hpp"

#include <cstdio>

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    const int chains = static_cast<int>(args.get_int("chains", 150));

    std::printf("== Extension: generalization over chain length and machine size ==\n\n");

    std::printf("(a) more tasks, fixed R = (10, 10), SR = 0.5  [expect: heuristics degrade]\n");
    TextTable by_tasks({"tasks", "2CATAC %opt / avg", "FERTAC %opt / avg"});
    for (const int tasks : {10, 20, 30, 40}) {
        bench::ScenarioConfig scenario;
        scenario.resources = {10, 10};
        scenario.num_tasks = tasks;
        scenario.chains = chains;
        const auto result = bench::run_scenario(scenario);
        const auto& two = result.outcomes.at(core::Strategy::twocatac).summary;
        const auto& fer = result.outcomes.at(core::Strategy::fertac).summary;
        by_tasks.add_row({std::to_string(tasks),
                          fmt_pct(two.pct_optimal, 0) + " / " + fmt(two.average, 3),
                          fmt_pct(fer.pct_optimal, 0) + " / " + fmt(fer.average, 3)});
    }
    std::printf("%s\n", by_tasks.str().c_str());

    std::printf("(b) more resources, fixed 20 tasks, SR = 0.5  [expect: heuristics improve]\n");
    TextTable by_cores({"R", "2CATAC %opt / avg", "FERTAC %opt / avg"});
    for (const int cores : {5, 10, 20, 40}) {
        bench::ScenarioConfig scenario;
        scenario.resources = {cores, cores};
        scenario.chains = chains;
        const auto result = bench::run_scenario(scenario);
        const auto& two = result.outcomes.at(core::Strategy::twocatac).summary;
        const auto& fer = result.outcomes.at(core::Strategy::fertac).summary;
        by_cores.add_row({"(" + std::to_string(cores) + "," + std::to_string(cores) + ")",
                          fmt_pct(two.pct_optimal, 0) + " / " + fmt(two.average, 3),
                          fmt_pct(fer.pct_optimal, 0) + " / " + fmt(fer.average, 3)});
    }
    std::printf("%s", by_cores.str().c_str());
    return 0;
}
