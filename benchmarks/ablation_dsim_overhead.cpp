// Ablation: the discrete-event simulator's overhead model (DESIGN.md,
// substitution 1). Sweeps each knob and reports the resulting expected-vs-
// real throughput gap for the HeRAD schedule on the X7 Ti full configuration
// -- the case where the paper observed the largest (>10%) gaps.

#include "common/argparse.hpp"
#include "common/table.hpp"
#include "support/dvbs2_eval.hpp"

#include <cstdio>

namespace {

double herad_gap(const amp::dsim::OverheadModel& overhead)
{
    const auto evaluations = amp::bench::evaluate_platform(
        amp::dvbs2::x7ti_profile(), amp::dvbs2::x7ti_profile().cores_full, overhead);
    for (const auto& eval : evaluations)
        if (eval.strategy == amp::core::Strategy::herad)
            return eval.mbps_ratio();
    return 0.0;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace amp;
    const ArgParse args(argc, argv);
    (void)args;

    std::printf("== Ablation: DES overhead model vs expected-real gap ==\n");
    std::printf("(HeRAD on X7 Ti (6B, 8L); the paper reports +17%% for this case)\n\n");

    TextTable table({"adaptor us", "jitter cv", "rep penalty", "little rep penalty",
                     "gap (exp-real)/real"});
    for (const double adaptor : {0.0, 2.0, 8.0}) {
        for (const double little_penalty : {0.0, 0.08, 0.2}) {
            dsim::OverheadModel overhead;
            overhead.adaptor_crossing_us = adaptor;
            overhead.little_replication_penalty = little_penalty;
            table.add_row({fmt(adaptor, 1), fmt(overhead.jitter_cv, 2),
                           fmt(overhead.replication_penalty, 2), fmt(little_penalty, 2),
                           "+" + fmt_pct(herad_gap(overhead), 1)});
        }
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
