#pragma once
// Shared machinery for the DVB-S2 evaluation benches (Table II, Fig 5):
// computes every strategy's schedule from a platform's Table III profile
// and measures "real" throughput with the discrete-event pipeline simulator
// (the documented substitute for the paper's hybrid-core testbeds).

#include "core/scheduler.hpp"
#include "dsim/simulator.hpp"
#include "dvbs2/profiles.hpp"

#include <string>
#include <vector>

namespace amp::bench {

struct ScheduleEvaluation {
    std::string platform;
    core::Resources resources;
    core::Strategy strategy{};
    core::Solution solution;
    int stage_count = 0;
    int big_used = 0;
    int little_used = 0;
    double expected_period_us = 0.0;
    double expected_fps = 0.0;
    double expected_mbps = 0.0;
    double real_fps = 0.0;
    double real_mbps = 0.0;
    [[nodiscard]] double mbps_diff() const noexcept { return expected_mbps - real_mbps; }
    [[nodiscard]] double mbps_ratio() const noexcept
    {
        return real_mbps > 0.0 ? (expected_mbps - real_mbps) / real_mbps : 0.0;
    }
};

/// Evaluates all five strategies for one platform profile and resource
/// configuration. `overhead` tunes the DES "reality" model.
[[nodiscard]] std::vector<ScheduleEvaluation>
evaluate_platform(const dvbs2::PlatformProfile& profile, core::Resources resources,
                  const dsim::OverheadModel& overhead = {});

/// The paper's four configurations: Mac Studio (8,2) and (16,4), X7 Ti
/// (3,4) and (6,8).
struct PlatformCase {
    const dvbs2::PlatformProfile* profile;
    core::Resources resources;
};
[[nodiscard]] std::vector<PlatformCase> paper_platform_cases();

} // namespace amp::bench
