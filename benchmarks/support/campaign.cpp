#include "support/campaign.hpp"

#include "svc/solver_service.hpp"

#include <iterator>

namespace amp::bench {

ScenarioResult run_scenario(const ScenarioConfig& config)
{
    ScenarioResult result;
    result.config = config;

    Rng rng{config.seed
            ^ (static_cast<std::uint64_t>(config.resources.big) << 32)
            ^ (static_cast<std::uint64_t>(config.resources.little) << 16)
            ^ static_cast<std::uint64_t>(config.stateless_ratio * 1000)};

    sim::GeneratorConfig generator;
    generator.num_tasks = config.num_tasks;
    generator.stateless_ratio = config.stateless_ratio;

    for (auto& strategy : core::kAllStrategies)
        result.outcomes[strategy]; // materialize in a stable order

    std::vector<core::TaskChain> chains;
    chains.reserve(static_cast<std::size_t>(config.chains));
    for (int c = 0; c < config.chains; ++c)
        chains.push_back(sim::generate_chain(generator, rng));

    // The whole scenario is one batch: every (chain, strategy) pair solves
    // through the service, in parallel when it has more than one worker, and
    // repeated chains become cache hits. HeRAD's result doubles as the
    // optimal baseline the other strategies are normalized against.
    const std::size_t per_chain = std::size(core::kAllStrategies);
    std::vector<core::ScheduleRequest> requests;
    requests.reserve(chains.size() * per_chain);
    for (const core::TaskChain& chain : chains)
        for (const core::Strategy strategy : core::kAllStrategies)
            requests.push_back(core::ScheduleRequest{chain, config.resources, strategy});
    const std::vector<core::ScheduleResult> solved =
        svc::shared_service().solve_batch(requests);

    std::size_t herad_slot = 0;
    for (std::size_t s = 0; s < per_chain; ++s)
        if (core::kAllStrategies[s] == core::Strategy::herad)
            herad_slot = s;

    for (std::size_t c = 0; c < chains.size(); ++c) {
        const core::TaskChain& chain = chains[c];
        const core::Solution& optimal = solved[c * per_chain + herad_slot].solution;
        const double optimal_period = optimal.period(chain);
        result.herad_usages.push_back(optimal.used());

        for (std::size_t s = 0; s < per_chain; ++s) {
            auto& outcome = result.outcomes[core::kAllStrategies[s]];
            const core::Solution& solution = solved[c * per_chain + s].solution;
            outcome.slowdowns.push_back(solution.period(chain) / optimal_period);
            outcome.usages.push_back(solution.used());
        }
    }

    for (auto& [strategy, outcome] : result.outcomes) {
        outcome.summary = sim::summarize_slowdowns(outcome.slowdowns);
        double big = 0.0;
        double little = 0.0;
        for (const auto& usage : outcome.usages) {
            big += usage.big;
            little += usage.little;
        }
        const auto n = static_cast<double>(outcome.usages.size());
        outcome.avg_big_used = n > 0 ? big / n : 0.0;
        outcome.avg_little_used = n > 0 ? little / n : 0.0;
    }
    return result;
}

std::vector<ScenarioConfig> paper_scenarios(int chains, std::uint64_t seed)
{
    std::vector<ScenarioConfig> scenarios;
    for (const core::Resources resources :
         {core::Resources{16, 4}, core::Resources{10, 10}, core::Resources{4, 16}}) {
        for (const double sr : {0.2, 0.5, 0.8}) {
            ScenarioConfig config;
            config.resources = resources;
            config.stateless_ratio = sr;
            config.chains = chains;
            config.seed = seed;
            scenarios.push_back(config);
        }
    }
    return scenarios;
}

void append_scenario(JsonReport& report, const ScenarioResult& result)
{
    for (const auto& [strategy, outcome] : result.outcomes) {
        report.add_record()
            .set("big", result.config.resources.big)
            .set("little", result.config.resources.little)
            .set("stateless_ratio", result.config.stateless_ratio)
            .set("chains", result.config.chains)
            .set("strategy", core::to_key(strategy))
            .set("pct_optimal", outcome.summary.pct_optimal)
            .set("slowdown_avg", outcome.summary.average)
            .set("slowdown_median", outcome.summary.median)
            .set("slowdown_max", outcome.summary.maximum)
            .set("avg_big_used", outcome.avg_big_used)
            .set("avg_little_used", outcome.avg_little_used);
    }
}

} // namespace amp::bench
