#include "support/dvbs2_eval.hpp"

#include "dvbs2/params.hpp"
#include "svc/solver_service.hpp"

namespace amp::bench {

std::vector<ScheduleEvaluation> evaluate_platform(const dvbs2::PlatformProfile& profile,
                                                  core::Resources resources,
                                                  const dsim::OverheadModel& overhead)
{
    const core::TaskChain chain = dvbs2::profile_chain(profile);
    dvbs2::FrameParams params;
    params.interframe = profile.interframe;

    // All strategies for the platform go to the solver service as one
    // batch; re-evaluations of the same profile hit its cache.
    std::vector<core::ScheduleRequest> requests;
    for (const core::Strategy strategy : core::kAllStrategies)
        requests.push_back(core::ScheduleRequest{chain, resources, strategy});
    const std::vector<core::ScheduleResult> solved =
        svc::shared_service().solve_batch(requests);

    std::vector<ScheduleEvaluation> evaluations;
    for (std::size_t s = 0; s < requests.size(); ++s) {
        const core::Strategy strategy = requests[s].strategy;
        ScheduleEvaluation eval;
        eval.platform = profile.name;
        eval.resources = resources;
        eval.strategy = strategy;
        eval.solution = solved[s].solution;
        if (!solved[s].ok()) {
            evaluations.push_back(std::move(eval));
            continue;
        }
        eval.stage_count = static_cast<int>(eval.solution.stage_count());
        eval.big_used = eval.solution.used(core::CoreType::big);
        eval.little_used = eval.solution.used(core::CoreType::little);
        eval.expected_period_us = eval.solution.period(chain);
        eval.expected_fps =
            dvbs2::fps_from_period_us(eval.expected_period_us, profile.interframe);
        eval.expected_mbps = dvbs2::mbps_from_fps(eval.expected_fps, params.k_bch);

        dsim::SimulationConfig sim_config;
        sim_config.overhead = overhead;
        const auto simulated = dsim::simulate(chain, eval.solution, sim_config);
        eval.real_fps = dvbs2::fps_from_period_us(simulated.period_us, profile.interframe);
        eval.real_mbps = dvbs2::mbps_from_fps(eval.real_fps, params.k_bch);
        evaluations.push_back(std::move(eval));
    }
    return evaluations;
}

std::vector<PlatformCase> paper_platform_cases()
{
    return {
        {&dvbs2::mac_studio_profile(), dvbs2::mac_studio_profile().cores_half},
        {&dvbs2::mac_studio_profile(), dvbs2::mac_studio_profile().cores_full},
        {&dvbs2::x7ti_profile(), dvbs2::x7ti_profile().cores_half},
        {&dvbs2::x7ti_profile(), dvbs2::x7ti_profile().cores_full},
    };
}

} // namespace amp::bench
