#include "support/bench_json.hpp"

#include <cstdio>

namespace amp::bench {

void JsonRecord::append_to(obs::JsonWriter& writer) const
{
    writer.begin_object();
    for (const auto& [key, rendered] : fields_)
        writer.key(key).raw(rendered);
    writer.end_object();
}

std::string JsonReport::str() const
{
    obs::JsonWriter writer;
    writer.begin_object();
    writer.key("schema").value("amp-bench-v1");
    writer.key("bench").value(bench_);
    writer.key("params");
    params_.append_to(writer);
    writer.key("records").begin_array();
    for (const JsonRecord& record : records_)
        record.append_to(writer);
    writer.end_array();
    if (metrics_.has_value()) {
        writer.key("metrics");
        obs::append_metrics_json(writer, *metrics_);
    }
    writer.end_object();
    return writer.str();
}

bool JsonReport::write_file(const std::string& path) const
{
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return false;
    const std::string text = str();
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), file);
    const bool ok = written == text.size() && std::fclose(file) == 0;
    if (written != text.size())
        std::fclose(file);
    return ok;
}

} // namespace amp::bench
