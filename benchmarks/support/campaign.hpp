#pragma once
// Shared machinery for the simulation-campaign benches (Table I, Figs 1-2):
// runs every scheduling strategy over a batch of synthetic chains and
// collects slowdown ratios and core usages relative to HeRAD.

#include "core/scheduler.hpp"
#include "sim/generator.hpp"
#include "sim/stats.hpp"
#include "support/bench_json.hpp"

#include <map>
#include <vector>

namespace amp::bench {

struct ScenarioConfig {
    core::Resources resources;
    double stateless_ratio = 0.5;
    int num_tasks = 20;
    int chains = 1000;
    std::uint64_t seed = 0xbe9c;
};

struct StrategyOutcome {
    std::vector<double> slowdowns;       ///< P(strategy) / P(HeRAD), one per chain
    std::vector<core::Resources> usages; ///< cores used, one per chain
    sim::SlowdownSummary summary;
    double avg_big_used = 0.0;
    double avg_little_used = 0.0;
};

struct ScenarioResult {
    ScenarioConfig config;
    std::map<core::Strategy, StrategyOutcome> outcomes;
    std::vector<core::Resources> herad_usages; ///< aligned with each chain
};

/// Runs the campaign for one (R, SR) scenario over `chains` random chains.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

/// The paper's scenario grid: R in {(16,4),(10,10),(4,16)} x SR in
/// {0.2, 0.5, 0.8}.
[[nodiscard]] std::vector<ScenarioConfig> paper_scenarios(int chains, std::uint64_t seed);

/// Flattens one scenario into amp-bench-v1 records: one record per
/// (scenario, strategy) with the slowdown summary and average core usage.
void append_scenario(JsonReport& report, const ScenarioResult& result);

} // namespace amp::bench
