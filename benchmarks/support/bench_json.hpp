#pragma once
// Machine-readable benchmark output (the "amp-bench-v1" schema, documented
// in docs/OBSERVABILITY.md). Every bench keeps its human-readable text
// tables; passing --json=<file> additionally writes one self-describing
// JSON document:
//
//   {
//     "schema": "amp-bench-v1",
//     "bench": "<binary name>",
//     "params": { "<flag>": <value>, ... },
//     "records": [ { ... }, ... ],        // one object per measurement
//     "metrics": { "counters": ..., "gauges": ..., "histograms": ... }
//   }
//
// "metrics" is present only when the bench attaches an obs::MetricsRegistry
// snapshot; its layout is exactly obs::render_json's.

#include "obs/json.hpp"
#include "obs/metrics.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace amp::bench {

/// One measurement row: insertion-ordered key -> pre-rendered JSON value.
class JsonRecord {
public:
    JsonRecord& set(const std::string& key, const std::string& text)
    {
        fields_.emplace_back(key, '"' + obs::json_escape(text) + '"');
        return *this;
    }
    JsonRecord& set(const std::string& key, const char* text)
    {
        return set(key, std::string{text});
    }
    JsonRecord& set(const std::string& key, double number)
    {
        fields_.emplace_back(key, obs::json_number(number));
        return *this;
    }
    JsonRecord& set(const std::string& key, std::int64_t number)
    {
        fields_.emplace_back(key, std::to_string(number));
        return *this;
    }
    JsonRecord& set(const std::string& key, std::uint64_t number)
    {
        fields_.emplace_back(key, std::to_string(number));
        return *this;
    }
    JsonRecord& set(const std::string& key, int number)
    {
        return set(key, static_cast<std::int64_t>(number));
    }
    JsonRecord& set(const std::string& key, bool flag)
    {
        fields_.emplace_back(key, flag ? "true" : "false");
        return *this;
    }

    void append_to(obs::JsonWriter& writer) const;

private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates a bench run and renders/writes the amp-bench-v1 document.
class JsonReport {
public:
    explicit JsonReport(std::string bench_name)
        : bench_(std::move(bench_name))
    {
    }

    /// Records an input parameter (a flag the run was invoked with).
    template <typename V>
    JsonReport& param(const std::string& key, V&& value)
    {
        params_.set(key, std::forward<V>(value));
        return *this;
    }

    /// Appends and returns a new measurement row.
    JsonRecord& add_record()
    {
        records_.emplace_back();
        return records_.back();
    }

    /// Attaches a metrics snapshot rendered under the "metrics" key.
    JsonReport& metrics(obs::MetricsSnapshot snapshot)
    {
        metrics_ = std::move(snapshot);
        return *this;
    }

    [[nodiscard]] std::string str() const;

    /// Writes str() to `path`; false on I/O failure.
    bool write_file(const std::string& path) const;

private:
    std::string bench_;
    JsonRecord params_;
    std::vector<JsonRecord> records_;
    std::optional<obs::MetricsSnapshot> metrics_;
};

} // namespace amp::bench
