#pragma once
// Runtime task abstraction: the StreamPU-like module/task layer.
//
// A Task<T> transforms a frame payload of type T in place. Stateless tasks
// must be clonable (replication instantiates one copy per worker); stateful
// tasks are never cloned because the scheduler never replicates them.

#include "core/chain.hpp"

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace amp::rt {

template <typename T>
class Task {
public:
    Task(std::string name, bool stateful)
        : name_(std::move(name))
        , stateful_(stateful)
    {
    }
    virtual ~Task() = default;

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    /// Transforms one frame in place.
    virtual void process(T& frame) = 0;

    /// Fresh instance with identical configuration. Stateless tasks must
    /// implement this; the default (for stateful tasks) throws.
    [[nodiscard]] virtual std::unique_ptr<Task<T>> clone() const
    {
        throw std::logic_error{"task '" + name_ + "' is stateful and cannot be replicated"};
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] bool stateful() const noexcept { return stateful_; }
    [[nodiscard]] bool replicable() const noexcept { return !stateful_; }

private:
    std::string name_;
    bool stateful_;
};

/// Wraps a callable as a task. Stateless lambda tasks clone by copying the
/// callable; stateful ones use the base-class throwing clone.
template <typename T, typename Fn>
class LambdaTask final : public Task<T> {
public:
    LambdaTask(std::string name, bool stateful, Fn fn)
        : Task<T>(std::move(name), stateful)
        , fn_(std::move(fn))
    {
    }

    void process(T& frame) override { fn_(frame); }

    [[nodiscard]] std::unique_ptr<Task<T>> clone() const override
    {
        if (this->stateful())
            return Task<T>::clone();
        return std::make_unique<LambdaTask>(this->name(), false, fn_);
    }

private:
    Fn fn_;
};

template <typename T, typename Fn>
[[nodiscard]] std::unique_ptr<Task<T>> make_task(std::string name, bool stateful, Fn fn)
{
    return std::make_unique<LambdaTask<T, Fn>>(std::move(name), stateful, std::move(fn));
}

/// An ordered chain of runtime tasks (1-based indexing like core::TaskChain).
template <typename T>
class TaskSequence {
public:
    TaskSequence() = default;

    void push_back(std::unique_ptr<Task<T>> task) { tasks_.push_back(std::move(task)); }

    [[nodiscard]] int size() const noexcept { return static_cast<int>(tasks_.size()); }
    [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

    [[nodiscard]] Task<T>& task(int i) const
    {
        return *tasks_.at(static_cast<std::size_t>(i - 1));
    }

    /// Builds the per-worker task instances for stage [first, last]: worker 0
    /// borrows the originals, workers >= 1 get clones (hence require all
    /// stage tasks to be stateless).
    [[nodiscard]] std::vector<Task<T>*> stage_view(int first, int last) const
    {
        std::vector<Task<T>*> view;
        view.reserve(static_cast<std::size_t>(last - first + 1));
        for (int i = first; i <= last; ++i)
            view.push_back(&task(i));
        return view;
    }

    [[nodiscard]] std::vector<std::unique_ptr<Task<T>>> stage_clones(int first, int last) const
    {
        std::vector<std::unique_ptr<Task<T>>> clones;
        clones.reserve(static_cast<std::size_t>(last - first + 1));
        for (int i = first; i <= last; ++i)
            clones.push_back(task(i).clone());
        return clones;
    }

    /// Converts to the scheduler's chain model given per-task weights.
    [[nodiscard]] core::TaskChain
    to_core_chain(const std::vector<double>& weights_big,
                  const std::vector<double>& weights_little) const
    {
        if (weights_big.size() != tasks_.size() || weights_little.size() != tasks_.size())
            throw std::invalid_argument{"to_core_chain: weight vectors must match chain size"};
        std::vector<core::TaskDesc> descs;
        descs.reserve(tasks_.size());
        for (std::size_t i = 0; i < tasks_.size(); ++i)
            descs.push_back(core::TaskDesc{tasks_[i]->name(), weights_big[i],
                                           weights_little[i], tasks_[i]->replicable()});
        return core::TaskChain{std::move(descs)};
    }

private:
    std::vector<std::unique_ptr<Task<T>>> tasks_;
};

} // namespace amp::rt
