#pragma once
// Frame envelope passed between pipeline stages: a payload plus the stream
// sequence number used to restore ordering behind replicated stages.
//
// A `dropped` envelope is a tombstone: the watchdog publishes one for a frame
// that was lost inside a failed worker so that downstream consumers (which
// deliver strictly in sequence order) can advance past the hole. Tombstones
// flow through the rest of the pipeline unprocessed and are counted as
// dropped frames by the drain.

#include <cstdint>
#include <utility>

namespace amp::rt {

template <typename T>
struct Envelope {
    std::uint64_t seq = 0;
    bool end = false;     ///< end-of-stream marker; sorts after all data frames
    bool dropped = false; ///< tombstone for a frame lost to a worker failure
    T payload{};

    static Envelope data(std::uint64_t seq, T payload)
    {
        return Envelope{seq, false, false, std::move(payload)};
    }
    static Envelope end_of_stream(std::uint64_t seq) { return Envelope{seq, true, false, T{}}; }
    static Envelope tombstone(std::uint64_t seq) { return Envelope{seq, false, true, T{}}; }
};

} // namespace amp::rt
