#pragma once
// Frame envelope passed between pipeline stages: a payload plus the stream
// sequence number used to restore ordering behind replicated stages.

#include <cstdint>
#include <utility>

namespace amp::rt {

template <typename T>
struct Envelope {
    std::uint64_t seq = 0;
    bool end = false; ///< end-of-stream marker; sorts after all data frames
    T payload{};

    static Envelope data(std::uint64_t seq, T payload)
    {
        return Envelope{seq, false, std::move(payload)};
    }
    static Envelope end_of_stream(std::uint64_t seq) { return Envelope{seq, true, T{}}; }
};

} // namespace amp::rt
