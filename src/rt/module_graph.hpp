#pragma once
// StreamPU-flavored DSEL layer: modules with named input/output ports,
// explicit bindings, and validated linearization into a TaskSequence.
//
// StreamPU programs declare modules whose task sockets are bound to one
// another; the runtime then derives an executable sequence. This layer
// reproduces that programming model on top of the blackboard payload: each
// module names the payload fields it consumes and produces, `bind` wires a
// producer's output port to a consumer's input port, and `linearize()`
// checks the graph (every input bound exactly once, no cycles, a unique
// topological order compatible with the declaration of a *chain*) before
// emitting the TaskSequence the Pipeline executes.
//
// `decompose()` is the DAG-preserving alternative: instead of flattening
// fan-out/fan-in into one line, it groups the modules into maximal linear
// *branches* and emits a plan::GraphShape describing the branch edges, so a
// graph pipeline can compile through amp::plan (per-branch solve + stitch;
// see docs/EXECUTION_PLAN.md).

#include "plan/graph_shape.hpp"
#include "rt/task.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace amp::rt {

/// Opaque handle to a module added to a graph.
struct ModuleHandle {
    int index = -1;
    [[nodiscard]] bool valid() const noexcept { return index >= 0; }
    [[nodiscard]] bool operator==(const ModuleHandle&) const noexcept = default;
};

template <typename T>
class ModuleGraph {
public:
    /// Adds a module. `inputs` / `outputs` are the port names it consumes /
    /// produces. A module with no inputs is a source; with no outputs, a sink.
    ModuleHandle add(std::string name, bool stateful, std::function<void(T&)> fn,
                     std::vector<std::string> inputs = {},
                     std::vector<std::string> outputs = {})
    {
        for (const auto& existing : modules_)
            if (existing.name == name)
                throw std::invalid_argument{"ModuleGraph: duplicate module name '" + name
                                            + "'"};
        const auto check_ports = [&name](const std::vector<std::string>& ports,
                                         const char* kind) {
            for (std::size_t a = 0; a < ports.size(); ++a)
                for (std::size_t b = a + 1; b < ports.size(); ++b)
                    if (ports[a] == ports[b])
                        throw std::invalid_argument{"ModuleGraph: module '" + name
                                                    + "' declares duplicate " + kind
                                                    + " port '" + ports[a] + "'"};
        };
        check_ports(inputs, "input");
        check_ports(outputs, "output");
        Entry entry;
        entry.name = std::move(name);
        entry.stateful = stateful;
        entry.fn = std::move(fn);
        entry.inputs = std::move(inputs);
        entry.outputs = std::move(outputs);
        modules_.push_back(std::move(entry));
        return ModuleHandle{static_cast<int>(modules_.size()) - 1};
    }

    /// Binds producer's output port to consumer's input port. Both ports
    /// must exist; an input port accepts exactly one binding.
    void bind(ModuleHandle producer, const std::string& out_port, ModuleHandle consumer,
              const std::string& in_port)
    {
        const Entry& from = entry(producer, "bind: producer");
        Entry& to = entry(consumer, "bind: consumer");
        if (std::find(from.outputs.begin(), from.outputs.end(), out_port) == from.outputs.end())
            throw std::invalid_argument{"ModuleGraph: module '" + from.name
                                        + "' has no output port '" + out_port + "'"};
        if (std::find(to.inputs.begin(), to.inputs.end(), in_port) == to.inputs.end())
            throw std::invalid_argument{"ModuleGraph: module '" + to.name
                                        + "' has no input port '" + in_port + "'"};
        if (to.bound_inputs.count(in_port) != 0)
            throw std::invalid_argument{"ModuleGraph: input '" + to.name + "." + in_port
                                        + "' is already bound"};
        to.bound_inputs.emplace(in_port, producer.index);
    }

    /// Convenience: binds every input port of `consumer` whose name matches
    /// an output port of `producer`.
    void auto_bind(ModuleHandle producer, ModuleHandle consumer)
    {
        const Entry& from = entry(producer, "auto_bind: producer");
        const Entry& to = entry(consumer, "auto_bind: consumer");
        for (const auto& port : to.inputs)
            if (std::find(from.outputs.begin(), from.outputs.end(), port) != from.outputs.end()
                && to.bound_inputs.count(port) == 0)
                bind(producer, port, consumer, port);
    }

    [[nodiscard]] std::size_t size() const noexcept { return modules_.size(); }

    /// Validates the graph and emits the executable sequence:
    ///   * every input port must be bound,
    ///   * the dependency graph must be acyclic,
    ///   * and it must linearize into a *chain-compatible* order (Kahn's
    ///     algorithm; declaration order breaks ties so the result is
    ///     deterministic).
    [[nodiscard]] TaskSequence<T> linearize() const
    {
        std::vector<std::set<int>> successors;
        const std::vector<int> order = topological_order(successors);
        TaskSequence<T> sequence;
        for (const int index : order) {
            const Entry& module = modules_[static_cast<std::size_t>(index)];
            sequence.push_back(
                make_task<T>(module.name, module.stateful, module.fn));
        }
        return sequence;
    }

    /// The DAG view of the graph: the task sequence in *branch-concatenated*
    /// order (every branch's modules contiguous, branches topologically
    /// ordered) plus the plan::GraphShape naming each branch's global task
    /// interval and the branch edges. A chain-shaped graph yields one
    /// branch, so GraphSpec subsumes linearize() for plan compilation.
    struct GraphSpec {
        TaskSequence<T> sequence;       ///< branch-concatenated order
        plan::GraphShape shape;
        std::vector<std::string> names; ///< task names, same order (1-based task i
                                        ///< is names[i - 1])
    };

    /// Groups the modules into maximal linear branches: a module extends its
    /// producer's branch iff it is that producer's only consumer and the
    /// producer is its only input -- every fan-out, fan-in or join point
    /// starts a new branch. Validation matches linearize() (all inputs
    /// bound, acyclic) and additionally requires a unique source module and
    /// a unique sink module, because the compiled plan's executors need one
    /// frame injection point and one drain.
    [[nodiscard]] GraphSpec decompose() const
    {
        std::vector<std::set<int>> successors;
        const std::vector<int> order = topological_order(successors);

        int source_modules = 0;
        int sink_modules = 0;
        for (std::size_t m = 0; m < modules_.size(); ++m) {
            if (modules_[m].bound_inputs.empty())
                ++source_modules;
            if (successors[m].empty())
                ++sink_modules;
        }
        if (source_modules != 1)
            throw std::invalid_argument{
                "ModuleGraph: decompose needs exactly one source module"};
        if (sink_modules != 1)
            throw std::invalid_argument{
                "ModuleGraph: decompose needs exactly one sink module"};

        // Walk the topological order grouping modules into branches.
        std::vector<std::vector<int>> branch_modules; // module indices, in order
        std::vector<std::vector<int>> branch_preds;
        std::vector<int> branch_of(modules_.size(), -1);
        for (const int m : order) {
            const Entry& module = modules_[static_cast<std::size_t>(m)];
            std::set<int> producers;
            for (const auto& [port, producer] : module.bound_inputs)
                producers.insert(producer);

            if (producers.size() == 1) {
                const int p = *producers.begin();
                const int pb = branch_of[static_cast<std::size_t>(p)];
                if (successors[static_cast<std::size_t>(p)].size() == 1
                    && branch_modules[static_cast<std::size_t>(pb)].back() == p) {
                    branch_modules[static_cast<std::size_t>(pb)].push_back(m);
                    branch_of[static_cast<std::size_t>(m)] = pb;
                    continue;
                }
            }
            const int b = static_cast<int>(branch_modules.size());
            branch_modules.push_back({m});
            std::set<int> preds;
            for (const int p : producers)
                preds.insert(branch_of[static_cast<std::size_t>(p)]);
            branch_preds.emplace_back(preds.begin(), preds.end());
            branch_of[static_cast<std::size_t>(m)] = b;
        }

        GraphSpec spec;
        spec.shape.branches.resize(branch_modules.size());
        int next_task = 1;
        for (std::size_t b = 0; b < branch_modules.size(); ++b) {
            plan::GraphBranch& branch = spec.shape.branches[b];
            branch.index = static_cast<int>(b);
            branch.first = next_task;
            for (const int m : branch_modules[b]) {
                const Entry& module = modules_[static_cast<std::size_t>(m)];
                spec.sequence.push_back(make_task<T>(module.name, module.stateful, module.fn));
                spec.names.push_back(module.name);
                spec.shape.chain.replicable.push_back(!module.stateful);
                ++next_task;
            }
            branch.last = next_task - 1;
            branch.preds = branch_preds[b];
            for (const int p : branch.preds)
                spec.shape.branches[static_cast<std::size_t>(p)].succs.push_back(branch.index);
        }
        spec.shape.chain.tasks = next_task - 1;
        spec.shape.validate();
        return spec;
    }

    /// Names in linearized order (for inspection and tests).
    [[nodiscard]] std::vector<std::string> linearized_names() const
    {
        const auto sequence = linearize();
        std::vector<std::string> names;
        names.reserve(static_cast<std::size_t>(sequence.size()));
        for (int i = 1; i <= sequence.size(); ++i)
            names.push_back(sequence.task(i).name());
        return names;
    }

private:
    struct Entry {
        std::string name;
        bool stateful = false;
        std::function<void(T&)> fn;
        std::vector<std::string> inputs;
        std::vector<std::string> outputs;
        std::map<std::string, int> bound_inputs; ///< port -> producer index
    };

    /// Validates bindings and acyclicity, fills `successors`, and returns
    /// the Kahn topological order (smallest declaration index first, so the
    /// result is deterministic). Shared by linearize() and decompose().
    [[nodiscard]] std::vector<int> topological_order(std::vector<std::set<int>>& successors) const
    {
        if (modules_.empty())
            throw std::invalid_argument{"ModuleGraph: no modules"};

        successors.assign(modules_.size(), {});
        std::vector<int> in_degree(modules_.size(), 0);
        for (std::size_t m = 0; m < modules_.size(); ++m) {
            const Entry& module = modules_[m];
            for (const auto& port : module.inputs)
                if (module.bound_inputs.count(port) == 0)
                    throw std::invalid_argument{"ModuleGraph: input '" + module.name + "."
                                                + port + "' is not bound"};
            for (const auto& [port, producer] : module.bound_inputs)
                if (successors[static_cast<std::size_t>(producer)].insert(static_cast<int>(m))
                        .second)
                    ++in_degree[m];
        }

        std::vector<int> order;
        std::set<int> ready;
        for (std::size_t m = 0; m < modules_.size(); ++m)
            if (in_degree[m] == 0)
                ready.insert(static_cast<int>(m));
        while (!ready.empty()) {
            const int next = *ready.begin();
            ready.erase(ready.begin());
            order.push_back(next);
            for (const int succ : successors[static_cast<std::size_t>(next)])
                if (--in_degree[static_cast<std::size_t>(succ)] == 0)
                    ready.insert(succ);
        }
        if (order.size() != modules_.size())
            throw std::invalid_argument{"ModuleGraph: binding cycle detected"};
        return order;
    }

    [[nodiscard]] const Entry& entry(ModuleHandle handle, const char* context) const
    {
        if (!handle.valid() || handle.index >= static_cast<int>(modules_.size()))
            throw std::invalid_argument{std::string{context} + ": invalid module handle"};
        return modules_[static_cast<std::size_t>(handle.index)];
    }
    [[nodiscard]] Entry& entry(ModuleHandle handle, const char* context)
    {
        return const_cast<Entry&>(std::as_const(*this).entry(handle, context));
    }

    std::vector<Entry> modules_;
};

} // namespace amp::rt
