#pragma once
// StreamPU-flavored DSEL layer: modules with named input/output ports,
// explicit bindings, and validated linearization into a TaskSequence.
//
// StreamPU programs declare modules whose task sockets are bound to one
// another; the runtime then derives an executable sequence. This layer
// reproduces that programming model on top of the blackboard payload: each
// module names the payload fields it consumes and produces, `bind` wires a
// producer's output port to a consumer's input port, and `linearize()`
// checks the graph (every input bound exactly once, no cycles, a unique
// topological order compatible with the declaration of a *chain*) before
// emitting the TaskSequence the Pipeline executes.

#include "rt/task.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace amp::rt {

/// Opaque handle to a module added to a graph.
struct ModuleHandle {
    int index = -1;
    [[nodiscard]] bool valid() const noexcept { return index >= 0; }
    [[nodiscard]] bool operator==(const ModuleHandle&) const noexcept = default;
};

template <typename T>
class ModuleGraph {
public:
    /// Adds a module. `inputs` / `outputs` are the port names it consumes /
    /// produces. A module with no inputs is a source; with no outputs, a sink.
    ModuleHandle add(std::string name, bool stateful, std::function<void(T&)> fn,
                     std::vector<std::string> inputs = {},
                     std::vector<std::string> outputs = {})
    {
        for (const auto& existing : modules_)
            if (existing.name == name)
                throw std::invalid_argument{"ModuleGraph: duplicate module name '" + name
                                            + "'"};
        Entry entry;
        entry.name = std::move(name);
        entry.stateful = stateful;
        entry.fn = std::move(fn);
        entry.inputs = std::move(inputs);
        entry.outputs = std::move(outputs);
        modules_.push_back(std::move(entry));
        return ModuleHandle{static_cast<int>(modules_.size()) - 1};
    }

    /// Binds producer's output port to consumer's input port. Both ports
    /// must exist; an input port accepts exactly one binding.
    void bind(ModuleHandle producer, const std::string& out_port, ModuleHandle consumer,
              const std::string& in_port)
    {
        const Entry& from = entry(producer, "bind: producer");
        Entry& to = entry(consumer, "bind: consumer");
        if (std::find(from.outputs.begin(), from.outputs.end(), out_port) == from.outputs.end())
            throw std::invalid_argument{"ModuleGraph: module '" + from.name
                                        + "' has no output port '" + out_port + "'"};
        if (std::find(to.inputs.begin(), to.inputs.end(), in_port) == to.inputs.end())
            throw std::invalid_argument{"ModuleGraph: module '" + to.name
                                        + "' has no input port '" + in_port + "'"};
        if (to.bound_inputs.count(in_port) != 0)
            throw std::invalid_argument{"ModuleGraph: input '" + to.name + "." + in_port
                                        + "' is already bound"};
        to.bound_inputs.emplace(in_port, producer.index);
    }

    /// Convenience: binds every input port of `consumer` whose name matches
    /// an output port of `producer`.
    void auto_bind(ModuleHandle producer, ModuleHandle consumer)
    {
        const Entry& from = entry(producer, "auto_bind: producer");
        const Entry& to = entry(consumer, "auto_bind: consumer");
        for (const auto& port : to.inputs)
            if (std::find(from.outputs.begin(), from.outputs.end(), port) != from.outputs.end()
                && to.bound_inputs.count(port) == 0)
                bind(producer, port, consumer, port);
    }

    [[nodiscard]] std::size_t size() const noexcept { return modules_.size(); }

    /// Validates the graph and emits the executable sequence:
    ///   * every input port must be bound,
    ///   * the dependency graph must be acyclic,
    ///   * and it must linearize into a *chain-compatible* order (Kahn's
    ///     algorithm; declaration order breaks ties so the result is
    ///     deterministic).
    [[nodiscard]] TaskSequence<T> linearize() const
    {
        if (modules_.empty())
            throw std::invalid_argument{"ModuleGraph: no modules"};

        // Check all inputs bound; build adjacency.
        std::vector<std::set<int>> successors(modules_.size());
        std::vector<int> in_degree(modules_.size(), 0);
        for (std::size_t m = 0; m < modules_.size(); ++m) {
            const Entry& module = modules_[m];
            for (const auto& port : module.inputs)
                if (module.bound_inputs.count(port) == 0)
                    throw std::invalid_argument{"ModuleGraph: input '" + module.name + "."
                                                + port + "' is not bound"};
            for (const auto& [port, producer] : module.bound_inputs)
                if (successors[static_cast<std::size_t>(producer)].insert(static_cast<int>(m))
                        .second)
                    ++in_degree[m];
        }

        // Kahn topological sort, smallest declaration index first.
        std::vector<int> order;
        std::set<int> ready;
        for (std::size_t m = 0; m < modules_.size(); ++m)
            if (in_degree[m] == 0)
                ready.insert(static_cast<int>(m));
        while (!ready.empty()) {
            const int next = *ready.begin();
            ready.erase(ready.begin());
            order.push_back(next);
            for (const int succ : successors[static_cast<std::size_t>(next)])
                if (--in_degree[static_cast<std::size_t>(succ)] == 0)
                    ready.insert(succ);
        }
        if (order.size() != modules_.size())
            throw std::invalid_argument{"ModuleGraph: binding cycle detected"};

        TaskSequence<T> sequence;
        for (const int index : order) {
            const Entry& module = modules_[static_cast<std::size_t>(index)];
            sequence.push_back(
                make_task<T>(module.name, module.stateful, module.fn));
        }
        return sequence;
    }

    /// Names in linearized order (for inspection and tests).
    [[nodiscard]] std::vector<std::string> linearized_names() const
    {
        const auto sequence = linearize();
        std::vector<std::string> names;
        names.reserve(static_cast<std::size_t>(sequence.size()));
        for (int i = 1; i <= sequence.size(); ++i)
            names.push_back(sequence.task(i).name());
        return names;
    }

private:
    struct Entry {
        std::string name;
        bool stateful = false;
        std::function<void(T&)> fn;
        std::vector<std::string> inputs;
        std::vector<std::string> outputs;
        std::map<std::string, int> bound_inputs; ///< port -> producer index
    };

    [[nodiscard]] const Entry& entry(ModuleHandle handle, const char* context) const
    {
        if (!handle.valid() || handle.index >= static_cast<int>(modules_.size()))
            throw std::invalid_argument{std::string{context} + ": invalid module handle"};
        return modules_[static_cast<std::size_t>(handle.index)];
    }
    [[nodiscard]] Entry& entry(ModuleHandle handle, const char* context)
    {
        return const_cast<Entry&>(std::as_const(*this).entry(handle, context));
    }

    std::vector<Entry> modules_;
};

} // namespace amp::rt
