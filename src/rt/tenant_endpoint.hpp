#pragma once
// Adapts rt::Pipeline<T> to the arbiter's type-erased hot-swap handle
// (arb::TenantEndpoint, docs/ARBITER.md). Bind with
// Arbiter::bind_endpoint(id, &endpoint); on each rearbitration whose grant
// changes this tenant's budget the arbiter calls apply(next, delta) and the
// adapter picks the cheapest swap the pipeline can absorb:
//
//   * empty delta                 -> SwapKind::none
//   * incompatible (recut)        -> SwapKind::rebuild_required; the owner
//                                    rebuilds the pipeline from the plan in
//                                    its TenantStatus
//   * parked (no segment running) -> Pipeline::apply_delta, SwapKind::delta
//   * live + resize-only          -> Pipeline::try_apply_delta_in_flight,
//                                    SwapKind::frame (no drain)
//   * live, anything else         -> SwapKind::rebuild_required (apply_delta
//                                    must not run mid-segment)
//
// The rungs above are the SwapPolicy::frame_first ladder (the default); a
// stricter policy caps how far up the adapter may climb:
// SwapPolicy::delta declines in-flight swaps (live tenants report
// rebuild_required instead of frame-swapping) and SwapPolicy::rebuild_only
// reports rebuild_required for every non-empty delta.
//
// The owner flips set_live() around run()/run_from() so the adapter knows
// which swap path is legal; it defaults to parked. The arbiter serializes
// apply() calls under its own lock, and the in-flight path additionally
// serializes against the pipeline's swap mutex, so a watchdog-triggered
// recovery swap and an arbiter budget swap cannot interleave mid-apply.

#include "arb/arbiter.hpp"
#include "rt/pipeline.hpp"
#include "rt/rescheduler.hpp"

#include <atomic>
#include <chrono>

namespace amp::rt {

template <typename T>
class PipelineTenantEndpoint final : public arb::TenantEndpoint {
public:
    explicit PipelineTenantEndpoint(Pipeline<T>& pipeline,
                                    SwapPolicy policy = SwapPolicy::frame_first,
                                    std::chrono::milliseconds reclaim_timeout =
                                        std::chrono::milliseconds{200})
        : pipeline_(&pipeline)
        , policy_(policy)
        , reclaim_timeout_(reclaim_timeout)
    {
    }

    /// True while a stream segment is in flight (set it before run(), clear
    /// it after); gates which swap path apply() may take.
    void set_live(bool live) noexcept { live_.store(live, std::memory_order_release); }
    [[nodiscard]] bool live() const noexcept
    {
        return live_.load(std::memory_order_acquire);
    }

    [[nodiscard]] const plan::ExecutionPlan& current_plan() const override
    {
        return pipeline_->execution_plan();
    }

    [[nodiscard]] arb::SwapKind apply(const plan::ExecutionPlan& next,
                                      const plan::PlanDelta& delta) override
    {
        (void)next; // the pipeline re-derives it from its own plan + delta
        if (delta.empty())
            return arb::SwapKind::none;
        if (!delta.compatible || policy_ == SwapPolicy::rebuild_only)
            return arb::SwapKind::rebuild_required;
        if (!live()) {
            pipeline_->apply_delta(delta);
            return arb::SwapKind::delta;
        }
        if (policy_ == SwapPolicy::frame_first && delta.resize_only()
            && pipeline_->try_apply_delta_in_flight(delta, reclaim_timeout_))
            return arb::SwapKind::frame;
        return arb::SwapKind::rebuild_required;
    }

private:
    Pipeline<T>* pipeline_;
    SwapPolicy policy_;
    std::chrono::milliseconds reclaim_timeout_;
    std::atomic<bool> live_{false};
};

} // namespace amp::rt
