#pragma once
// Bounded inter-stage queue that restores stream order.
//
// Stages replicated over several workers complete frames out of order; the
// queue buffers envelopes keyed by sequence number and hands them to
// consumers strictly in order (the StreamPU "adaptor" role). Multiple
// producers and multiple consumers are supported; each envelope is delivered
// exactly once.
//
// Deadlock freedom under the bounded capacity: a push whose sequence number
// is exactly the one the consumer waits for bypasses the capacity check, so
// the frame the pipeline needs next can always enter the buffer.
//
// For fault tolerance the queue offers timed variants (`try_pop_for`,
// `try_push_for`) so that a worker blocked on a stalled or dead peer can
// periodically wake up, refresh its heartbeat and check whether the watchdog
// fenced it -- without tearing the whole pipeline down with abort(). Stale
// pushes (seq already delivered, e.g. the original frame arriving after the
// watchdog published a tombstone for it) are dropped silently.

#include "rt/envelope.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>

namespace amp::rt {

template <typename T>
class OrderedQueue {
public:
    /// Outcome of a timed push. `timed_out` is the only retryable outcome;
    /// `closed` and `stale` both consume the envelope but mean different
    /// things to the producer: closed says the whole stream is torn down
    /// (stop retrying, park), stale says only this frame is obsolete (a
    /// tombstone or replacement was already delivered past it -- drop it
    /// and move on to the next frame).
    enum class PushOutcome {
        pushed,    ///< envelope accepted (buffered)
        timed_out, ///< buffer still full after the timeout; envelope untouched
        closed,    ///< queue aborted; no envelope will ever be accepted again
        stale,     ///< seq already delivered (e.g. tombstoned); envelope dropped
    };

    /// Outcome of a timed pop. `envelope` is engaged iff an in-order
    /// envelope was available; `done` reports abort/close (no more data).
    struct PopResult {
        std::optional<Envelope<T>> envelope;
        bool done = false;
        [[nodiscard]] bool timed_out() const noexcept { return !envelope && !done; }
    };

    /// `first_seq` is the sequence number the consumer side starts waiting
    /// for -- non-zero when a pipeline resumes a partially-delivered stream.
    explicit OrderedQueue(std::size_t capacity, std::uint64_t first_seq = 0)
        : capacity_(capacity == 0 ? 1 : capacity)
        , next_seq_(first_seq)
    {
    }

    OrderedQueue(const OrderedQueue&) = delete;
    OrderedQueue& operator=(const OrderedQueue&) = delete;

    /// Blocks while the buffer is full, unless this envelope is the one the
    /// consumer is waiting for or the queue was aborted.
    void push(Envelope<T> envelope)
    {
        std::unique_lock lock{mutex_};
        not_full_.wait(lock, [&] {
            return aborted_ || buffer_.size() < capacity_ || envelope.seq == next_seq_;
        });
        if (aborted_ || envelope.seq < next_seq_)
            return;
        buffer_.emplace(envelope.seq, std::move(envelope));
        not_empty_.notify_all();
    }

    /// Timed push. On `timed_out` the envelope is left intact in `envelope`
    /// so the caller can heartbeat and retry; on `pushed`/`closed`/`stale`
    /// it has been consumed (moved from or dropped).
    PushOutcome try_push_for(Envelope<T>& envelope, std::chrono::steady_clock::duration timeout)
    {
        std::unique_lock lock{mutex_};
        const bool ready = not_full_.wait_for(lock, timeout, [&] {
            return aborted_ || buffer_.size() < capacity_ || envelope.seq == next_seq_;
        });
        if (!ready)
            return PushOutcome::timed_out;
        if (aborted_)
            return PushOutcome::closed;
        if (envelope.seq < next_seq_)
            return PushOutcome::stale;
        buffer_.emplace(envelope.seq, std::move(envelope));
        not_empty_.notify_all();
        return PushOutcome::pushed;
    }

    /// Unconditional push for control envelopes (tombstones and end-of-
    /// stream markers): never blocks and never refuses for capacity. The
    /// watchdog uses it to fill stream holes left by fenced workers -- a
    /// capacity-bounded push there can deadlock the whole pipeline: with
    /// the buffer full of frames *past* a hole, a tombstone for a seq
    /// other than `next_seq_` would wait forever, and while the watchdog
    /// waits it can never fence the worker whose tombstone *would* fill
    /// the hole. Control envelopes carry no payload, and each fence or
    /// scavenged frame contributes at most one, so the transient overfill
    /// is small and bounded. Stale and aborted envelopes are still
    /// dropped (both are consumed silently, exactly like push()).
    void force_push(Envelope<T> envelope)
    {
        std::lock_guard lock{mutex_};
        if (aborted_ || envelope.seq < next_seq_)
            return;
        buffer_.emplace(envelope.seq, std::move(envelope));
        not_empty_.notify_all();
    }

    /// Pops the next in-order envelope. Returns nullopt once the end-of-
    /// stream envelope has been delivered (to some consumer) or the queue
    /// was aborted. The end envelope itself is delivered exactly once.
    std::optional<Envelope<T>> pop()
    {
        std::unique_lock lock{mutex_};
        not_empty_.wait(lock, [&] {
            return aborted_ || closed_ || buffer_.count(next_seq_) != 0;
        });
        return pop_locked();
    }

    /// Timed pop: like pop() but gives up after `timeout` so the consumer
    /// can wake up (heartbeat, fencing check) without a full abort().
    PopResult try_pop_for(std::chrono::steady_clock::duration timeout)
    {
        std::unique_lock lock{mutex_};
        const bool ready = not_empty_.wait_for(lock, timeout, [&] {
            return aborted_ || closed_ || buffer_.count(next_seq_) != 0;
        });
        if (!ready)
            return PopResult{};
        auto envelope = pop_locked();
        if (!envelope)
            return PopResult{std::nullopt, true};
        return PopResult{std::move(envelope), false};
    }

    /// Unblocks every producer and consumer; subsequent pushes are dropped
    /// and pops return nullopt. Used on error teardown.
    void abort()
    {
        std::lock_guard lock{mutex_};
        aborted_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /// Re-arms the queue for a new stream segment starting at `first_seq`:
    /// drops any buffered envelopes and clears the closed/aborted latches.
    /// The caller must guarantee no concurrent producers or consumers (the
    /// pipeline resets its queues only between segments, with every worker
    /// parked).
    void reset(std::uint64_t first_seq)
    {
        std::lock_guard lock{mutex_};
        buffer_.clear();
        next_seq_ = first_seq;
        closed_ = false;
        aborted_ = false;
        not_full_.notify_all();
    }

    // -- overload protection (docs/FAULT_MODEL.md, "Overload model") ------

    /// Arms high/low watermark backpressure: congested() latches true once
    /// the buffer reaches `high` and releases only after it drains to
    /// `low` or below (hysteresis, so the shedder does not flap around one
    /// threshold). `high` == 0 disables; `low` is clamped below `high`.
    /// Call before producers start (pipeline materialization).
    void set_watermarks(std::size_t high, std::size_t low)
    {
        std::lock_guard lock{mutex_};
        high_watermark_ = high;
        low_watermark_ = high == 0 ? 0 : std::min(low, high - 1);
        congested_ = false;
    }

    /// Current state of the watermark latch (always false when disabled).
    [[nodiscard]] bool congested() const
    {
        std::lock_guard lock{mutex_};
        if (high_watermark_ == 0)
            return false;
        if (!congested_ && buffer_.size() >= high_watermark_)
            congested_ = true;
        else if (congested_ && buffer_.size() <= low_watermark_)
            congested_ = false;
        return congested_;
    }

    /// Load shedding: converts up to `max_shed` of the *oldest* buffered
    /// data envelopes into tombstones in place (payload released, dropped
    /// flag set) -- the stream stays contiguous and the consumer still
    /// delivers every sequence number, but the work behind the shed frames
    /// is discarded so the queue drains at tombstone speed. End-of-stream
    /// markers and existing tombstones are skipped (idempotent until new
    /// data arrives). Returns the number of envelopes actually shed; the
    /// caller owns counting them into metrics -- a shed is never silent.
    std::size_t shed_oldest(std::size_t max_shed)
    {
        std::lock_guard lock{mutex_};
        std::size_t shed = 0;
        for (auto it = buffer_.begin(); it != buffer_.end() && shed < max_shed; ++it) {
            Envelope<T>& envelope = it->second;
            if (envelope.end || envelope.dropped)
                continue;
            envelope = Envelope<T>::tombstone(envelope.seq);
            ++shed;
        }
        return shed;
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Number of buffered envelopes (for tests/metrics).
    [[nodiscard]] std::size_t buffered() const
    {
        std::lock_guard lock{mutex_};
        return buffer_.size();
    }

    /// Next sequence number the consumer side waits for (for tests/metrics).
    [[nodiscard]] std::uint64_t next_seq() const
    {
        std::lock_guard lock{mutex_};
        return next_seq_;
    }

private:
    // Requires mutex_ held and the wait predicate satisfied.
    std::optional<Envelope<T>> pop_locked()
    {
        if (aborted_ || closed_)
            return std::nullopt;
        auto node = buffer_.extract(next_seq_);
        Envelope<T> envelope = std::move(node.mapped());
        ++next_seq_;
        if (envelope.end) {
            closed_ = true;
            not_empty_.notify_all(); // release consumers waiting on later seqs
        }
        not_full_.notify_all();
        return envelope;
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::map<std::uint64_t, Envelope<T>> buffer_;
    std::uint64_t next_seq_ = 0;
    bool closed_ = false;
    bool aborted_ = false;
    std::size_t high_watermark_ = 0; ///< 0 = watermark backpressure disabled
    std::size_t low_watermark_ = 0;
    mutable bool congested_ = false; ///< hysteresis latch, updated in congested()
};

} // namespace amp::rt
