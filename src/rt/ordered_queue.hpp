#pragma once
// Bounded inter-stage queue that restores stream order.
//
// Stages replicated over several workers complete frames out of order; the
// queue buffers envelopes keyed by sequence number and hands them to
// consumers strictly in order (the StreamPU "adaptor" role). Multiple
// producers and multiple consumers are supported; each envelope is delivered
// exactly once.
//
// Deadlock freedom under the bounded capacity: a push whose sequence number
// is exactly the one the consumer waits for bypasses the capacity check, so
// the frame the pipeline needs next can always enter the buffer.

#include "rt/envelope.hpp"

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>

namespace amp::rt {

template <typename T>
class OrderedQueue {
public:
    explicit OrderedQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    OrderedQueue(const OrderedQueue&) = delete;
    OrderedQueue& operator=(const OrderedQueue&) = delete;

    /// Blocks while the buffer is full, unless this envelope is the one the
    /// consumer is waiting for or the queue was aborted.
    void push(Envelope<T> envelope)
    {
        std::unique_lock lock{mutex_};
        not_full_.wait(lock, [&] {
            return aborted_ || buffer_.size() < capacity_ || envelope.seq == next_seq_;
        });
        if (aborted_)
            return;
        buffer_.emplace(envelope.seq, std::move(envelope));
        not_empty_.notify_all();
    }

    /// Pops the next in-order envelope. Returns nullopt once the end-of-
    /// stream envelope has been delivered (to some consumer) or the queue
    /// was aborted. The end envelope itself is delivered exactly once.
    std::optional<Envelope<T>> pop()
    {
        std::unique_lock lock{mutex_};
        not_empty_.wait(lock, [&] {
            return aborted_ || closed_ || buffer_.count(next_seq_) != 0;
        });
        if (aborted_ || closed_)
            return std::nullopt;
        auto node = buffer_.extract(next_seq_);
        Envelope<T> envelope = std::move(node.mapped());
        ++next_seq_;
        if (envelope.end) {
            closed_ = true;
            not_empty_.notify_all(); // release consumers waiting on later seqs
        }
        not_full_.notify_all();
        return envelope;
    }

    /// Unblocks every producer and consumer; subsequent pushes are dropped
    /// and pops return nullopt. Used on error teardown.
    void abort()
    {
        std::lock_guard lock{mutex_};
        aborted_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Number of buffered envelopes (for tests/metrics).
    [[nodiscard]] std::size_t buffered() const
    {
        std::lock_guard lock{mutex_};
        return buffer_.size();
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::map<std::uint64_t, Envelope<T>> buffer_;
    std::uint64_t next_seq_ = 0;
    bool closed_ = false;
    bool aborted_ = false;
};

} // namespace amp::rt
