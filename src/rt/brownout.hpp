#pragma once
// Deterministic brownout controller (docs/FAULT_MODEL.md, "Overload
// model").
//
// The pipeline's overload monitor periodically samples a pressure signal in
// [0, 1] -- the worst queue-depth fraction across stages -- and feeds it
// here. The controller answers one question: is the pipeline browned out
// (allowed to shed load) right now? Two defenses against flapping:
// distinct enter/exit thresholds (hysteresis in value) and a patience count
// on each side (hysteresis in time) -- a single spiky sample neither enters
// nor exits brownout. The state machine is a pure function of the fed
// sample sequence: no clocks, no randomness, so tests and dsim can replay
// it exactly.

#include <cstdint>

namespace amp::rt {

struct BrownoutPolicy {
    /// Pressure at or above which samples count toward entering brownout.
    double enter_pressure = 0.75;
    /// Pressure at or below which samples count toward exiting brownout.
    /// Clamped to enter_pressure (exit above enter would oscillate).
    double exit_pressure = 0.50;
    /// Consecutive qualifying samples required to enter / exit.
    int enter_patience = 3;
    int exit_patience = 3;
};

class BrownoutController {
public:
    explicit BrownoutController(BrownoutPolicy policy = {})
        : policy_(policy)
    {
        if (policy_.exit_pressure > policy_.enter_pressure)
            policy_.exit_pressure = policy_.enter_pressure;
        if (policy_.enter_patience < 1)
            policy_.enter_patience = 1;
        if (policy_.exit_patience < 1)
            policy_.exit_patience = 1;
    }

    /// Feeds one pressure sample; returns the (possibly updated) state.
    bool feed(double pressure)
    {
        if (!browned_out_) {
            if (pressure >= policy_.enter_pressure) {
                if (++streak_ >= policy_.enter_patience) {
                    browned_out_ = true;
                    ++entries_;
                    streak_ = 0;
                }
            } else {
                streak_ = 0;
            }
        } else {
            if (pressure <= policy_.exit_pressure) {
                if (++streak_ >= policy_.exit_patience) {
                    browned_out_ = false;
                    streak_ = 0;
                }
            } else {
                streak_ = 0;
            }
        }
        return browned_out_;
    }

    [[nodiscard]] bool browned_out() const noexcept { return browned_out_; }
    /// Times the controller entered brownout (monotone).
    [[nodiscard]] std::uint64_t entries() const noexcept { return entries_; }
    [[nodiscard]] const BrownoutPolicy& policy() const noexcept { return policy_; }

private:
    BrownoutPolicy policy_;
    bool browned_out_ = false;
    int streak_ = 0;
    std::uint64_t entries_ = 0;
};

} // namespace amp::rt
