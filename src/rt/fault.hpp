#pragma once
// Deterministic fault injection for the streaming runtime.
//
// The paper's schedules assume a fixed, healthy resource set R = (b, l); the
// fault model this repository adds on top (docs/FAULT_MODEL.md) needs a way
// to exercise the recovery machinery reproducibly. A FaultInjector holds an
// explicit plan of faults -- each pinned to a (worker or task, frame) pair --
// and is queried by pipeline workers at well-defined points:
//
//   * `transient` : task `task` throws TransientTaskFault when it is asked to
//     process frame `frame`, for `count` consecutive attempts. Models a
//     recoverable error (e.g. a decoder hiccup); the pipeline's bounded
//     retry absorbs it.
//   * `stall`     : worker `worker` sleeps for `stall` before processing
//     frame `frame`. Models a hung thread; the watchdog fences it once its
//     heartbeat goes stale.
//   * `kill`      : worker `worker` exits silently when it picks up frame
//     `frame`, still holding it. Models a crashed thread / lost core; the
//     watchdog tombstones the held frame and, if the stage has no replica
//     left, initiates a graceful drain so the Rescheduler can take over.
//
// Workers are identified by their global index in stage-major order (the
// paper's compact placement, the same order PipelineConfig::core_map uses).
// Plans are either built explicitly (add) or drawn from a seed
// (random_plan), both fully deterministic.

#include "common/rng.hpp"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace amp::rt {

/// Thrown by the pipeline on behalf of a task under transient injection.
class TransientTaskFault : public std::runtime_error {
public:
    TransientTaskFault(int task, std::uint64_t frame);
    [[nodiscard]] int task() const noexcept { return task_; }
    [[nodiscard]] std::uint64_t frame() const noexcept { return frame_; }

private:
    int task_;
    std::uint64_t frame_;
};

enum class FaultKind { transient, stall, kill };

[[nodiscard]] constexpr const char* to_string(FaultKind kind) noexcept
{
    switch (kind) {
    case FaultKind::transient: return "transient";
    case FaultKind::stall: return "stall";
    case FaultKind::kill: return "kill";
    }
    return "?";
}

/// Transient faults match their frame exactly (every frame visits every
/// task). Stall/kill faults fire on the first frame the worker picks up
/// with seq >= `frame`, since a replicated stage gives no guarantee about
/// which worker draws which frame.
struct FaultSpec {
    FaultKind kind = FaultKind::transient;
    std::uint64_t frame = 0; ///< stream sequence number that triggers the fault
    int task = 0;            ///< transient: 1-based task index that throws
    int worker = -1;         ///< stall/kill: global worker index (stage-major)
    int count = 1;           ///< transient: consecutive attempts that throw
    std::chrono::milliseconds stall{0}; ///< stall: how long the worker hangs
};

/// Shape of a seeded random plan (see FaultInjector::random_plan).
struct RandomFaultConfig {
    std::uint64_t frames = 1000; ///< faults strike frames in [0, frames)
    int tasks = 1;               ///< chain size (transient faults pick 1..tasks)
    int workers = 1;             ///< worker count (stall/kill pick 0..workers-1)
    int transients = 0;
    int stalls = 0;
    int kills = 0;
    int transient_count = 1;
    std::chrono::milliseconds stall_duration{50};
};

class FaultInjector {
public:
    FaultInjector() = default;
    FaultInjector(FaultInjector&& other) noexcept
    {
        std::lock_guard lock{other.mutex_};
        specs_ = std::move(other.specs_);
    }
    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;
    FaultInjector& operator=(FaultInjector&&) = delete;

    void add(FaultSpec spec);

    /// Deterministic plan drawn from `seed`: same seed, same plan, on every
    /// platform (amp::Rng streams are implementation-independent).
    [[nodiscard]] static FaultInjector random_plan(std::uint64_t seed,
                                                   const RandomFaultConfig& config);

    /// True when task `task` must throw for frame `frame`. Consumes one
    /// `count` from the matching spec, so a bounded retry eventually
    /// succeeds. Thread-safe.
    [[nodiscard]] bool should_throw(int task, std::uint64_t frame);

    /// Stall duration for worker `worker` about to process `frame` (zero if
    /// none). One-shot per spec. Thread-safe.
    [[nodiscard]] std::chrono::milliseconds stall_before(int worker, std::uint64_t frame);

    /// True when worker `worker` must die while holding `frame`. One-shot
    /// per spec. Thread-safe.
    [[nodiscard]] bool should_kill(int worker, std::uint64_t frame);

    /// True when the plan contains stall/kill faults, which only make sense
    /// under a watchdog (a silent death would otherwise hang the pipeline).
    [[nodiscard]] bool has_liveness_faults() const;

    /// Faults (or transient attempts) not yet consumed; 0 once every
    /// planned fault fired.
    [[nodiscard]] std::size_t pending() const;

    [[nodiscard]] std::vector<FaultSpec> plan() const;

private:
    mutable std::mutex mutex_;
    std::vector<FaultSpec> specs_;
};

} // namespace amp::rt
