#pragma once
// Sequential per-task latency profiler: runs a task sequence on a stream of
// frames single-threaded and reports the average latency of every task in
// microseconds. This mirrors the paper's profiling step that feeds Table III
// and the schedule computations of Table II.

#include "core/chain.hpp"
#include "rt/task.hpp"

#include <chrono>
#include <vector>

namespace amp::rt {

struct TaskProfile {
    std::vector<double> latency_us; ///< average per-task latency, 1-based order
};

/// Runs `frames` frames through the sequence (in order, single thread) and
/// averages each task's wall-clock latency. `warmup` frames are executed
/// first and excluded from the averages.
template <typename T>
[[nodiscard]] TaskProfile profile_sequence(TaskSequence<T>& sequence, std::uint64_t frames,
                                           std::uint64_t warmup = 2)
{
    const int n = sequence.size();
    std::vector<double> totals(static_cast<std::size_t>(n), 0.0);

    for (std::uint64_t f = 0; f < warmup + frames; ++f) {
        T frame{};
        if constexpr (requires(T& p) { p.seq = f; })
            frame.seq = f;
        for (int i = 1; i <= n; ++i) {
            const auto begin = std::chrono::steady_clock::now();
            sequence.task(i).process(frame);
            const auto stop = std::chrono::steady_clock::now();
            if (f >= warmup)
                totals[static_cast<std::size_t>(i - 1)] +=
                    std::chrono::duration<double, std::micro>(stop - begin).count();
        }
    }

    TaskProfile profile;
    profile.latency_us.reserve(totals.size());
    for (const double total : totals)
        profile.latency_us.push_back(frames > 0 ? total / static_cast<double>(frames) : 0.0);
    return profile;
}

/// Builds the scheduler chain from a big-core profile and per-task
/// little-core slowdown factors (w^L = w^B * factor).
template <typename T>
[[nodiscard]] core::TaskChain to_scheduler_chain(const TaskSequence<T>& sequence,
                                                 const TaskProfile& big_profile,
                                                 const std::vector<double>& little_factors)
{
    std::vector<double> little(big_profile.latency_us.size());
    for (std::size_t i = 0; i < little.size(); ++i)
        little[i] = big_profile.latency_us[i]
            * (i < little_factors.size() ? little_factors[i] : 1.0);
    return sequence.to_core_chain(big_profile.latency_us, little);
}

} // namespace amp::rt
