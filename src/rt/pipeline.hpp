#pragma once
// Threaded pipeline executor: turns a scheduling Solution into running
// worker threads connected by order-restoring bounded queues (the StreamPU
// execution model, including the v1.6.0 extension that connects consecutive
// replicated stages -- possibly of different core types).
//
// Stage i of the solution becomes r_i workers, each executing the stage's
// task interval on every frame it pulls. Replicated stages clone their
// (stateless) tasks once per extra worker. Sequential stages keep a single
// worker and therefore observe frames in stream order, which is what makes
// stateful tasks safe.
//
// Fault tolerance (docs/FAULT_MODEL.md): every worker maintains a heartbeat
// that it refreshes whenever it makes progress or wakes from a bounded wait.
// An optional watchdog thread (enabled by PipelineConfig::heartbeat_timeout)
// fences workers whose heartbeat goes stale -- crashed or hung threads --
// publishing a tombstone for the frame the worker held so downstream
// consumers can advance, and, when a stage loses its last worker, initiating
// a graceful drain: the source stops producing, a scavenger flushes the dead
// stage's input in stream order (as tombstones), and the run returns a
// degraded-but-ordered result instead of aborting. Transient task failures
// are absorbed by a bounded retry with exponential backoff. A run that ends
// early reports `stream_end`, the exact resume point for a rescheduled
// pipeline (see rt/rescheduler.hpp).

#include "core/chain.hpp"
#include "core/solution.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "rt/core_emulator.hpp"
#include "rt/fault.hpp"
#include "rt/ordered_queue.hpp"
#include "rt/task.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace amp::rt {

struct PipelineConfig {
    std::size_t queue_capacity = 8;      ///< per-adaptor buffered frames
    CoreEmulator* emulator = nullptr;    ///< optional core-type emulation
    /// Optional thread placement: worker k (in stage-major order, i.e. the
    /// paper's compact placement) is pinned to CPU core_map[k % size]. Empty
    /// = no pinning. Ignored on platforms without affinity support.
    std::vector<int> core_map{};

    /// First frame of the stream this run produces: frames [first_frame,
    /// num_frames) flow through the pipeline. Non-zero when resuming a
    /// stream after a failure (the new pipeline picks up at the previous
    /// run's `stream_end`).
    std::uint64_t first_frame = 0;

    /// Optional fault injection hooks (tests, recovery benchmarks).
    FaultInjector* faults = nullptr;

    /// Transient-failure policy: a task throw is retried up to
    /// `max_task_retries` times per frame, sleeping retry_backoff *
    /// retry_backoff_factor^attempt between attempts. The frame payload is
    /// restored from a pre-attempt copy when T is copyable; otherwise tasks
    /// must tolerate re-execution on a partially-processed frame. Keep the
    /// worst-case total backoff below heartbeat_timeout, or the watchdog
    /// will fence the retrying worker.
    int max_task_retries = 0;
    std::chrono::microseconds retry_backoff{200};
    double retry_backoff_factor = 2.0;

    /// Watchdog: a worker whose heartbeat is older than heartbeat_timeout
    /// is declared lost (fenced). Zero disables the watchdog (and with it,
    /// recovery from kill/stall faults). The timeout must exceed the
    /// worst-case per-frame latency of any stage, or healthy-but-slow
    /// workers get fenced.
    std::chrono::milliseconds heartbeat_timeout{0};
    std::chrono::milliseconds watchdog_poll{2};

    /// Optional telemetry sink (docs/OBSERVABILITY.md): workers record task
    /// spans, queue waits, heartbeats, retries and tombstones into it.
    /// nullptr (or a disabled sink) costs one branch per event.
    obs::Sink* sink = nullptr;
};

/// One fenced (permanently lost) worker.
struct WorkerLoss {
    int worker = -1;                          ///< global stage-major index
    int stage = -1;                           ///< stage the worker served
    core::CoreType type = core::CoreType::big; ///< core type lost with it
    std::uint64_t held_frame = 0;             ///< frame it held (kNoFrame if idle)

    static constexpr std::uint64_t kNoFrame = std::numeric_limits<std::uint64_t>::max();
};

struct RunResult {
    std::uint64_t frames = 0;        ///< frames delivered to the drain
    double elapsed_seconds = 0.0;
    std::uint64_t frames_dropped = 0; ///< tombstones (frames lost to failures)
    std::uint64_t retries = 0;        ///< transient faults absorbed by retry
    /// One past the last stream position this run accounted for (delivered
    /// or dropped). Equals the requested frame count on a full run; on a
    /// degraded early drain it is the exact `first_frame` to resume from.
    std::uint64_t stream_end = 0;
    /// Time from run start to the first worker loss; negative when healthy.
    double failure_seconds = -1.0;
    std::vector<WorkerLoss> losses;   ///< workers fenced by the watchdog

    [[nodiscard]] bool degraded() const noexcept { return !losses.empty(); }
    [[nodiscard]] double fps() const noexcept
    {
        return elapsed_seconds > 0.0 ? static_cast<double>(frames) / elapsed_seconds : 0.0;
    }
};

/// Pins the calling thread to the given CPU. Returns false when pinning is
/// unsupported or fails (never fatal: placement is a performance hint).
inline bool pin_current_thread_to_cpu([[maybe_unused]] int cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
    return false;
#endif
}

template <typename T>
class Pipeline {
public:
    /// The sequence must outlive the pipeline. Throws if the solution does
    /// not cover the chain or replicates a stage containing stateful tasks.
    Pipeline(TaskSequence<T>& sequence, core::Solution solution, PipelineConfig config = {})
        : sequence_(sequence)
        , solution_(std::move(solution))
        , config_(config)
    {
        validate();
    }

    /// Processes frames [config.first_frame, num_frames) end to end.
    /// `on_output` (optional) is invoked on the main thread, in stream
    /// order, with each final frame.
    RunResult run(std::uint64_t num_frames, const std::function<void(T&)>& on_output = {})
    {
        if (config_.first_frame > num_frames)
            throw std::invalid_argument{"Pipeline::run: first_frame past the stream end"};

        const auto& stages = solution_.stages();
        const std::size_t k = stages.size();

        RunState st;
        st.num_frames = num_frames;
        st.next_frame.store(config_.first_frame);
        st.beat_interval = config_.heartbeat_timeout.count() > 0
            ? std::max<std::chrono::milliseconds>(std::chrono::milliseconds{1},
                                                  config_.heartbeat_timeout / 4)
            : std::chrono::milliseconds{50};

        // Queue q[i] connects stage i to stage i+1; q[k-1] feeds the drain.
        st.queues.reserve(k);
        for (std::size_t i = 0; i < k; ++i)
            st.queues.push_back(
                std::make_unique<OrderedQueue<T>>(config_.queue_capacity, config_.first_frame));

        st.live_in_stage = std::vector<std::atomic<int>>(k);
        for (std::size_t s = 0; s < k; ++s)
            st.live_in_stage[s].store(stages[s].cores);

        // Resolve telemetry handles up front; workers then record through
        // raw pointers (no locks, no lookups) or skip on one branch.
        obs::Sink* const sink =
            config_.sink != nullptr && config_.sink->enabled() ? config_.sink : nullptr;
        ObsHooks& ob = st.obs;
        if (sink != nullptr) {
            ob.active = true;
            if (sink->metrics_enabled()) {
                obs::MetricsRegistry& m = sink->metrics();
                ob.metrics = &m;
                ob.frames_delivered = &m.counter(obs::schema::kFramesDelivered);
                ob.frames_dropped = &m.counter(obs::schema::kFramesDropped);
                ob.retries = &m.counter(obs::schema::kRetries);
                ob.heartbeats = &m.counter(obs::schema::kHeartbeats);
                ob.fenced = &m.counter(obs::schema::kWorkersFenced);
                for (std::size_t s = 0; s < k; ++s) {
                    const int stage_index = static_cast<int>(s);
                    ob.stage_latency.push_back(
                        &m.histogram(obs::schema::stage_latency(stage_index)));
                    ob.queue_wait.push_back(&m.histogram(obs::schema::queue_wait(stage_index)));
                }
            }
            if (sink->trace_enabled()) {
                obs::TraceRecorder& tr = sink->trace();
                ob.trace = &tr;
                ob.track_base = tr.track_count();
                for (std::size_t s = 0; s < k; ++s)
                    ob.span_names.push_back(tr.intern(obs::schema::stage_span(
                        static_cast<int>(s), stages[s].first, stages[s].last)));
                ob.retry_name = tr.intern(obs::schema::kRetry);
                ob.tombstone_name = tr.intern(obs::schema::kTombstone);
                ob.fence_name = tr.intern(obs::schema::kFence);
            }
        }

        // Per-worker task instances: worker 0 of each stage borrows the
        // originals; extra (replica) workers own clones.
        std::vector<std::vector<std::unique_ptr<Task<T>>>> clone_storage;
        std::vector<std::vector<Task<T>*>> worker_tasks;
        for (std::size_t s = 0; s < k; ++s) {
            const core::Stage& stage = stages[s];
            for (int w = 0; w < stage.cores; ++w) {
                auto record = std::make_unique<WorkerRecord>();
                record->index = static_cast<int>(st.workers.size());
                record->stage = static_cast<int>(s);
                record->last_beat_ns.store(now_ns());
                if (ob.trace != nullptr)
                    ob.trace->add_track(
                        obs::schema::worker_track(record->index, record->stage));
                st.workers.push_back(std::move(record));
                if (w == 0) {
                    worker_tasks.push_back(sequence_.stage_view(stage.first, stage.last));
                } else {
                    clone_storage.push_back(sequence_.stage_clones(stage.first, stage.last));
                    std::vector<Task<T>*> tasks;
                    for (auto& owned : clone_storage.back())
                        tasks.push_back(owned.get());
                    worker_tasks.push_back(std::move(tasks));
                }
            }
        }

        if (ob.trace != nullptr)
            ob.watchdog_track = ob.trace->add_track(obs::schema::kWatchdogTrack);

        std::vector<std::thread> threads;
        threads.reserve(st.workers.size());
        const auto start = std::chrono::steady_clock::now();
        st.start = start;

        std::thread watchdog;
        if (config_.heartbeat_timeout.count() > 0)
            watchdog = std::thread{[this, &st] { watchdog_loop(st); }};

        for (std::size_t w = 0; w < st.workers.size(); ++w) {
            WorkerRecord& me = *st.workers[w];
            const core::Stage& stage = stages[static_cast<std::size_t>(me.stage)];
            OrderedQueue<T>* in = me.stage == 0 ? nullptr : st.queues[me.stage - 1].get();
            OrderedQueue<T>* out = st.queues[me.stage].get();
            const int pin_cpu = config_.core_map.empty()
                ? -1
                : config_.core_map[w % config_.core_map.size()];
            threads.emplace_back([this, &st, &me, &stage, in, out, pin_cpu,
                                  tasks = std::move(worker_tasks[w])] {
                if (pin_cpu >= 0)
                    (void)pin_current_thread_to_cpu(pin_cpu);
                try {
                    if (in == nullptr)
                        source_loop(st, me, stage, tasks, *out);
                    else
                        stage_loop(st, me, stage, tasks, *in, *out);
                } catch (...) {
                    me.exited.store(true);
                    record_error(st, std::current_exception());
                    (void)retire(st, me);
                }
            });
        }

        // Drain the final queue in order on this thread. Tombstones are
        // frames lost to worker failures; they keep the stream contiguous
        // but are not handed to `on_output`.
        std::uint64_t delivered = 0;
        std::uint64_t dropped = 0;
        std::uint64_t end_seq = config_.first_frame;
        bool end_seen = false;
        try {
            while (auto envelope = st.queues.back()->pop()) {
                if (envelope->end) {
                    end_seq = envelope->seq;
                    end_seen = true;
                    break;
                }
                if (envelope->dropped) {
                    ++dropped;
                    continue;
                }
                if (on_output)
                    on_output(envelope->payload);
                ++delivered;
            }
        } catch (...) {
            record_error(st, std::current_exception());
        }

        for (auto& thread : threads)
            thread.join();
        st.shutdown.store(true);
        if (watchdog.joinable())
            watchdog.join();
        {
            std::lock_guard lock{st.scavenger_mutex};
            for (auto& scavenger : st.scavengers)
                scavenger.join();
        }
        const auto stop = std::chrono::steady_clock::now();

        if (st.first_error)
            std::rethrow_exception(st.first_error);

        RunResult result;
        result.frames = delivered;
        result.elapsed_seconds = std::chrono::duration<double>(stop - start).count();
        result.frames_dropped = dropped;
        result.retries = st.retries.load();
        result.stream_end = end_seen ? end_seq : config_.first_frame + delivered + dropped;
        {
            std::lock_guard lock{st.loss_mutex};
            result.losses = st.losses;
            result.failure_seconds = st.failure_seconds;
        }
        if (ob.metrics != nullptr) {
            // Workers have quiesced: bulk-add the drain totals and stamp the
            // run gauges.
            ob.frames_delivered->add(0, delivered);
            ob.frames_dropped->add(0, dropped);
            ob.metrics->gauge(obs::schema::kRunElapsedSeconds).set(result.elapsed_seconds);
            ob.metrics->gauge(obs::schema::kRunFps).set(result.fps());
        }
        return result;
    }

    [[nodiscard]] const core::Solution& solution() const noexcept { return solution_; }

private:
    static constexpr std::uint64_t kNoFrame = WorkerLoss::kNoFrame;

    struct WorkerRecord {
        std::atomic<std::int64_t> last_beat_ns{0};
        std::atomic<std::uint64_t> holding{WorkerLoss::kNoFrame};
        std::atomic<bool> fenced{false};
        std::atomic<bool> exited{false};
        std::atomic<bool> retired{false};
        int index = 0;
        int stage = 0;
    };

    /// Telemetry handles resolved once per run so the hot path never takes
    /// the registry mutex or interns names. All pointers null when the run
    /// has no (enabled) sink.
    struct ObsHooks {
        obs::MetricsRegistry* metrics = nullptr;
        obs::TraceRecorder* trace = nullptr;
        std::size_t track_base = 0;     ///< worker w records on track_base + w
        std::size_t watchdog_track = 0; ///< fence/tombstone instants
        std::vector<obs::Histogram*> stage_latency; ///< per stage, us
        std::vector<obs::Histogram*> queue_wait;    ///< per stage, us
        obs::Counter* frames_delivered = nullptr;
        obs::Counter* frames_dropped = nullptr;
        obs::Counter* retries = nullptr;
        obs::Counter* heartbeats = nullptr;
        obs::Counter* fenced = nullptr;
        std::vector<std::uint32_t> span_names; ///< per stage, interned
        std::uint32_t retry_name = 0;
        std::uint32_t tombstone_name = 0;
        std::uint32_t fence_name = 0;
        bool active = false;
    };

    struct RunState {
        std::vector<std::unique_ptr<OrderedQueue<T>>> queues;
        ObsHooks obs;
        std::vector<std::unique_ptr<WorkerRecord>> workers;
        std::vector<std::atomic<int>> live_in_stage;
        std::atomic<std::uint64_t> next_frame{0};
        std::atomic<std::uint64_t> retries{0};
        std::atomic<bool> stop_source{false};
        std::atomic<bool> end_pushed{false};
        std::atomic<bool> shutdown{false};
        std::uint64_t num_frames = 0;
        std::chrono::milliseconds beat_interval{50};
        std::chrono::steady_clock::time_point start{};

        std::mutex error_mutex;
        std::exception_ptr first_error;

        std::mutex loss_mutex;
        std::vector<WorkerLoss> losses;
        double failure_seconds = -1.0;

        std::mutex scavenger_mutex;
        std::vector<std::thread> scavengers;
    };

    [[nodiscard]] static std::int64_t now_ns()
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    static void beat(RunState& st, WorkerRecord& me)
    {
        me.last_beat_ns.store(now_ns());
        if (st.obs.heartbeats != nullptr)
            st.obs.heartbeats->inc(static_cast<std::size_t>(me.index));
    }

    [[nodiscard]] static double us_since(const RunState& st,
                                         std::chrono::steady_clock::time_point t)
    {
        return std::chrono::duration<double, std::micro>(t - st.start).count();
    }

    static void obs_record_span(RunState& st, const WorkerRecord& me,
                                std::chrono::steady_clock::time_point t0,
                                std::chrono::steady_clock::time_point t1, std::uint64_t seq)
    {
        ObsHooks& ob = st.obs;
        const auto s = static_cast<std::size_t>(me.stage);
        if (!ob.stage_latency.empty())
            ob.stage_latency[s]->record_duration(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0));
        if (ob.trace != nullptr)
            ob.trace->emit_complete(ob.track_base + static_cast<std::size_t>(me.index),
                                    ob.span_names[s], us_since(st, t0),
                                    std::chrono::duration<double, std::micro>(t1 - t0).count(),
                                    seq, me.stage);
    }

    static void obs_record_retry(RunState& st, const WorkerRecord& me, std::uint64_t seq)
    {
        ObsHooks& ob = st.obs;
        if (ob.retries != nullptr)
            ob.retries->inc(static_cast<std::size_t>(me.index));
        if (ob.trace != nullptr)
            ob.trace->emit_instant(ob.track_base + static_cast<std::size_t>(me.index),
                                   ob.retry_name,
                                   us_since(st, std::chrono::steady_clock::now()), seq,
                                   me.stage);
    }

    void validate() const
    {
        if (solution_.empty())
            throw std::invalid_argument{"Pipeline: empty solution"};
        int expected = 1;
        for (const core::Stage& stage : solution_.stages()) {
            if (stage.first != expected || stage.last < stage.first)
                throw std::invalid_argument{"Pipeline: stages must tile the chain contiguously"};
            if (stage.cores < 1)
                throw std::invalid_argument{"Pipeline: every stage needs at least one core"};
            if (stage.cores > 1)
                for (int i = stage.first; i <= stage.last; ++i)
                    if (sequence_.task(i).stateful())
                        throw std::invalid_argument{
                            "Pipeline: replicated stage contains stateful task '"
                            + sequence_.task(i).name() + "'"};
            expected = stage.last + 1;
        }
        if (expected != sequence_.size() + 1)
            throw std::invalid_argument{"Pipeline: solution does not cover the whole chain"};
        if (config_.faults != nullptr && config_.faults->has_liveness_faults()
            && config_.heartbeat_timeout.count() == 0)
            throw std::invalid_argument{
                "Pipeline: kill/stall fault injection requires the watchdog "
                "(set PipelineConfig::heartbeat_timeout)"};
    }

    void record_error(RunState& st, std::exception_ptr error)
    {
        {
            std::lock_guard lock{st.error_mutex};
            if (!st.first_error)
                st.first_error = error;
        }
        for (auto& queue : st.queues)
            queue->abort();
    }

    /// Decrements the stage's live-worker count exactly once per worker.
    /// Returns true when this call retired the stage's last worker.
    static bool retire(RunState& st, WorkerRecord& me)
    {
        if (me.retired.exchange(true))
            return false;
        return st.live_in_stage[static_cast<std::size_t>(me.stage)].fetch_sub(1) == 1;
    }

    void run_tasks(const core::Stage& stage, const std::vector<Task<T>*>& tasks, T& frame,
                   std::uint64_t seq)
    {
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            const int task_index = stage.first + static_cast<int>(t);
            if (config_.faults != nullptr && config_.faults->should_throw(task_index, seq))
                throw TransientTaskFault{task_index, seq};
            if (config_.emulator != nullptr) {
                const auto begin = std::chrono::steady_clock::now();
                tasks[t]->process(frame);
                const auto elapsed = std::chrono::steady_clock::now() - begin;
                config_.emulator->after_task(
                    task_index, stage.type,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
            } else {
                tasks[t]->process(frame);
            }
        }
    }

    /// Runs the stage's tasks on one frame with the bounded-retry policy.
    /// Throws (the last failure) once the retry budget is exhausted.
    void process_frame(RunState& st, WorkerRecord& me, const core::Stage& stage,
                       const std::vector<Task<T>*>& tasks, Envelope<T>& envelope)
    {
        constexpr bool restorable =
            std::is_copy_constructible_v<T> && std::is_copy_assignable_v<T>;
        T backup{};
        if constexpr (restorable) {
            if (config_.max_task_retries > 0)
                backup = envelope.payload;
        }
        for (int attempt = 0;; ++attempt) {
            try {
                run_tasks(stage, tasks, envelope.payload, envelope.seq);
                return;
            } catch (...) {
                if (attempt >= config_.max_task_retries)
                    throw;
                st.retries.fetch_add(1);
                if (st.obs.active)
                    obs_record_retry(st, me, envelope.seq);
                if constexpr (restorable)
                    envelope.payload = backup;
                const auto backoff = std::chrono::microseconds{static_cast<std::int64_t>(
                    static_cast<double>(config_.retry_backoff.count())
                    * std::pow(config_.retry_backoff_factor, attempt))};
                beat(st, me);
                std::this_thread::sleep_for(backoff);
                beat(st, me);
            }
        }
    }

    /// Pushes with periodic heartbeats so a worker blocked on a full queue
    /// stays visibly alive. Returns false when the queue rejected the
    /// envelope (abort, or the frame was already delivered as a tombstone).
    bool push_with_beat(RunState& st, WorkerRecord& me, OrderedQueue<T>& out,
                        Envelope<T> envelope)
    {
        for (;;) {
            const auto outcome = out.try_push_for(envelope, st.beat_interval);
            if (outcome == OrderedQueue<T>::PushOutcome::pushed)
                return true;
            if (outcome == OrderedQueue<T>::PushOutcome::rejected)
                return false;
            beat(st, me);
        }
    }

    void source_loop(RunState& st, WorkerRecord& me, const core::Stage& stage,
                     const std::vector<Task<T>*>& tasks, OrderedQueue<T>& out)
    {
        for (;;) {
            beat(st, me);
            if (me.fenced.load())
                return; // watchdog already did the bookkeeping
            if (st.stop_source.load())
                break;
            const std::uint64_t seq = st.next_frame.fetch_add(1, std::memory_order_relaxed);
            if (seq >= st.num_frames) {
                if (seq == st.num_frames && !st.end_pushed.exchange(true))
                    push_with_beat(st, me, out, Envelope<T>::end_of_stream(st.num_frames));
                break;
            }
            me.holding.store(seq);
            if (config_.faults != nullptr) {
                if (config_.faults->should_kill(me.index, seq))
                    return; // silent death, frame still held -> watchdog recovers
                const auto stall = config_.faults->stall_before(me.index, seq);
                if (stall.count() > 0)
                    std::this_thread::sleep_for(stall);
            }
            Envelope<T> envelope = Envelope<T>::data(seq, T{});
            if constexpr (requires(T& p) { p.seq = seq; })
                envelope.payload.seq = seq; // payloads may carry their identity
            std::chrono::steady_clock::time_point span_begin{};
            if (st.obs.active)
                span_begin = std::chrono::steady_clock::now();
            process_frame(st, me, stage, tasks, envelope);
            if (st.obs.active)
                obs_record_span(st, me, span_begin, std::chrono::steady_clock::now(), seq);
            beat(st, me);
            if (me.holding.exchange(kNoFrame) == kNoFrame)
                return; // watchdog presumed us dead and tombstoned the frame
            if (!push_with_beat(st, me, out, std::move(envelope)))
                break;
        }
        me.exited.store(true);
        // The last source out owns the end-of-stream marker when the stream
        // was cut short (stop_source or failures); on a full run the claimant
        // of seq == num_frames already pushed it above.
        if (retire(st, me) && !st.end_pushed.exchange(true)) {
            const std::uint64_t end_seq = std::min(st.next_frame.load(), st.num_frames);
            push_with_beat(st, me, out, Envelope<T>::end_of_stream(end_seq));
        }
    }

    void stage_loop(RunState& st, WorkerRecord& me, const core::Stage& stage,
                    const std::vector<Task<T>*>& tasks, OrderedQueue<T>& in,
                    OrderedQueue<T>& out)
    {
        // Input-wait accounting spans timed-out pops: the clock starts when
        // the worker first goes hungry and stops at the successful pop.
        std::chrono::steady_clock::time_point wait_from{};
        bool waiting = false;
        for (;;) {
            beat(st, me);
            if (me.fenced.load())
                return;
            if (st.obs.active && !waiting) {
                wait_from = std::chrono::steady_clock::now();
                waiting = true;
            }
            auto popped = in.try_pop_for(st.beat_interval);
            if (popped.timed_out())
                continue;
            if (st.obs.active) {
                waiting = false;
                if (!st.obs.queue_wait.empty())
                    st.obs.queue_wait[static_cast<std::size_t>(me.stage)]->record_duration(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - wait_from));
            }
            if (popped.done)
                break; // aborted, or a sibling forwarded the end marker
            Envelope<T> envelope = std::move(*popped.envelope);
            if (envelope.end) {
                push_with_beat(st, me, out, std::move(envelope));
                break;
            }
            if (envelope.dropped) { // tombstone: forward unprocessed
                if (!push_with_beat(st, me, out, std::move(envelope)))
                    break;
                continue;
            }
            me.holding.store(envelope.seq);
            if (config_.faults != nullptr) {
                if (config_.faults->should_kill(me.index, envelope.seq))
                    return; // silent death, frame still held -> watchdog recovers
                const auto stall = config_.faults->stall_before(me.index, envelope.seq);
                if (stall.count() > 0)
                    std::this_thread::sleep_for(stall);
            }
            std::chrono::steady_clock::time_point span_begin{};
            if (st.obs.active)
                span_begin = std::chrono::steady_clock::now();
            process_frame(st, me, stage, tasks, envelope);
            if (st.obs.active)
                obs_record_span(st, me, span_begin, std::chrono::steady_clock::now(),
                                envelope.seq);
            beat(st, me);
            if (me.holding.exchange(kNoFrame) == kNoFrame)
                return; // watchdog presumed us dead and tombstoned the frame
            if (!push_with_beat(st, me, out, std::move(envelope)))
                break;
        }
        me.exited.store(true);
        (void)retire(st, me);
    }

    // -- watchdog ---------------------------------------------------------

    void watchdog_loop(RunState& st)
    {
        const auto timeout_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(config_.heartbeat_timeout)
                .count();
        while (!st.shutdown.load()) {
            std::this_thread::sleep_for(config_.watchdog_poll);
            const std::int64_t now = now_ns();
            for (auto& worker : st.workers) {
                if (worker->exited.load() || worker->fenced.load())
                    continue;
                if (now - worker->last_beat_ns.load() > timeout_ns)
                    fence(st, *worker);
            }
        }
    }

    /// Declares a worker permanently lost: records the loss, tombstones the
    /// frame it held, and starts a graceful drain if its stage is now empty.
    void fence(RunState& st, WorkerRecord& me)
    {
        me.fenced.store(true);
        const core::Stage& stage = solution_.stage(static_cast<std::size_t>(me.stage));
        const std::uint64_t held = me.holding.exchange(kNoFrame);
        {
            std::lock_guard lock{st.loss_mutex};
            if (st.failure_seconds < 0.0)
                st.failure_seconds =
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - st.start)
                        .count();
            st.losses.push_back(WorkerLoss{me.index, me.stage, stage.type, held});
        }
        {
            // Trace instants go on the watchdog's own track: the fenced
            // worker may still be alive and writing to its ring.
            ObsHooks& ob = st.obs;
            if (ob.fenced != nullptr)
                ob.fenced->inc(static_cast<std::size_t>(me.index));
            if (ob.trace != nullptr) {
                const double now_us = us_since(st, std::chrono::steady_clock::now());
                ob.trace->emit_instant(ob.watchdog_track, ob.fence_name, now_us,
                                       held == kNoFrame ? obs::TraceEvent::kNoFrame : held,
                                       me.stage);
                if (held != kNoFrame)
                    ob.trace->emit_instant(ob.watchdog_track, ob.tombstone_name, now_us, held,
                                           me.stage);
            }
        }
        if (held != kNoFrame)
            watchdog_push(st, *st.queues[static_cast<std::size_t>(me.stage)],
                          Envelope<T>::tombstone(held));
        if (retire(st, me))
            initiate_drain(st, me.stage);
    }

    /// The stage lost its last worker: no frame can cross it any more. Stop
    /// the source and flush everything already in flight, in stream order.
    void initiate_drain(RunState& st, int stage)
    {
        st.stop_source.store(true);
        if (stage == 0) {
            if (!st.end_pushed.exchange(true)) {
                const std::uint64_t end_seq = std::min(st.next_frame.load(), st.num_frames);
                watchdog_push(st, *st.queues[0], Envelope<T>::end_of_stream(end_seq));
            }
            return;
        }
        std::lock_guard lock{st.scavenger_mutex};
        st.scavengers.emplace_back([this, &st, stage] { scavenge(st, stage); });
    }

    /// Stands in for a fully-dead stage: converts its input frames into
    /// tombstones on its output queue and forwards the end marker, so the
    /// tail of the pipeline drains in order.
    void scavenge(RunState& st, int stage)
    {
        OrderedQueue<T>& in = *st.queues[static_cast<std::size_t>(stage - 1)];
        OrderedQueue<T>& out = *st.queues[static_cast<std::size_t>(stage)];
        for (;;) {
            auto popped = in.try_pop_for(std::chrono::milliseconds{5});
            if (popped.timed_out()) {
                if (st.shutdown.load())
                    return;
                continue;
            }
            if (popped.done)
                return;
            Envelope<T> envelope = std::move(*popped.envelope);
            const bool end = envelope.end;
            if (!end && !envelope.dropped)
                envelope = Envelope<T>::tombstone(envelope.seq);
            watchdog_push(st, out, std::move(envelope));
            if (end)
                return;
        }
    }

    /// Bounded-retry push used by the watchdog and scavengers (they have no
    /// heartbeat; they just refuse to block past shutdown).
    void watchdog_push(RunState& st, OrderedQueue<T>& queue, Envelope<T> envelope)
    {
        for (;;) {
            if (queue.try_push_for(envelope, std::chrono::milliseconds{5})
                != OrderedQueue<T>::PushOutcome::timed_out)
                return;
            if (st.shutdown.load())
                return;
        }
    }

    TaskSequence<T>& sequence_;
    core::Solution solution_;
    PipelineConfig config_;
};

} // namespace amp::rt
