#pragma once
// Threaded pipeline executor: turns a scheduling Solution into running
// worker threads connected by order-restoring bounded queues (the StreamPU
// execution model, including the v1.6.0 extension that connects consecutive
// replicated stages -- possibly of different core types).
//
// Stage i of the solution becomes r_i workers, each executing the stage's
// task interval on every frame it pulls. Replicated stages clone their
// (stateless) tasks once per extra worker. Sequential stages keep a single
// worker and therefore observe frames in stream order, which is what makes
// stateful tasks safe.

#include "core/chain.hpp"
#include "core/solution.hpp"
#include "rt/core_emulator.hpp"
#include "rt/ordered_queue.hpp"
#include "rt/task.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace amp::rt {

struct PipelineConfig {
    std::size_t queue_capacity = 8;      ///< per-adaptor buffered frames
    CoreEmulator* emulator = nullptr;    ///< optional core-type emulation
    /// Optional thread placement: worker k (in stage-major order, i.e. the
    /// paper's compact placement) is pinned to CPU core_map[k % size]. Empty
    /// = no pinning. Ignored on platforms without affinity support.
    std::vector<int> core_map{};
};

struct RunResult {
    std::uint64_t frames = 0;
    double elapsed_seconds = 0.0;
    [[nodiscard]] double fps() const noexcept
    {
        return elapsed_seconds > 0.0 ? static_cast<double>(frames) / elapsed_seconds : 0.0;
    }
};

/// Pins the calling thread to the given CPU. Returns false when pinning is
/// unsupported or fails (never fatal: placement is a performance hint).
inline bool pin_current_thread_to_cpu([[maybe_unused]] int cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
    return false;
#endif
}

template <typename T>
class Pipeline {
public:
    /// The sequence must outlive the pipeline. Throws if the solution does
    /// not cover the chain or replicates a stage containing stateful tasks.
    Pipeline(TaskSequence<T>& sequence, core::Solution solution, PipelineConfig config = {})
        : sequence_(sequence)
        , solution_(std::move(solution))
        , config_(config)
    {
        validate();
    }

    /// Processes `num_frames` frames end to end. `on_output` (optional) is
    /// invoked on the main thread, in stream order, with each final frame.
    RunResult run(std::uint64_t num_frames, const std::function<void(T&)>& on_output = {})
    {
        const auto& stages = solution_.stages();
        const std::size_t k = stages.size();

        // Queue q[i] connects stage i to stage i+1; q[k-1] feeds the drain.
        std::vector<std::unique_ptr<OrderedQueue<T>>> queues;
        queues.reserve(k);
        for (std::size_t i = 0; i < k; ++i)
            queues.push_back(std::make_unique<OrderedQueue<T>>(config_.queue_capacity));

        std::atomic<std::uint64_t> next_frame{0};
        std::mutex error_mutex;
        std::exception_ptr first_error;
        auto record_error = [&](std::exception_ptr error) {
            {
                std::lock_guard lock{error_mutex};
                if (!first_error)
                    first_error = error;
            }
            for (auto& queue : queues)
                queue->abort();
        };

        // Per-worker task instances: worker 0 of each stage borrows the
        // originals; extra (replica) workers own clones.
        std::vector<std::vector<std::unique_ptr<Task<T>>>> clone_storage;
        std::vector<std::thread> workers;
        const auto start = std::chrono::steady_clock::now();

        for (std::size_t s = 0; s < k; ++s) {
            const core::Stage& stage = stages[s];
            OrderedQueue<T>* in = s == 0 ? nullptr : queues[s - 1].get();
            OrderedQueue<T>* out = queues[s].get();
            for (int w = 0; w < stage.cores; ++w) {
                std::vector<Task<T>*> tasks;
                if (w == 0) {
                    tasks = sequence_.stage_view(stage.first, stage.last);
                } else {
                    clone_storage.push_back(sequence_.stage_clones(stage.first, stage.last));
                    for (auto& owned : clone_storage.back())
                        tasks.push_back(owned.get());
                }
                const int pin_cpu = config_.core_map.empty()
                    ? -1
                    : config_.core_map[workers.size() % config_.core_map.size()];
                workers.emplace_back([this, &next_frame, &record_error, num_frames, in, out,
                                      stage, pin_cpu, tasks = std::move(tasks)] {
                    if (pin_cpu >= 0)
                        (void)pin_current_thread_to_cpu(pin_cpu);
                    try {
                        if (in == nullptr)
                            source_loop(next_frame, num_frames, stage, tasks, *out);
                        else
                            stage_loop(stage, tasks, *in, *out);
                    } catch (...) {
                        record_error(std::current_exception());
                    }
                });
            }
        }

        // Drain the final queue in order on this thread.
        std::uint64_t delivered = 0;
        try {
            while (auto envelope = queues.back()->pop()) {
                if (envelope->end)
                    break;
                if (on_output)
                    on_output(envelope->payload);
                ++delivered;
            }
        } catch (...) {
            record_error(std::current_exception());
        }

        for (auto& worker : workers)
            worker.join();
        const auto stop = std::chrono::steady_clock::now();

        if (first_error)
            std::rethrow_exception(first_error);

        return RunResult{delivered, std::chrono::duration<double>(stop - start).count()};
    }

    [[nodiscard]] const core::Solution& solution() const noexcept { return solution_; }

private:
    void validate() const
    {
        if (solution_.empty())
            throw std::invalid_argument{"Pipeline: empty solution"};
        int expected = 1;
        for (const core::Stage& stage : solution_.stages()) {
            if (stage.first != expected || stage.last < stage.first)
                throw std::invalid_argument{"Pipeline: stages must tile the chain contiguously"};
            if (stage.cores < 1)
                throw std::invalid_argument{"Pipeline: every stage needs at least one core"};
            if (stage.cores > 1)
                for (int i = stage.first; i <= stage.last; ++i)
                    if (sequence_.task(i).stateful())
                        throw std::invalid_argument{
                            "Pipeline: replicated stage contains stateful task '"
                            + sequence_.task(i).name() + "'"};
            expected = stage.last + 1;
        }
        if (expected != sequence_.size() + 1)
            throw std::invalid_argument{"Pipeline: solution does not cover the whole chain"};
    }

    void run_tasks(const core::Stage& stage, const std::vector<Task<T>*>& tasks, T& frame)
    {
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            if (config_.emulator != nullptr) {
                const auto begin = std::chrono::steady_clock::now();
                tasks[t]->process(frame);
                const auto elapsed = std::chrono::steady_clock::now() - begin;
                config_.emulator->after_task(
                    stage.first + static_cast<int>(t), stage.type,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
            } else {
                tasks[t]->process(frame);
            }
        }
    }

    void source_loop(std::atomic<std::uint64_t>& next_frame, std::uint64_t num_frames,
                     const core::Stage& stage, const std::vector<Task<T>*>& tasks,
                     OrderedQueue<T>& out)
    {
        for (;;) {
            const std::uint64_t seq = next_frame.fetch_add(1, std::memory_order_relaxed);
            if (seq >= num_frames) {
                if (seq == num_frames)
                    out.push(Envelope<T>::end_of_stream(num_frames));
                return;
            }
            Envelope<T> envelope = Envelope<T>::data(seq, T{});
            if constexpr (requires(T& p) { p.seq = seq; })
                envelope.payload.seq = seq; // payloads may carry their identity
            run_tasks(stage, tasks, envelope.payload);
            out.push(std::move(envelope));
        }
    }

    void stage_loop(const core::Stage& stage, const std::vector<Task<T>*>& tasks,
                    OrderedQueue<T>& in, OrderedQueue<T>& out)
    {
        while (auto envelope = in.pop()) {
            if (envelope->end) {
                out.push(std::move(*envelope));
                return;
            }
            run_tasks(stage, tasks, envelope->payload);
            out.push(std::move(*envelope));
        }
    }

    TaskSequence<T>& sequence_;
    core::Solution solution_;
    PipelineConfig config_;
};

} // namespace amp::rt
