#pragma once
// Threaded pipeline executor: runs a compiled plan::ExecutionPlan as worker
// threads connected by order-restoring bounded queues (the StreamPU
// execution model, including the v1.6.0 extension that connects consecutive
// replicated stages -- possibly of different core types).
//
// Stage i of the plan becomes r_i workers, each executing the stage's task
// interval on every frame it pulls. Replicated stages clone their
// (stateless) tasks once per extra worker. Sequential stages keep a single
// worker and therefore observe frames in stream order, which is what makes
// stateful tasks safe.
//
// DAG plans (plan::GraphShape, docs/EXECUTION_PLAN.md): a stage may feed
// several successor queues -- fan-out pushes each envelope to every out
// queue, copying the payload -- and a stage may consume several predecessor
// queues -- fan-in merges one envelope per input by sequence number through
// a FanInGate (rt/fan_in.hpp), so the merged stream leaves in stream order
// with zero reordering. Linear plans are the degenerate one-branch case and
// execute exactly as before (one in queue, one out queue per stage).
//
// Workers are persistent: threads are spawned once (lazily, on the first
// run) and parked on an epoch condition variable between stream segments,
// so run() can be called repeatedly -- and, after a degraded run,
// apply_delta() hot-swaps the pipeline in place: untouched stages keep
// their threads and queues alive; only the workers a plan::PlanDelta names
// are spawned or retired, and rebound stages just re-read their core-type
// binding at the next segment. An incompatible delta (recut stage
// structure) requires constructing a new Pipeline (docs/EXECUTION_PLAN.md).
//
// Resize-only deltas (PlanDelta::resize_only(): every stage kept or
// resized, nothing rebound) go one step further: try_apply_delta_in_flight
// applies them at a frame boundary *without draining the stream*. Queues
// and untouched stages survive; spawned workers enter the current epoch
// and start pulling frames immediately; retired workers finish their
// in-flight frame and park. A loss handler (set_loss_handler) installed by
// run_with_recovery turns a watchdog fence into such an in-flight swap,
// which is what cuts recovery latency below the drain time
// (docs/FAULT_MODEL.md).
//
// Fault tolerance (docs/FAULT_MODEL.md): every worker maintains a heartbeat
// that it refreshes whenever it makes progress or wakes from a bounded wait.
// An optional watchdog thread (enabled by PipelineConfig::heartbeat_timeout)
// fences workers whose heartbeat goes stale -- crashed or hung threads --
// publishing a tombstone for the frame the worker held so downstream
// consumers can advance, and, when a stage loses its last worker, initiating
// a graceful drain: the source stops producing, a scavenger flushes the dead
// stage's input in stream order (as tombstones), and the run returns a
// degraded-but-ordered result instead of aborting. Transient task failures
// are absorbed by a bounded retry with exponential backoff. A run that ends
// early reports `stream_end`, the exact resume point for the next segment
// (see rt/rescheduler.hpp).

#include "core/chain.hpp"
#include "core/solution.hpp"
#include "obs/schema.hpp"
#include "obs/sink.hpp"
#include "plan/execution_plan.hpp"
#include "rt/brownout.hpp"
#include "rt/core_emulator.hpp"
#include "rt/fan_in.hpp"
#include "rt/fault.hpp"
#include "rt/ordered_queue.hpp"
#include "rt/task.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace amp::rt {

struct PipelineConfig {
    std::size_t queue_capacity = 8;      ///< per-adaptor buffered frames
    CoreEmulator* emulator = nullptr;    ///< optional core-type emulation
    /// Optional thread placement: worker k (in stage-major order, i.e. the
    /// paper's compact placement) is pinned to CPU core_map[k % size]. Empty
    /// = no pinning. Ignored on platforms without affinity support.
    std::vector<int> core_map{};

    /// First frame of the stream this run produces: frames [first_frame,
    /// num_frames) flow through the pipeline. Non-zero when resuming a
    /// stream after a failure (the new pipeline picks up at the previous
    /// run's `stream_end`).
    std::uint64_t first_frame = 0;

    /// Optional fault injection hooks (tests, recovery benchmarks).
    FaultInjector* faults = nullptr;

    /// Transient-failure policy: a task throw is retried up to
    /// `max_task_retries` times per frame, sleeping retry_backoff *
    /// retry_backoff_factor^attempt between attempts. The frame payload is
    /// restored from a pre-attempt copy when T is copyable; otherwise tasks
    /// must tolerate re-execution on a partially-processed frame. Keep the
    /// worst-case total backoff below heartbeat_timeout, or the watchdog
    /// will fence the retrying worker.
    int max_task_retries = 0;
    std::chrono::microseconds retry_backoff{200};
    double retry_backoff_factor = 2.0;

    /// Watchdog: a worker whose heartbeat is older than heartbeat_timeout
    /// is declared lost (fenced). Zero disables the watchdog (and with it,
    /// recovery from kill/stall faults). The timeout must exceed the
    /// worst-case per-frame latency of any stage, or healthy-but-slow
    /// workers get fenced.
    std::chrono::milliseconds heartbeat_timeout{0};
    std::chrono::milliseconds watchdog_poll{2};

    /// Optional telemetry sink (docs/OBSERVABILITY.md): workers record task
    /// spans, queue waits, heartbeats, retries and tombstones into it.
    /// nullptr (or a disabled sink) costs one branch per event.
    obs::Sink* sink = nullptr;

    /// Overload protection (docs/FAULT_MODEL.md, "Overload model"). When
    /// enabled, the watchdog thread doubles as an overload monitor: it
    /// samples every inter-stage queue's depth, feeds the worst fraction to
    /// a BrownoutController, and -- while browned out -- sheds the oldest
    /// buffered frames of congested non-final queues as tombstones (counted
    /// in RunResult::frames_shed and amp_frames_shed_total, never silent).
    /// Enabling overload protection alone (heartbeat_timeout == 0) starts
    /// the monitor thread without worker fencing.
    struct OverloadPolicy {
        bool enabled = false;
        /// Queue watermarks (envelopes). 0 derives them from the queue
        /// capacity: high = 3/4 * capacity (at least 1), low = high / 2.
        std::size_t high_watermark = 0;
        std::size_t low_watermark = 0;
        /// Enter/exit thresholds over the worst queue-depth fraction.
        BrownoutPolicy brownout{};
        /// Frames shed per congested queue per monitor pass while browned
        /// out (small: the controller's patience gates sustained shedding).
        std::size_t shed_batch = 2;
        /// Monitor sampling period.
        std::chrono::milliseconds poll{5};
    };
    OverloadPolicy overload{};
};

/// One fenced (permanently lost) worker.
struct WorkerLoss {
    int worker = -1;                          ///< stable plan worker id
    int stage = -1;                           ///< stage the worker served
    core::CoreType type = core::CoreType::big; ///< core type lost with it
    std::uint64_t held_frame = 0;             ///< frame it held (kNoFrame if idle)

    static constexpr std::uint64_t kNoFrame = std::numeric_limits<std::uint64_t>::max();
};

struct RunResult {
    std::uint64_t frames = 0;        ///< frames delivered to the drain
    double elapsed_seconds = 0.0;
    std::uint64_t frames_dropped = 0; ///< tombstones (frames lost to failures)
    std::uint64_t retries = 0;        ///< transient faults absorbed by retry
    /// Frames deliberately tombstoned by the load shedder -- a subset of
    /// frames_dropped (every shed frame is also a dropped frame).
    std::uint64_t frames_shed = 0;
    /// Times the brownout controller entered brownout during this run.
    std::uint64_t brownout_entries = 0;
    /// One past the last stream position this run accounted for (delivered
    /// or dropped). Equals the requested frame count on a full run; on a
    /// degraded early drain it is the exact `first_frame` to resume from.
    std::uint64_t stream_end = 0;
    /// Time from run start to the first worker loss; negative when healthy.
    double failure_seconds = -1.0;
    std::vector<WorkerLoss> losses;   ///< workers fenced by the watchdog

    [[nodiscard]] bool degraded() const noexcept { return !losses.empty(); }
    [[nodiscard]] double fps() const noexcept
    {
        return elapsed_seconds > 0.0 ? static_cast<double>(frames) / elapsed_seconds : 0.0;
    }
};

/// Pins the calling thread to the given CPU. Returns false when pinning is
/// unsupported or fails (never fatal: placement is a performance hint).
inline bool pin_current_thread_to_cpu([[maybe_unused]] int cpu)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
    return false;
#endif
}

template <typename T>
class Pipeline {
public:
    /// The sequence must outlive the pipeline. Compiles the solution into a
    /// plan::ExecutionPlan internally; throws (PlanError, a subclass of
    /// std::invalid_argument) if the solution does not cover the chain or
    /// replicates a stage containing stateful tasks.
    Pipeline(TaskSequence<T>& sequence, core::Solution solution, PipelineConfig config = {})
        : Pipeline(sequence,
                   plan::ExecutionPlan::compile(shape_of(sequence), solution,
                                                plan::PlanOptions{config.queue_capacity}),
                   config)
    {
    }

    /// Runs a pre-compiled plan (e.g. from svc::SolverService::solve_planned
    /// or plan::apply). The plan's queue capacity wins over
    /// config.queue_capacity: the plan *is* the queue topology.
    Pipeline(TaskSequence<T>& sequence, plan::ExecutionPlan plan, PipelineConfig config = {})
        : sequence_(sequence)
        , plan_(std::move(plan))
        , config_(config)
    {
        validate_against_sequence(plan_);
        rebuild_stage_specs();
    }

    /// Payload merge for fan-in stages: combines input `ordinal`'s popped
    /// payload `from` into the accumulated payload `into` (input 0's copy).
    /// When unset, `T::merge_from(const T&)` is used if the payload type
    /// provides it; otherwise input 0 wins and the other copies are
    /// discarded. Install before the first run.
    using Merge = typename FanInGate<T>::Merge;
    void set_merge(Merge merge) { merge_ = std::move(merge); }

    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    ~Pipeline()
    {
        {
            std::lock_guard lock{epoch_mutex_};
            shutdown_ = true;
        }
        epoch_cv_.notify_all();
        for (auto& worker : workers_)
            if (worker->thread.joinable())
                worker->thread.join();
    }

    /// Processes frames [config.first_frame, num_frames) end to end.
    /// `on_output` (optional) is invoked on the main thread, in stream
    /// order, with each final frame.
    RunResult run(std::uint64_t num_frames, const std::function<void(T&)>& on_output = {})
    {
        return run_from(config_.first_frame, num_frames, on_output);
    }

    /// Like run(), but resumes the stream at `first_frame` (ignores
    /// config.first_frame). Used by run_with_recovery to continue a stream
    /// on the same pipeline after a delta hot-swap.
    RunResult run_from(std::uint64_t first_frame, std::uint64_t num_frames,
                       const std::function<void(T&)>& on_output = {})
    {
        if (first_frame > num_frames)
            throw std::invalid_argument{"Pipeline::run: first_frame past the stream end"};

        // Segment setup mutates the same state an in-flight swap touches
        // (plan_, stage specs, the worker census). A caller may legally
        // invoke try_apply_delta_in_flight from another thread at any time,
        // including while a segment is starting -- serialize against it, and
        // release before the output drain so mid-segment swaps proceed.
        std::unique_lock swap_lock{swap_mutex_};
        if (!materialized_)
            materialize();

        SegmentState& st = seg_;
        const std::size_t k = stages_.size();

        // -- reset the per-segment state (all workers are parked) ---------
        st.num_frames = num_frames;
        st.first_frame = first_frame;
        st.next_frame.store(first_frame);
        st.retries.store(0);
        st.stop_source.store(false);
        st.end_pushed.store(false);
        st.over.store(false);
        st.first_error = nullptr;
        st.losses.clear();
        st.failure_seconds = -1.0;
        st.frames_shed.store(0);
        st.brownout = BrownoutController{config_.overload.brownout};
        st.beat_interval = config_.heartbeat_timeout.count() > 0
            ? std::max<std::chrono::milliseconds>(std::chrono::milliseconds{1},
                                                  config_.heartbeat_timeout / 4)
            : std::chrono::milliseconds{50};
        for (auto& queue : queues_)
            queue->reset(first_frame);
        for (auto& gate : gates_)
            gate->reset();
        resolve_obs_hooks(st);

        std::vector<int> live(k, 0);
        std::size_t entered = 0;
        {
            std::lock_guard lock{workers_mutex_};
            for (auto& worker : workers_) {
                if (worker->gone.load() || worker->fenced.load() || worker->dismissed.load())
                    continue;
                worker->holding.store(kNoFrame);
                worker->exited.store(false);
                worker->retired.store(false);
                worker->seg_done.store(false);
                worker->last_beat_ns.store(now_ns());
                ++live[static_cast<std::size_t>(worker->stage)];
                ++entered;
            }
        }
        for (std::size_t s = 0; s < k; ++s) {
            if (live[s] == 0)
                throw std::logic_error{
                    "Pipeline::run: stage " + std::to_string(s)
                    + " has no live workers; apply a delta or rebuild the pipeline"};
            st.live_in_stage[s].store(live[s]);
        }

        const auto start = std::chrono::steady_clock::now();
        st.start = start;

        // -- release the workers into this segment ------------------------
        {
            std::lock_guard lock{epoch_mutex_};
            parked_ = 0;
            st.entered = entered;
            segment_active_ = true;
            ++epoch_;
        }
        epoch_cv_.notify_all();
        swap_lock.unlock();

        std::thread watchdog;
        if (config_.heartbeat_timeout.count() > 0 || config_.overload.enabled)
            watchdog = std::thread{[this, &st] { watchdog_loop(st); }};

        // Drain the final queue in order on this thread. Tombstones are
        // frames lost to worker failures; they keep the stream contiguous
        // but are not handed to `on_output`.
        std::uint64_t delivered = 0;
        std::uint64_t dropped = 0;
        std::uint64_t end_seq = first_frame;
        bool end_seen = false;
        try {
            while (auto envelope = drain_->pop()) {
                if (envelope->end) {
                    end_seq = envelope->seq;
                    end_seen = true;
                    break;
                }
                if (envelope->dropped) {
                    ++dropped;
                    continue;
                }
                if (on_output)
                    on_output(envelope->payload);
                ++delivered;
            }
        } catch (...) {
            record_error(st, std::current_exception());
        }

        // -- wait for every entered worker to park ------------------------
        // The predicate re-reads st.entered: an in-flight swap may admit
        // workers into this segment while we wait. segment_active_ flips
        // under the same lock, so a swap either admits before we re-check
        // (and we wait for its workers too) or sees the segment closed and
        // parks its spawns for the next one.
        {
            std::unique_lock lock{epoch_mutex_};
            parked_cv_.wait(lock, [&] { return parked_ >= st.entered; });
            segment_active_ = false;
        }
        st.over.store(true);
        if (watchdog.joinable())
            watchdog.join();
        {
            std::lock_guard lock{st.scavenger_mutex};
            for (auto& scavenger : st.scavengers)
                scavenger.join();
            st.scavengers.clear();
        }
        const auto stop = std::chrono::steady_clock::now();

        if (st.first_error)
            std::rethrow_exception(st.first_error);

        RunResult result;
        result.frames = delivered;
        result.elapsed_seconds = std::chrono::duration<double>(stop - start).count();
        result.frames_dropped = dropped;
        result.retries = st.retries.load();
        result.frames_shed = st.frames_shed.load();
        result.brownout_entries = st.brownout.entries();
        result.stream_end = end_seen ? end_seq : first_frame + delivered + dropped;
        {
            std::lock_guard lock{st.loss_mutex};
            result.losses = st.losses;
            result.failure_seconds = st.failure_seconds;
        }
        ObsHooks& ob = st.obs;
        if (ob.metrics != nullptr) {
            // Workers have quiesced: bulk-add the drain totals and stamp the
            // run gauges.
            ob.frames_delivered->add(0, delivered);
            ob.frames_dropped->add(0, dropped);
            ob.metrics->gauge(obs::schema::kRunElapsedSeconds).set(result.elapsed_seconds);
            ob.metrics->gauge(obs::schema::kRunFps).set(result.fps());
        }
        return result;
    }

    /// In-place hot-swap: reconfigures the pipeline to the plan obtained by
    /// applying `delta` to the current plan. Untouched stages keep their
    /// worker threads and queues alive; fenced workers are reaped; only the
    /// replica-count changes the delta names spawn or retire threads, and
    /// rebound stages pick up their new core type at the next segment.
    /// Must be called between segments (never while run() is in flight).
    /// Throws std::invalid_argument when the delta is incompatible (recut
    /// structure -- construct a new Pipeline instead).
    void apply_delta(const plan::PlanDelta& delta)
    {
        if (!delta.compatible)
            throw std::invalid_argument{
                "Pipeline::apply_delta: incompatible delta (" + delta.reason
                + "); construct a new Pipeline instead"};
        std::lock_guard swap_lock{swap_mutex_};
        plan::ExecutionPlan next = plan::apply(plan_, delta);
        validate_against_sequence(next);

        plan_ = std::move(next);
        rebuild_stage_specs();
        if (!materialized_)
            return;
        // Stay ahead of the plan's id counter: replacement workers spawned
        // for fenced slots (which the plan does not know about) must never
        // reuse an id a future delta could hand out.
        next_worker_id_ = std::max(next_worker_id_, plan_.next_worker_id());

        std::lock_guard lock{workers_mutex_};
        reap_dead_workers();
        const auto& plan_stages = plan_.stages();
        for (std::size_t s = 0; s < plan_stages.size(); ++s) {
            const int target = plan_stages[s].replicas;
            int alive = live_worker_count(static_cast<int>(s));
            while (alive > target) {
                dismiss_one(static_cast<int>(s));
                --alive;
            }
            while (alive < target) {
                spawn_worker(static_cast<int>(s));
                ++alive;
            }
        }
    }

    /// Invoked on the watchdog thread after it fences a worker (the loss is
    /// recorded and the held frame tombstoned) and *before* any graceful
    /// drain starts. Returning true means the handler restored the pipeline
    /// (typically via try_apply_delta_in_flight) and the drain is skipped;
    /// returning false keeps the legacy fence-then-drain behavior. Install
    /// between runs only.
    using LossHandler = std::function<bool(const WorkerLoss&)>;
    void set_loss_handler(LossHandler handler) { loss_handler_ = std::move(handler); }

    /// Invoked on the watchdog thread once per overload-monitor pass with
    /// the worst inter-stage queue depth as a fraction of queue capacity
    /// (uncapped: > 1.0 when force-pushed frames exceed the nominal
    /// capacity). Requires PipelineConfig::overload.enabled -- that is what
    /// runs the monitor; the brownout watermarks may stay at their
    /// defaults. rt::Autoscaler samples its utilization signal here.
    /// Install between runs only, like the loss handler.
    using MonitorHook = std::function<void(double)>;
    void set_monitor_hook(MonitorHook hook) { monitor_hook_ = std::move(hook); }

    /// Frame-granular hot-swap: applies a resize-only delta while a stream
    /// segment is in flight, without draining. Queues and untouched stages
    /// survive; spawned workers enter the *current* epoch (they start
    /// pulling frames at the next frame boundary) and retired workers
    /// finish their in-flight frame and park. Returns false -- without
    /// mutating anything -- when the delta does not qualify (incompatible,
    /// or it rebinds a stage) or when a dead sequential stage's original
    /// task instances cannot be reclaimed within `reclaim_timeout` (the
    /// previous owner may still be running; fall back to apply_delta after
    /// the drain). Safe to call from the loss handler (watchdog thread) or
    /// any other thread; concurrent calls serialize. Workers spawned
    /// mid-segment are not traced (obs tracks cannot be added while
    /// producers emit); their metrics are recorded as usual.
    bool try_apply_delta_in_flight(const plan::PlanDelta& delta,
                                   std::chrono::milliseconds reclaim_timeout =
                                       std::chrono::milliseconds{200})
    {
        if (!delta.resize_only())
            return false;
        std::lock_guard swap_lock{swap_mutex_};
        plan::ExecutionPlan next = plan::apply(plan_, delta);
        validate_against_sequence(next);

        if (!materialized_) { // never ran: plain between-segment swap
            plan_ = std::move(next);
            rebuild_stage_specs();
            next_worker_id_ = std::max(next_worker_id_, plan_.next_worker_id());
            return true;
        }

        // Pass 1 (no mutation yet): a stage below target whose tasks cannot
        // clone can only be refilled with the sequence's original task
        // instances -- wait (bounded) for the previous owner to finish its
        // in-flight frame, then give up cleanly if it never does (e.g. a
        // stalled-but-alive fenced worker still running user code).
        const auto deadline = std::chrono::steady_clock::now() + reclaim_timeout;
        for (const plan::PlanStage& stage : next.stages()) {
            if (stage_cloneable(stage.index))
                continue;
            for (;;) {
                {
                    std::lock_guard lock{workers_mutex_};
                    if (live_worker_count(stage.index) >= stage.replicas
                        || originals_free(stage.index, /*in_flight=*/true))
                        break;
                }
                if (std::chrono::steady_clock::now() >= deadline)
                    return false;
                std::this_thread::sleep_for(std::chrono::microseconds{100});
            }
        }

        plan_ = std::move(next);
        next_worker_id_ = std::max(next_worker_id_, plan_.next_worker_id());
        update_stage_replicas(); // in place: workers hold Stage references

        std::lock_guard lock{workers_mutex_};
        for (const plan::PlanStage& stage : plan_.stages()) {
            int alive = live_worker_count(stage.index);
            while (alive > stage.replicas) {
                dismiss_one_in_flight(stage.index);
                --alive;
            }
            while (alive < stage.replicas) {
                spawn_worker(stage.index, -1, /*enter_current=*/true);
                ++alive;
            }
        }
        return true;
    }

    /// The compiled plan this pipeline currently executes.
    [[nodiscard]] const plan::ExecutionPlan& execution_plan() const noexcept { return plan_; }

    [[nodiscard]] const core::Solution& solution() const noexcept { return plan_.solution(); }

    /// Worker threads currently alive (not fenced, not retired); for tests
    /// and the recovery bench.
    [[nodiscard]] int live_workers() const
    {
        std::lock_guard lock{workers_mutex_};
        int count = 0;
        for (const auto& worker : workers_)
            if (!worker->gone.load() && !worker->fenced.load() && !worker->dismissed.load())
                ++count;
        return count;
    }

    /// Total worker threads ever spawned by this pipeline (monotone; grows
    /// by exactly the delta's spawn count on each hot-swap).
    [[nodiscard]] int spawned_workers() const noexcept { return spawned_total_.load(); }

private:
    static constexpr std::uint64_t kNoFrame = WorkerLoss::kNoFrame;

    /// A stage's queue endpoints, resolved once at materialize (the queue
    /// topology is immutable for the pipeline's lifetime -- compatible
    /// deltas never change it). Fan-in stages (>1 input) share one merge
    /// gate between their workers.
    struct StageIO {
        std::vector<OrderedQueue<T>*> ins;  ///< plan order (pred order)
        std::vector<OrderedQueue<T>*> outs; ///< plan order (succ order)
        FanInGate<T>* gate = nullptr;       ///< non-null iff ins.size() > 1
    };

    /// One persistent worker: identity and task instances live across
    /// segments; the atomics are reset at every segment start.
    struct Worker {
        // -- persistent identity (mutated only between segments) ----------
        int id = 0;    ///< stable plan worker id (tracks, heartbeats, faults)
        int stage = 0;
        std::vector<std::unique_ptr<Task<T>>> clones; ///< empty when borrowing
        std::vector<Task<T>*> tasks;
        bool owns_originals = false;
        std::size_t track = 0; ///< trace track (valid when tracing && traced)
        bool traced = true;    ///< false for mid-segment spawns (no track)
        std::thread thread;

        // -- lifecycle -----------------------------------------------------
        std::atomic<bool> dismissed{false}; ///< retire request (apply_delta)
        std::atomic<bool> gone{false};      ///< thread exited for good

        // -- per-segment ---------------------------------------------------
        std::atomic<std::int64_t> last_beat_ns{0};
        std::atomic<std::uint64_t> holding{WorkerLoss::kNoFrame};
        std::atomic<bool> fenced{false};
        std::atomic<bool> exited{false};
        std::atomic<bool> retired{false};
        /// Set once the worker will not touch its task instances again this
        /// segment (its segment body returned). Lets an in-flight swap
        /// reclaim a dead stage's original task instances safely.
        std::atomic<bool> seg_done{false};
    };

    /// Telemetry handles resolved once per segment so the hot path never
    /// takes the registry mutex or interns names. All pointers null when
    /// the run has no (enabled) sink.
    struct ObsHooks {
        obs::MetricsRegistry* metrics = nullptr;
        obs::TraceRecorder* trace = nullptr;
        std::size_t watchdog_track = 0; ///< fence/tombstone instants
        std::vector<obs::Histogram*> stage_latency; ///< per stage, us
        std::vector<obs::Histogram*> queue_wait;    ///< per stage, us
        obs::Counter* frames_delivered = nullptr;
        obs::Counter* frames_dropped = nullptr;
        obs::Counter* retries = nullptr;
        obs::Counter* heartbeats = nullptr;
        obs::Counter* fenced = nullptr;
        obs::Counter* frames_shed = nullptr;     ///< overload monitor only
        obs::Counter* brownout_entries = nullptr;
        obs::Gauge* brownout_level = nullptr;
        std::vector<obs::Gauge*> queue_depth; ///< per stage, sampled
        std::vector<std::uint32_t> span_names; ///< per stage, interned
        std::uint32_t retry_name = 0;
        std::uint32_t tombstone_name = 0;
        std::uint32_t fence_name = 0;
        bool active = false;
    };

    /// Everything scoped to one stream segment (one run_from call). Reused
    /// across segments; reset by run_from while all workers are parked.
    struct SegmentState {
        ObsHooks obs;
        std::vector<std::atomic<int>> live_in_stage;
        std::atomic<std::uint64_t> next_frame{0};
        std::atomic<std::uint64_t> retries{0};
        std::atomic<std::uint64_t> frames_shed{0};
        /// Overload state; touched only by the watchdog/monitor thread.
        BrownoutController brownout;
        std::atomic<bool> stop_source{false};
        std::atomic<bool> end_pushed{false};
        std::atomic<bool> over{false}; ///< segment finished (drain + park done)
        std::uint64_t num_frames = 0;
        std::uint64_t first_frame = 0;
        /// Workers participating in this segment (parked_ must reach it
        /// before the segment ends). Guarded by epoch_mutex_: in-flight
        /// spawns increment it while the main thread waits on parked_cv_.
        std::size_t entered = 0;
        std::chrono::milliseconds beat_interval{50};
        std::chrono::steady_clock::time_point start{};

        std::mutex error_mutex;
        std::exception_ptr first_error;

        std::mutex loss_mutex;
        std::vector<WorkerLoss> losses;
        double failure_seconds = -1.0;

        std::mutex scavenger_mutex;
        std::vector<std::thread> scavengers;
    };

    [[nodiscard]] static plan::ChainShape shape_of(const TaskSequence<T>& sequence)
    {
        plan::ChainShape shape;
        shape.tasks = sequence.size();
        shape.replicable.reserve(static_cast<std::size_t>(sequence.size()));
        for (int i = 1; i <= sequence.size(); ++i)
            shape.replicable.push_back(sequence.task(i).replicable());
        return shape;
    }

    [[nodiscard]] static std::int64_t now_ns()
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    static void beat(SegmentState& st, Worker& me)
    {
        me.last_beat_ns.store(now_ns());
        if (st.obs.heartbeats != nullptr)
            st.obs.heartbeats->inc(static_cast<std::size_t>(me.id));
    }

    [[nodiscard]] static double us_since(const SegmentState& st,
                                         std::chrono::steady_clock::time_point t)
    {
        return std::chrono::duration<double, std::micro>(t - st.start).count();
    }

    static void obs_record_span(SegmentState& st, const Worker& me,
                                std::chrono::steady_clock::time_point t0,
                                std::chrono::steady_clock::time_point t1, std::uint64_t seq)
    {
        ObsHooks& ob = st.obs;
        const auto s = static_cast<std::size_t>(me.stage);
        if (!ob.stage_latency.empty())
            ob.stage_latency[s]->record_duration(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0));
        if (ob.trace != nullptr && me.traced)
            ob.trace->emit_complete(me.track, ob.span_names[s], us_since(st, t0),
                                    std::chrono::duration<double, std::micro>(t1 - t0).count(),
                                    seq, me.stage);
    }

    static void obs_record_retry(SegmentState& st, const Worker& me, std::uint64_t seq)
    {
        ObsHooks& ob = st.obs;
        if (ob.retries != nullptr)
            ob.retries->inc(static_cast<std::size_t>(me.id));
        if (ob.trace != nullptr && me.traced)
            ob.trace->emit_instant(me.track, ob.retry_name,
                                   us_since(st, std::chrono::steady_clock::now()), seq,
                                   me.stage);
    }

    /// Runtime-side checks the plan cannot do on its own: the plan's shape
    /// may come from a profiled TaskChain, but the tasks that actually run
    /// are the sequence's -- replication is only safe when *they* are
    /// stateless. Also audits fault-injection preconditions.
    void validate_against_sequence(const plan::ExecutionPlan& plan) const
    {
        if (plan.task_count() != sequence_.size())
            throw std::invalid_argument{"Pipeline: plan does not cover the task sequence"};
        for (const plan::PlanStage& stage : plan.stages())
            if (stage.replicas > 1)
                for (int i = stage.first; i <= stage.last; ++i)
                    if (sequence_.task(i).stateful())
                        throw std::invalid_argument{
                            "Pipeline: replicated stage contains stateful task '"
                            + sequence_.task(i).name() + "'"};
        if constexpr (!std::is_copy_constructible_v<T>) {
            // Fan-out duplicates the payload onto every successor queue.
            for (const plan::PlanStage& stage : plan.stages())
                if (stage.out_queues.size() > 1)
                    throw std::invalid_argument{
                        "Pipeline: fan-out stage " + std::to_string(stage.index)
                        + " requires a copy-constructible frame type"};
        }
        if (config_.faults != nullptr && config_.faults->has_liveness_faults()
            && config_.heartbeat_timeout.count() == 0)
            throw std::invalid_argument{
                "Pipeline: kill/stall fault injection requires the watchdog "
                "(set PipelineConfig::heartbeat_timeout)"};
    }

    void rebuild_stage_specs()
    {
        stages_.clear();
        stages_.reserve(plan_.stage_count());
        for (const plan::PlanStage& stage : plan_.stages())
            stages_.push_back(core::Stage{stage.first, stage.last, stage.replicas, stage.type});
    }

    /// First call of run(): creates the queues and spawns the initial
    /// worker threads (parked until the first epoch). Trace tracks are laid
    /// out stage-major, then the watchdog track -- the same layout one
    /// run() of the non-persistent executor produced.
    void materialize()
    {
        const std::size_t k = stages_.size();
        const auto& specs = plan_.queues();
        queues_.reserve(specs.size());
        for (const plan::QueueSpec& spec : specs)
            queues_.push_back(
                std::make_unique<OrderedQueue<T>>(spec.capacity, config_.first_frame));
        if (config_.overload.enabled) {
            const std::size_t cap = std::max<std::size_t>(1, plan_.options().queue_capacity);
            std::size_t high = config_.overload.high_watermark;
            if (high == 0 || high > cap)
                high = std::max<std::size_t>(1, cap * 3 / 4);
            std::size_t low = config_.overload.low_watermark;
            if (low == 0 || low >= high)
                low = high / 2;
            for (auto& queue : queues_)
                queue->set_watermarks(high, low);
        }

        // Queue wiring follows the plan's DAG: each stage reads its
        // in_queues (fan-in stages behind a merge gate) and writes every
        // out_queues entry. Linear plans reduce to one in, one out.
        io_.clear();
        io_.resize(k);
        for (const plan::PlanStage& stage : plan_.stages()) {
            StageIO& io = io_[static_cast<std::size_t>(stage.index)];
            for (const int q : stage.in_queues)
                io.ins.push_back(queues_[static_cast<std::size_t>(q)].get());
            for (const int q : stage.out_queues)
                io.outs.push_back(queues_[static_cast<std::size_t>(q)].get());
        }
        gates_.clear();
        for (StageIO& io : io_)
            if (io.ins.size() > 1) {
                gates_.push_back(std::make_unique<FanInGate<T>>(io.ins, merge_fn()));
                io.gate = gates_.back().get();
            }
        for (const plan::QueueSpec& spec : specs)
            if (spec.consumer_stage == plan::QueueSpec::kDrain)
                drain_ = queues_[static_cast<std::size_t>(spec.index)].get();

        seg_.live_in_stage = std::vector<std::atomic<int>>(k);

        if (config_.sink != nullptr && config_.sink->enabled()
            && config_.sink->trace_enabled())
            trace_ = &config_.sink->trace();

        for (const plan::WorkerSlot& slot : plan_.workers())
            spawn_worker(slot.stage, slot.id);
        next_worker_id_ = plan_.next_worker_id();
        if (trace_ != nullptr)
            watchdog_track_ = trace_->add_track(obs::schema::kWatchdogTrack);
        materialized_ = true;
    }

    /// Spawns one worker thread for `stage`. The first worker of a stage
    /// borrows the sequence's original task instances (required for
    /// stateful stages, whose tasks cannot clone); every other worker owns
    /// clones. `id` < 0 allocates the next pipeline-local id. With
    /// `enter_current` set and a segment in flight, the worker joins the
    /// *current* epoch (it starts pulling frames immediately) instead of
    /// parking for the next one. Caller holds workers_mutex_ (or no other
    /// thread can touch workers_).
    void spawn_worker(int stage, int id = -1, bool enter_current = false)
    {
        auto worker = std::make_unique<Worker>();
        worker->id = id >= 0 ? id : next_worker_id_++;
        worker->stage = stage;
        const core::Stage& spec = stages_[static_cast<std::size_t>(stage)];
        const bool borrow = enter_current ? originals_free(stage, /*in_flight=*/true)
                                          : !originals_in_use(stage);
        if (borrow) {
            worker->tasks = sequence_.stage_view(spec.first, spec.last);
            worker->owns_originals = true;
        } else {
            worker->clones = sequence_.stage_clones(spec.first, spec.last);
            worker->tasks.reserve(worker->clones.size());
            for (auto& owned : worker->clones)
                worker->tasks.push_back(owned.get());
        }
        if (trace_ != nullptr) {
            // Track tables cannot grow while producers emit; mid-segment
            // spawns run untraced (metrics still flow).
            if (enter_current)
                worker->traced = false;
            else
                worker->track = trace_->add_track(obs::schema::worker_track(worker->id, stage));
        }
        worker->last_beat_ns.store(now_ns());

        std::uint64_t born_epoch = 0;
        {
            std::lock_guard lock{epoch_mutex_};
            if (enter_current && segment_active_) {
                born_epoch = epoch_ - 1; // wait predicate is already true
                ++seg_.entered;
                seg_.live_in_stage[static_cast<std::size_t>(stage)].fetch_add(1);
            } else {
                born_epoch = epoch_; // sleep until the *next* segment starts
            }
        }
        const int pin_cpu = config_.core_map.empty()
            ? -1
            : config_.core_map[static_cast<std::size_t>(worker->id)
                               % config_.core_map.size()];
        Worker* raw = worker.get();
        worker->thread = std::thread{[this, raw, born_epoch, pin_cpu] {
            if (pin_cpu >= 0)
                (void)pin_current_thread_to_cpu(pin_cpu);
            worker_main(*raw, born_epoch);
        }};
        workers_.push_back(std::move(worker));
        spawned_total_.fetch_add(1);
    }

    [[nodiscard]] bool originals_in_use(int stage) const
    {
        for (const auto& worker : workers_)
            if (worker->stage == stage && worker->owns_originals && !worker->gone.load()
                && !worker->fenced.load() && !worker->dismissed.load())
                return true;
        return false;
    }

    /// Whether the stage's original task instances can be (re)borrowed. The
    /// between-segment test only excludes live owners; in flight, a fenced
    /// or dismissed owner may *still be executing* user code, so the
    /// originals stay off-limits until its segment body returns (seg_done)
    /// or its thread is gone.
    [[nodiscard]] bool originals_free(int stage, bool in_flight) const
    {
        for (const auto& worker : workers_) {
            if (worker->stage != stage || !worker->owns_originals)
                continue;
            if (!worker->gone.load() && !worker->fenced.load() && !worker->dismissed.load())
                return false; // live owner
            if (in_flight && !worker->gone.load() && !worker->seg_done.load())
                return false; // doomed owner, possibly mid-frame
        }
        return true;
    }

    /// True when every task of the stage can clone (no stateful task), so
    /// an in-flight spawn never needs the originals.
    [[nodiscard]] bool stage_cloneable(int stage) const
    {
        const core::Stage& spec = stages_[static_cast<std::size_t>(stage)];
        for (int i = spec.first; i <= spec.last; ++i)
            if (sequence_.task(i).stateful())
                return false;
        return true;
    }

    [[nodiscard]] int live_worker_count(int stage) const
    {
        int count = 0;
        for (const auto& worker : workers_)
            if (worker->stage == stage && !worker->gone.load() && !worker->fenced.load()
                && !worker->dismissed.load())
                ++count;
        return count;
    }

    /// Joins and removes workers whose threads are finished or doomed:
    /// fenced by the watchdog (their thread exits at the next epoch wake)
    /// or already gone. Only called between segments.
    void reap_dead_workers()
    {
        bool any = false;
        for (auto& worker : workers_)
            if (worker->fenced.load() || worker->gone.load()) {
                worker->dismissed.store(true);
                any = true;
            }
        if (!any)
            return;
        epoch_cv_.notify_all();
        std::erase_if(workers_, [](const std::unique_ptr<Worker>& worker) {
            if (!worker->dismissed.load())
                return false;
            if (worker->thread.joinable())
                worker->thread.join();
            return true;
        });
    }

    /// Retires one live worker of `stage` (a clone owner when possible, so
    /// the originals stay owned) and joins its thread.
    void dismiss_one(int stage)
    {
        Worker* victim = nullptr;
        for (auto& worker : workers_) {
            if (worker->stage != stage || worker->gone.load() || worker->fenced.load()
                || worker->dismissed.load())
                continue;
            if (victim == nullptr || victim->owns_originals)
                victim = worker.get();
        }
        if (victim == nullptr)
            return;
        victim->dismissed.store(true);
        epoch_cv_.notify_all();
        std::erase_if(workers_, [victim](const std::unique_ptr<Worker>& worker) {
            if (worker.get() != victim)
                return false;
            if (worker->thread.joinable())
                worker->thread.join();
            return true;
        });
    }

    /// Mid-segment retire: marks one live worker of `stage` dismissed (a
    /// clone owner when possible) and returns. The worker finishes its
    /// in-flight frame, retires itself from the stage count and parks; its
    /// thread is joined by the next between-segment reap (never here -- the
    /// caller may be the watchdog, and blocking it stalls fencing). Caller
    /// holds workers_mutex_.
    void dismiss_one_in_flight(int stage)
    {
        Worker* victim = nullptr;
        for (auto& worker : workers_) {
            if (worker->stage != stage || worker->gone.load() || worker->fenced.load()
                || worker->dismissed.load())
                continue;
            if (victim == nullptr || victim->owns_originals)
                victim = worker.get();
        }
        if (victim == nullptr)
            return;
        victim->dismissed.store(true);
        epoch_cv_.notify_all(); // in case it already parked (segment tail)
    }

    /// Follows a resize-only plan change without touching the stage vector
    /// itself: running workers hold `const core::Stage&` references into
    /// stages_, so only the replica counts may be rewritten, in place.
    void update_stage_replicas()
    {
        const auto& plan_stages = plan_.stages();
        for (std::size_t s = 0; s < plan_stages.size(); ++s)
            stages_[s].cores = plan_stages[s].replicas;
    }

    void resolve_obs_hooks(SegmentState& st)
    {
        st.obs = ObsHooks{};
        obs::Sink* const sink =
            config_.sink != nullptr && config_.sink->enabled() ? config_.sink : nullptr;
        if (sink == nullptr)
            return;
        ObsHooks& ob = st.obs;
        const std::size_t k = stages_.size();
        ob.active = true;
        if (sink->metrics_enabled()) {
            obs::MetricsRegistry& m = sink->metrics();
            ob.metrics = &m;
            ob.frames_delivered = &m.counter(obs::schema::kFramesDelivered);
            ob.frames_dropped = &m.counter(obs::schema::kFramesDropped);
            ob.retries = &m.counter(obs::schema::kRetries);
            ob.heartbeats = &m.counter(obs::schema::kHeartbeats);
            ob.fenced = &m.counter(obs::schema::kWorkersFenced);
            for (std::size_t s = 0; s < k; ++s) {
                const int stage_index = static_cast<int>(s);
                ob.stage_latency.push_back(&m.histogram(obs::schema::stage_latency(stage_index)));
                ob.queue_wait.push_back(&m.histogram(obs::schema::queue_wait(stage_index)));
            }
            if (config_.overload.enabled) {
                ob.frames_shed = &m.counter(obs::schema::kFramesShed);
                ob.brownout_entries = &m.counter(obs::schema::kBrownoutEntries);
                ob.brownout_level = &m.gauge(obs::schema::kBrownoutLevel);
                // One gauge per queue (DAG plans have more queues than
                // stages); for linear plans queue index == stage index.
                for (std::size_t q = 0; q < queues_.size(); ++q)
                    ob.queue_depth.push_back(
                        &m.gauge(obs::schema::queue_depth(static_cast<int>(q))));
            }
        }
        if (trace_ != nullptr) {
            ob.trace = trace_;
            ob.watchdog_track = watchdog_track_;
            for (std::size_t s = 0; s < k; ++s)
                ob.span_names.push_back(trace_->intern(obs::schema::stage_span(
                    static_cast<int>(s), stages_[s].first, stages_[s].last)));
            ob.retry_name = trace_->intern(obs::schema::kRetry);
            ob.tombstone_name = trace_->intern(obs::schema::kTombstone);
            ob.fence_name = trace_->intern(obs::schema::kFence);
        }
    }

    // -- worker lifetime ---------------------------------------------------

    /// Thread body of a persistent worker: park on the epoch cv, run one
    /// segment, report parked, repeat. Exits on pipeline shutdown, on a
    /// dismiss request (hot-swap retired the slot) or after being fenced
    /// (the thread is dead to the pipeline; it never re-enters).
    void worker_main(Worker& me, std::uint64_t seen_epoch)
    {
        for (;;) {
            {
                std::unique_lock lock{epoch_mutex_};
                epoch_cv_.wait(lock, [&] {
                    return shutdown_ || me.dismissed.load() || epoch_ > seen_epoch;
                });
                if (shutdown_ || me.dismissed.load()) {
                    me.gone.store(true);
                    return;
                }
                seen_epoch = epoch_;
                if (me.fenced.load()) { // fenced while parked: never re-enter
                    me.gone.store(true);
                    return;
                }
            }
            run_segment(me);
            // Order matters: seg_done (task instances released) must be
            // visible before parked_ satisfies the segment-end predicate.
            me.seg_done.store(true);
            const bool lost = me.fenced.load();
            {
                std::lock_guard lock{epoch_mutex_};
                ++parked_;
            }
            parked_cv_.notify_all();
            if (lost) {
                me.gone.store(true);
                return;
            }
        }
    }

    void run_segment(Worker& me)
    {
        SegmentState& st = seg_;
        const core::Stage& stage = stages_[static_cast<std::size_t>(me.stage)];
        StageIO& io = io_[static_cast<std::size_t>(me.stage)];
        try {
            if (io.ins.empty())
                source_loop(st, me, stage, me.tasks, io);
            else
                stage_loop(st, me, stage, me.tasks, io);
        } catch (...) {
            me.exited.store(true);
            record_error(st, std::current_exception());
            (void)retire(st, me);
        }
    }

    void record_error(SegmentState& st, std::exception_ptr error)
    {
        {
            std::lock_guard lock{st.error_mutex};
            if (!st.first_error)
                st.first_error = error;
        }
        for (auto& queue : queues_)
            queue->abort();
    }

    /// Decrements the stage's live-worker count exactly once per worker.
    /// Returns true when this call retired the stage's last worker.
    static bool retire(SegmentState& st, Worker& me)
    {
        if (me.retired.exchange(true))
            return false;
        return st.live_in_stage[static_cast<std::size_t>(me.stage)].fetch_sub(1) == 1;
    }

    void run_tasks(const core::Stage& stage, const std::vector<Task<T>*>& tasks, T& frame,
                   std::uint64_t seq)
    {
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            const int task_index = stage.first + static_cast<int>(t);
            if (config_.faults != nullptr && config_.faults->should_throw(task_index, seq))
                throw TransientTaskFault{task_index, seq};
            if (config_.emulator != nullptr) {
                const auto begin = std::chrono::steady_clock::now();
                tasks[t]->process(frame);
                const auto elapsed = std::chrono::steady_clock::now() - begin;
                config_.emulator->after_task(
                    task_index, stage.type,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
            } else {
                tasks[t]->process(frame);
            }
        }
    }

    /// Runs the stage's tasks on one frame with the bounded-retry policy.
    /// Throws (the last failure) once the retry budget is exhausted.
    void process_frame(SegmentState& st, Worker& me, const core::Stage& stage,
                       const std::vector<Task<T>*>& tasks, Envelope<T>& envelope)
    {
        constexpr bool restorable =
            std::is_copy_constructible_v<T> && std::is_copy_assignable_v<T>;
        T backup{};
        if constexpr (restorable) {
            if (config_.max_task_retries > 0)
                backup = envelope.payload;
        }
        for (int attempt = 0;; ++attempt) {
            try {
                run_tasks(stage, tasks, envelope.payload, envelope.seq);
                return;
            } catch (...) {
                if (attempt >= config_.max_task_retries)
                    throw;
                st.retries.fetch_add(1);
                if (st.obs.active)
                    obs_record_retry(st, me, envelope.seq);
                if constexpr (restorable)
                    envelope.payload = backup;
                const auto backoff = std::chrono::microseconds{static_cast<std::int64_t>(
                    static_cast<double>(config_.retry_backoff.count())
                    * std::pow(config_.retry_backoff_factor, attempt))};
                beat(st, me);
                std::this_thread::sleep_for(backoff);
                beat(st, me);
            }
        }
    }

    /// Pushes with periodic heartbeats so a worker blocked on a full queue
    /// stays visibly alive. Returns false only when the queue is closed
    /// (aborted teardown): the worker should stop its segment. A stale
    /// outcome -- just this frame obsolete, e.g. already delivered as a
    /// tombstone by the watchdog or the load shedder -- consumes the
    /// envelope and returns true so the worker moves on to the next frame.
    bool push_with_beat(SegmentState& st, Worker& me, OrderedQueue<T>& out,
                        Envelope<T> envelope)
    {
        for (;;) {
            const auto outcome = out.try_push_for(envelope, st.beat_interval);
            if (outcome == OrderedQueue<T>::PushOutcome::pushed
                || outcome == OrderedQueue<T>::PushOutcome::stale)
                return true;
            if (outcome == OrderedQueue<T>::PushOutcome::closed)
                return false;
            beat(st, me);
        }
    }

    /// Fan-out push: delivers `envelope` to every out queue of the stage
    /// (data payloads are copied for all but the last queue; control
    /// envelopes -- end markers and tombstones -- are rebuilt, never
    /// copied). Returns false once any out queue reports closed.
    bool push_all_with_beat(SegmentState& st, Worker& me,
                            const std::vector<OrderedQueue<T>*>& outs, Envelope<T> envelope)
    {
        bool alive = true;
        for (std::size_t o = 0; o + 1 < outs.size(); ++o) {
            Envelope<T> copy = Envelope<T>::tombstone(envelope.seq);
            if (envelope.end) {
                copy = Envelope<T>::end_of_stream(envelope.seq);
            } else if (!envelope.dropped) {
                if constexpr (std::is_copy_constructible_v<T>)
                    copy = Envelope<T>::data(envelope.seq, envelope.payload);
                // move-only T cannot reach here: validate_against_sequence
                // rejects fan-out stages for such payloads at construction.
            }
            alive = push_with_beat(st, me, *outs[o], std::move(copy)) && alive;
        }
        alive = push_with_beat(st, me, *outs.back(), std::move(envelope)) && alive;
        return alive;
    }

    /// The configured fan-in payload merge, or the default: use
    /// T::merge_from when the payload provides it, else input 0 wins.
    [[nodiscard]] Merge merge_fn() const
    {
        if (merge_)
            return merge_;
        return [](T& into, T& from, int) {
            if constexpr (requires(T& a, T& b) { a.merge_from(b); })
                into.merge_from(from);
            else
                (void)into, (void)from;
        };
    }

    /// Pops the next input envelope for a stage: through the merge gate for
    /// fan-in stages, straight off the single input queue otherwise. The
    /// result mirrors OrderedQueue::PopResult (timed_out / done / envelope).
    typename FanInGate<T>::Result pop_input(SegmentState& st, Worker& me, StageIO& io)
    {
        if (io.gate != nullptr)
            return io.gate->pop_round(
                st.beat_interval, [&] { beat(st, me); },
                [&] { return me.fenced.load() || me.dismissed.load(); });
        auto popped = io.ins.front()->try_pop_for(st.beat_interval);
        return {std::move(popped.envelope), popped.done};
    }

    void source_loop(SegmentState& st, Worker& me, const core::Stage& stage,
                     const std::vector<Task<T>*>& tasks, StageIO& io)
    {
        for (;;) {
            beat(st, me);
            if (me.fenced.load())
                return; // watchdog already did the bookkeeping
            if (me.dismissed.load())
                break; // retired by an in-flight swap: previous frame was our last
            if (st.stop_source.load())
                break;
            const std::uint64_t seq = st.next_frame.fetch_add(1, std::memory_order_relaxed);
            if (seq >= st.num_frames) {
                if (seq == st.num_frames && !st.end_pushed.exchange(true))
                    push_all_with_beat(st, me, io.outs,
                                       Envelope<T>::end_of_stream(st.num_frames));
                break;
            }
            me.holding.store(seq);
            if (config_.faults != nullptr) {
                if (config_.faults->should_kill(me.id, seq))
                    return; // silent death, frame still held -> watchdog recovers
                const auto stall = config_.faults->stall_before(me.id, seq);
                if (stall.count() > 0)
                    std::this_thread::sleep_for(stall);
            }
            Envelope<T> envelope = Envelope<T>::data(seq, T{});
            if constexpr (requires(T& p) { p.seq = seq; })
                envelope.payload.seq = seq; // payloads may carry their identity
            std::chrono::steady_clock::time_point span_begin{};
            if (st.obs.active)
                span_begin = std::chrono::steady_clock::now();
            process_frame(st, me, stage, tasks, envelope);
            if (st.obs.active)
                obs_record_span(st, me, span_begin, std::chrono::steady_clock::now(), seq);
            beat(st, me);
            if (me.holding.exchange(kNoFrame) == kNoFrame)
                return; // watchdog presumed us dead and tombstoned the frame
            if (!push_all_with_beat(st, me, io.outs, std::move(envelope)))
                break;
        }
        me.exited.store(true);
        // The last source out owns the end-of-stream marker when the stream
        // was cut short (stop_source or failures); on a full run the claimant
        // of seq == num_frames already pushed it above.
        if (retire(st, me) && !st.end_pushed.exchange(true)) {
            const std::uint64_t end_seq = std::min(st.next_frame.load(), st.num_frames);
            push_all_with_beat(st, me, io.outs, Envelope<T>::end_of_stream(end_seq));
        }
    }

    void stage_loop(SegmentState& st, Worker& me, const core::Stage& stage,
                    const std::vector<Task<T>*>& tasks, StageIO& io)
    {
        // Input-wait accounting spans timed-out pops: the clock starts when
        // the worker first goes hungry and stops at the successful pop.
        std::chrono::steady_clock::time_point wait_from{};
        bool waiting = false;
        for (;;) {
            beat(st, me);
            if (me.fenced.load())
                return;
            if (me.dismissed.load())
                break; // retired by an in-flight swap: previous frame was our last
            if (st.obs.active && !waiting) {
                wait_from = std::chrono::steady_clock::now();
                waiting = true;
            }
            auto popped = pop_input(st, me, io);
            if (popped.timed_out())
                continue;
            if (st.obs.active) {
                waiting = false;
                if (!st.obs.queue_wait.empty())
                    st.obs.queue_wait[static_cast<std::size_t>(me.stage)]->record_duration(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - wait_from));
            }
            if (popped.done)
                break; // aborted, or a sibling forwarded the end marker
            Envelope<T> envelope = std::move(*popped.envelope);
            if (envelope.end) {
                push_all_with_beat(st, me, io.outs, std::move(envelope));
                break;
            }
            if (envelope.dropped) { // tombstone: forward unprocessed
                if (!push_all_with_beat(st, me, io.outs, std::move(envelope)))
                    break;
                continue;
            }
            me.holding.store(envelope.seq);
            if (config_.faults != nullptr) {
                if (config_.faults->should_kill(me.id, envelope.seq))
                    return; // silent death, frame still held -> watchdog recovers
                const auto stall = config_.faults->stall_before(me.id, envelope.seq);
                if (stall.count() > 0)
                    std::this_thread::sleep_for(stall);
            }
            std::chrono::steady_clock::time_point span_begin{};
            if (st.obs.active)
                span_begin = std::chrono::steady_clock::now();
            process_frame(st, me, stage, tasks, envelope);
            if (st.obs.active)
                obs_record_span(st, me, span_begin, std::chrono::steady_clock::now(),
                                envelope.seq);
            beat(st, me);
            if (me.holding.exchange(kNoFrame) == kNoFrame)
                return; // watchdog presumed us dead and tombstoned the frame
            if (!push_all_with_beat(st, me, io.outs, std::move(envelope)))
                break;
        }
        me.exited.store(true);
        (void)retire(st, me);
    }

    // -- watchdog ---------------------------------------------------------

    void watchdog_loop(SegmentState& st)
    {
        const auto timeout_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(config_.heartbeat_timeout)
                .count();
        const bool fencing = timeout_ns > 0; // overload-only runs never fence
        const auto poll = fencing ? config_.watchdog_poll
                                  : std::max(config_.overload.poll, std::chrono::milliseconds{1});
        auto next_overload_sample = std::chrono::steady_clock::now();
        std::vector<Worker*> stale;
        while (!st.over.load()) {
            std::this_thread::sleep_for(poll);
            if (config_.overload.enabled) {
                const auto now = std::chrono::steady_clock::now();
                if (now >= next_overload_sample) {
                    overload_poll(st);
                    next_overload_sample =
                        now + std::max(config_.overload.poll, std::chrono::milliseconds{1});
                }
            }
            if (!fencing)
                continue;
            const std::int64_t now = now_ns();
            // Scan under workers_mutex_ (an in-flight swap may be growing
            // the vector), but fence outside it: the loss handler may
            // itself spawn replacements, which needs the same mutex.
            // Worker objects are stable for the whole segment -- in-flight
            // retires only mark workers dismissed, they never erase.
            stale.clear();
            {
                std::lock_guard lock{workers_mutex_};
                for (auto& worker : workers_) {
                    if (worker->exited.load() || worker->fenced.load() || worker->gone.load()
                        || worker->dismissed.load())
                        continue;
                    if (now - worker->last_beat_ns.load() > timeout_ns)
                        stale.push_back(worker.get());
                }
            }
            for (Worker* worker : stale)
                fence(st, *worker);
        }
    }

    /// One overload-monitor pass, on the watchdog thread: sample queue
    /// depths, feed the worst fraction to the brownout controller, and --
    /// while browned out -- shed the oldest frames of congested non-final
    /// queues. The final queue is never shed: its frames are finished work
    /// the drain is about to deliver. queues_ is sized once at materialize,
    /// so iterating it here without a lock is safe; each queue's own mutex
    /// guards its contents.
    void overload_poll(SegmentState& st)
    {
        const double cap =
            static_cast<double>(std::max<std::size_t>(1, plan_.options().queue_capacity));
        double worst = 0.0;
        for (std::size_t s = 0; s < queues_.size(); ++s) {
            const std::size_t depth = queues_[s]->buffered();
            worst = std::max(worst, static_cast<double>(depth) / cap);
            if (!st.obs.queue_depth.empty())
                st.obs.queue_depth[s]->set(static_cast<double>(depth));
        }
        if (monitor_hook_)
            monitor_hook_(worst);
        const bool was = st.brownout.browned_out();
        const bool browned = st.brownout.feed(std::min(1.0, worst));
        if (st.obs.brownout_level != nullptr)
            st.obs.brownout_level->set(browned ? 1.0 : 0.0);
        if (browned && !was && st.obs.brownout_entries != nullptr)
            st.obs.brownout_entries->inc(0);
        if (!browned)
            return;
        const auto& specs = plan_.queues();
        for (std::size_t s = 0; s < queues_.size(); ++s) {
            if (specs[s].consumer_stage == plan::QueueSpec::kDrain)
                continue; // finished work the drain is about to deliver
            if (!queues_[s]->congested())
                continue;
            const std::size_t shed = queues_[s]->shed_oldest(config_.overload.shed_batch);
            if (shed == 0)
                continue;
            st.frames_shed.fetch_add(shed);
            if (st.obs.frames_shed != nullptr)
                st.obs.frames_shed->add(0, shed); // a shed is never silent
        }
    }

    /// Declares a worker permanently lost: records the loss, tombstones the
    /// frame it held, and starts a graceful drain if its stage is now empty.
    void fence(SegmentState& st, Worker& me)
    {
        me.fenced.store(true);
        const core::Stage& stage = stages_[static_cast<std::size_t>(me.stage)];
        const std::uint64_t held = me.holding.exchange(kNoFrame);
        {
            std::lock_guard lock{st.loss_mutex};
            if (st.failure_seconds < 0.0)
                st.failure_seconds =
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - st.start)
                        .count();
            st.losses.push_back(WorkerLoss{me.id, me.stage, stage.type, held});
        }
        {
            // Trace instants go on the watchdog's own track: the fenced
            // worker may still be alive and writing to its ring.
            ObsHooks& ob = st.obs;
            if (ob.fenced != nullptr)
                ob.fenced->inc(static_cast<std::size_t>(me.id));
            if (ob.trace != nullptr) {
                const double now_us = us_since(st, std::chrono::steady_clock::now());
                ob.trace->emit_instant(ob.watchdog_track, ob.fence_name, now_us,
                                       held == kNoFrame ? obs::TraceEvent::kNoFrame : held,
                                       me.stage);
                if (held != kNoFrame)
                    ob.trace->emit_instant(ob.watchdog_track, ob.tombstone_name, now_us, held,
                                           me.stage);
            }
        }
        if (held != kNoFrame)
            for (OrderedQueue<T>* out : io_[static_cast<std::size_t>(me.stage)].outs)
                watchdog_push(st, *out, Envelope<T>::tombstone(held));
        const bool stage_empty = retire(st, me);
        // Give the loss handler (rt::run_with_recovery) a chance to restore
        // the pipeline with an in-flight frame swap before falling back to
        // the graceful drain. The handler runs on this (watchdog) thread;
        // losses it declines keep the legacy fence-then-drain behavior.
        bool restored = false;
        if (loss_handler_ && !st.over.load())
            restored = loss_handler_(WorkerLoss{me.id, me.stage, stage.type, held});
        if (stage_empty && !restored)
            initiate_drain(st, me.stage);
    }

    /// The stage lost its last worker: no frame can cross it any more. Stop
    /// the source and flush everything already in flight, in stream order.
    void initiate_drain(SegmentState& st, int stage)
    {
        st.stop_source.store(true);
        StageIO& io = io_[static_cast<std::size_t>(stage)];
        if (io.ins.empty()) { // the source itself died: just close the stream
            if (!st.end_pushed.exchange(true)) {
                const std::uint64_t end_seq = std::min(st.next_frame.load(), st.num_frames);
                for (OrderedQueue<T>* out : io.outs)
                    watchdog_push(st, *out, Envelope<T>::end_of_stream(end_seq));
            }
            return;
        }
        std::lock_guard lock{st.scavenger_mutex};
        st.scavengers.emplace_back([this, &st, stage] { scavenge(st, stage); });
    }

    /// Stands in for a fully-dead stage: converts its input frames into
    /// tombstones on its output queues and forwards the end marker, so the
    /// tail of the pipeline drains in order. A dead fan-in stage is drained
    /// through its merge gate, which keeps the per-input pops aligned.
    void scavenge(SegmentState& st, int stage)
    {
        StageIO& io = io_[static_cast<std::size_t>(stage)];
        for (;;) {
            typename FanInGate<T>::Result popped;
            if (io.gate != nullptr) {
                popped = io.gate->pop_round(
                    std::chrono::milliseconds{5}, [] {}, [&] { return st.over.load(); });
            } else {
                auto r = io.ins.front()->try_pop_for(std::chrono::milliseconds{5});
                popped = {std::move(r.envelope), r.done};
            }
            if (popped.timed_out()) {
                if (st.over.load())
                    return;
                continue;
            }
            if (popped.done)
                return;
            const Envelope<T>& envelope = *popped.envelope;
            for (OrderedQueue<T>* out : io.outs)
                watchdog_push(st, *out,
                              envelope.end ? Envelope<T>::end_of_stream(envelope.seq)
                                           : Envelope<T>::tombstone(envelope.seq));
            if (envelope.end)
                return;
        }
    }

    /// Push used by the watchdog and scavengers -- always a tombstone or an
    /// end-of-stream marker, delivered unconditionally. It must never block:
    /// the watchdog fences stale workers one at a time, and a fence blocked
    /// on a full queue would keep the *next* fence (whose tombstone may be
    /// the very hole the consumer is stuck on) from ever happening -- a
    /// deadlock we hit in practice when two workers died close together
    /// with the survivor keeping the output queue at capacity.
    void watchdog_push(SegmentState&, OrderedQueue<T>& queue, Envelope<T> envelope)
    {
        queue.force_push(std::move(envelope));
    }

    TaskSequence<T>& sequence_;
    plan::ExecutionPlan plan_;
    PipelineConfig config_;
    Merge merge_; ///< fan-in payload merge (set_merge); null = default

    std::vector<core::Stage> stages_; ///< runtime stage specs (follow plan_)
    std::vector<std::unique_ptr<OrderedQueue<T>>> queues_;
    std::vector<StageIO> io_;         ///< per stage, follows plan_ wiring
    std::vector<std::unique_ptr<FanInGate<T>>> gates_;
    OrderedQueue<T>* drain_ = nullptr; ///< the queue run_from consumes
    std::vector<std::unique_ptr<Worker>> workers_;
    int next_worker_id_ = 0;
    std::atomic<int> spawned_total_{0};
    bool materialized_ = false;

    /// Guards the workers_ vector whenever a segment is in flight: the
    /// watchdog scans it while an in-flight swap may be appending to it.
    /// Erasure stays a between-segment affair, so Worker* stay valid for a
    /// whole segment. Acquired before epoch_mutex_ when both are needed.
    mutable std::mutex workers_mutex_;
    std::mutex swap_mutex_; ///< serializes try_apply_delta_in_flight calls
    LossHandler loss_handler_;
    MonitorHook monitor_hook_;

    obs::TraceRecorder* trace_ = nullptr; ///< resolved once at materialize
    std::size_t watchdog_track_ = 0;

    // Segment synchronization: run_from bumps epoch_ to release the parked
    // workers, each worker increments parked_ when its segment work is done,
    // and run_from returns only after parked_ reaches the entered count.
    std::mutex epoch_mutex_;
    std::condition_variable epoch_cv_;
    std::condition_variable parked_cv_;
    std::uint64_t epoch_ = 0;
    std::size_t parked_ = 0;
    bool shutdown_ = false;
    /// True while run_from has a segment open (guarded by epoch_mutex_):
    /// decides whether an in-flight spawn joins the current epoch or parks.
    bool segment_active_ = false;

    SegmentState seg_;
};

} // namespace amp::rt
