#pragma once
// Online rescheduling on degraded resources.
//
// The paper computes one schedule for a fixed resource vector R = (b, l).
// When the runtime loses a core permanently (a fenced worker, see
// rt/pipeline.hpp) or the profiler reports task weights that drifted away
// from the profile the schedule was built on, the Rescheduler re-runs the
// paper's schedulers (HeRAD primary, FERTAC/OTAC fallbacks) on the reduced
// resource vector or refreshed chain, and hands back the best valid
// solution. `run_with_recovery` glues it to the Pipeline: it hot-swaps the
// schedule after a degraded run and resumes the stream at the exact frame
// the failed pipeline drained to, reporting recovery latency and total
// frames dropped. See docs/FAULT_MODEL.md for the full fault model.

#include "core/scheduler.hpp"
#include "obs/histogram.hpp"
#include "rt/pipeline.hpp"
#include "svc/solver_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

namespace amp::rt {

/// Raised when recovery is impossible (no cores left, or no scheduler can
/// produce a well-formed solution on the degraded resources).
class NoScheduleError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct ReschedulePolicy {
    core::Strategy primary = core::Strategy::herad;
    core::Strategy fallback = core::Strategy::fertac;
    /// Relative p95 drift vs. the scheduled weight (max over tasks) that
    /// counts a latency report as drifted.
    double drift_threshold = 0.25;
    /// Consecutive drifted reports before the chain is re-profiled and the
    /// schedule recomputed (debounces transient load spikes).
    int drift_patience = 3;
    /// Solver service every recompute goes through (candidate strategies
    /// are submitted as one batch, so repeated re-solves of the same
    /// degraded (chain, resources) pair hit its cache). Null means the
    /// process-wide svc::shared_service().
    svc::SolverService* service = nullptr;
};

/// One observation window of runtime telemetry -- the single input both
/// control loops consume: Rescheduler::observe runs drift detection over
/// the per-task latency histograms, rt::Autoscaler feeds the load fields
/// (queue depth / p95) to its scaling controller. Producers fill what they
/// sampled and leave the rest at the "not sampled" defaults.
struct TelemetrySnapshot {
    /// Per-task latency histograms, 1-based task order, one per core type.
    /// Leave both vectors empty to skip drift detection entirely (a
    /// load-only snapshot); leave an element empty when the task did not
    /// run on that core type this window.
    std::vector<obs::HistogramSnapshot> big_us;
    std::vector<obs::HistogramSnapshot> little_us;
    /// Worst inter-stage queue depth as a fraction of queue capacity (the
    /// pipeline monitor hook's signal); negative = not sampled.
    double queue_depth_frac = -1.0;
    /// End-to-end p95 latency in microseconds; <= 0 = not sampled.
    double p95_us = 0.0;
    /// Steady-clock timestamp of the window end in nanoseconds (0 = now).
    std::int64_t at_ns = 0;
};

class Rescheduler {
public:
    /// Computes the initial solution eagerly; throws NoScheduleError when
    /// even the full resource vector admits no schedule.
    Rescheduler(core::TaskChain chain, core::Resources resources, ReschedulePolicy policy = {});

    [[nodiscard]] const core::TaskChain& chain() const noexcept { return chain_; }
    [[nodiscard]] const core::Resources& resources() const noexcept { return resources_; }
    [[nodiscard]] const core::Solution& solution() const noexcept { return solution_; }
    [[nodiscard]] const ReschedulePolicy& policy() const noexcept { return policy_; }

    /// Solves on the current chain and resources: tries the primary and
    /// fallback strategies plus the applicable OTAC baselines and keeps the
    /// best (minimum-period) well-formed solution within budget.
    core::Solution recompute();

    /// Removes `count` cores of `type` (e.g. after the watchdog fenced a
    /// worker of that type) and recomputes. Throws NoScheduleError when the
    /// remaining resources cannot run the chain.
    core::Solution on_core_loss(core::CoreType type, int count = 1);

    /// Shrinks the resource vector without recomputing. Lets a caller that
    /// observed several simultaneous losses account for all of them first
    /// and then solve a single batch (run_with_recovery does exactly this),
    /// instead of paying one solver batch -- and transiently adopting an
    /// intermediate solution -- per lost core.
    void remove_cores(core::CoreType type, int count = 1);

    /// Feeds one telemetry window: runs drift detection over the per-task
    /// latency histograms when the snapshot carries any. A task counts as
    /// drifted when its p95 departs from the scheduled weight by more than
    /// policy.drift_threshold (relative). After policy.drift_patience
    /// consecutive drifted windows, the chain is rebuilt around the
    /// observed mean latencies and the schedule recomputed; returns the new
    /// solution then, nullopt otherwise. The load fields (queue depth, p95)
    /// are not consumed here -- rt::Autoscaler::observe reads the same
    /// snapshot, so one telemetry producer feeds both control loops.
    std::optional<core::Solution> observe(const TelemetrySnapshot& telemetry);

    /// Re-solves for a changed resource vector -- the autoscaler's
    /// grow/shrink step -- and adopts chain/resources/solution on success.
    /// A HeRAD primary re-solves incrementally from the DP frontier
    /// retained across calls (core::WarmStart), so ±k-core steps cost a
    /// small fraction of a cold solve; other strategies recompute the full
    /// candidate batch. Throws NoScheduleError when the target admits no
    /// schedule (the previous state is kept).
    core::Solution resize_to(core::Resources target);

    /// Consecutive drifted reports seen so far (for tests/metrics).
    [[nodiscard]] int drift_streak() const noexcept { return drift_streak_; }

private:
    core::TaskChain chain_;
    core::Resources resources_;
    ReschedulePolicy policy_;
    core::Solution solution_;
    /// Warm-start frontier retained across resize_to calls (HeRAD primary
    /// only; invalidated implicitly when the chain is rebuilt -- a stale
    /// frontier no longer matches and the solver runs cold, refreshing it).
    std::shared_ptr<const core::HeradFrontier> frontier_;
    int drift_streak_ = 0;
    /// Running *sums* of the per-window observed means across the current
    /// drift streak (averaged at rebuild time; cleared when the streak
    /// resets), so the rebuilt chain reflects the whole streak rather than
    /// whichever window happened to arrive last.
    std::vector<double> drifted_big_;
    std::vector<double> drifted_little_;
};

/// Aggregated outcome of a fault-tolerant run (one pipeline, possibly
/// hot-swapped several times).
struct RecoveryReport {
    RunResult total;        ///< summed frames/drops/retries; wall-clock elapsed
    int recoveries = 0;     ///< schedule hot-swaps performed
    double recovery_latency_seconds = 0.0; ///< failure detection -> first resumed frame
    std::vector<core::Solution> solutions; ///< initial + one per recovery
    bool completed = false; ///< stream reached num_frames
    int delta_swaps = 0;    ///< recoveries applied between segments via plan::PlanDelta
    int rebuild_swaps = 0;  ///< recoveries that rebuilt the pipeline
    /// Recoveries applied mid-segment by an in-flight frame swap (no drain:
    /// the stream never stopped; see Pipeline::try_apply_delta_in_flight).
    int frame_swaps = 0;
    double swap_seconds = 0.0; ///< time spent applying deltas / rebuilding
};

/// How a schedule change may land on a live pipeline. One ladder shared by
/// run_with_recovery, the arbiter's pipeline endpoint
/// (rt::PipelineTenantEndpoint) and the autoscaler (rt::Autoscaler); it
/// replaces the old RecoveryOptions::{allow_delta, allow_frame_swap} bool
/// pair (mapping table in docs/EXECUTION_PLAN.md §3.2). Each level
/// includes everything below it as fallback.
enum class SwapPolicy : std::uint8_t {
    /// Never mutate a built pipeline: every change drains, tears down and
    /// rebuilds.
    rebuild_only,
    /// Apply compatible deltas between segments (plan::diff + apply_delta:
    /// untouched stages keep their threads and queues); incompatible
    /// (recut) changes rebuild. No mid-segment swaps.
    delta,
    /// Land *resize-only* changes mid-segment without draining
    /// (Pipeline::try_apply_delta_in_flight): replacement workers join the
    /// live stream at the next frame boundary. Changes that do not qualify
    /// -- rebound stages, recuts, or a stateful reclaim timeout -- fall
    /// down the ladder. The default.
    frame_first,
};

[[nodiscard]] constexpr const char* to_string(SwapPolicy policy) noexcept
{
    switch (policy) {
    case SwapPolicy::rebuild_only: return "rebuild_only";
    case SwapPolicy::delta: return "delta";
    case SwapPolicy::frame_first: return "frame_first";
    }
    return "?";
}

/// Knobs for run_with_recovery's hot-swap path.
struct RecoveryOptions {
    /// How recoveries may land on the running pipeline.
    SwapPolicy swap = SwapPolicy::frame_first;
};

/// Runs the stream [config.first_frame, num_frames) with automatic recovery:
/// on a degraded run, reduces the resource vector by the lost cores,
/// recomputes the schedule, hot-swaps the pipeline -- in place via a plan
/// delta when the new stage cut is compatible, by a full rebuild otherwise
/// -- and resumes the stream at the exact frame the degraded run drained
/// to. Stops after `max_recoveries` hot-swaps (default: one per core of the
/// initial budget). Throws NoScheduleError if the degraded resources cannot
/// run the chain at all.
template <typename T>
RecoveryReport run_with_recovery(TaskSequence<T>& sequence, Rescheduler& rescheduler,
                                 std::uint64_t num_frames, PipelineConfig config = {},
                                 const std::function<void(T&)>& on_output = {},
                                 int max_recoveries = -1, RecoveryOptions options = {})
{
    if (max_recoveries < 0)
        max_recoveries = rescheduler.resources().total();

    RecoveryReport report;
    report.solutions.push_back(rescheduler.solution());
    report.total.stream_end = config.first_frame;
    report.total.failure_seconds = -1.0;

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t next = config.first_frame;
    // Engaged while a drain-based recovery is in flight: from failure
    // detection until the first post-recovery frame reaches the drain.
    std::optional<std::chrono::steady_clock::time_point> recovering_since;

    // State shared with the in-flight loss handler, which runs on the
    // pipeline's watchdog thread while run_from is in flight. Everything
    // here is either guarded by `mutex` or touched only between runs (the
    // watchdog is joined before run_from returns).
    struct FrameSwapState {
        std::mutex mutex;
        int swaps = 0;             ///< frame swaps applied this run
        double swap_seconds = 0.0; ///< in-flight apply time this run
        std::vector<core::Solution> solutions; ///< one per frame swap
        std::vector<int> handled_workers; ///< losses already shrunk by the handler
        bool infeasible = false;   ///< handler hit NoScheduleError
        std::atomic<bool> latency_armed{false}; ///< swap applied, awaiting a frame
        std::chrono::steady_clock::time_point detect{};
    } swap_state;

    auto pipeline = std::make_unique<Pipeline<T>>(sequence, rescheduler.solution(), config);

    // On every fence: shrink the budget and re-solve immediately (so even a
    // declined swap leaves rescheduler.solution() ready for the drain path
    // with no second batch), then frame-swap in flight when the delta is
    // resize-only. Runs on the watchdog thread; `report` and `max_recoveries`
    // are safe to read -- the main thread only writes them between runs.
    auto install_handler = [&](Pipeline<T>& p) {
        if (options.swap != SwapPolicy::frame_first)
            return;
        p.set_loss_handler([&](const WorkerLoss& loss) -> bool {
            std::lock_guard lock{swap_state.mutex};
            if (swap_state.infeasible)
                return false;
            if (report.recoveries + swap_state.swaps >= max_recoveries)
                return false; // out of swap budget: let the drain path stop the run
            const auto detect = std::chrono::steady_clock::now();
            core::Solution degraded;
            try {
                degraded = rescheduler.on_core_loss(loss.type, 1);
            } catch (const NoScheduleError&) {
                swap_state.infeasible = true;
                swap_state.handled_workers.push_back(loss.worker);
                return false;
            }
            swap_state.handled_workers.push_back(loss.worker);
            plan::ExecutionPlan candidate =
                plan::ExecutionPlan::compile(rescheduler.chain(), degraded,
                                             plan::PlanOptions{config.queue_capacity});
            const plan::PlanDelta delta = plan::diff(p.execution_plan(), candidate);
            if (!delta.resize_only())
                return false;
            const auto swap_begin = std::chrono::steady_clock::now();
            if (!p.try_apply_delta_in_flight(delta))
                return false;
            ++swap_state.swaps;
            swap_state.swap_seconds +=
                std::chrono::duration<double>(std::chrono::steady_clock::now() - swap_begin)
                    .count();
            swap_state.solutions.push_back(std::move(degraded));
            swap_state.detect = detect;
            swap_state.latency_armed.store(true, std::memory_order_release);
            return true;
        });
    };
    install_handler(*pipeline);

    for (;;) {
        auto wrapped = [&](T& frame) {
            if (swap_state.latency_armed.load(std::memory_order_acquire)) {
                // First frame delivered after an in-flight swap completed:
                // close the frame-swap recovery interval.
                std::lock_guard lock{swap_state.mutex};
                if (swap_state.latency_armed.load(std::memory_order_relaxed)) {
                    report.recovery_latency_seconds +=
                        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                                      - swap_state.detect)
                            .count();
                    swap_state.latency_armed.store(false, std::memory_order_relaxed);
                }
            }
            if (recovering_since) {
                report.recovery_latency_seconds += std::chrono::duration<double>(
                                                       std::chrono::steady_clock::now()
                                                       - *recovering_since)
                                                       .count();
                recovering_since.reset();
            }
            if (on_output)
                on_output(frame);
        };

        const auto run_start = std::chrono::steady_clock::now();
        RunResult result = pipeline->run_from(next, num_frames, wrapped);

        // The watchdog (and with it the loss handler) is quiesced: merge the
        // frame swaps this run applied into the report.
        {
            std::lock_guard lock{swap_state.mutex};
            report.recoveries += swap_state.swaps;
            report.frame_swaps += swap_state.swaps;
            report.swap_seconds += swap_state.swap_seconds;
            for (core::Solution& solution : swap_state.solutions)
                report.solutions.push_back(std::move(solution));
            swap_state.swaps = 0;
            swap_state.swap_seconds = 0.0;
            swap_state.solutions.clear();
            if (swap_state.latency_armed.load(std::memory_order_relaxed)) {
                // Swap applied but no frame made it out before the stream
                // ended: the open interval is still downtime.
                report.recovery_latency_seconds +=
                    std::chrono::duration<double>(std::chrono::steady_clock::now()
                                                  - swap_state.detect)
                        .count();
                swap_state.latency_armed.store(false, std::memory_order_relaxed);
            }
        }

        report.total.frames += result.frames;
        report.total.frames_dropped += result.frames_dropped;
        report.total.retries += result.retries;
        report.total.frames_shed += result.frames_shed;
        report.total.brownout_entries += result.brownout_entries;
        report.total.stream_end = result.stream_end;
        for (const WorkerLoss& loss : result.losses)
            report.total.losses.push_back(loss);
        if (result.failure_seconds >= 0.0 && report.total.failure_seconds < 0.0)
            report.total.failure_seconds =
                std::chrono::duration<double>(run_start - t0).count() + result.failure_seconds;

        if (swap_state.infeasible)
            throw NoScheduleError{
                "run_with_recovery: remaining resources cannot run the chain"};
        if (result.degraded()) {
            // Shrink the budget by every core the in-flight handler did not
            // already account for, then recompute once -- not once per loss.
            int unhandled = 0;
            for (const WorkerLoss& loss : result.losses) {
                const auto& handled = swap_state.handled_workers;
                if (std::find(handled.begin(), handled.end(), loss.worker) != handled.end())
                    continue;
                rescheduler.remove_cores(loss.type, 1);
                ++unhandled;
            }
            if (unhandled > 0)
                (void)rescheduler.recompute();
        }
        swap_state.handled_workers.clear();

        if (result.stream_end >= num_frames) {
            report.completed = true;
            break;
        }
        if (report.recoveries >= max_recoveries)
            break;

        ++report.recoveries;
        report.solutions.push_back(rescheduler.solution());
        // Latency is measured from the instant the watchdog detected the
        // failure, so it covers the drain, the reschedule and the swap.
        recovering_since = result.failure_seconds >= 0.0
            ? run_start
                + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(result.failure_seconds))
            : std::chrono::steady_clock::now();
        next = result.stream_end;

        const auto swap_begin = std::chrono::steady_clock::now();
        plan::ExecutionPlan candidate =
            plan::ExecutionPlan::compile(rescheduler.chain(), rescheduler.solution(),
                                         plan::PlanOptions{config.queue_capacity});
        const plan::PlanDelta delta = plan::diff(pipeline->execution_plan(), candidate);
        if (options.swap != SwapPolicy::rebuild_only && delta.compatible) {
            pipeline->apply_delta(delta);
            ++report.delta_swaps;
        } else {
            pipeline.reset(); // join the old workers before spawning new ones
            config.first_frame = next;
            pipeline = std::make_unique<Pipeline<T>>(sequence, std::move(candidate), config);
            install_handler(*pipeline);
            ++report.rebuild_swaps;
        }
        report.swap_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - swap_begin)
                .count();
    }

    // A recovery that never produced another frame (the stream ended, or the
    // swap budget ran out, mid-recovery) is still downtime: close the open
    // interval instead of dropping it.
    if (recovering_since)
        report.recovery_latency_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - *recovering_since)
                .count();

    report.total.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return report;
}

} // namespace amp::rt
