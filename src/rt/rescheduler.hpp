#pragma once
// Online rescheduling on degraded resources.
//
// The paper computes one schedule for a fixed resource vector R = (b, l).
// When the runtime loses a core permanently (a fenced worker, see
// rt/pipeline.hpp) or the profiler reports task weights that drifted away
// from the profile the schedule was built on, the Rescheduler re-runs the
// paper's schedulers (HeRAD primary, FERTAC/OTAC fallbacks) on the reduced
// resource vector or refreshed chain, and hands back the best valid
// solution. `run_with_recovery` glues it to the Pipeline: it hot-swaps the
// schedule after a degraded run and resumes the stream at the exact frame
// the failed pipeline drained to, reporting recovery latency and total
// frames dropped. See docs/FAULT_MODEL.md for the full fault model.

#include "core/scheduler.hpp"
#include "obs/histogram.hpp"
#include "rt/pipeline.hpp"
#include "svc/solver_service.hpp"

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

namespace amp::rt {

/// Raised when recovery is impossible (no cores left, or no scheduler can
/// produce a well-formed solution on the degraded resources).
class NoScheduleError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct ReschedulePolicy {
    core::Strategy primary = core::Strategy::herad;
    core::Strategy fallback = core::Strategy::fertac;
    /// Relative p95 drift vs. the scheduled weight (max over tasks) that
    /// counts a latency report as drifted.
    double drift_threshold = 0.25;
    /// Consecutive drifted reports before the chain is re-profiled and the
    /// schedule recomputed (debounces transient load spikes).
    int drift_patience = 3;
    /// Solver service every recompute goes through (candidate strategies
    /// are submitted as one batch, so repeated re-solves of the same
    /// degraded (chain, resources) pair hit its cache). Null means the
    /// process-wide svc::shared_service().
    svc::SolverService* service = nullptr;
};

class Rescheduler {
public:
    /// Computes the initial solution eagerly; throws NoScheduleError when
    /// even the full resource vector admits no schedule.
    Rescheduler(core::TaskChain chain, core::Resources resources, ReschedulePolicy policy = {});

    [[nodiscard]] const core::TaskChain& chain() const noexcept { return chain_; }
    [[nodiscard]] const core::Resources& resources() const noexcept { return resources_; }
    [[nodiscard]] const core::Solution& solution() const noexcept { return solution_; }
    [[nodiscard]] const ReschedulePolicy& policy() const noexcept { return policy_; }

    /// Solves on the current chain and resources: tries the primary and
    /// fallback strategies plus the applicable OTAC baselines and keeps the
    /// best (minimum-period) well-formed solution within budget.
    core::Solution recompute();

    /// Removes `count` cores of `type` (e.g. after the watchdog fenced a
    /// worker of that type) and recomputes. Throws NoScheduleError when the
    /// remaining resources cannot run the chain.
    core::Solution on_core_loss(core::CoreType type, int count = 1);

    /// Feeds one observation window of per-task latency histograms (1-based
    /// task order, one snapshot per core type; leave a snapshot empty when
    /// the task did not run on that core type). A task counts as drifted
    /// when its p95 departs from the scheduled weight by more than
    /// policy.drift_threshold (relative). After policy.drift_patience
    /// consecutive drifted windows, the chain is rebuilt around the
    /// observed mean latencies and the schedule recomputed; returns the new
    /// solution then, nullopt otherwise.
    std::optional<core::Solution>
    report_latency_snapshots(const std::vector<obs::HistogramSnapshot>& big_us,
                             const std::vector<obs::HistogramSnapshot>& little_us);

    /// Feeds one offline profiler report (average per-task latencies in us,
    /// 1-based order, both core types). Thin wrapper: each average becomes a
    /// single-sample histogram snapshot and flows through the same
    /// report_latency_snapshots drift detector as live telemetry.
    std::optional<core::Solution> report_profile(const std::vector<double>& big_us,
                                                 const std::vector<double>& little_us);

    /// Consecutive drifted reports seen so far (for tests/metrics).
    [[nodiscard]] int drift_streak() const noexcept { return drift_streak_; }

private:
    core::TaskChain chain_;
    core::Resources resources_;
    ReschedulePolicy policy_;
    core::Solution solution_;
    int drift_streak_ = 0;
    std::vector<double> drifted_big_;
    std::vector<double> drifted_little_;
};

/// Aggregated outcome of a fault-tolerant run (one pipeline, possibly
/// hot-swapped several times).
struct RecoveryReport {
    RunResult total;        ///< summed frames/drops/retries; wall-clock elapsed
    int recoveries = 0;     ///< schedule hot-swaps performed
    double recovery_latency_seconds = 0.0; ///< failure detection -> first resumed frame
    std::vector<core::Solution> solutions; ///< initial + one per recovery
    bool completed = false; ///< stream reached num_frames
    int delta_swaps = 0;    ///< recoveries applied in place via plan::PlanDelta
    int rebuild_swaps = 0;  ///< recoveries that rebuilt the pipeline
    double swap_seconds = 0.0; ///< time spent applying deltas / rebuilding
};

/// Knobs for run_with_recovery's hot-swap path.
struct RecoveryOptions {
    /// Apply compatible schedule changes in place (plan::diff + apply_delta:
    /// untouched stages keep their threads and queues) instead of tearing
    /// the pipeline down and rebuilding. Incompatible deltas (a recut stage
    /// structure) always fall back to a full rebuild.
    bool allow_delta = true;
};

/// Runs the stream [config.first_frame, num_frames) with automatic recovery:
/// on a degraded run, reduces the resource vector by the lost cores,
/// recomputes the schedule, hot-swaps the pipeline -- in place via a plan
/// delta when the new stage cut is compatible, by a full rebuild otherwise
/// -- and resumes the stream at the exact frame the degraded run drained
/// to. Stops after `max_recoveries` hot-swaps (default: one per core of the
/// initial budget). Throws NoScheduleError if the degraded resources cannot
/// run the chain at all.
template <typename T>
RecoveryReport run_with_recovery(TaskSequence<T>& sequence, Rescheduler& rescheduler,
                                 std::uint64_t num_frames, PipelineConfig config = {},
                                 const std::function<void(T&)>& on_output = {},
                                 int max_recoveries = -1, RecoveryOptions options = {})
{
    if (max_recoveries < 0)
        max_recoveries = rescheduler.resources().total();

    RecoveryReport report;
    report.solutions.push_back(rescheduler.solution());
    report.total.stream_end = config.first_frame;
    report.total.failure_seconds = -1.0;

    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t next = config.first_frame;
    // Engaged while a recovery is in flight: from failure detection until
    // the first post-recovery frame reaches the drain.
    std::optional<std::chrono::steady_clock::time_point> recovering_since;

    auto pipeline = std::make_unique<Pipeline<T>>(sequence, rescheduler.solution(), config);

    for (;;) {
        auto wrapped = [&](T& frame) {
            if (recovering_since) {
                report.recovery_latency_seconds += std::chrono::duration<double>(
                                                       std::chrono::steady_clock::now()
                                                       - *recovering_since)
                                                       .count();
                recovering_since.reset();
            }
            if (on_output)
                on_output(frame);
        };

        const auto run_start = std::chrono::steady_clock::now();
        RunResult result = pipeline->run_from(next, num_frames, wrapped);

        report.total.frames += result.frames;
        report.total.frames_dropped += result.frames_dropped;
        report.total.retries += result.retries;
        report.total.stream_end = result.stream_end;
        for (const WorkerLoss& loss : result.losses)
            report.total.losses.push_back(loss);
        if (result.failure_seconds >= 0.0 && report.total.failure_seconds < 0.0)
            report.total.failure_seconds =
                std::chrono::duration<double>(run_start - t0).count() + result.failure_seconds;

        if (result.degraded()) {
            // Shrink the budget by every core the watchdog fenced, then
            // recompute once.
            for (const WorkerLoss& loss : result.losses)
                (void)rescheduler.on_core_loss(loss.type, 1);
        }

        if (result.stream_end >= num_frames) {
            report.completed = true;
            break;
        }
        if (report.recoveries >= max_recoveries)
            break;

        ++report.recoveries;
        report.solutions.push_back(rescheduler.solution());
        // Latency is measured from the instant the watchdog detected the
        // failure, so it covers the drain, the reschedule and the swap.
        recovering_since = result.failure_seconds >= 0.0
            ? run_start
                + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(result.failure_seconds))
            : std::chrono::steady_clock::now();
        next = result.stream_end;

        const auto swap_begin = std::chrono::steady_clock::now();
        plan::ExecutionPlan candidate =
            plan::ExecutionPlan::compile(rescheduler.chain(), rescheduler.solution(),
                                         plan::PlanOptions{config.queue_capacity});
        const plan::PlanDelta delta = plan::diff(pipeline->execution_plan(), candidate);
        if (options.allow_delta && delta.compatible) {
            pipeline->apply_delta(delta);
            ++report.delta_swaps;
        } else {
            pipeline.reset(); // join the old workers before spawning new ones
            config.first_frame = next;
            pipeline = std::make_unique<Pipeline<T>>(sequence, std::move(candidate), config);
            ++report.rebuild_swaps;
        }
        report.swap_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - swap_begin)
                .count();
    }

    // A recovery that never produced another frame (the stream ended, or the
    // swap budget ran out, mid-recovery) is still downtime: close the open
    // interval instead of dropping it.
    if (recovering_since)
        report.recovery_latency_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - *recovering_since)
                .count();

    report.total.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return report;
}

} // namespace amp::rt
