#include "rt/core_emulator.hpp"

namespace amp::rt {

double SlowdownEmulator::factor_for(int task_index) const
{
    if (factors_.empty())
        return uniform_factor_;
    const auto idx = static_cast<std::size_t>(task_index - 1);
    return idx < factors_.size() ? factors_[idx] : 1.0;
}

void SlowdownEmulator::after_task(int task_index, core::CoreType worker_type,
                                  std::chrono::nanoseconds elapsed)
{
    if (worker_type != core::CoreType::little)
        return;
    const double factor = factor_for(task_index);
    if (factor <= 1.0)
        return;
    const auto extra =
        std::chrono::nanoseconds{static_cast<std::int64_t>(elapsed.count() * (factor - 1.0))};
    const auto deadline = std::chrono::steady_clock::now() + extra;
    while (std::chrono::steady_clock::now() < deadline) {
        // busy wait: a little core would be occupied for this long
    }
}

} // namespace amp::rt
